// Chaos suite: the fault-injection matrix, end to end.
//
// Every test here arms a fault (core/fault/fault.h) somewhere in the
// execution stack -- the checkpoint journal, a worker subprocess, a TCP
// evaluator, the DP kernel's level allocation -- and asserts one of
// exactly two outcomes:
//
//  1. full recovery: the aggregated results are byte-identical to a
//     clean run (the fault cost retries, never data), or
//  2. clean quarantine: the poisoned point is reported as quarantined
//     with zero samples and every *other* point is byte-identical.
//
// Anything else -- a hang (the ctest timeout is the assertion), an abort,
// or silently wrong aggregates -- is the bug this suite exists to catch.
//
// Like the sweep suite, this binary re-execs itself as the worker
// subprocess: main() intercepts `--chaos-worker FAULTSPEC` before
// GoogleTest sees argv, installs the spec in the *child's* registry, and
// enters SweepRunner::serve().  Faults therefore reach workers through
// their argv, never through the parent's process-global registry.
//
// The registry is process-global, so every test clears it on entry and
// exit.  Tests that need a fault to actually fire skip themselves under
// -DQPS_FAULT=OFF; the scripted-misbehavior scenarios (sim workers dying
// or stalling) run in both configurations.
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/exact/dp_kernel.h"
#include "core/exact/ppc_exact.h"
#include "core/fault/fault.h"
#include "core/net/socket.h"
#include "core/net/socket_sweep.h"
#include "core/sweep/checkpoint.h"
#include "core/sweep/lease.h"
#include "core/sweep/sweep_runner.h"
#include "core/sweep/sweep_spec.h"
#include "core/sweep/wire.h"
#include "quorum/majority.h"
#include "sim/protocol_harness.h"
#include "sim/simulator.h"
#include "sim/stream_network.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qps::chaos {
namespace {

using sweep::PointResult;
using sweep::SweepOptions;
using sweep::SweepPoint;
using sweep::SweepRunner;
using sweep::SweepSpec;

/// The grid the parent tests and the re-exec'ed workers must agree on.
SweepSpec make_chaos_spec() {
  SweepSpec spec("chaos_grid", 101);
  spec.add_block("alpha", {3, 5}, {"R", "IR"});
  spec.add_block("beta", {10});
  spec.set_ps({0.25, 0.5});
  return spec;
}

/// Deterministic pure function of the point, with its own fault point so
/// tests can poison the *parent's* last-resort evaluation specifically.
RunningStats eval_point(const SweepPoint& point) {
  QPS_FAULT_POINT2("chaos/eval", point.id);
  Rng rng = Rng::for_stream(point.seed, 4711);
  RunningStats stats;
  for (int i = 0; i < 193; ++i)
    stats.add(rng.uniform01() * (1.0 + point.p) +
              static_cast<double>(point.size));
  return stats;
}

std::vector<std::string> self_worker_command(const std::string& fault_spec) {
  return {"/proc/self/exe", "--chaos-worker",
          fault_spec.empty() ? "none" : fault_spec};
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "qps_chaos_" + std::to_string(::getpid()) +
         "_" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::vector<std::string> lines;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void expect_same_results(const std::vector<PointResult>& clean,
                         const std::vector<PointResult>& chaotic) {
  ASSERT_EQ(clean.size(), chaotic.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].point.id, chaotic[i].point.id);
    EXPECT_FALSE(chaotic[i].quarantined) << chaotic[i].point.id;
    EXPECT_EQ(clean[i].stats.count(), chaotic[i].stats.count())
        << clean[i].point.id;
    EXPECT_EQ(clean[i].stats.mean(), chaotic[i].stats.mean())
        << clean[i].point.id;
    EXPECT_EQ(clean[i].stats.sum_squared_deviations(),
              chaotic[i].stats.sum_squared_deviations())
        << clean[i].point.id;
    EXPECT_EQ(clean[i].stats.min(), chaotic[i].stats.min())
        << clean[i].point.id;
    EXPECT_EQ(clean[i].stats.max(), chaotic[i].stats.max())
        << clean[i].point.id;
  }
}

class ChaosTest : public testing::Test {
 protected:
  void SetUp() override { fault::clear(); }
  void TearDown() override { fault::clear(); }
};

// GTEST_SKIP() only aborts the function it appears in, so this must be a
// macro expanded in the test body, not a helper call.
#define REQUIRE_FAULTS()                                             \
  if (!qps::fault::kFaultCompiled)                                   \
  GTEST_SKIP() << "fault injection compiled out (QPS_FAULT=OFF)"

// ---------------------------------------------------------------------------
// Checkpoint journal: torn tail, corrupt mid-file line, empty file, full
// disk.  Contract: resume recomputes exactly the damaged/missing points
// (diagnosed, never silent) and the merged results are byte-identical.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, TornJournalTailIsDiagnosedAndOnlyThatPointRecomputed) {
  REQUIRE_FAULTS();
  const std::string path = temp_path("torn.jsonl");
  std::remove(path.c_str());

  // Tear the last append (the epoch record is write #1, so the 10th
  // result is write #11): the run completes, the journal does not.
  fault::configure("sweep/checkpoint_write:torn:frac=0.3:after=11:count=1");
  SweepOptions first;
  first.checkpoint_path = path;
  const auto full = SweepRunner(make_chaos_spec(), first).run(eval_point);
  fault::clear();

  // The resume scan must count exactly one unparseable line.
  {
    const SweepSpec spec = make_chaos_spec();
    sweep::SweepCheckpoint scan(path, spec.name(), spec.fingerprint(),
                                /*resume=*/true);
    EXPECT_TRUE(scan.recovery().existed);
    EXPECT_EQ(scan.recovery().recovered, 9u);
    EXPECT_EQ(scan.recovery().corrupt, 1u);
  }

  std::atomic<int> calls{0};
  SweepOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  const auto resumed =
      SweepRunner(make_chaos_spec(), second).run([&](const SweepPoint& p) {
        ++calls;
        return eval_point(p);
      });
  EXPECT_EQ(calls.load(), 1);  // only the torn point
  expect_same_results(full, resumed);
  for (std::size_t i = 0; i < resumed.size(); ++i)
    EXPECT_EQ(resumed[i].from_checkpoint, i < 9) << i;
  std::remove(path.c_str());
}

TEST_F(ChaosTest, CorruptMidJournalLineIsSkippedNotTrusted) {
  const std::string path = temp_path("corrupt.jsonl");
  std::remove(path.c_str());

  SweepOptions first;
  first.checkpoint_path = path;
  const auto full = SweepRunner(make_chaos_spec(), first).run(eval_point);

  // Damage a mid-file result line in place, as a bad sector or partial
  // overwrite would (line 1 is the epoch record).
  auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 11u);
  lines[3] = "XX" + lines[3].substr(0, lines[3].size() / 2);
  {
    std::ofstream out(path, std::ios::trunc);
    for (const auto& line : lines) out << line << "\n";
  }

  {
    const SweepSpec spec = make_chaos_spec();
    sweep::SweepCheckpoint scan(path, spec.name(), spec.fingerprint(),
                                /*resume=*/true);
    EXPECT_EQ(scan.recovery().recovered, 9u);
    EXPECT_EQ(scan.recovery().corrupt, 1u);
  }

  std::atomic<int> calls{0};
  SweepOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  const auto resumed =
      SweepRunner(make_chaos_spec(), second).run([&](const SweepPoint& p) {
        ++calls;
        return eval_point(p);
      });
  EXPECT_EQ(calls.load(), 1);  // only the damaged point
  expect_same_results(full, resumed);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, ZeroByteJournalResumesFromScratchWithoutError) {
  const std::string path = temp_path("empty.jsonl");
  { std::ofstream out(path, std::ios::trunc); }  // exists, zero bytes

  {
    const SweepSpec spec = make_chaos_spec();
    sweep::SweepCheckpoint scan(path, spec.name(), spec.fingerprint(),
                                /*resume=*/true);
    EXPECT_TRUE(scan.recovery().existed);
    EXPECT_EQ(scan.recovery().recovered, 0u);
    EXPECT_EQ(scan.recovery().corrupt, 0u);
  }

  std::atomic<int> calls{0};
  SweepOptions options;
  options.checkpoint_path = path;
  options.resume = true;
  const auto resumed =
      SweepRunner(make_chaos_spec(), options).run([&](const SweepPoint& p) {
        ++calls;
        return eval_point(p);
      });
  EXPECT_EQ(calls.load(), 10);  // everything recomputed, nothing invented
  const auto baseline =
      SweepRunner(make_chaos_spec(), SweepOptions{}).run(eval_point);
  expect_same_results(baseline, resumed);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, FullDiskSurfacesCheckpointErrorThenResumesCleanly) {
  REQUIRE_FAULTS();
  const std::string path = temp_path("diskfull.jsonl");
  std::remove(path.c_str());

  // The fourth append (epoch record, two results, then the third result)
  // hits the injected "disk full": the run must abort with a structured
  // error naming the journal, never continue with a silently lossy one.
  fault::configure("sweep/checkpoint_write:error:after=4");
  SweepOptions first;
  first.checkpoint_path = path;
  try {
    SweepRunner(make_chaos_spec(), first).run(eval_point);
    FAIL() << "expected CheckpointError";
  } catch (const sweep::CheckpointError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos) << e.what();
  }
  fault::clear();
  EXPECT_EQ(read_lines(path).size(), 3u);  // epoch record + two points

  // With the "disk" healthy again, resume finishes the remaining eight.
  std::atomic<int> calls{0};
  SweepOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  const auto resumed =
      SweepRunner(make_chaos_spec(), second).run([&](const SweepPoint& p) {
        ++calls;
        return eval_point(p);
      });
  EXPECT_EQ(calls.load(), 8);
  const auto baseline =
      SweepRunner(make_chaos_spec(), SweepOptions{}).run(eval_point);
  expect_same_results(baseline, resumed);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// DP kernel: a mid-solve allocation failure must degrade to the structured
// BudgetExceeded, and the very next solve must be untainted.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, MidSolveAllocationFailureDegradesToBudgetExceeded) {
  REQUIRE_FAULTS();
  const MajoritySystem majority(9);
  const double clean = ppc_exact(majority, 0.5);

  // after=2: the top level allocates fine, the second one "fails" -- the
  // genuinely mid-solve case the upfront feasibility check cannot catch.
  fault::configure("exact/level_alloc:alloc:after=2:count=1");
  try {
    ppc_exact(majority, 0.5);
    FAIL() << "expected exact::BudgetExceeded";
  } catch (const exact::BudgetExceeded& e) {
    EXPECT_EQ(e.universe_size(), 9u);
    EXPECT_GT(e.frontier_bytes(), 0u);
    EXPECT_NE(std::string(e.what()).find("out of memory"), std::string::npos)
        << e.what();
  }
  fault::clear();

  // The failure is stateless: the same solve succeeds bit-identically.
  EXPECT_EQ(ppc_exact(majority, 0.5), clean);
}

// ---------------------------------------------------------------------------
// Pipe runner (worker subprocesses): crash faults are absorbed
// byte-identically; a point that also fails the in-process last resort is
// quarantined, poisoning nothing else.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, WorkerCrashFaultRecoversByteIdentical) {
  // Workers crash (via the injected crash action in their own registry)
  // whenever they draw the poison point; the parent's last resort
  // evaluates it cleanly.  No quarantine, no drift.
  const auto baseline =
      SweepRunner(make_chaos_spec(), SweepOptions{}).run(eval_point);
  SweepOptions options;
  options.workers = 2;
  options.worker_command =
      self_worker_command("sweep/point_eval:crash:match=family=beta/size=10/p=0.25");
  const auto recovered =
      SweepRunner(make_chaos_spec(), options).run(eval_point);
  expect_same_results(baseline, recovered);
}

TEST_F(ChaosTest, DelayFaultCostsTimeNeverBytes) {
  const auto baseline =
      SweepRunner(make_chaos_spec(), SweepOptions{}).run(eval_point);
  SweepOptions options;
  options.workers = 2;
  options.worker_command = self_worker_command("sweep/point_eval:delay:ms=1");
  const auto delayed = SweepRunner(make_chaos_spec(), options).run(eval_point);
  expect_same_results(baseline, delayed);
}

TEST_F(ChaosTest, DeterministicPoisonPointIsQuarantinedCleanly) {
  REQUIRE_FAULTS();
  const std::string poison = "family=beta/size=10/p=0.25";
  // Workers crash on the poison point AND the parent's last resort throws
  // on it: every avenue fails, so the point must be quarantined -- with
  // every other point still byte-identical.
  fault::configure("chaos/eval:error:match=" + poison);
  SweepOptions options;
  options.workers = 2;
  options.worker_command =
      self_worker_command("sweep/point_eval:crash:match=" + poison);
  const auto results = SweepRunner(make_chaos_spec(), options).run(eval_point);
  fault::clear();

  const auto baseline =
      SweepRunner(make_chaos_spec(), SweepOptions{}).run(eval_point);
  ASSERT_EQ(results.size(), baseline.size());
  std::size_t quarantined = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    if (results[i].point.id == poison) {
      ++quarantined;
      EXPECT_TRUE(results[i].quarantined);
      EXPECT_EQ(results[i].stats.count(), 0u);  // no invented samples
    } else {
      EXPECT_FALSE(results[i].quarantined) << results[i].point.id;
      EXPECT_EQ(results[i].stats.mean(), baseline[i].stats.mean())
          << results[i].point.id;
      EXPECT_EQ(results[i].stats.count(), baseline[i].stats.count())
          << results[i].point.id;
    }
  }
  EXPECT_EQ(quarantined, 1u);
}

// ---------------------------------------------------------------------------
// Real TCP: a worker whose evaluator deterministically fails one point
// burns the retry budget through genuine reconnects; with local fallback
// off the coordinator must quarantine exactly that point and aggregate the
// rest byte-identically.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, TcpPoisonPointQuarantinesRestStaysByteIdentical) {
  REQUIRE_FAULTS();
  const SweepSpec spec = make_chaos_spec();
  const auto points = spec.expand();
  // Poison the LAST point so everything else is already aggregated by the
  // time the budget burns; the match string is unambiguous (p=0.5 is not
  // a substring of p=0.25).
  const std::string poison = points.back().id;
  ASSERT_EQ(poison, "family=beta/size=10/p=0.5");
  fault::configure("net/worker_eval:error:match=" + poison);

  net::TcpListener listener = net::TcpListener::bind(0);
  ASSERT_TRUE(listener.valid());
  const std::uint16_t port = listener.port();

  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) pending.push_back(i);

  std::map<std::size_t, RunningStats> results;
  std::vector<std::pair<std::size_t, std::size_t>> quarantined;
  net::SocketCoordinatorOptions options;
  options.local_fallback = false;  // workers (and only workers) compute
  options.engine.max_point_retries = 2;
  options.engine.handshake_timeout = 5.0;
  options.engine.worker_timeout = 10.0;
  options.engine.heartbeat_interval = 0.5;

  std::thread coordinator([&] {
    net::run_socket_sweep(
        listener, points, spec.name(), spec.fingerprint(), pending, eval_point,
        [&](std::size_t index, const RunningStats& stats) {
          results.emplace(index, stats);
        },
        options,
        [&](std::size_t index, std::size_t attempts) {
          quarantined.emplace_back(index, attempts);
        });
  });
  std::thread worker([&] {
    net::WorkerServeOptions serve_options;
    serve_options.node = "chaos-tcp-worker";
    serve_options.connect_retries = 50;
    // Exactly two reconnects: the third loss is the forfeit that trips the
    // quarantine (budget 2), after which the coordinator is gone -- a
    // further reconnect would park in the dead listener's backlog forever.
    serve_options.lost_retries = 2;
    net::serve_pinned_sweep("127.0.0.1", port, spec, eval_point,
                            serve_options);
  });
  coordinator.join();
  worker.join();

  // Exactly the poison point is quarantined, after 3 forfeits (> budget 2).
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].first, points.size() - 1);
  EXPECT_EQ(quarantined[0].second, 3u);
  // Every other point was computed by the worker, byte-identically.
  ASSERT_EQ(results.size(), points.size() - 1);
  for (const auto& [index, stats] : results) {
    const RunningStats expected = eval_point(points[index]);
    EXPECT_EQ(stats.count(), expected.count()) << points[index].id;
    EXPECT_EQ(stats.mean(), expected.mean()) << points[index].id;
    EXPECT_EQ(stats.sum_squared_deviations(),
              expected.sum_squared_deviations())
        << points[index].id;
  }
}

// ---------------------------------------------------------------------------
// Simulated network: scripted worker misbehavior (no fault registry
// involved), so these run under -DQPS_FAULT=OFF too.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, SimPoisonBurnsWorkerFleetThenHonestWorkerFinishes) {
  // Four workers in a row die the instant they are handed a point; the
  // front pending point eats all four (one forfeit each) and is
  // quarantined at the budget.  A late honest worker completes the rest.
  sim::Simulator simulator;
  Rng rng(11);
  sim::StreamNetwork network(simulator, rng);
  const SweepSpec spec = make_chaos_spec();

  sim::SimCoordinatorOptions options;
  options.engine.handshake_timeout = 2.0;
  options.engine.worker_timeout = 5.0;
  options.engine.heartbeat_interval = 0.3;
  options.engine.max_point_retries = 3;
  options.tick_interval = 0.25;
  sim::SimCoordinator coordinator(simulator, network, spec, options);

  std::vector<std::unique_ptr<sim::SimWorker>> killers;
  for (int i = 0; i < 4; ++i) {
    sim::SimWorkerOptions worker;
    worker.node = "killer-" + std::to_string(i);
    worker.join_time = 0.2 + static_cast<double>(i);  // one at a time
    worker.spec = &spec;
    worker.eval = eval_point;
    worker.die_holding = 1;  // die on the first request
    killers.push_back(
        std::make_unique<sim::SimWorker>(simulator, network, worker));
  }
  sim::SimWorkerOptions honest;
  honest.node = "honest";
  honest.join_time = 4.5;  // after the whole fleet has burned
  honest.spec = &spec;
  honest.eval = eval_point;
  sim::SimWorker survivor(simulator, network, honest);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(coordinator.engine().points_quarantined(), 1u);
  // 9 of 10 points have results; each is bit-exact.
  ASSERT_EQ(coordinator.results().size(), spec.point_count() - 1);
  for (const auto& [index, stats] : coordinator.results()) {
    const RunningStats expected = eval_point(coordinator.points()[index]);
    EXPECT_EQ(stats.mean(), expected.mean());
    EXPECT_EQ(stats.count(), expected.count());
  }
  for (const auto& killer : killers)
    EXPECT_EQ(killer->state(), sim::SimWorker::State::kDead);
  EXPECT_EQ(survivor.state(), sim::SimWorker::State::kDone);
}

TEST_F(ChaosTest, SimDeadlineWatchdogForfeitsLiveButStuckWorker) {
  // The worker heartbeats diligently while "evaluating" one point for 50
  // simulated seconds: alive by every liveness measure, useless by the
  // only one that matters.  The point-deadline watchdog must kill it and
  // local fallback must finish the sweep.
  sim::Simulator simulator;
  Rng rng(13);
  sim::StreamNetwork network(simulator, rng);
  const SweepSpec spec = make_chaos_spec();

  sim::SimCoordinatorOptions options;
  options.engine.handshake_timeout = 2.0;
  options.engine.worker_timeout = 30.0;  // heartbeats keep this fed
  options.engine.heartbeat_interval = 0.3;
  options.engine.point_deadline = 1.0;  // ...but progress has a deadline
  options.tick_interval = 0.25;
  options.local_fallback = true;
  options.local_eval = eval_point;
  sim::SimCoordinator coordinator(simulator, network, spec, options);

  sim::SimWorkerOptions stuck;
  stuck.node = "stuck";
  stuck.join_time = 0.1;
  stuck.spec = &spec;
  stuck.eval = eval_point;
  stuck.eval_seconds = 50.0;  // far past the deadline
  stuck.send_heartbeats = true;
  sim::SimWorker worker(simulator, network, stuck);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_GE(coordinator.engine().deadline_forfeits(), 1u);
  EXPECT_EQ(coordinator.engine().points_quarantined(), 0u);  // one forfeit
  EXPECT_EQ(worker.state(), sim::SimWorker::State::kLost);
  // Every point completed (locally) and is bit-exact.
  ASSERT_EQ(coordinator.results().size(), spec.point_count());
  for (const auto& [index, stats] : coordinator.results()) {
    const RunningStats expected = eval_point(coordinator.points()[index]);
    EXPECT_EQ(stats.mean(), expected.mean());
    EXPECT_EQ(stats.count(), expected.count());
  }
}

// ---------------------------------------------------------------------------
// Failover: a coordinator dying mid-journal is replaced by a standby that
// replays the journal under a strictly larger epoch; the merged sweep is
// byte-identical.  Quarantine re-admission: --readmit clears poison
// markers with a journaled record and re-runs exactly those points.
// ---------------------------------------------------------------------------

TEST_F(ChaosTest, StandbyReplayingTheJournalBumpsTheEpochByteIdentical) {
  REQUIRE_FAULTS();
  const std::string path = temp_path("failover.jsonl");
  std::remove(path.c_str());

  // The primary dies at the 6th journal write (epoch record + 4 results
  // committed): the injected full disk stands in for a SIGKILL -- either
  // way the journal simply ends.
  fault::configure("sweep/checkpoint_write:error:after=6");
  SweepOptions primary;
  primary.checkpoint_path = path;
  EXPECT_THROW(SweepRunner(make_chaos_spec(), primary).run(eval_point),
               sweep::CheckpointError);
  fault::clear();
  ASSERT_EQ(read_lines(path).size(), 5u);  // epoch record + 4 results

  // The standby takes over: resume replays the journal, claims the next
  // epoch, computes only the 6 missing points.
  std::atomic<int> calls{0};
  SweepOptions standby;
  standby.checkpoint_path = path;
  standby.resume = true;
  const auto resumed =
      SweepRunner(make_chaos_spec(), standby).run([&](const SweepPoint& p) {
        ++calls;
        return eval_point(p);
      });
  EXPECT_EQ(calls.load(), 6);
  const auto baseline =
      SweepRunner(make_chaos_spec(), SweepOptions{}).run(eval_point);
  expect_same_results(baseline, resumed);
  std::size_t revived = 0;
  for (const auto& result : resumed)
    if (result.from_checkpoint) ++revived;
  EXPECT_EQ(revived, 4u);

  // The journal now tells the whole failover story: epoch 1 (primary),
  // epoch 2 (standby), monotonic -- and the next activation would be 3.
  std::vector<std::uint64_t> epochs;
  for (const auto& line : read_lines(path))
    if (sweep::is_journal_control(line))
      if (const auto ctl = sweep::decode_journal_control(line);
          ctl && ctl->kind == sweep::JournalRecordKind::kEpoch)
        epochs.push_back(ctl->epoch);
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], 1u);
  EXPECT_EQ(epochs[1], 2u);
  const SweepSpec spec = make_chaos_spec();
  sweep::SweepCheckpoint scan(path, spec.name(), spec.fingerprint(),
                              /*resume=*/true);
  EXPECT_EQ(scan.epoch(), 3u);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, ReadmitRerunsExactlyTheQuarantinedPointByteIdentical) {
  REQUIRE_FAULTS();
  const std::string path = temp_path("readmit.jsonl");
  std::remove(path.c_str());
  const std::string poison = "family=beta/size=10/p=0.25";

  // Run 1: the poison point fails in the workers AND the in-process last
  // resort -- quarantined, with the marker journaled.
  fault::configure("chaos/eval:error:match=" + poison);
  SweepOptions first;
  first.checkpoint_path = path;
  first.workers = 2;
  first.worker_command =
      self_worker_command("sweep/point_eval:crash:match=" + poison);
  const auto poisoned = SweepRunner(make_chaos_spec(), first).run(eval_point);
  fault::clear();
  std::size_t poison_index = 0;
  for (std::size_t i = 0; i < poisoned.size(); ++i)
    if (poisoned[i].point.id == poison) {
      poison_index = i;
      EXPECT_TRUE(poisoned[i].quarantined);
    }

  // Run 2: plain --resume.  The marker is sticky -- the point failed
  // deterministically, so re-running it without a code change would just
  // burn the budget again.  Nothing is evaluated.
  std::atomic<int> calls{0};
  const auto counting_eval = [&](const SweepPoint& p) {
    ++calls;
    return eval_point(p);
  };
  SweepOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  const auto still = SweepRunner(make_chaos_spec(), second).run(counting_eval);
  EXPECT_EQ(calls.load(), 0);
  EXPECT_TRUE(still[poison_index].quarantined);

  // Run 3: --readmit naming the point (the "code fix" is the cleared
  // fault registry).  Exactly the poisoned point is re-run, the readmit
  // record is journaled, and the final report is byte-identical to a
  // clean sweep.
  calls = 0;
  SweepOptions third;
  third.checkpoint_path = path;
  third.resume = true;
  third.readmit = true;
  third.readmit_points = {poison};
  const auto healed = SweepRunner(make_chaos_spec(), third).run(counting_eval);
  EXPECT_EQ(calls.load(), 1);
  const auto baseline =
      SweepRunner(make_chaos_spec(), SweepOptions{}).run(eval_point);
  expect_same_results(baseline, healed);

  std::size_t readmit_records = 0;
  for (const auto& line : read_lines(path))
    if (const auto ctl = sweep::decode_journal_control(line);
        ctl && ctl->kind == sweep::JournalRecordKind::kReadmit) {
      ++readmit_records;
      EXPECT_EQ(ctl->id, poison);
    }
  EXPECT_EQ(readmit_records, 1u);

  // Run 4: the readmit itself is journaled, so a later plain --resume
  // keeps the healed result instead of resurrecting the marker.
  calls = 0;
  SweepOptions fourth;
  fourth.checkpoint_path = path;
  fourth.resume = true;
  const auto after = SweepRunner(make_chaos_spec(), fourth).run(counting_eval);
  EXPECT_EQ(calls.load(), 0);
  expect_same_results(baseline, after);
  std::remove(path.c_str());
}

TEST_F(ChaosTest, ReadmitNamingAHealthyPointIsRefusedLoudly) {
  const std::string path = temp_path("readmit_refuse.jsonl");
  std::remove(path.c_str());
  SweepOptions first;
  first.checkpoint_path = path;
  SweepRunner(make_chaos_spec(), first).run(eval_point);  // clean run

  SweepOptions bad;
  bad.checkpoint_path = path;
  bad.resume = true;
  bad.readmit = true;
  bad.readmit_points = {"family=alpha/size=3/strategy=R/p=0.25"};
  EXPECT_THROW(SweepRunner(make_chaos_spec(), bad).run(eval_point),
               std::exception);  // nothing is quarantined: refuse, not no-op
  std::remove(path.c_str());
}

TEST_F(ChaosTest, LeaseHandoffStandbyTakesOverAndZombieSeesSupersession) {
  const std::string journal = temp_path("lease.jsonl");
  const std::string lease_path = sweep::CoordinatorLease::path_for(journal);
  std::remove(lease_path.c_str());

  // Primary acquires; a standby polling wait_and_acquire() stays blocked
  // (and keeps invoking its on_wait hook) while renewals keep the lease
  // fresh.
  auto primary = std::make_unique<sweep::CoordinatorLease>(
      lease_path, "primary:1", /*timeout_seconds=*/0.4);
  primary->acquire();
  EXPECT_TRUE(primary->held());
  EXPECT_FALSE(primary->stale());
  const auto holder = sweep::CoordinatorLease::read(lease_path);
  ASSERT_TRUE(holder.has_value());
  EXPECT_EQ(holder->node, "primary:1");

  sweep::CoordinatorLease standby(lease_path, "standby:2",
                                  /*timeout_seconds=*/0.4);
  std::atomic<int> waits{0};
  std::thread takeover([&] {
    standby.wait_and_acquire([&] { ++waits; });
  });
  // Kill the primary.  Destruction releases (unlinks) the lease, so the
  // standby's next poll takes over without waiting out the full timeout.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  primary.reset();
  takeover.join();
  EXPECT_TRUE(standby.held());
  EXPECT_GT(waits.load(), 0);
  // A clean release unlinks the file, so the generation counter restarts;
  // generations order holders only while the file persists (which is why
  // fencing authority lives in the journal's epochs, not here).
  EXPECT_EQ(standby.generation(), 1u);

  // A zombie resurrected with the old generation discovers the takeover
  // from its own renewal thread: re-read before rewrite, flag superseded,
  // never clobber the new holder.
  sweep::CoordinatorLease zombie(lease_path, "zombie:3",
                                 /*timeout_seconds=*/0.4);
  zombie.acquire();  // bumps the generation over the standby's
  EXPECT_EQ(zombie.generation(), standby.generation() + 1);
  for (int i = 0; i < 100 && !standby.superseded(); ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(standby.superseded());
  EXPECT_FALSE(zombie.superseded());
  const auto final_holder = sweep::CoordinatorLease::read(lease_path);
  ASSERT_TRUE(final_holder.has_value());
  EXPECT_EQ(final_holder->node, "zombie:3");
  std::remove(lease_path.c_str());
}

}  // namespace

/// Worker-mode entry, reached from main() below in re-exec'ed copies of
/// this binary: install the requested fault spec in THIS process's
/// registry, then serve the chaos grid on the pipe protocol fds.
int run_chaos_worker(const std::string& fault_spec) {
  if (fault_spec != "none") fault::configure(fault_spec);
  return SweepRunner::serve(make_chaos_spec(), eval_point, 0, 3);
}

}  // namespace qps::chaos

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--chaos-worker")
    return qps::chaos::run_chaos_worker(argv[2]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
