// Line reassembly under adversarial segmentation (core/net/framing.h).
//
// TCP may split a protocol line anywhere: these tests cut real result
// frames at every byte boundary -- including mid-UTF-8 sequence and
// halfway through a JSON \uXXXX escape -- and assert the reassembled
// lines, and the results decoded from them, are bit-identical to the
// whole-line path.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/net/framing.h"
#include "core/sweep/sweep_spec.h"
#include "core/sweep/wire.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qps::net {
namespace {

/// A result line with awkward doubles: non-round mean, huge spread, so
/// any lossy re-encode or byte drop shows up in the decoded stats.
std::string gnarly_result_line() {
  sweep::SweepPoint point;
  point.index = 7;
  point.family = "maj";
  point.size = 9;
  point.p = 1.0 / 3.0;
  point.seed = 0xdeadbeefcafef00dULL;
  point.id = "family=maj/size=9/p=0.3333333333333333";
  RunningStats stats;
  stats.add(1.0 / 3.0);
  stats.add(-1e300);
  stats.add(6.02214076e23);
  return sweep::encode_result("grid", 0x0123456789abcdefULL, point, stats);
}

void expect_decodes_identically(const std::string& line,
                                const std::vector<std::string>& reassembled) {
  ASSERT_EQ(reassembled.size(), 1u);
  // Byte identity of the line implies bit identity of anything decoded
  // from it, but check the decoder output too: that is the actual
  // contract the aggregation layer relies on.
  const std::string with_newline = reassembled[0] + "\n";
  EXPECT_EQ(with_newline, line);
  const auto direct = sweep::decode_result(line);
  const auto via = sweep::decode_result(with_newline);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(via.has_value());
  EXPECT_EQ(via->sweep, direct->sweep);
  EXPECT_EQ(via->fingerprint, direct->fingerprint);
  EXPECT_EQ(via->index, direct->index);
  EXPECT_EQ(via->id, direct->id);
  EXPECT_EQ(via->stats.count(), direct->stats.count());
  EXPECT_EQ(via->stats.mean(), direct->stats.mean());
  EXPECT_EQ(via->stats.sum_squared_deviations(),
            direct->stats.sum_squared_deviations());
  EXPECT_EQ(via->stats.min(), direct->stats.min());
  EXPECT_EQ(via->stats.max(), direct->stats.max());
}

TEST(LineReassembler, EmitsOnlyTerminatedLines) {
  LineReassembler reassembler;
  std::vector<std::string> lines;
  ASSERT_TRUE(reassembler.feed("alpha\nbeta", lines));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "alpha");
  EXPECT_EQ(reassembler.partial(), "beta");
  ASSERT_TRUE(reassembler.feed("\n", lines));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "beta");
  EXPECT_EQ(reassembler.partial(), "");
}

TEST(LineReassembler, OneByteSegmentationIsBitIdentical) {
  const std::string line = gnarly_result_line();
  LineReassembler reassembler;
  std::vector<std::string> lines;
  for (const char byte : line)
    ASSERT_TRUE(reassembler.feed(std::string_view(&byte, 1), lines));
  expect_decodes_identically(line, lines);
}

TEST(LineReassembler, SplitAtEveryBoundaryIsBitIdentical) {
  const std::string line = gnarly_result_line();
  for (std::size_t cut = 0; cut <= line.size(); ++cut) {
    LineReassembler reassembler;
    std::vector<std::string> lines;
    ASSERT_TRUE(reassembler.feed(std::string_view(line).substr(0, cut), lines));
    ASSERT_TRUE(reassembler.feed(std::string_view(line).substr(cut), lines));
    expect_decodes_identically(line, lines);
  }
}

TEST(LineReassembler, SplitInsideUtf8AndInsideEscape) {
  // Raw multi-byte UTF-8 ("héllo", a snowman) next to a \uXXXX escape: the
  // reassembler is byte-oriented, so a cut inside either must be invisible
  // after reassembly.
  const std::string line =
      "{\"s\": \"h\xc3\xa9llo \xe2\x98\x83 and \\u00e9scape\"}\n";
  for (std::size_t cut = 1; cut < line.size(); ++cut) {
    LineReassembler reassembler;
    std::vector<std::string> lines;
    ASSERT_TRUE(reassembler.feed(std::string_view(line).substr(0, cut), lines));
    ASSERT_TRUE(reassembler.feed(std::string_view(line).substr(cut), lines));
    ASSERT_EQ(lines.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(lines[0] + "\n", line) << "cut at " << cut;
  }
}

TEST(LineReassembler, FrameBoundarySplitsKeepFramesApart) {
  // Two frames glued into one buffer, cut at every position: whatever the
  // segmentation -- including a chunk carrying "...end\n{start..." -- the
  // frames come out separate and intact.
  const std::string first = gnarly_result_line();
  const std::string second = sweep::encode_request(42);
  const std::string stream = first + second;
  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    LineReassembler reassembler;
    std::vector<std::string> lines;
    ASSERT_TRUE(
        reassembler.feed(std::string_view(stream).substr(0, cut), lines));
    ASSERT_TRUE(reassembler.feed(std::string_view(stream).substr(cut), lines));
    ASSERT_EQ(lines.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(lines[0] + "\n", first) << "cut at " << cut;
    EXPECT_EQ(lines[1] + "\n", second) << "cut at " << cut;
    EXPECT_EQ(sweep::decode_request(lines[1] + "\n"), 42u);
  }
}

TEST(LineReassembler, RandomSegmentationIsBitIdentical) {
  // 100 random segmentations of a 3-frame stream; chunk lengths 1..7.
  const std::string frames[] = {gnarly_result_line(), sweep::encode_request(0),
                                gnarly_result_line()};
  std::string stream;
  for (const std::string& frame : frames) stream += frame;
  Rng rng(12345);
  for (int iteration = 0; iteration < 100; ++iteration) {
    LineReassembler reassembler;
    std::vector<std::string> lines;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const std::size_t len = 1 + rng.below(7);
      ASSERT_TRUE(reassembler.feed(
          std::string_view(stream).substr(offset, len), lines));
      offset += len;
    }
    ASSERT_EQ(lines.size(), 3u);
    for (int i = 0; i < 3; ++i) EXPECT_EQ(lines[i] + "\n", frames[i]);
  }
}

TEST(LineReassembler, OversizedFrameLatchesUntilReset) {
  LineReassembler reassembler(/*max_line_bytes=*/8);
  std::vector<std::string> lines;
  EXPECT_FALSE(reassembler.feed("123456789", lines));
  EXPECT_TRUE(reassembler.failed());
  // Still failed: the newline that finally arrives must not be mistaken
  // for the end of a legitimate frame.
  EXPECT_FALSE(reassembler.feed("tail\n", lines));
  EXPECT_TRUE(lines.empty());
  reassembler.reset();
  EXPECT_FALSE(reassembler.failed());
  EXPECT_TRUE(reassembler.feed("ok\n", lines));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ok");
}

TEST(LineReassembler, PartialExposesTruncatedFinalFrame) {
  LineReassembler reassembler;
  std::vector<std::string> lines;
  const std::string line = gnarly_result_line();
  const std::string truncated = line.substr(0, line.size() / 2);
  ASSERT_TRUE(reassembler.feed(truncated, lines));
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(reassembler.partial(), truncated);
  // The truncated tail is not decodable -- exactly why the protocol never
  // hands partials to the decoders.
  EXPECT_FALSE(sweep::decode_result(reassembler.partial()).has_value());
}

}  // namespace
}  // namespace qps::net
