// The socket job server over real TCP on loopback
// (core/net/socket_sweep.h): kernel-chosen ports, byte-identical
// aggregation for 1/2/4 concurrent socket workers, abrupt worker death,
// duplicate deliveries, and checkpoint/resume composing with distributed
// execution.
//
// Workers run as threads inside this process -- same protocol code path
// as the qps_workerd daemon, but joinable from a unit test (the CI
// distributed-smoke job covers the real multi-process topology).
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <deque>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <chrono>

#include "core/fault/fault.h"
#include "core/net/framing.h"
#include "core/net/messages.h"
#include "core/net/socket.h"
#include "core/net/socket_sweep.h"
#include "core/net/worker.h"
#include "core/obs/metrics.h"
#include "core/sweep/sweep_runner.h"
#include "core/sweep/sweep_spec.h"
#include "util/rng.h"

namespace qps::net {
namespace {

sweep::SweepSpec make_spec() {
  sweep::SweepSpec spec("socket_test_grid", 55);
  spec.add_block("alpha", {3, 5}, {"R", "IR"});
  spec.add_block("beta", {10});
  spec.set_ps({0.25, 0.5});
  return spec;
}

RunningStats eval_point(const sweep::SweepPoint& point) {
  Rng rng = Rng::for_stream(point.seed, 31337);
  RunningStats stats;
  for (int i = 0; i < 100; ++i)
    stats.add(rng.uniform01() * (1.0 + point.p) +
              static_cast<double>(point.size));
  return stats;
}

void expect_identical(const std::map<std::size_t, RunningStats>& got,
                      const sweep::SweepSpec& spec) {
  const auto points = spec.expand();
  ASSERT_EQ(got.size(), points.size());
  for (const auto& point : points) {
    const auto it = got.find(point.index);
    ASSERT_NE(it, got.end()) << point.id;
    const RunningStats direct = eval_point(point);
    EXPECT_EQ(it->second.count(), direct.count()) << point.id;
    EXPECT_EQ(it->second.mean(), direct.mean()) << point.id;
    EXPECT_EQ(it->second.sum_squared_deviations(),
              direct.sum_squared_deviations())
        << point.id;
    EXPECT_EQ(it->second.min(), direct.min()) << point.id;
    EXPECT_EQ(it->second.max(), direct.max()) << point.id;
  }
}

/// Runs the job server for `spec` on `listener` in a joinable thread,
/// recording completions into `results` (read it only after join()).
std::thread coordinator_thread(TcpListener& listener,
                               const std::vector<sweep::SweepPoint>& points,
                               const sweep::SweepSpec& spec,
                               std::map<std::size_t, RunningStats>& results,
                               const SocketCoordinatorOptions& options) {
  return std::thread([&listener, &points, &spec, &results, options] {
    std::deque<std::size_t> pending;
    for (std::size_t i = 0; i < points.size(); ++i) pending.push_back(i);
    run_socket_sweep(
        listener, points, spec.name(), spec.fingerprint(), std::move(pending),
        eval_point,
        [&results](std::size_t index, const RunningStats& stats) {
          results[index] = stats;
        },
        options);
  });
}

/// Blocking line read through a reassembler; nullopt on EOF or framing
/// failure.
std::optional<std::string> read_line(TcpStream& stream,
                                     LineReassembler& reassembler,
                                     std::vector<std::string>& queue) {
  while (queue.empty()) {
    char chunk[512];
    const long n = stream.read_some(chunk, sizeof chunk);
    if (n <= 0) return std::nullopt;
    if (!reassembler.feed(
            std::string_view(chunk, static_cast<std::size_t>(n)), queue))
      return std::nullopt;
  }
  std::string line = queue.front();
  queue.erase(queue.begin());
  return line;
}

TEST(SocketSweep, PortZeroYieldsRealDistinctPorts) {
  TcpListener first = TcpListener::bind(0);
  TcpListener second = TcpListener::bind(0);
  ASSERT_TRUE(first.valid());
  ASSERT_TRUE(second.valid());
  EXPECT_GT(first.port(), 0);
  EXPECT_GT(second.port(), 0);
  EXPECT_NE(first.port(), second.port());
  // And the reported port is genuinely connectable.
  TcpStream probe = TcpStream::connect("127.0.0.1", first.port());
  EXPECT_TRUE(probe.valid());
}

TEST(SocketSweep, ParseHostPort) {
  std::string host;
  std::uint16_t port = 0;
  EXPECT_TRUE(parse_host_port("127.0.0.1:8080", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_TRUE(parse_host_port("example.com:1", host, port));
  EXPECT_EQ(host, "example.com");
  EXPECT_EQ(port, 1);
  EXPECT_FALSE(parse_host_port("no-port", host, port));
  EXPECT_FALSE(parse_host_port(":80", host, port));
  EXPECT_FALSE(parse_host_port("host:", host, port));
  EXPECT_FALSE(parse_host_port("host:99999", host, port));
  EXPECT_FALSE(parse_host_port("host:12ab", host, port));
}

TEST(SocketSweep, ByteIdenticalAcrossOneTwoAndFourSocketWorkers) {
  const sweep::SweepSpec spec = make_spec();
  const auto points = spec.expand();
  for (const std::size_t worker_count : {1u, 2u, 4u}) {
    TcpListener listener = TcpListener::bind(0);
    ASSERT_TRUE(listener.valid());
    SocketCoordinatorOptions options;
    options.local_fallback = false;  // every point must cross the wire
    std::map<std::size_t, RunningStats> results;
    std::thread coordinator =
        coordinator_thread(listener, points, spec, results, options);

    std::vector<ServeOutcome> outcomes(worker_count,
                                       ServeOutcome::kConnectFailed);
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < worker_count; ++w) {
      workers.emplace_back([&, w] {
        WorkerServeOptions serve;
        serve.node = "test-worker-" + std::to_string(w);
        outcomes[w] = serve_pinned_sweep("127.0.0.1", listener.port(), spec,
                                         eval_point, serve);
      });
    }
    for (std::thread& worker : workers) worker.join();
    coordinator.join();

    for (std::size_t w = 0; w < worker_count; ++w)
      EXPECT_EQ(outcomes[w], ServeOutcome::kServedBye)
          << "worker " << w << " of " << worker_count;
    expect_identical(results, spec);
  }
}

TEST(SocketSweep, AbruptWorkerDeathForfeitsOnlyItsPoint) {
  const sweep::SweepSpec spec = make_spec();
  const auto points = spec.expand();
  TcpListener listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.valid());
  SocketCoordinatorOptions options;
  options.local_fallback = false;
  std::map<std::size_t, RunningStats> results;
  std::thread coordinator =
      coordinator_thread(listener, points, spec, results, options);

  // A worker that completes the handshake, receives a request, and dies
  // without a word (SIGKILL semantics: the kernel flushes an EOF).
  {
    TcpStream doomed = TcpStream::connect("127.0.0.1", listener.port());
    ASSERT_TRUE(doomed.valid());
    Hello hello;
    hello.node = "doomed";
    hello.sweep = spec.name();
    hello.fingerprint = spec.fingerprint();
    ASSERT_TRUE(doomed.send_all(encode_hello(hello)));
    LineReassembler reassembler;
    std::vector<std::string> queue;
    const auto welcome = read_line(doomed, reassembler, queue);
    ASSERT_TRUE(welcome.has_value());
    EXPECT_EQ(classify_line(JsonValue::parse(*welcome)), LineKind::kWelcome);
    const auto request = read_line(doomed, reassembler, queue);
    ASSERT_TRUE(request.has_value());
    EXPECT_EQ(classify_line(JsonValue::parse(*request)), LineKind::kRequest);
  }  // stream destructor: abrupt close while holding a point

  std::thread survivor([&] {
    WorkerServeOptions serve;
    serve.node = "survivor";
    serve_pinned_sweep("127.0.0.1", listener.port(), spec, eval_point, serve);
  });
  survivor.join();
  coordinator.join();
  expect_identical(results, spec);
}

TEST(SocketSweep, DuplicateResultsOverTcpAreDedupedExactly) {
  const sweep::SweepSpec spec = make_spec();
  const auto points = spec.expand();
  TcpListener listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.valid());
  SocketCoordinatorOptions options;
  options.local_fallback = false;
  std::map<std::size_t, RunningStats> results;
  std::thread coordinator =
      coordinator_thread(listener, points, spec, results, options);

  // Hand-driven worker that transmits every result twice, as a worker
  // retrying after a presumed loss would.
  TcpStream stream = TcpStream::connect("127.0.0.1", listener.port());
  ASSERT_TRUE(stream.valid());
  Hello hello;
  hello.node = "stutterer";
  hello.sweep = spec.name();
  hello.fingerprint = spec.fingerprint();
  WorkerEngine engine(hello);
  ASSERT_TRUE(stream.send_all(engine.hello_line()));
  LineReassembler reassembler;
  std::vector<std::string> queue;
  bool saw_bye = false;
  while (!saw_bye) {
    const auto line = read_line(stream, reassembler, queue);
    ASSERT_TRUE(line.has_value());
    const WorkerEngine::Event event = engine.on_line(*line);
    switch (event.kind) {
      case WorkerEngine::Event::Kind::kAccepted:
      case WorkerEngine::Event::Kind::kNone:
        break;
      case WorkerEngine::Event::Kind::kEvaluate: {
        ASSERT_LT(event.index, points.size());
        const std::string reply =
            engine.result_line(points[event.index],
                               eval_point(points[event.index]));
        ASSERT_TRUE(stream.send_all(reply));
        ASSERT_TRUE(stream.send_all(reply));  // the retransmission
        break;
      }
      case WorkerEngine::Event::Kind::kBye:
        saw_bye = true;
        break;
      default:
        FAIL() << "unexpected event on manual worker: " << event.error;
    }
  }
  coordinator.join();
  expect_identical(results, spec);  // single-counted despite the echoes
}

TEST(SocketSweep, CheckpointResumeComposesWithSocketWorkers) {
  const std::string journal = testing::TempDir() + "qps_net_resume_" +
                              std::to_string(::getpid()) + ".journal";
  std::remove(journal.c_str());

  // Baseline: the full sweep in-process, journaling every point.
  sweep::SweepOptions baseline_options;
  baseline_options.checkpoint_path = journal;
  sweep::SweepRunner baseline(make_spec(), baseline_options);
  const auto expected = baseline.run(eval_point);

  // "Kill" the coordinator mid-sweep: keep the epoch record plus 4 result
  // lines and a torn fifth (a process dying mid-write leaves exactly this).
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 6u);
  {
    std::ofstream out(journal, std::ios::trunc);
    for (int i = 0; i < 5; ++i) out << lines[i] << "\n";
    out << lines[5].substr(0, lines[5].size() / 2);  // no terminator
  }

  // Resume with the remaining points computed by a socket worker.
  TcpListener listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.valid());
  SocketCoordinatorOptions coordinator;
  coordinator.local_fallback = false;
  sweep::SweepOptions resume_options;
  resume_options.checkpoint_path = journal;
  resume_options.resume = true;
  resume_options.remote_runner =
      make_socket_remote_runner(&listener, coordinator);
  const sweep::SweepSpec spec = make_spec();
  std::thread worker([&] {
    WorkerServeOptions serve;
    serve.node = "resumer";
    serve_pinned_sweep("127.0.0.1", listener.port(), spec, eval_point, serve);
  });
  sweep::SweepRunner resumed(make_spec(), resume_options);
  const auto results = resumed.run(eval_point);
  worker.join();

  ASSERT_EQ(results.size(), expected.size());
  std::size_t revived = 0;
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].point.id, expected[i].point.id);
    EXPECT_EQ(results[i].stats.count(), expected[i].stats.count());
    EXPECT_EQ(results[i].stats.mean(), expected[i].stats.mean());
    EXPECT_EQ(results[i].stats.sum_squared_deviations(),
              expected[i].stats.sum_squared_deviations());
    EXPECT_EQ(results[i].stats.min(), expected[i].stats.min());
    EXPECT_EQ(results[i].stats.max(), expected[i].stats.max());
    if (results[i].from_checkpoint) ++revived;
  }
  // Exactly the 4 intact journal lines were revived; the torn fifth was
  // recomputed over the socket with everything else.
  EXPECT_EQ(revived, 4u);
  std::remove(journal.c_str());
}

TEST(SocketSweep, LocalFallbackCompletesWithNoWorkersAtAll) {
  const sweep::SweepSpec spec = make_spec();
  const auto points = spec.expand();
  TcpListener listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.valid());
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) pending.push_back(i);
  std::map<std::size_t, RunningStats> results;
  run_socket_sweep(
      listener, points, spec.name(), spec.fingerprint(), std::move(pending),
      eval_point,
      [&results](std::size_t index, const RunningStats& stats) {
        results[index] = stats;
      },
      SocketCoordinatorOptions{});  // local_fallback defaults on
  expect_identical(results, spec);
}

TEST(SocketSweep, HeartbeatGapHistogramWidensUnderInjectedDelay) {
  if (!fault::kFaultCompiled)
    GTEST_SKIP() << "fault injection compiled out (QPS_FAULT=OFF)";
  // A delay fault on the worker's heartbeat thread stretches every beat
  // well past the advertised 50 ms cadence; the coordinator's observed
  // net/heartbeat_gap_us histogram must show the widened gaps -- that
  // histogram is how an operator sees congestion before any timeout.
  sweep::SweepSpec spec("socket_hb_grid", 77);
  spec.add_block("alpha", {3});
  spec.set_ps({0.25, 0.5});  // 2 points
  const auto points = spec.expand();
  obs::Histogram& gap =
      obs::MetricsRegistry::instance().histogram("net/heartbeat_gap_us");
  const std::uint64_t count_before = gap.count();
  const std::uint64_t sum_before = gap.sum();

  fault::configure("net/worker_heartbeat:delay:ms=120");
  TcpListener listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.valid());
  SocketCoordinatorOptions coordinator;
  coordinator.local_fallback = false;
  coordinator.engine.heartbeat_interval = 0.05;
  std::map<std::size_t, RunningStats> results;
  std::thread server =
      coordinator_thread(listener, points, spec, results, coordinator);
  // Each evaluation spans several heartbeat intervals, so beats flow while
  // the data path is silent.
  const auto slow_eval = [](const sweep::SweepPoint& p) {
    std::this_thread::sleep_for(std::chrono::milliseconds(400));
    return eval_point(p);
  };
  WorkerServeOptions serve;
  serve.node = "laggard";
  const ServeOutcome outcome = serve_pinned_sweep(
      "127.0.0.1", listener.port(), spec, slow_eval, serve);
  server.join();
  fault::clear();

  EXPECT_EQ(outcome, ServeOutcome::kServedBye);
  expect_identical(results, spec);
  const std::uint64_t recorded = gap.count() - count_before;
  ASSERT_GE(recorded, 1u);
  // Mean observed gap across the new samples: at least two full delayed
  // cadences above the configured 50 ms (50 + 120 = 170 ms nominal; 100 ms
  // leaves generous scheduling slack).
  const double mean_gap_us =
      static_cast<double>(gap.sum() - sum_before) /
      static_cast<double>(recorded);
  EXPECT_GT(mean_gap_us, 100000.0);
}

}  // namespace
}  // namespace qps::net
