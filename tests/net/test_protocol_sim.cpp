// The distributed failure matrix, as plain ctest cases: the socket worker
// protocol running over the simulated stream network
// (sim/protocol_harness.h + sim/stream_network.h).
//
// Every scenario the fabric must survive on real hosts -- slow joiners,
// workers dying or vanishing mid-sweep, duplicate deliveries after a
// retransmit, truncated and garbage frames, mixed protocol versions --
// runs here deterministically, and every completed sweep must be
// bit-identical to evaluating the points directly.
#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/net/framing.h"
#include "core/net/messages.h"
#include "core/sweep/evaluators.h"
#include "core/sweep/spec_codec.h"
#include "core/sweep/sweep_spec.h"
#include "core/sweep/wire.h"
#include "sim/protocol_harness.h"
#include "sim/simulator.h"
#include "sim/stream_network.h"
#include "util/json.h"
#include "util/rng.h"

namespace qps::sim {
namespace {

/// The grid every scenario sweeps: 10 points, mixed strategy/p axes.
sweep::SweepSpec make_spec() {
  sweep::SweepSpec spec("sim_proto_grid", 31);
  spec.add_block("alpha", {3, 5}, {"R", "IR"});
  spec.add_block("beta", {10});
  spec.set_ps({0.25, 0.5});
  return spec;
}

/// Deterministic pure function of the point: what every honest party
/// computes, in-process or across the simulated wire.
RunningStats eval_point(const sweep::SweepPoint& point) {
  Rng rng = Rng::for_stream(point.seed, 4242);
  RunningStats stats;
  for (int i = 0; i < 100; ++i)
    stats.add(rng.uniform01() * (1.0 + point.p) +
              static_cast<double>(point.size));
  return stats;
}

void expect_complete_and_identical(const SimCoordinator& coordinator,
                                   const sweep::SweepSpec& spec,
                                   const sweep::PointEvaluator& eval) {
  const auto points = spec.expand();
  ASSERT_EQ(coordinator.results().size(), points.size());
  for (const auto& point : points) {
    const auto it = coordinator.results().find(point.index);
    ASSERT_NE(it, coordinator.results().end()) << point.id;
    const RunningStats direct = eval(point);
    EXPECT_EQ(it->second.count(), direct.count()) << point.id;
    EXPECT_EQ(it->second.mean(), direct.mean()) << point.id;
    EXPECT_EQ(it->second.sum_squared_deviations(),
              direct.sum_squared_deviations())
        << point.id;
    EXPECT_EQ(it->second.min(), direct.min()) << point.id;
    EXPECT_EQ(it->second.max(), direct.max()) << point.id;
  }
}

/// Common knobs: fast heartbeats and ticks so scenarios resolve quickly.
SimCoordinatorOptions coordinator_options() {
  SimCoordinatorOptions options;
  options.engine.handshake_timeout = 2.0;
  options.engine.worker_timeout = 5.0;
  options.engine.heartbeat_interval = 0.3;
  options.tick_interval = 0.25;
  return options;
}

SimWorkerOptions pinned_worker(const sweep::SweepSpec& spec,
                               const std::string& node) {
  SimWorkerOptions options;
  options.node = node;
  options.spec = &spec;
  options.eval = eval_point;
  options.eval_seconds = 0.02;
  return options;
}

TEST(ProtocolSim, TwoWorkersUnderLatencyAndOneByteSegmentation) {
  Simulator simulator;
  Rng rng(7);
  StreamNetwork network(simulator, rng);
  // Adversarial shaping on every connection from the first hello byte:
  // jittered latency and 1-byte chunks, so every frame crosses the wire
  // maximally fragmented.
  StreamFaults faults;
  faults.latency = uniform_latency(0.001, 0.05);
  faults.max_chunk = 1;
  network.set_default_faults(faults);

  const sweep::SweepSpec spec = make_spec();
  SimCoordinator coordinator(simulator, network, spec,
                             coordinator_options());
  SimWorker first(simulator, network, pinned_worker(spec, "w1"));
  SimWorkerOptions second_options = pinned_worker(spec, "w2");
  second_options.join_time = 0.01;
  SimWorker second(simulator, network, second_options);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();  // drain byes and final closes

  EXPECT_EQ(first.state(), SimWorker::State::kDone);
  EXPECT_EQ(second.state(), SimWorker::State::kDone);
  EXPECT_GT(first.results_sent(), 0u);
  EXPECT_GT(second.results_sent(), 0u);
  EXPECT_EQ(first.results_sent() + second.results_sent(),
            spec.point_count());
  EXPECT_EQ(coordinator.engine().results_from_workers(), spec.point_count());
  // 1-byte chunks really happened: far more deliveries than frames.
  EXPECT_GT(network.chunks_delivered(), 100u);
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, SlowJoinerPicksUpPointsMidSweep) {
  Simulator simulator;
  Rng rng(8);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinator coordinator(simulator, network, spec,
                             coordinator_options());
  SimWorkerOptions slow = pinned_worker(spec, "early");
  slow.eval_seconds = 0.1;  // 10 points x 0.1s: plenty left at t=0.25
  SimWorker early(simulator, network, slow);
  SimWorkerOptions late_options = pinned_worker(spec, "late");
  late_options.eval_seconds = 0.1;
  late_options.join_time = 0.25;
  SimWorker late(simulator, network, late_options);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(early.state(), SimWorker::State::kDone);
  EXPECT_EQ(late.state(), SimWorker::State::kDone);
  EXPECT_GT(late.results_sent(), 0u);  // really joined mid-sweep
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, WorkerDyingMidSweepForfeitsOnlyItsPoint) {
  Simulator simulator;
  Rng rng(9);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinator coordinator(simulator, network, spec,
                             coordinator_options());
  SimWorkerOptions dying = pinned_worker(spec, "dying");
  dying.die_holding = 2;  // answer one request, die on the second
  SimWorker casualty(simulator, network, dying);
  SimWorkerOptions healthy = pinned_worker(spec, "healthy");
  healthy.join_time = 0.05;
  SimWorker survivor(simulator, network, healthy);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(casualty.state(), SimWorker::State::kDead);
  EXPECT_EQ(casualty.results_sent(), 1u);
  EXPECT_EQ(survivor.state(), SimWorker::State::kDone);
  EXPECT_EQ(survivor.results_sent(), spec.point_count() - 1);
  EXPECT_EQ(coordinator.engine().duplicates_ignored(), 0u);
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, VanishedWorkerIsTimedOutAndItsPointReassigned) {
  Simulator simulator;
  Rng rng(10);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  options.engine.worker_timeout = 2.0;
  SimCoordinator coordinator(simulator, network, spec, options);
  SimWorkerOptions vanishing = pinned_worker(spec, "vanishing");
  vanishing.vanish_holding = 2;  // partition, not close: only the liveness
                                 // timeout can reclaim the point
  SimWorker ghost(simulator, network, vanishing);
  SimWorkerOptions healthy = pinned_worker(spec, "healthy");
  healthy.join_time = 0.05;
  SimWorker survivor(simulator, network, healthy);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(ghost.state(), SimWorker::State::kDead);
  EXPECT_EQ(coordinator.engine().workers_timed_out(), 1u);
  EXPECT_EQ(survivor.state(), SimWorker::State::kDone);
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, LateResultAfterTimeoutKillIsIgnored) {
  Simulator simulator;
  Rng rng(11);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  options.engine.worker_timeout = 1.0;
  options.local_fallback = true;
  options.local_eval = eval_point;
  SimCoordinator coordinator(simulator, network, spec, options);
  // The worker computes for 2 s without heartbeats, so the coordinator
  // times it out at ~1 s and forfeits the point -- but the kill's close
  // rides a partitioned direction and never arrives, so the worker keeps
  // going and its result lands on a session the engine already erased.
  SimWorkerOptions oblivious = pinned_worker(spec, "oblivious");
  oblivious.eval_seconds = 2.0;
  oblivious.send_heartbeats = false;
  SimWorker worker(simulator, network, oblivious);
  simulator.schedule(0.5, [&] {
    network.to_client(worker.conn()).partitioned = true;
  });

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  // Let the late result arrive and bounce off the erased session.
  simulator.run();

  EXPECT_EQ(coordinator.engine().workers_timed_out(), 1u);
  EXPECT_EQ(coordinator.engine().results_from_workers(), 0u);
  EXPECT_EQ(coordinator.engine().duplicates_ignored(), 0u);
  EXPECT_EQ(worker.results_sent(), 1u);  // sent, never aggregated
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, DuplicateResultsAfterRetransmitAreDedupedExactly) {
  Simulator simulator;
  Rng rng(12);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinator coordinator(simulator, network, spec,
                             coordinator_options());
  SimWorkerOptions stuttering = pinned_worker(spec, "stuttering");
  stuttering.duplicate_results = true;  // every result sent twice
  SimWorker worker(simulator, network, stuttering);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(worker.state(), SimWorker::State::kDone);
  // One duplicate per point except the last: the first copy of the final
  // result completes the sweep, so its retransmission arrives after the
  // bye closed the session and is dropped at the transport instead.
  EXPECT_EQ(coordinator.engine().duplicates_ignored(),
            spec.point_count() - 1);
  // Dedup must be exact, not approximate: identical single-counted stats.
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, GarbageAndTruncatedFramesDropThePeerNotTheSweep) {
  Simulator simulator;
  Rng rng(13);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinator coordinator(simulator, network, spec,
                             coordinator_options());

  // Hand-driven client 1: valid hello, then a complete garbage frame.
  // The engine must kill the session (protocol error) and forfeit its
  // in-flight point.
  net::Hello hello;
  hello.node = "garbler";
  hello.sweep = spec.name();
  hello.fingerprint = spec.fingerprint();
  const auto garbler =
      network.connect([](StreamNetwork::ConnId, const std::string&) {},
                      [](StreamNetwork::ConnId) {});
  network.send_to_server(garbler, net::encode_hello(hello));
  simulator.schedule(0.1, [&, garbler] {
    network.send_to_server(garbler, "this is not a protocol frame\n");
  });

  // Hand-driven client 2: valid hello, then a result frame truncated by
  // death (no terminator, connection closes).  The partial line must be
  // discarded with the session, never decoded.
  hello.node = "truncator";
  const auto truncator =
      network.connect([](StreamNetwork::ConnId, const std::string&) {},
                      [](StreamNetwork::ConnId) {});
  network.send_to_server(truncator, net::encode_hello(hello));
  simulator.schedule(0.15, [&, truncator] {
    network.send_to_server(truncator, "{\"sweep\": \"sim_proto_grid\", \"c");
    network.close(truncator, /*from_server=*/false);
  });

  SimWorkerOptions healthy = pinned_worker(spec, "healthy");
  healthy.join_time = 0.05;
  SimWorker survivor(simulator, network, healthy);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(coordinator.engine().protocol_errors(), 1u);  // the garbler
  EXPECT_EQ(survivor.state(), SimWorker::State::kDone);
  EXPECT_EQ(survivor.results_sent(), spec.point_count());
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, VersionMismatchFailsFastWithBothVersionsNamed) {
  Simulator simulator;
  Rng rng(14);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  options.local_fallback = true;
  options.local_eval = eval_point;
  SimCoordinator coordinator(simulator, network, spec, options);
  SimWorkerOptions outdated = pinned_worker(spec, "outdated");
  outdated.version = net::kProtocolVersion + 41;
  SimWorker worker(simulator, network, outdated);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(worker.state(), SimWorker::State::kDeclined);
  EXPECT_FALSE(worker.retry_suggested());  // fatal, not worth retrying
  EXPECT_NE(worker.error().find("protocol version mismatch"),
            std::string::npos);
  EXPECT_NE(worker.error().find(
                "v" + std::to_string(net::kProtocolVersion)),
            std::string::npos);
  EXPECT_NE(worker.error().find(
                "v" + std::to_string(net::kProtocolVersion + 41)),
            std::string::npos);
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, RegistryWorkerServesTheShippedSpec) {
  Simulator simulator;
  Rng rng(15);
  StreamNetwork network(simulator, rng);
  sweep::SweepSpec spec("sim_exact", 5);
  spec.add_block("maj", {3, 5});
  spec.set_ps({0.25, 0.75});
  const sweep::PointEvaluator exact =
      sweep::find_standard_evaluator("exact_ppc", 1);
  SimCoordinatorOptions options = coordinator_options();
  options.engine.evaluator = "exact_ppc";
  options.engine.spec_text = sweep::spec_to_json(spec);
  SimCoordinator coordinator(simulator, network, spec, options);
  // Registry worker: advertises the standard registry, learns the sweep
  // entirely from the welcome payload.
  SimWorkerOptions daemon;
  daemon.node = "daemon";
  daemon.eval_seconds = 0.02;
  SimWorker worker(simulator, network, daemon);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(worker.state(), SimWorker::State::kDone);
  EXPECT_EQ(worker.results_sent(), spec.point_count());
  expect_complete_and_identical(coordinator, spec, exact);
}

TEST(ProtocolSim, RegistryWorkerRefusesSpecWithWrongFingerprint) {
  Simulator simulator;
  Rng rng(16);
  StreamNetwork network(simulator, rng);
  sweep::SweepSpec spec("sim_exact", 5);
  spec.add_block("maj", {3, 5});
  spec.set_ps({0.25, 0.75});
  sweep::SweepSpec other("sim_exact", 6);  // different base seed
  other.add_block("maj", {3, 5});
  other.set_ps({0.25, 0.75});
  const sweep::PointEvaluator exact =
      sweep::find_standard_evaluator("exact_ppc", 1);
  SimCoordinatorOptions options = coordinator_options();
  options.engine.evaluator = "exact_ppc";
  // Codec-skew simulation: the shipped spec text decodes to a different
  // grid than the fingerprint promises.  The worker must refuse loudly.
  options.engine.spec_text = sweep::spec_to_json(other);
  options.local_fallback = true;
  options.local_eval = exact;
  SimCoordinator coordinator(simulator, network, spec, options);
  SimWorkerOptions daemon;
  daemon.node = "daemon";
  SimWorker worker(simulator, network, daemon);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(worker.state(), SimWorker::State::kDeclined);
  EXPECT_NE(worker.error().find("fingerprint mismatch"), std::string::npos);
  EXPECT_EQ(coordinator.engine().results_from_workers(), 0u);
  expect_complete_and_identical(coordinator, spec, exact);
}

TEST(ProtocolSim, RegistryWorkerDeclinedRetryablyWhenSweepHasNoEvaluator) {
  Simulator simulator;
  Rng rng(17);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  // No engine.evaluator: this sweep is only serveable by pinned workers.
  options.local_fallback = true;
  options.local_eval = eval_point;
  SimCoordinator coordinator(simulator, network, spec, options);
  SimWorkerOptions daemon;
  daemon.node = "daemon";
  SimWorker worker(simulator, network, daemon);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(worker.state(), SimWorker::State::kDeclined);
  EXPECT_TRUE(worker.retry_suggested());  // a later sweep may suit it
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, LocalFallbackAloneCompletesTheSweep) {
  Simulator simulator;
  Rng rng(18);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  options.local_fallback = true;
  options.local_eval = eval_point;
  SimCoordinator coordinator(simulator, network, spec, options);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  EXPECT_EQ(coordinator.engine().results_from_workers(), 0u);
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, HeartbeatsKeepASlowEvaluationAlive) {
  Simulator simulator;
  Rng rng(19);
  StreamNetwork network(simulator, rng);
  sweep::SweepSpec spec("sim_slow", 3);
  spec.add_block("alpha", {3});
  spec.set_ps({0.25, 0.5});  // 2 points
  SimCoordinatorOptions options = coordinator_options();
  options.engine.worker_timeout = 1.0;
  SimCoordinator coordinator(simulator, network, spec, options);
  // Each evaluation is 3x the liveness timeout; only the heartbeats stand
  // between this worker and the axe.
  SimWorkerOptions slow = pinned_worker(spec, "slow");
  slow.eval_seconds = 3.0;
  SimWorker worker(simulator, network, slow);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(worker.state(), SimWorker::State::kDone);
  EXPECT_EQ(coordinator.engine().workers_timed_out(), 0u);
  EXPECT_EQ(coordinator.engine().results_from_workers(), spec.point_count());
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, WithoutHeartbeatsTheSlowWorkerIsKilled) {
  Simulator simulator;
  Rng rng(20);
  StreamNetwork network(simulator, rng);
  sweep::SweepSpec spec("sim_slow", 3);
  spec.add_block("alpha", {3});
  spec.set_ps({0.25, 0.5});
  SimCoordinatorOptions options = coordinator_options();
  options.engine.worker_timeout = 1.0;
  options.local_fallback = true;
  options.local_eval = eval_point;
  SimCoordinator coordinator(simulator, network, spec, options);
  SimWorkerOptions mute = pinned_worker(spec, "mute");
  mute.eval_seconds = 3.0;
  mute.send_heartbeats = false;
  SimWorker worker(simulator, network, mute);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_GE(coordinator.engine().workers_timed_out(), 1u);
  expect_complete_and_identical(coordinator, spec, eval_point);
}

// ---------------------------------------------------------------------------
// Failover, epoch fencing, and worker health: the self-healing half of the
// matrix.  A standby taking over runs as a second coordinator with the
// dead one's completed points precompleted and a strictly larger epoch;
// workers carry their EpochMemory between incarnations just as a real
// daemon process does between re-dials.
// ---------------------------------------------------------------------------

TEST(ProtocolSim, CoordinatorFailoverCompletesTheSweepUnderABumpedEpoch) {
  Simulator simulator;
  Rng rng(21);
  StreamNetwork primary_net(simulator, rng);
  StreamNetwork standby_net(simulator, rng);
  const sweep::SweepSpec spec = make_spec();

  SimCoordinatorOptions primary_options = coordinator_options();
  primary_options.engine.epoch = 5;
  SimCoordinator primary(simulator, primary_net, spec, primary_options);
  net::EpochMemory epochs;  // survives the worker's re-dial
  SimWorkerOptions first = pinned_worker(spec, "survivor");
  first.eval_seconds = 0.1;
  first.epochs = &epochs;
  SimWorker incarnation_one(simulator, primary_net, first);

  // Let some -- not all -- results land, then the primary "SIGKILLs".
  ASSERT_TRUE(simulator.run_until(
      [&] { return primary.results().size() >= 4; }, 600.0));
  primary.halt();
  ASSERT_FALSE(primary.done());
  EXPECT_EQ(epochs.get(spec.name(), spec.fingerprint()), 5u);

  // The standby replayed the journal: the primary's completed points are
  // precompleted, the epoch strictly larger.
  SimCoordinatorOptions standby_options = coordinator_options();
  standby_options.engine.epoch = 6;
  for (const auto& [index, stats] : primary.results())
    standby_options.precompleted.push_back(index);
  SimCoordinator standby(simulator, standby_net, spec, standby_options);
  SimWorkerOptions second = pinned_worker(spec, "survivor");
  second.eval_seconds = 0.1;
  second.epochs = &epochs;
  second.join_time = simulator.now() + 0.1;
  SimWorker incarnation_two(simulator, standby_net, second);

  ASSERT_TRUE(simulator.run_until([&] { return standby.done(); }, 600.0));
  // Drain the bye.  (A plain run() would never return: the halted
  // primary's admitted worker keeps heartbeating into the void.)
  ASSERT_TRUE(simulator.run_until(
      [&] { return incarnation_two.state() == SimWorker::State::kDone; },
      700.0));

  EXPECT_EQ(incarnation_two.state(), SimWorker::State::kDone);
  EXPECT_FALSE(standby.engine().superseded());
  EXPECT_EQ(epochs.get(spec.name(), spec.fingerprint()), 6u);
  EXPECT_EQ(standby.engine().results_from_workers(),
            spec.point_count() - primary.results().size());

  // The union of both coordinators' results is the complete sweep,
  // bit-identical to direct evaluation -- no point lost, none doubled.
  const auto points = spec.expand();
  std::map<std::size_t, RunningStats> merged = primary.results();
  for (const auto& [index, stats] : standby.results()) {
    EXPECT_EQ(merged.count(index), 0u) << "double-counted point " << index;
    merged[index] = stats;
  }
  ASSERT_EQ(merged.size(), points.size());
  for (const auto& point : points) {
    const RunningStats direct = eval_point(point);
    EXPECT_EQ(merged.at(point.index).mean(), direct.mean()) << point.id;
    EXPECT_EQ(merged.at(point.index).count(), direct.count()) << point.id;
  }
}

TEST(ProtocolSim, PinnedWorkerHelloFencesAResurrectedCoordinator) {
  // A pinned worker that was admitted under epoch 7 re-dials; the stale
  // coordinator (epoch 3) must learn of its supersession from the hello's
  // epoch echo alone and stand down without assigning anything.
  Simulator simulator;
  Rng rng(22);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  options.engine.epoch = 3;
  SimCoordinator zombie(simulator, network, spec, options);
  net::EpochMemory epochs;
  epochs.raise(spec.name(), spec.fingerprint(), 7);
  SimWorkerOptions pinned = pinned_worker(spec, "returning");
  pinned.epochs = &epochs;
  SimWorker worker(simulator, network, pinned);

  ASSERT_TRUE(simulator.run_until(
      [&] { return zombie.engine().superseded(); }, 600.0));

  EXPECT_EQ(zombie.engine().superseded_by(), 7u);
  EXPECT_GE(zombie.engine().stale_epoch_rejected(), 1u);
  EXPECT_EQ(zombie.engine().results_from_workers(), 0u);
  EXPECT_EQ(zombie.results().size(), 0u);  // never dispatched a thing
  // A superseded coordinator never reaches done(), so its tick runs
  // forever -- drain with a predicate, not a plain run().
  ASSERT_TRUE(simulator.run_until(
      [&] { return worker.state() == SimWorker::State::kDeclined; }, 700.0));
  EXPECT_EQ(worker.state(), SimWorker::State::kDeclined);
  EXPECT_FALSE(worker.retry_suggested());  // this coordinator is done for
}

TEST(ProtocolSim, RegistryWorkerFencesAStaleWelcomeWithAFenceFrame) {
  // Registry hellos name no sweep, so they cannot echo an epoch; the
  // fencing ride the other direction -- a welcome below the worker's
  // remembered epoch draws a FENCE frame and a refusal to serve.
  Simulator simulator;
  Rng rng(23);
  StreamNetwork network(simulator, rng);
  sweep::SweepSpec spec("sim_exact", 5);
  spec.add_block("maj", {3, 5});
  spec.set_ps({0.25, 0.75});
  const sweep::PointEvaluator exact =
      sweep::find_standard_evaluator("exact_ppc", 1);
  SimCoordinatorOptions options = coordinator_options();
  options.engine.evaluator = "exact_ppc";
  options.engine.spec_text = sweep::spec_to_json(spec);
  options.engine.epoch = 3;
  SimCoordinator zombie(simulator, network, spec, options);
  net::EpochMemory epochs;
  epochs.raise(spec.name(), spec.fingerprint(), 7);
  SimWorkerOptions daemon;
  daemon.node = "daemon";
  daemon.epochs = &epochs;
  SimWorker worker(simulator, network, daemon);

  ASSERT_TRUE(simulator.run_until(
      [&] { return zombie.engine().superseded(); }, 600.0));

  EXPECT_EQ(zombie.engine().superseded_by(), 7u);
  ASSERT_TRUE(simulator.run_until(
      [&] { return worker.state() == SimWorker::State::kFenced; }, 700.0));
  EXPECT_EQ(worker.state(), SimWorker::State::kFenced);
  EXPECT_EQ(worker.results_sent(), 0u);
  EXPECT_EQ(zombie.engine().results_from_workers(), 0u);
}

TEST(ProtocolSim, StaleEpochResultIsRejectedNeverAggregated) {
  // A worker stamping results with a bygone epoch (it missed the
  // failover) must have every such result rejected and its session
  // killed; the sweep still completes correctly without it.
  Simulator simulator;
  Rng rng(24);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  options.engine.epoch = 6;
  options.local_fallback = true;
  options.local_eval = eval_point;
  SimCoordinator coordinator(simulator, network, spec, options);
  SimWorkerOptions lagging = pinned_worker(spec, "lagging");
  lagging.result_epoch_override = 5;  // the pre-failover epoch
  SimWorker worker(simulator, network, lagging);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(coordinator.engine().stale_epoch_rejected(), 1u);
  EXPECT_EQ(coordinator.engine().results_from_workers(), 0u);
  EXPECT_FALSE(coordinator.engine().superseded());  // stale, not newer
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, FlappingWorkerIsDemotedToProbationThenRepromoted) {
  // Two deaths drive the EWMA score 1.0 -> 0.6 -> 0.36, under the 0.5
  // probation threshold; the third incarnation serves on probation and
  // earns its way back after 3 consecutive completions.
  Simulator simulator;
  Rng rng(25);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinator coordinator(simulator, network, spec,
                             coordinator_options());
  SimWorkerOptions flap = pinned_worker(spec, "flappy");
  flap.die_holding = 1;  // die on the first request, every time
  SimWorker crash_one(simulator, network, flap);
  SimWorkerOptions flap_again = flap;
  flap_again.join_time = 0.5;
  SimWorker crash_two(simulator, network, flap_again);
  SimWorkerOptions steady = pinned_worker(spec, "flappy");
  steady.join_time = 1.0;
  SimWorker redemption(simulator, network, steady);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(coordinator.engine().probation_demotions(), 1u);
  EXPECT_EQ(coordinator.engine().probation_promotions(), 1u);
  EXPECT_FALSE(coordinator.engine().on_probation("flappy"));
  EXPECT_GT(coordinator.engine().worker_score("flappy"), 0.5);
  EXPECT_EQ(redemption.state(), SimWorker::State::kDone);
  EXPECT_EQ(redemption.results_sent(), spec.point_count());
  expect_complete_and_identical(coordinator, spec, eval_point);
}

TEST(ProtocolSim, ProbationMathCrossesTheDocumentedThresholdExactly) {
  // Pins the documented health math: EWMA with alpha 0.4 from 1.0 gives
  // 0.6 after one failure (still healthy) and 0.36 after two (under the
  // 0.5 threshold -> probation); 3 consecutive completions re-promote.
  const sweep::SweepSpec spec = make_spec();
  const auto points = spec.expand();
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) pending.push_back(i);
  net::JobServerEngine engine(points, spec.name(), spec.fingerprint(),
                              pending, net::JobServerOptions{});
  net::Hello hello;
  hello.node = "flappy";
  hello.sweep = spec.name();
  hello.fingerprint = spec.fingerprint();

  // Two crash cycles: admitted, dispatched a point, died holding it.
  engine.on_open(1, 0.0);
  engine.on_bytes(1, net::encode_hello(hello), 0.0);
  engine.take_outbox();
  engine.on_close(1, 0.1);
  EXPECT_NEAR(engine.worker_score("flappy"), 0.6, 1e-12);
  EXPECT_FALSE(engine.on_probation("flappy"));
  EXPECT_EQ(engine.probation_demotions(), 0u);

  engine.on_open(2, 0.2);
  engine.on_bytes(2, net::encode_hello(hello), 0.2);
  engine.take_outbox();
  engine.on_close(2, 0.3);
  EXPECT_NEAR(engine.worker_score("flappy"), 0.36, 1e-12);
  EXPECT_TRUE(engine.on_probation("flappy"));
  EXPECT_EQ(engine.probation_demotions(), 1u);

  // Third connection: still admitted, but the welcome is flagged and 3
  // completions earn the node its way back off probation.
  engine.on_open(3, 0.4);
  engine.on_bytes(3, net::encode_hello(hello), 0.4);
  net::LineReassembler reassembler;
  std::vector<std::string> queue;
  const auto drain = [&] {
    for (const auto& send : engine.take_outbox())
      if (send.session == 3 && !send.bytes.empty())
        ASSERT_TRUE(reassembler.feed(send.bytes, queue));
  };
  drain();
  ASSERT_FALSE(queue.empty());
  const auto welcome = net::decode_welcome(JsonValue::parse(queue.front()));
  queue.erase(queue.begin());
  ASSERT_TRUE(welcome.has_value());
  EXPECT_TRUE(welcome->ok);
  EXPECT_TRUE(welcome->probation);

  double now = 0.5;
  for (int round = 0; round < 3; ++round) {
    drain();
    std::optional<std::size_t> index;
    while (!queue.empty() && !index.has_value()) {
      const auto value = JsonValue::parse(queue.front());
      queue.erase(queue.begin());
      if (net::classify_line(value) == net::LineKind::kRequest)
        index = static_cast<std::size_t>(value.at("point").as_uint64());
    }
    ASSERT_TRUE(index.has_value()) << "no request in round " << round;
    engine.on_bytes(3,
                    sweep::encode_result(spec.name(), spec.fingerprint(),
                                         points[*index],
                                         eval_point(points[*index])),
                    now);
    now += 0.1;
  }
  EXPECT_FALSE(engine.on_probation("flappy"));
  EXPECT_EQ(engine.probation_promotions(), 1u);
  EXPECT_GT(engine.worker_score("flappy"), 0.5);
}

TEST(ProtocolSim, QuarantineIsBroadcastAsANoticeToConnectedWorkers) {
  Simulator simulator;
  Rng rng(26);
  StreamNetwork network(simulator, rng);
  const sweep::SweepSpec spec = make_spec();
  SimCoordinatorOptions options = coordinator_options();
  options.engine.max_point_retries = 0;  // first forfeit quarantines
  SimCoordinator coordinator(simulator, network, spec, options);
  // The healthy worker joins first and is mid-evaluation when the dying
  // one takes the next point down with it.
  SimWorkerOptions healthy = pinned_worker(spec, "healthy");
  healthy.eval_seconds = 0.5;
  SimWorker survivor(simulator, network, healthy);
  SimWorkerOptions dying = pinned_worker(spec, "dying");
  dying.die_holding = 1;
  dying.join_time = 0.2;
  SimWorker casualty(simulator, network, dying);

  ASSERT_TRUE(
      simulator.run_until([&] { return coordinator.done(); }, 600.0));
  simulator.run();

  EXPECT_EQ(coordinator.engine().points_quarantined(), 1u);
  ASSERT_EQ(survivor.notices().size(), 1u);
  EXPECT_EQ(survivor.notices()[0].kind, "quarantine");
  const std::size_t poisoned = survivor.notices()[0].index;
  EXPECT_EQ(survivor.notices()[0].id, spec.expand()[poisoned].id);
  EXPECT_EQ(survivor.notices()[0].attempts, 1u);
  // Every point but the quarantined one completed, bit-identical.
  EXPECT_EQ(coordinator.results().size(), spec.point_count() - 1);
  EXPECT_EQ(coordinator.results().count(poisoned), 0u);
  for (const auto& [index, stats] : coordinator.results())
    EXPECT_EQ(stats.mean(), eval_point(spec.expand()[index]).mean());
}

}  // namespace
}  // namespace qps::sim
