// Handshake frame codecs and version negotiation (core/net/messages.h).
//
// Round-trips hello/welcome in both modes, pins down the structural frame
// classification (a welcome carries both "ok" and "qpsnet" and must never
// be mistaken for a hello), and exercises the version-mismatch fail-fast
// path from both ends of the connection.
#include <gtest/gtest.h>

#include <deque>
#include <string>
#include <vector>

#include "core/net/job_server.h"
#include "core/net/messages.h"
#include "core/net/worker.h"
#include "core/sweep/spec_codec.h"
#include "core/sweep/sweep_spec.h"
#include "core/sweep/wire.h"
#include "util/json.h"

namespace qps::net {
namespace {

sweep::SweepSpec make_spec() {
  sweep::SweepSpec spec("msg_test_grid", 2026);
  spec.add_block("maj", {3, 5});
  spec.set_ps({0.25, 0.5});
  spec.set_config_tag("trials=100;target_sem=0");
  return spec;
}

std::string strip_newline(std::string line) {
  if (!line.empty() && line.back() == '\n') line.pop_back();
  return line;
}

TEST(Messages, PinnedHelloRoundTrips) {
  Hello hello;
  hello.node = "host:1234";
  hello.sweep = "exact_curves";
  hello.fingerprint = 0xfeedfacecafebeefULL;
  const auto value = JsonValue::parse(strip_newline(encode_hello(hello)));
  EXPECT_EQ(classify_line(value), LineKind::kHello);
  const auto decoded = decode_hello(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->version, kProtocolVersion);
  EXPECT_EQ(decoded->node, "host:1234");
  EXPECT_TRUE(decoded->pinned());
  EXPECT_EQ(decoded->sweep, "exact_curves");
  EXPECT_EQ(decoded->fingerprint, 0xfeedfacecafebeefULL);
}

TEST(Messages, RegistryHelloRoundTrips) {
  Hello hello;
  hello.node = "daemon:9";
  hello.evaluators = {"exact_ppc", "future_thing"};
  const auto value = JsonValue::parse(strip_newline(encode_hello(hello)));
  const auto decoded = decode_hello(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->pinned());
  EXPECT_EQ(decoded->evaluators,
            (std::vector<std::string>{"exact_ppc", "future_thing"}));
}

TEST(Messages, AcceptWelcomeRoundTripsWithSpecPayload) {
  const sweep::SweepSpec spec = make_spec();
  Welcome welcome;
  welcome.ok = true;
  welcome.heartbeat_seconds = 2.5;
  welcome.sweep = spec.name();
  welcome.fingerprint = spec.fingerprint();
  welcome.evaluator = "exact_ppc";
  welcome.spec_text = sweep::spec_to_json(spec);
  const auto value = JsonValue::parse(strip_newline(encode_welcome(welcome)));
  EXPECT_EQ(classify_line(value), LineKind::kWelcome);
  const auto decoded = decode_welcome(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->version, kProtocolVersion);
  EXPECT_EQ(decoded->heartbeat_seconds, 2.5);
  EXPECT_EQ(decoded->sweep, spec.name());
  EXPECT_EQ(decoded->fingerprint, spec.fingerprint());
  EXPECT_EQ(decoded->evaluator, "exact_ppc");
  ASSERT_TRUE(decoded->spec.has_value());
  // The embedded spec payload round-trips to a spec with the identical
  // fingerprint and point grid -- the property registry daemons rely on.
  const sweep::SweepSpec reborn = sweep::spec_from_json(*decoded->spec);
  EXPECT_EQ(reborn.fingerprint(), spec.fingerprint());
  const auto original = spec.expand();
  const auto decoded_points = reborn.expand();
  ASSERT_EQ(decoded_points.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(decoded_points[i].id, original[i].id);
    EXPECT_EQ(decoded_points[i].seed, original[i].seed);
    EXPECT_EQ(decoded_points[i].p, original[i].p);
  }
}

TEST(Messages, DeclineWelcomeRoundTrips) {
  Welcome welcome;
  welcome.ok = false;
  welcome.error = "sweep 'x' is not active";
  welcome.retry = true;
  const auto value = JsonValue::parse(strip_newline(encode_welcome(welcome)));
  const auto decoded = decode_welcome(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->ok);
  EXPECT_EQ(decoded->error, "sweep 'x' is not active");
  EXPECT_TRUE(decoded->retry);
}

TEST(Messages, ClassificationIsStructuralAndUnambiguous) {
  Hello hello;
  hello.node = "n";
  hello.sweep = "s";
  Welcome accept;
  accept.ok = true;
  accept.sweep = "s";
  // Regression: a welcome carries "qpsnet" too (the coordinator's version
  // echo); it must classify as kWelcome, not kHello.
  EXPECT_EQ(classify_line(JsonValue::parse(strip_newline(encode_hello(hello)))),
            LineKind::kHello);
  EXPECT_EQ(
      classify_line(JsonValue::parse(strip_newline(encode_welcome(accept)))),
      LineKind::kWelcome);
  EXPECT_EQ(
      classify_line(JsonValue::parse(strip_newline(sweep::encode_request(3)))),
      LineKind::kRequest);
  EXPECT_EQ(
      classify_line(JsonValue::parse(strip_newline(encode_heartbeat()))),
      LineKind::kHeartbeat);
  EXPECT_EQ(classify_line(JsonValue::parse(strip_newline(encode_bye()))),
            LineKind::kBye);
  EXPECT_EQ(classify_line(JsonValue::parse("{\"what\": 1}")),
            LineKind::kUnknown);
  EXPECT_EQ(classify_line(JsonValue::parse("[1, 2]")), LineKind::kUnknown);
}

TEST(Messages, MalformedFramesDecodeToNullopt) {
  EXPECT_FALSE(decode_hello(JsonValue::parse("{\"qpsnet\": 1}")).has_value());
  EXPECT_FALSE(
      decode_hello(
          JsonValue::parse("{\"qpsnet\": 1, \"node\": \"n\", \"sweep\": \"\","
                           " \"fp\": \"0\"}"))
          .has_value());
  EXPECT_FALSE(decode_welcome(JsonValue::parse("{\"ok\": true}")).has_value());
  EXPECT_FALSE(
      decode_welcome(JsonValue::parse("{\"ok\": false, \"qpsnet\": 1}"))
          .has_value());
}

TEST(Messages, WorkerRejectsCoordinatorVersionMismatch) {
  Hello hello;
  hello.node = "w";
  hello.sweep = "s";
  WorkerEngine engine(hello);
  Welcome welcome;
  welcome.ok = true;
  welcome.version = kProtocolVersion + 1;
  welcome.sweep = "s";
  const auto event = engine.on_line(strip_newline(encode_welcome(welcome)));
  EXPECT_EQ(event.kind, WorkerEngine::Event::Kind::kProtocolError);
  // Both versions named: a mixed-version fleet should be debuggable from
  // one log line.
  EXPECT_NE(event.error.find("protocol version mismatch"), std::string::npos);
  EXPECT_NE(
      event.error.find("v" + std::to_string(kProtocolVersion)),
      std::string::npos);
  EXPECT_NE(
      event.error.find("v" + std::to_string(kProtocolVersion + 1)),
      std::string::npos);
}

TEST(Messages, CoordinatorDeclinesWorkerVersionMismatchAsFatal) {
  const std::vector<sweep::SweepPoint> points = make_spec().expand();
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i) pending.push_back(i);
  JobServerEngine engine(points, "msg_test_grid", make_spec().fingerprint(),
                         pending, JobServerOptions{});
  engine.on_open(1, 0.0);
  Hello hello;
  hello.version = kProtocolVersion + 1;
  hello.node = "old-worker";
  hello.sweep = "msg_test_grid";
  hello.fingerprint = make_spec().fingerprint();
  engine.on_bytes(1, encode_hello(hello), 0.0);
  const auto outbox = engine.take_outbox();
  ASSERT_EQ(outbox.size(), 1u);
  EXPECT_TRUE(outbox[0].close_after);
  const auto welcome =
      decode_welcome(JsonValue::parse(strip_newline(outbox[0].bytes)));
  ASSERT_TRUE(welcome.has_value());
  EXPECT_FALSE(welcome->ok);
  EXPECT_FALSE(welcome->retry);  // fatal: retrying the same binary is useless
  EXPECT_NE(welcome->error.find("protocol version mismatch"),
            std::string::npos);
  EXPECT_NE(welcome->error.find("old-worker"), std::string::npos);
  // And the worker engine surfaces that decline as non-retryable.
  Hello worker_hello;
  worker_hello.node = "old-worker";
  worker_hello.sweep = "msg_test_grid";
  WorkerEngine worker(worker_hello);
  const auto event = worker.on_line(strip_newline(outbox[0].bytes));
  EXPECT_EQ(event.kind, WorkerEngine::Event::Kind::kDeclined);
  EXPECT_FALSE(event.welcome.retry);
}

TEST(Messages, EpochRoundTripsThroughHelloAndWelcome) {
  // Pinned hello: a non-zero epoch is carried; zero is omitted entirely
  // (v1-compatible frame, "never admitted" on decode).
  Hello hello;
  hello.node = "w:1";
  hello.sweep = "s";
  hello.fingerprint = 7;
  hello.epoch = 42;
  const auto decoded =
      decode_hello(JsonValue::parse(strip_newline(encode_hello(hello))));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 42u);
  hello.epoch = 0;
  const auto bare =
      decode_hello(JsonValue::parse(strip_newline(encode_hello(hello))));
  ASSERT_TRUE(bare.has_value());
  EXPECT_EQ(bare->epoch, 0u);

  Welcome welcome;
  welcome.ok = true;
  welcome.sweep = "s";
  welcome.epoch = 42;
  const auto w =
      decode_welcome(JsonValue::parse(strip_newline(encode_welcome(welcome))));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->epoch, 42u);
  EXPECT_FALSE(w->probation);
}

TEST(Messages, ProbationFlagRoundTripsInWelcome) {
  Welcome welcome;
  welcome.ok = true;
  welcome.sweep = "s";
  welcome.probation = true;
  const auto decoded =
      decode_welcome(JsonValue::parse(strip_newline(encode_welcome(welcome))));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->probation);
}

TEST(Messages, NoticeRoundTripsAndClassifiesBeforeRequest) {
  Notice notice;
  notice.kind = "quarantine";
  notice.index = 5;
  notice.id = "maj_n9_p0.25";
  notice.attempts = 3;
  const auto value = JsonValue::parse(strip_newline(encode_notice(notice)));
  // A notice carries "point" too (the quarantined index) -- it must
  // classify as kNotice, never as kRequest.
  EXPECT_EQ(classify_line(value), LineKind::kNotice);
  const auto decoded = decode_notice(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, "quarantine");
  EXPECT_EQ(decoded->index, 5u);
  EXPECT_EQ(decoded->id, "maj_n9_p0.25");
  EXPECT_EQ(decoded->attempts, 3u);
}

TEST(Messages, FenceRoundTrips) {
  Fence fence;
  fence.epoch = 9;
  fence.sweep = "exact_curves";
  fence.fingerprint = 0xdeadbeefULL;
  fence.node = "worker:77";
  const auto value = JsonValue::parse(strip_newline(encode_fence(fence)));
  EXPECT_EQ(classify_line(value), LineKind::kFence);
  const auto decoded = decode_fence(value);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 9u);
  EXPECT_EQ(decoded->sweep, "exact_curves");
  EXPECT_EQ(decoded->fingerprint, 0xdeadbeefULL);
  EXPECT_EQ(decoded->node, "worker:77");
  EXPECT_FALSE(decode_fence(JsonValue::parse("{\"fence\": 1}")).has_value());
}

TEST(Messages, HexU64RoundTripsEveryBitPattern) {
  for (const std::uint64_t value :
       {0ULL, 1ULL, 0xffffffffffffffffULL, 0x8000000000000001ULL,
        0x0123456789abcdefULL}) {
    const std::string hex = sweep::encode_hex_u64(value);
    EXPECT_EQ(hex.size(), 16u);
    const auto back = sweep::decode_hex_u64(hex);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, value);
  }
  EXPECT_FALSE(sweep::decode_hex_u64("xyz").has_value());
  EXPECT_FALSE(sweep::decode_hex_u64("00000000000000000").has_value());
}

}  // namespace
}  // namespace qps::net
