#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

namespace qps {
namespace {

TEST(JsonEscape, PassesPlainStringsThrough) {
  EXPECT_EQ(json_escape("family=tree/size=4"), "family=tree/size=4");
  EXPECT_EQ(json_quote("abc"), "\"abc\"");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape("\b\f"), "\\b\\f");
  EXPECT_EQ(json_escape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(json_escape(std::string(1, '\x1f')), "\\u001f");
}

TEST(JsonEscape, ArbitraryStringsRoundTrip) {
  const std::string nasty = "quote=\" slash=\\ nl=\nctl=\x02 tab=\t end";
  const JsonValue v = JsonValue::parse(json_quote(nasty));
  EXPECT_EQ(v.as_string(), nasty);
}

TEST(JsonNumber, FiniteDoublesRoundTripExactly) {
  for (const double x : {0.0, -0.0, 1.0 / 3.0, 6.0042000000000009,
                         1e-308, -1e308, 13361.647199999996}) {
    const JsonValue v = JsonValue::parse(json_number(x));
    EXPECT_EQ(v.as_double(), x) << json_number(x);
  }
}

TEST(JsonNumber, NonFiniteDoublesRoundTripViaStrings) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()),
            "\"Infinity\"");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()),
            "\"-Infinity\"");
  EXPECT_EQ(json_number(std::nan("")), "\"NaN\"");

  EXPECT_TRUE(std::isnan(JsonValue::parse("\"NaN\"").as_double()));
  EXPECT_EQ(JsonValue::parse("\"Infinity\"").as_double(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(JsonValue::parse("\"-Infinity\"").as_double(),
            -std::numeric_limits<double>::infinity());
}

TEST(JsonParse, HandlesNestedDocuments) {
  const JsonValue v = JsonValue::parse(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}, "e": -3e2})");
  EXPECT_EQ(v.at("a").as_array().size(), 3u);
  EXPECT_EQ(v.at("a").as_array()[1].as_double(), 2.5);
  EXPECT_EQ(v.at("a").as_array()[2].as_string(), "x");
  EXPECT_TRUE(v.at("b").at("c").as_bool());
  EXPECT_TRUE(v.at("b").at("d").is_null());
  EXPECT_EQ(v.at("e").as_double(), -300.0);
  EXPECT_TRUE(v.contains("a"));
  EXPECT_FALSE(v.contains("z"));
}

TEST(JsonParse, HandlesWhitespaceAndEmptyContainers) {
  EXPECT_EQ(JsonValue::parse(" { } ").as_object().size(), 0u);
  EXPECT_EQ(JsonValue::parse("\t[\n]\r").as_array().size(), 0u);
}

TEST(JsonParse, DecodesUnicodeEscapes) {
  EXPECT_EQ(JsonValue::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(JsonValue::parse("\"\\u00e9\"").as_string(), "\xc3\xa9");
  EXPECT_EQ(JsonValue::parse("\"\\u20ac\"").as_string(), "\xe2\x82\xac");
}

TEST(JsonParse, RejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1,}"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("[1 2]"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("1.2.3"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("{\"a\": 1} trailing"),
               std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("nul"), std::invalid_argument);
}

TEST(JsonParse, AccessorsRejectKindMismatch) {
  const JsonValue v = JsonValue::parse("{\"a\": 1}");
  EXPECT_THROW(v.as_array(), std::invalid_argument);
  EXPECT_THROW(v.at("a").as_string(), std::invalid_argument);
  EXPECT_THROW(v.at("missing"), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"x\"").as_double(), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("-1").as_uint64(), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("1.5").as_uint64(), std::invalid_argument);
  // Unrepresentable values must be rejected before the cast, not fed to
  // UB-prone float-to-integer conversion.
  EXPECT_THROW(JsonValue::parse("1e300").as_uint64(), std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"NaN\"").as_uint64(),
               std::invalid_argument);
  EXPECT_THROW(JsonValue::parse("\"Infinity\"").as_uint64(),
               std::invalid_argument);
  EXPECT_EQ(JsonValue::parse("12345").as_uint64(), 12345u);
}

}  // namespace
}  // namespace qps
