#include "util/element_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "util/rng.h"

namespace qps {
namespace {

TEST(ElementSet, StartsEmpty) {
  ElementSet s(10);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(s.empty());
  for (Element e = 0; e < 10; ++e) EXPECT_FALSE(s.contains(e));
}

TEST(ElementSet, InsertEraseContains) {
  ElementSet s(100);
  s.insert(0);
  s.insert(63);
  s.insert(64);
  s.insert(99);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(0));
  EXPECT_TRUE(s.contains(63));
  EXPECT_TRUE(s.contains(64));
  EXPECT_TRUE(s.contains(99));
  EXPECT_FALSE(s.contains(50));
  s.erase(63);
  EXPECT_FALSE(s.contains(63));
  EXPECT_EQ(s.count(), 3u);
}

TEST(ElementSet, InsertIsIdempotent) {
  ElementSet s(5);
  s.insert(2);
  s.insert(2);
  EXPECT_EQ(s.count(), 1u);
}

TEST(ElementSet, OutOfRangeThrows) {
  ElementSet s(5);
  EXPECT_THROW(s.insert(5), std::invalid_argument);
  EXPECT_THROW(s.contains(5), std::invalid_argument);
  EXPECT_THROW(s.erase(100), std::invalid_argument);
}

TEST(ElementSet, FullUniverse) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 130u}) {
    const ElementSet s = ElementSet::full(n);
    EXPECT_EQ(s.count(), n);
    const ElementSet c = s.complement();
    EXPECT_EQ(c.count(), 0u);
  }
}

TEST(ElementSet, ComplementAcrossWordBoundary) {
  ElementSet s(70);
  s.insert(3);
  s.insert(68);
  const ElementSet c = s.complement();
  EXPECT_EQ(c.count(), 68u);
  EXPECT_FALSE(c.contains(3));
  EXPECT_FALSE(c.contains(68));
  EXPECT_TRUE(c.contains(69));
}

TEST(ElementSet, SubsetAndIntersection) {
  ElementSet a(10, {1, 2, 3});
  ElementSet b(10, {1, 2, 3, 7});
  ElementSet c(10, {7, 8});
  EXPECT_TRUE(a.is_subset_of(b));
  EXPECT_FALSE(b.is_subset_of(a));
  EXPECT_TRUE(a.is_subset_of(a));
  EXPECT_FALSE(a.intersects(c));
  EXPECT_TRUE(b.intersects(c));
}

TEST(ElementSet, EmptySetIsSubsetOfEverything) {
  ElementSet empty(10);
  ElementSet other(10, {4});
  EXPECT_TRUE(empty.is_subset_of(other));
  EXPECT_FALSE(empty.intersects(other));
}

TEST(ElementSet, SetOperations) {
  ElementSet a(10, {1, 2, 3});
  ElementSet b(10, {3, 4});
  EXPECT_EQ((a | b), ElementSet(10, {1, 2, 3, 4}));
  EXPECT_EQ((a & b), ElementSet(10, {3}));
  EXPECT_EQ((a - b), ElementSet(10, {1, 2}));
}

TEST(ElementSet, MixedUniverseThrows) {
  ElementSet a(10), b(11);
  EXPECT_THROW((void)a.is_subset_of(b), std::invalid_argument);
  EXPECT_THROW((void)a.intersects(b), std::invalid_argument);
  EXPECT_THROW(a |= b, std::invalid_argument);
}

TEST(ElementSet, ToVectorIsSortedAndComplete) {
  ElementSet s(100, {99, 0, 64, 63});
  const auto v = s.to_vector();
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], 0u);
  EXPECT_EQ(v[1], 63u);
  EXPECT_EQ(v[2], 64u);
  EXPECT_EQ(v[3], 99u);
}

TEST(ElementSet, FirstAndNextAfter) {
  ElementSet s(130, {5, 64, 129});
  EXPECT_EQ(s.first(), 5u);
  EXPECT_EQ(s.next_after(5), 64u);
  EXPECT_EQ(s.next_after(64), 129u);
  EXPECT_EQ(s.next_after(129), 130u);  // sentinel: universe size
  EXPECT_EQ(ElementSet(130).first(), 130u);
}

TEST(ElementSet, MaskRoundTrip) {
  const ElementSet s = ElementSet::from_mask(8, 0b10110010);
  EXPECT_EQ(s.to_mask(), 0b10110010u);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_TRUE(s.contains(1));
  EXPECT_TRUE(s.contains(4));
  EXPECT_TRUE(s.contains(5));
  EXPECT_TRUE(s.contains(7));
}

TEST(ElementSet, MaskRejectsLargeUniverse) {
  ElementSet s(65);
  EXPECT_THROW((void)s.to_mask(), std::invalid_argument);
  EXPECT_THROW((void)ElementSet::from_mask(65, 1), std::invalid_argument);
  EXPECT_THROW((void)ElementSet::from_mask(3, 0b1000), std::invalid_argument);
}

TEST(ElementSet, EqualityAndHash) {
  ElementSet a(10, {1, 2});
  ElementSet b(10, {1, 2});
  ElementSet c(10, {1, 3});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());  // not guaranteed, but true for FNV here
}

TEST(ElementSet, ToStringUsesOneBasedNames) {
  ElementSet s(5, {0, 4});
  EXPECT_EQ(s.to_string(), "{1, 5}");
  EXPECT_EQ(ElementSet(5).to_string(), "{}");
}

TEST(ElementSet, ClearKeepsUniverse) {
  ElementSet s(20, {3, 4, 5});
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.universe_size(), 20u);
}

TEST(ElementSet, AssignMaskOverwritesInPlace) {
  ElementSet s(8, {0, 1, 2});
  s.assign_mask(0b10100000);
  EXPECT_EQ(s.to_mask(), 0b10100000u);
  EXPECT_EQ(s.count(), 2u);
  s.assign_mask(0);
  EXPECT_TRUE(s.empty());
  ElementSet full64(64);
  full64.assign_mask(~0ULL);
  EXPECT_EQ(full64.count(), 64u);
}

TEST(ElementSet, AssignMaskRejectsBadInput) {
  ElementSet wide(65);
  EXPECT_THROW(wide.assign_mask(1), std::invalid_argument);
  ElementSet narrow(3);
  EXPECT_THROW(narrow.assign_mask(0b1000), std::invalid_argument);
}

// The n = 64 / 65 boundary separates the inline single-word storage from
// the heap word vector.  Mirror a long random operation sequence on a
// small- and a large-universe set (the latter never touching its top
// element) and demand identical observable behavior throughout.
TEST(ElementSet, SmallAndLargeStorageAgreeAtTheBoundary) {
  const std::size_t kSmall = 64;
  const std::size_t kLarge = 65;
  ElementSet small_a(kSmall), large_a(kLarge);
  ElementSet small_b(kSmall), large_b(kLarge);
  Rng rng(20010826);
  for (int step = 0; step < 2000; ++step) {
    const auto e = static_cast<Element>(rng.below(kSmall));
    switch (rng.below(6)) {
      case 0:
        small_a.insert(e);
        large_a.insert(e);
        break;
      case 1:
        small_a.erase(e);
        large_a.erase(e);
        break;
      case 2:
        small_b.insert(e);
        large_b.insert(e);
        break;
      case 3:
        small_a |= small_b;
        large_a |= large_b;
        break;
      case 4:
        small_a -= small_b;
        large_a -= large_b;
        break;
      case 5:
        small_a &= small_b.complement() | small_b;
        large_a &= (large_b.complement() | large_b);
        break;
    }
    ASSERT_EQ(small_a.count(), large_a.count()) << "step " << step;
    ASSERT_EQ(small_a.contains(e), large_a.contains(e)) << "step " << step;
    ASSERT_EQ(small_a.first(), std::min<Element>(large_a.first(), kSmall));
    ASSERT_EQ(small_a.is_subset_of(small_b), large_a.is_subset_of(large_b));
    ASSERT_EQ(small_a.intersects(small_b), large_a.intersects(large_b));
  }
  // Structural agreement at the end: same members.
  const auto small_members = small_a.to_vector();
  const auto large_members = large_a.to_vector();
  EXPECT_EQ(small_members, large_members);
}

TEST(ElementSet, ComplementAtTheStorageBoundary) {
  for (std::size_t n : {63u, 64u, 65u}) {
    ElementSet s(n, {0, static_cast<Element>(n - 1)});
    const ElementSet c = s.complement();
    EXPECT_EQ(c.count(), n - 2) << n;
    EXPECT_FALSE(c.contains(0)) << n;
    EXPECT_FALSE(c.contains(static_cast<Element>(n - 1))) << n;
    EXPECT_EQ((s | c).count(), n) << n;
    EXPECT_FALSE(s.intersects(c)) << n;
  }
}

TEST(ElementSet, NextAfterAtTheStorageBoundary) {
  for (std::size_t n : {64u, 65u, 130u}) {
    ElementSet s(n);
    s.insert(0);
    s.insert(static_cast<Element>(n - 1));
    EXPECT_EQ(s.next_after(0), n - 1) << n;
    EXPECT_EQ(s.next_after(static_cast<Element>(n - 1)), n) << n;
  }
}

}  // namespace
}  // namespace qps
