// Crash-safe I/O helper tests: atomic whole-file replacement, durable
// journal appends, structured failures, and the torn-write fault hook.
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/fault/fault.h"
#include "util/fsio.h"

namespace qps::util {
namespace {

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "qps_fsio_" + std::to_string(::getpid()) + "_" +
         name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(WriteFileAtomic, CreatesAndReplaces) {
  const std::string path = temp_path("atomic.json");
  std::remove(path.c_str());
  EXPECT_TRUE(write_file_atomic(path, "first\n"));
  EXPECT_EQ(slurp(path), "first\n");
  EXPECT_TRUE(write_file_atomic(path, "second, longer content\n"));
  EXPECT_EQ(slurp(path), "second, longer content\n");
  // The staging file must not survive a successful write.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  EXPECT_NE(::access(tmp.c_str(), F_OK), 0);
  std::remove(path.c_str());
}

TEST(WriteFileAtomic, ReportsStructuredFailure) {
  std::string error;
  EXPECT_FALSE(write_file_atomic("/nonexistent-dir-qps/x.json", "x", &error));
  EXPECT_NE(error.find("/nonexistent-dir-qps/x.json"), std::string::npos)
      << error;
}

TEST(AppendFile, AppendsAcrossReopens) {
  const std::string path = temp_path("journal.jsonl");
  std::remove(path.c_str());
  {
    AppendFile journal(path);
    journal.append_line("one\n");
    journal.append_line("two\n");
  }
  {
    AppendFile journal(path);  // reopen must append, not truncate
    journal.append_line("three\n");
  }
  EXPECT_EQ(slurp(path), "one\ntwo\nthree\n");
  std::remove(path.c_str());
}

TEST(AppendFile, UnopenablePathThrowsIoErrorNamingIt) {
  const std::string path = "/nonexistent-dir-qps/journal.jsonl";
  try {
    AppendFile journal(path);
    FAIL() << "expected IoError";
  } catch (const IoError& e) {
    EXPECT_EQ(e.path(), path);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(AppendFile, TornFaultKeepsOnlyThePrefix) {
  fault::clear();
  const std::string path = temp_path("torn.jsonl");
  std::remove(path.c_str());
  fault::configure("test/fsio_append:torn:frac=0.5:after=2:count=1");
  {
    AppendFile journal(path, "test/fsio_append");
    journal.append_line("0123456789\n");  // hit 1: intact
    journal.append_line("0123456789\n");  // hit 2: torn, first 5 bytes kept
    journal.append_line("0123456789\n");  // hit 3: intact again
  }
  fault::clear();
  if (fault::kFaultCompiled)
    EXPECT_EQ(slurp(path), "0123456789\n012340123456789\n");
  else
    EXPECT_EQ(slurp(path), "0123456789\n0123456789\n0123456789\n");
  std::remove(path.c_str());
}

TEST(AppendFile, ErrorFaultSurfacesAsInjectedFault) {
  fault::clear();
  const std::string path = temp_path("diskfull.jsonl");
  std::remove(path.c_str());
  fault::configure("test/fsio_error:error:after=2");
  {
    AppendFile journal(path, "test/fsio_error");
    journal.append_line("committed\n");
    if (fault::kFaultCompiled)
      EXPECT_THROW(journal.append_line("lost\n"), fault::InjectedFault);
    else
      journal.append_line("lost\n");
  }
  fault::clear();
  // The committed line is durable regardless.
  EXPECT_NE(slurp(path).find("committed\n"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DirFsync, AppendFileCreationSurfacesDirFsyncFault) {
  if (!fault::kFaultCompiled)
    GTEST_SKIP() << "fault injection compiled out (QPS_FAULT=OFF)";
  fault::clear();
  const std::string path = temp_path("dirsync.jsonl");
  std::remove(path.c_str());
  // A dying disk at the directory fsync that makes the journal's name
  // durable: creation must fail loudly, never hand back a journal whose
  // very existence could vanish in a crash.
  fault::configure("fsio/dir_fsync:error");
  EXPECT_THROW(AppendFile journal(path), fault::InjectedFault);
  fault::clear();
  { AppendFile journal(path); }  // healthy disk: same path now works
  std::remove(path.c_str());
}

TEST(DirFsync, AtomicWriteReportsDirFsyncFailureAfterRename) {
  if (!fault::kFaultCompiled)
    GTEST_SKIP() << "fault injection compiled out (QPS_FAULT=OFF)";
  fault::clear();
  const std::string path = temp_path("dirsync_atomic.json");
  std::remove(path.c_str());
  fault::configure("fsio/dir_fsync:error");
  std::string error;
  EXPECT_FALSE(write_file_atomic(path, "payload\n", &error));
  EXPECT_NE(error.find("fsync parent directory"), std::string::npos) << error;
  EXPECT_NE(error.find(path), std::string::npos) << error;
  fault::clear();
  EXPECT_TRUE(write_file_atomic(path, "payload\n", &error)) << error;
  EXPECT_EQ(slurp(path), "payload\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace qps::util
