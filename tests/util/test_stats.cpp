#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace qps {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sem(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SemAndCiShrinkWithSamples) {
  RunningStats small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.sem(), large.sem());
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 * large.sem(), 1e-12);
}

TEST(FitLine, ExactLine) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {3, 5, 7, 9};  // y = 2x + 1
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineHasLowerR2) {
  const std::vector<double> x = {1, 2, 3, 4, 5, 6};
  const std::vector<double> y = {2.2, 3.8, 6.3, 7.9, 9.6, 12.4};
  const LinearFit fit = fit_line(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 0.15);
  EXPECT_LT(fit.r_squared, 1.0);
  EXPECT_GT(fit.r_squared, 0.98);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(fit_line({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(fit_line({1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_line({2, 2}, {1, 3}), std::invalid_argument);
}

TEST(FitPowerLaw, RecoversExponent) {
  std::vector<double> x, y;
  for (double v : {10.0, 100.0, 1000.0, 10000.0}) {
    x.push_back(v);
    y.push_back(3.0 * std::pow(v, 0.834));
  }
  const LinearFit fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.slope, 0.834, 1e-9);
  EXPECT_NEAR(std::exp(fit.intercept), 3.0, 1e-9);
}

TEST(FitPowerLaw, RejectsNonPositive) {
  EXPECT_THROW(fit_power_law({1, -2}, {1, 2}), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2}, {0, 2}), std::invalid_argument);
}

TEST(BinomialCoefficient, SmallValues) {
  EXPECT_DOUBLE_EQ(binomial_coefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 0), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(9, 5), 126.0);
  EXPECT_DOUBLE_EQ(binomial_coefficient(5, 6), 0.0);
}

TEST(BinomialTail, EdgeCases) {
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 0, 0.3), 1.0);
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 11, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(binomial_tail_geq(10, 5, 1.0), 1.0);
}

TEST(BinomialTail, MatchesDirectSum) {
  // P[X >= 2], X ~ Bin(3, 0.5) = (3 + 1)/8 = 0.5.
  EXPECT_NEAR(binomial_tail_geq(3, 2, 0.5), 0.5, 1e-12);
  // P[X >= 1], X ~ Bin(2, 0.3) = 1 - 0.49 = 0.51.
  EXPECT_NEAR(binomial_tail_geq(2, 1, 0.3), 0.51, 1e-12);
}

TEST(BinomialTail, SymmetricAtHalf) {
  // For odd n and p = 1/2, P[X >= (n+1)/2] = 1/2 exactly.
  for (std::size_t n : {3u, 5u, 7u, 9u, 11u, 21u})
    EXPECT_NEAR(binomial_tail_geq(n, (n + 1) / 2, 0.5), 0.5, 1e-12);
}

TEST(BinomialTail, RejectsBadProbability) {
  EXPECT_THROW(binomial_tail_geq(4, 2, -0.1), std::invalid_argument);
  EXPECT_THROW(binomial_tail_geq(4, 2, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace qps
