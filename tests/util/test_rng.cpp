#include "util/rng.h"

#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <vector>

namespace qps {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, BelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)})
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZeroBound) {
  Rng rng(7);
  EXPECT_THROW(rng.below(0), std::invalid_argument);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(123);
  std::array<int, 10> counts{};
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.below(10)];
  for (int c : counts) {
    EXPECT_GT(c, trials / 10 - 600);
    EXPECT_LT(c, trials / 10 + 600);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, Uniform01InHalfOpenInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanIsHalf) {
  Rng rng(11);
  double total = 0;
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) total += rng.uniform01();
  EXPECT_NEAR(total / trials, 0.5, 0.005);
}

TEST(Rng, BernoulliMatchesProbability) {
  Rng rng(13);
  const int trials = 100000;
  int hits = 0;
  for (int i = 0; i < trials; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(19);
  const int trials = 200000;
  double total = 0;
  for (int i = 0; i < trials; ++i) total += rng.exponential(2.0);
  EXPECT_NEAR(total / trials, 0.5, 0.01);
}

TEST(Rng, ExponentialRejectsNonpositiveRate) {
  Rng rng(19);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
  EXPECT_THROW(rng.exponential(-1.0), std::invalid_argument);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(23);
  const auto perm = rng.permutation(100);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(Rng, PermutationUniformOverSmallCases) {
  // Each of the 6 permutations of 3 elements should appear ~1/6 of the time.
  Rng rng(29);
  std::map<std::vector<std::uint32_t>, int> counts;
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    const auto p = rng.permutation(3);
    ++counts[{p[0], p[1], p[2]}];
  }
  EXPECT_EQ(counts.size(), 6u);
  for (const auto& [_, c] : counts) {
    EXPECT_GT(c, trials / 6 - 500);
    EXPECT_LT(c, trials / 6 + 500);
  }
}

TEST(Rng, ShuffleArrayKeepsElements) {
  Rng rng(31);
  std::array<int, 3> a = {10, 20, 30};
  rng.shuffle_array(a);
  std::set<int> s(a.begin(), a.end());
  EXPECT_EQ(s, (std::set<int>{10, 20, 30}));
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(101);
  Rng b = a.fork();
  int equal = 0;
  for (int i = 0; i < 1000; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

}  // namespace
}  // namespace qps
