// Backoff schedule tests: capped exponential growth, jitter bounds, and
// deterministic replay for a fixed seed.
#include <gtest/gtest.h>

#include <vector>

#include "util/backoff.h"

namespace qps::util {
namespace {

TEST(Backoff, BaseDoublesUpToTheCap) {
  Backoff backoff(1.0, 8.0, /*seed=*/7);
  const double bases[] = {1.0, 2.0, 4.0, 8.0, 8.0, 8.0};
  for (const double base : bases) {
    EXPECT_DOUBLE_EQ(backoff.base(), base);
    const double delay = backoff.next();
    // Jitter draws uniformly from [base/2, base].
    EXPECT_GE(delay, base / 2.0);
    EXPECT_LE(delay, base);
  }
  EXPECT_EQ(backoff.attempts(), 6u);
}

TEST(Backoff, SameSeedReplaysTheExactSchedule) {
  Backoff a(0.5, 30.0, 1234);
  Backoff b(0.5, 30.0, 1234);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(a.next(), b.next());
}

TEST(Backoff, DifferentSeedsDecorrelate) {
  Backoff a(0.5, 30.0, 1);
  Backoff b(0.5, 30.0, 2);
  bool any_different = false;
  for (int i = 0; i < 20; ++i) any_different |= a.next() != b.next();
  EXPECT_TRUE(any_different);
}

TEST(Backoff, ResetRestartsFromTheInitialDelay) {
  Backoff backoff(1.0, 64.0, 99);
  std::vector<double> first;
  for (int i = 0; i < 5; ++i) first.push_back(backoff.next());
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0u);
  for (int i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(backoff.next(), first[i]);
}

TEST(Backoff, CustomMultiplierGrowsSlower) {
  Backoff backoff(1.0, 100.0, 0, /*multiplier=*/1.5);
  backoff.next();
  EXPECT_DOUBLE_EQ(backoff.base(), 1.5);
  backoff.next();
  EXPECT_DOUBLE_EQ(backoff.base(), 2.25);
}

}  // namespace
}  // namespace qps::util
