#include "util/flags.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qps {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, DefaultsWhenAbsent) {
  const Flags f = make({});
  EXPECT_EQ(f.get_int("n", 7), 7);
  EXPECT_EQ(f.get_double("p", 0.5), 0.5);
  EXPECT_EQ(f.get_string("name", "x"), "x");
  EXPECT_FALSE(f.get_bool("verbose", false));
}

TEST(Flags, EqualsSyntax) {
  const Flags f = make({"--n=12", "--p=0.25", "--name=tree"});
  EXPECT_EQ(f.get_int("n", 0), 12);
  EXPECT_DOUBLE_EQ(f.get_double("p", 0), 0.25);
  EXPECT_EQ(f.get_string("name", ""), "tree");
}

TEST(Flags, SpaceSyntax) {
  const Flags f = make({"--n", "12", "--name", "hqs"});
  EXPECT_EQ(f.get_int("n", 0), 12);
  EXPECT_EQ(f.get_string("name", ""), "hqs");
}

TEST(Flags, BareFlagIsTrue) {
  const Flags f = make({"--verbose"});
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, BooleanSpellings) {
  EXPECT_TRUE(make({"--x=true"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=1"}).get_bool("x", false));
  EXPECT_TRUE(make({"--x=yes"}).get_bool("x", false));
  EXPECT_FALSE(make({"--x=false"}).get_bool("x", true));
  EXPECT_FALSE(make({"--x=0"}).get_bool("x", true));
  EXPECT_THROW(make({"--x=maybe"}).get_bool("x", true), std::invalid_argument);
}

TEST(Flags, TypeErrorsThrow) {
  EXPECT_THROW(make({"--n=abc"}).get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--n=1.5x"}).get_double("n", 0), std::invalid_argument);
  EXPECT_THROW(make({"--n=12junk"}).get_int("n", 0), std::invalid_argument);
}

TEST(Flags, PositionalArguments) {
  const Flags f = make({"first", "--n=1", "second"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "first");
  EXPECT_EQ(f.positional()[1], "second");
}

TEST(Flags, UnusedDetectsTypos) {
  const Flags f = make({"--n=1", "--typo=2"});
  EXPECT_EQ(f.get_int("n", 0), 1);
  const auto unused = f.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(Flags, HasMarksTouched) {
  const Flags f = make({"--a=1"});
  EXPECT_TRUE(f.has("a"));
  EXPECT_TRUE(f.unused().empty());
}

}  // namespace
}  // namespace qps
