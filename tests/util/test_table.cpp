#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace qps {
namespace {

TEST(Table, RejectsEmptyHeader) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(2.0, 3), "2.000");
  EXPECT_EQ(Table::num(static_cast<long long>(42)), "42");
}

TEST(Table, PrintsHeaderRuleAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1.5"});
  t.add_row({"beta", "10.25"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("10.25"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // header + rule + 2 rows = 4 lines
  int lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
}

TEST(Table, ColumnsAlign) {
  Table t({"x", "longer"});
  t.add_row({"aaaaaaa", "1"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Every line should have the same length (aligned columns).
  std::istringstream is(out);
  std::string line;
  std::size_t expected = 0;
  bool first = true;
  while (std::getline(is, line)) {
    if (first) {
      expected = line.size();
      first = false;
    }
    // Numeric cells are right-aligned so trailing spaces can differ; check
    // no line exceeds the rule width.
    EXPECT_LE(line.size(), expected + 1);
  }
}

TEST(Table, RowCount) {
  Table t({"a"});
  EXPECT_EQ(t.row_count(), 0u);
  t.add_row({"1"});
  t.add_row({"2"});
  EXPECT_EQ(t.row_count(), 2u);
}

}  // namespace
}  // namespace qps
