#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace qps::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_EQ(sim.pending_events(), 0u);
  EXPECT_FALSE(sim.step());
}

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(3.0, [&] { order.push_back(3); });
  sim.schedule(1.0, [&] { order.push_back(1); });
  sim.schedule(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  EXPECT_EQ(sim.executed_events(), 3u);
}

TEST(Simulator, SimultaneousEventsKeepSchedulingOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    sim.schedule(1.0, [&order, i] { order.push_back(i); });
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int fired = 0;
  sim.schedule(1.0, [&] {
    ++fired;
    sim.schedule(1.0, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
}

TEST(Simulator, ScheduleAtAbsoluteTime) {
  Simulator sim;
  double seen = -1;
  sim.schedule_at(5.0, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(Simulator, CannotScheduleIntoThePast) {
  Simulator sim;
  sim.schedule(1.0, [] {});
  sim.run();
  EXPECT_THROW(sim.schedule_at(0.5, [] {}), std::invalid_argument);
  EXPECT_THROW(sim.schedule(-1.0, [] {}), std::invalid_argument);
}

TEST(Simulator, RunUntilPredicate) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(i + 1.0, [&] { ++count; });
  const bool hit = sim.run_until([&] { return count >= 3; }, 100.0);
  EXPECT_TRUE(hit);
  EXPECT_EQ(count, 3);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
  // Remaining events still pending.
  EXPECT_EQ(sim.pending_events(), 7u);
}

TEST(Simulator, RunUntilDeadlineStopsEarly) {
  Simulator sim;
  int count = 0;
  sim.schedule(10.0, [&] { ++count; });
  const bool hit = sim.run_until([&] { return count > 0; }, 5.0);
  EXPECT_FALSE(hit);
  EXPECT_EQ(count, 0);
  // The pending event past the deadline was not executed.
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulator, RunWithEventBudget) {
  Simulator sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.schedule(1.0, [&] { ++count; });
  sim.run(4);
  EXPECT_EQ(count, 4);
}

TEST(Simulator, RejectsNullCallback) {
  Simulator sim;
  EXPECT_THROW(sim.schedule(1.0, nullptr), std::invalid_argument);
}

}  // namespace
}  // namespace qps::sim
