// ClusterProber: probe strategies running over the simulated network.
#include "sim/probe_rpc.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms/probe_cw.h"
#include "core/witness.h"
#include "protocols/server_node.h"
#include "quorum/crumbling_wall.h"
#include "sim/fault_injector.h"

namespace qps::sim {
namespace {

struct ClusterFixture {
  Simulator sim;
  Rng rng{7};
  Network net{sim, rng, uniform_latency(0.5, 1.5)};
  std::vector<std::unique_ptr<protocols::ServerNode>> servers;
  std::unique_ptr<ClusterProber> prober;

  explicit ClusterFixture(std::size_t cluster, double timeout = 3.0) {
    for (NodeId id = 0; id < cluster; ++id) {
      servers.push_back(std::make_unique<protocols::ServerNode>(id));
      net.add_node(servers.back().get());
    }
    prober = std::make_unique<ClusterProber>(
        net, static_cast<NodeId>(cluster), cluster, timeout);
    net.add_node(prober.get());
  }
};

TEST(ClusterProber, LiveNodeIsGreen) {
  ClusterFixture f(3);
  EXPECT_EQ(f.prober->probe(0), Color::kGreen);
  EXPECT_EQ(f.prober->probes_issued(), 1u);
  // Round trip within [1, 3] time units.
  EXPECT_GT(f.prober->time_in_probing(), 0.9);
  EXPECT_LT(f.prober->time_in_probing(), 3.1);
}

TEST(ClusterProber, CrashedNodeIsRedAfterTimeout) {
  ClusterFixture f(3);
  f.servers[1]->crash();
  const double before = f.sim.now();
  EXPECT_EQ(f.prober->probe(1), Color::kRed);
  // The full timeout elapsed.
  EXPECT_NEAR(f.sim.now() - before, 3.0, 1e-9);
}

TEST(ClusterProber, SessionCountsDistinctProbes) {
  ClusterFixture f(4);
  f.servers[2]->crash();
  ProbeSession session = f.prober->make_session();
  EXPECT_EQ(session.probe(0), Color::kGreen);
  EXPECT_EQ(session.probe(2), Color::kRed);
  EXPECT_EQ(session.probe(0), Color::kGreen);  // cached, no new RPC
  EXPECT_EQ(session.probe_count(), 2u);
  EXPECT_EQ(f.prober->probes_issued(), 2u);
}

TEST(ClusterProber, ProbeStrategyOverLiveCluster) {
  // Probe_CW runs unmodified against the simulated cluster and returns a
  // valid witness for the true liveness coloring.
  const CrumblingWall wall({1, 2, 3});
  ClusterFixture f(wall.universe_size());
  FaultInjector injector(f.net);
  injector.crash_now(ElementSet(6, {1, 4}));

  ProbeSession session = f.prober->make_session();
  const ProbeCW strategy(wall);
  Rng strategy_rng(1);
  const Witness witness = strategy.run(session, strategy_rng);

  const Coloring truth(6, ElementSet(6, {0, 2, 3, 5}));
  EXPECT_EQ(validate_witness(wall, truth, witness, session.probed()), "");
  EXPECT_EQ(witness.color, Color::kGreen);
}

TEST(ClusterProber, RejectsOutOfClusterProbe) {
  ClusterFixture f(3);
  EXPECT_THROW(f.prober->probe(3), std::invalid_argument);
}

TEST(ClusterProber, TimeoutMustBePositive) {
  Simulator sim;
  Rng rng(1);
  Network net(sim, rng, fixed_latency(1.0));
  EXPECT_THROW(ClusterProber(net, 0, 0, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace qps::sim
