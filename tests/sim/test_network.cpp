#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault_injector.h"
#include "sim/messages.h"

namespace qps::sim {
namespace {

class EchoNode final : public Node {
 public:
  explicit EchoNode(NodeId id) : Node(id) {}
  void on_message(const Message& message, Network& network) override {
    received.push_back(message);
    if (message.type == kPing) {
      Message reply;
      reply.from = id();
      reply.to = message.from;
      reply.type = kPong;
      reply.a = message.a;
      network.send(reply);
    }
  }
  std::vector<Message> received;
};

struct NetFixture {
  Simulator sim;
  Rng rng{42};
  Network net{sim, rng, fixed_latency(1.0)};
  std::vector<std::unique_ptr<EchoNode>> nodes;

  explicit NetFixture(std::size_t count) {
    for (NodeId id = 0; id < count; ++id) {
      nodes.push_back(std::make_unique<EchoNode>(id));
      net.add_node(nodes.back().get());
    }
  }
};

TEST(Network, DeliversWithLatency) {
  NetFixture f(2);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = kPing;
  m.a = 7;
  f.net.send(m);
  f.sim.run();
  ASSERT_EQ(f.nodes[1]->received.size(), 1u);
  EXPECT_EQ(f.nodes[1]->received[0].a, 7);
  // Ping delivered at t=1, pong back at t=2.
  ASSERT_EQ(f.nodes[0]->received.size(), 1u);
  EXPECT_EQ(f.nodes[0]->received[0].type, static_cast<std::uint32_t>(kPong));
  EXPECT_DOUBLE_EQ(f.sim.now(), 2.0);
}

TEST(Network, CrashedNodeDropsMessages) {
  NetFixture f(2);
  f.nodes[1]->crash();
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = kPing;
  f.net.send(m);
  f.sim.run();
  EXPECT_TRUE(f.nodes[1]->received.empty());
  EXPECT_EQ(f.net.messages_sent(), 1u);
  EXPECT_EQ(f.net.messages_delivered(), 0u);
}

TEST(Network, CrashAtDeliveryTimeDrops) {
  // The message is in flight when the destination crashes.
  NetFixture f(2);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = kPing;
  f.net.send(m);
  f.sim.schedule(0.5, [&] { f.nodes[1]->crash(); });
  f.sim.run();
  EXPECT_TRUE(f.nodes[1]->received.empty());
}

TEST(Network, RecoveryRestoresDelivery) {
  NetFixture f(2);
  f.nodes[1]->crash();
  f.nodes[1]->recover();
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = kPing;
  f.net.send(m);
  f.sim.run();
  EXPECT_EQ(f.nodes[1]->received.size(), 1u);
}

TEST(Network, RejectsUnknownDestination) {
  NetFixture f(2);
  Message m;
  m.from = 0;
  m.to = 9;
  EXPECT_THROW(f.net.send(m), std::invalid_argument);
}

TEST(Network, NodesMustRegisterDensely) {
  Simulator sim;
  Rng rng(1);
  Network net(sim, rng, fixed_latency(1.0));
  EchoNode wrong(5);
  EXPECT_THROW(net.add_node(&wrong), std::invalid_argument);
}

TEST(LatencyModels, SampleWithinBounds) {
  Rng rng(9);
  auto fixed = fixed_latency(2.5);
  EXPECT_DOUBLE_EQ(fixed(rng), 2.5);
  auto uniform = uniform_latency(1.0, 3.0);
  for (int i = 0; i < 100; ++i) {
    const double v = uniform(rng);
    EXPECT_GE(v, 1.0);
    EXPECT_LT(v, 3.0);
  }
  auto expo = exponential_latency(2.0);
  double total = 0;
  for (int i = 0; i < 20000; ++i) total += expo(rng);
  EXPECT_NEAR(total / 20000, 2.0, 0.1);
}

TEST(FaultInjector, IidCrashesMatchProbability) {
  Simulator sim;
  Rng rng(11);
  Network net(sim, rng, fixed_latency(1.0));
  std::vector<std::unique_ptr<EchoNode>> nodes;
  const std::size_t n = 2000;
  for (NodeId id = 0; id < n; ++id) {
    nodes.push_back(std::make_unique<EchoNode>(id));
    net.add_node(nodes.back().get());
  }
  FaultInjector injector(net);
  Rng crash_rng(13);
  const ElementSet crashed = injector.crash_iid(n, 0.3, crash_rng);
  EXPECT_NEAR(static_cast<double>(crashed.count()) / n, 0.3, 0.03);
  for (Element e : crashed.to_vector())
    EXPECT_FALSE(nodes[e]->alive());
}

TEST(Network, FullLossDeliversNothing) {
  NetFixture f(2);
  f.net.set_drop_probability(1.0);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = kPing;
  for (int i = 0; i < 20; ++i) f.net.send(m);
  f.sim.run();
  EXPECT_TRUE(f.nodes[1]->received.empty());
  EXPECT_EQ(f.net.messages_sent(), 20u);
  EXPECT_EQ(f.net.messages_delivered(), 0u);
}

TEST(Network, PartialLossDropsAboutP) {
  NetFixture f(2);
  f.net.set_drop_probability(0.3);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = kReadReq;  // no replies, keeps counting simple
  const int sent = 20000;
  for (int i = 0; i < sent; ++i) f.net.send(m);
  f.sim.run();
  const double delivered_fraction =
      static_cast<double>(f.nodes[1]->received.size()) / sent;
  EXPECT_NEAR(delivered_fraction, 0.7, 0.02);
}

TEST(Network, DropProbabilityValidated) {
  NetFixture f(1);
  EXPECT_THROW(f.net.set_drop_probability(-0.1), std::invalid_argument);
  EXPECT_THROW(f.net.set_drop_probability(1.5), std::invalid_argument);
}

TEST(FaultInjector, ScheduledCrashAndRecovery) {
  NetFixture f(2);
  FaultInjector injector(f.net);
  injector.schedule_crash(1, 5.0);
  injector.schedule_recovery(1, 10.0);
  Message m;
  m.from = 0;
  m.to = 1;
  m.type = kPing;
  // Sent at t=6 (delivered t=7, node crashed): dropped.
  f.sim.schedule(6.0, [&] { f.net.send(m); });
  // Sent at t=10.5 (delivered t=11.5, node recovered): delivered.
  f.sim.schedule(10.5, [&] { f.net.send(m); });
  f.sim.run();
  EXPECT_EQ(f.nodes[1]->received.size(), 1u);
}

}  // namespace
}  // namespace qps::sim
