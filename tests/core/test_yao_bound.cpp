// Yao lower bounds (Thms 4.2, 4.6, 4.8): the exact optimal deterministic
// cost against the paper's hard distributions.
#include "core/exact/yao_bound.h"

#include <gtest/gtest.h>

#include "core/formulas.h"
#include "quorum/crumbling_wall.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

TEST(YaoBound, Theorem42MajExactValue) {
  // Against colorings with exactly (n+1)/2 reds, the best deterministic
  // algorithm pays exactly n - (n-1)/(n+3).
  for (std::size_t n : {3u, 5u, 7u, 9u}) {
    const MajoritySystem maj(n);
    const double value = yao_bound(maj, maj_hard_distribution(n));
    EXPECT_NEAR(value, r_probe_maj_worst_case(n).to_double(), 1e-9)
        << "n=" << n;
  }
}

TEST(YaoBound, Maj3Gives8Over3) {
  const MajoritySystem maj(3);
  EXPECT_NEAR(yao_bound(maj, maj_hard_distribution(3)), 8.0 / 3.0, 1e-12);
}

TEST(YaoBound, Theorem46CwExactValue) {
  // One green per row: every deterministic algorithm pays (n+k)/2.
  const std::vector<std::vector<std::size_t>> walls = {
      {1, 2}, {1, 3}, {1, 2, 3}, {1, 3, 2}, {1, 2, 2, 2}};
  for (const auto& widths : walls) {
    const CrumblingWall wall(widths);
    const double value = yao_bound(wall, cw_hard_distribution(wall));
    EXPECT_NEAR(value, cw_randomized_lower_bound(widths), 1e-9) << wall.name();
  }
}

TEST(YaoBound, Theorem48TreeExactValue) {
  // Two reds per height-1 subtree, upper levels green: the best
  // deterministic algorithm pays 8/3 per subtree, 2(n+1)/3 total.
  for (std::size_t h : {1u, 2u}) {
    const TreeSystem tree(h);
    const double value = yao_bound(tree, tree_hard_distribution(tree));
    EXPECT_NEAR(value,
                tree_randomized_lower_bound(tree.universe_size()), 1e-9)
        << "h=" << h;
  }
}

TEST(YaoBound, PointMassIsBestCaseCost) {
  // Against a single known coloring, the optimal algorithm probes exactly
  // a cheapest certificate: min quorum size for an all-green input.
  const MajoritySystem maj(5);
  std::vector<Coloring> support = {Coloring(5, ElementSet::full(5))};
  const double value =
      yao_bound(maj, ColoringDistribution::uniform(std::move(support)));
  EXPECT_DOUBLE_EQ(value, 3.0);
}

TEST(YaoBound, LowerBoundsNeverExceedEvasiveness) {
  const MajoritySystem maj(7);
  EXPECT_LE(yao_bound(maj, maj_hard_distribution(7)), 7.0);
}

TEST(YaoBound, MixtureIsAtMostWorstComponent) {
  // The Yao value of a mixture is between the values of its components.
  const MajoritySystem maj(5);
  std::vector<Coloring> support = {Coloring(5, ElementSet::full(5)),
                                   Coloring(5)};
  const double mixed =
      yao_bound(maj, ColoringDistribution::uniform(std::move(support)));
  EXPECT_GE(mixed, 3.0 - 1e-12);
  EXPECT_LE(mixed, 5.0);
}

TEST(YaoBound, WeightsMatter) {
  // Mixing the all-green coloring (cost 3 under full knowledge) into the
  // hard distribution (cost 4.5) moves the value monotonically with the
  // weights.
  const MajoritySystem maj(5);
  const auto hard = maj_hard_distribution(5);
  std::vector<Coloring> support = {Coloring(5, ElementSet::full(5))};
  std::vector<double> easy_heavy_weights = {0.9};
  std::vector<double> hard_heavy_weights = {0.1};
  for (std::size_t i = 0; i < hard.size(); ++i) {
    support.push_back(hard.coloring(i));
    easy_heavy_weights.push_back(0.1 / static_cast<double>(hard.size()));
    hard_heavy_weights.push_back(0.9 / static_cast<double>(hard.size()));
  }
  const double easy_heavy =
      yao_bound(maj, ColoringDistribution(support, easy_heavy_weights));
  const double hard_heavy =
      yao_bound(maj, ColoringDistribution(support, hard_heavy_weights));
  EXPECT_LT(easy_heavy, hard_heavy);
  EXPECT_LE(hard_heavy, 4.5 + 1e-9);
  EXPECT_GE(easy_heavy, 3.0 - 1e-9);
}

}  // namespace
}  // namespace qps
