#include "core/probe_session.h"

#include <gtest/gtest.h>

namespace qps {
namespace {

TEST(ProbeSession, CountsDistinctProbes) {
  const Coloring c(4, ElementSet(4, {1, 2}));
  ProbeSession s(c);
  EXPECT_EQ(s.probe(0), Color::kRed);
  EXPECT_EQ(s.probe(1), Color::kGreen);
  EXPECT_EQ(s.probe_count(), 2u);
  // Re-probing is free.
  EXPECT_EQ(s.probe(1), Color::kGreen);
  EXPECT_EQ(s.probe_count(), 2u);
}

TEST(ProbeSession, TracksColorSets) {
  const Coloring c(4, ElementSet(4, {1, 2}));
  ProbeSession s(c);
  s.probe(0);
  s.probe(1);
  s.probe(2);
  EXPECT_EQ(s.probed_greens(), ElementSet(4, {1, 2}));
  EXPECT_EQ(s.probed_reds(), ElementSet(4, {0}));
  EXPECT_EQ(s.probed(), ElementSet(4, {0, 1, 2}));
  EXPECT_TRUE(s.was_probed(0));
  EXPECT_FALSE(s.was_probed(3));
}

TEST(ProbeSession, OracleBackedSessionCachesResults) {
  int calls = 0;
  ProbeSession s(3, [&calls](Element e) {
    ++calls;
    return e == 1 ? Color::kGreen : Color::kRed;
  });
  EXPECT_EQ(s.probe(1), Color::kGreen);
  EXPECT_EQ(s.probe(1), Color::kGreen);
  EXPECT_EQ(s.probe(0), Color::kRed);
  EXPECT_EQ(calls, 2);  // one oracle call per distinct element
  EXPECT_EQ(s.probe_count(), 2u);
}

TEST(ProbeSession, UniverseSize) {
  const Coloring c(7);
  ProbeSession s(c);
  EXPECT_EQ(s.universe_size(), 7u);
}

TEST(ProbeSession, RejectsNullOracle) {
  EXPECT_THROW(ProbeSession(3, nullptr), std::invalid_argument);
}

TEST(ProbeSession, OutOfRangeProbeThrows) {
  const Coloring c(3);
  ProbeSession s(c);
  EXPECT_THROW(s.probe(3), std::invalid_argument);
}

}  // namespace
}  // namespace qps
