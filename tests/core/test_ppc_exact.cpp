// Exact probabilistic probe complexity PPC_p(S), including the worked
// example PPC(Maj3) = 5/2 and Thm 3.9's optimality of Probe_HQS.
#include "core/exact/ppc_exact.h"

#include <gtest/gtest.h>

#include "core/formulas.h"
#include "math/random_walk.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(PpcExact, Maj3WorkedExample) {
  // Section 2.3 / Fig. 4: PPC(Maj3) = 2.5 (dyadic, hence exact in double).
  EXPECT_DOUBLE_EQ(ppc_exact(MajoritySystem(3), 0.5), 2.5);
}

TEST(PpcExact, SingletonIsOneProbe) {
  EXPECT_DOUBLE_EQ(ppc_exact(MajoritySystem(1), 0.5), 1.0);
  EXPECT_DOUBLE_EQ(ppc_exact(MajoritySystem(1), 0.2), 1.0);
}

TEST(PpcExact, MajorityEqualsGridWalkDP) {
  // Prop. 3.2: the arbitrary-order prober is optimal, so PPC_p(Maj) equals
  // the grid-walk absorption time with N = (n+1)/2.
  for (std::size_t n : {3u, 5u, 7u, 9u})
    for (double p : {0.5, 0.3, 0.1})
      EXPECT_NEAR(ppc_exact(MajoritySystem(n), p),
                  grid_walk_expected_time((n + 1) / 2, p), 1e-9)
          << "n=" << n << " p=" << p;
}

TEST(PpcExact, SymmetricInPAndQ) {
  // Self-dual systems cost the same at p and 1-p (witness colors swap).
  const CrumblingWall wall({1, 2, 3});
  for (double p : {0.1, 0.25, 0.4})
    EXPECT_NEAR(ppc_exact(wall, p), ppc_exact(wall, 1 - p), 1e-9);
}

TEST(PpcExact, Theorem39HqsOptimalityAndDeviation) {
  // Thm 3.9 claims Probe_HQS is optimal at p = 1/2, i.e. PPC = (5/2)^h.
  // At h = 1 this holds (2.5).  At h = 2, however, the exact Bellman DP
  // finds a strictly better adaptive strategy costing 393/64 = 6.140625 <
  // 6.25: interleaving gates lets the prober skip a tiebreaker leaf when a
  // sibling gate later decides the root.  This matches the post-2001
  // literature showing directional algorithms for recursive 3-majority
  // are suboptimal at depth >= 2 (e.g. Jayram-Kumar-Sivakumar, STOC'03).
  // Documented as a reproduction deviation in EXPERIMENTS.md.
  EXPECT_DOUBLE_EQ(ppc_exact(HQSystem(1), 0.5), 2.5);
  const double optimal = ppc_exact(HQSystem(2), 0.5);
  EXPECT_DOUBLE_EQ(optimal, 393.0 / 64.0);  // dyadic, hence exact
  EXPECT_LT(optimal, 6.25);                 // strictly beats Probe_HQS
}

TEST(PpcExact, ProbeHqsMatchesOptimumAtOtherP) {
  // Probe_HQS's expected cost can be compared against the DP optimum at
  // p != 1/2 too; Thm 3.9 is stated for p = 1/2, and indeed at skewed p a
  // cleverer strategy can do slightly better, but never better than the
  // Lemma 3.1 style information bound.  We assert optimum <= algorithm.
  for (double p : {0.3, 0.5, 0.7}) {
    const double optimal = ppc_exact(HQSystem(2), p);
    const double algorithm = probe_hqs_expected(2, p);
    EXPECT_LE(optimal, algorithm + 1e-9) << "p=" << p;
  }
}

TEST(PpcExact, WheelIsAtMostThree) {
  // Cor. 3.4: Probe_CW gives <= 3 for the Wheel; the optimum can only be
  // smaller.
  for (std::size_t n : {3u, 5u, 8u, 12u})
    for (double p : {0.2, 0.5, 0.8})
      EXPECT_LE(ppc_exact(WheelSystem(n), p), 3.0 + 1e-9)
          << "n=" << n << " p=" << p;
}

TEST(PpcExact, OptimumBelowProbeCwAlgorithm) {
  const std::vector<std::vector<std::size_t>> walls = {
      {1, 2}, {1, 2, 3}, {1, 3, 2}};
  for (const auto& widths : walls) {
    const CrumblingWall wall(widths);
    for (double p : {0.3, 0.5}) {
      EXPECT_LE(ppc_exact(wall, p), probe_cw_expected(widths, p) + 1e-9)
          << wall.name() << " p=" << p;
    }
  }
}

TEST(PpcExact, OptimumBelowProbeTreeAlgorithm) {
  for (std::size_t h : {1u, 2u})
    for (double p : {0.3, 0.5})
      EXPECT_LE(ppc_exact(TreeSystem(h), p), probe_tree_expected(h, p) + 1e-9)
          << "h=" << h << " p=" << p;
}

TEST(PpcExact, Lemma31LowerBound) {
  // PPC_p(S) >= grid-walk time with N = min quorum size (Lemma 3.1)...
  // the bound needs a monochromatic set of c elements.
  const TreeSystem tree(2);
  const double lower =
      grid_walk_expected_time(tree.min_quorum_size(), 0.5);
  EXPECT_GE(ppc_exact(tree, 0.5), lower - 1e-9);
}

TEST(PpcExact, DegenerateP) {
  // p = 0: everything green; the strategy only needs a smallest quorum.
  EXPECT_DOUBLE_EQ(ppc_exact(MajoritySystem(5), 0.0), 3.0);
  EXPECT_DOUBLE_EQ(ppc_exact(TreeSystem(1), 0.0), 2.0);
  // p = 1: everything red; cost is the smallest transversal... for ND
  // coteries the smallest quorum again.
  EXPECT_DOUBLE_EQ(ppc_exact(MajoritySystem(5), 1.0), 3.0);
}

TEST(PpcExact, MonotoneInProblemSizeForMaj) {
  EXPECT_LT(ppc_exact(MajoritySystem(3), 0.5),
            ppc_exact(MajoritySystem(5), 0.5));
  EXPECT_LT(ppc_exact(MajoritySystem(5), 0.5),
            ppc_exact(MajoritySystem(7), 0.5));
}

TEST(PpcExact, OptimalFirstProbeForCwIsBottomRow) {
  // Perhaps surprisingly, the optimal strategy for a (1,2,2)-wall at
  // p = 1/2 opens in the BOTTOM row, not the width-1 top row that
  // Probe_CW starts with: a monochromatic bottom row is itself a quorum,
  // while the top element only fixes the mode.  (Probe_CW remains within
  // the 2k-1 bound; the DP is just slightly better.)
  const CrumblingWall wall({1, 2, 2});
  const std::size_t first = ppc_optimal_first_probe(wall, 0.5);
  EXPECT_GE(first, wall.row_begin(2));
  EXPECT_LT(first, wall.row_end(2));
}

TEST(PpcExact, AcceptsBeyondTheOldRecursionCap) {
  // n = 15 was over the legacy n <= 14 recursion cap; Prop. 3.2 still
  // pins the exact value to the grid-walk absorption time.
  EXPECT_NEAR(ppc_exact(MajoritySystem(15), 0.5),
              grid_walk_expected_time(8, 0.5), 1e-9);
}

TEST(PpcExact, RejectsLargeUniverse) {
  // The hard ceiling is the 2^n characteristic table (n <= 22); memory
  // caps below that are exercised in test_dp_kernel.cpp.
  EXPECT_THROW(ppc_exact(MajoritySystem(23), 0.5), std::invalid_argument);
}

}  // namespace
}  // namespace qps
