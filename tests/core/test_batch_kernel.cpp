// Bit-sliced batch kernel (core/engine/batch_kernel.h): per-trial probe
// counts from run_batch must be bit-identical to the scalar run_with path
// for every eligible strategy x family, for full and partial lane blocks,
// and through the engine for any thread count.
#include "core/engine/batch_kernel.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_maj.h"
#include "core/algorithms/probe_tree.h"
#include "core/engine/trial_workspace.h"
#include "core/estimator.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

TEST(LaneTally, AddEqualsAndGetAgreeWithScalarCounters) {
  LaneTally tally;
  std::uint32_t reference[64] = {};
  Rng rng(11);
  for (int step = 0; step < 60; ++step) {
    const std::uint64_t lanes = rng.next_u64();
    tally.add(lanes);
    for (std::size_t lane = 0; lane < 64; ++lane)
      if ((lanes >> lane) & 1ULL) ++reference[lane];
    for (std::size_t lane = 0; lane < 64; ++lane)
      ASSERT_EQ(tally.get(lane), reference[lane]) << step << " " << lane;
    const std::uint32_t probe_value = reference[step];
    std::uint64_t expected_eq = 0;
    for (std::size_t lane = 0; lane < 64; ++lane)
      if (reference[lane] == probe_value) expected_eq |= 1ULL << lane;
    ASSERT_EQ(tally.equals(probe_value), expected_eq) << step;
  }
  tally.clear();
  for (std::size_t lane = 0; lane < 64; ++lane) EXPECT_EQ(tally.get(lane), 0u);
}

TEST(BatchTrialBlock, LoadTransposesAndZeroesUnusedLanes) {
  Rng rng(5);
  std::vector<std::uint64_t> masks(17);
  sample_iid_coloring_words(masks.data(), masks.size(), 40, 0.5, rng);
  BatchTrialBlock block;
  block.load(masks.data(), masks.size(), 40);
  EXPECT_EQ(block.trial_count(), 17u);
  EXPECT_EQ(block.universe_size(), 40u);
  EXPECT_EQ(block.lanes(), (1ULL << 17) - 1);
  for (Element e = 0; e < 40; ++e)
    for (std::size_t t = 0; t < 64; ++t)
      ASSERT_EQ((block.greens(e) >> t) & 1ULL,
                t < masks.size() ? (masks[t] >> e) & 1ULL : 0ULL)
          << "e=" << e << " t=" << t;
}

struct Case {
  std::string label;
  std::shared_ptr<const QuorumSystem> system;
  std::shared_ptr<const ProbeStrategy> strategy;
};

std::vector<Case> batch_cases() {
  std::vector<Case> cases;
  const auto add = [&](std::string label,
                       std::shared_ptr<const QuorumSystem> system,
                       std::shared_ptr<const ProbeStrategy> strategy) {
    cases.push_back({std::move(label), std::move(system), std::move(strategy)});
  };
  for (const std::size_t n : {1u, 5u, 21u, 63u}) {
    auto maj = std::make_shared<MajoritySystem>(n);
    add("Probe_Maj/Maj" + std::to_string(n), maj,
        std::make_shared<ProbeMaj>(*maj));
  }
  for (const std::size_t h : {0u, 2u, 5u}) {  // n = 1, 7, 63
    auto tree = std::make_shared<TreeSystem>(h);
    add("Probe_Tree/Tree" + std::to_string(h), tree,
        std::make_shared<ProbeTree>(*tree));
  }
  for (const std::size_t h : {1u, 2u, 3u}) {  // n = 3, 9, 27
    auto hqs = std::make_shared<HQSystem>(h);
    add("Probe_HQS/Hqs" + std::to_string(h), hqs,
        std::make_shared<ProbeHQS>(*hqs));
  }
  for (const std::size_t rows : {2u, 4u, 10u}) {  // n = 3, 10, 55
    auto wall = std::make_shared<CrumblingWall>(CrumblingWall::triang(rows));
    add("Probe_CW/Triang" + std::to_string(rows), wall,
        std::make_shared<ProbeCW>(*wall));
  }
  // The exactly-one-full-word boundary: wheel(64) is the only paper family
  // that can sit at n = 64.
  auto wheel = std::make_shared<CrumblingWall>(CrumblingWall::wheel(64));
  add("Probe_CW/Wheel64", wheel, std::make_shared<ProbeCW>(*wheel));
  return cases;
}

TEST(BatchKernel, ProbeCountsMatchScalarRunWithPerLane) {
  for (const Case& c : batch_cases()) {
    const std::size_t n = c.system->universe_size();
    ASSERT_TRUE(c.strategy->supports_batch(n)) << c.label;
    TrialWorkspace ws(n);
    Rng rng(20010826);
    BatchTrialBlock block;
    for (const std::size_t count : {std::size_t{64}, std::size_t{17},
                                    std::size_t{1}, std::size_t{64}}) {
      for (const double p : {0.1, 0.5, 0.9}) {
        std::vector<std::uint64_t> masks(count);
        sample_iid_coloring_words(masks.data(), count, n, p, rng);
        block.load(masks.data(), count, n);
        c.strategy->run_batch(block);
        Rng unused(1);
        for (std::size_t t = 0; t < count; ++t) {
          ws.coloring().assign_greens_mask(masks[t]);
          ProbeSession& session = ws.begin_trial(ws.coloring());
          (void)c.strategy->run_with(ws, session, unused);
          ASSERT_EQ(block.probe_count(t), session.probe_count())
              << c.label << " count=" << count << " p=" << p << " lane=" << t;
        }
      }
    }
  }
}

TEST(BatchKernel, RunBitSlicedTrialsMatchesScalarStatsAcrossBlockSeams) {
  // 200 trials = three full blocks + one 8-lane partial; the driver must
  // append counts in trial order so the RunningStats match exactly.
  const MajoritySystem maj(63);
  const ProbeMaj strategy(maj);
  constexpr std::size_t kTrials = 200;
  Rng rng(99);
  std::vector<std::uint64_t> masks(kTrials);
  sample_iid_coloring_words(masks.data(), kTrials, 63, 0.5, rng);

  RunningStats batch;
  BatchTrialBlock block;
  run_bit_sliced_trials(strategy, block, masks.data(), kTrials, 63, batch);

  RunningStats scalar;
  TrialWorkspace ws(63);
  Rng unused(1);
  for (std::size_t t = 0; t < kTrials; ++t) {
    ws.coloring().assign_greens_mask(masks[t]);
    ProbeSession& session = ws.begin_trial(ws.coloring());
    (void)strategy.run_with(ws, session, unused);
    scalar.add(static_cast<double>(session.probe_count()));
  }
  EXPECT_EQ(batch.count(), scalar.count());
  EXPECT_EQ(batch.mean(), scalar.mean());
  EXPECT_EQ(batch.variance(), scalar.variance());
  EXPECT_EQ(batch.min(), scalar.min());
  EXPECT_EQ(batch.max(), scalar.max());
}

EngineOptions engine_options(std::size_t threads, Execution execution) {
  EngineOptions options;
  options.trials = 5990;     // last batch is partial
  options.batch_size = 500;  // blocks of 64 end with a 52-lane partial
  options.threads = threads;
  options.seed = 42;
  options.execution = execution;
  return options;
}

TEST(BatchKernel, EngineBitSlicedIsBitIdenticalToScalarForEveryFamily) {
  for (const Case& c : batch_cases()) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const double p : {0.3, 0.7}) {
        const RunningStats scalar =
            ParallelEstimator(engine_options(threads, Execution::kScalar))
                .estimate_ppc(*c.system, *c.strategy, p);
        const RunningStats sliced =
            ParallelEstimator(engine_options(threads, Execution::kBitSliced))
                .estimate_ppc(*c.system, *c.strategy, p);
        ASSERT_EQ(sliced.count(), scalar.count()) << c.label;
        ASSERT_EQ(sliced.mean(), scalar.mean()) << c.label;
        ASSERT_EQ(sliced.variance(), scalar.variance()) << c.label;
        ASSERT_EQ(sliced.min(), scalar.min()) << c.label;
        ASSERT_EQ(sliced.max(), scalar.max()) << c.label;
      }
    }
  }
}

TEST(BatchKernel, EngineBitSlicedIsThreadCountInvariant) {
  const TreeSystem tree(5);
  const ProbeTree strategy(tree);
  const RunningStats baseline =
      ParallelEstimator(engine_options(1, Execution::kBitSliced))
          .estimate_ppc(tree, strategy, 0.4);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const RunningStats stats =
        ParallelEstimator(engine_options(threads, Execution::kBitSliced))
            .estimate_ppc(tree, strategy, 0.4);
    EXPECT_EQ(stats.count(), baseline.count()) << threads;
    EXPECT_EQ(stats.mean(), baseline.mean()) << threads;
    EXPECT_EQ(stats.variance(), baseline.variance()) << threads;
    EXPECT_EQ(stats.min(), baseline.min()) << threads;
    EXPECT_EQ(stats.max(), baseline.max()) << threads;
  }
}

TEST(BatchKernel, EarlyStopDecisionsMatchTheScalarPath) {
  const MajoritySystem maj(63);
  const ProbeMaj strategy(maj);
  auto options = engine_options(4, Execution::kBitSliced);
  options.trials = 100000;
  options.target_sem = 0.05;
  options.min_trials = 2000;
  const RunningStats sliced =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  options.execution = Execution::kScalar;
  const RunningStats scalar =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  EXPECT_LT(sliced.count(), options.trials);  // the stop actually fired
  EXPECT_EQ(sliced.count(), scalar.count());
  EXPECT_EQ(sliced.mean(), scalar.mean());
}

TEST(BatchKernel, RandomizedStrategiesAreIneligibleAndFallBackUnchanged) {
  const MajoritySystem maj(21);
  const RProbeMaj randomized(maj);
  EXPECT_FALSE(randomized.supports_batch(21));
  // kBitSliced with an ineligible strategy is exactly the scalar path.
  const RunningStats sliced =
      ParallelEstimator(engine_options(2, Execution::kBitSliced))
          .estimate_ppc(maj, randomized, 0.5);
  const RunningStats scalar =
      ParallelEstimator(engine_options(2, Execution::kScalar))
          .estimate_ppc(maj, randomized, 0.5);
  EXPECT_EQ(sliced.count(), scalar.count());
  EXPECT_EQ(sliced.mean(), scalar.mean());
  EXPECT_EQ(sliced.variance(), scalar.variance());
}

TEST(BatchKernel, SupportsBatchRespectsStructuralEligibility) {
  const MajoritySystem maj63(63);
  const ProbeMaj probe_maj(maj63);
  EXPECT_TRUE(probe_maj.supports_batch(63));
  EXPECT_FALSE(probe_maj.supports_batch(21));  // wrong universe
  // A wall without the width-1 top row Probe_CW requires is ineligible.
  const CrumblingWall wide_top({2, 2}, /*require_nd=*/false);
  const ProbeCW probe_cw(wide_top);
  EXPECT_FALSE(probe_cw.supports_batch(wide_top.universe_size()));
}

TEST(BatchKernel, ValidationRequestsFallBackToTheValidatingScalarPath) {
  // A broken strategy must still be caught when the engine default
  // (kBitSliced) is combined with validate_witnesses: validation is a
  // scalar-path concern and forces the fallback.
  class Broken final : public ProbeStrategy {
   public:
    std::string name() const override { return "Broken"; }
    Witness run(ProbeSession& session, Rng&) const override {
      session.probe(0);
      Witness w;
      w.color = Color::kGreen;
      w.elements = ElementSet(session.universe_size());
      w.elements.insert(0);
      return w;
    }
    bool supports_batch(std::size_t) const override { return true; }
  };
  const MajoritySystem maj(5);
  const Broken broken;
  auto options = engine_options(2, Execution::kBitSliced);
  options.validate_witnesses = true;
  EXPECT_THROW(ParallelEstimator(options).estimate_ppc(maj, broken, 0.5),
               std::logic_error);
}

TEST(BatchKernel, DefaultRunBatchRefusesStrategiesWithoutAKernel) {
  const MajoritySystem maj(5);
  const RProbeMaj randomized(maj);
  BatchTrialBlock block;
  std::uint64_t mask = 0x15;
  block.load(&mask, 1, 5);
  EXPECT_THROW(randomized.run_batch(block), std::logic_error);
}

}  // namespace
}  // namespace qps
