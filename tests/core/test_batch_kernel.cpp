// Bit-sliced batch kernel (core/engine/batch_kernel.h): per-trial probe
// counts from run_batch must be bit-identical to the scalar run_with path
// for every eligible strategy x family -- deterministic scans AND the
// pre-drawing randomized-order strategies -- for full and partial lane
// blocks, for the single-word and wide (portable W=4) kernel tables, and
// through the engine for any thread count.  Per-ISA native coverage and
// the n > 64 boundary matrix live in test_simd.cpp.
#include "core/engine/batch_kernel.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms/greedy.h"
#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_maj.h"
#include "core/algorithms/probe_tree.h"
#include "core/algorithms/random_order.h"
#include "core/engine/trial_workspace.h"
#include "core/estimator.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

TEST(LaneTally, AddEqualsAndGetAgreeWithScalarCounters) {
  LaneTally tally;
  std::uint32_t reference[64] = {};
  Rng rng(11);
  for (int step = 0; step < 60; ++step) {
    const std::uint64_t lanes = rng.next_u64();
    tally.add(lanes);
    for (std::size_t lane = 0; lane < 64; ++lane)
      if ((lanes >> lane) & 1ULL) ++reference[lane];
    for (std::size_t lane = 0; lane < 64; ++lane)
      ASSERT_EQ(tally.get(lane), reference[lane]) << step << " " << lane;
    const std::uint32_t probe_value = reference[step];
    std::uint64_t expected_eq = 0;
    for (std::size_t lane = 0; lane < 64; ++lane)
      if (reference[lane] == probe_value) expected_eq |= 1ULL << lane;
    ASSERT_EQ(tally.equals(probe_value), expected_eq) << step;
  }
  tally.clear();
  for (std::size_t lane = 0; lane < 64; ++lane) EXPECT_EQ(tally.get(lane), 0u);
}

TEST(BatchTrialBlock, LoadTransposesAndZeroesUnusedLanes) {
  Rng rng(5);
  std::vector<std::uint64_t> masks(17);
  sample_iid_coloring_words(masks.data(), masks.size(), 40, 0.5, rng);
  BatchTrialBlock block;
  block.configure(resolve_simd_kernels(SimdIsa::kOff), 40);
  EXPECT_EQ(block.width(), 1u);
  EXPECT_EQ(block.lane_capacity(), 64u);
  block.load(masks.data(), masks.size());
  EXPECT_EQ(block.trial_count(), 17u);
  EXPECT_EQ(block.universe_size(), 40u);
  const BlockView view = block.view();
  EXPECT_EQ(view.active[0], (1ULL << 17) - 1);
  for (Element e = 0; e < 40; ++e)
    for (std::size_t t = 0; t < 64; ++t)
      ASSERT_EQ((view.greens[e] >> t) & 1ULL,
                t < masks.size() ? (masks[t] >> e) & 1ULL : 0ULL)
          << "e=" << e << " t=" << t;
}

struct Case {
  std::string label;
  std::shared_ptr<const QuorumSystem> system;
  std::shared_ptr<const ProbeStrategy> strategy;
};

std::vector<Case> batch_cases() {
  std::vector<Case> cases;
  const auto add = [&](std::string label,
                       std::shared_ptr<const QuorumSystem> system,
                       std::shared_ptr<const ProbeStrategy> strategy) {
    cases.push_back({std::move(label), std::move(system), std::move(strategy)});
  };
  for (const std::size_t n : {1u, 5u, 21u, 63u}) {
    auto maj = std::make_shared<MajoritySystem>(n);
    add("Probe_Maj/Maj" + std::to_string(n), maj,
        std::make_shared<ProbeMaj>(*maj));
  }
  for (const std::size_t n : {21u, 63u}) {
    auto maj = std::make_shared<MajoritySystem>(n);
    add("R_Probe_Maj/Maj" + std::to_string(n), maj,
        std::make_shared<RProbeMaj>(*maj));
    add("Random_Order/Maj" + std::to_string(n), maj,
        std::make_shared<RandomOrderProbe>(*maj));
  }
  for (const std::size_t h : {0u, 2u, 5u}) {  // n = 1, 7, 63
    auto tree = std::make_shared<TreeSystem>(h);
    add("Probe_Tree/Tree" + std::to_string(h), tree,
        std::make_shared<ProbeTree>(*tree));
  }
  for (const std::size_t h : {2u, 5u}) {
    auto tree = std::make_shared<TreeSystem>(h);
    add("R_Probe_Tree/Tree" + std::to_string(h), tree,
        std::make_shared<RProbeTree>(*tree));
  }
  for (const std::size_t h : {1u, 2u, 3u}) {  // n = 3, 9, 27
    auto hqs = std::make_shared<HQSystem>(h);
    add("Probe_HQS/Hqs" + std::to_string(h), hqs,
        std::make_shared<ProbeHQS>(*hqs));
  }
  for (const std::size_t h : {2u, 3u}) {
    auto hqs = std::make_shared<HQSystem>(h);
    add("R_Probe_HQS/Hqs" + std::to_string(h), hqs,
        std::make_shared<RProbeHQS>(*hqs));
  }
  for (const std::size_t rows : {2u, 4u, 10u}) {  // n = 3, 10, 55
    auto wall = std::make_shared<CrumblingWall>(CrumblingWall::triang(rows));
    add("Probe_CW/Triang" + std::to_string(rows), wall,
        std::make_shared<ProbeCW>(*wall));
  }
  for (const std::size_t rows : {4u, 10u}) {
    auto wall = std::make_shared<CrumblingWall>(CrumblingWall::triang(rows));
    add("R_Probe_CW/Triang" + std::to_string(rows), wall,
        std::make_shared<RProbeCW>(*wall));
  }
  // The exactly-one-full-word boundary: wheel(64) is the only paper family
  // that can sit at n = 64.
  auto wheel = std::make_shared<CrumblingWall>(CrumblingWall::wheel(64));
  add("Probe_CW/Wheel64", wheel, std::make_shared<ProbeCW>(*wheel));
  add("R_Probe_CW/Wheel64", wheel, std::make_shared<RProbeCW>(*wheel));
  return cases;
}

TEST(BatchKernel, ProbeCountsMatchScalarRunWithPerLane) {
  // Both always-available kernel tables: kOff (W=1, the PR 5 shape) and
  // kPortable (W=4) -- the latter exercises multi-lane-word blocks and a
  // partial final lane word.  Randomized strategies pre-draw per lane in
  // trial order, so a scalar Rng seeded identically replays their stream.
  std::uint64_t config_seed = 1000;
  for (const Case& c : batch_cases()) {
    const std::size_t n = c.system->universe_size();
    ASSERT_TRUE(c.strategy->supports_batch(n)) << c.label;
    const std::size_t stride = (n + 63) / 64;
    TrialWorkspace ws(n);
    Rng sample_rng(20010826);
    for (const SimdIsa isa : {SimdIsa::kOff, SimdIsa::kPortable}) {
      const SimdKernels& kernels = resolve_simd_kernels(isa);
      BatchTrialBlock block;
      block.configure(kernels, n);
      for (const std::size_t count :
           {block.lane_capacity(), std::size_t{17}, std::size_t{1}}) {
        for (const double p : {0.1, 0.5, 0.9}) {
          std::vector<std::uint64_t> masks(count * stride);
          sample_iid_coloring_words(masks.data(), count, n, p, sample_rng);
          block.load(masks.data(), count);
          ++config_seed;
          Rng batch_rng(config_seed);
          c.strategy->run_batch(block, batch_rng);
          Rng scalar_rng(config_seed);
          for (std::size_t t = 0; t < count; ++t) {
            ws.coloring().assign_greens_words(masks.data() + t * stride);
            ProbeSession& session = ws.begin_trial(ws.coloring());
            (void)c.strategy->run_with(ws, session, scalar_rng);
            ASSERT_EQ(block.probe_count(t), session.probe_count())
                << c.label << " isa=" << simd_isa_name(isa)
                << " count=" << count << " p=" << p << " lane=" << t;
          }
        }
      }
    }
  }
}

TEST(BatchKernel, RunBitSlicedTrialsMatchesScalarStatsAcrossBlockSeams) {
  // Three full super-blocks plus an 8-lane partial for each kernel width;
  // the driver must consume the rng and append counts strictly in trial
  // order so the RunningStats (and a randomized strategy's draw stream)
  // match the scalar loop exactly.
  const MajoritySystem maj(63);
  const ProbeMaj det(maj);
  const RProbeMaj rnd(maj);
  for (const ProbeStrategy* strategy :
       {static_cast<const ProbeStrategy*>(&det),
        static_cast<const ProbeStrategy*>(&rnd)}) {
    for (const SimdIsa isa : {SimdIsa::kOff, SimdIsa::kPortable}) {
      const SimdKernels& kernels = resolve_simd_kernels(isa);
      const std::size_t trials = 3 * 64 * kernels.width + 8;
      Rng rng(99);
      std::vector<std::uint64_t> masks(trials);
      sample_iid_coloring_words(masks.data(), trials, 63, 0.5, rng);

      RunningStats batch;
      BatchTrialBlock block;
      block.configure(kernels, 63);
      Rng batch_rng(4242);
      run_bit_sliced_trials(*strategy, block, masks.data(), trials, 63,
                            batch_rng, batch);

      RunningStats scalar;
      TrialWorkspace ws(63);
      Rng scalar_rng(4242);
      for (std::size_t t = 0; t < trials; ++t) {
        ws.coloring().assign_greens_mask(masks[t]);
        ProbeSession& session = ws.begin_trial(ws.coloring());
        (void)strategy->run_with(ws, session, scalar_rng);
        scalar.add(static_cast<double>(session.probe_count()));
      }
      EXPECT_EQ(batch.count(), scalar.count());
      EXPECT_EQ(batch.mean(), scalar.mean());
      EXPECT_EQ(batch.variance(), scalar.variance());
      EXPECT_EQ(batch.min(), scalar.min());
      EXPECT_EQ(batch.max(), scalar.max());
    }
  }
}

EngineOptions engine_options(std::size_t threads, Execution execution) {
  EngineOptions options;
  options.trials = 5990;     // last batch is partial
  options.batch_size = 500;  // blocks of 64 end with a 52-lane partial
  options.threads = threads;
  options.seed = 42;
  options.execution = execution;
  return options;
}

TEST(BatchKernel, EngineBitSlicedIsBitIdenticalToScalarForEveryFamily) {
  for (const Case& c : batch_cases()) {
    for (const std::size_t threads : {1u, 4u}) {
      for (const double p : {0.3, 0.7}) {
        const RunningStats scalar =
            ParallelEstimator(engine_options(threads, Execution::kScalar))
                .estimate_ppc(*c.system, *c.strategy, p);
        const RunningStats sliced =
            ParallelEstimator(engine_options(threads, Execution::kBitSliced))
                .estimate_ppc(*c.system, *c.strategy, p);
        ASSERT_EQ(sliced.count(), scalar.count()) << c.label;
        ASSERT_EQ(sliced.mean(), scalar.mean()) << c.label;
        ASSERT_EQ(sliced.variance(), scalar.variance()) << c.label;
        ASSERT_EQ(sliced.min(), scalar.min()) << c.label;
        ASSERT_EQ(sliced.max(), scalar.max()) << c.label;
      }
    }
  }
}

TEST(BatchKernel, EngineBitSlicedIsThreadCountInvariant) {
  const TreeSystem tree(5);
  const ProbeTree strategy(tree);
  const RunningStats baseline =
      ParallelEstimator(engine_options(1, Execution::kBitSliced))
          .estimate_ppc(tree, strategy, 0.4);
  for (const std::size_t threads : {2u, 4u, 8u}) {
    const RunningStats stats =
        ParallelEstimator(engine_options(threads, Execution::kBitSliced))
            .estimate_ppc(tree, strategy, 0.4);
    EXPECT_EQ(stats.count(), baseline.count()) << threads;
    EXPECT_EQ(stats.mean(), baseline.mean()) << threads;
    EXPECT_EQ(stats.variance(), baseline.variance()) << threads;
    EXPECT_EQ(stats.min(), baseline.min()) << threads;
    EXPECT_EQ(stats.max(), baseline.max()) << threads;
  }
}

TEST(BatchKernel, EngineSimdChoiceNeverChangesTheStatistics) {
  // Same trials, any compiled ISA: the lane-word width is the only thing
  // that may differ.  (The full per-strategy ISA sweep is test_simd.cpp.)
  const MajoritySystem maj(63);
  const RProbeMaj strategy(maj);
  auto options = engine_options(2, Execution::kBitSliced);
  options.simd = SimdIsa::kOff;
  const RunningStats baseline =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  for (const SimdIsa isa : {SimdIsa::kPortable, SimdIsa::kAvx2,
                            SimdIsa::kAvx512, SimdIsa::kNeon}) {
    if (!simd_isa_available(isa)) continue;
    options.simd = isa;
    const RunningStats stats =
        ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
    EXPECT_EQ(stats.count(), baseline.count()) << simd_isa_name(isa);
    EXPECT_EQ(stats.mean(), baseline.mean()) << simd_isa_name(isa);
    EXPECT_EQ(stats.variance(), baseline.variance()) << simd_isa_name(isa);
  }
}

TEST(BatchKernel, EarlyStopDecisionsMatchTheScalarPath) {
  const MajoritySystem maj(63);
  const ProbeMaj strategy(maj);
  auto options = engine_options(4, Execution::kBitSliced);
  options.trials = 100000;
  options.target_sem = 0.05;
  options.min_trials = 2000;
  const RunningStats sliced =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  options.execution = Execution::kScalar;
  const RunningStats scalar =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  EXPECT_LT(sliced.count(), options.trials);  // the stop actually fired
  EXPECT_EQ(sliced.count(), scalar.count());
  EXPECT_EQ(sliced.mean(), scalar.mean());
}

TEST(BatchKernel, StrategiesWithoutAKernelFallBackUnchanged) {
  // The greedy baseline and IR_Probe_HQS have no bit-sliced kernel (their
  // probe order depends on observed colors mid-run); kBitSliced with such
  // a strategy is exactly the scalar path.
  const MajoritySystem maj(21);
  const GreedyCandidateProbe greedy(maj);
  EXPECT_FALSE(greedy.supports_batch(21));
  const HQSystem hqs(3);
  const IRProbeHQS ir(hqs);
  EXPECT_FALSE(ir.supports_batch(hqs.universe_size()));
  auto sliced_options = engine_options(2, Execution::kBitSliced);
  sliced_options.trials = 500;  // the greedy baseline is slow per trial
  sliced_options.batch_size = 64;
  auto scalar_options = sliced_options;
  scalar_options.execution = Execution::kScalar;
  const RunningStats sliced =
      ParallelEstimator(sliced_options).estimate_ppc(maj, greedy, 0.5);
  const RunningStats scalar =
      ParallelEstimator(scalar_options).estimate_ppc(maj, greedy, 0.5);
  EXPECT_EQ(sliced.count(), scalar.count());
  EXPECT_EQ(sliced.mean(), scalar.mean());
  EXPECT_EQ(sliced.variance(), scalar.variance());
}

TEST(BatchKernel, SupportsBatchRespectsStructuralEligibility) {
  const MajoritySystem maj63(63);
  const ProbeMaj probe_maj(maj63);
  EXPECT_TRUE(probe_maj.supports_batch(63));
  EXPECT_FALSE(probe_maj.supports_batch(21));  // wrong universe
  const RProbeMaj r_probe_maj(maj63);
  EXPECT_TRUE(r_probe_maj.supports_batch(63));
  // A wall without the width-1 top row Probe_CW requires is ineligible,
  // randomized or not.
  const CrumblingWall wide_top({2, 2}, /*require_nd=*/false);
  const ProbeCW probe_cw(wide_top);
  EXPECT_FALSE(probe_cw.supports_batch(wide_top.universe_size()));
  const RProbeCW r_probe_cw(wide_top);
  EXPECT_FALSE(r_probe_cw.supports_batch(wide_top.universe_size()));
  // Random_Order needs a counting certificate; TreeSystem advertises none.
  const TreeSystem tree(2);
  const RandomOrderProbe on_tree(tree);
  EXPECT_FALSE(on_tree.supports_batch(tree.universe_size()));
  const RandomOrderProbe on_maj(maj63);
  EXPECT_TRUE(on_maj.supports_batch(63));
}

TEST(BatchKernel, ValidationRequestsFallBackToTheValidatingScalarPath) {
  // A broken strategy must still be caught when the engine default
  // (kBitSliced) is combined with validate_witnesses: validation is a
  // scalar-path concern and forces the fallback.
  class Broken final : public ProbeStrategy {
   public:
    std::string name() const override { return "Broken"; }
    Witness run(ProbeSession& session, Rng&) const override {
      session.probe(0);
      Witness w;
      w.color = Color::kGreen;
      w.elements = ElementSet(session.universe_size());
      w.elements.insert(0);
      return w;
    }
    bool supports_batch(std::size_t) const override { return true; }
  };
  const MajoritySystem maj(5);
  const Broken broken;
  auto options = engine_options(2, Execution::kBitSliced);
  options.validate_witnesses = true;
  EXPECT_THROW(ParallelEstimator(options).estimate_ppc(maj, broken, 0.5),
               std::logic_error);
}

TEST(BatchKernel, DefaultRunBatchRefusesStrategiesWithoutAKernel) {
  const MajoritySystem maj(5);
  const GreedyCandidateProbe greedy(maj);
  BatchTrialBlock block;
  block.configure(resolve_simd_kernels(SimdIsa::kOff), 5);
  std::uint64_t mask = 0x15;
  block.load(&mask, 1);
  Rng rng(1);
  EXPECT_THROW(greedy.run_batch(block, rng), std::logic_error);
}

}  // namespace
}  // namespace qps
