// Exact deterministic worst-case probe complexity and Lemma 2.2
// (evasiveness of Maj, Wheel, CW, Tree).
#include "core/exact/pc_exact.h"

#include <gtest/gtest.h>

#include "quorum/crumbling_wall.h"
#include "quorum/explicit_system.h"
#include "quorum/grid_system.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(PcExact, SingletonIsOneProbe) {
  EXPECT_EQ(pc_exact(MajoritySystem(1)), 1u);
}

TEST(PcExact, Maj3IsThree) {
  // The worked example of Section 2.3 / Fig. 4: PC(Maj3) = 3.
  EXPECT_EQ(pc_exact(MajoritySystem(3)), 3u);
}

TEST(PcExact, Lemma22MajorityIsEvasive) {
  for (std::size_t n : {3u, 5u, 7u, 9u, 11u})
    EXPECT_EQ(pc_exact(MajoritySystem(n)), n) << "n=" << n;
}

TEST(PcExact, Lemma22WheelIsEvasive) {
  for (std::size_t n : {3u, 4u, 5u, 6u, 7u, 8u})
    EXPECT_EQ(pc_exact(WheelSystem(n)), n) << "n=" << n;
}

TEST(PcExact, Lemma22CrumblingWallsAreEvasive) {
  const std::vector<std::vector<std::size_t>> walls = {
      {1, 2}, {1, 3}, {1, 2, 3}, {1, 3, 2}, {1, 2, 2, 2}, {1, 4, 5}};
  for (const auto& widths : walls) {
    const CrumblingWall wall(widths);
    EXPECT_EQ(pc_exact(wall), wall.universe_size()) << wall.name();
  }
}

TEST(PcExact, Lemma22TreeIsEvasive) {
  EXPECT_EQ(pc_exact(TreeSystem(1)), 3u);
  EXPECT_EQ(pc_exact(TreeSystem(2)), 7u);
}

TEST(PcExact, HqsSmallHeights) {
  // HQS of height 1 is Maj3 (evasive).  Height 2 is also evasive -- the
  // paper does not claim this in Lemma 2.2, but the engine certifies it.
  EXPECT_EQ(pc_exact(HQSystem(1)), 3u);
  EXPECT_EQ(pc_exact(HQSystem(2)), 9u);
}

TEST(PcExact, GridCanBeDecidedWithoutProbingEverything) {
  // The (dominated) 2x2 grid: a red diagonal certifies failure... but an
  // adaptive adversary can still force probing; verify PC <= n and > min
  // quorum size - 1.
  const GridSystem grid(2, 2);
  const std::size_t pc = pc_exact(grid);
  EXPECT_LE(pc, 4u);
  EXPECT_GE(pc, 3u);
}

TEST(PcExact, LowerBoundedByMinQuorumSize) {
  // Any witness contains a quorum or transversal, so at least
  // min_quorum_size probes are needed against an adversary.
  const std::vector<const QuorumSystem*> systems = {};
  const MajoritySystem maj(7);
  const TreeSystem tree(2);
  const HQSystem hqs(2);
  EXPECT_GE(pc_exact(maj), maj.min_quorum_size());
  EXPECT_GE(pc_exact(tree), tree.min_quorum_size());
  EXPECT_GE(pc_exact(hqs), hqs.min_quorum_size());
}

TEST(PcExact, NonEvasiveSystemExists) {
  // The "dictator + veto" style coterie S = {{1}} is decided in 1 probe.
  const ExplicitSystem dictator(3, {ElementSet(3, {0})});
  EXPECT_EQ(pc_exact(dictator), 1u);
}

TEST(PcExact, AcceptsBeyondTheOldRecursionCap) {
  // The legacy memoized recursion was capped at n <= 14; the dense DP
  // kernel pushes evasiveness checks past it.
  EXPECT_EQ(pc_exact(MajoritySystem(15)), 15u);
}

TEST(PcExact, RejectsLargeUniverse) {
  // The hard ceiling is the 2^n characteristic table (n <= 22).
  EXPECT_THROW(pc_exact(MajoritySystem(23)), std::invalid_argument);
}

}  // namespace
}  // namespace qps
