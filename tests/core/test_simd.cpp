// SIMD layer (core/engine/simd.h): ISA parsing/dispatch, the strided
// multi-word transpose, and the word-boundary property matrix -- every
// batchable strategy x family at n = 64/65/127/128/129 must be
// bit-identical to the scalar path on every compiled ISA, including
// partial final blocks, partial final lane words, and the all-dead /
// all-live colorings.
#include "core/engine/simd.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_maj.h"
#include "core/algorithms/probe_tree.h"
#include "core/algorithms/random_order.h"
#include "core/coloring.h"
#include "core/engine/batch_kernel.h"
#include "core/engine/parallel_estimator.h"
#include "core/engine/trial_workspace.h"
#include "core/obs/metrics.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

constexpr SimdIsa kAllIsas[] = {SimdIsa::kOff, SimdIsa::kPortable,
                                SimdIsa::kNeon, SimdIsa::kAvx2,
                                SimdIsa::kAvx512};

std::vector<SimdIsa> available_isas() {
  std::vector<SimdIsa> isas;
  for (const SimdIsa isa : kAllIsas)
    if (simd_isa_available(isa)) isas.push_back(isa);
  return isas;
}

TEST(SimdDispatch, ParseRoundTripsEveryName) {
  for (const SimdIsa isa : {SimdIsa::kAuto, SimdIsa::kOff, SimdIsa::kPortable,
                            SimdIsa::kNeon, SimdIsa::kAvx2, SimdIsa::kAvx512}) {
    SimdIsa parsed = SimdIsa::kAuto;
    ASSERT_TRUE(parse_simd_isa(simd_isa_name(isa), &parsed))
        << simd_isa_name(isa);
    EXPECT_EQ(parsed, isa);
  }
  SimdIsa parsed = SimdIsa::kNeon;
  EXPECT_FALSE(parse_simd_isa("sse9", &parsed));
  EXPECT_FALSE(parse_simd_isa("", &parsed));
  EXPECT_FALSE(parse_simd_isa("AVX2", &parsed));  // names are lower-case
  EXPECT_EQ(parsed, SimdIsa::kNeon);              // untouched on failure
}

TEST(SimdDispatch, FallbackTablesAreAlwaysAvailable) {
  EXPECT_TRUE(simd_isa_available(SimdIsa::kAuto));
  EXPECT_TRUE(simd_isa_available(SimdIsa::kOff));
  EXPECT_TRUE(simd_isa_available(SimdIsa::kPortable));
  EXPECT_EQ(resolve_simd_kernels(SimdIsa::kOff).width, 1u);
  EXPECT_EQ(resolve_simd_kernels(SimdIsa::kPortable).width, 4u);
  const SimdKernels& best = resolve_simd_kernels(SimdIsa::kAuto);
  EXPECT_TRUE(simd_isa_available(best.isa));
  EXPECT_GE(best.width, 1u);
}

TEST(SimdDispatch, UnavailableIsasResolveToAThrow) {
  for (const SimdIsa isa : kAllIsas) {
    if (simd_isa_available(isa)) {
      EXPECT_EQ(resolve_simd_kernels(isa).isa, isa) << simd_isa_name(isa);
    } else {
      EXPECT_THROW(resolve_simd_kernels(isa), std::invalid_argument)
          << simd_isa_name(isa);
    }
  }
}

TEST(SimdDispatch, ResolvingPublishesTheIsaGauge) {
  (void)resolve_simd_kernels(SimdIsa::kPortable);
  EXPECT_EQ(obs::MetricsRegistry::instance().gauge("engine/simd_isa").value(),
            static_cast<std::int64_t>(SimdIsa::kPortable));
  const SimdKernels& best = resolve_simd_kernels(SimdIsa::kAuto);
  EXPECT_EQ(obs::MetricsRegistry::instance().gauge("engine/simd_isa").value(),
            static_cast<std::int64_t>(best.isa));
}

TEST(StridedTranspose, MatchesTheBitwiseDefinitionAcrossWordBoundaries) {
  // element_words[e*W + k] bit t must equal row (64k + t)'s bit e, with
  // lanes at and beyond trial_count zeroed -- for universes straddling
  // every word boundary and for partial final lane words.
  Rng rng(77);
  for (const std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    const std::size_t stride = (n + 63) / 64;
    for (const std::size_t lane_words : {1u, 2u, 4u, 8u}) {
      const std::size_t cap = 64 * lane_words;
      for (std::size_t count : {std::size_t{1}, std::size_t{17},
                                std::size_t{64}, cap - 5, cap}) {
        if (count > cap || count < 1) continue;
        std::vector<std::uint64_t> masks(count * stride);
        sample_iid_coloring_words(masks.data(), count, n, 0.5, rng);
        std::vector<std::uint64_t> words(n * lane_words, ~0ULL);  // stale
        transpose_coloring_words_strided(masks.data(), count, n, lane_words,
                                         words.data());
        for (std::size_t e = 0; e < n; ++e) {
          for (std::size_t lane = 0; lane < cap; ++lane) {
            const std::uint64_t got =
                (words[e * lane_words + lane / 64] >> (lane % 64)) & 1ULL;
            const std::uint64_t want =
                lane < count
                    ? (masks[lane * stride + e / 64] >> (e % 64)) & 1ULL
                    : 0ULL;
            ASSERT_EQ(got, want) << "n=" << n << " W=" << lane_words
                                 << " count=" << count << " e=" << e
                                 << " lane=" << lane;
          }
        }
      }
    }
  }
}

TEST(StridedTranspose, RejectsBadArguments) {
  std::uint64_t mask = 1, out[64];
  EXPECT_THROW(transpose_coloring_words_strided(&mask, 1, 0, 1, out),
               std::invalid_argument);
  EXPECT_THROW(transpose_coloring_words_strided(&mask, 1, 1, 0, out),
               std::invalid_argument);
  EXPECT_THROW(transpose_coloring_words_strided(&mask, 65, 1, 1, out),
               std::invalid_argument);
}

struct Case {
  std::string label;
  std::shared_ptr<const QuorumSystem> system;
  std::shared_ptr<const ProbeStrategy> strategy;
};

/// Every batchable strategy on every paper family that can sit at or just
/// across the 64-element word boundary.
std::vector<Case> boundary_cases() {
  std::vector<Case> cases;
  const auto add = [&](std::string label,
                       std::shared_ptr<const QuorumSystem> system,
                       std::shared_ptr<const ProbeStrategy> strategy) {
    cases.push_back({std::move(label), std::move(system), std::move(strategy)});
  };
  for (const std::size_t n : {65u, 127u, 129u}) {  // Maj needs odd n
    auto maj = std::make_shared<MajoritySystem>(n);
    add("Probe_Maj/Maj" + std::to_string(n), maj,
        std::make_shared<ProbeMaj>(*maj));
    add("R_Probe_Maj/Maj" + std::to_string(n), maj,
        std::make_shared<RProbeMaj>(*maj));
    add("Random_Order/Maj" + std::to_string(n), maj,
        std::make_shared<RandomOrderProbe>(*maj));
  }
  auto tree = std::make_shared<TreeSystem>(6);  // n = 127
  add("Probe_Tree/Tree6", tree, std::make_shared<ProbeTree>(*tree));
  add("R_Probe_Tree/Tree6", tree, std::make_shared<RProbeTree>(*tree));
  auto hqs = std::make_shared<HQSystem>(4);  // n = 81
  add("Probe_HQS/Hqs4", hqs, std::make_shared<ProbeHQS>(*hqs));
  add("R_Probe_HQS/Hqs4", hqs, std::make_shared<RProbeHQS>(*hqs));
  for (const std::size_t n : {64u, 65u, 128u, 129u}) {  // wheel: any n
    auto wall = std::make_shared<CrumblingWall>(CrumblingWall::wheel(n));
    add("Probe_CW/Wheel" + std::to_string(n), wall,
        std::make_shared<ProbeCW>(*wall));
    add("R_Probe_CW/Wheel" + std::to_string(n), wall,
        std::make_shared<RProbeCW>(*wall));
  }
  return cases;
}

TEST(SimdBoundary, EveryIsaMatchesScalarPerLaneAcrossWordBoundaries) {
  // p = 0.0 / 1.0 are the all-live / all-dead colorings; count = 13 leaves
  // a partial first lane word, count = lane_capacity() fills every word.
  // One block per case is reconfigured across ISAs, which also exercises
  // configure()'s invalidation path.
  std::uint64_t config_seed = 9000;
  for (const Case& c : boundary_cases()) {
    const std::size_t n = c.system->universe_size();
    ASSERT_TRUE(c.strategy->supports_batch(n)) << c.label;
    const std::size_t stride = (n + 63) / 64;
    TrialWorkspace ws(n);
    Rng sample_rng(42);
    BatchTrialBlock block;
    for (const SimdIsa isa : available_isas()) {
      const SimdKernels& kernels = resolve_simd_kernels(isa);
      block.configure(kernels, n);
      for (const std::size_t count : {block.lane_capacity(), std::size_t{13}}) {
        for (const double p : {0.0, 0.4, 1.0}) {
          std::vector<std::uint64_t> masks(count * stride);
          sample_iid_coloring_words(masks.data(), count, n, p, sample_rng);
          block.load(masks.data(), count);
          ++config_seed;
          Rng batch_rng(config_seed);
          c.strategy->run_batch(block, batch_rng);
          Rng scalar_rng(config_seed);
          for (std::size_t t = 0; t < count; ++t) {
            ws.coloring().assign_greens_words(masks.data() + t * stride);
            ProbeSession& session = ws.begin_trial(ws.coloring());
            (void)c.strategy->run_with(ws, session, scalar_rng);
            ASSERT_EQ(block.probe_count(t), session.probe_count())
                << c.label << " isa=" << simd_isa_name(isa)
                << " count=" << count << " p=" << p << " lane=" << t;
          }
        }
      }
    }
  }
}

TEST(SimdBoundary, EngineStatisticsAreIsaInvariantAboveSixtyFourElements) {
  // Full engine runs (multi-word sampler + bit-sliced execution) must
  // return identical statistics for every compiled ISA, on a randomized
  // strategy so the pre-drawn permutation streams are covered too.
  const MajoritySystem maj(65);
  const RandomOrderProbe random_order(maj);
  const CrumblingWall wall = CrumblingWall::wheel(128);
  const RProbeCW r_probe_cw(wall);
  const struct {
    const QuorumSystem* system;
    const ProbeStrategy* strategy;
  } cases[] = {{&maj, &random_order}, {&wall, &r_probe_cw}};
  for (const auto& c : cases) {
    EngineOptions options;
    options.trials = 2000;
    options.batch_size = 256;
    options.threads = 2;
    options.seed = 7;
    options.execution = Execution::kBitSliced;
    options.simd = SimdIsa::kOff;
    const RunningStats baseline =
        ParallelEstimator(options).estimate_ppc(*c.system, *c.strategy, 0.45);
    options.execution = Execution::kScalar;
    const RunningStats scalar =
        ParallelEstimator(options).estimate_ppc(*c.system, *c.strategy, 0.45);
    EXPECT_EQ(baseline.count(), scalar.count()) << c.strategy->name();
    EXPECT_EQ(baseline.mean(), scalar.mean()) << c.strategy->name();
    options.execution = Execution::kBitSliced;
    for (const SimdIsa isa : available_isas()) {
      options.simd = isa;
      const RunningStats stats =
          ParallelEstimator(options).estimate_ppc(*c.system, *c.strategy, 0.45);
      EXPECT_EQ(stats.count(), baseline.count())
          << c.strategy->name() << " " << simd_isa_name(isa);
      EXPECT_EQ(stats.mean(), baseline.mean())
          << c.strategy->name() << " " << simd_isa_name(isa);
      EXPECT_EQ(stats.variance(), baseline.variance())
          << c.strategy->name() << " " << simd_isa_name(isa);
      EXPECT_EQ(stats.min(), baseline.min())
          << c.strategy->name() << " " << simd_isa_name(isa);
      EXPECT_EQ(stats.max(), baseline.max())
          << c.strategy->name() << " " << simd_isa_name(isa);
    }
  }
}

TEST(SimdBoundary, BitSlicedEngineRunsCountSimdBlocks) {
  obs::Counter& blocks =
      obs::MetricsRegistry::instance().counter("engine/simd_blocks");
  const std::uint64_t before = blocks.value();
  const MajoritySystem maj(65);
  const ProbeMaj strategy(maj);
  EngineOptions options;
  options.trials = 512;
  options.batch_size = 256;
  options.threads = 1;
  options.execution = Execution::kBitSliced;
  (void)ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  EXPECT_GT(blocks.value(), before);
}

}  // namespace
}  // namespace qps
