// The central safety property (Section 2.3): every probing algorithm, on
// EVERY coloring, terminates with a valid witness -- a fully probed,
// monochromatic set that is a quorum (green) or a transversal (red).
// Exhaustive over all 2^n colorings for small systems, with several RNG
// seeds for the randomized algorithms; randomized spot checks for larger
// systems.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms/greedy.h"
#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_maj.h"
#include "core/algorithms/probe_tree.h"
#include "core/estimator.h"
#include "core/witness.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

void expect_valid_on_all_colorings(const QuorumSystem& system,
                                   const ProbeStrategy& strategy,
                                   int seeds = 3) {
  const std::size_t n = system.universe_size();
  ASSERT_LE(n, 16u);
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const Coloring coloring(n, ElementSet::from_mask(n, mask));
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(1000 * seed + 7);
      ProbeSession session(coloring);
      const Witness witness = strategy.run(session, rng);
      const std::string error =
          validate_witness(system, coloring, witness, session.probed());
      ASSERT_EQ(error, "") << strategy.name() << " on " << system.name()
                           << " coloring greens="
                           << coloring.greens().to_string()
                           << " seed=" << seed;
      ASSERT_LE(session.probe_count(), n);
    }
  }
}

void expect_valid_on_random_colorings(const QuorumSystem& system,
                                      const ProbeStrategy& strategy,
                                      int trials = 50) {
  Rng rng(2025);
  for (int t = 0; t < trials; ++t) {
    const double p = rng.uniform_real(0.05, 0.95);
    const Coloring coloring =
        sample_iid_coloring(system.universe_size(), p, rng);
    ProbeSession session(coloring);
    const Witness witness = strategy.run(session, rng);
    const std::string error =
        validate_witness(system, coloring, witness, session.probed());
    ASSERT_EQ(error, "") << strategy.name() << " on " << system.name();
  }
}

TEST(AlgorithmValidity, ProbeMajExhaustive) {
  for (std::size_t n : {1u, 3u, 5u, 7u, 9u}) {
    const MajoritySystem maj(n);
    expect_valid_on_all_colorings(maj, ProbeMaj(maj), 1);
  }
}

TEST(AlgorithmValidity, RProbeMajExhaustive) {
  for (std::size_t n : {1u, 3u, 5u, 7u}) {
    const MajoritySystem maj(n);
    expect_valid_on_all_colorings(maj, RProbeMaj(maj));
  }
}

TEST(AlgorithmValidity, ProbeCwExhaustive) {
  const std::vector<std::vector<std::size_t>> walls = {
      {1}, {1, 2}, {1, 4}, {1, 2, 3}, {1, 3, 2}, {1, 2, 2, 2}};
  for (const auto& widths : walls) {
    const CrumblingWall wall(widths);
    expect_valid_on_all_colorings(wall, ProbeCW(wall), 1);
  }
}

TEST(AlgorithmValidity, RProbeCwExhaustive) {
  const std::vector<std::vector<std::size_t>> walls = {
      {1}, {1, 2}, {1, 4}, {1, 2, 3}, {1, 3, 2}};
  for (const auto& widths : walls) {
    const CrumblingWall wall(widths);
    expect_valid_on_all_colorings(wall, RProbeCW(wall));
  }
}

TEST(AlgorithmValidity, ProbeTreeExhaustive) {
  for (std::size_t h : {0u, 1u, 2u, 3u}) {
    const TreeSystem tree(h);
    expect_valid_on_all_colorings(tree, ProbeTree(tree), 1);
  }
}

TEST(AlgorithmValidity, RProbeTreeExhaustive) {
  for (std::size_t h : {0u, 1u, 2u, 3u}) {
    const TreeSystem tree(h);
    expect_valid_on_all_colorings(tree, RProbeTree(tree));
  }
}

TEST(AlgorithmValidity, ProbeHqsExhaustive) {
  for (std::size_t h : {0u, 1u, 2u}) {
    const HQSystem hqs(h);
    expect_valid_on_all_colorings(hqs, ProbeHQS(hqs), 1);
  }
}

TEST(AlgorithmValidity, RProbeHqsExhaustive) {
  for (std::size_t h : {0u, 1u, 2u}) {
    const HQSystem hqs(h);
    expect_valid_on_all_colorings(hqs, RProbeHQS(hqs));
  }
}

TEST(AlgorithmValidity, IrProbeHqsExhaustive) {
  for (std::size_t h : {0u, 1u, 2u}) {
    const HQSystem hqs(h);
    expect_valid_on_all_colorings(hqs, IRProbeHQS(hqs), 5);
  }
}

TEST(AlgorithmValidity, GreedyExhaustive) {
  const MajoritySystem maj(5);
  expect_valid_on_all_colorings(maj, GreedyCandidateProbe(maj), 1);
  const CrumblingWall wall({1, 2, 3});
  expect_valid_on_all_colorings(wall, GreedyCandidateProbe(wall), 1);
  const TreeSystem tree(2);
  expect_valid_on_all_colorings(tree, GreedyCandidateProbe(tree), 1);
}

TEST(AlgorithmValidity, LargeSystemsRandomized) {
  const MajoritySystem maj(101);
  expect_valid_on_random_colorings(maj, ProbeMaj(maj));
  expect_valid_on_random_colorings(maj, RProbeMaj(maj));

  const CrumblingWall triang = CrumblingWall::triang(12);
  expect_valid_on_random_colorings(triang, ProbeCW(triang));
  expect_valid_on_random_colorings(triang, RProbeCW(triang));

  const TreeSystem tree(9);
  expect_valid_on_random_colorings(tree, ProbeTree(tree));
  expect_valid_on_random_colorings(tree, RProbeTree(tree));

  const HQSystem hqs(6);
  expect_valid_on_random_colorings(hqs, ProbeHQS(hqs));
  expect_valid_on_random_colorings(hqs, RProbeHQS(hqs));
  expect_valid_on_random_colorings(hqs, IRProbeHQS(hqs));
}

TEST(AlgorithmValidity, IrProbeHqsDeepOddHeights) {
  // IR recurses two levels at a time; odd heights exercise the h=1 fallback.
  for (std::size_t h : {3u, 5u}) {
    const HQSystem hqs(h);
    const IRProbeHQS ir(hqs);
    expect_valid_on_random_colorings(hqs, ir, 30);
  }
}

}  // namespace
}  // namespace qps
