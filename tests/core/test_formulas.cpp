// The paper's closed forms and exponents (Table 1 constants).
#include "core/formulas.h"

#include <gtest/gtest.h>

#include <cmath>

namespace qps {
namespace {

TEST(Formulas, ProbeMajExpectedEqualsGridWalk) {
  // Spot value: n = 3, p = 1/2 -> grid walk with N = 2: 2.5 probes.
  EXPECT_DOUBLE_EQ(probe_maj_expected(3, 0.5), 2.5);
  EXPECT_THROW(probe_maj_expected(4, 0.5), std::invalid_argument);
}

TEST(Formulas, ProbeCwBoundIs2kMinus1) {
  EXPECT_DOUBLE_EQ(probe_cw_bound(1), 1.0);
  EXPECT_DOUBLE_EQ(probe_cw_bound(4), 7.0);
}

TEST(Formulas, ProbeCwExpectedValidation) {
  EXPECT_THROW(probe_cw_expected({2, 3}, 0.5), std::invalid_argument);
  EXPECT_THROW(probe_cw_expected({1, 2}, 0.0), std::invalid_argument);
}

TEST(Formulas, ProbeCwRowTwoCostIsTwoAtHalf) {
  // At p = 1/2 with a deep row the per-row cost approaches exactly 2
  // (mode-weighted geometric means); a (1, big) wall costs ~3.
  EXPECT_NEAR(probe_cw_expected({1, 30}, 0.5), 3.0, 1e-6);
}

TEST(Formulas, ProbeTreeBaseCases) {
  EXPECT_DOUBLE_EQ(probe_tree_expected(0, 0.5), 1.0);
  // h=1: 1 + (1 + q F(0) + p (1-F(0))) with F(0) = p:
  // p=1/2: 1 + (1 + 1/4 + 1/4) * 1 = 2.5.
  EXPECT_DOUBLE_EQ(probe_tree_expected(1, 0.5), 2.5);
}

TEST(Formulas, ProbeHqsBaseCases) {
  EXPECT_DOUBLE_EQ(probe_hqs_expected(0, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(probe_hqs_expected(1, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(probe_hqs_expected(2, 0.5), 6.25);
  EXPECT_DOUBLE_EQ(probe_hqs_expected(3, 0.5), 15.625);
}

TEST(Formulas, RProbeMajWorstCaseClosedForm) {
  EXPECT_EQ(r_probe_maj_worst_case(3), Rational(8, 3));
  // n=5: 5 - 4/8 = 4.5.
  EXPECT_EQ(r_probe_maj_worst_case(5), Rational(9, 2));
  // n=7: 7 - 6/10 = 6.4 = 32/5.
  EXPECT_EQ(r_probe_maj_worst_case(7), Rational(32, 5));
}

TEST(Formulas, RProbeMajExpectedSymmetry) {
  // Swapping reds and greens swaps nothing: the majority color's count
  // determines the cost.
  for (std::size_t n : {5u, 9u})
    for (std::size_t r = 0; r <= n; ++r)
      EXPECT_EQ(r_probe_maj_expected(n, r), r_probe_maj_expected(n, n - r));
}

TEST(Formulas, RProbeCwBoundForWheelIsNMinus1) {
  // Cor. 4.5(2): the j = bottom row term dominates: n_2 = n - 1.
  EXPECT_DOUBLE_EQ(r_probe_cw_bound({1, 7}), 7.0);
}

TEST(Formulas, CwRandomizedLowerBound) {
  EXPECT_DOUBLE_EQ(cw_randomized_lower_bound({1, 2, 3}), 4.5);
  EXPECT_DOUBLE_EQ(cw_randomized_lower_bound({1, 3}), 3.0);
}

TEST(Formulas, TreeRandomizedBounds) {
  EXPECT_DOUBLE_EQ(r_probe_tree_bound(7), 6.0);
  EXPECT_DOUBLE_EQ(tree_randomized_lower_bound(7), 16.0 / 3.0);
  // Upper bound above lower bound (they touch exactly at n = 3, where
  // 5n/6 + 1/6 = 2(n+1)/3 = 8/3 -- the Maj3 game value).
  EXPECT_DOUBLE_EQ(r_probe_tree_bound(3), tree_randomized_lower_bound(3));
  for (std::size_t n : {7u, 15u, 1023u})
    EXPECT_GT(r_probe_tree_bound(n), tree_randomized_lower_bound(n));
}

TEST(Formulas, Table1Exponents) {
  EXPECT_NEAR(hqs_ppc_exponent(), 0.834, 0.001);
  EXPECT_NEAR(hqs_ppc_low_p_exponent(), 0.631, 0.001);
  EXPECT_NEAR(tree_ppc_exponent(0.5), 0.585, 0.001);
  EXPECT_NEAR(hqs_r_probe_exponent(), 0.893, 0.001);
  EXPECT_NEAR(hqs_ir_probe_exponent(), 0.890, 0.001);
  // Symmetry of the tree exponent in p and q.
  EXPECT_DOUBLE_EQ(tree_ppc_exponent(0.3), tree_ppc_exponent(0.7));
}

TEST(Formulas, IrLevelConstant) {
  EXPECT_EQ(ir_probe_hqs_level_constant(), Rational(191, 27));
  // Strictly better than R_Probe_HQS's (8/3)^2 = 7.1111 per two levels.
  EXPECT_LT(ir_probe_hqs_level_constant().to_double(), 64.0 / 9.0);
}

}  // namespace
}  // namespace qps
