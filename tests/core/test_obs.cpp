// Observability layer contracts (core/obs/): histogram bucket edges,
// sharded-counter totals under concurrent writers (run under TSan in CI's
// thread-sanitizer job via the Obs suite-name filter), registry identity
// and kind checking, JSON snapshots parsing through util/json, and the
// trace recorder's Chrome trace_event round-trip.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "util/json.h"

namespace qps::obs {
namespace {

TEST(ObsMetrics, HistogramBucketEdges) {
  // Bucket 0 is exactly the value 0; bucket i holds the values of bit
  // width i; the last bucket is the overflow sink.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(1), 1u);
  EXPECT_EQ(Histogram::bucket_index(2), 2u);
  EXPECT_EQ(Histogram::bucket_index(3), 2u);
  EXPECT_EQ(Histogram::bucket_index(4), 3u);

  // Power-of-two boundaries: 2^(i-1) opens bucket i, 2^i - 1 closes it.
  for (std::size_t i = 1; i + 1 < Histogram::kBuckets; ++i) {
    const std::uint64_t lo = std::uint64_t{1} << (i - 1);
    EXPECT_EQ(Histogram::bucket_index(lo), i) << "lower edge of bucket " << i;
    EXPECT_EQ(Histogram::bucket_index(2 * lo - 1), i)
        << "upper edge of bucket " << i;
    EXPECT_EQ(Histogram::bucket_lower_bound(i), lo);
  }
  EXPECT_EQ(Histogram::bucket_lower_bound(0), 0u);

  // Everything of bit width >= kBuckets - 1 lands in the overflow sink,
  // up to and including the max representable value.
  const std::uint64_t first_overflow = std::uint64_t{1}
                                       << (Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::bucket_index(first_overflow - 1),
            Histogram::kBuckets - 2);
  EXPECT_EQ(Histogram::bucket_index(first_overflow), Histogram::kBuckets - 1);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            Histogram::kBuckets - 1);
}

TEST(ObsMetrics, HistogramRecordCountsSumsAndOverflows) {
  if (!kMetricsCompiled) GTEST_SKIP() << "metrics writes compiled out";
  Histogram h("test/edges");
  h.record(0);
  h.record(1);
  h.record(7);
  h.record(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.bucket_count(Histogram::kBuckets - 1), 1u);
  EXPECT_EQ(h.sum(), 0 + 1 + 7 + std::numeric_limits<std::uint64_t>::max());
}

TEST(ObsMetrics, ShardedCounterMergesConcurrentWriters) {
  if (!kMetricsCompiled) GTEST_SKIP() << "metrics writes compiled out";
  Counter& counter =
      MetricsRegistry::instance().counter("test/concurrent_adds");
  const std::uint64_t before = counter.value();

  // More writers than shards, each hammering its own shard, with a reader
  // polling merged totals throughout: TSan (CI's thread-sanitizer job runs
  // this suite) proves the relaxed-atomic scheme is race-free, and the
  // final total proves no increment was lost to shard contention.
  constexpr std::size_t kThreads = 3 * kCounterShards / 2;
  constexpr std::uint64_t kAddsPerThread = 20000;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t)
    writers.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kAddsPerThread; ++i) counter.increment();
    });
  std::thread reader([&counter, before] {
    for (int i = 0; i < 1000; ++i) {
      const std::uint64_t seen = counter.value();
      ASSERT_GE(seen, before);
      ASSERT_LE(seen - before, kThreads * kAddsPerThread);
    }
  });
  for (std::thread& w : writers) w.join();
  reader.join();
  EXPECT_EQ(counter.value() - before, kThreads * kAddsPerThread);
}

TEST(ObsMetrics, HistogramIsSafeUnderConcurrentRecords) {
  if (!kMetricsCompiled) GTEST_SKIP() << "metrics writes compiled out";
  Histogram& h =
      MetricsRegistry::instance().histogram("test/concurrent_records");
  const std::uint64_t before_count = h.count();
  const std::uint64_t before_sum = h.sum();

  constexpr std::size_t kThreads = 8;
  constexpr std::uint64_t kRecords = 10000;
  std::vector<std::thread> writers;
  for (std::size_t t = 0; t < kThreads; ++t)
    writers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kRecords; ++i) h.record(t);
    });
  for (std::thread& w : writers) w.join();

  EXPECT_EQ(h.count() - before_count, kThreads * kRecords);
  std::uint64_t expected_sum = 0;
  for (std::size_t t = 0; t < kThreads; ++t) expected_sum += t * kRecords;
  EXPECT_EQ(h.sum() - before_sum, expected_sum);
}

TEST(ObsMetrics, GaugeSetAndAdd) {
  if (!kMetricsCompiled) GTEST_SKIP() << "metrics writes compiled out";
  Gauge g("test/gauge");
  EXPECT_EQ(g.value(), 0);
  g.set(42);
  EXPECT_EQ(g.value(), 42);
  g.add(-50);
  EXPECT_EQ(g.value(), -8);
}

TEST(ObsMetrics, RegistryReturnsSameInstrumentForSameName) {
  Counter& a = MetricsRegistry::instance().counter("test/identity");
  Counter& b = MetricsRegistry::instance().counter("test/identity");
  EXPECT_EQ(&a, &b);
}

TEST(ObsMetrics, RegistryRejectsKindMismatch) {
  MetricsRegistry::instance().counter("test/kind_clash");
  EXPECT_THROW(MetricsRegistry::instance().gauge("test/kind_clash"),
               std::logic_error);
  EXPECT_THROW(MetricsRegistry::instance().histogram("test/kind_clash"),
               std::logic_error);
}

TEST(ObsMetrics, SnapshotJsonParsesAndCarriesValues) {
  if (!kMetricsCompiled) GTEST_SKIP() << "metrics writes compiled out";
  Counter& counter = MetricsRegistry::instance().counter("test/snap_counter");
  Gauge& gauge = MetricsRegistry::instance().gauge("test/snap_gauge");
  Histogram& histogram =
      MetricsRegistry::instance().histogram("test/snap_histogram");
  const std::uint64_t counter_before = counter.value();
  counter.add(5);
  gauge.set(-7);
  histogram.record(3);

  const JsonValue snapshot =
      JsonValue::parse(MetricsRegistry::instance().snapshot_json());
  EXPECT_EQ(snapshot.at("counters").at("test/snap_counter").as_uint64(),
            counter_before + 5);
  EXPECT_EQ(snapshot.at("gauges").at("test/snap_gauge").as_double(), -7.0);
  const JsonValue& h = snapshot.at("histograms").at("test/snap_histogram");
  EXPECT_GE(h.at("count").as_uint64(), 1u);
  EXPECT_GE(h.at("sum").as_uint64(), 3u);
  // Buckets are trimmed after the last non-empty one; value 3 lives in
  // bucket 2, so at least three entries must survive.
  EXPECT_GE(h.at("buckets").as_array().size(), 3u);
}

TEST(ObsTrace, SpansRoundTripThroughChromeJson) {
  if (!kTraceCompiled) GTEST_SKIP() << "tracing compiled out";
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.enable();
  recorder.clear();

  // Spans from several threads plus an instant, all through the public
  // macro / recorder surface.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([] {
      QPS_TRACE_SPAN("test/worker_span", "test");
    });
  for (std::thread& t : threads) t.join();
  {
    QPS_TRACE_SPAN("test/outer_span", "test");
  }
  recorder.record_instant("test/instant", "test");
  recorder.disable();

  EXPECT_EQ(recorder.event_count(), 6u);
  EXPECT_EQ(recorder.dropped(), 0u);

  const JsonValue doc = JsonValue::parse(recorder.to_json());
  EXPECT_EQ(doc.at("displayTimeUnit").as_string(), "ms");
  const std::vector<JsonValue>& events = doc.at("traceEvents").as_array();
  ASSERT_EQ(events.size(), 6u);

  std::set<std::string> names;
  std::uint64_t previous_ts = 0;
  bool saw_instant = false;
  for (const JsonValue& event : events) {
    names.insert(event.at("name").as_string());
    EXPECT_EQ(event.at("cat").as_string(), "test");
    const std::uint64_t ts = event.at("ts").as_uint64();
    EXPECT_GE(ts, previous_ts) << "events must be sorted by timestamp";
    previous_ts = ts;
    EXPECT_GT(event.at("pid").as_uint64(), 0u);
    EXPECT_GT(event.at("tid").as_uint64(), 0u);
    if (event.at("ph").as_string() == "X") {
      EXPECT_TRUE(event.contains("dur"));
    } else {
      EXPECT_EQ(event.at("ph").as_string(), "i");
      saw_instant = true;
    }
  }
  EXPECT_TRUE(saw_instant);
  EXPECT_EQ(names, (std::set<std::string>{"test/worker_span",
                                          "test/outer_span", "test/instant"}));

  recorder.clear();
  EXPECT_EQ(recorder.event_count(), 0u);
}

TEST(ObsTrace, DisabledRecorderRecordsNothing) {
  TraceRecorder& recorder = TraceRecorder::instance();
  recorder.disable();
  recorder.clear();
  {
    QPS_TRACE_SPAN("test/should_not_appear", "test");
  }
  recorder.record_instant("test/should_not_appear", "test");
  EXPECT_EQ(recorder.event_count(), 0u);
  // An empty trace is still a valid Chrome document.
  const JsonValue doc = JsonValue::parse(recorder.to_json());
  EXPECT_TRUE(doc.at("traceEvents").as_array().empty());
}

}  // namespace
}  // namespace qps::obs
