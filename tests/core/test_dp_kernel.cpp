// The unified Bellman DP kernel: differential tests against the legacy
// recursive solvers, thread-count bit-identity, the centralized memory
// guard, and the combinatorial ranking that backs the dense state layout.
#include "core/exact/dp_kernel.h"

#include <gtest/gtest.h>

#include <bit>
#include <memory>
#include <vector>

#include "core/engine/parallel_estimator.h"
#include "core/exact/decision_tree.h"
#include "core/exact/legacy_recursive.h"
#include "core/exact/pc_exact.h"
#include "core/exact/ppc_exact.h"
#include "core/exact/yao_bound.h"
#include "util/stats.h"
#include "quorum/crumbling_wall.h"
#include "quorum/grid_system.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

/// Every seed family at sizes the legacy recursion can still reach.
std::vector<std::unique_ptr<QuorumSystem>> seed_family_systems() {
  std::vector<std::unique_ptr<QuorumSystem>> systems;
  for (std::size_t n : {1u, 3u, 5u, 7u, 9u, 11u})
    systems.push_back(std::make_unique<MajoritySystem>(n));
  for (std::size_t n : {4u, 6u, 8u, 12u})
    systems.push_back(std::make_unique<WheelSystem>(n));
  for (const auto& widths : std::vector<std::vector<std::size_t>>{
           {1, 2}, {1, 2, 3}, {1, 3, 2}, {1, 2, 2, 2}})
    systems.push_back(std::make_unique<CrumblingWall>(widths));
  for (std::size_t h : {1u, 2u})
    systems.push_back(std::make_unique<TreeSystem>(h));
  for (std::size_t h : {1u, 2u})
    systems.push_back(std::make_unique<HQSystem>(h));
  systems.push_back(std::make_unique<GridSystem>(3, 4));
  return systems;
}

TEST(DpKernel, PcMatchesLegacyRecursionOnSeedFamilies) {
  for (const auto& system : seed_family_systems())
    EXPECT_EQ(pc_exact(*system), exact::legacy::pc_exact_recursive(*system))
        << system->name();
}

TEST(DpKernel, PpcIsBitIdenticalToLegacyRecursionOnSeedFamilies) {
  // The kernel evaluates 1 + q*V(green) + p*V(red) with the same operation
  // order and the same ascending-element min as the recursion, so values
  // match to the last bit, not just to a tolerance.
  for (const auto& system : seed_family_systems()) {
    for (double p : {0.0, 0.1, 0.3, 0.5, 0.8, 1.0}) {
      EXPECT_EQ(ppc_exact(*system, p),
                exact::legacy::ppc_exact_recursive(*system, p))
          << system->name() << " p=" << p;
    }
  }
}

TEST(DpKernel, RootPolicyMatchesLegacyFirstProbe) {
  for (const auto& system : seed_family_systems()) {
    for (double p : {0.3, 0.5}) {
      EXPECT_EQ(ppc_optimal_first_probe(*system, p),
                exact::legacy::ppc_optimal_first_probe_recursive(*system, p))
          << system->name() << " p=" << p;
    }
  }
}

TEST(DpKernel, YaoMatchesLegacyRecursionOnPaperDistributions) {
  // The weighted policy's conditional probabilities come from tabulated
  // child masses; summation order differs from the recursion, so agreement
  // is to floating-point tolerance rather than bitwise.
  for (std::size_t n : {3u, 5u, 7u, 9u}) {
    const MajoritySystem maj(n);
    const auto hard = maj_hard_distribution(n);
    EXPECT_NEAR(yao_bound(maj, hard),
                exact::legacy::yao_bound_recursive(maj, hard), 1e-12)
        << "maj n=" << n;
  }
  for (const auto& widths : std::vector<std::vector<std::size_t>>{
           {1, 2}, {1, 2, 3}, {1, 3, 2}, {1, 2, 2, 2}}) {
    const CrumblingWall wall(widths);
    const auto hard = cw_hard_distribution(wall);
    EXPECT_NEAR(yao_bound(wall, hard),
                exact::legacy::yao_bound_recursive(wall, hard), 1e-12)
        << wall.name();
  }
  for (std::size_t h : {1u, 2u}) {
    const TreeSystem tree(h);
    const auto hard = tree_hard_distribution(tree);
    EXPECT_NEAR(yao_bound(tree, hard),
                exact::legacy::yao_bound_recursive(tree, hard), 1e-12)
        << "tree h=" << h;
  }
}

TEST(DpKernel, ResultsAreBitIdenticalAcrossThreadCounts) {
  const MajoritySystem maj(11);
  const CrumblingWall wall({1, 3, 4});
  exact::DpOptions one;
  one.threads = 1;
  for (std::size_t threads : {2u, 4u, 7u}) {
    exact::DpOptions many;
    many.threads = threads;
    for (double p : {0.3, 0.5}) {
      EXPECT_EQ(ppc_exact(maj, p, one), ppc_exact(maj, p, many))
          << "threads=" << threads << " p=" << p;
      EXPECT_EQ(ppc_exact(wall, p, one), ppc_exact(wall, p, many))
          << "threads=" << threads << " p=" << p;
    }
    EXPECT_EQ(pc_exact(maj, one), pc_exact(maj, many));
    const auto hard = maj_hard_distribution(9);
    const MajoritySystem maj9(9);
    EXPECT_EQ(yao_bound(maj9, hard, one), yao_bound(maj9, hard, many))
        << "threads=" << threads;
  }
}

TEST(DpKernel, PpcAgreesWithMonteCarloOptimalStrategy) {
  // The kernel's optimum must match a Monte-Carlo run of its own extracted
  // optimal decision tree within sampling error (4 x SEM).
  const MajoritySystem maj(7);
  for (double p : {0.3, 0.5}) {
    const double optimum = ppc_exact(maj, p);
    const auto tree = optimal_ppc_tree(maj, p);
    EngineOptions options;
    options.trials = 40000;
    options.threads = 2;
    const ParallelEstimator engine(options);
    const RunningStats stats = engine.run([&](Rng& rng) {
      const Coloring coloring = sample_iid_coloring(7, p, rng);
      return static_cast<double>(tree->evaluate(coloring).second);
    });
    EXPECT_NEAR(stats.mean(), optimum,
                std::max(4.0 * stats.sem(), 1e-9))
        << "p=" << p;
  }
}

TEST(DpKernel, StateCountsSumToPowersOfThree) {
  for (std::size_t n : {1u, 4u, 9u, 14u}) {
    std::size_t total = 0;
    for (std::size_t k = 0; k <= n; ++k) total += exact::dp_state_count(n, k);
    std::size_t expected = 1;
    for (std::size_t i = 0; i < n; ++i) expected *= 3;
    EXPECT_EQ(total, expected) << "n=" << n;
  }
}

TEST(DpKernel, MemoryGuardStatesTheCapFormula) {
  // A deliberately tiny budget trips the centralized guard; the message
  // must spell out the formula and the knob.
  try {
    exact::require_dp_feasible(14, sizeof(double), false, false,
                               1 << 20);  // 1 MiB
    FAIL() << "expected the memory guard to throw";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("C(n,k)*2^k"), std::string::npos) << message;
    EXPECT_NE(message.find("memory_limit_bytes"), std::string::npos)
        << message;
  }
  // The default budget admits the sizes the acceptance bar names.
  EXPECT_NO_THROW(exact::require_dp_feasible(18, sizeof(double), false, false,
                                             exact::kDefaultDpMemoryLimit));
  EXPECT_NO_THROW(exact::require_dp_feasible(
      18, sizeof(std::uint8_t), false, false, exact::kDefaultDpMemoryLimit));
  // And the hard characteristic-table ceiling still holds.
  EXPECT_THROW(exact::require_dp_feasible(23, 1, false, false,
                                          exact::kDefaultDpMemoryLimit),
               std::invalid_argument);
}

TEST(DpKernel, MemoryGuardIsEnforcedThroughTheAdapters) {
  exact::DpOptions starved;
  starved.memory_limit_bytes = 1 << 16;  // 64 KiB: too small for n = 11
  EXPECT_THROW(ppc_exact(MajoritySystem(11), 0.5, starved),
               std::invalid_argument);
  EXPECT_THROW(pc_exact(MajoritySystem(13), starved), std::invalid_argument);
}

TEST(DpKernel, YaoFallsBackToSparseRecursionWhenBudgetRejects) {
  // The dense weighted kernel is budget-gated, but yao_bound keeps the
  // pre-kernel public domain by falling back to the sparse recursion
  // (cap n <= 20) instead of throwing.
  const MajoritySystem maj(9);
  const auto hard = maj_hard_distribution(9);
  exact::DpOptions starved;
  starved.memory_limit_bytes = 1 << 12;  // 4 KiB: kernel infeasible
  EXPECT_NEAR(yao_bound(maj, hard, starved),
              exact::legacy::yao_bound_recursive(maj, hard), 1e-12);
}

TEST(DpKernel, ColexRankingRoundTrips) {
  for (std::size_t n : {5u, 9u, 12u}) {
    for (std::size_t k = 0; k <= n; ++k) {
      // Enumerate all C(n,k) masks in numeric order; ranks must be
      // 0,1,2,... and unrank must invert.
      std::size_t rank = 0;
      std::uint64_t mask = k == 0 ? 0 : (1ULL << k) - 1;
      const std::uint64_t limit = 1ULL << n;
      while (mask < limit) {
        EXPECT_EQ(exact::detail::colex_rank(mask), rank);
        EXPECT_EQ(exact::detail::colex_unrank(rank, k), mask);
        ++rank;
        if (k == 0) break;
        mask = exact::detail::next_same_popcount(mask);
      }
      EXPECT_EQ(rank,
                static_cast<std::size_t>(binomial_coefficient(n, k) + 0.5))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(DpKernel, CompressSubmaskPacksGreensDensely) {
  const std::uint64_t probed = 0b1011010;
  // Submasks enumerated descending via (s-1) & probed walk compressed
  // indices 2^k-1 .. 0 in lockstep.
  std::uint32_t expected = (1u << std::popcount(probed)) - 1;
  std::uint64_t sub = probed;
  for (;;) {
    EXPECT_EQ(exact::detail::compress_submask(sub, probed), expected);
    if (sub == 0) break;
    sub = (sub - 1) & probed;
    --expected;
  }
}

TEST(DpKernel, RecordedPolicyCoversEveryReachableState) {
  // With record_policy on, every non-terminal state the optimal tree can
  // reach must report a valid probe element not yet probed.
  const CrumblingWall wall({1, 2, 2});
  exact::DpOptions options;
  options.record_policy = true;
  const exact::DpKernel<exact::ExpectationPolicy> kernel(
      wall, exact::ExpectationPolicy(0.4), options);
  const std::size_t n = wall.universe_size();
  for (std::uint64_t probed = 0; probed < (1ULL << n); ++probed) {
    for (std::uint64_t greens = probed;; greens = (greens - 1) & probed) {
      const std::size_t e = kernel.policy_probe(probed, greens);
      const bool terminal =
          kernel.char_table().is_terminal(probed, greens);
      if (terminal) {
        EXPECT_EQ(e, n) << "probed=" << probed << " greens=" << greens;
      } else {
        ASSERT_LT(e, n) << "probed=" << probed << " greens=" << greens;
        EXPECT_EQ(probed & (1ULL << e), 0u);
      }
      if (greens == 0) break;
    }
  }
}

}  // namespace
}  // namespace qps
