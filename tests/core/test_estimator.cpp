#include "core/estimator.h"

#include <gtest/gtest.h>

#include "core/algorithms/probe_maj.h"
#include "quorum/majority.h"

namespace qps {
namespace {

// A deliberately broken strategy for testing witness validation: claims
// the first element alone is a green quorum.
class BrokenStrategy final : public ProbeStrategy {
 public:
  std::string name() const override { return "Broken"; }
  Witness run(ProbeSession& session, Rng&) const override {
    session.probe(0);
    Witness w;
    w.color = Color::kGreen;
    w.elements = ElementSet(session.universe_size());
    w.elements.insert(0);
    return w;
  }
};

TEST(Estimator, EstimatePpcReturnsTrialsStats) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  Rng rng(1);
  EstimatorOptions options;
  options.trials = 500;
  const auto stats = estimate_ppc(maj, strategy, 0.5, options, rng);
  EXPECT_EQ(stats.count(), 500u);
  EXPECT_GE(stats.min(), 3.0);  // at least threshold probes
  EXPECT_LE(stats.max(), 5.0);
}

TEST(Estimator, ValidationCatchesBrokenStrategy) {
  const MajoritySystem maj(5);
  const BrokenStrategy broken;
  Rng rng(1);
  EstimatorOptions options;
  options.trials = 10;
  options.validate_witnesses = true;
  EXPECT_THROW(estimate_ppc(maj, broken, 0.5, options, rng),
               std::logic_error);
}

TEST(Estimator, NoValidationLetsBrokenStrategyRun) {
  const MajoritySystem maj(5);
  const BrokenStrategy broken;
  Rng rng(1);
  EstimatorOptions options;
  options.trials = 10;
  options.validate_witnesses = false;
  EXPECT_NO_THROW(estimate_ppc(maj, broken, 0.5, options, rng));
}

TEST(Estimator, FixedColoringExpectation) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  Rng rng(2);
  EstimatorOptions options;
  options.trials = 50;
  // Deterministic strategy on a fixed coloring: zero variance.
  const Coloring c(5, ElementSet(5, {0, 1, 2}));
  const auto stats = expected_probes_on(maj, strategy, c, options, rng);
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(Estimator, WorstCaseSearchFindsHardMajInput) {
  // For ProbeMaj (sequential), the worst inputs need n probes; the hill
  // climb should find a coloring costing the full n.
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  Rng rng(3);
  const auto result =
      worst_case_search(maj, strategy, std::nullopt, 200, 1, rng);
  EXPECT_EQ(result.expected_probes, 5.0);
}

TEST(Estimator, WorstCaseSearchRespectsSeed) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  Rng rng(4);
  const Coloring seed(5, ElementSet(5, {0, 2}));  // already worst (5 probes)
  const auto result = worst_case_search(maj, strategy, seed, 10, 1, rng);
  EXPECT_GE(result.expected_probes, 5.0 - 1e-12);
}

TEST(Estimator, RejectsZeroTrials) {
  const MajoritySystem maj(3);
  const ProbeMaj strategy(maj);
  Rng rng(5);
  EstimatorOptions options;
  options.trials = 0;
  EXPECT_THROW(estimate_ppc(maj, strategy, 0.5, options, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace qps
