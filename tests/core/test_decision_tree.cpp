// Fig. 4: explicit optimal probe-strategy trees.
#include "core/exact/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/exact/pc_exact.h"
#include "core/exact/ppc_exact.h"
#include "quorum/crumbling_wall.h"
#include "quorum/majority.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(DecisionTree, Maj3ReproducesFigure4) {
  const MajoritySystem maj3(3);
  const auto tree = optimal_ppc_tree(maj3, 0.5);
  // Fig. 4's tree: depth 3 (PC), expected depth 2.5 (PPC).
  EXPECT_EQ(tree->depth(), 3u);
  EXPECT_DOUBLE_EQ(tree->expected_depth(0.5), 2.5);
}

TEST(DecisionTree, DepthNeverBeatsPcAndExpectationMatchesPpc) {
  const MajoritySystem maj5(5);
  const CrumblingWall wall({1, 2, 2});
  const WheelSystem wheel(5);
  const std::vector<const QuorumSystem*> systems = {&maj5, &wall, &wheel};
  for (const QuorumSystem* system : systems) {
    for (double p : {0.3, 0.5}) {
      const auto tree = optimal_ppc_tree(*system, p);
      EXPECT_GE(tree->depth(), pc_exact(*system) == system->universe_size()
                                   ? system->min_quorum_size()
                                   : 1u);
      EXPECT_LE(tree->depth(), system->universe_size());
      EXPECT_NEAR(tree->expected_depth(p), ppc_exact(*system, p), 1e-12)
          << system->name() << " p=" << p;
    }
  }
}

TEST(DecisionTree, EvaluateAgreesWithSystemStateOnEveryColoring) {
  const MajoritySystem maj5(5);
  const auto tree = optimal_ppc_tree(maj5, 0.5);
  for (std::uint64_t mask = 0; mask < 32; ++mask) {
    const Coloring coloring(5, ElementSet::from_mask(5, mask));
    const auto [color, probes] = tree->evaluate(coloring);
    const bool live = maj5.contains_quorum(coloring.greens());
    EXPECT_EQ(color == Color::kGreen, live) << "mask=" << mask;
    EXPECT_LE(probes, 5u);
    EXPECT_GE(probes, 3u);  // Maj(5) needs at least 3 probes always
  }
}

TEST(DecisionTree, ExpectedDepthFromEvaluationMatchesFormula) {
  // Summing depth * P over all colorings must equal expected_depth().
  const CrumblingWall wall({1, 2, 2});
  const double p = 0.4;
  const auto tree = optimal_ppc_tree(wall, p);
  double expected = 0.0;
  for (std::uint64_t mask = 0; mask < 32; ++mask) {
    const Coloring coloring(5, ElementSet::from_mask(5, mask));
    const auto [color, probes] = tree->evaluate(coloring);
    const auto greens = static_cast<double>(coloring.green_count());
    const double weight = std::pow(1.0 - p, greens) *
                          std::pow(p, 5.0 - greens);
    expected += weight * static_cast<double>(probes);
  }
  EXPECT_NEAR(expected, tree->expected_depth(p), 1e-12);
}

TEST(DecisionTree, AsciiRenderingShowsProbesAndVerdicts) {
  const MajoritySystem maj3(3);
  const auto tree = optimal_ppc_tree(maj3, 0.5);
  const std::string ascii = tree->to_ascii();
  EXPECT_NE(ascii.find("probe x"), std::string::npos);
  EXPECT_NE(ascii.find("[+] green witness"), std::string::npos);
  EXPECT_NE(ascii.find("[-] red witness"), std::string::npos);
  EXPECT_NE(ascii.find("1-> "), std::string::npos);
  EXPECT_NE(ascii.find("0-> "), std::string::npos);
}

TEST(DecisionTree, RejectsLargeUniverse) {
  EXPECT_THROW(optimal_ppc_tree(MajoritySystem(23), 0.5),
               std::invalid_argument);
}

}  // namespace
}  // namespace qps
