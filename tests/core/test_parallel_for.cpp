// The reusable worker pool behind the Monte-Carlo engine and the exact DP
// kernel.
#include "core/engine/parallel_for.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace qps {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallel_for(0, hits.size(), 17,
                      [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i)
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                      });
    for (std::size_t i = 0; i < hits.size(); ++i)
      ASSERT_EQ(hits[i].load(), 1) << "i=" << i << " threads=" << threads;
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndTinyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  // A range no larger than one grain runs inline as a single chunk.
  std::vector<int> seen;
  pool.parallel_for(3, 7, 100, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      seen.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(seen, (std::vector<int>{3, 4, 5, 6}));
}

TEST(ThreadPool, RunWorkersRunsOnEveryWorker) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
  std::atomic<int> runs{0};
  pool.run_workers([&] { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 3);
}

TEST(ThreadPool, PoolIsReusableAcrossDispatches) {
  ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<long> sum{0};
    pool.parallel_for(0, 100, 7, [&](std::size_t begin, std::size_t end) {
      long local = 0;
      for (std::size_t i = begin; i < end; ++i)
        local += static_cast<long>(i);
      sum.fetch_add(local);
    });
    EXPECT_EQ(sum.load(), 4950);
  }
}

TEST(ThreadPool, ExceptionsPropagateToTheCaller) {
  for (std::size_t threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.parallel_for(0, 100, 3,
                          [&](std::size_t begin, std::size_t) {
                            if (begin >= 50)
                              throw std::runtime_error("chunk failed");
                          }),
        std::runtime_error);
    // The pool survives a throwing dispatch.
    std::atomic<int> ok{0};
    pool.parallel_for(0, 10, 1,
                      [&](std::size_t, std::size_t) { ok.fetch_add(1); });
    EXPECT_EQ(ok.load(), 10);
  }
}

TEST(ThreadPool, ResolveThreadsFallsBackToHardware) {
  EXPECT_GE(ThreadPool::resolve_threads(0), 1u);
  EXPECT_EQ(ThreadPool::resolve_threads(5), 5u);
}

}  // namespace
}  // namespace qps
