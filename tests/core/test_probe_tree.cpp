// Probe_Tree (Prop. 3.6) and R_Probe_Tree (Thms 4.7, 4.8).
#include "core/algorithms/probe_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "core/expectation.h"
#include "core/formulas.h"
#include "quorum/availability.h"

namespace qps {
namespace {

TEST(ProbeTreeTest, SingleNodeTree) {
  const TreeSystem tree(0);
  const ProbeTree strategy(tree);
  Rng rng(1);
  const Coloring c(1, ElementSet(1, {0}));
  ProbeSession s(c);
  const Witness w = strategy.run(s, rng);
  EXPECT_EQ(w.color, Color::kGreen);
  EXPECT_EQ(s.probe_count(), 1u);
}

TEST(ProbeTreeTest, AllGreenProbesRootPath) {
  // All green: the root and the right-subtree recursion agree at every
  // level, so exactly h+1 probes happen (root + right spine... each level
  // probes its root then recurses into one subtree).
  const TreeSystem tree(3);
  const ProbeTree strategy(tree);
  Rng rng(1);
  const Coloring c(15, ElementSet::full(15));
  ProbeSession s(c);
  const Witness w = strategy.run(s, rng);
  EXPECT_EQ(w.color, Color::kGreen);
  EXPECT_EQ(s.probe_count(), 4u);  // h + 1
  EXPECT_EQ(w.elements.count(), 4u);  // a root-to-leaf path quorum
}

TEST(ProbeTreeTest, AverageMatchesExactRecursion) {
  Rng rng(21);
  EstimatorOptions options;
  options.trials = 40000;
  for (std::size_t h : {2u, 4u, 6u}) {
    const TreeSystem tree(h);
    const ProbeTree strategy(tree);
    for (double p : {0.5, 0.3}) {
      const auto stats = estimate_ppc(tree, strategy, p, options, rng);
      const double exact = probe_tree_expected(h, p);
      EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth())
          << "h=" << h << " p=" << p;
    }
  }
}

TEST(ProbeTreeTest, GrowthRateMatchesCorollary37) {
  // T(h)/T(h-1) -> 1 + p + (q - p) F where F -> 1/2 for p = 1/2, i.e. 3/2
  // per level: cost ~ n^{log2 1.5} = n^0.585.
  const double t8 = probe_tree_expected(8, 0.5);
  const double t9 = probe_tree_expected(9, 0.5);
  EXPECT_NEAR(t9 / t8, 1.5, 0.02);
  // For p = 0.3 the per-level factor approaches 1 + p = 1.3 from above
  // (Prop. 3.6: O(n^{log2(1+p)})).
  const double u12 = probe_tree_expected(12, 0.3);
  const double u13 = probe_tree_expected(13, 0.3);
  EXPECT_NEAR(u13 / u12, 1.3, 0.03);
}

TEST(ProbeTreeTest, SymmetricInPAndQ) {
  for (std::size_t h : {2u, 5u})
    for (double p : {0.1, 0.3})
      EXPECT_NEAR(probe_tree_expected(h, p), probe_tree_expected(h, 1 - p),
                  1e-9);
}

TEST(ProbeTreeTest, CheaperThanEvasiveDeterministicBound) {
  // PC(Tree) = n in the worst case (Lemma 2.2) but the probabilistic cost
  // is polynomially smaller: within a small constant of n^0.585, and a
  // vanishing fraction of n.
  const std::size_t h = 14;
  const double n = std::pow(2.0, h + 1.0) - 1.0;
  const double cost = probe_tree_expected(h, 0.5);
  EXPECT_LT(cost, 5.0 * std::pow(n, tree_ppc_exponent(0.5)));
  EXPECT_LT(cost, 0.05 * n);
}

TEST(RProbeTreeTest, ExpectationEvaluatorMatchesMonteCarlo) {
  const TreeSystem tree(3);
  const RProbeTree strategy(tree);
  Rng rng(31);
  EstimatorOptions options;
  options.trials = 60000;
  for (std::uint64_t mask : {0ULL, 0x7FFFULL, 0x5A5AULL, 0x1234ULL}) {
    const Coloring c(15, ElementSet::from_mask(15, mask));
    const auto stats = expected_probes_on(tree, strategy, c, options, rng);
    const double exact = r_probe_tree_expectation(tree, c);
    EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth())
        << "mask=" << mask;
  }
}

TEST(RProbeTreeTest, Theorem47BoundHoldsExhaustively) {
  // E[probes] <= 5n/6 + 1/6 on every coloring (exhaustive for h <= 3).
  for (std::size_t h : {1u, 2u, 3u}) {
    const TreeSystem tree(h);
    const std::size_t n = tree.universe_size();
    const double bound = r_probe_tree_bound(n);
    const std::uint64_t limit = 1ULL << n;
    double worst = 0;
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      const Coloring c(n, ElementSet::from_mask(n, mask));
      worst = std::max(worst, r_probe_tree_expectation(tree, c));
    }
    EXPECT_LE(worst, bound + 1e-9) << "h=" << h;
    // The randomized algorithm beats the deterministic worst case n.
    EXPECT_LT(worst, static_cast<double>(n)) << "h=" << h;
    // And the lower bound 2(n+1)/3 of Thm 4.8 is below the bound.
    EXPECT_GE(bound, tree_randomized_lower_bound(n));
  }
}

TEST(RProbeTreeTest, AllRedIsCheapForRandomized) {
  // On the all-red input each node agrees with its subtree witnesses, so
  // only plans that pay the extra subtree cost anything: growth is 4/3 + 2/3
  // per level, well below the worst case.
  const TreeSystem tree(6);
  const Coloring all_red(tree.universe_size());
  const double cost = r_probe_tree_expectation(tree, all_red);
  EXPECT_LT(cost, 0.55 * static_cast<double>(tree.universe_size()));
}

}  // namespace
}  // namespace qps
