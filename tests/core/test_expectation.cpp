// Cross-checks among the three ways of computing expected probes: exact
// per-coloring evaluators, closed forms, and Monte Carlo.
#include "core/expectation.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_maj.h"
#include "core/estimator.h"
#include "core/formulas.h"

namespace qps {
namespace {

TEST(Expectation, RProbeMajMatchesUrn) {
  const MajoritySystem maj(7);
  for (std::size_t reds = 0; reds <= 7; ++reds) {
    ElementSet greens = ElementSet::full(7);
    for (Element e = 0; e < reds; ++e) greens.erase(e);
    const Coloring c(7, greens);
    EXPECT_NEAR(r_probe_maj_expectation(maj, c),
                r_probe_maj_expected(7, reds).to_double(), 1e-12)
        << "reds=" << reds;
  }
}

TEST(Expectation, RProbeCwSumsLemma29PerRow) {
  const CrumblingWall wall({1, 2, 3});
  // Greens {0, 1, 3}: bottom row {3,4,5} has 1 green/2 red ->
  // 1 + 2/2 + 1/3 = 7/3; row {1,2} has 1 green/1 red -> 1 + 1/2 + 1/2 = 2;
  // row {0} monochromatic green -> 1.  Total 7/3 + 2 + 1 = 16/3.
  const Coloring c(6, ElementSet(6, {0, 1, 3}));
  EXPECT_NEAR(r_probe_cw_expectation(wall, c), 16.0 / 3.0, 1e-12);
}

TEST(Expectation, RProbeCwStopsAtMonochromaticRow) {
  const CrumblingWall wall({1, 2, 3});
  // Bottom row all red: cost is exactly 3.
  const Coloring c(6, ElementSet(6, {0, 1, 2}));
  EXPECT_DOUBLE_EQ(r_probe_cw_expectation(wall, c), 3.0);
}

TEST(Expectation, RProbeTreeLeafIsOne) {
  const TreeSystem tree(0);
  EXPECT_DOUBLE_EQ(r_probe_tree_expectation(tree, Coloring(1)), 1.0);
}

TEST(Expectation, RProbeTreeHeight1ByHand) {
  // Tree {root 0, leaves 1, 2}, all green.  Subtree witnesses are green;
  // root green.  plan_right = 1 + 1 = 2; plan_left = 2; plan_both =
  // 1 + 1 + 0 = 2.  Expectation 2.
  const TreeSystem tree(1);
  const Coloring all_green(3, ElementSet::full(3));
  EXPECT_DOUBLE_EQ(r_probe_tree_expectation(tree, all_green), 2.0);
  // Root red, leaves green: witnesses green, root red.
  // plan_right: 1 + 1 + (green != red -> pay left) + 1 = 3; same left;
  // plan_both: 1 + 1 + (agree -> skip root) = 2.  Mean = 8/3.
  const Coloring root_red(3, ElementSet(3, {1, 2}));
  EXPECT_NEAR(r_probe_tree_expectation(tree, root_red), 8.0 / 3.0, 1e-12);
}

TEST(Expectation, RProbeHqsLeafIsOne) {
  const HQSystem hqs(0);
  EXPECT_DOUBLE_EQ(r_probe_hqs_expectation(hqs, Coloring(1)), 1.0);
}

TEST(Expectation, RProbeHqsHeight1ByHand) {
  const HQSystem hqs(1);
  // All green: any pair agrees -> always 2 probes.
  EXPECT_DOUBLE_EQ(
      r_probe_hqs_expectation(hqs, Coloring(3, ElementSet::full(3))), 2.0);
  // Two green one red: pairs (g,g) -> 2, (g,r) -> 3, (g,r) -> 3: mean 8/3.
  EXPECT_NEAR(
      r_probe_hqs_expectation(hqs, Coloring(3, ElementSet(3, {0, 1}))),
      8.0 / 3.0, 1e-12);
}

TEST(Expectation, IrEqualsPlainRandomAtHeight1) {
  // IR's special logic only exists for height >= 2.
  const HQSystem hqs(1);
  for (std::uint64_t mask = 0; mask < 8; ++mask) {
    const Coloring c(3, ElementSet::from_mask(3, mask));
    EXPECT_NEAR(ir_probe_hqs_expectation(hqs, c),
                r_probe_hqs_expectation(hqs, c), 1e-12);
  }
}

TEST(Expectation, IrNeverWorseThanPlainByMuchOnAnyHeight2Input) {
  // Exhaustively compare IR vs plain random evaluation on all 512 inputs
  // of the height-2 HQS; the peek can cost at most the peeked grandchild.
  const HQSystem hqs(2);
  double max_ratio = 0;
  for (std::uint64_t mask = 0; mask < 512; ++mask) {
    const Coloring c(9, ElementSet::from_mask(9, mask));
    const double ir = ir_probe_hqs_expectation(hqs, c);
    const double plain = r_probe_hqs_expectation(hqs, c);
    max_ratio = std::max(max_ratio, ir / plain);
  }
  EXPECT_LT(max_ratio, 1.25);
  // On the worst input the ordering flips in IR's favor (Thm 4.10).
  const Coloring worst = hqs_worst_case_coloring(hqs, Color::kGreen);
  EXPECT_LT(ir_probe_hqs_expectation(hqs, worst),
            r_probe_hqs_expectation(hqs, worst));
}

TEST(Expectation, EvaluatorsRejectWrongUniverse) {
  const TreeSystem tree(1);
  EXPECT_THROW(r_probe_tree_expectation(tree, Coloring(5)),
               std::invalid_argument);
  const HQSystem hqs(1);
  EXPECT_THROW(ir_probe_hqs_expectation(hqs, Coloring(5)),
               std::invalid_argument);
}

}  // namespace
}  // namespace qps
