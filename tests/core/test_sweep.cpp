// Sweep subsystem tests: spec expansion and seed derivation, wire/journal
// round-trips, worker-count invariance, crashed-worker recovery, and
// checkpoint/resume.
//
// The sharded tests re-exec this binary as the worker process (the same
// trick the bench harnesses use with --worker): main() below intercepts
// --sweep-test-worker MODE before GoogleTest sees argv and enters
// SweepRunner::serve() on the protocol fds.
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "core/sweep/checkpoint.h"
#include "core/sweep/sweep_report.h"
#include "core/sweep/sweep_runner.h"
#include "core/sweep/sweep_spec.h"
#include "core/sweep/wire.h"
#include "util/rng.h"

namespace qps::sweep {
namespace {

/// The grid the parent tests and the re-exec'ed workers must agree on.
SweepSpec make_grid_spec() {
  SweepSpec spec("sweep_test_grid", 77);
  spec.add_block("alpha", {3, 5}, {"R", "IR"});
  spec.add_block("beta", {10});
  spec.set_ps({0.25, 0.5});
  return spec;
}

/// Deterministic pure function of the point: what every process computes.
RunningStats eval_point(const SweepPoint& point) {
  Rng rng = Rng::for_stream(point.seed, 999);
  RunningStats stats;
  for (int i = 0; i < 257; ++i)
    stats.add(rng.uniform01() * (1.0 + point.p) +
              static_cast<double>(point.size));
  return stats;
}

std::vector<std::string> self_worker_command(const std::string& mode) {
  return {"/proc/self/exe", "--sweep-test-worker", mode};
}

std::string temp_path(const std::string& name) {
  return testing::TempDir() + "qps_sweep_" + std::to_string(::getpid()) +
         "_" + name;
}

void expect_same_results(const std::vector<PointResult>& a,
                         const std::vector<PointResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].point.id, b[i].point.id);
    EXPECT_EQ(a[i].stats.count(), b[i].stats.count()) << a[i].point.id;
    EXPECT_EQ(a[i].stats.mean(), b[i].stats.mean()) << a[i].point.id;
    EXPECT_EQ(a[i].stats.sum_squared_deviations(),
              b[i].stats.sum_squared_deviations())
        << a[i].point.id;
    EXPECT_EQ(a[i].stats.min(), b[i].stats.min()) << a[i].point.id;
    EXPECT_EQ(a[i].stats.max(), b[i].stats.max()) << a[i].point.id;
  }
}

TEST(SweepSpec, ExpandsBlocksTimesStrategiesTimesPs) {
  const auto points = make_grid_spec().expand();
  // alpha: 2 sizes x 2 strategies x 2 ps = 8; beta: 1 x 1 x 2 = 2.
  ASSERT_EQ(points.size(), 10u);
  EXPECT_EQ(make_grid_spec().point_count(), 10u);
  for (std::size_t i = 0; i < points.size(); ++i)
    EXPECT_EQ(points[i].index, i);
  EXPECT_EQ(points[0].id, "family=alpha/size=3/strategy=R/p=0.25");
  EXPECT_EQ(points[1].id, "family=alpha/size=3/strategy=R/p=0.5");
  EXPECT_EQ(points[8].id, "family=beta/size=10/p=0.25");
  EXPECT_TRUE(points[8].strategy.empty());
}

TEST(SweepSpec, IdsAreCoordinateDerivedNotPositionDerived) {
  EXPECT_EQ(SweepSpec::point_id("tree", 4, "R", true, 0.5),
            "family=tree/size=4/strategy=R/p=0.5");
  EXPECT_EQ(SweepSpec::point_id("tree", 4, "", false, 0.0),
            "family=tree/size=4");
}

TEST(SweepSpec, SeedsShareThePAxisAndDecorrelateEverythingElse) {
  const auto points = make_grid_spec().expand();
  // Points 0 and 1 differ only in p: common random numbers, same seed.
  EXPECT_EQ(points[0].seed, points[1].seed);
  // Different strategy, size or family: decorrelated.
  EXPECT_NE(points[0].seed, points[2].seed);  // strategy R vs IR
  EXPECT_NE(points[0].seed, points[4].seed);  // size 3 vs 5
  EXPECT_NE(points[0].seed, points[8].seed);  // family alpha vs beta
  // And the derivation is a pure function of (base seed, coordinates).
  EXPECT_EQ(points[0].seed, SweepSpec::derive_seed(77, "alpha", 3, "R"));
  EXPECT_NE(SweepSpec::derive_seed(78, "alpha", 3, "R"), points[0].seed);
}

TEST(SweepSpec, FingerprintCoversIdentityAndConfig) {
  const std::uint64_t base = make_grid_spec().fingerprint();
  EXPECT_EQ(make_grid_spec().fingerprint(), base);

  SweepSpec renamed("sweep_test_grid2", 77);
  renamed.add_block("alpha", {3, 5}, {"R", "IR"});
  EXPECT_NE(renamed.fingerprint(), base);

  SweepSpec reseeded = make_grid_spec();
  EXPECT_NE(SweepSpec("sweep_test_grid", 78).fingerprint(), base);

  SweepSpec tagged = make_grid_spec();
  tagged.set_config_tag("trials=1000");
  EXPECT_NE(tagged.fingerprint(), base);
}

TEST(SweepWire, ResultLinesRoundTripExactly) {
  const auto points = make_grid_spec().expand();
  const RunningStats stats = eval_point(points[3]);
  const std::string line =
      encode_result("sweep_test_grid", 0xabcdef, points[3], stats);
  const auto decoded = decode_result(line);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->sweep, "sweep_test_grid");
  EXPECT_EQ(decoded->fingerprint, 0xabcdefu);
  EXPECT_EQ(decoded->index, 3u);
  EXPECT_EQ(decoded->id, points[3].id);
  EXPECT_EQ(decoded->stats.count(), stats.count());
  EXPECT_EQ(decoded->stats.mean(), stats.mean());
  EXPECT_EQ(decoded->stats.sum_squared_deviations(),
            stats.sum_squared_deviations());
  EXPECT_EQ(decoded->stats.min(), stats.min());
  EXPECT_EQ(decoded->stats.max(), stats.max());
}

TEST(SweepWire, NonFiniteMomentsSurvive) {
  SweepPoint point;
  point.index = 0;
  point.id = "family=x/size=1";
  const RunningStats stats = RunningStats::from_moments(
      2, std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(), 1.0,
      std::numeric_limits<double>::infinity());
  const auto decoded = decode_result(encode_result("s", 1, point, stats));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(std::isinf(decoded->stats.mean()));
  EXPECT_TRUE(std::isnan(decoded->stats.sum_squared_deviations()));
}

TEST(SweepWire, MalformedAndTruncatedLinesAreRejectedNotFatal) {
  EXPECT_FALSE(decode_result("").has_value());
  EXPECT_FALSE(decode_result("not json").has_value());
  EXPECT_FALSE(decode_result("{\"sweep\": \"s\"}").has_value());
  const auto points = make_grid_spec().expand();
  const std::string line =
      encode_result("s", 1, points[0], eval_point(points[0]));
  EXPECT_FALSE(decode_result(line.substr(0, line.size() / 2)).has_value());
  EXPECT_TRUE(decode_result(line).has_value());

  EXPECT_FALSE(decode_request("{\"nope\": 1}").has_value());
  EXPECT_EQ(decode_request(encode_request(7)).value(), 7u);
}

TEST(SweepRunner, InProcessRunEvaluatesEveryPointInOrder) {
  std::vector<std::string> seen;
  const auto results = SweepRunner(make_grid_spec(), SweepOptions{})
                           .run([&](const SweepPoint& p) {
                             seen.push_back(p.id);
                             return eval_point(p);
                           });
  ASSERT_EQ(results.size(), 10u);
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(seen[i], results[i].point.id);
    EXPECT_FALSE(results[i].from_checkpoint);
    EXPECT_EQ(results[i].stats.mean(), eval_point(results[i].point).mean());
  }
}

TEST(SweepRunner, PointFilterRunsExactlyOneIsolatedPoint) {
  const std::string target = "family=alpha/size=5/strategy=IR/p=0.5";
  SweepOptions options;
  options.point_filter = target;
  std::size_t evaluations = 0;
  const auto results =
      SweepRunner(make_grid_spec(), options).run([&](const SweepPoint& p) {
        ++evaluations;
        return eval_point(p);
      });
  EXPECT_EQ(evaluations, 1u);
  ASSERT_EQ(results.size(), 10u);
  const auto full =
      SweepRunner(make_grid_spec(), SweepOptions{}).run(eval_point);
  for (const auto& result : results) {
    if (result.point.id == target) {
      EXPECT_FALSE(result.skipped);
      // The isolated re-run reproduces the full sweep's value exactly.
      EXPECT_EQ(result.stats.mean(),
                full[result.point.index].stats.mean());
      EXPECT_EQ(result.stats.count(),
                full[result.point.index].stats.count());
    } else {
      EXPECT_TRUE(result.skipped) << result.point.id;
      EXPECT_EQ(result.stats.count(), 0u) << result.point.id;
    }
  }
}

TEST(SweepRunner, PointFilterRejectsUnknownIds) {
  SweepOptions options;
  options.point_filter = "family=nope/size=1/p=0.5";
  EXPECT_THROW(SweepRunner(make_grid_spec(), options).run(eval_point),
               std::invalid_argument);
}

TEST(SweepRunner, FamilyFilterRunsExactlyThatFamilysSlice) {
  SweepOptions options;
  options.family_filter = "beta";
  std::size_t evaluations = 0;
  const auto results =
      SweepRunner(make_grid_spec(), options).run([&](const SweepPoint& p) {
        ++evaluations;
        EXPECT_EQ(p.family, "beta");
        return eval_point(p);
      });
  EXPECT_EQ(evaluations, 2u);  // beta x {0.25, 0.5}
  const auto full =
      SweepRunner(make_grid_spec(), SweepOptions{}).run(eval_point);
  for (const auto& result : results) {
    if (result.point.family == "beta") {
      EXPECT_FALSE(result.skipped);
      EXPECT_EQ(result.stats.mean(), full[result.point.index].stats.mean());
    } else {
      EXPECT_TRUE(result.skipped) << result.point.id;
    }
  }
}

TEST(SweepRunner, SizeFilterConjoinsWithFamilyFilter) {
  SweepOptions options;
  options.family_filter = "alpha";
  options.size_filter = 5;
  std::size_t evaluations = 0;
  const auto results =
      SweepRunner(make_grid_spec(), options).run([&](const SweepPoint& p) {
        ++evaluations;
        EXPECT_EQ(p.family, "alpha");
        EXPECT_EQ(p.size, 5u);
        return eval_point(p);
      });
  EXPECT_EQ(evaluations, 4u);  // alpha x size 5 x {R, IR} x {0.25, 0.5}
  std::size_t selected = 0;
  for (const auto& result : results)
    if (!result.skipped) ++selected;
  EXPECT_EQ(selected, 4u);
}

TEST(SweepRunner, SizeFilterAloneCutsAcrossFamilies) {
  SweepOptions options;
  options.size_filter = 10;
  std::size_t evaluations = 0;
  SweepRunner(make_grid_spec(), options).run([&](const SweepPoint& p) {
    ++evaluations;
    EXPECT_EQ(p.size, 10u);
    return eval_point(p);
  });
  EXPECT_EQ(evaluations, 2u);
}

TEST(SweepRunner, UnmatchedFamilyOrSizeFiltersThrow) {
  SweepOptions family_options;
  family_options.family_filter = "gamma";
  EXPECT_THROW(SweepRunner(make_grid_spec(), family_options).run(eval_point),
               std::invalid_argument);
  SweepOptions size_options;
  size_options.size_filter = 42;
  EXPECT_THROW(SweepRunner(make_grid_spec(), size_options).run(eval_point),
               std::invalid_argument);
  // Individually matching filters whose conjunction is empty also throw.
  SweepOptions conjunction;
  conjunction.family_filter = "beta";
  conjunction.size_filter = 3;
  EXPECT_THROW(SweepRunner(make_grid_spec(), conjunction).run(eval_point),
               std::invalid_argument);
}

TEST(SweepRunner, WorkerCountsZeroOneAndFourAgreeBitForBit) {
  const auto baseline =
      SweepRunner(make_grid_spec(), SweepOptions{}).run(eval_point);
  for (const std::size_t workers : {1u, 4u}) {
    SweepOptions options;
    options.workers = workers;
    options.worker_command = self_worker_command("grid");
    const auto sharded =
        SweepRunner(make_grid_spec(), options).run(eval_point);
    expect_same_results(baseline, sharded);
  }
}

TEST(SweepRunner, CrashedWorkerForfeitsOnlyItsInFlightPoint) {
  // "crash" workers _exit(9) on point index 2: the first worker to draw it
  // dies, the point is re-queued, kills the second worker too, and the
  // runner finishes the remainder in-process.  The aggregated results must
  // be indistinguishable from a healthy run.
  const auto baseline =
      SweepRunner(make_grid_spec(), SweepOptions{}).run(eval_point);
  SweepOptions options;
  options.workers = 2;
  options.worker_command = self_worker_command("crash");
  const auto recovered = SweepRunner(make_grid_spec(), options).run(eval_point);
  expect_same_results(baseline, recovered);
}

TEST(SweepRunner, ForeignWorkersAreContainedByTheFingerprintCheck) {
  // Workers serving a spec with a different config tag answer with a
  // mismatched fingerprint; the runner must drop them and fall back.
  SweepSpec tagged = make_grid_spec();
  tagged.set_config_tag("different-context");
  SweepOptions options;
  options.workers = 2;
  options.worker_command = self_worker_command("grid");
  const auto results = SweepRunner(tagged, options).run(eval_point);
  const auto baseline =
      SweepRunner(make_grid_spec(), SweepOptions{}).run(eval_point);
  expect_same_results(baseline, results);
}

TEST(SweepCheckpoint, ResumeSkipsJournaledPointsExactly) {
  const std::string path = temp_path("resume.jsonl");
  std::remove(path.c_str());

  std::atomic<int> calls{0};
  const auto counting_eval = [&](const SweepPoint& p) {
    ++calls;
    return eval_point(p);
  };

  SweepOptions first;
  first.checkpoint_path = path;
  const auto full = SweepRunner(make_grid_spec(), first).run(counting_eval);
  EXPECT_EQ(calls.load(), 10);

  // Truncate the journal to the epoch record plus the first four result
  // lines: an interrupted run.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 11u);  // 1 epoch record + 10 results
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 5; ++i) out << lines[i] << "\n";
  }

  calls = 0;
  SweepOptions second;
  second.checkpoint_path = path;
  second.resume = true;
  const auto resumed = SweepRunner(make_grid_spec(), second).run(counting_eval);
  EXPECT_EQ(calls.load(), 6);  // only the six non-journaled points
  expect_same_results(full, resumed);
  for (std::size_t i = 0; i < resumed.size(); ++i)
    EXPECT_EQ(resumed[i].from_checkpoint, i < 4) << i;

  // A second resume re-runs nothing at all.
  calls = 0;
  const auto third = SweepRunner(make_grid_spec(), second).run(counting_eval);
  EXPECT_EQ(calls.load(), 0);
  expect_same_results(full, third);
  std::remove(path.c_str());
}

TEST(SweepCheckpoint, MismatchedFingerprintsAndGarbageLinesAreIgnored) {
  const std::string path = temp_path("mismatch.jsonl");
  std::remove(path.c_str());
  {
    SweepOptions options;
    options.checkpoint_path = path;
    SweepRunner(make_grid_spec(), options).run(eval_point);
  }
  // Append garbage and a truncated line, as a SIGKILL mid-write would.
  {
    std::ofstream out(path, std::ios::app);
    out << "not json at all\n{\"sweep\": \"sweep_test_grid\", \"fp\"";
  }
  // Same journal, different config: nothing may be revived.
  SweepSpec tagged = make_grid_spec();
  tagged.set_config_tag("other-budget");
  std::atomic<int> calls{0};
  SweepOptions resume_options;
  resume_options.checkpoint_path = path;
  resume_options.resume = true;
  SweepRunner(tagged, resume_options).run([&](const SweepPoint& p) {
    ++calls;
    return eval_point(p);
  });
  EXPECT_EQ(calls.load(), 10);

  // Matching spec: all ten revived despite the garbage suffix.
  calls = 0;
  SweepRunner(make_grid_spec(), resume_options).run([&](const SweepPoint& p) {
    ++calls;
    return eval_point(p);
  });
  EXPECT_EQ(calls.load(), 0);
  std::remove(path.c_str());
}

TEST(SweepReport, RendersInPointOrderAndFindsById) {
  const auto results =
      SweepRunner(make_grid_spec(), SweepOptions{}).run(eval_point);
  const SweepReport report("sweep_test_grid", results);
  EXPECT_EQ(report.checkpointed_count(), 0u);
  const auto* found = report.find("family=beta/size=10/p=0.5");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->point.index, 9u);
  EXPECT_EQ(report.find("family=nope/size=1"), nullptr);

  std::ostringstream json;
  report.write_json(json);
  std::ostringstream table;
  report.print(table);
  // Both renderings list every point, in order.
  std::size_t last = 0;
  for (const auto& result : results) {
    const std::size_t at = json.str().find("\"" + result.point.id + "\"");
    ASSERT_NE(at, std::string::npos) << result.point.id;
    EXPECT_GE(at, last);
    last = at;
    EXPECT_NE(table.str().find(result.point.id), std::string::npos);
  }
}

}  // namespace

/// Worker-mode entry, reached from main() below in re-exec'ed copies of
/// this binary.
int run_test_worker(const std::string& mode) {
  const SweepSpec spec = make_grid_spec();
  if (mode == "grid") return SweepRunner::serve(spec, eval_point, 0, 3);
  if (mode == "crash") {
    return SweepRunner::serve(
        spec,
        [](const SweepPoint& point) {
          if (point.index == 2) ::_exit(9);
          return eval_point(point);
        },
        0, 3);
  }
  return 2;
}

}  // namespace qps::sweep

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--sweep-test-worker")
    return qps::sweep::run_test_worker(argv[2]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
