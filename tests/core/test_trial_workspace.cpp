#include "core/engine/trial_workspace.h"

#include <gtest/gtest.h>

#include "core/algorithms/greedy.h"
#include "core/algorithms/probe_maj.h"
#include "core/coloring.h"
#include "quorum/majority.h"
#include "util/rng.h"

namespace qps {
namespace {

TEST(TrialWorkspace, BeginTrialResetsAllProbeState) {
  TrialWorkspace ws(5);
  ws.coloring().assign_greens_mask(0b00111);
  ProbeSession& session = ws.begin_trial(ws.coloring());
  session.probe(0);
  session.probe(3);
  EXPECT_EQ(session.probe_count(), 2u);
  EXPECT_TRUE(session.was_probed(3));
  EXPECT_EQ(session.probed_greens().count(), 1u);
  EXPECT_EQ(session.probed_reds().count(), 1u);

  // A new trial starts blank, bound to the refilled coloring.
  ws.coloring().assign_greens_mask(0b11000);
  ProbeSession& again = ws.begin_trial(ws.coloring());
  EXPECT_EQ(&again, &session);  // same buffers, reused
  EXPECT_EQ(again.probe_count(), 0u);
  EXPECT_FALSE(again.was_probed(0));
  EXPECT_FALSE(again.was_probed(3));
  EXPECT_TRUE(again.probed_greens().empty());
  EXPECT_TRUE(again.probed_reds().empty());
  EXPECT_EQ(again.probe(4), Color::kGreen);
  EXPECT_EQ(again.probe(0), Color::kRed);
}

TEST(TrialWorkspace, SessionRejectsWrongUniverse) {
  TrialWorkspace ws(5);
  const Coloring other(6);
  EXPECT_THROW(ws.begin_trial(other), std::invalid_argument);
}

TEST(TrialWorkspace, NoStateLeaksBetweenTrials) {
  // Reusing one workspace across many trials must give exactly the results
  // of a fresh session per trial, coloring by coloring.
  const MajoritySystem maj(21);
  const ProbeMaj det(maj);
  const RProbeMaj randomized(maj);
  TrialWorkspace ws(21);
  Rng sample_rng(7);
  Rng reused_rng(99), fresh_rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Coloring coloring = sample_iid_coloring(21, 0.4, sample_rng);
    for (const ProbeStrategy* strategy :
         {static_cast<const ProbeStrategy*>(&det),
          static_cast<const ProbeStrategy*>(&randomized)}) {
      ProbeSession& reused = ws.begin_trial(coloring);
      const Witness w_reused = strategy->run_with(ws, reused, reused_rng);
      const std::size_t reused_count = reused.probe_count();

      ProbeSession fresh(coloring);
      TrialWorkspace fresh_ws(21);
      const Witness w_fresh =
          strategy->run_with(fresh_ws, fresh, fresh_rng);
      ASSERT_EQ(reused_count, fresh.probe_count()) << "trial " << trial;
      ASSERT_EQ(w_reused.color, w_fresh.color) << "trial " << trial;
      ASSERT_EQ(w_reused.elements, w_fresh.elements) << "trial " << trial;
    }
  }
}

TEST(TrialWorkspace, WordBuffersAreIndependent) {
  TrialWorkspace ws(10);
  ws.word_buffer(0).assign(3, 1);
  ws.word_buffer(1).assign(2, 2);
  EXPECT_EQ(ws.word_buffer(0).size(), 3u);
  EXPECT_EQ(ws.word_buffer(1).size(), 2u);
  EXPECT_EQ(ws.word_buffer(0)[0], 1u);
  EXPECT_EQ(ws.word_buffer(1)[0], 2u);
  EXPECT_THROW(ws.word_buffer(TrialWorkspace::kWordBufferCount),
               std::out_of_range);
}

TEST(TrialWorkspace, ColoringMasksGrowAndPersist) {
  TrialWorkspace ws(8);
  std::uint64_t* masks = ws.coloring_masks(16);
  for (int i = 0; i < 16; ++i) masks[i] = static_cast<std::uint64_t>(i);
  // A smaller request must not shrink or move the buffer.
  std::uint64_t* again = ws.coloring_masks(8);
  EXPECT_EQ(again, masks);
  EXPECT_EQ(again[7], 7u);
}

TEST(TrialWorkspace, GreedyUsesWorkspaceBuffersCorrectly) {
  const MajoritySystem maj(5);
  const GreedyCandidateProbe greedy(maj);
  TrialWorkspace ws(5);
  Rng rng(1);
  // Greens {0,1,2} form a quorum; greedy must certify green in 3 probes
  // whichever buffers it runs on -- and again after buffer reuse.
  const Coloring coloring(5, ElementSet(5, {0, 1, 2}));
  for (int repeat = 0; repeat < 3; ++repeat) {
    ProbeSession& session = ws.begin_trial(coloring);
    const Witness w = greedy.run_with(ws, session, rng);
    EXPECT_EQ(w.color, Color::kGreen);
    EXPECT_EQ(session.probe_count(), 3u);
  }
}

}  // namespace
}  // namespace qps
