// Bit-identity of the zero-allocation hot path against the generic path.
//
// Two layers of guarantees:
//  * Strategy layer: for every strategy x family, run() (legacy,
//    self-allocating) and run_with() (workspace-backed) must return the
//    same witness at the same probe cost for equal generator states, on
//    any coloring.
//  * Engine layer: estimate_ppc / expected_probes_on on the hot path must
//    be bit-identical across thread counts, and with the kPerElement
//    sampler bit-identical to the generic run() path (same colorings, same
//    interleaving, same stats).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms/greedy.h"
#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_maj.h"
#include "core/algorithms/probe_tree.h"
#include "core/algorithms/random_order.h"
#include "core/engine/trial_workspace.h"
#include "core/estimator.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

struct Case {
  std::string label;
  std::shared_ptr<const QuorumSystem> system;
  std::shared_ptr<const ProbeStrategy> strategy;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  const auto add = [&](std::string label,
                       std::shared_ptr<const QuorumSystem> system,
                       std::shared_ptr<const ProbeStrategy> strategy) {
    cases.push_back({std::move(label), std::move(system), std::move(strategy)});
  };

  auto maj21 = std::make_shared<MajoritySystem>(21);
  add("Probe_Maj/Maj21", maj21, std::make_shared<ProbeMaj>(*maj21));
  add("R_Probe_Maj/Maj21", maj21, std::make_shared<RProbeMaj>(*maj21));
  add("Random_Order/Maj21", maj21, std::make_shared<RandomOrderProbe>(*maj21));

  auto maj63 = std::make_shared<MajoritySystem>(63);
  add("Probe_Maj/Maj63", maj63, std::make_shared<ProbeMaj>(*maj63));
  add("R_Probe_Maj/Maj63", maj63, std::make_shared<RProbeMaj>(*maj63));

  auto maj7 = std::make_shared<MajoritySystem>(7);
  add("Greedy/Maj7", maj7, std::make_shared<GreedyCandidateProbe>(*maj7));

  auto tree2 = std::make_shared<TreeSystem>(2);  // n = 7
  add("Probe_Tree/Tree2", tree2, std::make_shared<ProbeTree>(*tree2));
  add("R_Probe_Tree/Tree2", tree2, std::make_shared<RProbeTree>(*tree2));
  add("Random_Order/Tree2", tree2,
      std::make_shared<RandomOrderProbe>(*tree2));
  add("Greedy/Tree2", tree2, std::make_shared<GreedyCandidateProbe>(*tree2));

  auto tree5 = std::make_shared<TreeSystem>(5);  // n = 63
  add("Probe_Tree/Tree5", tree5, std::make_shared<ProbeTree>(*tree5));
  add("R_Probe_Tree/Tree5", tree5, std::make_shared<RProbeTree>(*tree5));

  auto hqs2 = std::make_shared<HQSystem>(2);  // n = 9
  add("Probe_HQS/Hqs2", hqs2, std::make_shared<ProbeHQS>(*hqs2));
  add("R_Probe_HQS/Hqs2", hqs2, std::make_shared<RProbeHQS>(*hqs2));
  add("IR_Probe_HQS/Hqs2", hqs2, std::make_shared<IRProbeHQS>(*hqs2));

  auto hqs3 = std::make_shared<HQSystem>(3);  // n = 27
  add("Probe_HQS/Hqs3", hqs3, std::make_shared<ProbeHQS>(*hqs3));
  add("R_Probe_HQS/Hqs3", hqs3, std::make_shared<RProbeHQS>(*hqs3));
  add("IR_Probe_HQS/Hqs3", hqs3, std::make_shared<IRProbeHQS>(*hqs3));

  auto cw4 = std::make_shared<CrumblingWall>(CrumblingWall::triang(4));
  add("Probe_CW/Triang4", cw4, std::make_shared<ProbeCW>(*cw4));
  add("R_Probe_CW/Triang4", cw4, std::make_shared<RProbeCW>(*cw4));

  auto cw10 = std::make_shared<CrumblingWall>(CrumblingWall::triang(10));
  add("Probe_CW/Triang10", cw10, std::make_shared<ProbeCW>(*cw10));
  add("R_Probe_CW/Triang10", cw10, std::make_shared<RProbeCW>(*cw10));
  return cases;
}

TEST(HotPathIdentity, RunAndRunWithAgreeOnEveryStrategyAndFamily) {
  for (const Case& c : all_cases()) {
    const std::size_t n = c.system->universe_size();
    TrialWorkspace ws(n);
    Rng sample_rng(20010826);
    for (int trial = 0; trial < 100; ++trial) {
      const double p = 0.2 + 0.2 * static_cast<double>(trial % 4);
      const Coloring coloring = sample_iid_coloring(n, p, sample_rng);
      Rng legacy_rng(1000 + trial), hot_rng(1000 + trial);

      ProbeSession legacy_session(coloring);
      const Witness legacy = c.strategy->run(legacy_session, legacy_rng);

      ProbeSession& hot_session = ws.begin_trial(coloring);
      const Witness hot = c.strategy->run_with(ws, hot_session, hot_rng);

      ASSERT_EQ(legacy_session.probe_count(), hot_session.probe_count())
          << c.label << " trial " << trial;
      ASSERT_EQ(legacy.color, hot.color) << c.label << " trial " << trial;
      ASSERT_EQ(legacy.elements, hot.elements)
          << c.label << " trial " << trial;
      ASSERT_EQ(legacy_session.probed(), hot_session.probed())
          << c.label << " trial " << trial;
      // Both entry points must also have consumed the same randomness.
      ASSERT_EQ(legacy_rng.next_u64(), hot_rng.next_u64())
          << c.label << " trial " << trial;
    }
  }
}

EngineOptions engine_options(std::size_t threads) {
  EngineOptions options;
  options.trials = 6000;
  options.threads = threads;
  options.batch_size = 512;
  options.seed = 42;
  return options;
}

TEST(HotPathIdentity, PerElementSamplerMatchesGenericEnginePath) {
  // The generic path through the public run() API is exactly the pre-
  // workspace engine trial; with the kPerElement sampler the hot path must
  // reproduce it bit for bit, for deterministic and randomized strategies.
  const MajoritySystem maj(21);
  const ProbeMaj det(maj);
  const RProbeMaj randomized(maj);
  for (const ProbeStrategy* strategy :
       {static_cast<const ProbeStrategy*>(&det),
        static_cast<const ProbeStrategy*>(&randomized)}) {
    for (std::size_t threads : {1u, 4u}) {
      auto options = engine_options(threads);
      const ParallelEstimator engine(options);
      const RunningStats generic = engine.run([&](Rng& rng) {
        const Coloring coloring = sample_iid_coloring(21, 0.4, rng);
        return run_probe_trial(maj, *strategy, coloring, false, rng);
      });
      options.sampler = ColoringSampler::kPerElement;
      const RunningStats hot =
          ParallelEstimator(options).estimate_ppc(maj, *strategy, 0.4);
      EXPECT_EQ(generic.count(), hot.count()) << threads;
      EXPECT_EQ(generic.mean(), hot.mean()) << threads;
      EXPECT_EQ(generic.variance(), hot.variance()) << threads;
      EXPECT_EQ(generic.min(), hot.min()) << threads;
      EXPECT_EQ(generic.max(), hot.max()) << threads;
    }
  }
}

TEST(HotPathIdentity, ExpectedProbesOnMatchesGenericEnginePath) {
  const MajoritySystem maj(15);
  const RandomOrderProbe strategy(maj);
  Rng sample_rng(5);
  const Coloring coloring = sample_iid_coloring(15, 0.5, sample_rng);
  const auto options = engine_options(3);
  const ParallelEstimator engine(options);
  const RunningStats generic = engine.run([&](Rng& rng) {
    return run_probe_trial(maj, strategy, coloring, false, rng);
  });
  const RunningStats hot = engine.expected_probes_on(maj, strategy, coloring);
  EXPECT_EQ(generic.count(), hot.count());
  EXPECT_EQ(generic.mean(), hot.mean());
  EXPECT_EQ(generic.variance(), hot.variance());
}

TEST(HotPathIdentity, WordBatchSamplerIsThreadCountInvariant) {
  // The default estimate_ppc path (batched word sampling + workspaces).
  const TreeSystem tree(3);  // n = 15
  const RProbeTree strategy(tree);
  const auto baseline =
      ParallelEstimator(engine_options(1)).estimate_ppc(tree, strategy, 0.3);
  for (std::size_t threads : {2u, 4u, 8u}) {
    const auto stats = ParallelEstimator(engine_options(threads))
                           .estimate_ppc(tree, strategy, 0.3);
    EXPECT_EQ(stats.count(), baseline.count()) << threads;
    EXPECT_EQ(stats.mean(), baseline.mean()) << threads;
    EXPECT_EQ(stats.variance(), baseline.variance()) << threads;
    EXPECT_EQ(stats.min(), baseline.min()) << threads;
    EXPECT_EQ(stats.max(), baseline.max()) << threads;
  }
}

TEST(HotPathIdentity, ValidationStillCatchesBadWitnessesOnTheHotPath) {
  class Broken final : public ProbeStrategy {
   public:
    std::string name() const override { return "Broken"; }
    Witness run(ProbeSession& session, Rng&) const override {
      session.probe(0);
      Witness w;
      w.color = Color::kGreen;
      w.elements = ElementSet(session.universe_size());
      w.elements.insert(0);
      return w;
    }
  };
  const MajoritySystem maj(5);
  const Broken broken;
  auto options = engine_options(2);
  options.validate_witnesses = true;
  EXPECT_THROW(ParallelEstimator(options).estimate_ppc(maj, broken, 0.5),
               std::logic_error);
}

}  // namespace
}  // namespace qps
