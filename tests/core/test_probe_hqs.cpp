// Probe_HQS (Thms 3.8, 3.9), R_Probe_HQS (Prop. 4.9), IR_Probe_HQS
// (Thm 4.10, Fig. 9).
#include "core/algorithms/probe_hqs.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "core/expectation.h"
#include "core/formulas.h"

namespace qps {
namespace {

TEST(ProbeHqsTest, SingleLeaf) {
  const HQSystem hqs(0);
  const ProbeHQS strategy(hqs);
  Rng rng(1);
  const Coloring c(1, ElementSet(1, {0}));
  ProbeSession s(c);
  const Witness w = strategy.run(s, rng);
  EXPECT_EQ(w.color, Color::kGreen);
  EXPECT_EQ(s.probe_count(), 1u);
}

TEST(ProbeHqsTest, AllGreenProbesQuorumSize) {
  // With all leaves green, every gate resolves after its first two
  // children: exactly 2^h probes (one quorum).
  for (std::size_t h : {1u, 2u, 3u, 4u}) {
    const HQSystem hqs(h);
    const ProbeHQS strategy(hqs);
    Rng rng(1);
    const Coloring c(hqs.universe_size(),
                     ElementSet::full(hqs.universe_size()));
    ProbeSession s(c);
    const Witness w = strategy.run(s, rng);
    EXPECT_EQ(w.color, Color::kGreen);
    EXPECT_EQ(s.probe_count(), hqs.quorum_size());
    EXPECT_EQ(w.elements.count(), hqs.quorum_size());
  }
}

TEST(ProbeHqsTest, AverageIsExactly2Point5PerLevelAtHalf) {
  // Thm 3.8: at p = 1/2 the expected cost is exactly (5/2)^h.
  Rng rng(17);
  EstimatorOptions options;
  options.trials = 60000;
  for (std::size_t h : {2u, 4u}) {
    const HQSystem hqs(h);
    const ProbeHQS strategy(hqs);
    const auto stats = estimate_ppc(hqs, strategy, 0.5, options, rng);
    const double exact = std::pow(2.5, static_cast<double>(h));
    EXPECT_DOUBLE_EQ(probe_hqs_expected(h, 0.5), exact);
    EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth()) << "h=" << h;
  }
}

TEST(ProbeHqsTest, AverageMatchesRecursionAtOtherP) {
  Rng rng(19);
  EstimatorOptions options;
  options.trials = 60000;
  for (double p : {0.2, 0.35}) {
    const HQSystem hqs(4);
    const ProbeHQS strategy(hqs);
    const auto stats = estimate_ppc(hqs, strategy, p, options, rng);
    EXPECT_NEAR(stats.mean(), probe_hqs_expected(4, p),
                4 * stats.ci95_halfwidth())
        << "p=" << p;
  }
}

TEST(ProbeHqsTest, LowPGrowthIsTwoPerLevel) {
  // Thm 3.8 for p < 1/2: T(h) = O(n^{log_3 2}), i.e. per-level factor -> 2.
  const double t11 = probe_hqs_expected(11, 0.25);
  const double t12 = probe_hqs_expected(12, 0.25);
  EXPECT_NEAR(t12 / t11, 2.0, 0.02);
}

TEST(ProbeHqsTest, ExponentAtHalfIs0834) {
  // (5/2)^h = n^{log_3 2.5} = n^0.834.
  EXPECT_NEAR(hqs_ppc_exponent(), 0.8340, 0.0001);
  const std::size_t h = 8;
  const double n = std::pow(3.0, static_cast<double>(h));
  EXPECT_NEAR(std::log(probe_hqs_expected(h, 0.5)) / std::log(n),
              hqs_ppc_exponent(), 1e-9);
}

TEST(RProbeHqsTest, ExpectationEvaluatorMatchesMonteCarlo) {
  const HQSystem hqs(2);
  const RProbeHQS strategy(hqs);
  Rng rng(23);
  EstimatorOptions options;
  options.trials = 60000;
  for (std::uint64_t mask : {0ULL, 0x1FFULL, 0x155ULL, 0x0F3ULL}) {
    const Coloring c(9, ElementSet::from_mask(9, mask));
    const auto stats = expected_probes_on(hqs, strategy, c, options, rng);
    const double exact = r_probe_hqs_expectation(hqs, c);
    EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth())
        << "mask=" << mask;
  }
}

TEST(RProbeHqsTest, WorstCaseFamilyPGives8ThirdsPerLevel) {
  // On the family P of Lemma 4.11, every gate sees children {b, b, !b},
  // so E(h) = (8/3)^h exactly.
  for (std::size_t h : {1u, 2u, 3u, 4u}) {
    const HQSystem hqs(h);
    const Coloring worst = hqs_worst_case_coloring(hqs, Color::kGreen);
    EXPECT_NEAR(r_probe_hqs_expectation(hqs, worst),
                std::pow(8.0 / 3.0, static_cast<double>(h)), 1e-9)
        << "h=" << h;
  }
}

TEST(RProbeHqsTest, FamilyPIsTheWorstInput) {
  // Exhaustive over all colorings of the height-2 HQS: no input costs
  // R_Probe_HQS more than the family-P value (8/3)^2.
  const HQSystem hqs(2);
  const double p_value = std::pow(8.0 / 3.0, 2.0);
  const std::uint64_t limit = 1ULL << 9;
  double worst = 0;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const Coloring c(9, ElementSet::from_mask(9, mask));
    worst = std::max(worst, r_probe_hqs_expectation(hqs, c));
  }
  EXPECT_NEAR(worst, p_value, 1e-9);
}

TEST(IrProbeHqsTest, ExpectationEvaluatorMatchesMonteCarlo) {
  const HQSystem hqs(2);
  const IRProbeHQS strategy(hqs);
  Rng rng(29);
  EstimatorOptions options;
  options.trials = 100000;
  for (std::uint64_t mask : {0x1FFULL, 0x155ULL, 0x0F3ULL}) {
    const Coloring c(9, ElementSet::from_mask(9, mask));
    const auto stats = expected_probes_on(hqs, strategy, c, options, rng);
    const double exact = ir_probe_hqs_expectation(hqs, c);
    // The tolerance floor covers zero-variance inputs (deterministic cost).
    EXPECT_NEAR(stats.mean(), exact,
                std::max(5 * stats.ci95_halfwidth(), 1e-9))
        << "mask=" << mask;
  }
}

TEST(IrProbeHqsTest, Figure9TwoLevelConstant) {
  // The expected number of height-(h-2) evaluations on the worst-case
  // family P; at h = 2 grandchildren are leaves, so it equals the expected
  // probe count.  Fig. 8 semantics give exactly 191/27 ~ 7.074 (the
  // paper's Fig. 9 prints 189.5/27; see EXPERIMENTS.md for the one-branch
  // discrepancy).
  const HQSystem hqs(2);
  const Coloring worst = hqs_worst_case_coloring(hqs, Color::kGreen);
  EXPECT_NEAR(ir_probe_hqs_expectation(hqs, worst),
              ir_probe_hqs_level_constant().to_double(), 1e-9);
}

TEST(IrProbeHqsTest, BeatsRProbeHqsOnWorstCase) {
  // Thm 4.10's point: the grandchild peek strictly improves on plain
  // random 2-of-3 evaluation on the hard family.
  for (std::size_t h : {2u, 4u, 6u}) {
    const HQSystem hqs(h);
    const Coloring worst = hqs_worst_case_coloring(hqs, Color::kGreen);
    const double ir = ir_probe_hqs_expectation(hqs, worst);
    const double plain = r_probe_hqs_expectation(hqs, worst);
    EXPECT_LT(ir, plain) << "h=" << h;
  }
}

TEST(IrProbeHqsTest, TwoLevelGrowthMatchesConstantExactly) {
  // On family P every sibling subtree is again P-structured with equal
  // cost, so EI(h) = (191/27) * EI(h-2) exactly: the even-height costs are
  // (191/27)^{h/2} and the ratio between consecutive even heights is the
  // constant itself.
  const double constant = ir_probe_hqs_level_constant().to_double();
  const HQSystem h6(6);
  const Coloring w6 = hqs_worst_case_coloring(h6, Color::kGreen);
  const HQSystem h4(4);
  const Coloring w4 = hqs_worst_case_coloring(h4, Color::kGreen);
  const double e4 = ir_probe_hqs_expectation(h4, w4);
  const double e6 = ir_probe_hqs_expectation(h6, w6);
  EXPECT_NEAR(e6 / e4, constant, 1e-9);
  EXPECT_NEAR(e4, constant * constant, 1e-9);
}

TEST(IrProbeHqsTest, ImpliedExponentBeatsRProbeExponent) {
  // log_9(191/27) ~ 0.890 < log_3(8/3) ~ 0.893 (Thm 4.10's improvement),
  // both above the Cor. 4.13 lower bound log_3(5/2) ~ 0.834.
  EXPECT_LT(hqs_ir_probe_exponent(), hqs_r_probe_exponent());
  EXPECT_GT(hqs_ir_probe_exponent(), hqs_ppc_exponent());
  EXPECT_NEAR(hqs_r_probe_exponent(), 0.8928, 0.0005);
  EXPECT_NEAR(hqs_ir_probe_exponent(), 0.8903, 0.0005);
}

}  // namespace
}  // namespace qps
