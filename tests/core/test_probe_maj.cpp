// Probe_Maj (Prop. 3.2) and R_Probe_Maj (Thm 4.2).
#include "core/algorithms/probe_maj.h"

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/expectation.h"
#include "core/formulas.h"

namespace qps {
namespace {

TEST(ProbeMajTest, StopsAtThresholdOfOneColor) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  Rng rng(1);
  {
    // First three elements green: stops after 3 probes.
    const Coloring c(5, ElementSet(5, {0, 1, 2}));
    ProbeSession s(c);
    const Witness w = strategy.run(s, rng);
    EXPECT_EQ(w.color, Color::kGreen);
    EXPECT_EQ(s.probe_count(), 3u);
  }
  {
    // Alternating colors: needs 5 probes (worst case n).
    const Coloring c(5, ElementSet(5, {0, 2}));
    ProbeSession s(c);
    const Witness w = strategy.run(s, rng);
    EXPECT_EQ(w.color, Color::kRed);
    EXPECT_EQ(s.probe_count(), 5u);
  }
}

TEST(ProbeMajTest, SingletonUniverse) {
  const MajoritySystem maj(1);
  const ProbeMaj strategy(maj);
  Rng rng(1);
  const Coloring c(1, ElementSet(1, {0}));
  ProbeSession s(c);
  const Witness w = strategy.run(s, rng);
  EXPECT_EQ(w.color, Color::kGreen);
  EXPECT_EQ(s.probe_count(), 1u);
}

TEST(ProbeMajTest, AverageMatchesGridWalkFormula) {
  // Prop. 3.2: PPC_p(Maj) is the grid-walk absorption time with
  // N = (n+1)/2; Monte Carlo should match the exact DP.
  Rng rng(99);
  EstimatorOptions options;
  options.trials = 60000;
  for (double p : {0.5, 0.3}) {
    const MajoritySystem maj(21);
    const ProbeMaj strategy(maj);
    const auto stats = estimate_ppc(maj, strategy, p, options, rng);
    const double exact = probe_maj_expected(21, p);
    EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth())
        << "p=" << p;
  }
}

TEST(ProbeMajTest, HalfCaseIsNMinusThetaSqrtN) {
  // The deficit n - PPC grows like sqrt(n).
  const double d1 = 101.0 - probe_maj_expected(101, 0.5);
  const double d2 = 401.0 - probe_maj_expected(401, 0.5);
  EXPECT_GT(d1, 0.0);
  EXPECT_NEAR(d2 / d1, 2.0, 0.2);  // sqrt(4) = 2, up to finite-size effects
}

TEST(ProbeMajTest, BiasedCaseIsNOver2Q) {
  // For p < q, PPC_p(Maj) -> n/(2q).
  for (double p : {0.1, 0.3}) {
    const double expected = 401.0 / (2.0 * (1.0 - p));
    EXPECT_NEAR(probe_maj_expected(401, p), expected, 1.5) << "p=" << p;
  }
}

TEST(RProbeMajTest, ExpectedProbesOnFixedColoringMatchesUrnFormula) {
  const MajoritySystem maj(9);
  const RProbeMaj strategy(maj);
  Rng rng(7);
  EstimatorOptions options;
  options.trials = 60000;
  for (std::size_t reds : {0u, 2u, 5u, 7u, 9u}) {
    ElementSet greens = ElementSet::full(9);
    for (Element e = 0; e < reds; ++e) greens.erase(e);
    const Coloring coloring(9, greens);
    const auto stats =
        expected_probes_on(maj, strategy, coloring, options, rng);
    const double exact = r_probe_maj_expectation(maj, coloring);
    EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth())
        << "reds=" << reds;
  }
}

TEST(RProbeMajTest, WorstCaseIsMajorityRedByOne) {
  // Thm 4.2: the maximum of (n+1)(k+1)/(majority+1) over red counts is at
  // r = k+1, value n - (n-1)/(n+3).
  for (std::size_t n : {3u, 5u, 9u, 15u}) {
    const Rational worst = r_probe_maj_worst_case(n);
    for (std::size_t r = 0; r <= n; ++r)
      EXPECT_LE(r_probe_maj_expected(n, r), worst) << "n=" << n << " r=" << r;
    const auto nn = static_cast<std::int64_t>(n);
    EXPECT_EQ(worst, Rational(nn) - Rational(nn - 1, nn + 3));
  }
}

TEST(RProbeMajTest, WitnessIsExactlyThresholdSized) {
  const MajoritySystem maj(7);
  const RProbeMaj strategy(maj);
  Rng rng(3);
  const Coloring c(7, ElementSet(7, {0, 1, 2, 3}));
  for (int t = 0; t < 20; ++t) {
    ProbeSession s(c);
    const Witness w = strategy.run(s, rng);
    EXPECT_EQ(w.elements.count(), 4u);
    EXPECT_EQ(w.color, Color::kGreen);
  }
}

}  // namespace
}  // namespace qps
