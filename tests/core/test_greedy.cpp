// The generic candidate-counting baseline ([4,11]-style heuristic).
#include "core/algorithms/greedy.h"

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/witness.h"
#include "quorum/crumbling_wall.h"
#include "quorum/majority.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(Greedy, FindsGreenQuorumOnAllGreen) {
  const MajoritySystem maj(5);
  const GreedyCandidateProbe greedy(maj);
  Rng rng(1);
  const Coloring c(5, ElementSet::full(5));
  ProbeSession s(c);
  const Witness w = greedy.run(s, rng);
  EXPECT_EQ(w.color, Color::kGreen);
  EXPECT_EQ(s.probe_count(), 3u);  // threshold probes suffice
}

TEST(Greedy, FindsRedTransversalOnAllRed) {
  const MajoritySystem maj(5);
  const GreedyCandidateProbe greedy(maj);
  Rng rng(1);
  const Coloring c(5);
  ProbeSession s(c);
  const Witness w = greedy.run(s, rng);
  EXPECT_EQ(w.color, Color::kRed);
  EXPECT_EQ(s.probe_count(), 3u);  // 3 reds kill every 3-of-5 quorum
}

TEST(Greedy, PrefersTheWheelHub) {
  // The hub appears in n-1 of the n quorums; greedy probes it first.
  const WheelSystem wheel(6);
  const GreedyCandidateProbe greedy(wheel);
  Rng rng(1);
  const Coloring c(6, ElementSet::full(6));
  ProbeSession s(c);
  const Witness w = greedy.run(s, rng);
  EXPECT_EQ(w.color, Color::kGreen);
  EXPECT_TRUE(s.was_probed(WheelSystem::kHub));
  EXPECT_EQ(s.probe_count(), 2u);  // hub + one rim spoke
}

TEST(Greedy, ComparableToProbeCwOnSmallWalls) {
  // On a small wall at p = 1/2, the generic heuristic should be within a
  // factor ~2 of the structured algorithm (it is not expected to win).
  const CrumblingWall wall({1, 2, 3});
  const GreedyCandidateProbe greedy(wall);
  Rng rng(11);
  EstimatorOptions options;
  options.trials = 20000;
  options.validate_witnesses = true;
  const auto stats = estimate_ppc(wall, greedy, 0.5, options, rng);
  EXPECT_LT(stats.mean(), 6.0);
  EXPECT_GE(stats.mean(), 2.0);
}

TEST(Greedy, HonorsProbesAlreadyOnTheSession) {
  // A partially probed session is part of run()'s contract: pre-existing
  // probes must count toward both certificates.
  const MajoritySystem maj(5);
  const GreedyCandidateProbe greedy(maj);
  Rng rng(4);

  // Pre-probe the three reds: they already form a transversal, so the run
  // must certify red without any further probes.
  const Coloring mostly_red(5, ElementSet(5, {3, 4}));
  ProbeSession red_session(mostly_red);
  red_session.probe(0);
  red_session.probe(1);
  red_session.probe(2);
  const Witness red = greedy.run(red_session, rng);
  EXPECT_EQ(red.color, Color::kRed);
  EXPECT_EQ(red_session.probe_count(), 3u);

  // Pre-probe a full green quorum: certify green with no further probes.
  const Coloring mostly_green(5, ElementSet(5, {0, 1, 2}));
  ProbeSession green_session(mostly_green);
  green_session.probe(0);
  green_session.probe(1);
  green_session.probe(2);
  const Witness green = greedy.run(green_session, rng);
  EXPECT_EQ(green.color, Color::kGreen);
  EXPECT_EQ(green_session.probe_count(), 3u);
}

TEST(Greedy, NeverExceedsUniverseSize) {
  const MajoritySystem maj(7);
  const GreedyCandidateProbe greedy(maj);
  Rng rng(3);
  for (std::uint64_t mask = 0; mask < 128; mask += 7) {
    const Coloring c(7, ElementSet::from_mask(7, mask));
    ProbeSession s(c);
    greedy.run(s, rng);
    EXPECT_LE(s.probe_count(), 7u);
  }
}

}  // namespace
}  // namespace qps
