#include "core/engine/parallel_estimator.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/algorithms/probe_maj.h"
#include "core/algorithms/random_order.h"
#include "core/estimator.h"
#include "quorum/majority.h"

namespace qps {
namespace {

// A deliberately broken strategy for testing witness validation under
// parallel runs: claims the first element alone is a green quorum.
class BrokenStrategy final : public ProbeStrategy {
 public:
  std::string name() const override { return "Broken"; }
  Witness run(ProbeSession& session, Rng&) const override {
    session.probe(0);
    Witness w;
    w.color = Color::kGreen;
    w.elements = ElementSet(session.universe_size());
    w.elements.insert(0);
    return w;
  }
};

EngineOptions base_options(std::size_t trials, std::size_t threads) {
  EngineOptions options;
  options.trials = trials;
  options.threads = threads;
  options.batch_size = 256;
  options.seed = 42;
  return options;
}

TEST(ParallelEstimator, MeanIsBitIdenticalAcrossThreadCounts) {
  const MajoritySystem maj(21);
  const ProbeMaj strategy(maj);
  const auto baseline = ParallelEstimator(base_options(20000, 1))
                            .estimate_ppc(maj, strategy, 0.4);
  for (std::size_t threads : {2u, 4u, 8u}) {
    const auto stats = ParallelEstimator(base_options(20000, threads))
                           .estimate_ppc(maj, strategy, 0.4);
    EXPECT_EQ(stats.count(), baseline.count()) << threads << " threads";
    EXPECT_EQ(stats.mean(), baseline.mean()) << threads << " threads";
    EXPECT_EQ(stats.variance(), baseline.variance()) << threads << " threads";
    EXPECT_EQ(stats.min(), baseline.min()) << threads << " threads";
    EXPECT_EQ(stats.max(), baseline.max()) << threads << " threads";
  }
}

TEST(ParallelEstimator, RandomizedStrategyIsAlsoDeterministic) {
  const MajoritySystem maj(15);
  const RandomOrderProbe strategy(maj);
  const auto a = ParallelEstimator(base_options(8000, 1))
                     .estimate_ppc(maj, strategy, 0.5);
  const auto b = ParallelEstimator(base_options(8000, 4))
                     .estimate_ppc(maj, strategy, 0.5);
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.variance(), b.variance());
}

TEST(ParallelEstimator, DifferentSeedsGiveDifferentSamples) {
  const MajoritySystem maj(21);
  const ProbeMaj strategy(maj);
  auto options = base_options(4000, 2);
  const auto a = ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  options.seed = 43;
  const auto b = ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  EXPECT_NE(a.mean(), b.mean());
}

TEST(ParallelEstimator, EarlyStopHonorsTargetSem) {
  const MajoritySystem maj(21);
  const ProbeMaj strategy(maj);
  auto options = base_options(200000, 4);
  options.target_sem = 0.05;
  options.min_trials = 512;
  const auto stats =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  EXPECT_LT(stats.count(), 200000u);     // stopped before the full budget
  EXPECT_GE(stats.count(), 512u);        // but not before min_trials
  EXPECT_LE(stats.sem(), 0.05);          // and the target is met
  // The stop point is a whole number of batches.
  EXPECT_EQ(stats.count() % 256, 0u);
}

TEST(ParallelEstimator, EarlyStopIsDeterministicAcrossThreadCounts) {
  const MajoritySystem maj(21);
  const ProbeMaj strategy(maj);
  auto options = base_options(200000, 1);
  options.target_sem = 0.05;
  options.min_trials = 512;
  const auto a = ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  options.threads = 4;
  const auto b = ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
}

TEST(ParallelEstimator, ZeroTargetRunsFullBudget) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  const auto stats = ParallelEstimator(base_options(5000, 4))
                         .estimate_ppc(maj, strategy, 0.5);
  EXPECT_EQ(stats.count(), 5000u);
}

TEST(ParallelEstimator, ValidationThrowsUnderParallelRuns) {
  const MajoritySystem maj(5);
  const BrokenStrategy broken;
  auto options = base_options(4096, 4);
  options.validate_witnesses = true;
  EXPECT_THROW(ParallelEstimator(options).estimate_ppc(maj, broken, 0.5),
               std::logic_error);
}

TEST(ParallelEstimator, FixedColoringMatchesSequentialEstimator) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  const Coloring c(5, ElementSet(5, {0, 1, 2}));
  const auto stats = ParallelEstimator(base_options(1000, 4))
                         .expected_probes_on(maj, strategy, c);
  // Deterministic strategy on a fixed coloring: zero variance, mean 3.
  EXPECT_DOUBLE_EQ(stats.mean(), 3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_EQ(stats.count(), 1000u);
}

TEST(ParallelEstimator, PartialFinalBatchCoversExactBudget) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  auto options = base_options(1000, 3);
  options.batch_size = 300;  // 300+300+300+100
  const auto stats =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  EXPECT_EQ(stats.count(), 1000u);
}

TEST(ParallelEstimator, RejectsBadOptions) {
  EngineOptions zero_trials;
  zero_trials.trials = 0;
  EXPECT_THROW(ParallelEstimator{zero_trials}, std::invalid_argument);
  EngineOptions zero_batch;
  zero_batch.batch_size = 0;
  EXPECT_THROW(ParallelEstimator{zero_batch}, std::invalid_argument);
  EngineOptions negative_sem;
  negative_sem.target_sem = -1.0;
  EXPECT_THROW(ParallelEstimator{negative_sem}, std::invalid_argument);
}

TEST(ParallelEstimator, EngineBackedApiOverloadsAgree) {
  const MajoritySystem maj(9);
  const ProbeMaj strategy(maj);
  const auto options = base_options(2048, 2);
  const auto direct =
      ParallelEstimator(options).estimate_ppc(maj, strategy, 0.5);
  const auto via_api = estimate_ppc(maj, strategy, 0.5, options);
  EXPECT_EQ(direct.mean(), via_api.mean());
  EXPECT_EQ(direct.count(), via_api.count());
}

TEST(ParallelEstimator, EngineBackedWorstCaseSearchFindsHardMajInput) {
  const MajoritySystem maj(5);
  const ProbeMaj strategy(maj);
  Rng rng(3);
  auto options = base_options(8, 2);
  options.batch_size = 4;
  const auto result =
      worst_case_search(maj, strategy, std::nullopt, 200, rng, options);
  EXPECT_EQ(result.expected_probes, 5.0);
}

TEST(RunningStatsMerge, MatchesSequentialAccumulation) {
  RunningStats all, left, right;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform_real(-5.0, 5.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-12);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(RunningStatsMerge, EmptySidesAreIdentity) {
  RunningStats stats, empty;
  stats.add(1.0);
  stats.add(3.0);
  RunningStats copy = stats;
  copy.merge(empty);
  EXPECT_EQ(copy.count(), 2u);
  EXPECT_DOUBLE_EQ(copy.mean(), 2.0);
  empty.merge(stats);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
  EXPECT_DOUBLE_EQ(empty.min(), 1.0);
  EXPECT_DOUBLE_EQ(empty.max(), 3.0);
}

TEST(RngStreams, ForStreamIsAPureFunction) {
  Rng a = Rng::for_stream(123, 5);
  Rng b = Rng::for_stream(123, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngStreams, DistinctStreamsDiffer) {
  Rng a = Rng::for_stream(123, 0);
  Rng b = Rng::for_stream(123, 1);
  bool differs = false;
  for (int i = 0; i < 16 && !differs; ++i)
    differs = a.next_u64() != b.next_u64();
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace qps
