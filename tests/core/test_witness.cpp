#include "core/witness.h"

#include <gtest/gtest.h>

#include "quorum/majority.h"

namespace qps {
namespace {

class WitnessTest : public ::testing::Test {
 protected:
  MajoritySystem maj_{5};
  Coloring coloring_{5, ElementSet(5, {0, 1, 2})};  // 0,1,2 green; 3,4 red
};

TEST_F(WitnessTest, ValidGreenWitness) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 2})};
  EXPECT_EQ(validate_witness(maj_, coloring_, w, ElementSet(5, {0, 1, 2})),
            "");
}

TEST_F(WitnessTest, GreenWitnessWithUnprobedElementRejected) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 2})};
  const auto error =
      validate_witness(maj_, coloring_, w, ElementSet(5, {0, 1}));
  EXPECT_NE(error.find("unprobed"), std::string::npos);
}

TEST_F(WitnessTest, GreenWitnessWithWrongColorRejected) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 3})};  // 3 is red
  const auto error = validate_witness(maj_, coloring_, w, ElementSet::full(5));
  EXPECT_NE(error.find("not green"), std::string::npos);
}

TEST_F(WitnessTest, GreenWitnessMustContainQuorum) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1})};  // only 2 < 3 elements
  const auto error = validate_witness(maj_, coloring_, w, ElementSet::full(5));
  EXPECT_NE(error.find("quorum"), std::string::npos);
}

TEST_F(WitnessTest, ValidRedWitness) {
  const Coloring mostly_red(5, ElementSet(5, {0}));
  Witness w{Color::kRed, ElementSet(5, {1, 2, 3})};
  EXPECT_EQ(validate_witness(maj_, mostly_red, w, ElementSet(5, {1, 2, 3})),
            "");
}

TEST_F(WitnessTest, RedWitnessMustBeTransversal) {
  const Coloring mostly_red(5, ElementSet(5, {0}));
  Witness w{Color::kRed, ElementSet(5, {1, 2})};  // misses quorum {0,3,4}
  const auto error =
      validate_witness(maj_, mostly_red, w, ElementSet::full(5));
  EXPECT_NE(error.find("transversal"), std::string::npos);
}

TEST_F(WitnessTest, EmptyWitnessRejected) {
  Witness w{Color::kGreen, ElementSet(5)};
  EXPECT_NE(validate_witness(maj_, coloring_, w, ElementSet::full(5)), "");
}

TEST_F(WitnessTest, WrongUniverseRejected) {
  Witness w{Color::kGreen, ElementSet(4, {0, 1, 2})};
  EXPECT_NE(validate_witness(maj_, coloring_, w, ElementSet::full(5)), "");
}

TEST_F(WitnessTest, ToStringMentionsColorAndElements) {
  Witness w{Color::kGreen, ElementSet(5, {0, 2})};
  EXPECT_EQ(w.to_string(), "green {1, 3}");
}

TEST_F(WitnessTest, NonMinimalGreenWitnessAccepted) {
  // A witness need only CONTAIN a quorum; supersets are legal.
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 2})};
  const Coloring all_green(5, ElementSet::full(5));
  Witness big{Color::kGreen, ElementSet::full(5)};
  EXPECT_EQ(validate_witness(maj_, all_green, big, ElementSet::full(5)), "");
}

}  // namespace
}  // namespace qps
