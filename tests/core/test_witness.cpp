#include "core/witness.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_maj.h"
#include "core/algorithms/probe_tree.h"
#include "core/coloring.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

class WitnessTest : public ::testing::Test {
 protected:
  MajoritySystem maj_{5};
  Coloring coloring_{5, ElementSet(5, {0, 1, 2})};  // 0,1,2 green; 3,4 red
};

TEST_F(WitnessTest, ValidGreenWitness) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 2})};
  EXPECT_EQ(validate_witness(maj_, coloring_, w, ElementSet(5, {0, 1, 2})),
            "");
}

TEST_F(WitnessTest, GreenWitnessWithUnprobedElementRejected) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 2})};
  const auto error =
      validate_witness(maj_, coloring_, w, ElementSet(5, {0, 1}));
  EXPECT_NE(error.find("unprobed"), std::string::npos);
}

TEST_F(WitnessTest, GreenWitnessWithWrongColorRejected) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 3})};  // 3 is red
  const auto error = validate_witness(maj_, coloring_, w, ElementSet::full(5));
  EXPECT_NE(error.find("not green"), std::string::npos);
}

TEST_F(WitnessTest, GreenWitnessMustContainQuorum) {
  Witness w{Color::kGreen, ElementSet(5, {0, 1})};  // only 2 < 3 elements
  const auto error = validate_witness(maj_, coloring_, w, ElementSet::full(5));
  EXPECT_NE(error.find("quorum"), std::string::npos);
}

TEST_F(WitnessTest, ValidRedWitness) {
  const Coloring mostly_red(5, ElementSet(5, {0}));
  Witness w{Color::kRed, ElementSet(5, {1, 2, 3})};
  EXPECT_EQ(validate_witness(maj_, mostly_red, w, ElementSet(5, {1, 2, 3})),
            "");
}

TEST_F(WitnessTest, RedWitnessMustBeTransversal) {
  const Coloring mostly_red(5, ElementSet(5, {0}));
  Witness w{Color::kRed, ElementSet(5, {1, 2})};  // misses quorum {0,3,4}
  const auto error =
      validate_witness(maj_, mostly_red, w, ElementSet::full(5));
  EXPECT_NE(error.find("transversal"), std::string::npos);
}

TEST_F(WitnessTest, EmptyWitnessRejected) {
  Witness w{Color::kGreen, ElementSet(5)};
  EXPECT_NE(validate_witness(maj_, coloring_, w, ElementSet::full(5)), "");
}

TEST_F(WitnessTest, WrongUniverseRejected) {
  Witness w{Color::kGreen, ElementSet(4, {0, 1, 2})};
  EXPECT_NE(validate_witness(maj_, coloring_, w, ElementSet::full(5)), "");
}

TEST_F(WitnessTest, ToStringMentionsColorAndElements) {
  Witness w{Color::kGreen, ElementSet(5, {0, 2})};
  EXPECT_EQ(w.to_string(), "green {1, 3}");
}

TEST_F(WitnessTest, NonMinimalGreenWitnessAccepted) {
  // A witness need only CONTAIN a quorum; supersets are legal.
  Witness w{Color::kGreen, ElementSet(5, {0, 1, 2})};
  const Coloring all_green(5, ElementSet::full(5));
  Witness big{Color::kGreen, ElementSet::full(5)};
  EXPECT_EQ(validate_witness(maj_, all_green, big, ElementSet::full(5)), "");
}

// ---- Word-mask fast path vs. the legacy walk at the storage boundary -----
// validate_witness runs on word masks for n <= 64 and on the per-element
// walk beyond; at n = 63 (one word with a tail), n = 64 (exactly one full
// word) and n = 65 / 81 (spill to the heap path) both implementations must
// return identical verdicts AND identical messages, for real strategy
// witnesses and for systematically corrupted ones, across all four paper
// families.

struct BoundaryCase {
  std::string label;
  std::shared_ptr<const QuorumSystem> system;
  std::shared_ptr<const ProbeStrategy> strategy;
};

std::vector<BoundaryCase> boundary_cases() {
  std::vector<BoundaryCase> cases;
  const auto add = [&](std::string label,
                       std::shared_ptr<const QuorumSystem> system,
                       std::shared_ptr<const ProbeStrategy> strategy) {
    cases.push_back({std::move(label), std::move(system), std::move(strategy)});
  };
  // n = 63: one inline word, one tail bit to spare.
  auto maj63 = std::make_shared<MajoritySystem>(63);
  add("maj/63", maj63, std::make_shared<ProbeMaj>(*maj63));
  auto tree5 = std::make_shared<TreeSystem>(5);  // n = 63
  add("tree/63", tree5, std::make_shared<ProbeTree>(*tree5));
  auto wheel63 = std::make_shared<CrumblingWall>(CrumblingWall::wheel(63));
  add("cw/63", wheel63, std::make_shared<ProbeCW>(*wheel63));
  auto hqs27 = std::make_shared<HQSystem>(3);  // n = 27, inline
  add("hqs/27", hqs27, std::make_shared<ProbeHQS>(*hqs27));
  // n = 64: exactly one full word (only CW among the families lands here).
  auto wheel64 = std::make_shared<CrumblingWall>(CrumblingWall::wheel(64));
  add("cw/64", wheel64, std::make_shared<ProbeCW>(*wheel64));
  // n > 64: the heap ElementSet path, where validate_witness must hand
  // straight to the walk.
  auto maj65 = std::make_shared<MajoritySystem>(65);
  add("maj/65", maj65, std::make_shared<ProbeMaj>(*maj65));
  auto wheel65 = std::make_shared<CrumblingWall>(CrumblingWall::wheel(65));
  add("cw/65", wheel65, std::make_shared<ProbeCW>(*wheel65));
  auto hqs81 = std::make_shared<HQSystem>(4);  // n = 81
  add("hqs/81", hqs81, std::make_shared<ProbeHQS>(*hqs81));
  return cases;
}

void expect_same_verdict(const QuorumSystem& system, const Coloring& coloring,
                         const Witness& witness, const ElementSet& probed,
                         const std::string& context) {
  const std::string mask = validate_witness(system, coloring, witness, probed);
  const std::string walk =
      validate_witness_walk(system, coloring, witness, probed);
  EXPECT_EQ(mask, walk) << context;
}

TEST(WitnessMaskBoundary, MaskPathMatchesWalkOnStrategyWitnesses) {
  for (const BoundaryCase& c : boundary_cases()) {
    const std::size_t n = c.system->universe_size();
    Rng rng(20010826);
    for (int trial = 0; trial < 50; ++trial) {
      const double p = 0.15 + 0.2 * static_cast<double>(trial % 4);
      const Coloring coloring = sample_iid_coloring(n, p, rng);
      ProbeSession session(coloring);
      const Witness witness = c.strategy->run(session, rng);
      const ElementSet& probed = session.probed();
      // The genuine witness validates cleanly through both paths.
      EXPECT_EQ(validate_witness(*c.system, coloring, witness, probed), "")
          << c.label << " trial " << trial;
      expect_same_verdict(*c.system, coloring, witness, probed,
                          c.label + " genuine");
      // Color flip: every element now has the wrong color.
      Witness flipped = witness;
      flipped.color = opposite(flipped.color);
      expect_same_verdict(*c.system, coloring, flipped, probed,
                          c.label + " flipped");
      // Unprobed element: drop one witness element from the probed set.
      ElementSet partial = probed;
      partial.erase(witness.elements.first());
      expect_same_verdict(*c.system, coloring, witness, partial,
                          c.label + " unprobed");
      // Gutted witness: remove one element, usually breaking the quorum /
      // transversal property.
      Witness gutted = witness;
      gutted.elements.erase(gutted.elements.first());
      expect_same_verdict(*c.system, coloring, gutted, probed,
                          c.label + " gutted");
      // Empty and wrong-universe witnesses.
      Witness empty{witness.color, ElementSet(n)};
      expect_same_verdict(*c.system, coloring, empty, probed,
                          c.label + " empty");
    }
  }
}

TEST(WitnessMaskBoundary, WrongUniverseAgreesAcrossPaths) {
  const MajoritySystem maj63(63);
  Rng rng(3);
  const Coloring coloring = sample_iid_coloring(63, 0.5, rng);
  Witness wrong{Color::kGreen, ElementSet(64, {0, 1, 2})};
  expect_same_verdict(maj63, coloring, wrong, ElementSet::full(63),
                      "wrong universe");
}

TEST(WitnessMaskBoundary, MismatchedProbedUniverseThrowsOnBothPaths) {
  // A probed set over the wrong universe is a caller bug; the mask fast
  // path must hand it to the walk, which reports it through is_subset_of's
  // precondition -- not silently compare raw masks.
  const MajoritySystem maj63(63);
  Rng rng(4);
  const Coloring coloring = sample_iid_coloring(63, 0.5, rng);
  ProbeSession session(coloring);
  const ProbeMaj strategy(maj63);
  const Witness witness = strategy.run(session, rng);
  const ElementSet probed64 = ElementSet::full(64);
  EXPECT_THROW((void)validate_witness(maj63, coloring, witness, probed64),
               std::invalid_argument);
  EXPECT_THROW((void)validate_witness_walk(maj63, coloring, witness, probed64),
               std::invalid_argument);
}

}  // namespace
}  // namespace qps
