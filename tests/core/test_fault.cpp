// Fault-injection registry tests: spec parsing, the firing schedule
// (after/count/prob/match), action behavior, determinism, and the
// kill-switch contract.  The registry is process-global, so every test
// clears it on entry and exit.
#include <gtest/gtest.h>

#include <new>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/fault/fault.h"

namespace qps::fault {
namespace {

class FaultTest : public testing::Test {
 protected:
  void SetUp() override { clear(); }
  void TearDown() override { clear(); }
};

// GTEST_SKIP() only aborts the function it appears in, so this must be a
// macro expanded in the test body, not a helper call.  Tests that need a
// rule to actually fire use it; parsing/clearing behave identically in
// both configurations and stay unguarded.
#define REQUIRE_FAULTS()                                             \
  if (!kFaultCompiled)                                               \
  GTEST_SKIP() << "fault injection compiled out (QPS_FAULT=OFF)"

TEST_F(FaultTest, EmptySpecIsANoOp) {
  configure("");
  configure("  ;  ; ");
  EXPECT_FALSE(armed());
  EXPECT_EQ(describe(), "");
  hit("anything/at_all");  // must not throw
}

TEST_F(FaultTest, MalformedSpecsAreRejectedNamingTheRule) {
  EXPECT_THROW(configure("justapoint"), std::invalid_argument);
  EXPECT_THROW(configure("p:frobnicate"), std::invalid_argument);
  EXPECT_THROW(configure("p:error:after"), std::invalid_argument);
  EXPECT_THROW(configure("p:error:after=0"), std::invalid_argument);
  EXPECT_THROW(configure("p:error:prob=1.5"), std::invalid_argument);
  EXPECT_THROW(configure("p:torn:frac=-0.1"), std::invalid_argument);
  EXPECT_THROW(configure("p:error:after=xyz"), std::invalid_argument);
  EXPECT_THROW(configure("p:error:nope=1"), std::invalid_argument);
  EXPECT_THROW(configure(":error"), std::invalid_argument);
  try {
    configure("p:error:prob=2");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("p:error:prob=2"),
              std::string::npos);
  }
  // A throwing configure() installs nothing.
  EXPECT_FALSE(armed());
}

TEST_F(FaultTest, ErrorActionFiresFromAfterOnwards) {
  REQUIRE_FAULTS();
  configure("t/err:error:after=3");
  EXPECT_TRUE(armed());
  hit("t/err");  // hit 1
  hit("t/err");  // hit 2
  EXPECT_THROW(hit("t/err"), InjectedFault);  // hit 3: fires
  EXPECT_THROW(hit("t/err"), InjectedFault);  // and keeps firing
  hit("t/other");  // different point: untouched
}

TEST_F(FaultTest, WhatNamesThePointAndHitIndex) {
  REQUIRE_FAULTS();
  configure("t/what:error");
  try {
    hit("t/what");
    FAIL() << "expected InjectedFault";
  } catch (const InjectedFault& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("t/what"), std::string::npos) << what;
    EXPECT_NE(what.find("hit 1"), std::string::npos) << what;
  }
}

TEST_F(FaultTest, CountBoundsTheFirings) {
  REQUIRE_FAULTS();
  configure("t/count:error:count=2");
  EXPECT_THROW(hit("t/count"), InjectedFault);
  EXPECT_THROW(hit("t/count"), InjectedFault);
  for (int i = 0; i < 10; ++i) hit("t/count");  // budget spent: silent
}

TEST_F(FaultTest, MatchRestrictsToDetailSubstrings) {
  REQUIRE_FAULTS();
  configure("t/match:error:match=size=5");
  hit("t/match", "family=alpha/size=3/p=0.5");
  EXPECT_THROW(hit("t/match", "family=alpha/size=5/p=0.5"), InjectedFault);
  hit("t/match");  // no detail at all: no match
}

TEST_F(FaultTest, ProbScheduleIsDeterministicAndSeedDependent) {
  REQUIRE_FAULTS();
  const auto schedule = [](const std::string& spec) {
    clear();
    configure(spec);
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      try {
        hit("t/prob");
        fired.push_back(false);
      } catch (const InjectedFault&) {
        fired.push_back(true);
      }
    }
    return fired;
  };
  const auto a = schedule("t/prob:error:prob=0.3:seed=42");
  const auto b = schedule("t/prob:error:prob=0.3:seed=42");
  EXPECT_EQ(a, b);  // pure function of (seed, point, hit index)
  const auto c = schedule("t/prob:error:prob=0.3:seed=43");
  EXPECT_NE(a, c);
  std::size_t fired = 0;
  for (const bool f : a) fired += f ? 1 : 0;
  EXPECT_GT(fired, 20u);  // ~60 expected; bounds are generous
  EXPECT_LT(fired, 140u);
}

TEST_F(FaultTest, AllocActionThrowsBadAlloc) {
  REQUIRE_FAULTS();
  configure("t/alloc:alloc");
  EXPECT_THROW(hit("t/alloc"), std::bad_alloc);
}

TEST_F(FaultTest, DelayActionStallsThenContinues) {
  configure("t/delay:delay:ms=1:count=1");
  hit("t/delay");  // sleeps ~1ms, must not throw
  hit("t/delay");  // count spent
}

TEST_F(FaultTest, TornRulesAreInvisibleToHitAndServedByConsumeTorn) {
  REQUIRE_FAULTS();
  configure("t/torn:torn:frac=0.25:count=1");
  hit("t/torn");  // torn rules never fire through hit()
  const auto frac = consume_torn("t/torn");
  ASSERT_TRUE(frac.has_value());
  EXPECT_DOUBLE_EQ(*frac, 0.25);
  EXPECT_FALSE(consume_torn("t/torn").has_value());  // count spent
}

TEST_F(FaultTest, RulesAccumulateAcrossConfigureCalls) {
  REQUIRE_FAULTS();
  configure("t/one:error");
  configure("t/two:alloc");
  const std::string summary = describe();
  EXPECT_NE(summary.find("t/one:error"), std::string::npos) << summary;
  EXPECT_NE(summary.find("t/two:alloc"), std::string::npos) << summary;
  EXPECT_THROW(hit("t/one"), InjectedFault);
  EXPECT_THROW(hit("t/two"), std::bad_alloc);
}

TEST_F(FaultTest, ClearDisarmsEverything) {
  configure("t/gone:error");
  clear();
  EXPECT_FALSE(armed());
  EXPECT_EQ(describe(), "");
  hit("t/gone");  // must not throw
}

TEST_F(FaultTest, KillSwitchConstantIsVisible) {
  // This test builds in both configurations; under -DQPS_FAULT=OFF the
  // macros must be inert even with rules "installed".
  if (!kFaultCompiled) {
    configure("t/off:error");
    QPS_FAULT_POINT("t/off");
    QPS_FAULT_POINT2("t/off", "detail");
    EXPECT_FALSE(armed());
  } else {
    EXPECT_TRUE(kFaultCompiled);
  }
}

}  // namespace
}  // namespace qps::fault
