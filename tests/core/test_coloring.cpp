#include "core/coloring.h"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <set>
#include <stdexcept>
#include <vector>

namespace qps {
namespace {

TEST(Coloring, DefaultAllRed) {
  const Coloring c(5);
  for (Element e = 0; e < 5; ++e) EXPECT_EQ(c.color(e), Color::kRed);
  EXPECT_EQ(c.green_count(), 0u);
  EXPECT_EQ(c.red_count(), 5u);
}

TEST(Coloring, FromGreenSet) {
  const Coloring c(5, ElementSet(5, {1, 3}));
  EXPECT_EQ(c.color(1), Color::kGreen);
  EXPECT_EQ(c.color(3), Color::kGreen);
  EXPECT_EQ(c.color(0), Color::kRed);
  EXPECT_EQ(c.green_count(), 2u);
  EXPECT_EQ(c.reds(), ElementSet(5, {0, 2, 4}));
}

TEST(Coloring, WithFlipsOneElement) {
  const Coloring c(3);
  const Coloring d = c.with(1, Color::kGreen);
  EXPECT_EQ(c.color(1), Color::kRed);
  EXPECT_EQ(d.color(1), Color::kGreen);
  EXPECT_EQ(d.with(1, Color::kRed), c);
}

TEST(Coloring, OppositeColor) {
  EXPECT_EQ(opposite(Color::kRed), Color::kGreen);
  EXPECT_EQ(opposite(Color::kGreen), Color::kRed);
  EXPECT_EQ(to_string(Color::kGreen), "green");
  EXPECT_EQ(to_string(Color::kRed), "red");
}

TEST(Coloring, IidSamplerMatchesP) {
  Rng rng(42);
  const std::size_t n = 1000;
  double reds = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t)
    reds += static_cast<double>(sample_iid_coloring(n, 0.3, rng).red_count());
  EXPECT_NEAR(reds / (n * trials), 0.3, 0.01);
}

TEST(Coloring, IidExtremes) {
  Rng rng(1);
  EXPECT_EQ(sample_iid_coloring(20, 0.0, rng).red_count(), 0u);
  EXPECT_EQ(sample_iid_coloring(20, 1.0, rng).red_count(), 20u);
}

TEST(ColoringDistribution, NormalizesWeights) {
  ColoringDistribution d({Coloring(2), Coloring(2, ElementSet(2, {0}))},
                         {3.0, 1.0});
  EXPECT_DOUBLE_EQ(d.weight(0), 0.75);
  EXPECT_DOUBLE_EQ(d.weight(1), 0.25);
}

TEST(ColoringDistribution, SamplingFollowsWeights) {
  ColoringDistribution d({Coloring(2), Coloring(2, ElementSet(2, {0}))},
                         {3.0, 1.0});
  Rng rng(5);
  int first = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t)
    if (d.sample(rng).green_count() == 0) ++first;
  EXPECT_NEAR(static_cast<double>(first) / trials, 0.75, 0.01);
}

TEST(ColoringDistribution, Validation) {
  EXPECT_THROW(ColoringDistribution({}, {}), std::invalid_argument);
  EXPECT_THROW(ColoringDistribution({Coloring(2)}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(ColoringDistribution({Coloring(2)}, {-1.0}),
               std::invalid_argument);
  EXPECT_THROW(ColoringDistribution({Coloring(2)}, {0.0}),
               std::invalid_argument);
}

TEST(HardDistributions, MajSupportIsAllMajorityRedColorings) {
  const auto d = maj_hard_distribution(5);
  EXPECT_EQ(d.size(), 10u);  // C(5,3) red choices == C(5,2) green choices
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.coloring(i).red_count(), 3u);
    seen.insert(d.coloring(i).greens().to_mask());
    EXPECT_DOUBLE_EQ(d.weight(i), 0.1);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(HardDistributions, CwOneGreenPerRow) {
  const CrumblingWall wall({1, 2, 3});
  const auto d = cw_hard_distribution(wall);
  EXPECT_EQ(d.size(), 6u);  // 1 * 2 * 3
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Coloring& c = d.coloring(i);
    for (std::size_t row = 0; row < wall.row_count(); ++row) {
      std::size_t greens = 0;
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        if (c.color(e) == Color::kGreen) ++greens;
      EXPECT_EQ(greens, 1u) << "row " << row;
    }
  }
}

TEST(HardDistributions, TreeUpperLevelsGreenTwoRedsPerSubtree) {
  const TreeSystem tree(3);  // n = 15; 4 height-1 subtrees
  const auto d = tree_hard_distribution(tree);
  EXPECT_EQ(d.size(), 81u);  // 3^4
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Coloring& c = d.coloring(i);
    // Nodes above the height-1 subtree roots (heap ids 0..2) are green.
    for (Element v = 0; v < 3; ++v) EXPECT_EQ(c.color(v), Color::kGreen);
    // Each height-1 subtree {parent, 2 leaves} has exactly 2 reds.
    for (Element parent = 3; parent <= 6; ++parent) {
      int reds = (c.color(parent) == Color::kRed) +
                 (c.color(TreeSystem::left_child(parent)) == Color::kRed) +
                 (c.color(TreeSystem::right_child(parent)) == Color::kRed);
      EXPECT_EQ(reds, 2) << "subtree at " << parent;
    }
  }
}

TEST(HardDistributions, TreeHeightOneIsWholeTree) {
  const auto d = tree_hard_distribution(TreeSystem(1));
  EXPECT_EQ(d.size(), 3u);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(d.coloring(i).red_count(), 2u);
}

TEST(HqsWorstCase, FamilyPStructure) {
  const HQSystem hqs(2);
  const Coloring c = hqs_worst_case_coloring(hqs, Color::kGreen);
  // Root value green: greens contain a quorum, reds do not... (they do not
  // contain a *green* quorum; by self-duality reds contain no quorum).
  EXPECT_TRUE(hqs.contains_quorum(c.greens()));
  // Per family P with values (1,1,0) at the top: subtree leaf counts are
  // {1,1,0}-patterned recursively: greens = 2/3 of (2/3 n) + 1/3 of (1/3 n).
  // For h=2 (n=9): majority children contribute 2 greens each, the
  // minority child 1 green: total 5.
  EXPECT_EQ(c.green_count(), 5u);
}

TEST(IidSampling, MaskSamplerMatchesSetSamplerDrawForDraw) {
  // sample_iid_coloring_mask consumes the same generator sequence as
  // sample_iid_coloring and must produce the same coloring.
  for (double p : {0.0, 0.3, 0.5, 0.8, 1.0}) {
    Rng set_rng(11), mask_rng(11);
    for (int trial = 0; trial < 50; ++trial) {
      const Coloring c = sample_iid_coloring(21, p, set_rng);
      const std::uint64_t mask = sample_iid_coloring_mask(21, p, mask_rng);
      ASSERT_EQ(c.greens().to_mask(), mask) << "p=" << p;
    }
    EXPECT_EQ(set_rng.next_u64(), mask_rng.next_u64()) << "p=" << p;
  }
}

TEST(IidSampling, WordSamplerIsDeterministic) {
  std::uint64_t a[16], b[16];
  Rng rng_a(123), rng_b(123);
  sample_iid_coloring_words(a, 16, 64, 0.37, rng_a);
  sample_iid_coloring_words(b, 16, 64, 0.37, rng_b);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(a[i], b[i]);
  // One call for 16 masks == two calls for 8 + 8 on the same stream.
  Rng rng_c(123);
  sample_iid_coloring_words(b, 8, 64, 0.37, rng_c);
  sample_iid_coloring_words(b + 8, 8, 64, 0.37, rng_c);
  for (int i = 0; i < 16; ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(IidSampling, WordSamplerEdgeProbabilities) {
  std::uint64_t masks[4];
  Rng rng(9);
  sample_iid_coloring_words(masks, 4, 10, 0.0, rng);
  for (auto m : masks) EXPECT_EQ(m, (1ULL << 10) - 1);  // p=0: all green
  sample_iid_coloring_words(masks, 4, 10, 1.0, rng);
  for (auto m : masks) EXPECT_EQ(m, 0ULL);  // p=1: all red
  // Full-word universe at p = 1/2: each mask is one raw uniform word, so
  // four draws must not all collide and greens must be plausible counts.
  sample_iid_coloring_words(masks, 4, 64, 0.5, rng);
  EXPECT_FALSE(masks[0] == masks[1] && masks[1] == masks[2] &&
               masks[2] == masks[3]);
  for (auto m : masks) {
    EXPECT_GT(std::popcount(m), 8);   // P(<= 8 greens) ~ 1e-10
    EXPECT_LT(std::popcount(m), 56);  // symmetric
  }
}

TEST(IidSampling, WordSamplerRespectsTheUniverseBoundary) {
  std::uint64_t masks[64];
  Rng rng(77);
  for (std::size_t n : {1u, 7u, 63u, 64u}) {
    sample_iid_coloring_words(masks, 64, n, 0.4, rng);
    const std::uint64_t universe = n == 64 ? ~0ULL : (1ULL << n) - 1;
    for (auto m : masks) ASSERT_EQ(m & ~universe, 0ULL) << "n=" << n;
  }
}

TEST(IidSampling, WordSamplerMarginalsMatchBernoulli) {
  // Statistical equivalence to the per-element sampler: the green count
  // over many trials must match (1-p) * n well within 6 sigma.
  const std::size_t kTrials = 40000;
  std::vector<std::uint64_t> masks(kTrials);
  for (double p : {0.1, 0.37, 0.5, 0.75}) {
    Rng rng(1234);
    sample_iid_coloring_words(masks.data(), kTrials, 48, p, rng);
    double greens = 0;
    std::vector<std::size_t> per_element(48, 0);
    for (auto m : masks) {
      greens += std::popcount(m);
      for (int e = 0; e < 48; ++e) per_element[e] += (m >> e) & 1;
    }
    const double n_trials = static_cast<double>(kTrials);
    const double expected = (1.0 - p) * 48.0 * n_trials;
    const double sigma = std::sqrt(48.0 * p * (1.0 - p) * n_trials);
    EXPECT_NEAR(greens, expected, 6.0 * sigma) << "p=" << p;
    // And element marginals individually (no positional bias).
    const double elem_sigma = std::sqrt(p * (1.0 - p) * n_trials);
    for (int e = 0; e < 48; ++e)
      ASSERT_NEAR(static_cast<double>(per_element[e]), (1.0 - p) * n_trials,
                  6.0 * elem_sigma)
          << "p=" << p << " element " << e;
  }
}

TEST(IidSampling, WordSamplerCouplesMonotonicallyAcrossP) {
  // On a shared stream, dyadic thresholds with the same trailing-zero
  // count consume the same draws, and a lane red at the smaller p is red
  // at the larger one: the comonotone coupling that keeps CRN E(p) curves
  // smooth along dyadic grids.
  std::uint64_t lo[32], hi[32];
  Rng rng_lo(5), rng_hi(5);
  sample_iid_coloring_words(lo, 32, 64, 0.25, rng_lo);   // P = 2^51
  sample_iid_coloring_words(hi, 32, 64, 0.75, rng_hi);   // P = 3 * 2^51
  // 0.25 consumes 2 draws/word, 0.75 consumes 2 draws/word: same stream
  // offsets; reds at 0.25 must be a subset of reds at 0.75.
  for (int i = 0; i < 32; ++i)
    ASSERT_EQ(~lo[i] & hi[i], 0ULL) << i;  // reds(lo) subset reds(hi)
}

TEST(IidSampling, WordSamplerRejectsBadArguments) {
  std::uint64_t mask;
  Rng rng(1);
  EXPECT_THROW(sample_iid_coloring_words(&mask, 1, 0, 0.5, rng),
               std::invalid_argument);
  EXPECT_THROW(sample_iid_coloring_words(&mask, 1, 8, 1.5, rng),
               std::invalid_argument);
  EXPECT_THROW(sample_iid_coloring_mask(65, 0.5, rng), std::invalid_argument);
}

TEST(IidSampling, WordSamplerCoversMultiWordUniverses) {
  // n > 64 rows are ceil(n/64) words with the bits above n zeroed in the
  // last word; the single-word n <= 64 draw sequence is unchanged (the
  // sampler is trial-major, chunk-major, so one chunk is the old layout).
  Rng rng(31);
  for (const std::size_t n : {65u, 127u, 128u, 129u}) {
    const std::size_t words = (n + 63) / 64;
    std::vector<std::uint64_t> masks(8 * words);
    sample_iid_coloring_words(masks.data(), 8, n, 0.4, rng);
    const std::size_t rem = n % 64;
    for (std::size_t t = 0; t < 8; ++t) {
      if (rem != 0) {
        ASSERT_EQ(masks[t * words + words - 1] >> rem, 0ULL)
            << "n=" << n << " t=" << t;
      }
      std::size_t greens = 0;
      for (std::size_t w = 0; w < words; ++w)
        greens += std::popcount(masks[t * words + w]);
      ASSERT_LE(greens, n);
    }
  }
}

TEST(ColoringTranspose, MatchesTheBitwiseDefinition) {
  // element_words[e] bit t must equal trial_masks[t] bit e, with lanes
  // beyond trial_count zeroed -- the exact contract the batch kernel's
  // per-element loads rely on.
  Rng rng(77);
  for (const std::size_t n : {1u, 13u, 63u, 64u}) {
    for (const std::size_t count : {1u, 17u, 63u, 64u}) {
      std::vector<std::uint64_t> masks(count);
      sample_iid_coloring_words(masks.data(), count, n, 0.5, rng);
      std::vector<std::uint64_t> words(n);
      transpose_coloring_words(masks.data(), count, words.data(), n);
      for (std::size_t e = 0; e < n; ++e)
        for (std::size_t t = 0; t < 64; ++t)
          ASSERT_EQ((words[e] >> t) & 1ULL,
                    t < count ? (masks[t] >> e) & 1ULL : 0ULL)
              << "n=" << n << " count=" << count << " e=" << e << " t=" << t;
    }
  }
}

TEST(ColoringTranspose, RoundTripsThroughItself) {
  // Transposing twice (64 full lanes both ways) is the identity.
  Rng rng(123);
  std::uint64_t masks[64], once[64], twice[64];
  sample_iid_coloring_words(masks, 64, 64, 0.3, rng);
  transpose_coloring_words(masks, 64, once, 64);
  transpose_coloring_words(once, 64, twice, 64);
  for (int i = 0; i < 64; ++i) ASSERT_EQ(twice[i], masks[i]) << i;
}

TEST(ColoringTranspose, RejectsBadArguments) {
  std::uint64_t mask = 1, out[1];
  EXPECT_THROW(transpose_coloring_words(&mask, 1, out, 0),
               std::invalid_argument);
  EXPECT_THROW(transpose_coloring_words(&mask, 1, out, 65),
               std::invalid_argument);
  EXPECT_THROW(transpose_coloring_words(&mask, 65, out, 1),
               std::invalid_argument);
}

TEST(HqsWorstCase, RedRootIsComplementary) {
  const HQSystem hqs(2);
  const Coloring g = hqs_worst_case_coloring(hqs, Color::kGreen);
  const Coloring r = hqs_worst_case_coloring(hqs, Color::kRed);
  // Swapping the root value complements every leaf.
  for (Element e = 0; e < 9; ++e)
    EXPECT_EQ(g.color(e), opposite(r.color(e)));
  EXPECT_FALSE(hqs.contains_quorum(r.greens()));
}

}  // namespace
}  // namespace qps
