#include "core/coloring.h"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

namespace qps {
namespace {

TEST(Coloring, DefaultAllRed) {
  const Coloring c(5);
  for (Element e = 0; e < 5; ++e) EXPECT_EQ(c.color(e), Color::kRed);
  EXPECT_EQ(c.green_count(), 0u);
  EXPECT_EQ(c.red_count(), 5u);
}

TEST(Coloring, FromGreenSet) {
  const Coloring c(5, ElementSet(5, {1, 3}));
  EXPECT_EQ(c.color(1), Color::kGreen);
  EXPECT_EQ(c.color(3), Color::kGreen);
  EXPECT_EQ(c.color(0), Color::kRed);
  EXPECT_EQ(c.green_count(), 2u);
  EXPECT_EQ(c.reds(), ElementSet(5, {0, 2, 4}));
}

TEST(Coloring, WithFlipsOneElement) {
  const Coloring c(3);
  const Coloring d = c.with(1, Color::kGreen);
  EXPECT_EQ(c.color(1), Color::kRed);
  EXPECT_EQ(d.color(1), Color::kGreen);
  EXPECT_EQ(d.with(1, Color::kRed), c);
}

TEST(Coloring, OppositeColor) {
  EXPECT_EQ(opposite(Color::kRed), Color::kGreen);
  EXPECT_EQ(opposite(Color::kGreen), Color::kRed);
  EXPECT_EQ(to_string(Color::kGreen), "green");
  EXPECT_EQ(to_string(Color::kRed), "red");
}

TEST(Coloring, IidSamplerMatchesP) {
  Rng rng(42);
  const std::size_t n = 1000;
  double reds = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t)
    reds += static_cast<double>(sample_iid_coloring(n, 0.3, rng).red_count());
  EXPECT_NEAR(reds / (n * trials), 0.3, 0.01);
}

TEST(Coloring, IidExtremes) {
  Rng rng(1);
  EXPECT_EQ(sample_iid_coloring(20, 0.0, rng).red_count(), 0u);
  EXPECT_EQ(sample_iid_coloring(20, 1.0, rng).red_count(), 20u);
}

TEST(ColoringDistribution, NormalizesWeights) {
  ColoringDistribution d({Coloring(2), Coloring(2, ElementSet(2, {0}))},
                         {3.0, 1.0});
  EXPECT_DOUBLE_EQ(d.weight(0), 0.75);
  EXPECT_DOUBLE_EQ(d.weight(1), 0.25);
}

TEST(ColoringDistribution, SamplingFollowsWeights) {
  ColoringDistribution d({Coloring(2), Coloring(2, ElementSet(2, {0}))},
                         {3.0, 1.0});
  Rng rng(5);
  int first = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t)
    if (d.sample(rng).green_count() == 0) ++first;
  EXPECT_NEAR(static_cast<double>(first) / trials, 0.75, 0.01);
}

TEST(ColoringDistribution, Validation) {
  EXPECT_THROW(ColoringDistribution({}, {}), std::invalid_argument);
  EXPECT_THROW(ColoringDistribution({Coloring(2)}, {1.0, 2.0}),
               std::invalid_argument);
  EXPECT_THROW(ColoringDistribution({Coloring(2)}, {-1.0}),
               std::invalid_argument);
  EXPECT_THROW(ColoringDistribution({Coloring(2)}, {0.0}),
               std::invalid_argument);
}

TEST(HardDistributions, MajSupportIsAllMajorityRedColorings) {
  const auto d = maj_hard_distribution(5);
  EXPECT_EQ(d.size(), 10u);  // C(5,3) red choices == C(5,2) green choices
  std::set<std::uint64_t> seen;
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(d.coloring(i).red_count(), 3u);
    seen.insert(d.coloring(i).greens().to_mask());
    EXPECT_DOUBLE_EQ(d.weight(i), 0.1);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(HardDistributions, CwOneGreenPerRow) {
  const CrumblingWall wall({1, 2, 3});
  const auto d = cw_hard_distribution(wall);
  EXPECT_EQ(d.size(), 6u);  // 1 * 2 * 3
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Coloring& c = d.coloring(i);
    for (std::size_t row = 0; row < wall.row_count(); ++row) {
      std::size_t greens = 0;
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        if (c.color(e) == Color::kGreen) ++greens;
      EXPECT_EQ(greens, 1u) << "row " << row;
    }
  }
}

TEST(HardDistributions, TreeUpperLevelsGreenTwoRedsPerSubtree) {
  const TreeSystem tree(3);  // n = 15; 4 height-1 subtrees
  const auto d = tree_hard_distribution(tree);
  EXPECT_EQ(d.size(), 81u);  // 3^4
  for (std::size_t i = 0; i < d.size(); ++i) {
    const Coloring& c = d.coloring(i);
    // Nodes above the height-1 subtree roots (heap ids 0..2) are green.
    for (Element v = 0; v < 3; ++v) EXPECT_EQ(c.color(v), Color::kGreen);
    // Each height-1 subtree {parent, 2 leaves} has exactly 2 reds.
    for (Element parent = 3; parent <= 6; ++parent) {
      int reds = (c.color(parent) == Color::kRed) +
                 (c.color(TreeSystem::left_child(parent)) == Color::kRed) +
                 (c.color(TreeSystem::right_child(parent)) == Color::kRed);
      EXPECT_EQ(reds, 2) << "subtree at " << parent;
    }
  }
}

TEST(HardDistributions, TreeHeightOneIsWholeTree) {
  const auto d = tree_hard_distribution(TreeSystem(1));
  EXPECT_EQ(d.size(), 3u);
  for (std::size_t i = 0; i < d.size(); ++i)
    EXPECT_EQ(d.coloring(i).red_count(), 2u);
}

TEST(HqsWorstCase, FamilyPStructure) {
  const HQSystem hqs(2);
  const Coloring c = hqs_worst_case_coloring(hqs, Color::kGreen);
  // Root value green: greens contain a quorum, reds do not... (they do not
  // contain a *green* quorum; by self-duality reds contain no quorum).
  EXPECT_TRUE(hqs.contains_quorum(c.greens()));
  // Per family P with values (1,1,0) at the top: subtree leaf counts are
  // {1,1,0}-patterned recursively: greens = 2/3 of (2/3 n) + 1/3 of (1/3 n).
  // For h=2 (n=9): majority children contribute 2 greens each, the
  // minority child 1 green: total 5.
  EXPECT_EQ(c.green_count(), 5u);
}

TEST(HqsWorstCase, RedRootIsComplementary) {
  const HQSystem hqs(2);
  const Coloring g = hqs_worst_case_coloring(hqs, Color::kGreen);
  const Coloring r = hqs_worst_case_coloring(hqs, Color::kRed);
  // Swapping the root value complements every leaf.
  for (Element e = 0; e < 9; ++e)
    EXPECT_EQ(g.color(e), opposite(r.color(e)));
  EXPECT_FALSE(hqs.contains_quorum(r.greens()));
}

}  // namespace
}  // namespace qps
