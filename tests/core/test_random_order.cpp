// The universal RandomOrderProbe baseline.
#include "core/algorithms/random_order.h"

#include <gtest/gtest.h>

#include "core/estimator.h"
#include "core/expectation.h"
#include "core/witness.h"
#include "quorum/crumbling_wall.h"
#include "quorum/fpp.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace qps {
namespace {

TEST(RandomOrder, ValidWitnessesOnEveryColoringOfEverySystem) {
  const MajoritySystem maj(5);
  const CrumblingWall wall({1, 2, 3});
  const TreeSystem tree(2);
  const HQSystem hqs(2);
  const FppSystem fano(2);
  const std::vector<const QuorumSystem*> systems = {&maj, &wall, &tree, &hqs,
                                                    &fano};
  Rng rng(606);
  for (const QuorumSystem* system : systems) {
    const RandomOrderProbe strategy(*system);
    const std::size_t n = system->universe_size();
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      const Coloring coloring(n, ElementSet::from_mask(n, mask));
      ProbeSession session(coloring);
      const Witness witness = strategy.run(session, rng);
      ASSERT_EQ(
          validate_witness(*system, coloring, witness, session.probed()), "")
          << system->name() << " mask=" << mask;
    }
  }
}

TEST(RandomOrder, MatchesRProbeMajOnMajority) {
  // On Maj, random order IS R_Probe_Maj: its expectation on a coloring
  // with r reds must equal the urn formula.
  const MajoritySystem maj(9);
  const RandomOrderProbe strategy(maj);
  Rng rng(7);
  EstimatorOptions options;
  options.trials = 60000;
  const Coloring coloring(9, ElementSet(9, {0, 1, 2, 3}));  // 5 reds
  const auto stats =
      expected_probes_on(maj, strategy, coloring, options, rng);
  const double exact = r_probe_maj_expectation(maj, coloring);
  EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth());
}

TEST(RandomOrder, LosesToStructuredAlgorithmsOnWalls) {
  // On a wide wall the universal baseline pays ~n/2 while Probe_CW pays
  // O(k): the gap the paper's Section 3.2 is about.
  const CrumblingWall wall({1, 20, 20});
  const RandomOrderProbe random_order(wall);
  Rng rng(8);
  EstimatorOptions options;
  options.trials = 4000;
  const auto stats = estimate_ppc(wall, random_order, 0.5, options, rng);
  EXPECT_GT(stats.mean(), 8.0);  // far above Probe_CW's <= 5
}

TEST(RandomOrder, NeverProbesMoreThanN) {
  const TreeSystem tree(3);
  const RandomOrderProbe strategy(tree);
  Rng rng(9);
  for (int t = 0; t < 100; ++t) {
    const Coloring coloring = sample_iid_coloring(15, 0.5, rng);
    ProbeSession session(coloring);
    strategy.run(session, rng);
    EXPECT_LE(session.probe_count(), 15u);
  }
}

}  // namespace
}  // namespace qps
