// Zero-allocation contract of the Monte-Carlo hot path.
//
// This binary replaces the global allocation functions with counting
// forwarders (which is why it is its own test executable) and asserts that
// a steady-state trial -- batched word-level coloring sampling, workspace
// reset, scratch-aware strategy run -- performs exactly zero heap
// allocations for every strategy x family at n <= 64.  The first trials of
// a workspace may allocate (buffers grow to their high-water mark); the
// measured window starts after a warmup.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <vector>

#include "core/algorithms/greedy.h"
#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_maj.h"
#include "core/algorithms/probe_tree.h"
#include "core/algorithms/random_order.h"
#include "core/engine/batch_kernel.h"
#include "core/engine/trial_workspace.h"
#include "core/obs/metrics.h"
#include "util/stats.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"

namespace {
std::atomic<std::size_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  ++g_allocations;
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* counted_aligned_alloc(std::size_t size, std::size_t alignment) {
  ++g_allocations;
  void* p = nullptr;
  if (posix_memalign(&p, alignment, size == 0 ? alignment : size) != 0)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++g_allocations;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new(std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return counted_aligned_alloc(size, static_cast<std::size_t>(alignment));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace qps {
namespace {

/// Runs `trials` hot-path trials and returns the allocations performed
/// after the warmup window.
std::size_t allocations_in_steady_state(const QuorumSystem& system,
                                        const ProbeStrategy& strategy,
                                        double p, std::size_t trials) {
  const std::size_t n = system.universe_size();
  TrialWorkspace ws(n);
  Rng rng(20010826);
  constexpr std::size_t kBatch = 256;
  std::uint64_t* masks = ws.coloring_masks(kBatch);

  const auto run_batch = [&] {
    sample_iid_coloring_words(masks, kBatch, n, p, rng);
    for (std::size_t i = 0; i < kBatch; ++i) {
      ws.coloring().assign_greens_mask(masks[i]);
      ProbeSession& session = ws.begin_trial(ws.coloring());
      const Witness witness = strategy.run_with(ws, session, rng);
      if (witness.elements.empty()) std::abort();  // keep the result alive
    }
  };

  run_batch();  // warmup: buffers grow to their high-water mark here
  const std::size_t before = g_allocations.load();
  for (std::size_t done = 0; done < trials; done += kBatch) run_batch();
  return g_allocations.load() - before;
}

TEST(ZeroAllocationHotPath, EveryStrategyAndFamilyIsAllocationFree) {
  const MajoritySystem maj63(63);
  const MajoritySystem maj7(7);
  const TreeSystem tree5(5);   // n = 63
  const HQSystem hqs3(3);      // n = 27
  const CrumblingWall cw10 = CrumblingWall::triang(10);  // n = 55

  const ProbeMaj probe_maj(maj63);
  const RProbeMaj r_probe_maj(maj63);
  const RandomOrderProbe random_order(maj7);
  const GreedyCandidateProbe greedy(maj7);
  const ProbeTree probe_tree(tree5);
  const RProbeTree r_probe_tree(tree5);
  const ProbeHQS probe_hqs(hqs3);
  const RProbeHQS r_probe_hqs(hqs3);
  const IRProbeHQS ir_probe_hqs(hqs3);
  const ProbeCW probe_cw(cw10);
  const RProbeCW r_probe_cw(cw10);

  const struct {
    const QuorumSystem* system;
    const ProbeStrategy* strategy;
  } cases[] = {
      {&maj63, &probe_maj},   {&maj63, &r_probe_maj},
      {&maj7, &random_order}, {&maj7, &greedy},
      {&tree5, &probe_tree},  {&tree5, &r_probe_tree},
      {&hqs3, &probe_hqs},    {&hqs3, &r_probe_hqs},
      {&hqs3, &ir_probe_hqs}, {&cw10, &probe_cw},
      {&cw10, &r_probe_cw},
  };
  for (const auto& c : cases) {
    const std::size_t allocations =
        allocations_in_steady_state(*c.system, *c.strategy, 0.5, 2048);
    EXPECT_EQ(allocations, 0u)
        << c.strategy->name() << " on " << c.system->name();
  }
}

TEST(ZeroAllocationHotPath, LegacyRProbeCwEntryPointIsClean) {
  // R_Probe_CW's per-call row scratch lives on the stack for n <= 64, so
  // even the legacy run() entry point allocates nothing per trial.  (The
  // greedy baseline's legacy run() deliberately allocates per call now:
  // its reusable scratch is TrialWorkspace-owned, reachable only through
  // run_with -- no hidden thread-local state.)
  const CrumblingWall cw10 = CrumblingWall::triang(10);
  const RProbeCW r_probe_cw(cw10);
  Rng rng(7);

  const auto steady_allocations = [&](const QuorumSystem& system,
                                      const ProbeStrategy& strategy) {
    const std::size_t n = system.universe_size();
    Coloring coloring(n);
    ProbeSession session(coloring);
    const auto trial = [&] {
      coloring.assign_greens_mask(sample_iid_coloring_mask(n, 0.5, rng));
      session.reset(coloring);
      (void)strategy.run(session, rng);
    };
    for (int i = 0; i < 16; ++i) trial();  // warmup
    const std::size_t before = g_allocations.load();
    for (int i = 0; i < 512; ++i) trial();
    return g_allocations.load() - before;
  };
  EXPECT_EQ(steady_allocations(cw10, r_probe_cw), 0u);
}

TEST(ZeroAllocationHotPath, BitSlicedBatchKernelIsAllocationFree) {
  // The bit-sliced batch path: sample a batch of masks, load super-blocks
  // into the workspace's BatchTrialBlock, run the strategy's batch kernel,
  // gather per-lane probe counts.  Zero allocations in the steady state for
  // every batch-eligible strategy, including the randomized-order kernels
  // (their pre-drawn permutations and plan masks live in block-owned
  // buffers that grow once during warmup).
  const MajoritySystem maj63(63);
  const TreeSystem tree5(5);   // n = 63
  const HQSystem hqs3(3);      // n = 27
  const CrumblingWall cw10 = CrumblingWall::triang(10);  // n = 55

  const ProbeMaj probe_maj(maj63);
  const RProbeMaj r_probe_maj(maj63);
  const RandomOrderProbe random_order(maj63);
  const ProbeTree probe_tree(tree5);
  const RProbeTree r_probe_tree(tree5);
  const ProbeHQS probe_hqs(hqs3);
  const RProbeHQS r_probe_hqs(hqs3);
  const ProbeCW probe_cw(cw10);
  const RProbeCW r_probe_cw(cw10);

  const struct {
    const QuorumSystem* system;
    const ProbeStrategy* strategy;
  } cases[] = {
      {&maj63, &probe_maj}, {&maj63, &r_probe_maj}, {&maj63, &random_order},
      {&tree5, &probe_tree}, {&tree5, &r_probe_tree},
      {&hqs3, &probe_hqs},   {&hqs3, &r_probe_hqs},
      {&cw10, &probe_cw},    {&cw10, &r_probe_cw},
  };
  const SimdKernels& kernels = resolve_simd_kernels(SimdIsa::kAuto);
  for (const auto& c : cases) {
    const std::size_t n = c.system->universe_size();
    ASSERT_TRUE(c.strategy->supports_batch(n)) << c.strategy->name();
    TrialWorkspace ws(n);
    Rng rng(20010826);
    constexpr std::size_t kBatch = 256;
    std::uint64_t* masks = ws.coloring_masks(kBatch);
    std::uint64_t checksum = 0;

    const auto run_batch = [&] {
      sample_iid_coloring_words(masks, kBatch, n, 0.5, rng);
      BatchTrialBlock& block = ws.batch_block();
      block.configure(kernels, n);  // no-op after the first call
      for (std::size_t off = 0; off < kBatch;
           off += block.lane_capacity()) {
        const std::size_t lanes =
            std::min(block.lane_capacity(), kBatch - off);
        block.load(masks + off, lanes);
        c.strategy->run_batch(block, rng);
        for (std::size_t lane = 0; lane < lanes; ++lane)
          checksum += block.probe_count(lane);
      }
    };

    run_batch();  // warmup
    const std::size_t before = g_allocations.load();
    for (int i = 0; i < 8; ++i) run_batch();
    EXPECT_EQ(g_allocations.load() - before, 0u)
        << c.strategy->name() << " on " << c.system->name();
    if (checksum == 0) std::abort();  // keep the counts alive
  }
}

TEST(ZeroAllocationHotPath, MetricsEnabledHotPathStaysAllocationFree) {
  // The observability layer rides the hot path in default builds
  // (QPS_OBS_METRICS=1): counters, histograms, and the instrumented
  // bit-sliced kernel must all hold the zero-allocations-per-trial
  // contract in the steady state.  Registration (first use of a name) may
  // allocate; that happens in the warmup.
  const MajoritySystem maj63(63);
  const ProbeMaj probe_maj(maj63);
  const std::size_t n = maj63.universe_size();
  TrialWorkspace ws(n);
  Rng rng(20010826);
  constexpr std::size_t kBatch = 256;
  std::uint64_t* masks = ws.coloring_masks(kBatch);

  obs::Counter& counter =
      obs::MetricsRegistry::instance().counter("test/alloc_hotpath_counter");
  obs::Histogram& histogram = obs::MetricsRegistry::instance().histogram(
      "test/alloc_hotpath_histogram");
  RunningStats stats;

  ws.batch_block().configure(resolve_simd_kernels(SimdIsa::kAuto), n);
  const auto run_batch = [&] {
    sample_iid_coloring_words(masks, kBatch, n, 0.5, rng);
    run_bit_sliced_trials(probe_maj, ws.batch_block(), masks, kBatch, n, rng,
                          stats);
    counter.add(kBatch);
    histogram.record(static_cast<std::uint64_t>(stats.count()));
  };

  run_batch();  // warmup: buffer growth and instrument registration
  const std::size_t before = g_allocations.load();
  for (int i = 0; i < 8; ++i) run_batch();
  EXPECT_EQ(g_allocations.load() - before, 0u);
  if (stats.count() == 0) std::abort();  // keep the results alive
}

TEST(ZeroAllocationHotPath, TheAllocationCounterItselfWorks) {
  const std::size_t before = g_allocations.load();
  auto p = std::make_unique<std::vector<int>>(100);
  p->push_back(1);
  EXPECT_GT(g_allocations.load(), before);
}

}  // namespace
}  // namespace qps
