// Exact randomized probe complexity via strategy enumeration + the game
// solver; reproduces PCR(Maj3) = 8/3 from the worked example.
#include "core/exact/pcr_exact.h"

#include <gtest/gtest.h>

#include "core/exact/pc_exact.h"
#include "core/exact/ppc_exact.h"
#include "quorum/explicit_system.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(PcrExact, Maj3WorkedExample) {
  const PcrResult result = pcr_exact(MajoritySystem(3));
  EXPECT_NEAR(result.value, 8.0 / 3.0, 1e-9);
  EXPECT_GT(result.strategy_count, 0u);
}

TEST(PcrExact, Maj3HardDistributionIsUniformOverBalancedColorings) {
  // The adversary's optimal mix is supported on the colorings with
  // exactly 2 reds (and possibly 2 greens -- by symmetry 1-green inputs).
  const PcrResult result = pcr_exact(MajoritySystem(3));
  double weight_on_balanced = 0.0;
  for (std::size_t mask = 0; mask < 8; ++mask) {
    const int greens = __builtin_popcount(static_cast<unsigned>(mask));
    if (greens == 1) weight_on_balanced += result.hard_distribution[mask];
  }
  EXPECT_GT(weight_on_balanced, 0.99);
}

TEST(PcrExact, SingletonIsOne) {
  const PcrResult result = pcr_exact(MajoritySystem(1));
  EXPECT_NEAR(result.value, 1.0, 1e-12);
}

TEST(PcrExact, OrderedBetweenPpcAndPc) {
  // PPC_{1/2}(S) <= PCR(S) <= PC(S): randomization beats determinism on
  // the worst case, and a fixed input distribution is weaker than the
  // adversary's best mix.
  const MajoritySystem maj3(3);
  const WheelSystem wheel4(4);
  const TreeSystem tree1(1);
  for (const QuorumSystem* s :
       std::vector<const QuorumSystem*>{&maj3, &wheel4, &tree1}) {
    const double pcr = pcr_exact(*s).value;
    EXPECT_LE(ppc_exact(*s, 0.5), pcr + 1e-9) << s->name();
    EXPECT_LE(pcr, static_cast<double>(pc_exact(*s)) + 1e-9) << s->name();
  }
}

TEST(PcrExact, Theorem41LowerBoundMaxQuorumSize) {
  // PCR(S) >= m, the maximal quorum size.
  const WheelSystem wheel(4);   // max quorum = rim, size 3
  EXPECT_GE(pcr_exact(wheel).value, 3.0 - 1e-9);
  const MajoritySystem maj(3);  // max quorum size 2
  EXPECT_GE(pcr_exact(maj).value, 2.0 - 1e-9);
}

TEST(PcrExact, TreeHeight1MatchesMaj3) {
  // Tree of height 1 has the same quorums as Maj3.
  EXPECT_NEAR(pcr_exact(TreeSystem(1)).value, 8.0 / 3.0, 1e-9);
}

TEST(PcrExact, DictatorIsOneProbe) {
  const ExplicitSystem dictator(3, {ElementSet(3, {0})});
  EXPECT_NEAR(pcr_exact(dictator).value, 1.0, 1e-9);
}

TEST(PcrExact, Wheel4Value) {
  // Wheel on 4 elements: hub + 3 rim.  Sanity: value in [3, 4] by Thm 4.1
  // and evasiveness.
  const double value = pcr_exact(WheelSystem(4)).value;
  EXPECT_GE(value, 3.0 - 1e-9);
  EXPECT_LE(value, 4.0 + 1e-9);
}

TEST(PcrExact, RejectsLargeUniverse) {
  EXPECT_THROW(pcr_exact(MajoritySystem(7)), std::invalid_argument);
}

}  // namespace
}  // namespace qps
