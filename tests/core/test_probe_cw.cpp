// Probe_CW (Fig. 5, Thm 3.3) and R_Probe_CW (Thm 4.4).
#include "core/algorithms/probe_cw.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/estimator.h"
#include "core/expectation.h"
#include "core/formulas.h"

namespace qps {
namespace {

TEST(ProbeCwTest, AllGreenWallProbesOnePerRow) {
  const CrumblingWall wall({1, 3, 4});
  const ProbeCW strategy(wall);
  Rng rng(1);
  const Coloring c(8, ElementSet::full(8));
  ProbeSession s(c);
  const Witness w = strategy.run(s, rng);
  EXPECT_EQ(w.color, Color::kGreen);
  EXPECT_EQ(s.probe_count(), 3u);  // one hit per row
}

TEST(ProbeCwTest, AllRedWallProbesOnePerRow) {
  const CrumblingWall wall({1, 3, 4});
  const ProbeCW strategy(wall);
  Rng rng(1);
  const Coloring c(8);
  ProbeSession s(c);
  const Witness w = strategy.run(s, rng);
  EXPECT_EQ(w.color, Color::kRed);
  EXPECT_EQ(s.probe_count(), 3u);
}

TEST(ProbeCwTest, ModeFlipScansWholeRow) {
  // Top row green; second row entirely red: the row is exhausted, the mode
  // flips, and the red row becomes the witness prefix.
  const CrumblingWall wall({1, 2, 2});
  const ProbeCW strategy(wall);
  Rng rng(1);
  // Element 0 green; row {1,2} red; row {3,4}: 3 red.
  const Coloring c(5, ElementSet(5, {0, 4}));
  ProbeSession s(c);
  const Witness w = strategy.run(s, rng);
  EXPECT_EQ(w.color, Color::kRed);
  // Probes: 1 (top) + 2 (row 1 exhausted) + 1 (element 3 red, matches) = 4.
  EXPECT_EQ(s.probe_count(), 4u);
  EXPECT_EQ(w.elements, ElementSet(5, {1, 2, 3}));
}

TEST(ProbeCwTest, AverageMatchesExactFormula) {
  Rng rng(12);
  EstimatorOptions options;
  options.trials = 60000;
  const std::vector<std::vector<std::size_t>> walls = {
      {1, 2, 3}, {1, 4, 4, 4}, {1, 2, 2, 2, 2}};
  for (const auto& widths : walls) {
    const CrumblingWall wall(widths);
    const ProbeCW strategy(wall);
    for (double p : {0.5, 0.25}) {
      const auto stats = estimate_ppc(wall, strategy, p, options, rng);
      const double exact = probe_cw_expected(widths, p);
      EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth())
          << wall.name() << " p=" << p;
    }
  }
}

TEST(ProbeCwTest, Theorem33BoundHolds) {
  // E[probes] <= 2k - 1 for every p and wall shape.
  const std::vector<std::vector<std::size_t>> walls = {
      {1}, {1, 2}, {1, 9}, {1, 2, 3}, {1, 5, 5, 5}, {1, 2, 2, 2, 2, 2}};
  for (const auto& widths : walls)
    for (double p : {0.05, 0.2, 0.5, 0.8, 0.95})
      EXPECT_LE(probe_cw_expected(widths, p),
                probe_cw_bound(widths.size()) + 1e-9)
          << "k=" << widths.size() << " p=" << p;
}

TEST(ProbeCwTest, CostIndependentOfRowWidth) {
  // The paper's headline: widening rows does not increase Probe_CW's cost
  // beyond 2k-1 (only the number of rows matters).  Wide rows approach the
  // untruncated geometric cost 2 per row exactly.
  const double narrow = probe_cw_expected({1, 2, 2}, 0.5);
  const double wide = probe_cw_expected({1, 50, 50}, 0.5);
  EXPECT_NEAR(wide, 5.0, 1e-6);  // 1 + 2 + 2
  EXPECT_LT(narrow, wide);       // truncation at the row end only helps
  EXPECT_LE(wide, probe_cw_bound(3) + 1e-9);
}

TEST(ProbeCwTest, WheelCorollary34) {
  // PPC(Probe_CW, Wheel) <= 3 for any p and any wheel size.
  for (std::size_t n : {3u, 10u, 100u})
    for (double p : {0.1, 0.5, 0.9})
      EXPECT_LE(probe_cw_expected({1, n - 1}, p), 3.0 + 1e-9);
}

TEST(RProbeCwTest, ExpectationEvaluatorMatchesMonteCarlo) {
  const CrumblingWall wall({1, 3, 4});
  const RProbeCW strategy(wall);
  Rng rng(5);
  EstimatorOptions options;
  options.trials = 60000;
  // A mixed coloring: greens {0, 2, 5}.
  const Coloring c(8, ElementSet(8, {0, 2, 5}));
  const auto stats = expected_probes_on(wall, strategy, c, options, rng);
  const double exact = r_probe_cw_expectation(wall, c);
  EXPECT_NEAR(stats.mean(), exact, 4 * stats.ci95_halfwidth());
}

TEST(RProbeCwTest, MonochromaticBottomRowStopsImmediately) {
  const CrumblingWall wall({1, 2, 3});
  // Bottom row {3,4,5} all green: witness after scanning just that row.
  const Coloring c(6, ElementSet(6, {3, 4, 5}));
  EXPECT_DOUBLE_EQ(r_probe_cw_expectation(wall, c), 3.0);
}

TEST(RProbeCwTest, Theorem44BoundHoldsOnHardInputs) {
  // The bound max_j { n_j + sum_{i>j} ((n_i+1)/2 + 1/n_i) } dominates the
  // exact expectation on every coloring (exhaustive over small walls).
  const CrumblingWall wall({1, 2, 3});
  const double bound = r_probe_cw_bound({1, 2, 3});
  const std::uint64_t limit = 1ULL << 6;
  double worst = 0;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const Coloring c(6, ElementSet::from_mask(6, mask));
    worst = std::max(worst, r_probe_cw_expectation(wall, c));
  }
  EXPECT_LE(worst, bound + 1e-9);
  // And the bound is nearly tight: within 1 probe of the true worst case.
  EXPECT_GT(worst, bound - 1.0);
}

TEST(RProbeCwTest, WheelWorstCaseIsNMinus1) {
  // Cor. 4.5(2): PCR(R_Probe_CW, Wheel) = n - 1.
  const std::size_t n = 8;
  const CrumblingWall wheel = CrumblingWall::wheel(n);
  const std::uint64_t limit = 1ULL << n;
  double worst = 0;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const Coloring c(n, ElementSet::from_mask(n, mask));
    worst = std::max(worst, r_probe_cw_expectation(wheel, c));
  }
  EXPECT_NEAR(worst, static_cast<double>(n) - 1.0, 1e-9);
}

TEST(RProbeCwTest, TriangBoundCorollary45) {
  // Cor. 4.5(1): PCR(R_Probe_CW, Triang) <= (n+k)/2 + log k.
  for (std::size_t k : {3u, 5u, 8u}) {
    std::vector<std::size_t> widths(k);
    for (std::size_t i = 0; i < k; ++i) widths[i] = i + 1;
    const double n = static_cast<double>(k * (k + 1) / 2);
    const double bound = r_probe_cw_bound(widths);
    EXPECT_LE(bound,
              (n + static_cast<double>(k)) / 2.0 + std::log2(static_cast<double>(k)) + 1.0)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace qps
