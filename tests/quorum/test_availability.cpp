// Availability F_p(S): closed forms vs exhaustive enumeration, and the
// Peleg-Wool facts 2.3(1) and 2.3(2) used throughout Section 3.
#include "quorum/availability.h"

#include <gtest/gtest.h>

#include <vector>

#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

const double kProbes[] = {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95};

TEST(Availability, MajorityClosedFormMatchesEnumeration) {
  for (std::size_t n : {1u, 3u, 5u, 7u, 9u})
    for (double p : kProbes)
      EXPECT_NEAR(majority_failure_probability(n, p),
                  failure_probability_exact(MajoritySystem(n), p), 1e-12)
          << "n=" << n << " p=" << p;
}

TEST(Availability, CwClosedFormMatchesEnumeration) {
  const std::vector<std::vector<std::size_t>> walls = {
      {1}, {1, 2}, {1, 3}, {1, 2, 3}, {1, 3, 2}, {1, 2, 2, 2}, {1, 4, 3}};
  for (const auto& widths : walls)
    for (double p : kProbes)
      EXPECT_NEAR(cw_failure_probability(widths, p),
                  failure_probability_exact(CrumblingWall(widths), p), 1e-12)
          << "p=" << p;
}

TEST(Availability, WheelMatchesItsWallForm) {
  for (std::size_t n : {3u, 5u, 8u})
    for (double p : kProbes)
      EXPECT_NEAR(cw_failure_probability({1, n - 1}, p),
                  failure_probability_exact(WheelSystem(n), p), 1e-12);
}

TEST(Availability, TreeClosedFormMatchesEnumeration) {
  for (std::size_t h : {0u, 1u, 2u})
    for (double p : kProbes)
      EXPECT_NEAR(tree_failure_probability(h, p),
                  failure_probability_exact(TreeSystem(h), p), 1e-12)
          << "h=" << h << " p=" << p;
}

TEST(Availability, HqsClosedFormMatchesEnumeration) {
  for (std::size_t h : {0u, 1u, 2u})
    for (double p : kProbes)
      EXPECT_NEAR(hqs_failure_probability(h, p),
                  failure_probability_exact(HQSystem(h), p), 1e-12)
          << "h=" << h << " p=" << p;
}

TEST(Availability, Fact232SelfDualComplement) {
  // F_p + F_{1-p} = 1 for every ND coterie.
  for (double p : kProbes) {
    EXPECT_NEAR(majority_failure_probability(9, p) +
                    majority_failure_probability(9, 1 - p),
                1.0, 1e-12);
    EXPECT_NEAR(cw_failure_probability({1, 2, 3}, p) +
                    cw_failure_probability({1, 2, 3}, 1 - p),
                1.0, 1e-12);
    EXPECT_NEAR(tree_failure_probability(3, p) +
                    tree_failure_probability(3, 1 - p),
                1.0, 1e-12);
    EXPECT_NEAR(hqs_failure_probability(3, p) +
                    hqs_failure_probability(3, 1 - p),
                1.0, 1e-12);
  }
}

TEST(Availability, HalfIsExactlyHalfForNdCoteries) {
  // Specialization of Fact 2.3(2) at p = 1/2.
  EXPECT_DOUBLE_EQ(majority_failure_probability(7, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(cw_failure_probability({1, 2, 3}, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(tree_failure_probability(4, 0.5), 0.5);
  EXPECT_DOUBLE_EQ(hqs_failure_probability(5, 0.5), 0.5);
}

TEST(Availability, Fact231FailureBelowP) {
  // F_p <= p for p <= 1/2 (ND coteries).
  for (double p : {0.05, 0.2, 0.35, 0.5}) {
    EXPECT_LE(majority_failure_probability(9, p), p + 1e-12);
    EXPECT_LE(cw_failure_probability({1, 2, 3, 4}, p), p + 1e-12);
    EXPECT_LE(tree_failure_probability(3, p), p + 1e-12);
    EXPECT_LE(hqs_failure_probability(3, p), p + 1e-12);
  }
}

TEST(Availability, MajorityImprovesWithNForGoodP) {
  // Condorcet: for p < 1/2 the majority failure probability drops with n.
  EXPECT_GT(majority_failure_probability(3, 0.3),
            majority_failure_probability(9, 0.3));
  EXPECT_GT(majority_failure_probability(9, 0.3),
            majority_failure_probability(21, 0.3));
}

TEST(Availability, TreeBoundFromProp36Holds) {
  // F_p(Tree_h) <= (p + 1/2)^h for p <= 1/2 (used by Prop. 3.6).
  for (std::size_t h : {1u, 2u, 4u, 8u})
    for (double p : {0.1, 0.3, 0.5})
      EXPECT_LE(tree_failure_probability(h, p), tree_failure_bound(h, p) + 1e-12)
          << "h=" << h << " p=" << p;
}

TEST(Availability, HqsBoundFromThm38Holds) {
  // F_p(HQS_h) <= p (3p - 2p^2)^h (used by Thm 3.8).
  for (std::size_t h : {1u, 2u, 4u, 8u})
    for (double p : {0.1, 0.3, 0.5})
      EXPECT_LE(hqs_failure_probability(h, p), hqs_failure_bound(h, p) + 1e-12)
          << "h=" << h << " p=" << p;
}

TEST(Availability, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(majority_failure_probability(5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(majority_failure_probability(5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(tree_failure_probability(3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(tree_failure_probability(3, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(cw_failure_probability({1, 2, 3}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(hqs_failure_probability(2, 1.0), 1.0);
}

TEST(Availability, HqsFixedPointAtHalf) {
  // 1/2 is a fixed point of f -> 3f^2 - 2f^3, so F stays 1/2 at any height.
  for (std::size_t h = 0; h <= 12; ++h)
    EXPECT_DOUBLE_EQ(hqs_failure_probability(h, 0.5), 0.5);
}

TEST(Availability, RejectsBadProbability) {
  EXPECT_THROW(failure_probability_exact(MajoritySystem(3), 1.5),
               std::invalid_argument);
  EXPECT_THROW(cw_failure_probability({1, 2}, -0.1), std::invalid_argument);
  EXPECT_THROW(tree_failure_bound(2, 0.7), std::invalid_argument);
}

}  // namespace
}  // namespace qps
