// Structural properties of Section 2.1: coterie checks, self-duality,
// nondomination, domination, and Lemma 2.1.
#include "quorum/properties.h"

#include <gtest/gtest.h>

#include "quorum/crumbling_wall.h"
#include "quorum/grid_system.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(Properties, PaperSystemsAreNdCoteries) {
  EXPECT_TRUE(is_nondominated(MajoritySystem(5)));
  EXPECT_TRUE(is_nondominated(MajoritySystem(7)));
  EXPECT_TRUE(is_nondominated(WheelSystem(5)));
  EXPECT_TRUE(is_nondominated(WheelSystem(6)));
  EXPECT_TRUE(is_nondominated(CrumblingWall({1, 2, 3})));
  EXPECT_TRUE(is_nondominated(CrumblingWall({1, 3, 2})));
  EXPECT_TRUE(is_nondominated(CrumblingWall::triang(3)));
  EXPECT_TRUE(is_nondominated(TreeSystem(1)));
  EXPECT_TRUE(is_nondominated(TreeSystem(2)));
  EXPECT_TRUE(is_nondominated(HQSystem(1)));
  EXPECT_TRUE(is_nondominated(HQSystem(2)));
}

TEST(Properties, GridIsACoterieButDominated) {
  const GridSystem grid(2, 2);
  EXPECT_TRUE(is_coterie(grid));
  // The 2x2 grid (quorums of size 3 out of 4 elements) is not self-dual:
  // e.g. the diagonal {0,3} intersects every row+column quorum but
  // contains none.
  EXPECT_FALSE(is_self_dual(grid));
  EXPECT_FALSE(is_nondominated(grid));
}

TEST(Properties, NonNdWallIsDominated) {
  // A wall whose top row is wider than 1 is a coterie but not ND.
  const CrumblingWall wall({2, 2}, /*require_nd=*/false);
  EXPECT_TRUE(is_coterie(wall));
  EXPECT_FALSE(is_nondominated(wall));
}

TEST(Properties, SelfDualityEquivalentToComplementaryWitnesses) {
  // For an ND coterie, every coloring has exactly one monochromatic
  // quorum color: greens contain a quorum XOR reds contain a quorum.
  const MajoritySystem maj(5);
  const std::uint64_t limit = 1ULL << 5;
  for (std::uint64_t greens = 0; greens < limit; ++greens) {
    const bool green_quorum =
        maj.contains_quorum(ElementSet::from_mask(5, greens));
    const bool red_quorum =
        maj.contains_quorum(ElementSet::from_mask(5, ~greens & (limit - 1)));
    EXPECT_NE(green_quorum, red_quorum) << "greens=" << greens;
  }
}

TEST(Properties, Lemma21TransversalsContainQuorums) {
  EXPECT_TRUE(every_transversal_contains_quorum(MajoritySystem(5)));
  EXPECT_TRUE(every_transversal_contains_quorum(WheelSystem(5)));
  EXPECT_TRUE(every_transversal_contains_quorum(CrumblingWall({1, 2, 3})));
  EXPECT_TRUE(every_transversal_contains_quorum(TreeSystem(2)));
  EXPECT_TRUE(every_transversal_contains_quorum(HQSystem(2)));
  // Fails for dominated systems: the grid has transversals without quorums.
  EXPECT_FALSE(every_transversal_contains_quorum(GridSystem(2, 2)));
}

TEST(Properties, DominationExample) {
  // {{1}} dominates {{1,2},{1,3}}: every quorum of the latter contains {1}.
  const ExplicitSystem dominator(3, {ElementSet(3, {0})});
  const ExplicitSystem dominated(
      3, {ElementSet(3, {0, 1}), ElementSet(3, {0, 2})});
  EXPECT_TRUE(dominates(dominator, dominated));
  EXPECT_FALSE(dominates(dominated, dominator));
}

TEST(Properties, NoSelfDomination) {
  const ExplicitSystem maj3(
      3, {ElementSet(3, {0, 1}), ElementSet(3, {1, 2}), ElementSet(3, {0, 2})});
  EXPECT_FALSE(dominates(maj3, maj3));
}

TEST(Properties, NdCoterieIsNotDominatedByAnyCoterie) {
  // Check against a handful of candidate dominators over U = {1,2,3}.
  const ExplicitSystem maj3(
      3, {ElementSet(3, {0, 1}), ElementSet(3, {1, 2}), ElementSet(3, {0, 2})});
  const ExplicitSystem single0(3, {ElementSet(3, {0})});
  const ExplicitSystem single1(3, {ElementSet(3, {1})});
  EXPECT_FALSE(dominates(single0, maj3) && true);  // {1} !>= {2,3}
  EXPECT_FALSE(dominates(single1, maj3));
}

TEST(Properties, IntersectionAndMinimalityIndividually) {
  const ExplicitSystem good(
      3, {ElementSet(3, {0, 1}), ElementSet(3, {1, 2})});
  EXPECT_TRUE(has_intersection_property(good));
  EXPECT_TRUE(has_minimality_property(good));
  const ExplicitSystem redundant(
      3, {ElementSet(3, {0}), ElementSet(3, {0, 1})}, "NonMinimal",
      /*require_coterie=*/false);
  EXPECT_TRUE(has_intersection_property(redundant));
  EXPECT_FALSE(has_minimality_property(redundant));
}

}  // namespace
}  // namespace qps
