#include "quorum/grid_system.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace qps {
namespace {

TEST(Grid, Layout) {
  const GridSystem grid(2, 3);
  EXPECT_EQ(grid.universe_size(), 6u);
  EXPECT_EQ(grid.at(0, 0), 0u);
  EXPECT_EQ(grid.at(1, 2), 5u);
  EXPECT_THROW(grid.at(2, 0), std::invalid_argument);
}

TEST(Grid, QuorumIsRowPlusColumn) {
  const GridSystem grid(2, 2);
  // Row 0 = {0,1}, column 0 = {0,2} -> quorum {0,1,2}.
  EXPECT_TRUE(grid.is_quorum(ElementSet(4, {0, 1, 2})));
  EXPECT_TRUE(grid.is_quorum(ElementSet(4, {0, 1, 3})));
  EXPECT_FALSE(grid.contains_quorum(ElementSet(4, {0, 1})));  // row only
  EXPECT_FALSE(grid.contains_quorum(ElementSet(4, {0, 3})));  // diagonal
}

TEST(Grid, QuorumSize) {
  const GridSystem grid(3, 4);
  EXPECT_EQ(grid.min_quorum_size(), 6u);
  EXPECT_EQ(grid.max_quorum_size(), 6u);
}

TEST(Grid, EnumerationMatchesBruteForce) {
  const GridSystem grid(2, 2);
  auto fast = grid.enumerate_quorums();
  auto brute = grid.QuorumSystem::enumerate_quorums();
  std::vector<std::uint64_t> a, b;
  for (const auto& q : fast) a.push_back(q.to_mask());
  for (const auto& q : brute) b.push_back(q.to_mask());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Grid, PairwiseIntersection) {
  const GridSystem grid(3, 3);
  const auto quorums = grid.enumerate_quorums();
  for (std::size_t i = 0; i < quorums.size(); ++i)
    for (std::size_t j = i + 1; j < quorums.size(); ++j)
      EXPECT_TRUE(quorums[i].intersects(quorums[j]));
}

}  // namespace
}  // namespace qps
