#include "quorum/hqs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace qps {
namespace {

TEST(HQS, UniverseSizes) {
  EXPECT_EQ(HQSystem(0).universe_size(), 1u);
  EXPECT_EQ(HQSystem(1).universe_size(), 3u);
  EXPECT_EQ(HQSystem(2).universe_size(), 9u);
  EXPECT_EQ(HQSystem(3).universe_size(), 27u);
}

TEST(HQS, WithUniverseValidates) {
  EXPECT_EQ(HQSystem::with_universe(9).height(), 2u);
  EXPECT_THROW(HQSystem::with_universe(10), std::invalid_argument);
}

TEST(HQS, UniformQuorumSize) {
  for (std::size_t h : {0u, 1u, 2u, 3u}) {
    const HQSystem hqs(h);
    EXPECT_EQ(hqs.quorum_size(), std::size_t{1} << h);
    EXPECT_EQ(hqs.min_quorum_size(), hqs.max_quorum_size());
  }
}

TEST(HQS, QuorumSizeIsNPowLog32) {
  // c = 2^h = n^{log_3 2} ~ n^0.63.
  const HQSystem hqs(6);
  const double n = static_cast<double>(hqs.universe_size());
  const double c = static_cast<double>(hqs.quorum_size());
  EXPECT_NEAR(std::log(c) / std::log(n), std::log(2.0) / std::log(3.0), 1e-12);
}

TEST(HQS, HeightOneIsMaj3) {
  const HQSystem hqs(1);
  EXPECT_TRUE(hqs.is_quorum(ElementSet(3, {0, 1})));
  EXPECT_TRUE(hqs.is_quorum(ElementSet(3, {1, 2})));
  EXPECT_TRUE(hqs.is_quorum(ElementSet(3, {0, 2})));
  EXPECT_FALSE(hqs.contains_quorum(ElementSet(3, {1})));
}

TEST(HQS, Figure3Quorum) {
  // Fig. 3 shades the quorum {1,2,5,6} (1-based) of the height-2 HQS:
  // leaves 0,1 make the first gate true, leaves 4,5 the second.
  const HQSystem hqs(2);
  EXPECT_TRUE(hqs.is_quorum(ElementSet(9, {0, 1, 4, 5})));
  // Two leaves in the same subtree only make one gate true.
  EXPECT_FALSE(hqs.contains_quorum(ElementSet(9, {0, 1, 4})));
  // Four leaves spread across three subtrees with only one pair agreeing
  // per gate: {0,3,6} has one leaf per gate -- no gate fires.
  EXPECT_FALSE(hqs.contains_quorum(ElementSet(9, {0, 3, 6})));
}

TEST(HQS, MintermCount) {
  // m(h) counts minterms: m(0) = 1; a gate minterm picks 2 of 3 children,
  // so m(h) = 3 m(h-1)^2: m(1) = 3, m(2) = 27.
  EXPECT_EQ(HQSystem(1).enumerate_quorums().size(), 3u);
  EXPECT_EQ(HQSystem(2).enumerate_quorums().size(), 27u);
}

TEST(HQS, AllMintermsHaveUniformSize) {
  const HQSystem hqs(2);
  for (const auto& q : hqs.enumerate_quorums())
    EXPECT_EQ(q.count(), hqs.quorum_size());
}

TEST(HQS, ContainsQuorumMonotone) {
  const HQSystem hqs(2);
  const std::uint64_t limit = 1ULL << 9;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!hqs.contains_quorum(ElementSet::from_mask(9, mask))) continue;
    for (std::size_t e = 0; e < 9; ++e)
      EXPECT_TRUE(
          hqs.contains_quorum(ElementSet::from_mask(9, mask | (1ULL << e))));
  }
}

TEST(HQS, SubtreeSpan) {
  const HQSystem hqs(3);
  EXPECT_EQ(hqs.subtree_span(0), 1u);
  EXPECT_EQ(hqs.subtree_span(2), 9u);
  EXPECT_THROW(hqs.subtree_span(4), std::invalid_argument);
}

TEST(HQS, LargeEvaluationScales) {
  const HQSystem hqs(9);  // n = 19683
  EXPECT_TRUE(hqs.contains_quorum(ElementSet::full(hqs.universe_size())));
  EXPECT_FALSE(hqs.contains_quorum(ElementSet(hqs.universe_size())));
}

}  // namespace
}  // namespace qps
