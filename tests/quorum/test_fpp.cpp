// Finite projective planes (Maekawa-style sqrt(n) quorums).
#include "quorum/fpp.h"

#include <gtest/gtest.h>

#include <cmath>

#include "quorum/properties.h"

namespace qps {
namespace {

TEST(Fpp, SizesMatchProjectivePlaneCounts) {
  for (std::size_t q : {2u, 3u, 5u, 7u}) {
    const FppSystem fpp(q);
    EXPECT_EQ(fpp.universe_size(), q * q + q + 1) << "q=" << q;
    EXPECT_EQ(fpp.line_count(), q * q + q + 1);
    EXPECT_EQ(fpp.min_quorum_size(), q + 1);
    EXPECT_EQ(fpp.max_quorum_size(), q + 1);
  }
}

TEST(Fpp, RejectsNonPrimeOrders) {
  EXPECT_THROW(FppSystem(1), std::invalid_argument);
  EXPECT_THROW(FppSystem(4), std::invalid_argument);  // prime powers: not yet
  EXPECT_THROW(FppSystem(6), std::invalid_argument);
}

TEST(Fpp, FanoPlaneStructure) {
  // q = 2: the Fano plane, 7 points, 7 lines of 3 points.
  const FppSystem fano(2);
  const auto lines = fano.enumerate_quorums();
  ASSERT_EQ(lines.size(), 7u);
  for (const auto& line : lines) EXPECT_EQ(line.count(), 3u);
  // Every pair of distinct lines meets in exactly one point.
  for (std::size_t i = 0; i < lines.size(); ++i)
    for (std::size_t j = i + 1; j < lines.size(); ++j)
      EXPECT_EQ((lines[i] & lines[j]).count(), 1u) << i << "," << j;
  // Every pair of points lies on exactly one common line.
  for (Element a = 0; a < 7; ++a)
    for (Element b = a + 1; b < 7; ++b) {
      int common = 0;
      for (const auto& line : lines)
        if (line.contains(a) && line.contains(b)) ++common;
      EXPECT_EQ(common, 1) << "points " << a << "," << b;
    }
}

TEST(Fpp, EveryPointLiesOnQPlus1Lines) {
  const FppSystem fpp(3);
  const auto lines = fpp.enumerate_quorums();
  for (Element point = 0; point < fpp.universe_size(); ++point) {
    std::size_t incident = 0;
    for (const auto& line : lines)
      if (line.contains(point)) ++incident;
    EXPECT_EQ(incident, 4u) << "point " << point;  // q + 1 = 4
  }
}

TEST(Fpp, FanoIsNdButOrder3IsDominated) {
  // PG(2,2) has no nontrivial blocking sets: every transversal of the
  // Fano plane contains a line, so the Fano coterie is ND.  From order 3
  // on, nontrivial blocking sets exist (e.g. the 6-point triangle in
  // PG(2,3)), which are transversals containing no line -- the coterie is
  // dominated.
  const FppSystem fano(2);
  EXPECT_TRUE(has_intersection_property(fano));
  EXPECT_TRUE(has_minimality_property(fano));
  EXPECT_TRUE(is_self_dual(fano));
  EXPECT_TRUE(is_nondominated(fano));

  const FppSystem order3(3);
  EXPECT_TRUE(has_intersection_property(order3));
  EXPECT_TRUE(has_minimality_property(order3));
  EXPECT_FALSE(is_self_dual(order3));
}

TEST(Fpp, ContainsQuorumMatchesLineContainment) {
  const FppSystem fano(2);
  const auto lines = fano.enumerate_quorums();
  for (const auto& line : lines) {
    EXPECT_TRUE(fano.contains_quorum(line));
    ElementSet broken = line;
    broken.erase(broken.first());
    EXPECT_FALSE(fano.contains_quorum(broken));
  }
  EXPECT_TRUE(fano.contains_quorum(ElementSet::full(7)));
  EXPECT_FALSE(fano.contains_quorum(ElementSet(7)));
}

TEST(Fpp, QuorumSizeIsAboutSqrtN) {
  const FppSystem fpp(7);  // n = 57, quorums of 8
  const double n = static_cast<double>(fpp.universe_size());
  const double c = static_cast<double>(fpp.min_quorum_size());
  EXPECT_NEAR(c, std::sqrt(n), 1.0);
}

}  // namespace
}  // namespace qps
