// Quorum-system composition: structure, HQS equivalence, ND closure.
#include "quorum/composite.h"

#include <gtest/gtest.h>

#include <memory>

#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/properties.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(Composite, LayoutAndSizes) {
  const CompositeSystem c = CompositeSystem::uniform(
      std::make_shared<MajoritySystem>(3), std::make_shared<MajoritySystem>(5));
  EXPECT_EQ(c.universe_size(), 15u);
  EXPECT_EQ(c.slot_count(), 3u);
  EXPECT_EQ(c.slot_begin(1), 5u);
  EXPECT_EQ(c.slot_end(2), 15u);
  // Quorum = 2 slots x 3-of-5 = 6 elements, uniformly.
  EXPECT_EQ(c.min_quorum_size(), 6u);
  EXPECT_EQ(c.max_quorum_size(), 6u);
}

TEST(Composite, RecursiveMajority3EqualsHqs) {
  for (std::size_t h : {1u, 2u}) {
    const CompositeSystem composed = CompositeSystem::recursive_majority3(h);
    const HQSystem hqs(h);
    ASSERT_EQ(composed.universe_size(), hqs.universe_size());
    const std::size_t n = hqs.universe_size();
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      const ElementSet greens = ElementSet::from_mask(n, mask);
      EXPECT_EQ(composed.contains_quorum(greens), hqs.contains_quorum(greens))
          << "h=" << h << " mask=" << mask;
    }
  }
}

TEST(Composite, HeterogeneousSlots) {
  // Maj3 outer over [Maj1, Maj3, Wheel(4)]: universe 1 + 3 + 4.
  std::vector<QuorumSystemPtr> inner = {
      std::make_shared<MajoritySystem>(1), std::make_shared<MajoritySystem>(3),
      std::make_shared<WheelSystem>(4)};
  const CompositeSystem c(std::make_shared<MajoritySystem>(3), inner);
  EXPECT_EQ(c.universe_size(), 8u);
  // Slot 0 live (element 0 green) + slot 1 live (2 of {1,2,3}) = quorum.
  EXPECT_TRUE(c.contains_quorum(ElementSet(8, {0, 1, 2})));
  // Only slot 2 live is not enough.
  EXPECT_FALSE(c.contains_quorum(ElementSet(8, {4, 5})));
  // Slot 1 + slot 2 (hub 4 + a rim member).
  EXPECT_TRUE(c.contains_quorum(ElementSet(8, {1, 3, 4, 5})));
}

TEST(Composite, NdClosure) {
  // Composition of ND coteries is ND (self-duality composes).
  const CompositeSystem c = CompositeSystem::uniform(
      std::make_shared<MajoritySystem>(3), std::make_shared<MajoritySystem>(3));
  EXPECT_TRUE(is_nondominated(c));
  std::vector<QuorumSystemPtr> inner = {
      std::make_shared<MajoritySystem>(1), std::make_shared<MajoritySystem>(3),
      std::make_shared<MajoritySystem>(3)};
  const CompositeSystem mixed(std::make_shared<MajoritySystem>(3), inner);
  EXPECT_TRUE(is_nondominated(mixed));
}

TEST(Composite, WheelOfWallsIsACoterie) {
  const CompositeSystem c = CompositeSystem::uniform(
      std::make_shared<WheelSystem>(3),
      std::make_shared<CrumblingWall>(std::vector<std::size_t>{1, 2}));
  EXPECT_EQ(c.universe_size(), 9u);
  EXPECT_TRUE(is_coterie(c));
  EXPECT_TRUE(is_nondominated(c));
}

TEST(Composite, MonotoneCharacteristicFunction) {
  const CompositeSystem c = CompositeSystem::uniform(
      std::make_shared<MajoritySystem>(3), std::make_shared<MajoritySystem>(3));
  for (std::uint64_t mask = 0; mask < (1ULL << 9); ++mask) {
    if (!c.contains_quorum(ElementSet::from_mask(9, mask))) continue;
    for (std::size_t e = 0; e < 9; ++e)
      EXPECT_TRUE(c.contains_quorum(
          ElementSet::from_mask(9, mask | (1ULL << e))));
  }
}

TEST(Composite, Validation) {
  EXPECT_THROW(CompositeSystem(nullptr, {}), std::invalid_argument);
  EXPECT_THROW(CompositeSystem(std::make_shared<MajoritySystem>(3),
                               {std::make_shared<MajoritySystem>(3)}),
               std::invalid_argument);
  EXPECT_THROW(CompositeSystem::recursive_majority3(0), std::invalid_argument);
}

}  // namespace
}  // namespace qps
