#include "quorum/wheel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "quorum/crumbling_wall.h"

namespace qps {
namespace {

TEST(Wheel, RequiresAtLeastThree) {
  EXPECT_THROW(WheelSystem(2), std::invalid_argument);
  EXPECT_NO_THROW(WheelSystem(3));
}

TEST(Wheel, QuorumStructure) {
  const WheelSystem wheel(5);
  // Spokes {hub, i}.
  for (Element i = 1; i < 5; ++i)
    EXPECT_TRUE(wheel.is_quorum(ElementSet(5, {WheelSystem::kHub, i})));
  // The rim {2..n} (0-based {1..4}).
  EXPECT_TRUE(wheel.is_quorum(ElementSet(5, {1, 2, 3, 4})));
  // Two rim elements without the hub are not a quorum.
  EXPECT_FALSE(wheel.contains_quorum(ElementSet(5, {1, 2})));
  // The hub alone is not a quorum.
  EXPECT_FALSE(wheel.contains_quorum(ElementSet(5, {0})));
}

TEST(Wheel, QuorumSizes) {
  const WheelSystem wheel(7);
  EXPECT_EQ(wheel.min_quorum_size(), 2u);
  EXPECT_EQ(wheel.max_quorum_size(), 6u);
}

TEST(Wheel, EnumerationHasNQuorums) {
  // n-1 spokes plus the rim.
  for (std::size_t n : {3u, 5u, 8u}) {
    const auto quorums = WheelSystem(n).enumerate_quorums();
    EXPECT_EQ(quorums.size(), n);
  }
}

TEST(Wheel, EnumerationMatchesBruteForce) {
  const WheelSystem wheel(6);
  auto fast = wheel.enumerate_quorums();
  auto brute = wheel.QuorumSystem::enumerate_quorums();
  auto key = [](const ElementSet& s) { return s.to_mask(); };
  std::vector<std::uint64_t> a, b;
  for (const auto& q : fast) a.push_back(key(q));
  for (const auto& q : brute) b.push_back(key(q));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(Wheel, AgreesWithCrumblingWallForm) {
  // Wheel(n) == (1, n-1)-CW on the same universe with the hub first.
  for (std::size_t n : {3u, 5u, 7u}) {
    const WheelSystem wheel(n);
    const CrumblingWall wall = CrumblingWall::wheel(n);
    const std::uint64_t limit = 1ULL << n;
    for (std::uint64_t mask = 0; mask < limit; ++mask) {
      const ElementSet s = ElementSet::from_mask(n, mask);
      EXPECT_EQ(wheel.contains_quorum(s), wall.contains_quorum(s))
          << "n=" << n << " mask=" << mask;
    }
  }
}

TEST(Wheel, Name) { EXPECT_EQ(WheelSystem(5).name(), "Wheel(5)"); }

}  // namespace
}  // namespace qps
