#include "quorum/crumbling_wall.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qps {
namespace {

TEST(CrumblingWall, NdShapeValidation) {
  EXPECT_THROW(CrumblingWall({2, 3}), std::invalid_argument);   // top != 1
  EXPECT_THROW(CrumblingWall({1, 1, 3}), std::invalid_argument);  // width-1 row
  EXPECT_NO_THROW(CrumblingWall({1, 2, 3}));
  EXPECT_NO_THROW(CrumblingWall({2, 3}, /*require_nd=*/false));
  EXPECT_THROW(CrumblingWall({}), std::invalid_argument);
  EXPECT_THROW(CrumblingWall({1, 0, 2}, false), std::invalid_argument);
}

TEST(CrumblingWall, LayoutIsRowMajor) {
  const CrumblingWall wall({1, 2, 3});
  EXPECT_EQ(wall.universe_size(), 6u);
  EXPECT_EQ(wall.row_count(), 3u);
  EXPECT_EQ(wall.row_begin(0), 0u);
  EXPECT_EQ(wall.row_end(0), 1u);
  EXPECT_EQ(wall.row_begin(1), 1u);
  EXPECT_EQ(wall.row_end(1), 3u);
  EXPECT_EQ(wall.row_begin(2), 3u);
  EXPECT_EQ(wall.row_end(2), 6u);
  EXPECT_EQ(wall.row_of(0), 0u);
  EXPECT_EQ(wall.row_of(2), 1u);
  EXPECT_EQ(wall.row_of(5), 2u);
  EXPECT_THROW(wall.row_of(6), std::invalid_argument);
}

TEST(CrumblingWall, QuorumIsFullRowPlusRepresentatives) {
  const CrumblingWall wall({1, 2, 3});
  // Full row 1 = {1,2} plus one of row 2 = {3,4,5}.
  EXPECT_TRUE(wall.is_quorum(ElementSet(6, {1, 2, 3})));
  EXPECT_TRUE(wall.is_quorum(ElementSet(6, {1, 2, 5})));
  // Full top row {0} plus one of each row below.
  EXPECT_TRUE(wall.is_quorum(ElementSet(6, {0, 1, 4})));
  // Full bottom row alone.
  EXPECT_TRUE(wall.is_quorum(ElementSet(6, {3, 4, 5})));
  // A full row without representatives below is not a quorum.
  EXPECT_FALSE(wall.contains_quorum(ElementSet(6, {1, 2})));
  // Representatives without a full row are not a quorum.
  EXPECT_FALSE(wall.contains_quorum(ElementSet(6, {0, 1, 3})) &&
               !wall.is_quorum(ElementSet(6, {0, 1, 3})));
}

TEST(CrumblingWall, Figure1TriangExample) {
  // Fig. 1 shades a quorum of the Triang system: a full row plus one
  // element from every row below it.
  const CrumblingWall triang = CrumblingWall::triang(4);
  EXPECT_EQ(triang.universe_size(), 10u);
  // Row 1 = {1,2}; below: row 2 = {3,4,5}, row 3 = {6,7,8,9}.
  EXPECT_TRUE(triang.is_quorum(ElementSet(10, {1, 2, 4, 8})));
  EXPECT_FALSE(triang.contains_quorum(ElementSet(10, {1, 2, 4})));
}

TEST(CrumblingWall, QuorumSizeExtremes) {
  const CrumblingWall wall({1, 2, 3});
  // Sizes: row 0: 1 + 2 = 3; row 1: 2 + 1 = 3; row 2: 3 + 0 = 3.
  EXPECT_EQ(wall.min_quorum_size(), 3u);
  EXPECT_EQ(wall.max_quorum_size(), 3u);
  const CrumblingWall wide({1, 5, 2});
  // Row 0: 1+2=3, row 1: 5+1=6, row 2: 2.
  EXPECT_EQ(wide.min_quorum_size(), 2u);
  EXPECT_EQ(wide.max_quorum_size(), 6u);
}

TEST(CrumblingWall, EnumerationMatchesBruteForce) {
  const CrumblingWall wall({1, 2, 3});
  auto fast = wall.enumerate_quorums();
  auto brute = wall.QuorumSystem::enumerate_quorums();
  std::vector<std::uint64_t> a, b;
  for (const auto& q : fast) a.push_back(q.to_mask());
  for (const auto& q : brute) b.push_back(q.to_mask());
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST(CrumblingWall, EnumerationCount) {
  // sum_j prod_{i>j} n_i = 2*3 + 3 + 1 = 10 for (1,2,3).
  EXPECT_EQ(CrumblingWall({1, 2, 3}).enumerate_quorums().size(), 10u);
}

TEST(CrumblingWall, TriangFactory) {
  const CrumblingWall triang = CrumblingWall::triang(3);
  EXPECT_EQ(triang.row_count(), 3u);
  EXPECT_EQ(triang.row_width(0), 1u);
  EXPECT_EQ(triang.row_width(2), 3u);
  EXPECT_EQ(triang.universe_size(), 6u);
  EXPECT_EQ(triang.name(), "(1,2,3)-CW");
}

TEST(CrumblingWall, SingleRowWall) {
  const CrumblingWall tiny({1});
  EXPECT_EQ(tiny.universe_size(), 1u);
  EXPECT_TRUE(tiny.is_quorum(ElementSet(1, {0})));
  EXPECT_FALSE(tiny.contains_quorum(ElementSet(1)));
}

TEST(CrumblingWall, ContainsQuorumMonotone) {
  const CrumblingWall wall({1, 3, 2});
  const std::size_t n = wall.universe_size();
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!wall.contains_quorum(ElementSet::from_mask(n, mask))) continue;
    // Adding elements preserves the property.
    for (std::size_t e = 0; e < n; ++e)
      EXPECT_TRUE(
          wall.contains_quorum(ElementSet::from_mask(n, mask | (1ULL << e))));
  }
}

}  // namespace
}  // namespace qps
