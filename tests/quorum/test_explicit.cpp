#include "quorum/explicit_system.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qps {
namespace {

TEST(Explicit, BuildsMaj3) {
  const ExplicitSystem maj3(
      3, {ElementSet(3, {0, 1}), ElementSet(3, {1, 2}), ElementSet(3, {0, 2})},
      "Maj3");
  EXPECT_EQ(maj3.universe_size(), 3u);
  EXPECT_EQ(maj3.min_quorum_size(), 2u);
  EXPECT_EQ(maj3.max_quorum_size(), 2u);
  EXPECT_TRUE(maj3.contains_quorum(ElementSet(3, {0, 1})));
  EXPECT_TRUE(maj3.contains_quorum(ElementSet(3, {0, 1, 2})));
  EXPECT_FALSE(maj3.contains_quorum(ElementSet(3, {0})));
  EXPECT_EQ(maj3.name(), "Maj3");
}

TEST(Explicit, RejectsEmptyFamily) {
  EXPECT_THROW(ExplicitSystem(3, {}), std::invalid_argument);
}

TEST(Explicit, RejectsEmptyQuorum) {
  EXPECT_THROW(ExplicitSystem(3, {ElementSet(3)}), std::invalid_argument);
}

TEST(Explicit, RejectsNonIntersecting) {
  EXPECT_THROW(
      ExplicitSystem(4, {ElementSet(4, {0, 1}), ElementSet(4, {2, 3})}),
      std::invalid_argument);
}

TEST(Explicit, RejectsNonMinimalWhenCoterieRequired) {
  EXPECT_THROW(
      ExplicitSystem(3, {ElementSet(3, {0}), ElementSet(3, {0, 1})}),
      std::invalid_argument);
  EXPECT_NO_THROW(ExplicitSystem(
      3, {ElementSet(3, {0}), ElementSet(3, {0, 1})}, "NonMinimal",
      /*require_coterie=*/false));
}

TEST(Explicit, RejectsWrongUniverse) {
  EXPECT_THROW(ExplicitSystem(3, {ElementSet(4, {0, 1})}),
               std::invalid_argument);
}

TEST(Explicit, SingletonSystem) {
  const ExplicitSystem s(1, {ElementSet(1, {0})});
  EXPECT_TRUE(s.contains_quorum(ElementSet::full(1)));
  EXPECT_FALSE(s.contains_quorum(ElementSet(1)));
}

TEST(Explicit, EnumerateReturnsInputFamily) {
  const std::vector<ElementSet> family = {ElementSet(4, {0, 1}),
                                          ElementSet(4, {0, 2}),
                                          ElementSet(4, {1, 2, 3})};
  const ExplicitSystem s(4, family);
  EXPECT_EQ(s.enumerate_quorums().size(), family.size());
}

}  // namespace
}  // namespace qps
