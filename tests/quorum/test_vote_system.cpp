// Weighted voting systems (Gifford / Garcia-Molina & Barbara).
#include "quorum/vote_system.h"

#include <gtest/gtest.h>

#include "quorum/majority.h"
#include "quorum/properties.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

TEST(VoteSystem, UniformVotesAreMajority) {
  const VoteSystem votes({1, 1, 1, 1, 1}, 3);
  const MajoritySystem maj(5);
  for (std::uint64_t mask = 0; mask < 32; ++mask) {
    const ElementSet greens = ElementSet::from_mask(5, mask);
    EXPECT_EQ(votes.contains_quorum(greens), maj.contains_quorum(greens));
  }
  EXPECT_EQ(votes.min_quorum_size(), 3u);
  EXPECT_EQ(votes.max_quorum_size(), 3u);
}

TEST(VoteSystem, WheelAssignmentMatchesWheelSystem) {
  for (std::size_t n : {4u, 5u, 7u}) {
    const VoteSystem votes = VoteSystem::wheel(n);
    const WheelSystem wheel(n);
    for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
      const ElementSet greens = ElementSet::from_mask(n, mask);
      EXPECT_EQ(votes.contains_quorum(greens), wheel.contains_quorum(greens))
          << "n=" << n << " mask=" << mask;
    }
    EXPECT_EQ(votes.min_quorum_size(), wheel.min_quorum_size());
    EXPECT_EQ(votes.max_quorum_size(), wheel.max_quorum_size());
  }
}

TEST(VoteSystem, RejectsBadThresholds) {
  EXPECT_THROW(VoteSystem({1, 1, 1}, 1), std::invalid_argument);  // <= half
  EXPECT_THROW(VoteSystem({1, 1, 1}, 4), std::invalid_argument);  // unreachable
  EXPECT_THROW(VoteSystem({1, 0, 1}, 2), std::invalid_argument);  // zero vote
  EXPECT_THROW(VoteSystem({}, 1), std::invalid_argument);
}

TEST(VoteSystem, QuorumSizeExtremesAgainstBruteForce) {
  // Includes the {2,2,3,5}/T=8 case where a naive greedy fails.
  const std::vector<std::pair<std::vector<std::size_t>, std::size_t>> cases = {
      {{2, 2, 3, 5}, 8},  {{1, 1, 1, 4, 4}, 8}, {{3, 3, 4}, 6},
      {{1, 2, 4, 4}, 6},  {{5, 4, 3, 2, 1}, 9}, {{1, 1, 3, 3, 3}, 7},
      {{7, 1, 1, 1, 1}, 6}};
  for (const auto& [weights, threshold] : cases) {
    const VoteSystem votes(weights, threshold);
    const auto quorums = votes.enumerate_quorums();  // brute force
    ASSERT_FALSE(quorums.empty());
    std::size_t lo = weights.size() + 1, hi = 0;
    for (const auto& q : quorums) {
      lo = std::min(lo, q.count());
      hi = std::max(hi, q.count());
    }
    EXPECT_EQ(votes.min_quorum_size(), lo) << votes.name();
    EXPECT_EQ(votes.max_quorum_size(), hi) << votes.name();
  }
}

TEST(VoteSystem, DictatorWithTiebreakers) {
  // Votes (3,1,1,1), T=4: the heavy node plus any one other, or all three
  // light nodes... 1+1+1 = 3 < 4, so light nodes alone never win.
  const VoteSystem votes({3, 1, 1, 1}, 4);
  EXPECT_TRUE(votes.contains_quorum(ElementSet(4, {0, 2})));
  EXPECT_FALSE(votes.contains_quorum(ElementSet(4, {1, 2, 3})));
  EXPECT_FALSE(votes.contains_quorum(ElementSet(4, {0})));
  EXPECT_EQ(votes.min_quorum_size(), 2u);
  EXPECT_EQ(votes.max_quorum_size(), 2u);
  // Without the heavy node no quorum exists: it is a "veto" member, and
  // the coterie is dominated (not ND).
  EXPECT_FALSE(is_nondominated(votes));
}

TEST(VoteSystem, OddUniformVotesAreNd) {
  EXPECT_TRUE(is_nondominated(VoteSystem({1, 1, 1, 1, 1}, 3)));
  EXPECT_TRUE(is_nondominated(VoteSystem::wheel(5)));
}

TEST(VoteSystem, Accessors) {
  const VoteSystem votes({2, 1, 2}, 3);
  EXPECT_EQ(votes.total_votes(), 5u);
  EXPECT_EQ(votes.threshold(), 3u);
  EXPECT_EQ(votes.votes_of(0), 2u);
  EXPECT_EQ(votes.votes_of(1), 1u);
  EXPECT_EQ(votes.name(), "Votes(n=3,T=3)");
}

TEST(VoteSystem, MonotoneAndIntersecting) {
  const VoteSystem votes({3, 2, 2, 1, 1}, 5);
  EXPECT_TRUE(has_intersection_property(votes));
  EXPECT_TRUE(has_minimality_property(votes));
  for (std::uint64_t mask = 0; mask < 32; ++mask) {
    if (!votes.contains_quorum(ElementSet::from_mask(5, mask))) continue;
    for (std::size_t e = 0; e < 5; ++e)
      EXPECT_TRUE(votes.contains_quorum(
          ElementSet::from_mask(5, mask | (1ULL << e))));
  }
}

}  // namespace
}  // namespace qps
