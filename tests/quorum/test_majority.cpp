#include "quorum/majority.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/stats.h"

namespace qps {
namespace {

TEST(Majority, RequiresOddUniverse) {
  EXPECT_THROW(MajoritySystem(4), std::invalid_argument);
  EXPECT_THROW(MajoritySystem(0), std::invalid_argument);
  EXPECT_NO_THROW(MajoritySystem(1));
  EXPECT_NO_THROW(MajoritySystem(7));
}

TEST(Majority, Threshold) {
  EXPECT_EQ(MajoritySystem(1).threshold(), 1u);
  EXPECT_EQ(MajoritySystem(3).threshold(), 2u);
  EXPECT_EQ(MajoritySystem(9).threshold(), 5u);
}

TEST(Majority, QuorumSizesAreUniform) {
  const MajoritySystem maj(7);
  EXPECT_EQ(maj.min_quorum_size(), 4u);
  EXPECT_EQ(maj.max_quorum_size(), 4u);
}

TEST(Majority, ContainsQuorumIsThresholdCount) {
  const MajoritySystem maj(5);
  EXPECT_FALSE(maj.contains_quorum(ElementSet(5, {0, 1})));
  EXPECT_TRUE(maj.contains_quorum(ElementSet(5, {0, 1, 2})));
  EXPECT_TRUE(maj.contains_quorum(ElementSet::full(5)));
  EXPECT_FALSE(maj.contains_quorum(ElementSet(5)));
}

TEST(Majority, IsQuorumRequiresExactThreshold) {
  const MajoritySystem maj(5);
  EXPECT_TRUE(maj.is_quorum(ElementSet(5, {0, 2, 4})));
  EXPECT_FALSE(maj.is_quorum(ElementSet(5, {0, 1, 2, 3})));  // not minimal
  EXPECT_FALSE(maj.is_quorum(ElementSet(5, {0, 1})));
}

TEST(Majority, EnumerationCountsBinomial) {
  for (std::size_t n : {1u, 3u, 5u, 7u, 9u}) {
    const MajoritySystem maj(n);
    const auto quorums = maj.enumerate_quorums();
    EXPECT_DOUBLE_EQ(static_cast<double>(quorums.size()),
                     binomial_coefficient(n, (n + 1) / 2))
        << "n=" << n;
    for (const auto& q : quorums) EXPECT_EQ(q.count(), (n + 1) / 2);
  }
}

TEST(Majority, Maj3IsTheWorkedExample) {
  // Section 2.3: Maj3 = {{1,2},{2,3},{1,3}}.
  const MajoritySystem maj(3);
  const auto quorums = maj.enumerate_quorums();
  ASSERT_EQ(quorums.size(), 3u);
  EXPECT_TRUE(maj.is_quorum(ElementSet(3, {0, 1})));
  EXPECT_TRUE(maj.is_quorum(ElementSet(3, {1, 2})));
  EXPECT_TRUE(maj.is_quorum(ElementSet(3, {0, 2})));
}

TEST(Majority, TransversalsAreMajorities) {
  const MajoritySystem maj(5);
  EXPECT_TRUE(maj.is_transversal(ElementSet(5, {0, 1, 2})));
  EXPECT_FALSE(maj.is_transversal(ElementSet(5, {0, 1})));
}

TEST(Majority, Name) { EXPECT_EQ(MajoritySystem(7).name(), "Maj(7)"); }

}  // namespace
}  // namespace qps
