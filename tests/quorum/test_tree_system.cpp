#include "quorum/tree_system.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace qps {
namespace {

TEST(TreeSystem, UniverseSizes) {
  EXPECT_EQ(TreeSystem(0).universe_size(), 1u);
  EXPECT_EQ(TreeSystem(1).universe_size(), 3u);
  EXPECT_EQ(TreeSystem(2).universe_size(), 7u);
  EXPECT_EQ(TreeSystem(3).universe_size(), 15u);
}

TEST(TreeSystem, WithUniverseValidates) {
  EXPECT_EQ(TreeSystem::with_universe(7).height(), 2u);
  EXPECT_THROW(TreeSystem::with_universe(8), std::invalid_argument);
}

TEST(TreeSystem, HeapIndexing) {
  const TreeSystem tree(2);
  EXPECT_EQ(TreeSystem::left_child(0), 1u);
  EXPECT_EQ(TreeSystem::right_child(0), 2u);
  EXPECT_EQ(TreeSystem::left_child(2), 5u);
  EXPECT_FALSE(tree.is_leaf(0));
  EXPECT_FALSE(tree.is_leaf(2));
  EXPECT_TRUE(tree.is_leaf(3));
  EXPECT_TRUE(tree.is_leaf(6));
}

TEST(TreeSystem, QuorumSizes) {
  const TreeSystem tree(3);
  EXPECT_EQ(tree.min_quorum_size(), 4u);   // root-to-leaf path, h+1
  EXPECT_EQ(tree.max_quorum_size(), 8u);   // all leaves, (n+1)/2
}

TEST(TreeSystem, HeightOneIsMaj3) {
  // Root + either leaf, or both leaves: exactly the quorums of Maj3.
  const TreeSystem tree(1);
  EXPECT_TRUE(tree.is_quorum(ElementSet(3, {0, 1})));
  EXPECT_TRUE(tree.is_quorum(ElementSet(3, {0, 2})));
  EXPECT_TRUE(tree.is_quorum(ElementSet(3, {1, 2})));
  EXPECT_FALSE(tree.contains_quorum(ElementSet(3, {0})));
}

TEST(TreeSystem, Figure2StyleQuorums) {
  const TreeSystem tree(2);  // nodes 0..6; leaves 3,4,5,6
  // Root-to-leaf path: root, left child, leftmost leaf.
  EXPECT_TRUE(tree.is_quorum(ElementSet(7, {0, 1, 3})));
  // Root + quorum of right subtree (both leaves of the right subtree).
  EXPECT_TRUE(tree.is_quorum(ElementSet(7, {0, 5, 6})));
  // Quorums of both subtrees: node1+leaf3 and node2+leaf6.
  EXPECT_TRUE(tree.is_quorum(ElementSet(7, {1, 3, 2, 6})));
  // All leaves.
  EXPECT_TRUE(tree.is_quorum(ElementSet(7, {3, 4, 5, 6})));
  // The root and one internal node do not reach a leaf... not a quorum.
  EXPECT_FALSE(tree.contains_quorum(ElementSet(7, {0, 1, 2})));
  // Non-minimal supersets are not quorums.
  EXPECT_FALSE(tree.is_quorum(ElementSet(7, {0, 1, 3, 4})));
  EXPECT_TRUE(tree.contains_quorum(ElementSet(7, {0, 1, 3, 4})));
}

TEST(TreeSystem, MintermCountHeight2) {
  // q(h) = minimal quorums: q(0)=1; recursively quorums are
  // root+minimal(L or R) or minimal(L)+minimal(R), minus overlaps; for a
  // complete binary tree q(1) = 3, q(2) = 2*3 + 3*3 = 15.
  EXPECT_EQ(TreeSystem(1).enumerate_quorums().size(), 3u);
  EXPECT_EQ(TreeSystem(2).enumerate_quorums().size(), 15u);
}

TEST(TreeSystem, ContainsQuorumMonotone) {
  const TreeSystem tree(2);
  const std::uint64_t limit = 1ULL << 7;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!tree.contains_quorum(ElementSet::from_mask(7, mask))) continue;
    for (std::size_t e = 0; e < 7; ++e)
      EXPECT_TRUE(
          tree.contains_quorum(ElementSet::from_mask(7, mask | (1ULL << e))));
  }
}

TEST(TreeSystem, LargeTreeEvaluationScales) {
  const TreeSystem tree(15);  // n = 65535
  EXPECT_TRUE(tree.contains_quorum(ElementSet::full(tree.universe_size())));
  EXPECT_FALSE(tree.contains_quorum(ElementSet(tree.universe_size())));
}

}  // namespace
}  // namespace qps
