// Quorum-based mutual exclusion: safety (never two holders) and progress.
#include "protocols/mutex_client.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_maj.h"
#include "protocols/server_node.h"
#include "quorum/crumbling_wall.h"
#include "quorum/majority.h"
#include "sim/fault_injector.h"

namespace qps::protocols {
namespace {

using sim::Network;
using sim::NodeId;
using sim::Simulator;

struct MutexFixture {
  Simulator simulator;
  Rng net_rng{101};
  Network net{simulator, net_rng, sim::uniform_latency(0.1, 0.5)};
  std::vector<std::unique_ptr<ServerNode>> servers;
  std::vector<std::unique_ptr<MutexClient>> clients;
  MajoritySystem system{5};
  ProbeMaj strategy{system};

  explicit MutexFixture(std::size_t client_count) {
    for (NodeId id = 0; id < system.universe_size(); ++id) {
      servers.push_back(std::make_unique<ServerNode>(id));
      net.add_node(servers.back().get());
    }
    MutexClient::Options options;
    options.ping_timeout = 1.0;
    options.lock_timeout = 2.0;
    options.backoff_base = 1.0;
    options.max_attempts = 64;
    for (std::size_t i = 0; i < client_count; ++i) {
      const auto id = static_cast<NodeId>(system.universe_size() + i);
      clients.push_back(std::make_unique<MutexClient>(
          net, id, system, strategy, Rng(500 + i), options));
      net.add_node(clients.back().get());
    }
  }

  std::size_t holders() const {
    std::size_t count = 0;
    for (const auto& c : clients)
      if (c->holds_lock()) ++count;
    return count;
  }
};

TEST(Mutex, SingleClientAcquiresAndReleases) {
  MutexFixture f(1);
  bool acquired = false;
  f.clients[0]->acquire([&](bool ok) { acquired = ok; });
  f.simulator.run();
  EXPECT_TRUE(acquired);
  EXPECT_TRUE(f.clients[0]->holds_lock());
  // The locked quorum members agree on the holder.
  for (Element m : f.clients[0]->locked_quorum()->to_vector()) {
    EXPECT_TRUE(f.servers[m]->locked());
    EXPECT_EQ(f.servers[m]->lock_holder(), f.clients[0]->id());
  }
  f.clients[0]->release();
  f.simulator.run();
  for (const auto& server : f.servers) EXPECT_FALSE(server->locked());
}

TEST(Mutex, TwoClientsNeverHoldSimultaneously) {
  MutexFixture f(2);
  int acquired_count = 0;
  bool overlap = false;
  // Each client acquires, holds for 3 time units (polling safety), then
  // releases; the second starts slightly later.
  for (std::size_t i = 0; i < 2; ++i) {
    f.simulator.schedule(
        0.1 * static_cast<double>(i), [&f, i, &acquired_count, &overlap]() {
          f.clients[i]->acquire([&f, i, &acquired_count, &overlap](bool ok) {
            if (!ok) return;
            ++acquired_count;
            overlap = overlap || f.holders() > 1;
            f.simulator.schedule(3.0, [&f, i]() { f.clients[i]->release(); });
          });
        });
  }
  // Poll the safety invariant at fine granularity throughout the run.
  for (double t = 0.0; t < 120.0; t += 0.05)
    f.simulator.schedule_at(t, [&f, &overlap]() {
      overlap = overlap || f.holders() > 1;
    });
  f.simulator.run();
  EXPECT_FALSE(overlap);
  EXPECT_EQ(acquired_count, 2);  // both eventually succeeded
}

TEST(Mutex, ManyClientsSerializeSafely) {
  MutexFixture f(4);
  int acquired_count = 0;
  bool overlap = false;
  for (std::size_t i = 0; i < 4; ++i) {
    f.simulator.schedule(0.05 * static_cast<double>(i), [&f, i,
                                                         &acquired_count,
                                                         &overlap]() {
      f.clients[i]->acquire([&f, i, &acquired_count, &overlap](bool ok) {
        if (!ok) return;
        ++acquired_count;
        overlap = overlap || f.holders() > 1;
        f.simulator.schedule(1.5, [&f, i]() { f.clients[i]->release(); });
      });
    });
  }
  for (double t = 0.0; t < 400.0; t += 0.05)
    f.simulator.schedule_at(t, [&f, &overlap]() {
      overlap = overlap || f.holders() > 1;
    });
  f.simulator.run();
  EXPECT_FALSE(overlap);
  EXPECT_GE(acquired_count, 3);  // near-complete progress under backoff
}

TEST(Mutex, ToleratesMinorityCrash) {
  MutexFixture f(1);
  // Crash 2 of 5 servers: a majority quorum of live nodes remains.
  f.servers[0]->crash();
  f.servers[3]->crash();
  bool acquired = false;
  f.clients[0]->acquire([&](bool ok) { acquired = ok; });
  f.simulator.run();
  EXPECT_TRUE(acquired);
  for (Element m : f.clients[0]->locked_quorum()->to_vector()) {
    EXPECT_NE(m, 0u);
    EXPECT_NE(m, 3u);
  }
}

TEST(Mutex, FailsCleanlyWithoutLiveQuorum) {
  MutexFixture f(1);
  // Crash a majority: no live quorum exists.
  for (NodeId id : {0u, 1u, 2u}) f.servers[id]->crash();
  bool done = false, result = true;
  f.clients[0]->acquire([&](bool ok) {
    done = true;
    result = ok;
  });
  f.simulator.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(result);
  EXPECT_FALSE(f.clients[0]->holds_lock());
  for (const auto& server : f.servers)
    if (server->alive()) EXPECT_FALSE(server->locked());
}

TEST(Mutex, WorksWithCrumblingWallSystem) {
  Simulator simulator;
  Rng rng(202);
  Network net(simulator, rng, sim::uniform_latency(0.1, 0.3));
  const CrumblingWall wall({1, 2, 3});
  std::vector<std::unique_ptr<ServerNode>> servers;
  for (NodeId id = 0; id < wall.universe_size(); ++id) {
    servers.push_back(std::make_unique<ServerNode>(id));
    net.add_node(servers.back().get());
  }
  const ProbeCW strategy(wall);
  MutexClient::Options options;
  options.ping_timeout = 1.0;
  MutexClient client(net, static_cast<NodeId>(wall.universe_size()), wall,
                     strategy, Rng(1), options);
  net.add_node(&client);

  bool acquired = false;
  client.acquire([&](bool ok) { acquired = ok; });
  simulator.run();
  EXPECT_TRUE(acquired);
  EXPECT_TRUE(wall.contains_quorum(*client.locked_quorum()));
}

TEST(Mutex, SafetyHoldsOnALossyNetwork) {
  // 20% message loss: grants, denies and unlocks may vanish.  Liveness is
  // not guaranteed, but two clients must never both hold the lock.
  MutexFixture f(3);
  f.net.set_drop_probability(0.2);
  bool overlap = false;
  for (std::size_t i = 0; i < 3; ++i) {
    f.simulator.schedule(0.05 * static_cast<double>(i), [&f, i, &overlap]() {
      f.clients[i]->acquire([&f, i, &overlap](bool ok) {
        if (!ok) return;
        overlap = overlap || f.holders() > 1;
        f.simulator.schedule(2.0, [&f, i]() { f.clients[i]->release(); });
      });
    });
  }
  for (double t = 0.0; t < 300.0; t += 0.05)
    f.simulator.schedule_at(t, [&f, &overlap]() {
      overlap = overlap || f.holders() > 1;
    });
  f.simulator.run(4'000'000);
  EXPECT_FALSE(overlap);
}

TEST(Mutex, HolderSurvivesUnrelatedServerCrash) {
  MutexFixture f(1);
  bool acquired = false;
  f.clients[0]->acquire([&](bool ok) { acquired = ok; });
  f.simulator.run();
  ASSERT_TRUE(acquired);
  // Crash a server outside the locked quorum: the holder is unaffected.
  const ElementSet quorum = *f.clients[0]->locked_quorum();
  sim::NodeId outsider = 0;
  for (sim::NodeId id = 0; id < 5; ++id)
    if (!quorum.contains(id)) {
      outsider = id;
      break;
    }
  f.servers[outsider]->crash();
  EXPECT_TRUE(f.clients[0]->holds_lock());
  // A second client must still be denied while the lock is held.
  MutexClient::Options options;
  options.ping_timeout = 1.0;
  options.lock_timeout = 2.0;
  options.backoff_base = 1.0;
  options.max_attempts = 2;  // fail fast
  MutexClient rival(f.net, 6, f.system, f.strategy, Rng(99), options);
  f.net.add_node(&rival);
  bool rival_result = true;
  bool rival_done = false;
  rival.acquire([&](bool ok) {
    rival_done = true;
    rival_result = ok;
  });
  f.simulator.run();
  EXPECT_TRUE(rival_done);
  EXPECT_FALSE(rival_result);
  EXPECT_TRUE(f.clients[0]->holds_lock());
}

TEST(Mutex, RejectsConcurrentAcquire) {
  MutexFixture f(1);
  f.clients[0]->acquire([](bool) {});
  EXPECT_THROW(f.clients[0]->acquire([](bool) {}), std::invalid_argument);
  f.simulator.run();
}

}  // namespace
}  // namespace qps::protocols
