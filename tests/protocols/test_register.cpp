// Quorum-replicated register: reads see completed writes through any live
// quorum (intersection), versioning resolves concurrent writers.
#include "protocols/register_client.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms/probe_maj.h"
#include "protocols/server_node.h"
#include "quorum/majority.h"
#include "sim/fault_injector.h"

namespace qps::protocols {
namespace {

using sim::Network;
using sim::NodeId;
using sim::Simulator;

struct RegisterFixture {
  Simulator simulator;
  Rng net_rng{303};
  Network net{simulator, net_rng, sim::uniform_latency(0.1, 0.4)};
  std::vector<std::unique_ptr<ServerNode>> servers;
  std::vector<std::unique_ptr<RegisterClient>> clients;
  MajoritySystem system{5};
  ProbeMaj strategy{system};

  explicit RegisterFixture(std::size_t client_count) {
    for (NodeId id = 0; id < system.universe_size(); ++id) {
      servers.push_back(std::make_unique<ServerNode>(id));
      net.add_node(servers.back().get());
    }
    RegisterClient::Options options;
    options.ping_timeout = 1.0;
    options.round_timeout = 2.0;
    for (std::size_t i = 0; i < client_count; ++i) {
      const auto id = static_cast<NodeId>(system.universe_size() + i);
      clients.push_back(std::make_unique<RegisterClient>(
          net, id, system, strategy, Rng(900 + i), options));
      net.add_node(clients.back().get());
    }
  }
};

TEST(Register, WriteThenReadReturnsValue) {
  RegisterFixture f(1);
  bool wrote = false;
  RegisterClient::ReadResult read;
  f.clients[0]->write(42, [&](bool ok) {
    wrote = ok;
    f.clients[0]->read([&](RegisterClient::ReadResult r) { read = r; });
  });
  f.simulator.run();
  EXPECT_TRUE(wrote);
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.value, 42);
  EXPECT_EQ(read.version, 1);
}

TEST(Register, FreshRegisterReadsVersionZero) {
  RegisterFixture f(1);
  RegisterClient::ReadResult read;
  f.clients[0]->read([&](RegisterClient::ReadResult r) { read = r; });
  f.simulator.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.version, 0);
}

TEST(Register, SecondWriteIncreasesVersion) {
  RegisterFixture f(1);
  RegisterClient::ReadResult read;
  f.clients[0]->write(1, [&](bool) {
    f.clients[0]->write(2, [&](bool) {
      f.clients[0]->read([&](RegisterClient::ReadResult r) { read = r; });
    });
  });
  f.simulator.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.value, 2);
  EXPECT_EQ(read.version, 2);
}

TEST(Register, ReadSeesWriteFromOtherClient) {
  RegisterFixture f(2);
  RegisterClient::ReadResult read;
  f.clients[0]->write(77, [&](bool ok) {
    ASSERT_TRUE(ok);
    f.clients[1]->read([&](RegisterClient::ReadResult r) { read = r; });
  });
  f.simulator.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.value, 77);
}

TEST(Register, SurvivesMinorityCrashBetweenWriteAndRead) {
  RegisterFixture f(1);
  RegisterClient::ReadResult read;
  f.clients[0]->write(9, [&](bool ok) {
    ASSERT_TRUE(ok);
    // Crash two servers after the write completes; a read through any
    // remaining majority quorum still intersects the write quorum.
    f.servers[0]->crash();
    f.servers[1]->crash();
    f.clients[0]->read([&](RegisterClient::ReadResult r) { read = r; });
  });
  f.simulator.run();
  EXPECT_TRUE(read.ok);
  EXPECT_EQ(read.value, 9);
}

TEST(Register, FailsWithoutLiveQuorum) {
  RegisterFixture f(1);
  for (NodeId id : {0u, 1u, 2u}) f.servers[id]->crash();
  bool done = false;
  bool ok = true;
  f.clients[0]->write(5, [&](bool result) {
    done = true;
    ok = result;
  });
  f.simulator.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(ok);
}

TEST(Register, ConcurrentWritesResolveByVersion) {
  RegisterFixture f(2);
  int done = 0;
  f.clients[0]->write(100, [&](bool) { ++done; });
  f.clients[1]->write(200, [&](bool) { ++done; });
  f.simulator.run();
  EXPECT_EQ(done, 2);
  // After both complete, a read returns one of the two values
  // deterministically resolved by (version, value) ordering.
  RegisterClient::ReadResult read;
  f.clients[0]->read([&](RegisterClient::ReadResult r) { read = r; });
  f.simulator.run();
  EXPECT_TRUE(read.ok);
  EXPECT_TRUE(read.value == 100 || read.value == 200);
  EXPECT_GE(read.version, 1);
}

TEST(Register, AmnesiacRecoveryLosesState) {
  RegisterFixture f(1);
  f.clients[0]->write(3, [&](bool) {});
  f.simulator.run();
  f.servers[2]->crash();
  f.servers[2]->recover_amnesiac();
  EXPECT_EQ(f.servers[2]->stored_version(), 0);
}

TEST(Register, RejectsConcurrentOperations) {
  RegisterFixture f(1);
  f.clients[0]->read([](RegisterClient::ReadResult) {});
  EXPECT_THROW(f.clients[0]->write(1, [](bool) {}), std::invalid_argument);
  f.simulator.run();
}

}  // namespace
}  // namespace qps::protocols
