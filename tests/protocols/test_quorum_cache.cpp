#include "protocols/quorum_cache.h"

#include <gtest/gtest.h>

#include "core/algorithms/probe_cw.h"
#include "quorum/crumbling_wall.h"

namespace qps::protocols {
namespace {

class QuorumCacheTest : public ::testing::Test {
 protected:
  CrumblingWall wall_{{1, 2, 3}};
  ProbeCW strategy_{wall_};
  Rng rng_{42};
};

TEST_F(QuorumCacheTest, FirstSelectIsAMiss) {
  CachedQuorumSelector cache(wall_, strategy_);
  const Coloring all_green(6, ElementSet::full(6));
  const auto quorum = cache.select(all_green, rng_);
  ASSERT_TRUE(quorum.has_value());
  EXPECT_TRUE(wall_.contains_quorum(*quorum));
  EXPECT_EQ(cache.cache_hits(), 0u);
  EXPECT_EQ(cache.cache_misses(), 1u);
}

TEST_F(QuorumCacheTest, StableViewHitsTheCache) {
  CachedQuorumSelector cache(wall_, strategy_);
  const Coloring all_green(6, ElementSet::full(6));
  const auto first = cache.select(all_green, rng_);
  for (int i = 0; i < 10; ++i) {
    const auto again = cache.select(all_green, rng_);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, *first);
  }
  EXPECT_EQ(cache.cache_hits(), 10u);
  EXPECT_EQ(cache.cache_misses(), 1u);
}

TEST_F(QuorumCacheTest, MemberFailureForcesReselection) {
  CachedQuorumSelector cache(wall_, strategy_);
  const Coloring all_green(6, ElementSet::full(6));
  const auto first = cache.select(all_green, rng_);
  ASSERT_TRUE(first.has_value());
  // Kill one member of the cached quorum.
  const Element victim = first->first();
  const Coloring degraded = all_green.with(victim, Color::kRed);
  const auto second = cache.select(degraded, rng_);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->contains(victim));
  EXPECT_TRUE(second->is_subset_of(degraded.greens()));
  EXPECT_EQ(cache.cache_misses(), 2u);
}

TEST_F(QuorumCacheTest, UnrelatedFailureStillHits) {
  CachedQuorumSelector cache(wall_, strategy_);
  const Coloring all_green(6, ElementSet::full(6));
  const auto first = cache.select(all_green, rng_);
  ASSERT_TRUE(first.has_value());
  // Fail an element OUTSIDE the cached quorum.
  Element outsider = 6;
  for (Element e = 0; e < 6; ++e)
    if (!first->contains(e)) {
      outsider = e;
      break;
    }
  ASSERT_LT(outsider, 6u);
  const auto second = cache.select(all_green.with(outsider, Color::kRed), rng_);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(cache.cache_hits(), 1u);
}

TEST_F(QuorumCacheTest, NoLiveQuorumReturnsNulloptAndInvalidates) {
  CachedQuorumSelector cache(wall_, strategy_);
  const Coloring all_green(6, ElementSet::full(6));
  ASSERT_TRUE(cache.select(all_green, rng_).has_value());
  // Kill rows so no quorum survives: red everything.
  const Coloring dead(6);
  EXPECT_FALSE(cache.select(dead, rng_).has_value());
  EXPECT_FALSE(cache.cached().has_value());
}

TEST_F(QuorumCacheTest, ExplicitInvalidation) {
  CachedQuorumSelector cache(wall_, strategy_);
  const Coloring all_green(6, ElementSet::full(6));
  cache.select(all_green, rng_);
  cache.invalidate();
  cache.select(all_green, rng_);
  EXPECT_EQ(cache.cache_misses(), 2u);
  EXPECT_EQ(cache.cache_hits(), 0u);
}

}  // namespace
}  // namespace qps::protocols
