// The ND-coterie contract, as a parameterized property suite over every
// construction in the library (TEST_P): any system claiming to be a
// nondominated coterie must satisfy the full Section 2 contract --
// intersection, minimality, self-duality, Lemma 2.1, the Fact 2.3
// availability identities, probe-strategy validity, and PPC symmetry.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "core/algorithms/greedy.h"
#include "core/algorithms/random_order.h"
#include "core/estimator.h"
#include "core/exact/ppc_exact.h"
#include "core/witness.h"
#include "quorum/availability.h"
#include "quorum/composite.h"
#include "quorum/crumbling_wall.h"
#include "quorum/fpp.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/properties.h"
#include "quorum/tree_system.h"
#include "quorum/vote_system.h"
#include "quorum/wheel.h"

namespace qps {
namespace {

struct SystemCase {
  std::string label;
  std::function<std::shared_ptr<const QuorumSystem>()> make;
};

void PrintTo(const SystemCase& c, std::ostream* os) { *os << c.label; }

class NdCoterieContract : public ::testing::TestWithParam<SystemCase> {
 protected:
  std::shared_ptr<const QuorumSystem> system_ = GetParam().make();
};

TEST_P(NdCoterieContract, IsACoterie) {
  EXPECT_TRUE(has_intersection_property(*system_));
  EXPECT_TRUE(has_minimality_property(*system_));
}

TEST_P(NdCoterieContract, IsSelfDualHenceNd) {
  EXPECT_TRUE(is_self_dual(*system_));
  EXPECT_TRUE(is_nondominated(*system_));
}

TEST_P(NdCoterieContract, Lemma21EveryTransversalContainsAQuorum) {
  EXPECT_TRUE(every_transversal_contains_quorum(*system_));
}

TEST_P(NdCoterieContract, QuorumSizeBoundsMatchEnumeration) {
  const auto quorums = system_->enumerate_quorums();
  ASSERT_FALSE(quorums.empty());
  std::size_t lo = system_->universe_size() + 1, hi = 0;
  for (const auto& q : quorums) {
    lo = std::min(lo, q.count());
    hi = std::max(hi, q.count());
    EXPECT_TRUE(system_->is_quorum(q));
  }
  EXPECT_EQ(system_->min_quorum_size(), lo);
  EXPECT_EQ(system_->max_quorum_size(), hi);
}

TEST_P(NdCoterieContract, CharacteristicFunctionIsMonotone) {
  const std::size_t n = system_->universe_size();
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    if (!system_->contains_quorum(ElementSet::from_mask(n, mask))) continue;
    for (std::size_t e = 0; e < n; ++e)
      ASSERT_TRUE(system_->contains_quorum(
          ElementSet::from_mask(n, mask | (1ULL << e))))
          << "mask=" << mask << " e=" << e;
  }
}

TEST_P(NdCoterieContract, Fact23AvailabilityIdentities) {
  EXPECT_NEAR(failure_probability_exact(*system_, 0.5), 0.5, 1e-12);
  for (double p : {0.1, 0.25, 0.4}) {
    const double f = failure_probability_exact(*system_, p);
    EXPECT_NEAR(f + failure_probability_exact(*system_, 1.0 - p), 1.0, 1e-12)
        << "p=" << p;
    EXPECT_LE(f, p + 1e-12) << "p=" << p;  // Fact 2.3(1)
  }
}

TEST_P(NdCoterieContract, GenericStrategiesReturnValidWitnesses) {
  Rng rng(0xC0FFEE);
  const RandomOrderProbe random_order(*system_);
  const GreedyCandidateProbe greedy(*system_);
  for (int trial = 0; trial < 40; ++trial) {
    const double p = rng.uniform_real(0.1, 0.9);
    const Coloring coloring =
        sample_iid_coloring(system_->universe_size(), p, rng);
    for (const ProbeStrategy* strategy :
         {static_cast<const ProbeStrategy*>(&random_order),
          static_cast<const ProbeStrategy*>(&greedy)}) {
      ProbeSession session(coloring);
      const Witness witness = strategy->run(session, rng);
      ASSERT_EQ(
          validate_witness(*system_, coloring, witness, session.probed()), "")
          << strategy->name();
    }
  }
}

TEST_P(NdCoterieContract, PpcIsSymmetricInPAndQ) {
  if (system_->universe_size() > 12) GTEST_SKIP() << "DP too large";
  for (double p : {0.2, 0.35})
    EXPECT_NEAR(ppc_exact(*system_, p), ppc_exact(*system_, 1.0 - p), 1e-9)
        << "p=" << p;
}

TEST_P(NdCoterieContract, ExactlyOneMonochromaticQuorumPerColoring) {
  // The operational meaning of self-duality (Section 2.3): every coloring
  // admits a witness of exactly one color.
  const std::size_t n = system_->universe_size();
  const std::uint64_t limit = 1ULL << n;
  const std::uint64_t full = limit - 1;
  for (std::uint64_t greens = 0; greens < limit; ++greens) {
    const bool green_quorum =
        system_->contains_quorum(ElementSet::from_mask(n, greens));
    const bool red_quorum =
        system_->contains_quorum(ElementSet::from_mask(n, full & ~greens));
    ASSERT_NE(green_quorum, red_quorum) << "greens=" << greens;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConstructions, NdCoterieContract,
    ::testing::Values(
        SystemCase{"Maj1", [] { return std::make_shared<MajoritySystem>(1); }},
        SystemCase{"Maj5", [] { return std::make_shared<MajoritySystem>(5); }},
        SystemCase{"Maj9", [] { return std::make_shared<MajoritySystem>(9); }},
        SystemCase{"Wheel4", [] { return std::make_shared<WheelSystem>(4); }},
        SystemCase{"Wheel7", [] { return std::make_shared<WheelSystem>(7); }},
        SystemCase{"CW_123",
                   [] {
                     return std::make_shared<CrumblingWall>(
                         std::vector<std::size_t>{1, 2, 3});
                   }},
        SystemCase{"CW_132",
                   [] {
                     return std::make_shared<CrumblingWall>(
                         std::vector<std::size_t>{1, 3, 2});
                   }},
        SystemCase{"CW_1222",
                   [] {
                     return std::make_shared<CrumblingWall>(
                         std::vector<std::size_t>{1, 2, 2, 2});
                   }},
        SystemCase{"Triang4",
                   [] {
                     return std::make_shared<CrumblingWall>(
                         CrumblingWall::triang(4));
                   }},
        SystemCase{"Tree_h1", [] { return std::make_shared<TreeSystem>(1); }},
        SystemCase{"Tree_h2", [] { return std::make_shared<TreeSystem>(2); }},
        SystemCase{"HQS_h1", [] { return std::make_shared<HQSystem>(1); }},
        SystemCase{"HQS_h2", [] { return std::make_shared<HQSystem>(2); }},
        SystemCase{"Fano", [] { return std::make_shared<FppSystem>(2); }},
        SystemCase{"VotesWheel5",
                   [] {
                     return std::make_shared<VoteSystem>(VoteSystem::wheel(5));
                   }},
        SystemCase{"Votes_32211",
                   [] {
                     return std::make_shared<VoteSystem>(
                         std::vector<std::size_t>{3, 2, 2, 1, 1}, 5);
                   }},
        SystemCase{"Composite_Maj3_Maj3",
                   [] {
                     return std::make_shared<CompositeSystem>(
                         CompositeSystem::uniform(
                             std::make_shared<MajoritySystem>(3),
                             std::make_shared<MajoritySystem>(3)));
                   }},
        SystemCase{"Composite_Wheel3_CW12",
                   [] {
                     return std::make_shared<CompositeSystem>(
                         CompositeSystem::uniform(
                             std::make_shared<WheelSystem>(3),
                             std::make_shared<CrumblingWall>(
                                 std::vector<std::size_t>{1, 2})));
                   }}),
    [](const ::testing::TestParamInfo<SystemCase>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace qps
