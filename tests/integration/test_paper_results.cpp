// End-to-end reproduction checks for the paper's headline results:
// the Section 2.3 worked example, Table 1's relationships, and the
// cross-model orderings.  These are the tests that certify the repository
// reproduces the paper, not just that its pieces work.
#include <gtest/gtest.h>

#include <cmath>

#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_tree.h"
#include "core/coloring.h"
#include "core/estimator.h"
#include "core/exact/pc_exact.h"
#include "core/exact/pcr_exact.h"
#include "core/exact/ppc_exact.h"
#include "core/exact/yao_bound.h"
#include "core/expectation.h"
#include "core/formulas.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "util/stats.h"

namespace qps {
namespace {

TEST(PaperResults, Section23WorkedExampleMaj3) {
  // PC(Maj3) = 3, PCR(Maj3) = 8/3, PPC(Maj3) = 5/2 -- computed by three
  // independent engines (minimax DP, strategy-enumeration game, Bellman DP).
  const MajoritySystem maj3(3);
  EXPECT_EQ(pc_exact(maj3), 3u);
  EXPECT_NEAR(pcr_exact(maj3).value, 8.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(ppc_exact(maj3, 0.5), 2.5);
}

TEST(PaperResults, ThreeModelsAreOrdered) {
  // PPC_{1/2} <= PCR <= PC on every system the engines can handle.
  const MajoritySystem maj(3);
  const MajoritySystem maj5(5);
  const TreeSystem tree(1);
  const CrumblingWall wheel4 = CrumblingWall::wheel(4);
  for (const QuorumSystem* s : std::vector<const QuorumSystem*>{
           &maj, &maj5, &tree, &wheel4}) {
    const double ppc = ppc_exact(*s, 0.5);
    const double pcr = pcr_exact(*s).value;
    const double pc = static_cast<double>(pc_exact(*s));
    EXPECT_LE(ppc, pcr + 1e-9) << s->name();
    EXPECT_LE(pcr, pc + 1e-9) << s->name();
  }
}

TEST(PaperResults, Table1MajRow) {
  // Probabilistic: n - theta(sqrt n) at p = 1/2.  Randomized:
  // n - (n-1)/(n+3) exactly, certified by the Yao engine.
  const std::size_t n = 9;
  const MajoritySystem maj(n);
  const double ppc = ppc_exact(maj, 0.5);
  EXPECT_LT(ppc, static_cast<double>(n));
  EXPECT_GT(ppc, static_cast<double>(n) - 3.0 * std::sqrt(n));
  EXPECT_NEAR(yao_bound(maj, maj_hard_distribution(n)),
              r_probe_maj_worst_case(n).to_double(), 1e-9);
  EXPECT_EQ(pc_exact(maj), n);  // evasive in the deterministic model
}

TEST(PaperResults, Table1TriangRow) {
  // Probabilistic: Probe_CW pays <= 2k-1 regardless of n; randomized
  // lower bound (n+k)/2.
  const CrumblingWall triang = CrumblingWall::triang(3);
  const std::size_t n = triang.universe_size();  // 6
  const std::size_t k = triang.row_count();      // 3
  EXPECT_LE(ppc_exact(triang, 0.5), 2.0 * static_cast<double>(k) - 1.0);
  EXPECT_NEAR(yao_bound(triang, cw_hard_distribution(triang)),
              (static_cast<double>(n) + static_cast<double>(k)) / 2.0, 1e-9);
  EXPECT_EQ(pc_exact(triang), n);
}

TEST(PaperResults, Table1TreeRow) {
  // Probabilistic: O(n^0.585) -- the exact optimum at h=2 is far below n.
  // Randomized: lower bound 2(n+1)/3 via Yao; upper bound 5n/6 + 1/6.
  const TreeSystem tree(2);
  const std::size_t n = tree.universe_size();  // 7
  EXPECT_LT(ppc_exact(tree, 0.5), probe_tree_expected(2, 0.5) + 1e-9);
  const double yao = yao_bound(tree, tree_hard_distribution(tree));
  EXPECT_NEAR(yao, 2.0 * (static_cast<double>(n) + 1.0) / 3.0, 1e-9);
  EXPECT_LE(yao, r_probe_tree_bound(n));
  EXPECT_EQ(pc_exact(tree), n);
}

TEST(PaperResults, Table1HqsRow) {
  // Probabilistic: Probe_HQS costs exactly (5/2)^h; the true optimum at
  // h=2 is slightly lower (393/64 -- see the Thm 3.9 deviation note in
  // EXPERIMENTS.md).  Randomized: IR improves on R on the worst case.
  EXPECT_DOUBLE_EQ(probe_hqs_expected(2, 0.5), 6.25);
  EXPECT_DOUBLE_EQ(ppc_exact(HQSystem(2), 0.5), 393.0 / 64.0);
  const HQSystem hqs(4);
  const Coloring worst = hqs_worst_case_coloring(hqs, Color::kGreen);
  const double r_cost = r_probe_hqs_expectation(hqs, worst);
  const double ir_cost = ir_probe_hqs_expectation(hqs, worst);
  EXPECT_NEAR(r_cost, std::pow(8.0 / 3.0, 4.0), 1e-9);
  EXPECT_LT(ir_cost, r_cost);
  EXPECT_GT(ir_cost, std::pow(2.5, 4.0));  // above the PPC lower bound
}

TEST(PaperResults, CrumblingWallGapProbabilisticVsDeterministic) {
  // The paper's flagship gap: PC(CW) = n but PPC is O(k).  Make the wall
  // wide (n = 11, k = 3) and verify both sides exactly.
  const CrumblingWall wall({1, 5, 5});
  EXPECT_EQ(pc_exact(wall), 11u);
  EXPECT_LE(ppc_exact(wall, 0.5), 5.0);  // 2k - 1
}

TEST(PaperResults, TreePolynomialGapAcrossP) {
  // Prop 3.6: the exponent log2(1+p) varies with p.  Fitting a power law
  // over heights removes the constant factor that a single-point
  // log-ratio would absorb.
  for (double p : {0.5, 0.3, 0.2}) {
    // For p < 1/2 the per-level factor 1 + p + (q-p)F(h) converges only as
    // fast as F(h) ~ (p + 1/2)^h decays, so fit over larger heights there.
    const std::size_t h_lo = p == 0.5 ? 10 : 24;
    const std::size_t h_hi = p == 0.5 ? 18 : 34;
    std::vector<double> ns, costs;
    for (std::size_t h = h_lo; h <= h_hi; ++h) {
      ns.push_back(std::pow(2.0, static_cast<double>(h) + 1.0) - 1.0);
      costs.push_back(probe_tree_expected(h, p));
    }
    const LinearFit fit = fit_power_law(ns, costs);
    EXPECT_NEAR(fit.slope, tree_ppc_exponent(p), 0.01) << "p=" << p;
  }
  // The polynomial gap: the p = 0.2 exponent is far below the p = 0.5 one.
  EXPECT_LT(tree_ppc_exponent(0.2), tree_ppc_exponent(0.5) - 0.3);
}

TEST(PaperResults, HqsMeasuredExponentMatches0834) {
  // Fit the exponent of Probe_HQS's exact cost at p = 1/2 over heights
  // 4..9: must be log_3 2.5 to high precision (the recursion is exact).
  std::vector<double> ns, costs;
  for (std::size_t h = 4; h <= 9; ++h) {
    ns.push_back(std::pow(3.0, static_cast<double>(h)));
    costs.push_back(probe_hqs_expected(h, 0.5));
  }
  const LinearFit fit = fit_power_law(ns, costs);
  EXPECT_NEAR(fit.slope, hqs_ppc_exponent(), 1e-9);
}

TEST(PaperResults, MonteCarloTreeExponentAtHalf) {
  // End-to-end: measure Probe_Tree by simulation across sizes and fit the
  // exponent; expect ~0.585 within Monte-Carlo tolerance.
  Rng rng(404);
  EstimatorOptions options;
  options.trials = 8000;
  std::vector<double> ns, costs;
  for (std::size_t h : {6u, 8u, 10u, 12u}) {
    const TreeSystem tree(h);
    const ProbeTree strategy(tree);
    const auto stats = estimate_ppc(tree, strategy, 0.5, options, rng);
    ns.push_back(static_cast<double>(tree.universe_size()));
    costs.push_back(stats.mean());
  }
  const LinearFit fit = fit_power_law(ns, costs);
  EXPECT_NEAR(fit.slope, 0.585, 0.03);
}

TEST(PaperResults, RandomizedBeatsDeterministicOnTreeWorstCase) {
  // PC(Tree) = n but R_Probe_Tree's worst coloring costs < n; exhaustive
  // over all 2^7 colorings at h = 2.
  const TreeSystem tree(2);
  double worst = 0;
  for (std::uint64_t mask = 0; mask < (1ULL << 7); ++mask)
    worst = std::max(worst, r_probe_tree_expectation(
                                tree, Coloring(7, ElementSet::from_mask(7, mask))));
  EXPECT_LT(worst, 7.0);
  EXPECT_GE(worst, 2.0 * 8.0 / 3.0 - 1e-9);  // >= Yao bound 16/3
}

}  // namespace
}  // namespace qps
