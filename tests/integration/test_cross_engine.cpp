// Differential testing across independent engines on randomized inputs.
//
// Random weighted-voting coteries (intersection guaranteed by the
// threshold condition) are pushed through every engine and strategy, and
// the invariants that must relate them are asserted:
//   * PPC_p(S) <= PCR(S) <= PC(S)  (models are ordered),
//   * PPC is symmetric in p <-> 1-p iff the coterie is self-dual,
//   * every strategy's Monte-Carlo mean >= the PPC optimum,
//   * availability enumeration == Fact 2.3 relations for ND systems,
//   * witnesses validate on every run.
#include <gtest/gtest.h>

#include <memory>

#include "core/algorithms/greedy.h"
#include "core/algorithms/random_order.h"
#include "core/estimator.h"
#include "core/exact/pc_exact.h"
#include "core/exact/pcr_exact.h"
#include "core/exact/ppc_exact.h"
#include "core/exact/decision_tree.h"
#include "quorum/availability.h"
#include "quorum/properties.h"
#include "quorum/vote_system.h"

namespace qps {
namespace {

VoteSystem random_vote_system(Rng& rng, std::size_t n) {
  while (true) {
    std::vector<std::size_t> votes(n);
    std::size_t total = 0;
    for (auto& w : votes) {
      w = 1 + rng.below(4);
      total += w;
    }
    const std::size_t threshold = total / 2 + 1;
    if (2 * threshold > total && threshold <= total)
      return VoteSystem(std::move(votes), threshold);
  }
}

TEST(CrossEngine, ModelsAreOrderedOnRandomCoteries) {
  Rng rng(1234);
  for (int trial = 0; trial < 12; ++trial) {
    const VoteSystem system = random_vote_system(rng, 4 + rng.below(2));
    const double ppc = ppc_exact(system, 0.5);
    const double pcr = pcr_exact(system).value;
    const auto pc = static_cast<double>(pc_exact(system));
    EXPECT_LE(ppc, pcr + 1e-9) << system.name() << " trial " << trial;
    EXPECT_LE(pcr, pc + 1e-9) << system.name() << " trial " << trial;
    // Thm 4.1: PCR >= max quorum size.
    EXPECT_GE(pcr + 1e-9, static_cast<double>(system.max_quorum_size()))
        << system.name();
    // For ND coteries every certificate is a monochromatic quorum, so even
    // the best case needs min_quorum_size probes.  (Dominated systems can
    // certify failure through a smaller transversal -- e.g. one veto
    // member -- so the floor is restricted to self-dual systems.)
    if (is_self_dual(system))
      EXPECT_GE(ppc + 1e-9, static_cast<double>(system.min_quorum_size()))
          << system.name();
  }
}

TEST(CrossEngine, PpcSymmetryCharacterizesSelfDuality) {
  Rng rng(99);
  int self_dual_seen = 0, dominated_seen = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const VoteSystem system = random_vote_system(rng, 5 + rng.below(3));
    const bool self_dual = is_self_dual(system);
    const double at_03 = ppc_exact(system, 0.3);
    const double at_07 = ppc_exact(system, 0.7);
    if (self_dual) {
      ++self_dual_seen;
      EXPECT_NEAR(at_03, at_07, 1e-9) << system.name();
    } else {
      ++dominated_seen;
      // Not-self-dual systems are harder to certify dead than alive (or
      // vice versa); equality would be a coincidence we do not assert
      // either way, but Fact 2.3(2) must fail:
      const double f03 = failure_probability_exact(system, 0.3);
      const double f07 = failure_probability_exact(system, 0.7);
      EXPECT_GT(std::abs(f03 + f07 - 1.0), 1e-12) << system.name();
    }
  }
  // The sampler should have produced both kinds; if not, loosen it.
  EXPECT_GT(self_dual_seen, 0);
  EXPECT_GT(dominated_seen, 0);
}

TEST(CrossEngine, EveryStrategyDominatesTheOptimum) {
  Rng rng(555);
  EstimatorOptions options;
  options.trials = 4000;
  options.validate_witnesses = true;
  for (int trial = 0; trial < 6; ++trial) {
    const VoteSystem system = random_vote_system(rng, 6);
    const double optimum = ppc_exact(system, 0.5);
    const GreedyCandidateProbe greedy(system);
    const RandomOrderProbe random_order(system);
    const auto greedy_mean =
        estimate_ppc(system, greedy, 0.5, options, rng).mean();
    const auto random_mean =
        estimate_ppc(system, random_order, 0.5, options, rng).mean();
    EXPECT_GE(greedy_mean, optimum - 0.15) << system.name();
    EXPECT_GE(random_mean, optimum - 0.15) << system.name();
  }
}

TEST(CrossEngine, DecisionTreeMatchesDpOnRandomCoteries) {
  Rng rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    const VoteSystem system = random_vote_system(rng, 5 + rng.below(2));
    for (double p : {0.25, 0.5}) {
      const auto tree = optimal_ppc_tree(system, p);
      EXPECT_NEAR(tree->expected_depth(p), ppc_exact(system, p), 1e-12)
          << system.name() << " p=" << p;
      EXPECT_LE(tree->depth(), system.universe_size());
      // The extracted tree must decide the true state on every coloring.
      const std::size_t n = system.universe_size();
      for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
        const Coloring coloring(n, ElementSet::from_mask(n, mask));
        const auto [color, probes] = tree->evaluate(coloring);
        EXPECT_EQ(color == Color::kGreen,
                  system.contains_quorum(coloring.greens()))
            << system.name() << " mask=" << mask;
      }
    }
  }
}

TEST(CrossEngine, AvailabilityRelationsOnRandomCoteries) {
  Rng rng(4242);
  for (int trial = 0; trial < 10; ++trial) {
    const VoteSystem system = random_vote_system(rng, 5 + rng.below(4));
    // F is monotone nondecreasing in p for every monotone system.
    double previous = -1.0;
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      const double f = failure_probability_exact(system, p);
      EXPECT_GE(f, previous - 1e-12) << system.name();
      previous = f;
    }
    if (is_self_dual(system))
      EXPECT_NEAR(failure_probability_exact(system, 0.5), 0.5, 1e-12)
          << system.name();
  }
}

}  // namespace
}  // namespace qps
