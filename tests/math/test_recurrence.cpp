// Fact 2.6 (linear recurrences) and Lemma 2.5 (damped products).
#include "math/recurrence.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace qps {
namespace {

TEST(LinearRecurrence, IterationMatchesClosedFormConstantCoefficients) {
  const double f0 = 1.0, a = 2.0, b = 2.0 / 3.0;
  const auto f = solve_linear_recurrence(
      f0, 10, [&](std::size_t) { return a; }, [&](std::size_t) { return b; });
  for (std::size_t h = 0; h <= 10; ++h)
    EXPECT_NEAR(f[h], linear_recurrence_closed_form(f0, a, b, h), 1e-9)
        << "h=" << h;
}

TEST(LinearRecurrence, AEqualsOneIsArithmetic) {
  EXPECT_DOUBLE_EQ(linear_recurrence_closed_form(3.0, 1.0, 2.0, 5), 13.0);
}

TEST(LinearRecurrence, Theorem47Recursion) {
  // T_h = 2/3 + 2 T_{h-1}, T_0 = 1 solves to (5n+1)/6 with n = 2^{h+1}-1.
  const auto f = solve_linear_recurrence(
      1.0, 12, [](std::size_t) { return 2.0; },
      [](std::size_t) { return 2.0 / 3.0; });
  for (std::size_t h = 0; h <= 12; ++h) {
    const double n = std::pow(2.0, static_cast<double>(h) + 1.0) - 1.0;
    EXPECT_NEAR(f[h], (5.0 * n + 1.0) / 6.0, 1e-6) << "h=" << h;
  }
}

TEST(LinearRecurrence, VaryingCoefficients) {
  // f(h) = h + h * f(h-1), f(0) = 0: f(1) = 1, f(2) = 4, f(3) = 15.
  const auto f = solve_linear_recurrence(
      0.0, 3, [](std::size_t i) { return static_cast<double>(i); },
      [](std::size_t i) { return static_cast<double>(i); });
  EXPECT_DOUBLE_EQ(f[1], 1.0);
  EXPECT_DOUBLE_EQ(f[2], 4.0);
  EXPECT_DOUBLE_EQ(f[3], 15.0);
}

TEST(DampedProduct, ExactSmallCases) {
  // prod_{i=1..2} (2 + 1 * 0.5^i) = 2.5 * 2.25 = 5.625.
  EXPECT_NEAR(damped_product(2.0, 0.5, 1.0, 2), 5.625, 1e-12);
  EXPECT_DOUBLE_EQ(damped_product(2.0, 0.5, 1.0, 0), 1.0);
}

TEST(DampedProductBound, Lemma25Holds) {
  // The bound e^{Bc/a} a^h dominates the product for many parameters.
  for (double a : {1.5, 2.0, 3.0})
    for (double b : {0.3, 0.5, 0.75})
      for (double c : {0.5, 1.0, 2.0})
        for (std::size_t h : {1u, 5u, 20u, 60u}) {
          EXPECT_LE(damped_product(a, b, c, h),
                    damped_product_bound(a, b, c, h) * (1 + 1e-12))
              << "a=" << a << " b=" << b << " c=" << c << " h=" << h;
        }
}

TEST(DampedProductBound, TightUpToConstantFactor) {
  // The ratio bound/product converges (the product is a^h times a
  // convergent infinite product), so it stays bounded in h.
  const double r1 = damped_product_bound(2.0, 0.5, 1.0, 30) /
                    damped_product(2.0, 0.5, 1.0, 30);
  const double r2 = damped_product_bound(2.0, 0.5, 1.0, 60) /
                    damped_product(2.0, 0.5, 1.0, 60);
  EXPECT_NEAR(r1, r2, 1e-6);
  EXPECT_LT(r1, 2.0);
}

TEST(DampedProductBound, RejectsBadParameters) {
  EXPECT_THROW(damped_product_bound(2.0, 1.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(damped_product_bound(2.0, 0.0, 1.0, 3), std::invalid_argument);
  EXPECT_THROW(damped_product_bound(0.0, 0.5, 1.0, 3), std::invalid_argument);
}

TEST(DampedProduct, Theorem38LowPRecursion) {
  // Thm 3.8 for p < 1/2 bounds T(h) by prod (2 + 2p(3p-2p^2)^i), which by
  // Lemma 2.5 is O(2^h) = O(n^{log_3 2}).
  const double p = 0.3;
  const double b = 3 * p - 2 * p * p;
  const double product = damped_product(2.0, b, 2 * p, 20);
  const double bound = damped_product_bound(2.0, b, 2 * p, 20);
  EXPECT_LE(product, bound);
  EXPECT_LT(bound / std::pow(2.0, 20), 10.0);  // constant-factor over 2^h
}

}  // namespace
}  // namespace qps
