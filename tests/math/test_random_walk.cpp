// Lemma 2.4: absorption time of the N x N directed grid walk.
#include "math/random_walk.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace qps {
namespace {

TEST(GridWalk, TrivialCases) {
  // N = 1: a single step always reaches a border.
  EXPECT_DOUBLE_EQ(grid_walk_expected_time(1, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(grid_walk_expected_time(1, 0.2), 1.0);
}

TEST(GridWalk, DegenerateProbabilities) {
  // p = 0: straight up, exactly N steps.  p = 1: straight right.
  EXPECT_DOUBLE_EQ(grid_walk_expected_time(10, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(grid_walk_expected_time(10, 1.0), 10.0);
}

TEST(GridWalk, SmallExactValue) {
  // N = 2, p = 1/2 by hand: E(0,0) = 1 + E(1,0) with E(1,0) = E(0,1) =
  // 1 + 0.5*E(1,1), E(1,1) = 1.  So E = 1 + 1.5 = 2.5.
  EXPECT_DOUBLE_EQ(grid_walk_expected_time(2, 0.5), 2.5);
}

TEST(GridWalk, BoundedBy2NMinusSqrt) {
  for (std::size_t n : {4u, 16u, 64u, 256u}) {
    const double e = grid_walk_expected_time(n, 0.5);
    EXPECT_LT(e, 2.0 * n);
    EXPECT_GT(e, 2.0 * n - 3.0 * std::sqrt(static_cast<double>(n)));
  }
}

TEST(GridWalk, DeficitGrowsLikeSqrtN) {
  // (2N - E(T)) should scale as sqrt(N): quadrupling N doubles the deficit.
  const double d1 = 2.0 * 100 - grid_walk_expected_time(100, 0.5);
  const double d2 = 2.0 * 400 - grid_walk_expected_time(400, 0.5);
  EXPECT_NEAR(d2 / d1, 2.0, 0.06);
}

TEST(GridWalk, BiasedCaseApproachesNOverQ) {
  // p < q: E(T) -> N/q.
  for (double p : {0.1, 0.25, 0.4}) {
    const double q = 1.0 - p;
    const double e = grid_walk_expected_time(300, p);
    EXPECT_NEAR(e, 300.0 / q, 1.0) << "p=" << p;
  }
}

TEST(GridWalk, SymmetricInPAndQ) {
  for (std::size_t n : {5u, 20u})
    for (double p : {0.1, 0.3})
      EXPECT_NEAR(grid_walk_expected_time(n, p),
                  grid_walk_expected_time(n, 1.0 - p), 1e-9);
}

TEST(GridWalk, AsymptoticTracksExact) {
  // At p = 1/2 the asymptotic 2N - sqrt(4N/pi) should be within a few
  // percent of the exact DP for moderate N.
  for (std::size_t n : {100u, 400u}) {
    const double exact = grid_walk_expected_time(n, 0.5);
    const double asym = grid_walk_asymptotic(n, 0.5);
    EXPECT_NEAR(asym / exact, 1.0, 0.02) << "n=" << n;
  }
  EXPECT_DOUBLE_EQ(grid_walk_asymptotic(100, 0.2), 100.0 / 0.8);
  EXPECT_DOUBLE_EQ(grid_walk_asymptotic(100, 0.8), 100.0 / 0.8);
}

TEST(GridWalk, SimulationAgreesWithExact) {
  Rng rng(77);
  for (double p : {0.5, 0.3}) {
    const double exact = grid_walk_expected_time(50, p);
    const double sim = grid_walk_simulated(50, p, 40000, rng);
    EXPECT_NEAR(sim / exact, 1.0, 0.02) << "p=" << p;
  }
}

TEST(GridWalk, RejectsBadArguments) {
  EXPECT_THROW(grid_walk_expected_time(0, 0.5), std::invalid_argument);
  EXPECT_THROW(grid_walk_expected_time(5, -0.1), std::invalid_argument);
  EXPECT_THROW(grid_walk_expected_time(5, 1.1), std::invalid_argument);
}

}  // namespace
}  // namespace qps
