// The simplex LP and the zero-sum game solver used for exact PCR values.
#include "math/game.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace qps {
namespace {

TEST(Simplex, SolvesTextbookLP) {
  // maximize 3x + 5y  s.t.  x <= 4, 2y <= 12, 3x + 2y <= 18; optimum 36 at
  // (2, 6).
  std::vector<std::vector<double>> a = {{1, 0}, {0, 2}, {3, 2}};
  std::vector<double> b = {4, 12, 18};
  std::vector<double> c = {3, 5};
  std::vector<double> x;
  const double opt = simplex_maximize(a, b, c, x);
  EXPECT_NEAR(opt, 36.0, 1e-9);
  EXPECT_NEAR(x[0], 2.0, 1e-9);
  EXPECT_NEAR(x[1], 6.0, 1e-9);
}

TEST(Simplex, DetectsUnbounded) {
  std::vector<std::vector<double>> a = {{-1.0, 0.0}};
  std::vector<double> b = {1};
  std::vector<double> c = {1, 1};
  std::vector<double> x;
  EXPECT_THROW(simplex_maximize(a, b, c, x), std::runtime_error);
}

TEST(Simplex, DualsMatchComplementarySlackness) {
  std::vector<std::vector<double>> a = {{1, 0}, {0, 2}, {3, 2}};
  std::vector<double> b = {4, 12, 18};
  std::vector<double> c = {3, 5};
  std::vector<double> x, y;
  const double primal = simplex_maximize(a, b, c, x, &y);
  // Strong duality: b . y == optimum.
  double dual = 0;
  for (std::size_t i = 0; i < b.size(); ++i) dual += b[i] * y[i];
  EXPECT_NEAR(dual, primal, 1e-9);
}

TEST(Simplex, RejectsNegativeRhs) {
  std::vector<std::vector<double>> a = {{1.0}};
  std::vector<double> b = {-1};
  std::vector<double> c = {1};
  std::vector<double> x;
  EXPECT_THROW(simplex_maximize(a, b, c, x), std::invalid_argument);
}

TEST(Game, MatchingPennies) {
  // Value 0, both mix 50/50.
  const GameSolution s = solve_zero_sum_game({{1, -1}, {-1, 1}});
  EXPECT_NEAR(s.value, 0.0, 1e-9);
  EXPECT_NEAR(s.row_strategy[0], 0.5, 1e-9);
  EXPECT_NEAR(s.column_strategy[0], 0.5, 1e-9);
}

TEST(Game, RockPaperScissors) {
  const GameSolution s = solve_zero_sum_game(
      {{0, -1, 1}, {1, 0, -1}, {-1, 1, 0}});
  EXPECT_NEAR(s.value, 0.0, 1e-9);
  for (double p : s.row_strategy) EXPECT_NEAR(p, 1.0 / 3.0, 1e-9);
  for (double p : s.column_strategy) EXPECT_NEAR(p, 1.0 / 3.0, 1e-9);
}

TEST(Game, DominatedStrategyGetsZeroWeight) {
  // Column 1 dominates column 0 for the minimizer (always cheaper).
  const GameSolution s = solve_zero_sum_game({{5, 1}, {6, 2}});
  EXPECT_NEAR(s.value, 2.0, 1e-9);  // row player picks row 1, column 1
  EXPECT_NEAR(s.column_strategy[0], 0.0, 1e-9);
}

TEST(Game, SaddlePoint) {
  // A pure saddle at (row 0, col 0) with value 3.
  const GameSolution s = solve_zero_sum_game({{3, 5}, {2, 7}});
  EXPECT_NEAR(s.value, 3.0, 1e-9);
}

TEST(Game, ValueIsBetweenPureBounds) {
  const std::vector<std::vector<double>> m = {{2, 7, 1}, {4, 3, 6}, {5, 2, 4}};
  const GameSolution s = solve_zero_sum_game(m);
  // maximin <= value <= minimax.
  double maximin = -1e18, minimax = 1e18;
  for (const auto& row : m) {
    double rmin = 1e18;
    for (double v : row) rmin = std::min(rmin, v);
    maximin = std::max(maximin, rmin);
  }
  for (std::size_t j = 0; j < m[0].size(); ++j) {
    double cmax = -1e18;
    for (const auto& row : m) cmax = std::max(cmax, row[j]);
    minimax = std::min(minimax, cmax);
  }
  EXPECT_GE(s.value, maximin - 1e-9);
  EXPECT_LE(s.value, minimax + 1e-9);
}

TEST(Game, StrategiesAreDistributions) {
  const GameSolution s = solve_zero_sum_game({{2, 7, 1}, {4, 3, 6}});
  double row_total = 0, col_total = 0;
  for (double p : s.row_strategy) {
    EXPECT_GE(p, -1e-9);
    row_total += p;
  }
  for (double p : s.column_strategy) {
    EXPECT_GE(p, -1e-9);
    col_total += p;
  }
  EXPECT_NEAR(row_total, 1.0, 1e-9);
  EXPECT_NEAR(col_total, 1.0, 1e-9);
}

TEST(Game, NegativeEntriesHandledByShift) {
  const GameSolution s = solve_zero_sum_game({{-3, -1}, {-1, -3}});
  EXPECT_NEAR(s.value, -2.0, 1e-9);
}

TEST(Game, OptimalMixGuaranteesValue) {
  // Row strategy must achieve >= value against every column.
  const std::vector<std::vector<double>> m = {{1, 4}, {3, 2}};
  const GameSolution s = solve_zero_sum_game(m);
  for (std::size_t j = 0; j < 2; ++j) {
    double expected = 0;
    for (std::size_t i = 0; i < 2; ++i)
      expected += s.row_strategy[i] * m[i][j];
    EXPECT_GE(expected, s.value - 1e-9);
  }
  // Column strategy must achieve <= value against every row.
  for (std::size_t i = 0; i < 2; ++i) {
    double expected = 0;
    for (std::size_t j = 0; j < 2; ++j)
      expected += s.column_strategy[j] * m[i][j];
    EXPECT_LE(expected, s.value + 1e-9);
  }
}

TEST(Game, RejectsEmptyOrRagged) {
  EXPECT_THROW(solve_zero_sum_game({}), std::invalid_argument);
  EXPECT_THROW(solve_zero_sum_game({{1, 2}, {3}}), std::invalid_argument);
}

}  // namespace
}  // namespace qps
