#include "math/rational.h"

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

namespace qps {
namespace {

TEST(Rational, DefaultIsZero) {
  Rational r;
  EXPECT_EQ(r.numerator(), 0);
  EXPECT_EQ(r.denominator(), 1);
}

TEST(Rational, ReducesOnConstruction) {
  const Rational r(6, 8);
  EXPECT_EQ(r.numerator(), 3);
  EXPECT_EQ(r.denominator(), 4);
}

TEST(Rational, NormalizesSign) {
  const Rational r(3, -4);
  EXPECT_EQ(r.numerator(), -3);
  EXPECT_EQ(r.denominator(), 4);
  const Rational z(0, -7);
  EXPECT_EQ(z.numerator(), 0);
  EXPECT_EQ(z.denominator(), 1);
}

TEST(Rational, RejectsZeroDenominator) {
  EXPECT_THROW(Rational(1, 0), std::invalid_argument);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
}

TEST(Rational, DivisionByZeroThrows) {
  EXPECT_THROW(Rational(1) / Rational(0), std::invalid_argument);
}

TEST(Rational, Comparisons) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_GT(Rational(7, 8), Rational(3, 4));
  EXPECT_EQ(Rational(2, 4), Rational(1, 2));
  EXPECT_LE(Rational(-1, 2), Rational(0));
}

TEST(Rational, ToDouble) {
  EXPECT_DOUBLE_EQ(Rational(5, 2).to_double(), 2.5);
  EXPECT_DOUBLE_EQ(Rational(8, 3).to_double(), 8.0 / 3.0);
}

TEST(Rational, ToString) {
  EXPECT_EQ(Rational(8, 3).to_string(), "8/3");
  EXPECT_EQ(Rational(4, 2).to_string(), "2");
  EXPECT_EQ(Rational(-3, 9).to_string(), "-1/3");
  std::ostringstream os;
  os << Rational(5, 2);
  EXPECT_EQ(os.str(), "5/2");
}

TEST(Rational, LargeIntermediatesReduce) {
  // (a/b) * (b/a) = 1 even when a*b would not overflow thanks to the
  // 128-bit intermediates and eager reduction.
  const std::int64_t big = 3037000499LL;  // ~sqrt(2^63)
  const Rational r(big, big - 1);
  EXPECT_EQ(r * Rational(big - 1, big), Rational(1));
}

TEST(Rational, OverflowThrows) {
  const Rational huge(INT64_MAX, 1);
  EXPECT_THROW(huge * huge, std::overflow_error);
  EXPECT_THROW(huge + huge, std::overflow_error);
}

TEST(Rational, PaperConstants) {
  // The worked example of Section 2.3 and the Fig. 9 constant.
  EXPECT_EQ(Rational(5, 2) + Rational(1, 6), Rational(8, 3));
  EXPECT_EQ(Rational(191, 27).to_string(), "191/27");
  EXPECT_NEAR(Rational(191, 27).to_double(), 7.074, 0.001);
}

}  // namespace
}  // namespace qps
