// Verifies the urn lemmas of Section 2.4 three ways: closed form vs
// independent state-space enumeration vs Monte Carlo.
#include "math/urn.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

namespace qps {
namespace {

TEST(UrnFirstRed, Fact27KnownValues) {
  // (r+g+1)/(r+1)
  EXPECT_EQ(urn_first_red_expectation(1, 0), Rational(1));
  EXPECT_EQ(urn_first_red_expectation(1, 1), Rational(3, 2));
  EXPECT_EQ(urn_first_red_expectation(2, 1), Rational(4, 3));
  EXPECT_EQ(urn_first_red_expectation(1, 9), Rational(11, 2));
}

TEST(UrnFirstRed, RequiresARedBall) {
  EXPECT_THROW(urn_first_red_expectation(0, 5), std::invalid_argument);
}

TEST(UrnJthRed, Lemma28MatchesFact27AtJ1) {
  for (std::size_t r = 1; r <= 6; ++r)
    for (std::size_t g = 0; g <= 6; ++g)
      EXPECT_EQ(urn_jth_red_expectation(r, g, 1),
                urn_first_red_expectation(r, g))
          << "r=" << r << " g=" << g;
}

TEST(UrnJthRed, DrawingAllRedsTakesAllWhenNoGreens) {
  for (std::size_t r = 1; r <= 5; ++r)
    EXPECT_EQ(urn_jth_red_expectation(r, 0, r), Rational(static_cast<std::int64_t>(r)));
}

TEST(UrnJthRed, ClosedFormEqualsEnumeration) {
  for (std::size_t r = 1; r <= 5; ++r)
    for (std::size_t g = 0; g <= 5; ++g)
      for (std::size_t j = 1; j <= r; ++j)
        EXPECT_EQ(urn_jth_red_expectation(r, g, j),
                  urn_jth_red_expectation_enumerated(r, g, j))
            << "r=" << r << " g=" << g << " j=" << j;
}

TEST(UrnJthRed, RejectsBadJ) {
  EXPECT_THROW(urn_jth_red_expectation(3, 2, 0), std::invalid_argument);
  EXPECT_THROW(urn_jth_red_expectation(3, 2, 4), std::invalid_argument);
}

TEST(UrnJthRed, MonteCarloAgrees) {
  Rng rng(2024);
  const double exact = urn_jth_red_expectation(5, 4, 3).to_double();
  const double simulated = urn_jth_red_simulated(5, 4, 3, 200000, rng);
  EXPECT_NEAR(simulated, exact, 0.02);
}

TEST(UrnJthRed, TheMajWorstCase) {
  // Thm 4.2 uses r = j = k+1, g = k:  j(n+1)/(r+1) = n - (n-1)/(n+3).
  for (std::size_t k = 1; k <= 8; ++k) {
    const std::size_t n = 2 * k + 1;
    const Rational expected =
        Rational(static_cast<std::int64_t>(n)) -
        Rational(static_cast<std::int64_t>(n) - 1,
                 static_cast<std::int64_t>(n) + 3);
    EXPECT_EQ(urn_jth_red_expectation(k + 1, k, k + 1), expected) << "n=" << n;
  }
}

TEST(UrnBothColors, Lemma29KnownValues) {
  // 1 + r/(g+1) + g/(r+1)
  EXPECT_EQ(urn_both_colors_expectation(1, 1), Rational(2));
  // r=2, g=1: 1 + 2/2 + 1/3 = 7/3.
  EXPECT_EQ(urn_both_colors_expectation(2, 1), Rational(7, 3));
  EXPECT_EQ(urn_both_colors_expectation(1, 2), Rational(7, 3));
  EXPECT_EQ(urn_both_colors_expectation(3, 3), Rational(1) + Rational(3, 4) +
                                                   Rational(3, 4));
}

TEST(UrnBothColors, SymmetricInColors) {
  for (std::size_t r = 1; r <= 6; ++r)
    for (std::size_t g = 1; g <= 6; ++g)
      EXPECT_EQ(urn_both_colors_expectation(r, g),
                urn_both_colors_expectation(g, r));
}

TEST(UrnBothColors, ClosedFormEqualsEnumeration) {
  for (std::size_t r = 1; r <= 6; ++r)
    for (std::size_t g = 1; g <= 6; ++g)
      EXPECT_EQ(urn_both_colors_expectation(r, g),
                urn_both_colors_expectation_enumerated(r, g))
          << "r=" << r << " g=" << g;
}

TEST(UrnBothColors, RequiresBothColors) {
  EXPECT_THROW(urn_both_colors_expectation(0, 3), std::invalid_argument);
  EXPECT_THROW(urn_both_colors_expectation(3, 0), std::invalid_argument);
}

TEST(UrnBothColors, Corollary43RowBound) {
  // Cor 4.3: expected probes in a row with r+g = n_i is at most
  // (n_i+1)/2 + 1/n_i, attained at r = 1 or g = 1.
  for (std::size_t total = 2; total <= 12; ++total) {
    const Rational bound(static_cast<std::int64_t>(total) + 1, 2);
    const Rational extra(1, static_cast<std::int64_t>(total));
    for (std::size_t r = 1; r < total; ++r) {
      const std::size_t g = total - r;
      EXPECT_LE(urn_both_colors_expectation(r, g), bound + extra)
          << "r=" << r << " g=" << g;
    }
    EXPECT_EQ(urn_both_colors_expectation(1, total - 1), bound + extra);
    EXPECT_EQ(urn_both_colors_expectation(total - 1, 1), bound + extra);
  }
}

}  // namespace
}  // namespace qps
