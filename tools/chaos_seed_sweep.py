#!/usr/bin/env python3
"""Randomized chaos schedules for the sharded sweep runner.

Each seed deterministically derives a fault schedule -- worker crashes
(one-shot and probabilistic), evaluation delays, and torn checkpoint
writes -- and runs the bench under it.  Fault recovery may cost retries
and wall time, never a byte of output: every faulted run must produce
aggregated JSON byte-identical to the clean reference.  Failing seeds
are printed in a directly replayable form and the exit status is
nonzero, so CI surfaces exactly which schedule to reproduce locally:

    tools/chaos_seed_sweep.py --bench build/bench/bench_tree_randomized \
        --schedules 8 --seed-base 42

The bench's own --seed (the statistical RNG) is never varied; only the
fault schedule is.  Schedules stay within the per-point retry budget by
construction (probabilistic crash rates are low and --max-point-retries
is raised), so quarantine -- which would legitimately change output --
cannot trigger.
"""

import argparse
import random
import subprocess
import sys
import tempfile
import os


def schedule_for(seed):
    """One deterministic fault schedule per seed (see fault.h grammar)."""
    rng = random.Random(seed)
    rules = []
    # Every schedule crashes each worker subprocess once, somewhere in its
    # first few points: the respawn/requeue path is the core invariant.
    rules.append("sweep/point_eval:crash:after=%d:count=1" % rng.randint(2, 6))
    if rng.random() < 0.7:  # background probabilistic crashes
        rules.append(
            "sweep/point_eval:crash:prob=%.3f:seed=%d"
            % (rng.uniform(0.01, 0.10), rng.getrandbits(32)))
    if rng.random() < 0.6:  # jittered evaluation latency, reorders completions
        rules.append(
            "sweep/point_eval:delay:ms=%d:prob=0.3:seed=%d"
            % (rng.randint(3, 25), rng.getrandbits(32)))
    if rng.random() < 0.5:  # torn journal writes (harmless without a resume)
        rules.append(
            "sweep/checkpoint_write:torn:frac=%.2f:prob=0.2:seed=%d"
            % (rng.uniform(0.1, 0.9), rng.getrandbits(32)))
    return ";".join(rules)


def run(cmd):
    return subprocess.run(cmd, stdout=subprocess.DEVNULL,
                          stderr=subprocess.PIPE, text=True)


def main():
    parser = argparse.ArgumentParser(
        description="seeded random fault schedules; output must stay "
                    "byte-identical to the clean run")
    parser.add_argument("--bench", required=True,
                        help="bench binary (sharded sweep runner)")
    parser.add_argument("--schedules", type=int, default=8,
                        help="number of seeded schedules to run")
    parser.add_argument("--seed-base", type=int, default=0,
                        help="first schedule seed (seeds are base..base+N-1)")
    parser.add_argument("--trials", type=int, default=20000)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=None,
                        help="run exactly this one schedule seed (replay mode)")
    args = parser.parse_args()

    seeds = ([args.seed] if args.seed is not None else
             list(range(args.seed_base, args.seed_base + args.schedules)))

    with tempfile.TemporaryDirectory(prefix="chaos_seed_sweep_") as tmp:
        clean = os.path.join(tmp, "clean.json")
        result = run([args.bench, "--trials", str(args.trials),
                      "--json", clean])
        if result.returncode != 0:
            sys.stderr.write("clean reference run failed (%d):\n%s"
                             % (result.returncode, result.stderr))
            return 1
        with open(clean, "rb") as f:
            reference = f.read()

        failures = []
        for seed in seeds:
            schedule = schedule_for(seed)
            out = os.path.join(tmp, "seed_%d.json" % seed)
            ck = os.path.join(tmp, "seed_%d_ck.jsonl" % seed)
            result = run([args.bench, "--trials", str(args.trials),
                          "--workers", str(args.workers),
                          "--checkpoint", ck,
                          "--max-point-retries", "25",
                          "--fault", schedule, "--json", out])
            ok = result.returncode == 0
            if ok:
                with open(out, "rb") as f:
                    ok = f.read() == reference
            status = "ok" if ok else "FAIL"
            print("seed %-6d %-4s %s" % (seed, status, schedule))
            if not ok:
                failures.append((seed, schedule, result.returncode,
                                 result.stderr))

        if failures:
            print("\n%d of %d schedules broke byte-identity; replay with:"
                  % (len(failures), len(seeds)))
            for seed, schedule, code, stderr in failures:
                print("  %s --bench %s --trials %d --workers %d --seed %d"
                      % (sys.argv[0], args.bench, args.trials, args.workers,
                         seed))
                print("    (exit %d, fault '%s')" % (code, schedule))
                tail = [l for l in stderr.splitlines() if l.strip()][-3:]
                for line in tail:
                    print("    | %s" % line)
            return 1
        print("all %d seeded schedules byte-identical to the clean run"
              % len(seeds))
        return 0


if __name__ == "__main__":
    sys.exit(main())
