// qps_workerd: generic remote sweep worker daemon.
//
// Unlike a bench re-invoked with --connect (which rebuilds its sweep from
// its own argv), this daemon knows nothing about any particular sweep: it
// advertises the standard evaluator registry (core/sweep/evaluators.h) in
// its hello, receives the serialized SweepSpec inside the coordinator's
// welcome, re-derives the spec fingerprint and refuses to serve on any
// disagreement, then evaluates requested points until bye.  Results are
// bit-identical to the coordinator computing the same points itself.
//
// Two modes:
//
//   qps_workerd --connect HOST:PORT[,HOST:PORT...]
//       Dials each coordinator in turn and serves whatever sweeps appear,
//       re-dialing between sweeps; exits 0 once every address has refused
//       connections --max-connect-failures consecutive times (the
//       coordinators are gone -- the job is over).
//
//   qps_workerd --listen[=PORT]
//       Binds (port 0 by default -- the kernel picks a free one), reports
//       "listening on 127.0.0.1:PORT" on stdout, and serves accepted
//       coordinator connections forever (a job server dials workers it
//       was given via --dial).
//
// With --metrics-json FILE the daemon dumps its metrics registry snapshot
// to FILE every --metrics-interval seconds (default 5), so an operator --
// or the distributed-smoke CI job -- can watch evaluations, heartbeats,
// and protocol counters while it serves.
//
// A protocol-version mismatch is fatal (exit 3) with both versions named:
// mixed-version fleets must fail fast, not mis-parse frames.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/net/messages.h"
#include "core/net/socket.h"
#include "core/net/socket_sweep.h"
#include "core/net/worker.h"
#include "core/obs/metrics.h"
#include "core/sweep/evaluators.h"
#include "util/flags.h"

namespace {

std::string node_name() {
  char host[256] = "worker";
  ::gethostname(host, sizeof host - 1);
  return std::string(host) + ":" + std::to_string(::getpid());
}

bool is_version_mismatch(const std::string& error) {
  return error.find("protocol version mismatch") != std::string::npos;
}

struct DaemonOptions {
  std::size_t dp_threads = 0;
  double retry_seconds = 0.5;
  int max_connect_failures = 20;
};

/// Serves one established connection; returns the outcome and exits the
/// process on a version mismatch.
qps::net::ServeOutcome serve_once(qps::net::TcpStream& stream,
                                  const qps::net::Hello& hello,
                                  const qps::net::SweepBinder& binder,
                                  const std::string& peer) {
  std::string error;
  const qps::net::ServeOutcome outcome =
      qps::net::serve_connection(stream, hello, binder, &error);
  switch (outcome) {
    case qps::net::ServeOutcome::kServedBye:
      std::cerr << "qps_workerd: sweep complete (" << peer << ")\n";
      break;
    case qps::net::ServeOutcome::kDeclinedRetry:
      std::cerr << "qps_workerd: declined by " << peer << ": " << error
                << "\n";
      break;
    case qps::net::ServeOutcome::kDeclinedFatal:
      std::cerr << "qps_workerd: fatally declined by " << peer << ": "
                << error << "\n";
      if (is_version_mismatch(error)) std::exit(3);
      break;
    case qps::net::ServeOutcome::kLost:
      std::cerr << "qps_workerd: lost " << peer << ": " << error << "\n";
      if (is_version_mismatch(error)) std::exit(3);
      break;
    default:
      break;
  }
  return outcome;
}

int run_connect_mode(const std::vector<std::string>& addresses,
                     const qps::net::Hello& hello,
                     const qps::net::SweepBinder& binder,
                     const DaemonOptions& options) {
  std::vector<std::string> hosts(addresses.size());
  std::vector<std::uint16_t> ports(addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (!qps::net::parse_host_port(addresses[i], hosts[i], ports[i])) {
      std::cerr << "qps_workerd: bad --connect address '" << addresses[i]
                << "' (want HOST:PORT)\n";
      return 2;
    }
  }

  std::vector<int> failures(addresses.size(), 0);
  for (;;) {
    bool all_gone = true;
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      if (failures[i] > options.max_connect_failures) continue;
      all_gone = false;
      qps::net::TcpStream stream =
          qps::net::TcpStream::connect(hosts[i], ports[i]);
      if (!stream.valid()) {
        ++failures[i];
        continue;
      }
      failures[i] = 0;
      serve_once(stream, hello, binder, addresses[i]);
    }
    if (all_gone) {
      std::cerr << "qps_workerd: no coordinator reachable; exiting\n";
      return 0;
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(options.retry_seconds));
  }
}

int run_listen_mode(std::uint16_t port, const qps::net::Hello& hello,
                    const qps::net::SweepBinder& binder) {
  qps::net::TcpListener listener = qps::net::TcpListener::bind(port);
  if (!listener.valid()) {
    std::cerr << "qps_workerd: cannot bind port "
              << (port == 0 ? std::string("(any)") : std::to_string(port))
              << "\n";
    return 2;
  }
  // Scripts parse this line to learn the kernel-chosen port.
  std::cout << "listening on 127.0.0.1:" << listener.port() << std::endl;
  for (;;) {
    qps::net::TcpStream stream = listener.accept();
    if (!stream.valid()) continue;
    serve_once(stream, hello, binder, "coordinator");
  }
}

}  // namespace

int main(int argc, char** argv) {
  qps::Flags flags(argc, argv);
  DaemonOptions options;
  options.dp_threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  options.retry_seconds = flags.get_double("retry-seconds", 0.5);
  options.max_connect_failures =
      static_cast<int>(flags.get_int("max-connect-failures", 20));
  const std::string connect = flags.get_string("connect", "");
  const bool listen = flags.has("listen");
  const std::string listen_value = flags.get_string("listen", "true");
  const std::string metrics_json = flags.get_string("metrics-json", "");
  const double metrics_interval = flags.get_double("metrics-interval", 5.0);
  const auto unused = flags.unused();
  if (!unused.empty() || (connect.empty() == !listen)) {
    std::cerr << "usage: qps_workerd --connect HOST:PORT[,HOST:PORT...] "
                 "| --listen[=PORT]\n"
                 "       [--threads N] [--retry-seconds S] "
                 "[--max-connect-failures N]\n"
                 "       [--metrics-json FILE] [--metrics-interval S]\n";
    return 2;
  }

  // Periodic (not just at-exit) dump: a daemon is typically killed, not
  // exited, so the file must stay fresh while it serves.  Kept alive for
  // the life of main; its destructor writes one final snapshot on the
  // clean-exit paths.
  std::unique_ptr<qps::obs::PeriodicMetricsDump> metrics_dump;
  if (!metrics_json.empty())
    metrics_dump = std::make_unique<qps::obs::PeriodicMetricsDump>(
        metrics_json, metrics_interval);

  qps::net::Hello hello;
  hello.node = node_name();
  hello.evaluators = qps::sweep::standard_evaluator_ids();
  const qps::net::SweepBinder binder =
      qps::net::registry_binder(options.dp_threads);

  if (!connect.empty()) {
    std::vector<std::string> addresses;
    for (std::size_t start = 0; start < connect.size();) {
      std::size_t comma = connect.find(',', start);
      if (comma == std::string::npos) comma = connect.size();
      if (comma > start) addresses.push_back(connect.substr(start, comma - start));
      start = comma + 1;
    }
    return run_connect_mode(addresses, hello, binder, options);
  }

  std::uint16_t port = 0;
  if (listen_value != "true") {
    char* end = nullptr;
    const unsigned long value = std::strtoul(listen_value.c_str(), &end, 10);
    if (end == listen_value.c_str() || *end != '\0' || value > 65535) {
      std::cerr << "qps_workerd: --listen expects a port, got '"
                << listen_value << "'\n";
      return 2;
    }
    port = static_cast<std::uint16_t>(value);
  }
  return run_listen_mode(port, hello, binder);
}
