// qps_workerd: generic remote sweep worker daemon.
//
// Unlike a bench re-invoked with --connect (which rebuilds its sweep from
// its own argv), this daemon knows nothing about any particular sweep: it
// advertises the standard evaluator registry (core/sweep/evaluators.h) in
// its hello, receives the serialized SweepSpec inside the coordinator's
// welcome, re-derives the spec fingerprint and refuses to serve on any
// disagreement, then evaluates requested points until bye.  Results are
// bit-identical to the coordinator computing the same points itself.
//
// Two modes:
//
//   qps_workerd --connect HOST:PORT[,HOST:PORT...]
//       Dials each coordinator in turn and serves whatever sweeps appear,
//       re-dialing between sweeps.  Failed dials back off exponentially
//       (--retry-seconds initial, doubling to --max-backoff-seconds, with
//       deterministic jitter) up to --max-connect-failures consecutive
//       failures per address.  Exits 0 once every address is exhausted
//       after having served at least one sweep (the coordinators are
//       gone -- the job is over); exits 2, naming each address, when some
//       coordinator was never reachable at all (a typo'd HOST:PORT must
//       not look like a completed job).
//
//   qps_workerd --listen[=PORT]
//       Binds (port 0 by default -- the kernel picks a free one), reports
//       "listening on 127.0.0.1:PORT" on stdout, and serves accepted
//       coordinator connections forever (a job server dials workers it
//       was given via --dial).
//
// With --metrics-json FILE the daemon dumps its metrics registry snapshot
// to FILE every --metrics-interval seconds (default 5), so an operator --
// or the distributed-smoke CI job -- can watch evaluations, heartbeats,
// and protocol counters while it serves.  --fault SPEC arms deterministic
// fault injection (grammar in core/fault/fault.h); the daemon's own site
// is "workerd/serve", hit once per accepted/dialed serving attempt.
// --idle-timeout S abandons a coordinator that goes completely silent for
// S seconds (a SIGSTOPped or wedged primary), which is how the daemon
// migrates to a standby after a failover.
//
// Besides its human-readable log lines the daemon emits structured
// one-line JSON events on stderr -- {"event": "quarantine"|"forfeit"|
// "probation"|"epoch_fence", ...} -- so an operator (or CI) can grep the
// fabric's health decisions without parsing prose.
//
// A protocol-version mismatch is fatal (exit 3) with both versions named:
// mixed-version fleets must fail fast, not mis-parse frames.
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fault/fault.h"
#include "core/net/messages.h"
#include "core/net/socket.h"
#include "core/net/socket_sweep.h"
#include "core/net/worker.h"
#include "core/obs/metrics.h"
#include "core/sweep/evaluators.h"
#include "util/backoff.h"
#include "util/flags.h"
#include "util/json.h"

namespace {

std::string node_name() {
  char host[256] = "worker";
  ::gethostname(host, sizeof host - 1);
  return std::string(host) + ":" + std::to_string(::getpid());
}

/// One structured JSON event line on stderr, in a single write(2) so
/// concurrent log writers never interleave mid-line.
void emit_event(const std::string& json_object) {
  const std::string line = json_object + "\n";
  const char* data = line.data();
  std::size_t left = line.size();
  while (left > 0) {
    const ssize_t n = ::write(STDERR_FILENO, data, left);
    if (n <= 0) return;
    data += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

bool is_version_mismatch(const std::string& error) {
  return error.find("protocol version mismatch") != std::string::npos;
}

struct DaemonOptions {
  std::size_t dp_threads = 0;
  double retry_seconds = 0.5;       // initial re-dial backoff
  double max_backoff_seconds = 10;  // re-dial backoff cap
  int max_connect_failures = 20;    // consecutive failures per address
};

/// Serves one established connection; returns the outcome and exits the
/// process on a version mismatch.
qps::net::ServeOutcome serve_once(qps::net::TcpStream& stream,
                                  const qps::net::Hello& hello,
                                  const qps::net::SweepBinder& binder,
                                  const std::string& peer,
                                  const qps::net::ServeHooks& hooks) {
  std::string error;
  qps::net::ServeOutcome outcome;
  try {
    QPS_FAULT_POINT2("workerd/serve", peer);
    outcome = qps::net::serve_connection(stream, hello, binder, &error,
                                         hooks);
  } catch (const qps::fault::InjectedFault& e) {
    outcome = qps::net::ServeOutcome::kLost;
    error = e.what();
  }
  switch (outcome) {
    case qps::net::ServeOutcome::kServedBye:
      std::cerr << "qps_workerd: sweep complete (" << peer << ")\n";
      break;
    case qps::net::ServeOutcome::kDeclinedRetry:
      std::cerr << "qps_workerd: declined by " << peer << ": " << error
                << "\n";
      break;
    case qps::net::ServeOutcome::kDeclinedFatal:
      std::cerr << "qps_workerd: fatally declined by " << peer << ": "
                << error << "\n";
      if (is_version_mismatch(error)) std::exit(3);
      break;
    case qps::net::ServeOutcome::kLost:
      // Whatever point the daemon held is forfeit: the coordinator will
      // requeue (or quarantine) it.
      emit_event("{\"event\": \"forfeit\", \"peer\": " +
                 qps::json_quote(peer) + ", \"error\": " +
                 qps::json_quote(error) + "}");
      std::cerr << "qps_workerd: lost " << peer << ": " << error << "\n";
      if (is_version_mismatch(error)) std::exit(3);
      break;
    case qps::net::ServeOutcome::kFencedStale:
      // The structured epoch_fence event came through hooks.on_fence.
      std::cerr << "qps_workerd: fenced stale coordinator " << peer << ": "
                << error << "\n";
      break;
    default:
      break;
  }
  return outcome;
}

int run_connect_mode(const std::vector<std::string>& addresses,
                     const qps::net::Hello& hello,
                     const qps::net::SweepBinder& binder,
                     const DaemonOptions& options,
                     const qps::net::ServeHooks& hooks) {
  std::vector<std::string> hosts(addresses.size());
  std::vector<std::uint16_t> ports(addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    if (!qps::net::parse_host_port(addresses[i], hosts[i], ports[i])) {
      std::cerr << "qps_workerd: bad --connect address '" << addresses[i]
                << "' (want HOST:PORT)\n";
      return 2;
    }
  }

  // Per-address state: consecutive-failure count against the budget, a
  // capped-exponential re-dial backoff (seeded per address so a fleet of
  // daemons pointed at one dead coordinator doesn't dial in lockstep), and
  // whether the address ever produced a connection at all.
  std::vector<int> failures(addresses.size(), 0);
  std::vector<bool> ever_connected(addresses.size(), false);
  std::vector<qps::util::Backoff> backoff;
  backoff.reserve(addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i)
    backoff.emplace_back(options.retry_seconds, options.max_backoff_seconds,
                         static_cast<std::uint64_t>(::getpid()) * 1315423911u +
                             i);

  for (;;) {
    bool all_gone = true;
    bool served = false;
    double sleep_seconds = 0.0;
    for (std::size_t i = 0; i < addresses.size(); ++i) {
      if (failures[i] > options.max_connect_failures) continue;
      all_gone = false;
      qps::net::TcpStream stream =
          qps::net::TcpStream::connect(hosts[i], ports[i]);
      if (!stream.valid()) {
        ++failures[i];
        const double delay = backoff[i].next();
        if (failures[i] <= options.max_connect_failures &&
            (sleep_seconds == 0.0 || delay < sleep_seconds))
          sleep_seconds = delay;
        continue;
      }
      failures[i] = 0;
      ever_connected[i] = true;
      backoff[i].reset();
      served = true;
      serve_once(stream, hello, binder, addresses[i], hooks);
    }
    if (all_gone) {
      bool unreachable = false;
      for (std::size_t i = 0; i < addresses.size(); ++i) {
        if (ever_connected[i]) continue;
        unreachable = true;
        std::cerr << "qps_workerd: coordinator " << addresses[i]
                  << " was never reachable ("
                  << options.max_connect_failures + 1
                  << " consecutive dial failures)\n";
      }
      if (unreachable) return 2;
      std::cerr << "qps_workerd: no coordinator reachable; exiting\n";
      return 0;
    }
    // A successful serve means the coordinator may have another sweep
    // queued right behind this one -- re-dial immediately.  Only an
    // all-failure pass waits, for the soonest address's backoff.
    if (!served && sleep_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(sleep_seconds));
  }
}

int run_listen_mode(std::uint16_t port, const qps::net::Hello& hello,
                    const qps::net::SweepBinder& binder,
                    const qps::net::ServeHooks& hooks) {
  qps::net::TcpListener listener = qps::net::TcpListener::bind(port);
  if (!listener.valid()) {
    std::cerr << "qps_workerd: cannot bind port "
              << (port == 0 ? std::string("(any)") : std::to_string(port))
              << "\n";
    return 2;
  }
  // Scripts parse this line to learn the kernel-chosen port.
  std::cout << "listening on 127.0.0.1:" << listener.port() << std::endl;
  // Accept failures (fd exhaustion, transient kernel errors) back off
  // instead of spinning the core.
  qps::util::Backoff accept_backoff(0.01, 1.0,
                                    static_cast<std::uint64_t>(::getpid()));
  for (;;) {
    qps::net::TcpStream stream = listener.accept();
    if (!stream.valid()) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(accept_backoff.next()));
      continue;
    }
    accept_backoff.reset();
    serve_once(stream, hello, binder, "coordinator", hooks);
  }
}

}  // namespace

int main(int argc, char** argv) {
  qps::Flags flags(argc, argv);
  DaemonOptions options;
  options.dp_threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  options.retry_seconds = flags.get_double("retry-seconds", 0.5);
  options.max_backoff_seconds =
      flags.get_double("max-backoff-seconds", options.max_backoff_seconds);
  options.max_connect_failures =
      static_cast<int>(flags.get_int("max-connect-failures", 20));
  const std::string connect = flags.get_string("connect", "");
  const bool listen = flags.has("listen");
  const std::string listen_value = flags.get_string("listen", "true");
  const std::string metrics_json = flags.get_string("metrics-json", "");
  const double metrics_interval = flags.get_double("metrics-interval", 5.0);
  const std::string fault_spec = flags.get_string("fault", "");
  const double idle_timeout = flags.get_double("idle-timeout", 0.0);
  const auto unused = flags.unused();
  if (!unused.empty() || (connect.empty() == !listen)) {
    std::cerr << "usage: qps_workerd --connect HOST:PORT[,HOST:PORT...] "
                 "| --listen[=PORT]\n"
                 "       [--threads N] [--retry-seconds S] "
                 "[--max-backoff-seconds S] [--max-connect-failures N]\n"
                 "       [--metrics-json FILE] [--metrics-interval S] "
                 "[--fault SPEC] [--idle-timeout S]\n";
    return 2;
  }
  if (!fault_spec.empty()) {
    if (!qps::fault::kFaultCompiled)
      std::cerr << "qps_workerd: --fault: fault injection is compiled out "
                   "(QPS_FAULT=0); the spec is ignored\n";
    try {
      qps::fault::configure(fault_spec);
    } catch (const std::invalid_argument& e) {
      std::cerr << "qps_workerd: --fault: " << e.what() << "\n";
      return 2;
    }
  }

  // Periodic (not just at-exit) dump: a daemon is typically killed, not
  // exited, so the file must stay fresh while it serves.  Kept alive for
  // the life of main; its destructor writes one final snapshot on the
  // clean-exit paths.
  std::unique_ptr<qps::obs::PeriodicMetricsDump> metrics_dump;
  if (!metrics_json.empty())
    metrics_dump = std::make_unique<qps::obs::PeriodicMetricsDump>(
        metrics_json, metrics_interval);

  qps::net::Hello hello;
  hello.node = node_name();
  hello.evaluators = qps::sweep::standard_evaluator_ids();
  // The probation event rides on the binder: the accepted welcome is the
  // first (and only) place the daemon learns the coordinator has demoted
  // its node.
  const qps::net::SweepBinder registry =
      qps::net::registry_binder(options.dp_threads);
  const qps::net::SweepBinder binder =
      [registry](const qps::net::Welcome& welcome,
                 std::vector<qps::sweep::SweepPoint>& points,
                 qps::sweep::PointEvaluator& eval, std::string& error) {
        if (welcome.probation)
          emit_event("{\"event\": \"probation\", \"sweep\": " +
                     qps::json_quote(welcome.sweep) + ", \"epoch\": " +
                     std::to_string(welcome.epoch) + "}");
        return registry(welcome, points, eval, error);
      };

  // Epoch memory spans every serve of this process: once admitted under a
  // newer coordinator's epoch, the daemon fences any older one that comes
  // back from the dead.
  static qps::net::EpochMemory epochs;
  qps::net::ServeHooks hooks;
  hooks.epochs = &epochs;
  hooks.idle_timeout_seconds = idle_timeout;
  hooks.on_notice = [](const qps::net::Notice& notice) {
    if (notice.kind != "quarantine") return;
    emit_event("{\"event\": \"quarantine\", \"point\": " +
               qps::json_quote(notice.id) + ", \"index\": " +
               std::to_string(notice.index) + ", \"attempts\": " +
               std::to_string(notice.attempts) + "}");
  };
  hooks.on_fence = [](std::uint64_t known_epoch,
                      const qps::net::Welcome& welcome) {
    emit_event("{\"event\": \"epoch_fence\", \"sweep\": " +
               qps::json_quote(welcome.sweep) + ", \"stale_epoch\": " +
               std::to_string(welcome.epoch) + ", \"known_epoch\": " +
               std::to_string(known_epoch) + "}");
  };

  if (!connect.empty()) {
    std::vector<std::string> addresses;
    for (std::size_t start = 0; start < connect.size();) {
      std::size_t comma = connect.find(',', start);
      if (comma == std::string::npos) comma = connect.size();
      if (comma > start) addresses.push_back(connect.substr(start, comma - start));
      start = comma + 1;
    }
    return run_connect_mode(addresses, hello, binder, options, hooks);
  }

  std::uint16_t port = 0;
  if (listen_value != "true") {
    char* end = nullptr;
    const unsigned long value = std::strtoul(listen_value.c_str(), &end, 10);
    if (end == listen_value.c_str() || *end != '\0' || value > 65535) {
      std::cerr << "qps_workerd: --listen expects a port, got '"
                << listen_value << "'\n";
      return 2;
    }
    port = static_cast<std::uint16_t>(value);
  }
  return run_listen_mode(port, hello, binder, hooks);
}
