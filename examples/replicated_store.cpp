// replicated_store: a quorum-replicated register on the simulated cluster
// -- Gifford/Thomas-style voting with version numbers, surviving minority
// crashes between writes and reads.
//
//   $ replicated_store [--writes 5] [--seed 3]
#include <iostream>
#include <memory>
#include <vector>

#include "core/algorithms/probe_maj.h"
#include "protocols/register_client.h"
#include "protocols/server_node.h"
#include "quorum/majority.h"
#include "sim/fault_injector.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace qps;
  using namespace qps::protocols;
  const Flags flags(argc, argv);
  const auto writes = static_cast<std::size_t>(flags.get_int("writes", 5));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  const MajoritySystem system(7);
  const std::size_t n = system.universe_size();

  sim::Simulator simulator;
  Rng net_rng(seed);
  sim::Network network(simulator, net_rng, sim::uniform_latency(0.05, 0.25));

  std::vector<std::unique_ptr<ServerNode>> servers;
  for (sim::NodeId id = 0; id < n; ++id) {
    servers.push_back(std::make_unique<ServerNode>(id));
    network.add_node(servers.back().get());
  }

  const ProbeMaj strategy(system);
  RegisterClient::Options options;
  options.ping_timeout = 0.6;
  options.round_timeout = 1.2;

  RegisterClient writer(network, static_cast<sim::NodeId>(n), system,
                        strategy, Rng(seed + 1), options);
  RegisterClient reader(network, static_cast<sim::NodeId>(n + 1), system,
                        strategy, Rng(seed + 2), options);
  network.add_node(&writer);
  network.add_node(&reader);

  sim::FaultInjector injector(network);

  // Write 10*i for i = 1..writes; after write 2 completes, crash two
  // servers and keep going -- quorum intersection carries the state.
  std::size_t completed = 0;
  bool all_ok = true;
  std::function<void(std::size_t)> do_write = [&](std::size_t i) {
    if (i > writes) {
      reader.read([&](RegisterClient::ReadResult r) {
        std::cout << "t=" << simulator.now() << "  final read -> value "
                  << r.value << " at version " << r.version
                  << (r.ok ? "" : "  (FAILED)") << '\n';
        all_ok = all_ok && r.ok &&
                 r.value == static_cast<std::int64_t>(10 * writes);
      });
      return;
    }
    writer.write(static_cast<std::int64_t>(10 * i), [&, i](bool ok) {
      std::cout << "t=" << simulator.now() << "  write " << 10 * i
                << (ok ? " committed" : " FAILED") << " (attempt "
                << writer.attempts_used() << ")\n";
      all_ok = all_ok && ok;
      if (ok) ++completed;
      if (i == 2) {
        std::cout << "t=" << simulator.now()
                  << "  crashing servers 1 and 4 (a minority)\n";
        servers[1]->crash();
        servers[4]->crash();
      }
      do_write(i + 1);
    });
  };
  do_write(1);
  simulator.run(2'000'000);

  std::cout << "\nsummary: " << completed << '/' << writes
            << " writes committed, messages sent "
            << network.messages_sent()
            << ", consistency: " << (all_ok ? "OK" : "VIOLATED") << '\n';
  return all_ok ? 0 : 1;
}
