// mutex_sim: quorum-based mutual exclusion over the simulated cluster --
// the paper's motivating application, end to end: PING-based liveness
// views, probe-strategy quorum selection, lock rounds with backoff, and
// fault injection mid-run.
//
//   $ mutex_sim [--clients 3] [--rounds 4] [--crash-p 0.2] [--seed 11]
#include <iostream>
#include <memory>
#include <vector>

#include "core/algorithms/probe_cw.h"
#include "protocols/mutex_client.h"
#include "protocols/server_node.h"
#include "quorum/crumbling_wall.h"
#include "sim/fault_injector.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace qps;
  using namespace qps::protocols;
  const Flags flags(argc, argv);
  const auto clients_n = static_cast<std::size_t>(flags.get_int("clients", 3));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 4));
  const double crash_p = flags.get_double("crash-p", 0.2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));

  // A (1,3,4)-crumbling wall: 8 servers, quorums of 3-4 members, found in
  // O(k) probes by Probe_CW.
  const CrumblingWall wall({1, 3, 4});
  const std::size_t n = wall.universe_size();

  sim::Simulator simulator;
  Rng net_rng(seed);
  sim::Network network(simulator, net_rng, sim::uniform_latency(0.05, 0.3));

  std::vector<std::unique_ptr<ServerNode>> servers;
  for (sim::NodeId id = 0; id < n; ++id) {
    servers.push_back(std::make_unique<ServerNode>(id));
    network.add_node(servers.back().get());
  }

  const ProbeCW strategy(wall);
  MutexClient::Options options;
  options.ping_timeout = 0.8;
  options.lock_timeout = 1.5;
  options.backoff_base = 1.0;
  options.max_attempts = 40;

  std::vector<std::unique_ptr<MutexClient>> clients;
  for (std::size_t i = 0; i < clients_n; ++i) {
    const auto id = static_cast<sim::NodeId>(n + i);
    clients.push_back(std::make_unique<MutexClient>(
        network, id, wall, strategy, Rng(seed * 131 + i), options));
    network.add_node(clients.back().get());
  }

  // Crash a few servers up front (never losing all quorums: keep row 0).
  sim::FaultInjector injector(network);
  Rng crash_rng(seed ^ 0xdead);
  ElementSet crashed(n);
  for (Element e = 1; e < n; ++e)
    if (crash_rng.bernoulli(crash_p)) crashed.insert(e);
  injector.crash_now(crashed);
  std::cout << "cluster: " << wall.name() << " with crashed servers "
            << crashed.to_string() << "\n\n";

  // Each client loops: acquire -> hold -> release, `rounds` times.
  std::size_t critical_entries = 0;
  std::size_t failures = 0;
  bool overlap = false;
  std::vector<std::size_t> remaining(clients_n, rounds);

  std::function<void(std::size_t)> start_round = [&](std::size_t i) {
    if (remaining[i] == 0) return;
    clients[i]->acquire([&, i](bool ok) {
      if (!ok) {
        ++failures;
        return;
      }
      ++critical_entries;
      std::size_t holders = 0;
      for (const auto& c : clients)
        if (c->holds_lock()) ++holders;
      if (holders > 1) overlap = true;
      std::cout << "t=" << simulator.now() << "  client " << clients[i]->id()
                << " entered the critical section (quorum "
                << clients[i]->locked_quorum()->to_string() << ", attempt "
                << clients[i]->attempts_used() << ")\n";
      simulator.schedule(1.0, [&, i]() {
        clients[i]->release();
        --remaining[i];
        simulator.schedule(0.5, [&, i]() { start_round(i); });
      });
    });
  };
  for (std::size_t i = 0; i < clients_n; ++i)
    simulator.schedule(0.1 * static_cast<double>(i),
                       [&, i]() { start_round(i); });

  simulator.run(2'000'000);

  std::cout << "\nsummary: " << critical_entries
            << " critical-section entries, " << failures
            << " exhausted acquisitions, messages sent "
            << network.messages_sent() << ", safety violations: "
            << (overlap ? "YES (bug!)" : "none") << '\n';
  return overlap ? 1 : 0;
}
