// availability_study: F_p curves for every construction, plus the
// probe-cost-vs-availability tradeoff that motivates probe-efficient
// quorum systems: crumbling walls give O(k) expected probes at slightly
// worse availability than Majority.
//
//   $ availability_study [--steps 9]
#include <iostream>
#include <vector>

#include "core/formulas.h"
#include "quorum/availability.h"
#include "util/flags.h"
#include "util/table.h"

int main(int argc, char** argv) {
  using namespace qps;
  const Flags flags(argc, argv);
  const auto steps = static_cast<std::size_t>(flags.get_int("steps", 9));

  std::cout << "Availability F_p(S) = P[no live quorum] across the failure "
               "probability p\n(every ND coterie crosses 1/2 exactly at p = "
               "1/2 -- Fact 2.3)\n\n";

  std::vector<std::size_t> triang10;
  for (std::size_t i = 1; i <= 10; ++i) triang10.push_back(i);

  Table table({"p", "Maj(55)", "Triang(k=10,n=55)", "Tree(h=5,n=63)",
               "HQS(h=4,n=81)"});
  for (std::size_t step = 1; step <= steps; ++step) {
    const double p = static_cast<double>(step) / (steps + 1.0);
    table.add_row({Table::num(p, 3),
                   Table::num(majority_failure_probability(55, p), 5),
                   Table::num(cw_failure_probability(triang10, p), 5),
                   Table::num(tree_failure_probability(5, p), 5),
                   Table::num(hqs_failure_probability(4, p), 5)});
  }
  table.print(std::cout);

  std::cout << "\nThe tradeoff the paper motivates (p = 0.3):\n";
  Table tradeoff({"system", "n", "F_0.3", "avg probes to witness"});
  tradeoff.add_row({"Maj(55)", "55",
                    Table::num(majority_failure_probability(55, 0.3), 6),
                    Table::num(probe_maj_expected(55, 0.3), 2)});
  tradeoff.add_row({"Triang(k=10)", "55",
                    Table::num(cw_failure_probability(triang10, 0.3), 6),
                    Table::num(probe_cw_expected(triang10, 0.3), 2)});
  tradeoff.add_row({"Tree(h=5)", "63",
                    Table::num(tree_failure_probability(5, 0.3), 6),
                    Table::num(probe_tree_expected(5, 0.3), 2)});
  tradeoff.add_row({"HQS(h=4)", "81",
                    Table::num(hqs_failure_probability(4, 0.3), 6),
                    Table::num(probe_hqs_expected(4, 0.3), 2)});
  tradeoff.print(std::cout);
  std::cout << "\nMaj is the availability champion but needs ~n/2q probes; "
               "the wall finds a\nwitness in ~2k probes at the cost of "
               "higher failure probability -- the\nprobe-complexity lens of "
               "the paper in one table.\n";
  return 0;
}
