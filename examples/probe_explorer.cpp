// probe_explorer: interactive-grade CLI over the exact engines.
//
//   $ probe_explorer --system maj --n 5 --p 0.5
//   $ probe_explorer --system wheel --n 4
//   $ probe_explorer --system cw --widths 1,2,3
//   $ probe_explorer --system tree --height 2
//   $ probe_explorer --system hqs --height 1
//
// Prints PC (minimax DP), PPC_p (Bellman DP), and for n <= 5 the exact PCR
// (game solver) with the adversary's optimal hard distribution -- the
// Fig. 4 numbers for any small system you like.
#include <iostream>
#include <memory>
#include <sstream>

#include "core/exact/decision_tree.h"
#include "core/exact/pc_exact.h"
#include "core/exact/pcr_exact.h"
#include "core/exact/ppc_exact.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"
#include "util/flags.h"
#include "util/table.h"

namespace {

std::vector<std::size_t> parse_widths(const std::string& spec) {
  std::vector<std::size_t> widths;
  std::stringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ',')) widths.push_back(std::stoul(part));
  return widths;
}

std::unique_ptr<qps::QuorumSystem> build_system(const qps::Flags& flags) {
  using namespace qps;
  const std::string kind = flags.get_string("system", "maj");
  if (kind == "maj")
    return std::make_unique<MajoritySystem>(
        static_cast<std::size_t>(flags.get_int("n", 5)));
  if (kind == "wheel")
    return std::make_unique<WheelSystem>(
        static_cast<std::size_t>(flags.get_int("n", 5)));
  if (kind == "cw")
    return std::make_unique<CrumblingWall>(
        parse_widths(flags.get_string("widths", "1,2,3")));
  if (kind == "triang")
    return std::make_unique<CrumblingWall>(CrumblingWall::triang(
        static_cast<std::size_t>(flags.get_int("k", 3))));
  if (kind == "tree")
    return std::make_unique<TreeSystem>(
        static_cast<std::size_t>(flags.get_int("height", 2)));
  if (kind == "hqs")
    return std::make_unique<HQSystem>(
        static_cast<std::size_t>(flags.get_int("height", 1)));
  throw std::invalid_argument(
      "--system must be maj|wheel|cw|triang|tree|hqs, got '" + kind + "'");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qps;
  try {
    const Flags flags(argc, argv);
    const double p = flags.get_double("p", 0.5);
    const auto system = build_system(flags);
    const std::size_t n = system->universe_size();

    std::cout << "system: " << system->name() << "  (n=" << n
              << ", quorum sizes " << system->min_quorum_size() << ".."
              << system->max_quorum_size() << ")\n";
    if (n <= 16) {
      std::cout << "quorums:";
      for (const auto& q : system->enumerate_quorums())
        std::cout << ' ' << q.to_string();
      std::cout << '\n';
    }

    Table table({"measure", "model", "value"});
    if (n <= 14) {
      const std::size_t pc = pc_exact(*system);
      table.add_row({"PC", "deterministic worst case",
                     Table::num(static_cast<long long>(pc)) +
                         (pc == n ? "  (evasive)" : "")});
      table.add_row({"PPC_" + Table::num(p, 2), "probabilistic (iid)",
                     Table::num(ppc_exact(*system, p), 6)});
      table.add_row(
          {"first probe", "optimal PPC strategy opens with element",
           Table::num(static_cast<long long>(
               ppc_optimal_first_probe(*system, p) + 1))});
    } else {
      table.add_row({"PC/PPC", "-", "universe too large for exact engines"});
    }
    if (n <= 5) {
      const PcrResult pcr = pcr_exact(*system);
      table.add_row({"PCR", "randomized worst case",
                     Table::num(pcr.value, 6) + "  (" +
                         Table::num(static_cast<long long>(pcr.strategy_count)) +
                         " distinct strategies)"});
      table.print(std::cout);
      std::cout << "\nadversary's optimal input distribution (PCR game):\n";
      Table hard({"coloring (greens)", "weight"});
      for (std::size_t mask = 0; mask < pcr.hard_distribution.size(); ++mask)
        if (pcr.hard_distribution[mask] > 1e-9)
          hard.add_row({ElementSet::from_mask(n, mask).to_string(),
                        Table::num(pcr.hard_distribution[mask], 4)});
      hard.print(std::cout);
    } else {
      table.add_row({"PCR", "randomized worst case",
                     "universe too large for the game solver (n <= 5)"});
      table.print(std::cout);
    }
    if (n <= 7) {
      // The Fig. 4 artifact: an optimal probe-strategy tree.
      std::cout << "\noptimal probabilistic probe strategy (Fig. 4 style; "
                   "1 = green, 0 = red):\n";
      const auto tree = optimal_ppc_tree(*system, p);
      std::cout << tree->to_ascii();
      std::cout << "worst-case depth " << tree->depth()
                << ", expected probes " << tree->expected_depth(p) << '\n';
    }
    return 0;
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << '\n';
    return 1;
  }
}
