// Quickstart: build a quorum system, fail some processors, and find a
// witness with a probe-efficient strategy.
//
//   $ quickstart [--seed N] [--p 0.5]
//
// Walks through the library's core loop and renders the Fig. 1-3 style
// pictures (Triang wall, Tree, HQS) with the found witness highlighted.
#include <iostream>

#include "core/algorithms/probe_cw.h"
#include "core/algorithms/probe_hqs.h"
#include "core/algorithms/probe_tree.h"
#include "core/estimator.h"
#include "core/witness.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/tree_system.h"
#include "util/flags.h"

namespace {

using namespace qps;

char glyph(const Coloring& coloring, const Witness& witness, Element e) {
  const bool in_witness = witness.elements.contains(e);
  const bool green = coloring.color(e) == Color::kGreen;
  if (in_witness) return green ? 'G' : 'R';
  return green ? 'g' : 'r';
}

// Fig. 1: the Triang wall with the witness in capitals.
void show_wall(const CrumblingWall& wall, const Coloring& coloring,
               const Witness& witness) {
  for (std::size_t row = 0; row < wall.row_count(); ++row) {
    std::cout << "    ";
    for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
      std::cout << glyph(coloring, witness, e) << ' ';
    std::cout << '\n';
  }
}

// Fig. 2: the binary tree, one level per line.
void show_tree(const TreeSystem& tree, const Coloring& coloring,
               const Witness& witness) {
  Element level_begin = 0;
  std::size_t level_size = 1;
  while (level_begin < tree.universe_size()) {
    std::cout << "    ";
    for (Element e = level_begin; e < level_begin + level_size; ++e)
      std::cout << glyph(coloring, witness, e) << ' ';
    std::cout << '\n';
    level_begin += static_cast<Element>(level_size);
    level_size *= 2;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qps;
  const Flags flags(argc, argv);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));
  const double p = flags.get_double("p", 0.5);
  Rng rng(seed);

  std::cout << "quorumprobe quickstart (seed=" << seed << ", p=" << p
            << ")\n"
            << "legend: G/R = witness member (green/red), g/r = other "
               "probed-or-not elements\n";

  // ---- 1. A crumbling wall (Fig. 1 is the (1,2,3,4) Triang) -------------
  const CrumblingWall triang = CrumblingWall::triang(4);
  Coloring wall_coloring =
      sample_iid_coloring(triang.universe_size(), p, rng);
  const ProbeCW probe_cw(triang);
  ProbeSession wall_session(wall_coloring);
  const Witness wall_witness = probe_cw.run(wall_session, rng);
  std::cout << "\n[1] " << triang.name() << "  (n=" << triang.universe_size()
            << ")\n";
  show_wall(triang, wall_coloring, wall_witness);
  std::cout << "    witness: " << wall_witness.to_string() << " after "
            << wall_session.probe_count() << " probes (bound 2k-1 = "
            << 2 * triang.row_count() - 1 << " on average)\n";

  // ---- 2. The Tree system (Fig. 2) ---------------------------------------
  const TreeSystem tree(3);
  Coloring tree_coloring = sample_iid_coloring(tree.universe_size(), p, rng);
  const ProbeTree probe_tree(tree);
  ProbeSession tree_session(tree_coloring);
  const Witness tree_witness = probe_tree.run(tree_session, rng);
  std::cout << "\n[2] " << tree.name() << "\n";
  show_tree(tree, tree_coloring, tree_witness);
  std::cout << "    witness: " << tree_witness.to_string() << " after "
            << tree_session.probe_count() << " probes (n = "
            << tree.universe_size() << ", expected ~n^0.585 at p=1/2)\n";

  // ---- 3. The HQS (Fig. 3; witness {1,2,5,6} on an all-green input) -----
  const HQSystem hqs(2);
  const Coloring all_green(hqs.universe_size(),
                           ElementSet::full(hqs.universe_size()));
  const ProbeHQS probe_hqs(hqs);
  ProbeSession hqs_session(all_green);
  const Witness hqs_witness = probe_hqs.run(hqs_session, rng);
  std::cout << "\n[3] " << hqs.name() << " on an all-live cluster\n"
            << "    leaves:  ";
  for (Element e = 0; e < hqs.universe_size(); ++e)
    std::cout << glyph(all_green, hqs_witness, e) << ' ';
  std::cout << "\n    witness: " << hqs_witness.to_string()
            << "  -- a minterm of the 2-of-3 gate tree, like Fig. 3's "
               "shaded quorum {1, 2, 5, 6}\n";

  // ---- 4. Witness validation (what the library guarantees) ---------------
  const std::string error = validate_witness(
      hqs, all_green, hqs_witness, hqs_session.probed());
  std::cout << "\n[4] validate_witness(...) -> "
            << (error.empty() ? std::string("OK") : error) << '\n';

  // ---- 5. The parallel estimation engine ---------------------------------
  // Average probes of Probe_CW under i.i.d. failures, estimated on all
  // hardware threads.  The result is a pure function of (seed, trials):
  // rerun with --seed to see it change, with any thread count to see it
  // not change.
  EngineOptions engine_options;
  engine_options.trials = 50000;
  engine_options.seed = seed;
  const auto stats = estimate_ppc(triang, probe_cw, p, engine_options);
  std::cout << "\n[5] engine: PPC_" << p << "(" << triang.name() << ") = "
            << stats.mean() << " +- " << stats.ci95_halfwidth() << "  ("
            << stats.count() << " trials on "
            << ParallelEstimator(engine_options).resolved_threads()
            << " threads, bound 2k-1 = " << 2 * triang.row_count() - 1
            << ")\n";
  return 0;
}
