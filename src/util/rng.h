// Deterministic, explicitly-seeded random number generation.
//
// All randomness in the library flows through qps::Rng so that every
// experiment and every randomized probe strategy is reproducible from a
// printed 64-bit seed.  The generator is xoshiro256++ seeded via splitmix64,
// which is fast, has a 2^256-1 period, and passes BigCrush; we avoid
// std::mt19937 because its seeding from a single integer is notoriously weak
// and its state is large.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace qps {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ generator with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Raw 64 uniform random bits.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound).  `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1) with 53 random bits.
  double uniform01();

  /// True with probability `p` (clamped to [0,1]).
  bool bernoulli(double p);

  /// Uniform double in [lo, hi).
  double uniform_real(double lo, double hi);

  /// Exponentially distributed value with rate `lambda` (> 0).
  double exponential(double lambda);

  /// Fisher-Yates shuffle of an index vector [0, n).
  std::vector<std::uint32_t> permutation(std::uint32_t n);

  /// Allocation-free variant of permutation(): refills `out` with a shuffle
  /// of [0, n), reusing its capacity.  Draws exactly the same generator
  /// sequence as permutation(n), so the two are interchangeable in
  /// reproducible runs; the trial hot path uses this with a workspace
  /// buffer.
  void permutation_into(std::vector<std::uint32_t>& out, std::uint32_t n);

  /// In-place Fisher-Yates shuffle of a raw span.  Same draw sequence as
  /// shuffle() on a vector of the same size.
  template <typename T>
  void shuffle_span(T* data, std::size_t size) {
    for (std::size_t i = size; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(data[i - 1], data[j]);
    }
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    shuffle_span(v.data(), v.size());
  }

  /// In-place Fisher-Yates shuffle of a fixed-size array.
  template <typename T, std::size_t N>
  void shuffle_array(std::array<T, N>& v) {
    for (std::size_t i = N; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Forks an independent generator (streams are decorrelated by remixing).
  Rng fork();

  /// Deterministic per-stream generator: the generator for (seed, k) is a
  /// pure function of both values, and distinct stream indices give
  /// decorrelated sequences.  Used by the parallel estimation engine to
  /// give every trial batch its own reproducible stream regardless of
  /// which thread runs it.
  static Rng for_stream(std::uint64_t seed, std::uint64_t stream);

  /// Satisfies UniformRandomBitGenerator so std:: algorithms can use Rng.
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next_u64(); }

 private:
  std::array<std::uint64_t, 4> s_;
};

}  // namespace qps
