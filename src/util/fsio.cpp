#include "util/fsio.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "core/fault/fault.h"

namespace qps::util {

namespace {

std::string errno_text() {
  return std::strerror(errno) + (" (errno " + std::to_string(errno) + ")");
}

/// Writes the whole buffer, retrying on EINTR; false on any other error.
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

std::string parent_dir(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync of `path`'s parent directory, making a just-created or
/// just-renamed entry durable; consults the "fsio/dir_fsync" fault point
/// (`error` models a dying disk, `crash` the power cut the fsync exists
/// for).  False (with errno set) on failure.
bool sync_parent_dir(const std::string& path) {
  qps::fault::hit("fsio/dir_fsync", path);
  const int dir_fd =
      ::open(parent_dir(path).c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) return false;
  const bool ok = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  return ok;
}

bool fail(std::string* error, const std::string& why) {
  if (error) *error = why;
  return false;
}

}  // namespace

bool write_file_atomic(const std::string& path, std::string_view content,
                       std::string* error) {
  // The tmp file must live in the target's directory: rename(2) is atomic
  // only within one filesystem.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0)
    return fail(error, "cannot create " + tmp + ": " + errno_text());
  if (!write_all(fd, content.data(), content.size())) {
    const std::string why = "cannot write " + tmp + ": " + errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail(error, why);
  }
  if (::fsync(fd) != 0) {
    const std::string why = "cannot fsync " + tmp + ": " + errno_text();
    ::close(fd);
    ::unlink(tmp.c_str());
    return fail(error, why);
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return fail(error, "cannot close " + tmp + ": " + errno_text());
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why =
        "cannot rename " + tmp + " to " + path + ": " + errno_text();
    ::unlink(tmp.c_str());
    return fail(error, why);
  }
  // fsync the directory so the rename itself survives a crash; without
  // it the new name may not be durable even though the data blocks are,
  // so a failure is a failure (the caller decides whether a
  // maybe-undurable rename is acceptable).
  try {
    if (!sync_parent_dir(path))
      return fail(error, "cannot fsync parent directory of " + path + ": " +
                             errno_text());
  } catch (const qps::fault::InjectedFault& e) {
    return fail(error, "cannot fsync parent directory of " + path + ": " +
                           std::string(e.what()));
  }
  return true;
}

AppendFile::AppendFile(std::string path, const char* fault_point)
    : path_(std::move(path)), fault_point_(fault_point) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw IoError("cannot open " + path_ + " for append: " + errno_text(),
                  path_);
  // Make the journal's directory entry durable: O_CREAT created the file,
  // but a crash before the parent directory hits disk would lose the name
  // -- and with it every line "durably" appended afterwards.  (Throws
  // InjectedFault under a "fsio/dir_fsync" fault rule.)
  if (!sync_parent_dir(path_)) {
    const std::string why =
        "cannot fsync parent directory of " + path_ + ": " + errno_text();
    ::close(fd_);
    fd_ = -1;
    throw IoError(why, path_);
  }
}

AppendFile::~AppendFile() {
  if (fd_ >= 0) ::close(fd_);
}

void AppendFile::append_line(std::string_view line) {
  std::size_t size = line.size();
  if (fault_point_ != nullptr) {
    // error/alloc throw here (the "disk full" stand-in), crash exits
    // mid-transaction, and a torn rule truncates the payload below.
    qps::fault::hit(fault_point_);
    if (const auto frac = qps::fault::consume_torn(fault_point_))
      size = static_cast<std::size_t>(static_cast<double>(size) * *frac);
  }
  if (!write_all(fd_, line.data(), size))
    throw IoError("failed writing " + path_ + ": " + errno_text(), path_);
  if (::fdatasync(fd_) != 0)
    throw IoError("failed syncing " + path_ + ": " + errno_text(), path_);
}

}  // namespace qps::util
