#include "util/stats.h"

#include <cmath>
#include <limits>

#include "util/require.h"

namespace qps {

void RunningStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  mean_ += delta * nb / (na + nb);
  m2_ += other.m2_ + delta * delta * na * nb / (na + nb);
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
}

RunningStats RunningStats::from_moments(std::size_t count, double mean,
                                        double m2, double min, double max) {
  QPS_REQUIRE(count > 0 || (mean == 0.0 && m2 == 0.0),
              "an empty accumulator has zero moments");
  QPS_REQUIRE(m2 >= 0.0 || std::isnan(m2),
              "sum of squared deviations cannot be negative");
  RunningStats stats;
  stats.count_ = count;
  stats.mean_ = mean;
  stats.m2_ = m2;
  stats.min_ = min;
  stats.max_ = max;
  return stats;
}

double RunningStats::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (count_ == 0) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(count_));
}

double RunningStats::ci95_halfwidth() const { return 1.96 * sem(); }

LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y) {
  QPS_REQUIRE(x.size() == y.size(), "fit_line() needs equal-length vectors");
  QPS_REQUIRE(x.size() >= 2, "fit_line() needs at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  QPS_REQUIRE(denom != 0.0, "fit_line() needs non-degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double r = y[i] - (fit.slope * x[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

LinearFit fit_power_law(const std::vector<double>& x,
                        const std::vector<double>& y) {
  QPS_REQUIRE(x.size() == y.size(), "fit_power_law() needs equal lengths");
  std::vector<double> lx(x.size()), ly(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    QPS_REQUIRE(x[i] > 0 && y[i] > 0, "fit_power_law() needs positive data");
    lx[i] = std::log(x[i]);
    ly[i] = std::log(y[i]);
  }
  return fit_line(lx, ly);
}

double binomial_coefficient(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  if (k > n - k) k = n - k;
  double result = 1.0;
  for (std::size_t i = 0; i < k; ++i)
    result = result * static_cast<double>(n - i) / static_cast<double>(i + 1);
  return result;
}

double binomial_tail_geq(std::size_t n, std::size_t k, double p) {
  QPS_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  if (k == 0) return 1.0;
  if (k > n) return 0.0;
  // Sum pmf from k to n, accumulating terms by the recurrence
  // pmf(i+1) = pmf(i) * (n-i)/(i+1) * p/(1-p); handle p edge cases first.
  if (p == 0.0) return 0.0;
  if (p == 1.0) return 1.0;
  const double q = 1.0 - p;
  // pmf(k) computed in log space for stability.
  double log_pmf = 0.0;
  for (std::size_t i = 0; i < k; ++i)
    log_pmf += std::log(static_cast<double>(n - i)) -
               std::log(static_cast<double>(i + 1));
  log_pmf += static_cast<double>(k) * std::log(p) +
             static_cast<double>(n - k) * std::log(q);
  double pmf = std::exp(log_pmf);
  double total = 0.0;
  for (std::size_t i = k; i <= n; ++i) {
    total += pmf;
    if (i < n)
      pmf *= static_cast<double>(n - i) / static_cast<double>(i + 1) * (p / q);
  }
  return total > 1.0 ? 1.0 : total;
}

}  // namespace qps
