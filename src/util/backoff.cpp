#include "util/backoff.h"

namespace qps::util {

namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

double Backoff::base() const {
  double delay = initial_;
  for (std::uint64_t i = 0; i < attempt_; ++i) {
    delay *= multiplier_;
    if (delay >= max_) return max_;
  }
  return delay < max_ ? delay : max_;
}

double Backoff::next() {
  const double current = base();
  ++attempt_;
  const std::uint64_t h = splitmix64(seed_ ^ (attempt_ * 0x9e3779b97f4a7c15ULL));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return current * (0.5 + 0.5 * u);
}

}  // namespace qps::util
