// Summary statistics and small fitting helpers used by the benchmark
// harnesses: online mean/variance (Welford), normal-approximation confidence
// intervals, and least-squares log-log regression for exponent fits
// (e.g. verifying PPC(HQS) ~ n^0.834).
#pragma once

#include <cstddef>
#include <vector>

namespace qps {

/// Online accumulator for mean and variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  /// Folds another accumulator into this one (Chan et al. pairwise update),
  /// as if every sample of `other` had been added after this one's.  The
  /// parallel estimation engine reduces per-batch accumulators with this.
  void merge(const RunningStats& other);

  /// Reconstructs an accumulator from its five raw moments, exactly as
  /// saved by count()/mean()/sum_squared_deviations()/min()/max().  The
  /// sweep subsystem uses this to move results across process boundaries
  /// (worker protocol, checkpoint journal) without losing a bit.
  static RunningStats from_moments(std::size_t count, double mean, double m2,
                                   double min, double max);

  std::size_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  /// Half-width of the ~95% normal-approximation confidence interval.
  double ci95_halfwidth() const;
  double min() const { return min_; }
  double max() const { return max_; }
  /// Raw sum of squared deviations (the M2 term of Welford's recurrence);
  /// together with count/mean/min/max it round-trips the accumulator.
  double sum_squared_deviations() const { return m2_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Result of an ordinary least-squares fit y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination.
  double r_squared = 0.0;
};

/// Least-squares line through (x[i], y[i]).  Needs at least two points.
LinearFit fit_line(const std::vector<double>& x, const std::vector<double>& y);

/// Fits y = C * x^alpha by regressing log y on log x; returns {alpha, log C}.
/// All inputs must be positive.
LinearFit fit_power_law(const std::vector<double>& x,
                        const std::vector<double>& y);

/// Exact binomial tail P[X >= k] for X ~ Bin(n, p); numerically stable for
/// the small n used in availability closed forms.
double binomial_tail_geq(std::size_t n, std::size_t k, double p);

/// Binomial coefficient as double (exact for the ranges used here).
double binomial_coefficient(std::size_t n, std::size_t k);

}  // namespace qps
