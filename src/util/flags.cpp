#include "util/flags.h"

#include <stdexcept>

#include "util/require.h"

namespace qps {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare flag == boolean true
    }
  }
}

bool Flags::has(const std::string& name) const {
  touched_[name] = true;
  return values_.count(name) != 0;
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t def) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    QPS_REQUIRE(pos == it->second.size(), "trailing junk in integer flag");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double def) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    QPS_REQUIRE(pos == it->second.size(), "trailing junk in double flag");
    return v;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
}

std::string Flags::get_string(const std::string& name,
                              const std::string& def) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

bool Flags::get_bool(const std::string& name, bool def) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  if (it->second == "true" || it->second == "1" || it->second == "yes")
    return true;
  if (it->second == "false" || it->second == "0" || it->second == "no")
    return false;
  throw std::invalid_argument("flag --" + name + " expects a boolean, got '" +
                              it->second + "'");
}

std::vector<std::string> Flags::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_)
    if (!touched_.count(name)) out.push_back(name);
  return out;
}

}  // namespace qps
