// Tiny command-line flag parser for the examples and bench harnesses.
//
// Syntax: --name=value or --name value; unrecognized flags raise an error so
// typos do not silently fall back to defaults.  Not a general-purpose
// library; just enough for reproducible experiment drivers.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace qps {

class Flags {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Flags(int argc, const char* const* argv);

  /// Value lookups with defaults.  A flag used with the wrong type throws.
  std::int64_t get_int(const std::string& name, std::int64_t def) const;
  double get_double(const std::string& name, double def) const;
  std::string get_string(const std::string& name, const std::string& def) const;
  bool get_bool(const std::string& name, bool def) const;

  bool has(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Flags present on the command line that were never queried; used by
  /// drivers to reject typos after all get_* calls are made.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
  std::vector<std::string> positional_;
};

}  // namespace qps
