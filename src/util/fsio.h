// Crash-safe file I/O helpers.
//
// Two write disciplines, for the two shapes of durable file this codebase
// produces:
//
//  * write_file_atomic(): whole-file snapshots (metrics/trace JSON dumps).
//    The content goes to a temporary file in the same directory, is
//    fsync'd, and is rename(2)'d over the target, so a crash at any
//    instant leaves either the old file or the new one -- never a torn
//    head.  The directory entry is fsync'd too, making the rename itself
//    durable.
//
//  * AppendFile: append-only journals (the sweep checkpoint).  Each
//    append_line() is one write(2) on an O_APPEND descriptor followed by
//    fdatasync(2), so a committed line survives SIGKILL and at most the
//    in-flight line can be torn.  Failures throw IoError naming the path
//    and errno -- a silently lost journal line would turn resume into
//    silent recomputation.
//
// Both honor fault-injection rules on the caller-supplied fault point
// (core/fault/fault.h): `error`/`alloc`/`crash`/`delay` act before the
// write, and a `torn` rule makes AppendFile keep only a prefix of the
// line while still reporting success -- the exact corruption the resume
// scanner must survive.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace qps::util {

/// Thrown on any I/O failure; what() names the path and the errno text.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, std::string path)
      : std::runtime_error(what), path_(std::move(path)) {}
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Atomically replaces `path` with `content` (tmp file + fsync + rename).
/// Returns false and fills `error` (when non-null) on failure instead of
/// throwing -- the obs dump sites treat a failed dump as a warning.
bool write_file_atomic(const std::string& path, std::string_view content,
                       std::string* error = nullptr);

class AppendFile {
 public:
  /// Opens `path` for durable appends (O_APPEND | O_CREAT).  `fault_point`
  /// (may be null) names the injection point consulted on every append.
  /// Throws IoError when the file cannot be opened.
  explicit AppendFile(std::string path, const char* fault_point = nullptr);
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  /// Appends `line` with one write(2) and fdatasyncs; throws IoError on
  /// short or failed writes.  A torn-write fault keeps a prefix only and
  /// reports success (that is the fault).
  void append_line(std::string_view line);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  const char* fault_point_;
  int fd_ = -1;
};

}  // namespace qps::util
