#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace qps {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string json_quote(std::string_view s) {
  return '"' + json_escape(s) + '"';
}

std::string json_number(double value) {
  if (std::isnan(value)) return "\"NaN\"";
  if (std::isinf(value)) return value > 0 ? "\"Infinity\"" : "\"-Infinity\"";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g",
                std::numeric_limits<double>::max_digits10, value);
  return buf;
}

namespace {

[[noreturn]] void fail(std::size_t pos, const std::string& what) {
  throw std::invalid_argument("JSON parse error at offset " +
                              std::to_string(pos) + ": " + what);
}

}  // namespace

/// Recursive-descent parser over a string_view; friend of JsonValue.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return make_string(parse_string());
      case 't':
        if (consume_literal("true")) return make_bool(true);
        fail(pos_, "bad literal");
      case 'f':
        if (consume_literal("false")) return make_bool(false);
        fail(pos_, "bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue();
        fail(pos_, "bad literal");
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object_.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              fail(pos_ - 1, "bad hex digit in \\u escape");
          }
          // UTF-8 encode; we never emit surrogate pairs ourselves (escapes
          // are only produced for control characters) but decode any BMP
          // code point for robustness.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xc0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          } else {
            out.push_back(static_cast<char>(0xe0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
          }
          break;
        }
        default: fail(pos_ - 1, "bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail(pos_, "expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail(start, "malformed number");
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = value;
    return v;
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  static JsonValue make_string(std::string s) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool)
    throw std::invalid_argument("JSON value is not a boolean");
  return bool_;
}

double JsonValue::as_double() const {
  if (kind_ == Kind::kNumber) return number_;
  if (kind_ == Kind::kString) {
    if (string_ == "NaN") return std::numeric_limits<double>::quiet_NaN();
    if (string_ == "Infinity") return std::numeric_limits<double>::infinity();
    if (string_ == "-Infinity") return -std::numeric_limits<double>::infinity();
  }
  throw std::invalid_argument("JSON value is not a number");
}

std::uint64_t JsonValue::as_uint64() const {
  const double d = as_double();
  // Range-check before the cast: float-to-integer conversion of a value
  // the target type cannot represent (negative, NaN, >= 2^64) is UB, and
  // these values arrive from untrusted journal/wire lines.
  if (!(d >= 0.0) || d >= 18446744073709551616.0 || d != std::trunc(d))
    throw std::invalid_argument("JSON number is not an exact uint64");
  return static_cast<std::uint64_t>(d);
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString)
    throw std::invalid_argument("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray)
    throw std::invalid_argument("JSON value is not an array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject)
    throw std::invalid_argument("JSON value is not an object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end())
    throw std::invalid_argument("JSON object has no member '" + key + "'");
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return as_object().count(key) != 0;
}

}  // namespace qps
