// Contract-checking macros for library boundaries.
//
// The C++ Core Guidelines (I.5, I.6, E.12) recommend that a library surface
// detect precondition violations and report them in a way the caller can
// observe.  We throw: preconditions raise std::invalid_argument, internal
// invariant failures raise std::logic_error.  The checks stay enabled in
// Release builds; every call site is cheap (a branch) relative to the work
// the functions do.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qps::detail {

[[noreturn]] inline void throw_requirement(const char* kind, const char* expr,
                                           const char* file, int line,
                                           const std::string& message) {
  std::ostringstream os;
  os << kind << " failed: (" << expr << ") at " << file << ':' << line;
  if (!message.empty()) os << " - " << message;
  if (std::string(kind) == "precondition") throw std::invalid_argument(os.str());
  throw std::logic_error(os.str());
}

}  // namespace qps::detail

// Precondition on arguments supplied by the caller.
#define QPS_REQUIRE(cond, message)                                          \
  do {                                                                      \
    if (!(cond))                                                            \
      ::qps::detail::throw_requirement("precondition", #cond, __FILE__,     \
                                       __LINE__, (message));                \
  } while (0)

// Internal invariant; violation indicates a bug in this library.
#define QPS_CHECK(cond, message)                                            \
  do {                                                                      \
    if (!(cond))                                                            \
      ::qps::detail::throw_requirement("invariant", #cond, __FILE__,        \
                                       __LINE__, (message));                \
  } while (0)
