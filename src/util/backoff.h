// Capped exponential backoff with deterministic jitter.
//
// next() returns the delay to sleep before the upcoming retry: the base
// delay doubles (by `multiplier`) per attempt up to `max_seconds`, and
// each returned value is jittered to a uniform draw from
// [base/2, base] -- the "decorrelated halved" scheme that keeps a fleet
// of workers restarted together from re-dialing in lockstep.  The jitter
// stream is a pure function of (seed, attempt index), so a given seed
// replays the exact same schedule: tests and the chaos suite stay
// deterministic.
#pragma once

#include <cstdint>

namespace qps::util {

class Backoff {
 public:
  Backoff(double initial_seconds, double max_seconds,
          std::uint64_t seed = 0, double multiplier = 2.0)
      : initial_(initial_seconds),
        max_(max_seconds),
        multiplier_(multiplier),
        seed_(seed) {}

  /// Delay before the next retry; advances the schedule.
  double next();

  /// Back to the initial delay (after a success).
  void reset() { attempt_ = 0; }

  /// Retries scheduled since construction or the last reset().
  std::uint64_t attempts() const { return attempt_; }

  /// The un-jittered current base delay (diagnostics).
  double base() const;

 private:
  double initial_;
  double max_;
  double multiplier_;
  std::uint64_t seed_;
  std::uint64_t attempt_ = 0;
};

}  // namespace qps::util
