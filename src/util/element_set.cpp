#include "util/element_set.h"

#include <sstream>

namespace qps {

namespace {
constexpr std::size_t kWordBits = ElementSet::kInlineBits;
}  // namespace

ElementSet ElementSet::full(std::size_t universe_size) {
  ElementSet s(universe_size);
  if (s.is_small()) {
    if (universe_size == kWordBits)
      s.small_ = ~0ULL;
    else
      s.small_ = (1ULL << universe_size) - 1;
    return s;
  }
  for (auto& w : s.words_) w = ~0ULL;
  // Mask off bits above the universe boundary in the last word.
  const std::size_t tail = universe_size % kWordBits;
  if (tail != 0) s.words_.back() = (1ULL << tail) - 1;
  return s;
}

ElementSet ElementSet::complement() const {
  ElementSet result(n_);
  if (is_small()) {
    result.small_ = ~small_;
    if (n_ < kWordBits) result.small_ &= (1ULL << n_) - 1;
    return result;
  }
  for (std::size_t i = 0; i < words_.size(); ++i) result.words_[i] = ~words_[i];
  const std::size_t tail = n_ % kWordBits;
  if (tail != 0) result.words_.back() &= (1ULL << tail) - 1;
  return result;
}

std::vector<Element> ElementSet::to_vector() const {
  std::vector<Element> out;
  out.reserve(count());
  for (std::size_t i = 0; i < word_count(); ++i) {
    std::uint64_t w = word(i);
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<Element>(i * kWordBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

Element ElementSet::first() const {
  for (std::size_t i = 0; i < word_count(); ++i)
    if (word(i) != 0)
      return static_cast<Element>(i * kWordBits + std::countr_zero(word(i)));
  return static_cast<Element>(n_);
}

Element ElementSet::next_after(Element e) const {
  check_element(e);
  std::size_t idx = (e + 1) / kWordBits;
  if (idx >= word_count()) return static_cast<Element>(n_);
  std::uint64_t w = word(idx) >> ((e + 1) % kWordBits) << ((e + 1) % kWordBits);
  while (true) {
    if (w != 0)
      return static_cast<Element>(idx * kWordBits + std::countr_zero(w));
    if (++idx >= word_count()) return static_cast<Element>(n_);
    w = word(idx);
  }
}

ElementSet ElementSet::from_mask(std::size_t universe_size,
                                 std::uint64_t mask) {
  QPS_REQUIRE(universe_size <= kWordBits,
              "from_mask() needs a universe of <= 64");
  QPS_REQUIRE(universe_size == kWordBits || mask < (1ULL << universe_size),
              "mask has bits outside the universe");
  ElementSet s(universe_size);
  s.small_ = mask;
  return s;
}

std::size_t ElementSet::hash() const {
  // FNV-1a over the words plus the universe size.
  std::uint64_t h = 1469598103934665603ULL ^ n_;
  for (std::size_t i = 0; i < word_count(); ++i) {
    h ^= word(i);
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

std::string ElementSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first_member = true;
  for (Element e : to_vector()) {
    if (!first_member) os << ", ";
    os << (e + 1);  // 1-based, as in the paper
    first_member = false;
  }
  os << '}';
  return os.str();
}

}  // namespace qps
