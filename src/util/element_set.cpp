#include "util/element_set.h"

#include <bit>
#include <sstream>

#include "util/require.h"

namespace qps {

namespace {
constexpr std::size_t kWordBits = 64;
std::size_t words_for(std::size_t n) { return (n + kWordBits - 1) / kWordBits; }
}  // namespace

ElementSet::ElementSet(std::size_t universe_size)
    : n_(universe_size), words_(words_for(universe_size), 0) {}

ElementSet::ElementSet(std::size_t universe_size,
                       std::initializer_list<Element> members)
    : ElementSet(universe_size) {
  for (Element e : members) insert(e);
}

ElementSet ElementSet::full(std::size_t universe_size) {
  ElementSet s(universe_size);
  for (auto& w : s.words_) w = ~0ULL;
  // Mask off bits above the universe boundary in the last word.
  const std::size_t tail = universe_size % kWordBits;
  if (tail != 0 && !s.words_.empty()) s.words_.back() = (1ULL << tail) - 1;
  return s;
}

void ElementSet::check_element(Element e) const {
  QPS_REQUIRE(e < n_, "element outside the universe");
}

void ElementSet::check_same_universe(const ElementSet& other) const {
  QPS_REQUIRE(n_ == other.n_, "element sets over different universes");
}

bool ElementSet::contains(Element e) const {
  check_element(e);
  return (words_[e / kWordBits] >> (e % kWordBits)) & 1ULL;
}

void ElementSet::insert(Element e) {
  check_element(e);
  words_[e / kWordBits] |= 1ULL << (e % kWordBits);
}

void ElementSet::erase(Element e) {
  check_element(e);
  words_[e / kWordBits] &= ~(1ULL << (e % kWordBits));
}

void ElementSet::clear() {
  for (auto& w : words_) w = 0;
}

std::size_t ElementSet::count() const {
  std::size_t total = 0;
  for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
  return total;
}

bool ElementSet::is_subset_of(const ElementSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & ~other.words_[i]) != 0) return false;
  return true;
}

bool ElementSet::intersects(const ElementSet& other) const {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i)
    if ((words_[i] & other.words_[i]) != 0) return true;
  return false;
}

ElementSet ElementSet::complement() const {
  ElementSet result(n_);
  for (std::size_t i = 0; i < words_.size(); ++i) result.words_[i] = ~words_[i];
  const std::size_t tail = n_ % kWordBits;
  if (tail != 0 && !result.words_.empty())
    result.words_.back() &= (1ULL << tail) - 1;
  return result;
}

ElementSet& ElementSet::operator|=(const ElementSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

ElementSet& ElementSet::operator&=(const ElementSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

ElementSet& ElementSet::operator-=(const ElementSet& other) {
  check_same_universe(other);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= ~other.words_[i];
  return *this;
}

std::vector<Element> ElementSet::to_vector() const {
  std::vector<Element> out;
  out.reserve(count());
  for (std::size_t i = 0; i < words_.size(); ++i) {
    std::uint64_t w = words_[i];
    while (w != 0) {
      const int bit = std::countr_zero(w);
      out.push_back(static_cast<Element>(i * kWordBits + bit));
      w &= w - 1;
    }
  }
  return out;
}

Element ElementSet::first() const {
  for (std::size_t i = 0; i < words_.size(); ++i)
    if (words_[i] != 0)
      return static_cast<Element>(i * kWordBits + std::countr_zero(words_[i]));
  return static_cast<Element>(n_);
}

Element ElementSet::next_after(Element e) const {
  check_element(e);
  std::size_t word = (e + 1) / kWordBits;
  if (word >= words_.size()) return static_cast<Element>(n_);
  std::uint64_t w = words_[word] >> ((e + 1) % kWordBits) << ((e + 1) % kWordBits);
  while (true) {
    if (w != 0)
      return static_cast<Element>(word * kWordBits + std::countr_zero(w));
    if (++word >= words_.size()) return static_cast<Element>(n_);
    w = words_[word];
  }
}

std::uint64_t ElementSet::to_mask() const {
  QPS_REQUIRE(n_ <= 64, "to_mask() is only defined for universes of <= 64");
  return words_.empty() ? 0 : words_[0];
}

ElementSet ElementSet::from_mask(std::size_t universe_size, std::uint64_t mask) {
  QPS_REQUIRE(universe_size <= 64, "from_mask() needs a universe of <= 64");
  QPS_REQUIRE(universe_size == 64 || mask < (1ULL << universe_size),
              "mask has bits outside the universe");
  ElementSet s(universe_size);
  if (!s.words_.empty()) s.words_[0] = mask;
  return s;
}

std::size_t ElementSet::hash() const {
  // FNV-1a over the words plus the universe size.
  std::uint64_t h = 1469598103934665603ULL ^ n_;
  for (auto w : words_) {
    h ^= w;
    h *= 1099511628211ULL;
  }
  return static_cast<std::size_t>(h);
}

std::string ElementSet::to_string() const {
  std::ostringstream os;
  os << '{';
  bool first_member = true;
  for (Element e : to_vector()) {
    if (!first_member) os << ", ";
    os << (e + 1);  // 1-based, as in the paper
    first_member = false;
  }
  os << '}';
  return os.str();
}

}  // namespace qps
