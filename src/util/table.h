// Minimal aligned-column ASCII table writer.
//
// Every benchmark harness prints paper-vs-measured rows; this class keeps
// that output uniform and diffable (fixed column order, right-aligned
// numerics, one header row, a rule line, then data rows).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qps {

class Table {
 public:
  /// Column headers fix the column count for all subsequent rows.
  explicit Table(std::vector<std::string> headers);

  /// Adds a data row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats a double with `precision` digits after the point.
  static std::string num(double value, int precision = 3);
  /// Convenience: formats an integer cell.
  static std::string num(long long value);

  /// Renders with two-space gutters; numeric-looking cells right-aligned.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qps
