#include "util/rng.h"

#include <cmath>

#include "util/require.h"

namespace qps {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // All-zero state is the one forbidden state of xoshiro; splitmix64 cannot
  // produce four zero outputs in a row, but keep the guard for clarity.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  QPS_REQUIRE(bound > 0, "below() needs a positive bound");
  // Lemire's method: multiply-shift with rejection in the biased band.
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  QPS_REQUIRE(lo <= hi, "uniform_int() needs lo <= hi");
  const auto span =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  return lo + static_cast<std::int64_t>(below(span));
}

double Rng::uniform01() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::uniform_real(double lo, double hi) {
  QPS_REQUIRE(lo <= hi, "uniform_real() needs lo <= hi");
  return lo + (hi - lo) * uniform01();
}

double Rng::exponential(double lambda) {
  QPS_REQUIRE(lambda > 0.0, "exponential() needs lambda > 0");
  // Inverse-CDF; 1 - uniform01() is in (0, 1], so log() is finite.
  return -std::log1p(-uniform01()) / lambda;
}

std::vector<std::uint32_t> Rng::permutation(std::uint32_t n) {
  std::vector<std::uint32_t> p;
  permutation_into(p, n);
  return p;
}

void Rng::permutation_into(std::vector<std::uint32_t>& out, std::uint32_t n) {
  out.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) out[i] = i;
  shuffle(out);
}

Rng Rng::fork() { return Rng(next_u64() ^ 0xa0761d6478bd642fULL); }

Rng Rng::for_stream(std::uint64_t seed, std::uint64_t stream) {
  // Mix the root seed once, offset by the stream index, and mix again: the
  // splitmix64 finalizer is bijective with full avalanche, so adjacent
  // stream indices land on unrelated xoshiro seed states.
  std::uint64_t state = seed;
  std::uint64_t stream_state = splitmix64(state) + stream;
  return Rng(splitmix64(stream_state));
}

}  // namespace qps
