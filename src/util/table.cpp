#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/require.h"

namespace qps {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  QPS_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  QPS_REQUIRE(cells.size() == headers_.size(),
              "row width does not match the header");
  rows_.push_back(std::move(cells));
}

std::string Table::num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string Table::num(long long value) { return std::to_string(value); }

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s)
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != '%')
      return false;
  return true;
}
}  // namespace

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c != 0) os << "  ";
      if (looks_numeric(row[c]))
        os << std::setw(static_cast<int>(width[c])) << std::right << row[c];
      else
        os << std::setw(static_cast<int>(width[c])) << std::left << row[c];
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c)
    total += width[c] + (c == 0 ? 0 : 2);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

}  // namespace qps
