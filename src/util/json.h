// Minimal JSON writing and parsing for the sweep wire protocol, checkpoint
// journals, and bench reports.
//
// The writer side guarantees round-trips: json_number() prints doubles with
// max_digits10 so text -> strtod recovers the exact bits, and encodes the
// non-finite values JSON cannot express as the strings "NaN", "Infinity",
// and "-Infinity" (json_to_double() inverts that encoding).  json_escape()
// implements the full RFC 8259 escape set, so arbitrary strings -- control
// characters included -- survive a write/parse cycle.
//
// The parser handles the complete JSON value grammar (objects, arrays,
// strings with escapes, numbers, literals) into a small JsonValue tree.  It
// is not a streaming parser and keeps everything in memory; protocol lines
// and journal entries are tiny, so that is the right trade.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace qps {

/// Body of a JSON string literal for `s` (quotes not included): ", \ and
/// control characters are escaped per RFC 8259.
std::string json_escape(std::string_view s);

/// `s` as a complete JSON string literal, surrounding quotes included.
std::string json_quote(std::string_view s);

/// `value` as a JSON token that parses back to the exact same bits:
/// max_digits10 decimal for finite values, the quoted strings "NaN" /
/// "Infinity" / "-Infinity" otherwise.
std::string json_number(double value);

/// A parsed JSON value.  Accessors throw std::invalid_argument on kind
/// mismatch so malformed protocol lines fail loudly, not with defaults.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document; trailing non-whitespace or any
  /// syntax error throws std::invalid_argument.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }

  bool as_bool() const;
  /// The numeric value; also accepts the string encodings "NaN",
  /// "Infinity" and "-Infinity" emitted by json_number().
  double as_double() const;
  /// as_double() checked to be an exact non-negative integer.
  std::uint64_t as_uint64() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member lookup; throws std::invalid_argument when absent.
  const JsonValue& at(const std::string& key) const;
  bool contains(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;

  friend class JsonParser;
};

}  // namespace qps
