// ElementSet: a dynamic bitset over the universe U = {0 .. n-1}.
//
// Quorum systems are set systems; every hot operation in the library
// (characteristic-function evaluation, witness validation, transversal
// tests) reduces to subset/intersection/popcount queries on element sets.
// The class is a regular value type.
//
// Storage is small-buffer optimized: universes of up to 64 elements -- every
// family size benchmarked from the paper -- live in one inline 64-bit word,
// so construction, copies and all the hot queries touch no heap memory and
// compile down to single word instructions.  Larger universes fall back to a
// heap word vector with the same O(n/64) operations.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "util/require.h"

namespace qps {

using Element = std::uint32_t;

class ElementSet {
 public:
  /// Universes of at most this many elements are stored inline (one word).
  static constexpr std::size_t kInlineBits = 64;

  ElementSet() = default;

  /// Empty set over a universe of `universe_size` elements.
  explicit ElementSet(std::size_t universe_size)
      : n_(universe_size),
        words_(universe_size <= kInlineBits ? 0 : word_capacity(universe_size),
               0) {}

  /// Set over `universe_size` elements containing exactly `members`.
  ElementSet(std::size_t universe_size, std::initializer_list<Element> members)
      : ElementSet(universe_size) {
    for (Element e : members) insert(e);
  }

  /// Full universe {0 .. universe_size-1}.
  static ElementSet full(std::size_t universe_size);

  std::size_t universe_size() const { return n_; }

  bool contains(Element e) const {
    check_element(e);
    if (is_small()) return (small_ >> e) & 1ULL;
    return (words_[e / kInlineBits] >> (e % kInlineBits)) & 1ULL;
  }

  void insert(Element e) {
    check_element(e);
    if (is_small())
      small_ |= 1ULL << e;
    else
      words_[e / kInlineBits] |= 1ULL << (e % kInlineBits);
  }

  void erase(Element e) {
    check_element(e);
    if (is_small())
      small_ &= ~(1ULL << e);
    else
      words_[e / kInlineBits] &= ~(1ULL << (e % kInlineBits));
  }

  /// Removes every element; universe size is unchanged.
  void clear() {
    small_ = 0;
    for (auto& w : words_) w = 0;
  }

  /// Number of elements in the set.
  std::size_t count() const {
    if (is_small()) return static_cast<std::size_t>(std::popcount(small_));
    std::size_t total = 0;
    for (auto w : words_) total += static_cast<std::size_t>(std::popcount(w));
    return total;
  }
  bool empty() const { return count() == 0; }

  /// True iff *this is a subset of `other` (same universe required).
  bool is_subset_of(const ElementSet& other) const {
    check_same_universe(other);
    if (is_small()) return (small_ & ~other.small_) == 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & ~other.words_[i]) != 0) return false;
    return true;
  }

  /// True iff the two sets share at least one element.
  bool intersects(const ElementSet& other) const {
    check_same_universe(other);
    if (is_small()) return (small_ & other.small_) != 0;
    for (std::size_t i = 0; i < words_.size(); ++i)
      if ((words_[i] & other.words_[i]) != 0) return true;
    return false;
  }

  /// Complement within the universe.
  ElementSet complement() const;

  ElementSet& operator|=(const ElementSet& other) {
    check_same_universe(other);
    small_ |= other.small_;
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
    return *this;
  }
  ElementSet& operator&=(const ElementSet& other) {
    check_same_universe(other);
    small_ &= other.small_;
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
    return *this;
  }
  ElementSet& operator-=(const ElementSet& other) {
    check_same_universe(other);
    small_ &= ~other.small_;
    for (std::size_t i = 0; i < words_.size(); ++i)
      words_[i] &= ~other.words_[i];
    return *this;
  }
  friend ElementSet operator|(ElementSet a, const ElementSet& b) { return a |= b; }
  friend ElementSet operator&(ElementSet a, const ElementSet& b) { return a &= b; }
  friend ElementSet operator-(ElementSet a, const ElementSet& b) { return a -= b; }

  // Inline sets keep `words_` empty and heap sets keep `small_` zero, so the
  // member-wise default compares canonical representations.
  bool operator==(const ElementSet& other) const = default;

  /// Members in increasing order.
  std::vector<Element> to_vector() const;

  /// Smallest element, or universe_size() if empty.
  Element first() const;
  /// Smallest element strictly greater than `e`, or universe_size() if none.
  Element next_after(Element e) const;

  /// For universes of at most 64 elements: the set as a bitmask.
  std::uint64_t to_mask() const {
    QPS_REQUIRE(n_ <= kInlineBits,
                "to_mask() is only defined for universes of <= 64");
    return small_;
  }
  /// Builds a set from a bitmask (universe must be at most 64 elements).
  static ElementSet from_mask(std::size_t universe_size, std::uint64_t mask);

  /// Overwrites the contents from a bitmask, in place (universe must be at
  /// most 64 elements; the mask must fit it).  The zero-allocation trial
  /// hot path uses this to re-fill a reusable set word-at-a-time.
  void assign_mask(std::uint64_t mask) {
    QPS_REQUIRE(n_ <= kInlineBits, "assign_mask() needs a universe of <= 64");
    QPS_REQUIRE(n_ == kInlineBits || mask < (1ULL << n_),
                "mask has bits outside the universe");
    small_ = mask;
  }

  /// Overwrites the contents from ceil(n/64) little-endian mask words, in
  /// place, for any universe size.  Bits above the universe in the last
  /// word must be zero.  Multi-word sibling of assign_mask() for the
  /// zero-allocation trial hot path.
  void assign_words(const std::uint64_t* words) {
    if (is_small()) {
      assign_mask(words[0]);
      return;
    }
    const std::size_t rem = n_ % kInlineBits;
    QPS_REQUIRE(rem == 0 || (words[words_.size() - 1] >> rem) == 0,
                "mask words have bits outside the universe");
    for (std::size_t i = 0; i < words_.size(); ++i) words_[i] = words[i];
  }

  /// Stable hash of the contents (for use in unordered containers).
  std::size_t hash() const;

  /// "{1, 4, 7}" using 1-based element names, matching the paper's numbering.
  std::string to_string() const;

 private:
  static constexpr std::size_t word_capacity(std::size_t n) {
    return (n + kInlineBits - 1) / kInlineBits;
  }
  bool is_small() const { return n_ <= kInlineBits; }
  std::size_t word_count() const { return is_small() ? 1 : words_.size(); }
  std::uint64_t word(std::size_t i) const {
    return is_small() ? small_ : words_[i];
  }

  void check_element(Element e) const {
    QPS_REQUIRE(e < n_, "element outside the universe");
  }
  void check_same_universe(const ElementSet& other) const {
    QPS_REQUIRE(n_ == other.n_, "element sets over different universes");
  }

  std::size_t n_ = 0;
  std::uint64_t small_ = 0;            // inline storage, used iff n_ <= 64
  std::vector<std::uint64_t> words_;   // heap storage, used iff n_ > 64
};

struct ElementSetHash {
  std::size_t operator()(const ElementSet& s) const { return s.hash(); }
};

}  // namespace qps
