// ElementSet: a dynamic bitset over the universe U = {0 .. n-1}.
//
// Quorum systems are set systems; every hot operation in the library
// (characteristic-function evaluation, witness validation, transversal
// tests) reduces to subset/intersection/popcount queries on element sets,
// so they are all O(n/64) here.  The class is a regular value type.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace qps {

using Element = std::uint32_t;

class ElementSet {
 public:
  ElementSet() = default;

  /// Empty set over a universe of `universe_size` elements.
  explicit ElementSet(std::size_t universe_size);

  /// Set over `universe_size` elements containing exactly `members`.
  ElementSet(std::size_t universe_size, std::initializer_list<Element> members);

  /// Full universe {0 .. universe_size-1}.
  static ElementSet full(std::size_t universe_size);

  std::size_t universe_size() const { return n_; }

  bool contains(Element e) const;
  void insert(Element e);
  void erase(Element e);
  /// Removes every element; universe size is unchanged.
  void clear();

  /// Number of elements in the set.
  std::size_t count() const;
  bool empty() const { return count() == 0; }

  /// True iff *this is a subset of `other` (same universe required).
  bool is_subset_of(const ElementSet& other) const;
  /// True iff the two sets share at least one element.
  bool intersects(const ElementSet& other) const;

  /// Complement within the universe.
  ElementSet complement() const;

  ElementSet& operator|=(const ElementSet& other);
  ElementSet& operator&=(const ElementSet& other);
  ElementSet& operator-=(const ElementSet& other);
  friend ElementSet operator|(ElementSet a, const ElementSet& b) { return a |= b; }
  friend ElementSet operator&(ElementSet a, const ElementSet& b) { return a &= b; }
  friend ElementSet operator-(ElementSet a, const ElementSet& b) { return a -= b; }

  bool operator==(const ElementSet& other) const = default;

  /// Members in increasing order.
  std::vector<Element> to_vector() const;

  /// Smallest element, or universe_size() if empty.
  Element first() const;
  /// Smallest element strictly greater than `e`, or universe_size() if none.
  Element next_after(Element e) const;

  /// For universes of at most 64 elements: the set as a bitmask.
  std::uint64_t to_mask() const;
  /// Builds a set from a bitmask (universe must be at most 64 elements).
  static ElementSet from_mask(std::size_t universe_size, std::uint64_t mask);

  /// Stable hash of the contents (for use in unordered containers).
  std::size_t hash() const;

  /// "{1, 4, 7}" using 1-based element names, matching the paper's numbering.
  std::string to_string() const;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;

  void check_element(Element e) const;
  void check_same_universe(const ElementSet& other) const;
};

struct ElementSetHash {
  std::size_t operator()(const ElementSet& s) const { return s.hash(); }
};

}  // namespace qps
