// Fact 2.6 and Lemma 2.5: the linear-recurrence and product tools used by
// the Tree and HQS analyses.
//
// Fact 2.6: f(h) = b_h + a_h * f(h-1) solves to
//   f(h) = f(0) * prod a_i + sum_i b_i * prod_{j>i} a_j .
// Lemma 2.5: prod_{i=1..h} (a + c b^i) <= e^{Bc/a} * a^h with B = 1/(1-b).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace qps {

/// Iterates f(h) = b(h) + a(h) * f(h-1) from f(0) = f0; returns f(0..h).
std::vector<double> solve_linear_recurrence(
    double f0, std::size_t h, const std::function<double(std::size_t)>& a,
    const std::function<double(std::size_t)>& b);

/// Closed form of Fact 2.6 for constant coefficients:
/// f(h) = f0 * a^h + b * (a^h - 1) / (a - 1)   (or f0 + b*h when a == 1).
double linear_recurrence_closed_form(double f0, double a, double b,
                                     std::size_t h);

/// The exact product prod_{i=1..h} (a + c * b^i).
double damped_product(double a, double b, double c, std::size_t h);

/// Lemma 2.5's upper bound e^{Bc/a} * a^h, B = 1/(1-b).  Requires 0 < b < 1.
double damped_product_bound(double a, double b, double c, std::size_t h);

}  // namespace qps
