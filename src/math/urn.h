// Urn-model expectations (Section 2.4 of the paper).
//
// An urn holds r red and g green balls; balls are drawn uniformly without
// replacement.  The paper's randomized analyses reduce to three facts:
//   Fact 2.7   E[draws until the first red]            = (r+g+1)/(r+1)
//   Lemma 2.8  E[draws until the j-th red]             = j(n+1)/(r+1), n=r+g
//   Lemma 2.9  E[draws until both colors are seen]     = 1 + r/(g+1) + g/(r+1)
// Each is provided in closed form (exact Rational) and as an independent
// brute-force enumeration over all draw orders (used by the tests to verify
// the closed forms, and by benches to cross-check Monte Carlo).
#pragma once

#include <cstddef>

#include "math/rational.h"
#include "util/rng.h"

namespace qps {

/// Fact 2.7: expected draws until the first red ball.  Requires r >= 1.
Rational urn_first_red_expectation(std::size_t reds, std::size_t greens);

/// Lemma 2.8: expected draws until the j-th red ball.  Requires 1 <= j <= r.
Rational urn_jth_red_expectation(std::size_t reds, std::size_t greens,
                                 std::size_t j);

/// Lemma 2.9: expected draws until both colors have been seen.
/// Requires r >= 1 and g >= 1.
Rational urn_both_colors_expectation(std::size_t reds, std::size_t greens);

/// Exact expectation of draws until the j-th red, computed by dynamic
/// programming over urn states (no use of the closed form).
Rational urn_jth_red_expectation_enumerated(std::size_t reds,
                                            std::size_t greens, std::size_t j);

/// Exact expectation of draws until both colors seen, by state enumeration.
Rational urn_both_colors_expectation_enumerated(std::size_t reds,
                                                std::size_t greens);

/// Monte-Carlo estimate of draws until the j-th red (for sanity benches).
double urn_jth_red_simulated(std::size_t reds, std::size_t greens,
                             std::size_t j, std::size_t trials, Rng& rng);

}  // namespace qps
