// Exact rational arithmetic on 64-bit numerator/denominator.
//
// The exact probe-complexity engines report values such as 5/2, 8/3 and
// 189.5/27 exactly; doubles would force sloppy tolerances in the tests that
// pin those numbers.  Intermediate products are computed in 128 bits and
// reduced eagerly; overflow of the reduced result throws std::overflow_error
// rather than wrapping.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace qps {

class Rational {
 public:
  /// Zero.
  Rational() = default;
  /// Integer value.
  Rational(std::int64_t value) : num_(value), den_(1) {}  // NOLINT: implicit by design
  /// num/den, reduced; den must be nonzero.
  Rational(std::int64_t num, std::int64_t den);

  std::int64_t numerator() const { return num_; }
  std::int64_t denominator() const { return den_; }

  double to_double() const;
  /// "8/3" or "5" when integral.
  std::string to_string() const;

  Rational operator-() const;
  Rational& operator+=(const Rational& other);
  Rational& operator-=(const Rational& other);
  Rational& operator*=(const Rational& other);
  Rational& operator/=(const Rational& other);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  bool operator==(const Rational& other) const = default;
  /// Exact comparison via 128-bit cross multiplication.
  std::strong_ordering operator<=>(const Rational& other) const;

 private:
  std::int64_t num_ = 0;
  std::int64_t den_ = 1;

  void reduce();
};

std::ostream& operator<<(std::ostream& os, const Rational& r);

}  // namespace qps
