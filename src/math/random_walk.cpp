#include "math/random_walk.h"

#include <cmath>
#include <vector>

#include "util/require.h"

namespace qps {

double grid_walk_expected_time(std::size_t n, double p) {
  QPS_REQUIRE(n >= 1, "grid size must be positive");
  QPS_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  const double q = 1.0 - p;
  // E[x][y] = expected remaining steps from (x, y); absorbing at x==n, y==n.
  // Sweep anti-diagonals from the boundary inward; a rolling 2-D table is
  // fine at the N used here (<= a few thousand).
  std::vector<std::vector<double>> e(n + 1, std::vector<double>(n + 1, 0.0));
  for (std::size_t x = n; x-- > 0;)
    for (std::size_t y = n; y-- > 0;)
      e[x][y] = 1.0 + p * e[x + 1][y] + q * e[x][y + 1];
  return e[0][0];
}

double grid_walk_asymptotic(std::size_t n, double p) {
  QPS_REQUIRE(n >= 1, "grid size must be positive");
  const double q = 1.0 - p;
  const auto nd = static_cast<double>(n);
  if (p == q) {
    // E|S_t| for a +-1 walk is sqrt(2t/pi); at absorption t ~ 2N, giving
    // E(T) = 2N - sqrt(4N/pi) up to lower-order terms.
    return 2.0 * nd - std::sqrt(4.0 * nd / 3.141592653589793);
  }
  return nd / std::max(p, q);
}

double grid_walk_simulated(std::size_t n, double p, std::size_t trials,
                           Rng& rng) {
  QPS_REQUIRE(trials > 0, "need at least one trial");
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t x = 0, y = 0, steps = 0;
    while (x < n && y < n) {
      if (rng.bernoulli(p))
        ++x;
      else
        ++y;
      ++steps;
    }
    total += static_cast<double>(steps);
  }
  return total / static_cast<double>(trials);
}

}  // namespace qps
