#include "math/game.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "util/require.h"

namespace qps {

namespace {
constexpr double kEps = 1e-11;
}

double simplex_maximize(const std::vector<std::vector<double>>& a,
                        const std::vector<double>& b,
                        const std::vector<double>& c,
                        std::vector<double>& solution,
                        std::vector<double>* duals,
                        std::size_t* pivot_count) {
  const std::size_t m = a.size();      // constraints
  const std::size_t n = c.size();      // structural variables
  QPS_REQUIRE(b.size() == m, "b size mismatch");
  for (const auto& row : a)
    QPS_REQUIRE(row.size() == n, "A row width mismatch");
  for (double bi : b)
    QPS_REQUIRE(bi >= 0.0, "simplex_maximize needs b >= 0 (slack basis)");

  // Tableau: m rows of [A | I | b], objective row [-c | 0 | 0].
  const std::size_t cols = n + m + 1;
  std::vector<std::vector<double>> t(m + 1, std::vector<double>(cols, 0.0));
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) t[i][j] = a[i][j];
    t[i][n + i] = 1.0;
    t[i][cols - 1] = b[i];
  }
  for (std::size_t j = 0; j < n; ++j) t[m][j] = -c[j];

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;

  std::size_t pivots = 0;
  const std::size_t max_pivots = 2000 * (m + n) + 10000;
  while (true) {
    // Entering variable: most negative reduced cost (Dantzig), with Bland's
    // rule after many pivots to guarantee termination.
    std::size_t enter = cols;  // sentinel
    if (pivots < max_pivots / 2) {
      double best = -kEps;
      for (std::size_t j = 0; j + 1 < cols; ++j)
        if (t[m][j] < best) {
          best = t[m][j];
          enter = j;
        }
    } else {
      for (std::size_t j = 0; j + 1 < cols; ++j)
        if (t[m][j] < -kEps) {
          enter = j;
          break;
        }
    }
    if (enter == cols) break;  // optimal

    // Leaving variable: minimum ratio test.
    std::size_t leave = m;
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < m; ++i) {
      if (t[i][enter] > kEps) {
        const double ratio = t[i][cols - 1] / t[i][enter];
        if (ratio < best_ratio - kEps ||
            (ratio < best_ratio + kEps && (leave == m || basis[i] < basis[leave]))) {
          best_ratio = ratio;
          leave = i;
        }
      }
    }
    if (leave == m) throw std::runtime_error("LP is unbounded");

    // Pivot on (leave, enter).
    const double pivot = t[leave][enter];
    for (auto& cell : t[leave]) cell /= pivot;
    for (std::size_t i = 0; i <= m; ++i) {
      if (i == leave) continue;
      const double factor = t[i][enter];
      if (std::abs(factor) < kEps) continue;
      for (std::size_t j = 0; j < cols; ++j) t[i][j] -= factor * t[leave][j];
    }
    basis[leave] = enter;
    if (++pivots > max_pivots)
      throw std::runtime_error("simplex exceeded the pivot budget");
  }

  solution.assign(n, 0.0);
  for (std::size_t i = 0; i < m; ++i)
    if (basis[i] < n) solution[basis[i]] = t[i][cols - 1];
  if (duals != nullptr) {
    duals->assign(m, 0.0);
    // Reduced costs of the slack columns give the dual values.
    for (std::size_t i = 0; i < m; ++i) (*duals)[i] = t[m][n + i];
  }
  if (pivot_count != nullptr) *pivot_count = pivots;
  return t[m][cols - 1];
}

GameSolution solve_zero_sum_game(
    const std::vector<std::vector<double>>& cost) {
  const std::size_t rows = cost.size();
  QPS_REQUIRE(rows > 0, "game needs at least one row");
  const std::size_t colsn = cost[0].size();
  QPS_REQUIRE(colsn > 0, "game needs at least one column");
  for (const auto& r : cost)
    QPS_REQUIRE(r.size() == colsn, "game matrix must be rectangular");

  // Shift all payoffs positive so the game value is positive and the
  // classical LP reduction applies; undo the shift at the end.
  double lo = cost[0][0];
  for (const auto& r : cost)
    for (double v : r) lo = std::min(lo, v);
  const double shift = lo <= 0.0 ? 1.0 - lo : 0.0;

  // Column player (minimizer) LP:  maximize sum(w)  s.t.  M w <= 1, w >= 0
  // where M[i][j] = cost[i][j] + shift.  Then value = 1/sum(w), and the
  // column strategy is w * value.  Duals give the row strategy.
  std::vector<std::vector<double>> m(rows, std::vector<double>(colsn));
  for (std::size_t i = 0; i < rows; ++i)
    for (std::size_t j = 0; j < colsn; ++j) m[i][j] = cost[i][j] + shift;
  const std::vector<double> b(rows, 1.0);
  const std::vector<double> c(colsn, 1.0);

  GameSolution sol;
  std::vector<double> w;
  std::vector<double> duals;
  const double objective = simplex_maximize(m, b, c, w, &duals, &sol.pivots);
  QPS_CHECK(objective > 0.0, "shifted game must have positive value");
  const double value = 1.0 / objective;

  sol.value = value - shift;
  sol.column_strategy.resize(colsn);
  for (std::size_t j = 0; j < colsn; ++j) sol.column_strategy[j] = w[j] * value;
  sol.row_strategy.resize(rows);
  double row_total = 0.0;
  for (std::size_t i = 0; i < rows; ++i) {
    sol.row_strategy[i] = duals[i] * value;
    row_total += sol.row_strategy[i];
  }
  // Normalize away numerical residue.
  if (row_total > 0)
    for (auto& p : sol.row_strategy) p /= row_total;
  return sol;
}

}  // namespace qps
