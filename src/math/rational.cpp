#include "math/rational.h"

#include <numeric>
#include <ostream>
#include <stdexcept>

#include "util/require.h"

namespace qps {

namespace {

std::int64_t checked_narrow(__int128 v) {
  if (v > INT64_MAX || v < INT64_MIN)
    throw std::overflow_error("Rational arithmetic overflowed 64 bits");
  return static_cast<std::int64_t>(v);
}

__int128 gcd128(__int128 a, __int128 b) {
  if (a < 0) a = -a;
  if (b < 0) b = -b;
  while (b != 0) {
    const __int128 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

}  // namespace

Rational::Rational(std::int64_t num, std::int64_t den) : num_(num), den_(den) {
  QPS_REQUIRE(den != 0, "Rational denominator must be nonzero");
  reduce();
}

void Rational::reduce() {
  if (den_ < 0) {
    num_ = -num_;
    den_ = -den_;
  }
  const std::int64_t g = std::gcd(num_, den_);
  if (g > 1) {
    num_ /= g;
    den_ /= g;
  }
  if (num_ == 0) den_ = 1;
}

double Rational::to_double() const {
  return static_cast<double>(num_) / static_cast<double>(den_);
}

std::string Rational::to_string() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

Rational Rational::operator-() const {
  Rational r;
  r.num_ = -num_;
  r.den_ = den_;
  return r;
}

Rational& Rational::operator+=(const Rational& other) {
  const __int128 n = static_cast<__int128>(num_) * other.den_ +
                     static_cast<__int128>(other.num_) * den_;
  const __int128 d = static_cast<__int128>(den_) * other.den_;
  const __int128 g = gcd128(n, d);
  num_ = checked_narrow(g == 0 ? n : n / g);
  den_ = checked_narrow(g == 0 ? d : d / g);
  reduce();
  return *this;
}

Rational& Rational::operator-=(const Rational& other) { return *this += -other; }

Rational& Rational::operator*=(const Rational& other) {
  const __int128 n = static_cast<__int128>(num_) * other.num_;
  const __int128 d = static_cast<__int128>(den_) * other.den_;
  const __int128 g = gcd128(n, d);
  num_ = checked_narrow(g == 0 ? n : n / g);
  den_ = checked_narrow(g == 0 ? d : d / g);
  reduce();
  return *this;
}

Rational& Rational::operator/=(const Rational& other) {
  QPS_REQUIRE(other.num_ != 0, "division by zero Rational");
  Rational inv;
  inv.num_ = other.den_;
  inv.den_ = other.num_;
  if (inv.den_ < 0) {
    inv.num_ = -inv.num_;
    inv.den_ = -inv.den_;
  }
  return *this *= inv;
}

std::strong_ordering Rational::operator<=>(const Rational& other) const {
  const __int128 lhs = static_cast<__int128>(num_) * other.den_;
  const __int128 rhs = static_cast<__int128>(other.num_) * den_;
  if (lhs < rhs) return std::strong_ordering::less;
  if (lhs > rhs) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const Rational& r) {
  return os << r.to_string();
}

}  // namespace qps
