// Zero-sum matrix games, solved exactly (to numerical tolerance) with a
// dense primal simplex.
//
// The randomized probe complexity PCR(S) is the value of a zero-sum game:
// the prober mixes over deterministic probe strategies (columns, minimizing
// expected probes) while the adversary mixes over colorings (rows,
// maximizing).  For tiny systems the strategy space can be enumerated and
// the game solved outright -- this is how the worked example
// PCR(Maj3) = 8/3 of Section 2.3 / Fig. 4 is reproduced.
#pragma once

#include <cstddef>
#include <vector>

namespace qps {

struct GameSolution {
  /// Game value: expected cost under optimal play by both sides.
  double value = 0.0;
  /// Maximizer's (row player's) optimal mixed strategy.
  std::vector<double> row_strategy;
  /// Minimizer's (column player's) optimal mixed strategy.
  std::vector<double> column_strategy;
  /// Number of simplex pivots performed (diagnostic).
  std::size_t pivots = 0;
};

/// Solves the game with payoff matrix `cost` (row player receives
/// cost[i][j]; row player maximizes, column player minimizes).
/// The matrix must be rectangular and nonempty.
GameSolution solve_zero_sum_game(const std::vector<std::vector<double>>& cost);

/// General-purpose primal simplex for:  maximize c.w  s.t.  A w <= b, w >= 0
/// with all b >= 0 (so the slack basis is feasible).  Returns the optimal
/// objective; `solution` receives the optimal w.  Throws std::runtime_error
/// if the LP is unbounded.
double simplex_maximize(const std::vector<std::vector<double>>& a,
                        const std::vector<double>& b,
                        const std::vector<double>& c,
                        std::vector<double>& solution,
                        std::vector<double>* duals = nullptr,
                        std::size_t* pivot_count = nullptr);

}  // namespace qps
