#include "math/urn.h"

#include <map>
#include <vector>

#include "util/require.h"

namespace qps {

Rational urn_first_red_expectation(std::size_t reds, std::size_t greens) {
  QPS_REQUIRE(reds >= 1, "need at least one red ball");
  const auto r = static_cast<std::int64_t>(reds);
  const auto g = static_cast<std::int64_t>(greens);
  return Rational(r + g + 1, r + 1);
}

Rational urn_jth_red_expectation(std::size_t reds, std::size_t greens,
                                 std::size_t j) {
  QPS_REQUIRE(j >= 1 && j <= reds, "need 1 <= j <= r");
  const auto r = static_cast<std::int64_t>(reds);
  const auto n = static_cast<std::int64_t>(reds + greens);
  return Rational(static_cast<std::int64_t>(j) * (n + 1), r + 1);
}

Rational urn_both_colors_expectation(std::size_t reds, std::size_t greens) {
  QPS_REQUIRE(reds >= 1 && greens >= 1, "need both colors present");
  const auto r = static_cast<std::int64_t>(reds);
  const auto g = static_cast<std::int64_t>(greens);
  return Rational(1) + Rational(r, g + 1) + Rational(g, r + 1);
}

namespace {

// E[extra draws] from a state with `r` reds and `g` greens left, needing
// `need` more reds.  Memoized on (r, g, need).
Rational jth_red_dp(std::size_t r, std::size_t g, std::size_t need,
                    std::map<std::tuple<std::size_t, std::size_t, std::size_t>,
                             Rational>& memo) {
  if (need == 0) return Rational(0);
  QPS_CHECK(r >= need, "urn cannot supply the remaining reds");
  const auto key = std::make_tuple(r, g, need);
  const auto it = memo.find(key);
  if (it != memo.end()) return it->second;
  const auto total = static_cast<std::int64_t>(r + g);
  Rational value(1);  // this draw
  const Rational p_red(static_cast<std::int64_t>(r), total);
  const Rational p_green(static_cast<std::int64_t>(g), total);
  if (r > 0 && need > 0)
    value += p_red * jth_red_dp(r - 1, g, need - 1, memo);
  if (g > 0)
    value += p_green * jth_red_dp(r, g - 1, need, memo);
  memo.emplace(key, value);
  return value;
}

}  // namespace

Rational urn_jth_red_expectation_enumerated(std::size_t reds,
                                            std::size_t greens,
                                            std::size_t j) {
  QPS_REQUIRE(j >= 1 && j <= reds, "need 1 <= j <= r");
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, Rational> memo;
  return jth_red_dp(reds, greens, j, memo);
}

Rational urn_both_colors_expectation_enumerated(std::size_t reds,
                                                std::size_t greens) {
  QPS_REQUIRE(reds >= 1 && greens >= 1, "need both colors present");
  // First draw is red with probability r/(r+g); afterwards we wait for the
  // first ball of the opposite color, which is the Fact 2.7 situation with
  // the roles of the colors fixed by the first draw.
  const auto r = static_cast<std::int64_t>(reds);
  const auto g = static_cast<std::int64_t>(greens);
  std::map<std::tuple<std::size_t, std::size_t, std::size_t>, Rational> memo;
  // After drawing one red: wait for first green among (r-1) reds, g greens.
  const Rational wait_green =
      jth_red_dp(greens, reds - 1, 1, memo);  // colors swapped: green as "red"
  memo.clear();
  const Rational wait_red = jth_red_dp(reds, greens - 1, 1, memo);
  const Rational p_red_first(r, r + g);
  const Rational p_green_first(g, r + g);
  return Rational(1) + p_red_first * wait_green + p_green_first * wait_red;
}

double urn_jth_red_simulated(std::size_t reds, std::size_t greens,
                             std::size_t j, std::size_t trials, Rng& rng) {
  QPS_REQUIRE(j >= 1 && j <= reds, "need 1 <= j <= r");
  QPS_REQUIRE(trials > 0, "need at least one trial");
  const std::size_t n = reds + greens;
  std::vector<std::uint8_t> balls(n, 0);
  double total = 0.0;
  for (std::size_t t = 0; t < trials; ++t) {
    for (std::size_t i = 0; i < n; ++i) balls[i] = i < reds ? 1 : 0;
    rng.shuffle(balls);
    std::size_t seen = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (balls[i] == 1 && ++seen == j) {
        total += static_cast<double>(i + 1);
        break;
      }
    }
  }
  return total / static_cast<double>(trials);
}

}  // namespace qps
