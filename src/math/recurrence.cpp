#include "math/recurrence.h"

#include <cmath>

#include "util/require.h"

namespace qps {

std::vector<double> solve_linear_recurrence(
    double f0, std::size_t h, const std::function<double(std::size_t)>& a,
    const std::function<double(std::size_t)>& b) {
  std::vector<double> f(h + 1);
  f[0] = f0;
  for (std::size_t i = 1; i <= h; ++i) f[i] = b(i) + a(i) * f[i - 1];
  return f;
}

double linear_recurrence_closed_form(double f0, double a, double b,
                                     std::size_t h) {
  const auto hd = static_cast<double>(h);
  if (a == 1.0) return f0 + b * hd;
  const double ah = std::pow(a, hd);
  return f0 * ah + b * (ah - 1.0) / (a - 1.0);
}

double damped_product(double a, double b, double c, std::size_t h) {
  double result = 1.0;
  double bi = 1.0;
  for (std::size_t i = 1; i <= h; ++i) {
    bi *= b;
    result *= a + c * bi;
  }
  return result;
}

double damped_product_bound(double a, double b, double c, std::size_t h) {
  QPS_REQUIRE(b > 0.0 && b < 1.0, "Lemma 2.5 needs 0 < b < 1");
  QPS_REQUIRE(a > 0.0, "Lemma 2.5 needs a > 0");
  const double big_b = 1.0 / (1.0 - b);
  return std::exp(big_b * c / a) * std::pow(a, static_cast<double>(h));
}

}  // namespace qps
