// Lemma 2.4: absorption time of a directed random walk on an N x N grid.
//
// A walk starts at (0,0); each step moves right with probability p and up
// with probability q = 1-p, and stops on reaching x = N or y = N.  The
// expected stopping time is
//     E(T) = 2N - theta(sqrt(N))   for p = q = 1/2,
//     E(T) = N/q + o(1)            for p < q.
// This models a probe sequence that ends once either N greens (right steps)
// or N reds (up steps) have been collected -- exactly the situation of the
// Majority lower bound (Lemma 3.1 / Proposition 3.2).
#pragma once

#include <cstddef>

#include "util/rng.h"

namespace qps {

/// Exact E(T) by dynamic programming over the grid (O(N^2) time/memory).
double grid_walk_expected_time(std::size_t n, double p);

/// The paper's asymptotic expression for E(T): 2N - c*sqrt(N) at p = 1/2
/// (with the random-walk constant c = sqrt(2/pi) * sqrt(2) from the
/// one-dimensional |S_t| expectation), N/q for p < q, N/p for p > q.
double grid_walk_asymptotic(std::size_t n, double p);

/// Monte-Carlo estimate of E(T).
double grid_walk_simulated(std::size_t n, double p, std::size_t trials,
                           Rng& rng);

}  // namespace qps
