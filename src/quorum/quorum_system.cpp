#include "quorum/quorum_system.h"

#include "util/require.h"

namespace qps {

bool QuorumSystem::is_quorum(const ElementSet& candidate) const {
  QPS_REQUIRE(candidate.universe_size() == universe_size(),
              "candidate is over a different universe");
  if (!contains_quorum(candidate)) return false;
  // Minimality: removing any single element must destroy the property
  // (f_S is monotone, so single-element removals suffice).
  for (Element e : candidate.to_vector()) {
    ElementSet smaller = candidate;
    smaller.erase(e);
    if (contains_quorum(smaller)) return false;
  }
  return true;
}

bool QuorumSystem::is_transversal(const ElementSet& blockers) const {
  QPS_REQUIRE(blockers.universe_size() == universe_size(),
              "blocker set is over a different universe");
  return !contains_quorum(blockers.complement());
}

std::vector<ElementSet> QuorumSystem::enumerate_quorums() const {
  const std::size_t n = universe_size();
  QPS_REQUIRE(n <= kEnumerationLimit,
              "brute-force quorum enumeration limited to small universes");
  std::vector<ElementSet> quorums;
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const ElementSet s = ElementSet::from_mask(n, mask);
    if (is_quorum(s)) quorums.push_back(s);
  }
  return quorums;
}

}  // namespace qps
