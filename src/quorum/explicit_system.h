// ExplicitSystem: a quorum system given as a literal list of quorums.
//
// Used for hand-built examples (Maj3 = {{1,2},{2,3},{1,3}}), for testing the
// structured constructions against their definitions, and for the
// domination checks of Section 2.1 which need concrete set families.
#pragma once

#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace qps {

class ExplicitSystem final : public QuorumSystem {
 public:
  /// Builds the system; verifies the family is a valid quorum system
  /// (nonempty, pairwise intersecting).  If `require_coterie`, also checks
  /// minimality (no quorum contains another).
  ExplicitSystem(std::size_t universe_size, std::vector<ElementSet> quorums,
                 std::string name = "Explicit", bool require_coterie = true);

  std::size_t universe_size() const override { return n_; }
  std::string name() const override { return name_; }
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return min_size_; }
  std::size_t max_quorum_size() const override { return max_size_; }
  std::vector<ElementSet> enumerate_quorums() const override { return quorums_; }

  const std::vector<ElementSet>& quorums() const { return quorums_; }

 private:
  std::size_t n_;
  std::vector<ElementSet> quorums_;
  std::string name_;
  std::size_t min_size_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace qps
