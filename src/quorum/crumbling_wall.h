// Crumbling Walls (Peleg & Wool 1997): elements are arranged in k rows of
// widths (n1, ..., nk); a quorum is one full row j together with one
// representative from every row below j.  With n1 = 1 and all other widths
// > 1 the system is an ND coterie.  Triang (Erdos-Lovasz) is the
// (1, 2, ..., d)-CW special case and Wheel is (1, n-1)-CW.
#pragma once

#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace qps {

class CrumblingWall final : public QuorumSystem {
 public:
  /// Builds a (widths[0], ..., widths[k-1])-CW.  Elements are numbered
  /// row-major: row 0 (the top row) first, then row 1, and so on.
  /// Requires every width >= 1.  ND requires widths[0] == 1 and
  /// widths[i] >= 2 for i >= 1; pass `require_nd = false` to build
  /// non-ND walls (used in tests of the domination machinery).
  explicit CrumblingWall(std::vector<std::size_t> widths, bool require_nd = true);

  /// The Triang system: (1, 2, ..., rows)-CW.
  static CrumblingWall triang(std::size_t rows);
  /// The Wheel system as a wall: (1, n-1)-CW.
  static CrumblingWall wheel(std::size_t universe_size);

  std::size_t universe_size() const override { return n_; }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override;
  std::size_t max_quorum_size() const override;
  std::vector<ElementSet> enumerate_quorums() const override;

  std::size_t row_count() const { return widths_.size(); }
  std::size_t row_width(std::size_t row) const { return widths_[row]; }
  /// First element id of `row`.
  Element row_begin(std::size_t row) const { return offsets_[row]; }
  /// One-past-last element id of `row`.
  Element row_end(std::size_t row) const { return offsets_[row + 1]; }
  /// Row containing element `e`.
  std::size_t row_of(Element e) const;

 private:
  std::vector<std::size_t> widths_;
  std::vector<Element> offsets_;  // prefix sums; offsets_[k] == n
  std::size_t n_ = 0;

  void append_quorums_below(std::size_t next_row, ElementSet& partial,
                            std::vector<ElementSet>& out) const;
};

}  // namespace qps
