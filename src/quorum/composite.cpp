#include "quorum/composite.h"

#include <algorithm>

#include "quorum/majority.h"
#include "util/require.h"

namespace qps {

CompositeSystem::CompositeSystem(QuorumSystemPtr outer,
                                 std::vector<QuorumSystemPtr> inner)
    : outer_(std::move(outer)), inner_(std::move(inner)) {
  QPS_REQUIRE(outer_ != nullptr, "outer system must not be null");
  QPS_REQUIRE(inner_.size() == outer_->universe_size(),
              "one inner system per outer element");
  offsets_.resize(inner_.size() + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < inner_.size(); ++i) {
    QPS_REQUIRE(inner_[i] != nullptr, "inner systems must not be null");
    offsets_[i + 1] =
        offsets_[i] + static_cast<Element>(inner_[i]->universe_size());
  }
  n_ = offsets_.back();

  // Quorum-size extremes: every outer quorum Q induces composite quorums
  // of size sum over slots in Q of (inner min..max).  Requires outer
  // enumeration, so composites of huge outers fall back to a safe bound.
  min_size_ = n_;
  max_size_ = 0;
  for (const auto& outer_quorum : outer_->enumerate_quorums()) {
    std::size_t lo = 0, hi = 0;
    for (Element slot : outer_quorum.to_vector()) {
      lo += inner_[slot]->min_quorum_size();
      hi += inner_[slot]->max_quorum_size();
    }
    min_size_ = std::min(min_size_, lo);
    max_size_ = std::max(max_size_, hi);
  }
}

CompositeSystem CompositeSystem::uniform(QuorumSystemPtr outer,
                                         QuorumSystemPtr inner) {
  QPS_REQUIRE(outer != nullptr && inner != nullptr, "systems must not be null");
  std::vector<QuorumSystemPtr> inners(outer->universe_size(), inner);
  return CompositeSystem(std::move(outer), std::move(inners));
}

CompositeSystem CompositeSystem::recursive_majority3(std::size_t height) {
  QPS_REQUIRE(height >= 1, "recursive majority needs height >= 1");
  // Height 0 is a single element (Maj over a singleton); each level wraps
  // the previous one in a 2-of-3 majority of three copies.
  QuorumSystemPtr level = std::make_shared<MajoritySystem>(1);
  for (std::size_t h = 1; h < height; ++h)
    level = std::make_shared<CompositeSystem>(
        uniform(std::make_shared<MajoritySystem>(3), level));
  return uniform(std::make_shared<MajoritySystem>(3), level);
}

std::string CompositeSystem::name() const {
  return outer_->name() + " o [" + inner_[0]->name() +
         (inner_.size() > 1 ? ", ...]" : "]");
}

bool CompositeSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == n_, "wrong universe");
  ElementSet live_slots(outer_->universe_size());
  for (std::size_t slot = 0; slot < inner_.size(); ++slot) {
    ElementSet restricted(inner_[slot]->universe_size());
    for (Element e = slot_begin(slot); e < slot_end(slot); ++e)
      if (greens.contains(e)) restricted.insert(e - slot_begin(slot));
    if (inner_[slot]->contains_quorum(restricted))
      live_slots.insert(static_cast<Element>(slot));
  }
  return outer_->contains_quorum(live_slots);
}

}  // namespace qps
