// The Majority system Maj (Thomas 1979): every set of (n+1)/2 elements is a
// quorum; n must be odd.  The canonical voting-based ND coterie.
#pragma once

#include <string>

#include "quorum/quorum_system.h"

namespace qps {

class MajoritySystem final : public QuorumSystem {
 public:
  /// `universe_size` must be odd and >= 1.
  explicit MajoritySystem(std::size_t universe_size);

  std::size_t universe_size() const override { return n_; }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return threshold_; }
  std::size_t max_quorum_size() const override { return threshold_; }
  /// All (n choose (n+1)/2) subsets of the threshold size.
  std::vector<ElementSet> enumerate_quorums() const override;
  /// Maj is a counting system: greens contain a quorum iff there are at
  /// least (n+1)/2 of them.
  std::size_t quorum_count_certificate() const override { return threshold_; }

  /// The majority threshold (n+1)/2.
  std::size_t threshold() const { return threshold_; }

 private:
  std::size_t n_;
  std::size_t threshold_;
};

}  // namespace qps
