// QuorumSystem: the library's central abstraction.
//
// A quorum system over U = {0..n-1} is a family of pairwise intersecting
// subsets (quorums).  Following Definition 1 of the paper, a system is
// exposed primarily through its monotone characteristic function
//     f_S(greens) = 1  iff  `greens` contains some quorum,
// which is all the probe algorithms and exact engines ever need; the
// quorums themselves are the minterms of f_S.  Structured constructions
// (Majority, Wheel, CW, Tree, HQS, Grid) override `contains_quorum` with
// O(n)-time evaluations, so systems with exponentially many quorums (for
// example Majority) stay cheap.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/element_set.h"

namespace qps {

class QuorumSystem {
 public:
  virtual ~QuorumSystem() = default;

  /// Number of elements n in the universe U.
  virtual std::size_t universe_size() const = 0;

  /// Human-readable name ("Maj(7)", "(1,2,3)-CW", ...).
  virtual std::string name() const = 0;

  /// The characteristic function f_S: true iff `greens` contains a quorum.
  /// This must be monotone in `greens`.
  virtual bool contains_quorum(const ElementSet& greens) const = 0;

  /// Size of a smallest quorum.
  virtual std::size_t min_quorum_size() const = 0;

  /// Size of a largest quorum.
  virtual std::size_t max_quorum_size() const = 0;

  /// True iff `candidate` is exactly a quorum (a minterm of f_S): it
  /// contains a quorum and no proper subset does.
  bool is_quorum(const ElementSet& candidate) const;

  /// True iff `blockers` intersects every quorum.  Equivalent to: the
  /// complement of `blockers` contains no quorum.
  bool is_transversal(const ElementSet& blockers) const;

  /// Counting certificate: a nonzero c means f_S depends only on |greens|,
  /// with contains_quorum(S) <=> |S| >= c (for example Majority's
  /// threshold).  Lets generic probers (Random_Order) replace the
  /// characteristic-function calls with a counter -- and with it ride the
  /// bit-sliced batch kernels.  Default: 0 (no such certificate).
  virtual std::size_t quorum_count_certificate() const { return 0; }

  /// All quorums (minterms), enumerated by brute force over subsets.
  /// Only valid for universes of at most `kEnumerationLimit` elements;
  /// structured systems may override with cheaper enumerations.
  virtual std::vector<ElementSet> enumerate_quorums() const;

  static constexpr std::size_t kEnumerationLimit = 22;
};

using QuorumSystemPtr = std::shared_ptr<const QuorumSystem>;

}  // namespace qps
