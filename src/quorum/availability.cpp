#include "quorum/availability.h"

#include <bit>
#include <cmath>

#include "util/require.h"
#include "util/stats.h"

namespace qps {

double failure_probability_exact(const QuorumSystem& system, double p) {
  const std::size_t n = system.universe_size();
  QPS_REQUIRE(n <= 24, "exact availability limited to small universes");
  QPS_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  const double q = 1.0 - p;
  // Precompute p^i q^j to avoid pow() in the loop.
  std::vector<double> pw(n + 1, 1.0), qw(n + 1, 1.0);
  for (std::size_t i = 1; i <= n; ++i) {
    pw[i] = pw[i - 1] * p;
    qw[i] = qw[i - 1] * q;
  }
  const std::uint64_t limit = 1ULL << n;
  double failure = 0.0;
  for (std::uint64_t greens = 0; greens < limit; ++greens) {
    if (!system.contains_quorum(ElementSet::from_mask(n, greens))) {
      const auto g = static_cast<std::size_t>(std::popcount(greens));
      failure += qw[g] * pw[n - g];
    }
  }
  return failure;
}

double majority_failure_probability(std::size_t n, double p) {
  QPS_REQUIRE(n % 2 == 1, "Maj needs odd n");
  // No green majority <=> at least (n+1)/2 elements are red.
  return binomial_tail_geq(n, (n + 1) / 2, p);
}

double cw_failure_probability(const std::vector<std::size_t>& widths,
                              double p) {
  QPS_REQUIRE(!widths.empty(), "a wall needs rows");
  QPS_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  const double q = 1.0 - p;
  // Scan rows bottom-up.  W = P[the wall scanned so far contains a green
  // quorum]; H = P[it contains a green quorum OR every scanned row has at
  // least one green element].  Row states are independent, with
  //   g_i = q^{n_i}            (row all green)
  //   q_i = 1 - p^{n_i}        (row has a green)
  // giving W' = g_i * H + (1 - g_i) * W  and  H' = q_i * H + p^{n_i} * W.
  double w = 0.0, h = 1.0;
  for (std::size_t row = widths.size(); row-- > 0;) {
    const auto width = static_cast<double>(widths[row]);
    const double all_green = std::pow(q, width);
    const double some_green = 1.0 - std::pow(p, width);
    const double w_next = all_green * h + (1.0 - all_green) * w;
    const double h_next = some_green * h + std::pow(p, width) * w;
    w = w_next;
    h = h_next;
  }
  return 1.0 - w;
}

double tree_failure_probability(std::size_t height, double p) {
  QPS_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  const double q = 1.0 - p;
  double f = p;  // height 0: a single node is unavailable iff it is red
  for (std::size_t h = 1; h <= height; ++h) {
    // Root green: need at least one live subtree.  Root red: need both.
    f = q * f * f + p * (2.0 * f - f * f);
  }
  return f;
}

double hqs_failure_probability(std::size_t height, double p) {
  QPS_REQUIRE(p >= 0.0 && p <= 1.0, "probability outside [0,1]");
  double f = p;
  for (std::size_t h = 1; h <= height; ++h) f = 3.0 * f * f - 2.0 * f * f * f;
  return f;
}

double tree_failure_bound(std::size_t height, double p) {
  QPS_REQUIRE(p <= 0.5, "the Tree bound is stated for p <= 1/2");
  return std::pow(p + 0.5, static_cast<double>(height));
}

double hqs_failure_bound(std::size_t height, double p) {
  QPS_REQUIRE(p <= 0.5, "the HQS bound is stated for p <= 1/2");
  return p * std::pow(3.0 * p - 2.0 * p * p, static_cast<double>(height));
}

}  // namespace qps
