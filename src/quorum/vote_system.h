// Weighted voting (Gifford 1979; Garcia-Molina & Barbara 1985): element i
// carries w_i votes and a set is winning when it collects at least T
// votes.  The quorums are the minimal winning sets.  With T strictly above
// half the total weight the system is a coterie; it is ND exactly when no
// "wasted vote" exists, which the tests probe with the is_nondominated
// checker.  Maj(n) is the all-ones special case; Wheel(n) is votes
// (n-2, 1, ..., 1) with threshold n-1.
#pragma once

#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace qps {

class VoteSystem final : public QuorumSystem {
 public:
  /// `votes[i]` is element i's (positive) weight; a set wins with total
  /// weight >= `threshold`.  Requires threshold > (sum of votes) / 2 so
  /// that winning sets pairwise intersect.
  VoteSystem(std::vector<std::size_t> votes, std::size_t threshold);

  /// The vote assignment realizing Wheel(n): hub n-2 votes, rim 1 each,
  /// threshold n-1.
  static VoteSystem wheel(std::size_t universe_size);

  std::size_t universe_size() const override { return votes_.size(); }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  /// Computed eagerly at construction by greedy/enumerative analysis.
  std::size_t min_quorum_size() const override { return min_size_; }
  std::size_t max_quorum_size() const override { return max_size_; }

  std::size_t threshold() const { return threshold_; }
  std::size_t total_votes() const { return total_; }
  std::size_t votes_of(Element e) const { return votes_[e]; }

 private:
  std::vector<std::size_t> votes_;
  std::size_t threshold_;
  std::size_t total_ = 0;
  std::size_t min_size_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace qps
