#include "quorum/vote_system.h"

#include <algorithm>
#include <numeric>

#include "util/require.h"

namespace qps {

VoteSystem::VoteSystem(std::vector<std::size_t> votes, std::size_t threshold)
    : votes_(std::move(votes)), threshold_(threshold) {
  QPS_REQUIRE(!votes_.empty(), "a vote system needs elements");
  for (std::size_t w : votes_) QPS_REQUIRE(w >= 1, "votes must be positive");
  total_ = std::accumulate(votes_.begin(), votes_.end(), std::size_t{0});
  QPS_REQUIRE(2 * threshold_ > total_,
              "threshold must exceed half the votes (intersection property)");
  QPS_REQUIRE(threshold_ <= total_, "threshold unreachable");

  // Minimum quorum cardinality: grab the heaviest voters first; the greedy
  // prefix is a minimal winning set of minimum size.
  std::vector<std::size_t> sorted = votes_;
  std::sort(sorted.begin(), sorted.end(), std::greater<>());
  std::size_t sum = 0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    sum += sorted[i];
    if (sum >= threshold_) {
      min_size_ = i + 1;
      break;
    }
  }

  // Maximum cardinality of a MINIMAL winning set.  S is minimal iff
  // sum(S) - min(S) < T.  Fix the minimum element sorted[i] = w; the rest
  // of S comes from positions > i with partial sum s in [T - w, T), and we
  // want the largest count.  Exact max-count subset-sum DP over the
  // suffix, capped at sums < T (pseudo-polynomial in the threshold).
  QPS_REQUIRE(threshold_ <= 1u << 20, "vote threshold out of supported range");
  std::sort(sorted.begin(), sorted.end());
  constexpr int kUnreachable = -1;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const std::size_t w = sorted[i];
    // dp[s] = max count of suffix elements summing exactly to s (< T).
    std::vector<int> dp(threshold_, kUnreachable);
    dp[0] = 0;
    for (std::size_t j = i + 1; j < sorted.size(); ++j) {
      const std::size_t weight = sorted[j];
      if (weight >= threshold_) continue;  // alone it already exceeds the cap
      for (std::size_t s = threshold_ - 1;; --s) {
        if (s >= weight && dp[s - weight] != kUnreachable)
          dp[s] = std::max(dp[s], dp[s - weight] + 1);
        if (s == 0) break;
      }
    }
    const std::size_t lo = threshold_ > w ? threshold_ - w : 0;
    for (std::size_t s = lo; s < threshold_; ++s)
      if (dp[s] != kUnreachable)
        max_size_ = std::max(max_size_, static_cast<std::size_t>(dp[s]) + 1);
  }
  QPS_CHECK(max_size_ >= min_size_, "quorum size analysis inconsistent");
}

VoteSystem VoteSystem::wheel(std::size_t universe_size) {
  QPS_REQUIRE(universe_size >= 3, "Wheel needs n >= 3");
  std::vector<std::size_t> votes(universe_size, 1);
  votes[0] = universe_size - 2;
  return VoteSystem(std::move(votes), universe_size - 1);
}

std::string VoteSystem::name() const {
  return "Votes(n=" + std::to_string(votes_.size()) +
         ",T=" + std::to_string(threshold_) + ")";
}

bool VoteSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == votes_.size(), "wrong universe");
  std::size_t sum = 0;
  for (Element e : greens.to_vector()) {
    sum += votes_[e];
    if (sum >= threshold_) return true;
  }
  return false;
}

}  // namespace qps
