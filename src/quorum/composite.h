// Quorum-system composition: an outer system whose "elements" are whole
// inner systems over disjoint sub-universes.  A green set contains a
// composite quorum iff the slots whose inner systems are live form an
// outer quorum.  HQS is exactly Maj3 composed with itself h times; the
// composition of ND coteries is again ND (the characteristic function is a
// composition of self-dual monotone functions), which the tests verify.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace qps {

class CompositeSystem final : public QuorumSystem {
 public:
  /// `outer` over k elements; `inner[i]` replaces outer element i.  Inner
  /// sub-universes are laid out consecutively in slot order.
  CompositeSystem(QuorumSystemPtr outer, std::vector<QuorumSystemPtr> inner);

  /// Uniform composition: every slot holds the same `inner` system.
  static CompositeSystem uniform(QuorumSystemPtr outer, QuorumSystemPtr inner);

  /// Maj3 composed with itself `height` times (== HQS of that height).
  static CompositeSystem recursive_majority3(std::size_t height);

  std::size_t universe_size() const override { return n_; }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return min_size_; }
  std::size_t max_quorum_size() const override { return max_size_; }

  std::size_t slot_count() const { return inner_.size(); }
  /// First element id of slot i.
  Element slot_begin(std::size_t slot) const { return offsets_[slot]; }
  Element slot_end(std::size_t slot) const { return offsets_[slot + 1]; }
  const QuorumSystem& inner(std::size_t slot) const { return *inner_[slot]; }
  const QuorumSystem& outer() const { return *outer_; }

 private:
  QuorumSystemPtr outer_;
  std::vector<QuorumSystemPtr> inner_;
  std::vector<Element> offsets_;
  std::size_t n_ = 0;
  std::size_t min_size_ = 0;
  std::size_t max_size_ = 0;
};

}  // namespace qps
