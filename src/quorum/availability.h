// Availability F_p(S) (Peleg & Wool 1995): the probability that no green
// (live) quorum exists when every element fails independently with
// probability p.
//
// Provided as (a) an exact enumeration over all colorings for small
// universes, and (b) closed forms for each structured family:
//   Maj:   binomial tail  P[#red >= (n+1)/2]
//   CW:    a two-accumulator row recursion (derived in DESIGN.md)
//   Tree:  F(h) = q F(h-1)^2 + p (2 F(h-1) - F(h-1)^2),  F(0) = p
//   HQS:   F(h) = 3 F(h-1)^2 - 2 F(h-1)^3,               F(0) = p
// The tests verify (a) == (b) and the Peleg-Wool facts 2.3(1,2):
// F_p <= p for p <= 1/2, and F_p + F_{1-p} = 1 for every ND coterie.
#pragma once

#include <cstddef>
#include <vector>

#include "quorum/quorum_system.h"

namespace qps {

/// Exact F_p(S) by summing over all 2^n colorings; requires n <= 24.
double failure_probability_exact(const QuorumSystem& system, double p);

/// Closed form for Maj on an odd universe of size n.
double majority_failure_probability(std::size_t n, double p);

/// Closed form for a (widths[0], ..., widths[k-1])-CW wall.
double cw_failure_probability(const std::vector<std::size_t>& widths, double p);

/// Closed form for the Tree system of height h.
double tree_failure_probability(std::size_t height, double p);

/// Closed form for the HQS of height h.
double hqs_failure_probability(std::size_t height, double p);

/// The [15]/[19] upper bound used by Prop. 3.6: F_p(Tree_h) <= (p + 1/2)^h
/// for p <= 1/2 (returns the bound, not the availability).
double tree_failure_bound(std::size_t height, double p);

/// The [19] upper bound used by Thm 3.8: F_p(HQS_h) <= p (3p - 2p^2)^h.
double hqs_failure_bound(std::size_t height, double p);

}  // namespace qps
