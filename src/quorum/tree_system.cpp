#include "quorum/tree_system.h"

#include "util/require.h"

namespace qps {

TreeSystem::TreeSystem(std::size_t height)
    : height_(height), n_((std::size_t{2} << height) - 1) {
  QPS_REQUIRE(height <= 30, "tree height out of supported range");
}

TreeSystem TreeSystem::with_universe(std::size_t universe_size) {
  std::size_t h = 0;
  while (((std::size_t{2} << h) - 1) < universe_size) ++h;
  QPS_REQUIRE(((std::size_t{2} << h) - 1) == universe_size,
              "Tree universe size must be 2^(h+1) - 1");
  return TreeSystem(h);
}

std::string TreeSystem::name() const {
  return "Tree(h=" + std::to_string(height_) + ",n=" + std::to_string(n_) + ")";
}

bool TreeSystem::subtree_live(Element v, const ElementSet& greens) const {
  if (is_leaf(v)) return greens.contains(v);
  const bool left = subtree_live(left_child(v), greens);
  const bool right = subtree_live(right_child(v), greens);
  if (left && right) return true;  // quorums of both subtrees
  return greens.contains(v) && (left || right);  // root + one subtree quorum
}

bool TreeSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == n_, "wrong universe");
  return subtree_live(kRoot, greens);
}

}  // namespace qps
