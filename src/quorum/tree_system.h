// The Tree system (Agrawal & El-Abbadi 1991): all n = 2^(h+1) - 1 nodes of a
// complete binary tree are elements.  A quorum of a subtree is either
//   (a) its root together with a quorum of one of its child subtrees, or
//   (b) the union of a quorum of each child subtree,
// with a single leaf being the (only) quorum of a height-0 subtree.
// Minimal quorums range from a root-to-leaf path (h+1 elements) to the full
// leaf level ((n+1)/2 elements).
//
// Elements are numbered in heap order: root 0, children of v at 2v+1, 2v+2.
#pragma once

#include <string>

#include "quorum/quorum_system.h"

namespace qps {

class TreeSystem final : public QuorumSystem {
 public:
  /// Complete binary tree of height `height` (height 0 = single node).
  explicit TreeSystem(std::size_t height);

  /// The tree with a given universe size n = 2^(h+1) - 1.
  static TreeSystem with_universe(std::size_t universe_size);

  std::size_t universe_size() const override { return n_; }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return height_ + 1; }
  std::size_t max_quorum_size() const override { return (n_ + 1) / 2; }

  std::size_t height() const { return height_; }
  static Element left_child(Element v) { return 2 * v + 1; }
  static Element right_child(Element v) { return 2 * v + 2; }
  bool is_leaf(Element v) const { return left_child(v) >= n_; }
  static constexpr Element kRoot = 0;

 private:
  std::size_t height_;
  std::size_t n_;

  bool subtree_live(Element v, const ElementSet& greens) const;
};

}  // namespace qps
