// The Hierarchical Quorum System HQS (Kumar 1991): the n = 3^h elements are
// the leaves of a complete ternary tree whose internal nodes are 2-of-3
// majority gates.  A set of green leaves contains a quorum iff the root
// gate evaluates to 1; the quorums are the minterms and all have the
// uniform size c = 2^h = n^(log_3 2).
//
// Leaves are numbered 0 .. 3^h - 1 left to right.  Internal nodes are
// addressed by (level, index): level h is the root, level 0 the leaves;
// node (l, i) covers leaves [i * 3^l, (i+1) * 3^l).
#pragma once

#include <string>

#include "quorum/quorum_system.h"

namespace qps {

class HQSystem final : public QuorumSystem {
 public:
  /// Complete ternary tree of height `height`; universe size 3^height.
  explicit HQSystem(std::size_t height);

  /// The HQS with universe size n = 3^h.
  static HQSystem with_universe(std::size_t universe_size);

  std::size_t universe_size() const override { return n_; }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return quorum_size_; }
  std::size_t max_quorum_size() const override { return quorum_size_; }

  std::size_t height() const { return height_; }
  /// The uniform quorum size c = 2^h.
  std::size_t quorum_size() const { return quorum_size_; }
  /// Number of leaves under a node at `level` (3^level).
  std::size_t subtree_span(std::size_t level) const;

 private:
  std::size_t height_;
  std::size_t n_;
  std::size_t quorum_size_;

  bool gate_value(std::size_t level, std::size_t index,
                  const ElementSet& greens) const;
};

}  // namespace qps
