#include "quorum/hqs.h"

#include "util/require.h"

namespace qps {

namespace {
std::size_t pow3(std::size_t h) {
  std::size_t v = 1;
  for (std::size_t i = 0; i < h; ++i) v *= 3;
  return v;
}
std::size_t pow2(std::size_t h) { return std::size_t{1} << h; }
}  // namespace

HQSystem::HQSystem(std::size_t height)
    : height_(height), n_(pow3(height)), quorum_size_(pow2(height)) {
  QPS_REQUIRE(height <= 19, "HQS height out of supported range");
}

HQSystem HQSystem::with_universe(std::size_t universe_size) {
  std::size_t h = 0;
  while (pow3(h) < universe_size) ++h;
  QPS_REQUIRE(pow3(h) == universe_size, "HQS universe size must be 3^h");
  return HQSystem(h);
}

std::string HQSystem::name() const {
  return "HQS(h=" + std::to_string(height_) + ",n=" + std::to_string(n_) + ")";
}

std::size_t HQSystem::subtree_span(std::size_t level) const {
  QPS_REQUIRE(level <= height_, "level out of range");
  return pow3(level);
}

bool HQSystem::gate_value(std::size_t level, std::size_t index,
                          const ElementSet& greens) const {
  if (level == 0) return greens.contains(static_cast<Element>(index));
  int ones = 0;
  for (std::size_t child = 0; child < 3; ++child)
    if (gate_value(level - 1, index * 3 + child, greens)) ++ones;
  return ones >= 2;
}

bool HQSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == n_, "wrong universe");
  return gate_value(height_, 0, greens);
}

}  // namespace qps
