#include "quorum/grid_system.h"

#include "util/require.h"

namespace qps {

GridSystem::GridSystem(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols) {
  QPS_REQUIRE(rows >= 1 && cols >= 1, "grid needs positive dimensions");
  QPS_REQUIRE(rows * cols >= 1, "grid must be nonempty");
}

std::string GridSystem::name() const {
  return "Grid(" + std::to_string(rows_) + "x" + std::to_string(cols_) + ")";
}

Element GridSystem::at(std::size_t r, std::size_t c) const {
  QPS_REQUIRE(r < rows_ && c < cols_, "grid position out of range");
  return static_cast<Element>(r * cols_ + c);
}

bool GridSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == universe_size(), "wrong universe");
  bool have_row = false;
  for (std::size_t r = 0; r < rows_ && !have_row; ++r) {
    bool full = true;
    for (std::size_t c = 0; c < cols_ && full; ++c)
      full = greens.contains(at(r, c));
    have_row = full;
  }
  if (!have_row) return false;
  for (std::size_t c = 0; c < cols_; ++c) {
    bool full = true;
    for (std::size_t r = 0; r < rows_ && full; ++r)
      full = greens.contains(at(r, c));
    if (full) return true;
  }
  return false;
}

std::vector<ElementSet> GridSystem::enumerate_quorums() const {
  std::vector<ElementSet> out;
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      ElementSet q(universe_size());
      for (std::size_t cc = 0; cc < cols_; ++cc) q.insert(at(r, cc));
      for (std::size_t rr = 0; rr < rows_; ++rr) q.insert(at(rr, c));
      out.push_back(q);
    }
  }
  return out;
}

}  // namespace qps
