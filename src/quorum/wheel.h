// The Wheel system (Holzman, Marcus & Peleg 1997): quorums are the "spokes"
// {hub, i} for every rim element i, plus the full rim {2..n}.  Element 0 is
// the hub.  Equivalently a (1, n-1)-CW crumbling wall; kept as a standalone
// class because the paper states separate bounds for it (Cor. 3.4, 4.5(2)).
#pragma once

#include <string>

#include "quorum/quorum_system.h"

namespace qps {

class WheelSystem final : public QuorumSystem {
 public:
  /// `universe_size` must be at least 3 (hub plus a rim of >= 2).
  explicit WheelSystem(std::size_t universe_size);

  std::size_t universe_size() const override { return n_; }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return 2; }
  std::size_t max_quorum_size() const override { return n_ - 1; }
  std::vector<ElementSet> enumerate_quorums() const override;

  static constexpr Element kHub = 0;

 private:
  std::size_t n_;
};

}  // namespace qps
