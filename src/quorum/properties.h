// Structural property checks from Section 2.1: intersection, minimality
// (coterie), domination, nondomination, and self-duality of the
// characteristic function.
//
// A monotone boolean function f is self-dual when f(x) = NOT f(NOT x) for
// all assignments; a coterie is nondominated (ND) exactly when its
// characteristic function is self-dual (Ibaraki & Kameda 1993), i.e. every
// coloring has exactly one of {green quorum, red quorum}.  These checkers
// enumerate assignments, so they are restricted to small universes; they
// exist to validate the structured constructions and as reference
// implementations of the definitions.
#pragma once

#include "quorum/explicit_system.h"
#include "quorum/quorum_system.h"

namespace qps {

/// Pairwise intersection over the enumerated quorums.
bool has_intersection_property(const QuorumSystem& system);

/// No quorum contains another (the coterie/minimality property).
bool has_minimality_property(const QuorumSystem& system);

/// Both of the above.
bool is_coterie(const QuorumSystem& system);

/// f_S(x) == !f_S(!x) for every assignment; requires n <= 24.
bool is_self_dual(const QuorumSystem& system);

/// ND coterie test: coterie + self-dual characteristic function.
bool is_nondominated(const QuorumSystem& system);

/// Does coterie `r` dominate coterie `s` (r != s, and every quorum of `s`
/// contains some quorum of `r`)?  Both must share a universe.
bool dominates(const ExplicitSystem& r, const ExplicitSystem& s);

/// Lemma 2.1 check utility: for an ND coterie, every transversal contains a
/// quorum.  Verifies the implication for every subset; requires n <= 24.
bool every_transversal_contains_quorum(const QuorumSystem& system);

}  // namespace qps
