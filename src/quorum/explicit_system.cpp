#include "quorum/explicit_system.h"

#include <algorithm>

#include "util/require.h"

namespace qps {

ExplicitSystem::ExplicitSystem(std::size_t universe_size,
                               std::vector<ElementSet> quorums,
                               std::string name, bool require_coterie)
    : n_(universe_size), quorums_(std::move(quorums)), name_(std::move(name)) {
  QPS_REQUIRE(!quorums_.empty(), "a quorum system needs at least one quorum");
  for (const auto& q : quorums_) {
    QPS_REQUIRE(q.universe_size() == n_, "quorum over the wrong universe");
    QPS_REQUIRE(!q.empty(), "the empty set cannot be a quorum");
  }
  // Intersection property (the defining requirement).
  for (std::size_t i = 0; i < quorums_.size(); ++i)
    for (std::size_t j = i + 1; j < quorums_.size(); ++j)
      QPS_REQUIRE(quorums_[i].intersects(quorums_[j]),
                  "quorums must pairwise intersect");
  if (require_coterie) {
    for (std::size_t i = 0; i < quorums_.size(); ++i)
      for (std::size_t j = 0; j < quorums_.size(); ++j)
        if (i != j)
          QPS_REQUIRE(!quorums_[i].is_subset_of(quorums_[j]),
                      "coterie violates minimality");
  }
  min_size_ = quorums_[0].count();
  max_size_ = min_size_;
  for (const auto& q : quorums_) {
    min_size_ = std::min(min_size_, q.count());
    max_size_ = std::max(max_size_, q.count());
  }
}

bool ExplicitSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == n_, "wrong universe");
  return std::any_of(quorums_.begin(), quorums_.end(),
                     [&](const ElementSet& q) { return q.is_subset_of(greens); });
}

}  // namespace qps
