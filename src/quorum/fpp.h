// Finite Projective Plane quorum system (Maekawa 1985): the points of
// PG(2, q) are the universe (n = q^2 + q + 1) and the lines are the
// quorums -- every two lines meet in exactly one point, every line has
// q + 1 ~ sqrt(n) points.  The optimal-load construction of Maekawa's
// sqrt(n) mutual-exclusion algorithm.  The Fano plane (q = 2) is an ND
// coterie (PG(2,2) has no nontrivial blocking sets); orders q >= 3 admit
// nontrivial blocking sets and are dominated, a useful contrast to the
// paper's ND families.
//
// Built over GF(q) for prime q (no prime-power fields needed for the
// supported sizes: q = 2, 3, 5, 7, 11, ... give n = 7, 13, 31, 57, 133).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "quorum/quorum_system.h"

namespace qps {

class FppSystem final : public QuorumSystem {
 public:
  /// Projective plane of prime order `q`.
  explicit FppSystem(std::size_t order);

  std::size_t universe_size() const override { return points_.size(); }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return order_ + 1; }
  std::size_t max_quorum_size() const override { return order_ + 1; }
  std::vector<ElementSet> enumerate_quorums() const override { return lines_; }

  std::size_t order() const { return order_; }
  std::size_t line_count() const { return lines_.size(); }

 private:
  using Triple = std::array<std::size_t, 3>;

  std::size_t order_;
  std::vector<Triple> points_;     // normalized homogeneous coordinates
  std::vector<ElementSet> lines_;  // one ElementSet of points per line
};

}  // namespace qps
