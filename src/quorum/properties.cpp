#include "quorum/properties.h"

#include "util/require.h"

namespace qps {

bool has_intersection_property(const QuorumSystem& system) {
  const auto quorums = system.enumerate_quorums();
  for (std::size_t i = 0; i < quorums.size(); ++i)
    for (std::size_t j = i + 1; j < quorums.size(); ++j)
      if (!quorums[i].intersects(quorums[j])) return false;
  return true;
}

bool has_minimality_property(const QuorumSystem& system) {
  const auto quorums = system.enumerate_quorums();
  for (std::size_t i = 0; i < quorums.size(); ++i)
    for (std::size_t j = 0; j < quorums.size(); ++j)
      if (i != j && quorums[i].is_subset_of(quorums[j])) return false;
  return true;
}

bool is_coterie(const QuorumSystem& system) {
  return has_intersection_property(system) && has_minimality_property(system);
}

bool is_self_dual(const QuorumSystem& system) {
  const std::size_t n = system.universe_size();
  QPS_REQUIRE(n <= 24, "self-duality check limited to small universes");
  const std::uint64_t limit = 1ULL << n;
  const std::uint64_t all = limit - 1;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const bool f = system.contains_quorum(ElementSet::from_mask(n, mask));
    const bool f_dual =
        !system.contains_quorum(ElementSet::from_mask(n, all & ~mask));
    if (f != f_dual) return false;
  }
  return true;
}

bool is_nondominated(const QuorumSystem& system) {
  return is_coterie(system) && is_self_dual(system);
}

bool dominates(const ExplicitSystem& r, const ExplicitSystem& s) {
  QPS_REQUIRE(r.universe_size() == s.universe_size(),
              "domination needs a common universe");
  // R dominates S iff R != S and every quorum of S contains a quorum of R.
  const auto& rq = r.quorums();
  const auto& sq = s.quorums();
  auto same_family = [&]() {
    if (rq.size() != sq.size()) return false;
    for (const auto& q : rq) {
      bool found = false;
      for (const auto& q2 : sq)
        if (q == q2) {
          found = true;
          break;
        }
      if (!found) return false;
    }
    return true;
  };
  if (same_family()) return false;
  for (const auto& q : sq)
    if (!r.contains_quorum(q)) return false;
  return true;
}

bool every_transversal_contains_quorum(const QuorumSystem& system) {
  const std::size_t n = system.universe_size();
  QPS_REQUIRE(n <= 24, "transversal sweep limited to small universes");
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const ElementSet s = ElementSet::from_mask(n, mask);
    if (system.is_transversal(s) && !system.contains_quorum(s)) return false;
  }
  return true;
}

}  // namespace qps
