#include "quorum/crumbling_wall.h"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/require.h"

namespace qps {

CrumblingWall::CrumblingWall(std::vector<std::size_t> widths, bool require_nd)
    : widths_(std::move(widths)) {
  QPS_REQUIRE(!widths_.empty(), "a wall needs at least one row");
  for (std::size_t w : widths_) QPS_REQUIRE(w >= 1, "row widths must be >= 1");
  if (require_nd) {
    QPS_REQUIRE(widths_[0] == 1, "ND crumbling wall needs a top row of width 1");
    for (std::size_t i = 1; i < widths_.size(); ++i)
      QPS_REQUIRE(widths_[i] >= 2,
                  "ND crumbling wall needs widths >= 2 below the top row");
  }
  offsets_.resize(widths_.size() + 1);
  offsets_[0] = 0;
  for (std::size_t i = 0; i < widths_.size(); ++i)
    offsets_[i + 1] = offsets_[i] + static_cast<Element>(widths_[i]);
  n_ = offsets_.back();
}

CrumblingWall CrumblingWall::triang(std::size_t rows) {
  QPS_REQUIRE(rows >= 1, "Triang needs at least one row");
  std::vector<std::size_t> widths(rows);
  std::iota(widths.begin(), widths.end(), std::size_t{1});
  return CrumblingWall(std::move(widths), rows >= 2);
}

CrumblingWall CrumblingWall::wheel(std::size_t universe_size) {
  QPS_REQUIRE(universe_size >= 3, "Wheel needs n >= 3");
  return CrumblingWall({1, universe_size - 1});
}

std::string CrumblingWall::name() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < widths_.size(); ++i) {
    if (i != 0) os << ',';
    os << widths_[i];
  }
  os << ")-CW";
  return os.str();
}

std::size_t CrumblingWall::row_of(Element e) const {
  QPS_REQUIRE(e < n_, "element outside the universe");
  const auto it = std::upper_bound(offsets_.begin(), offsets_.end(), e);
  return static_cast<std::size_t>(it - offsets_.begin()) - 1;
}

bool CrumblingWall::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == n_, "wrong universe");
  const std::size_t k = widths_.size();
  // Scan bottom-up, tracking whether every row strictly below the current
  // one contains at least one green element.
  bool all_below_hit = true;
  bool quorum_found = false;
  for (std::size_t row = k; row-- > 0 && !quorum_found;) {
    bool row_full = true;
    bool row_hit = false;
    for (Element e = row_begin(row); e < row_end(row); ++e) {
      if (greens.contains(e))
        row_hit = true;
      else
        row_full = false;
    }
    if (row_full && all_below_hit) quorum_found = true;
    all_below_hit = all_below_hit && row_hit;
  }
  return quorum_found;
}

std::size_t CrumblingWall::min_quorum_size() const {
  const std::size_t k = widths_.size();
  std::size_t best = widths_[0] + (k - 1);
  for (std::size_t j = 1; j < k; ++j)
    best = std::min(best, widths_[j] + (k - 1 - j));
  return best;
}

std::size_t CrumblingWall::max_quorum_size() const {
  const std::size_t k = widths_.size();
  std::size_t best = 0;
  for (std::size_t j = 0; j < k; ++j)
    best = std::max(best, widths_[j] + (k - 1 - j));
  return best;
}

void CrumblingWall::append_quorums_below(std::size_t next_row,
                                         ElementSet& partial,
                                         std::vector<ElementSet>& out) const {
  if (next_row == widths_.size()) {
    out.push_back(partial);
    return;
  }
  for (Element e = row_begin(next_row); e < row_end(next_row); ++e) {
    partial.insert(e);
    append_quorums_below(next_row + 1, partial, out);
    partial.erase(e);
  }
}

std::vector<ElementSet> CrumblingWall::enumerate_quorums() const {
  // One quorum per (full row j, choice of representative below j).  The
  // count is sum_j prod_{i>j} n_i; guard against blow-up.
  double count = 0;
  for (std::size_t j = 0; j < widths_.size(); ++j) {
    double product = 1;
    for (std::size_t i = j + 1; i < widths_.size(); ++i)
      product *= static_cast<double>(widths_[i]);
    count += product;
  }
  QPS_REQUIRE(count <= 2'000'000.0, "wall has too many quorums to enumerate");

  std::vector<ElementSet> out;
  for (std::size_t j = 0; j < widths_.size(); ++j) {
    ElementSet partial(n_);
    for (Element e = row_begin(j); e < row_end(j); ++e) partial.insert(e);
    append_quorums_below(j + 1, partial, out);
  }
  return out;
}

}  // namespace qps
