// A classic r x c Grid system: a quorum is one full row together with one
// full column (size r + c - 1).  Included as an additional well-known
// construction so downstream users can compare against the paper's systems;
// the grid is a coterie but is generally dominated (not ND), which makes it
// a useful negative test case for the nondomination checker.
#pragma once

#include <string>

#include "quorum/quorum_system.h"

namespace qps {

class GridSystem final : public QuorumSystem {
 public:
  /// `rows` x `cols` grid; elements are numbered row-major.
  GridSystem(std::size_t rows, std::size_t cols);

  std::size_t universe_size() const override { return rows_ * cols_; }
  std::string name() const override;
  bool contains_quorum(const ElementSet& greens) const override;
  std::size_t min_quorum_size() const override { return rows_ + cols_ - 1; }
  std::size_t max_quorum_size() const override { return rows_ + cols_ - 1; }
  std::vector<ElementSet> enumerate_quorums() const override;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  Element at(std::size_t r, std::size_t c) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace qps
