#include "quorum/wheel.h"

#include "util/require.h"

namespace qps {

WheelSystem::WheelSystem(std::size_t universe_size) : n_(universe_size) {
  QPS_REQUIRE(n_ >= 3, "Wheel needs a hub and a rim of at least two");
}

std::string WheelSystem::name() const {
  return "Wheel(" + std::to_string(n_) + ")";
}

bool WheelSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == n_, "wrong universe");
  const std::size_t greens_total = greens.count();
  if (greens.contains(kHub))
    return greens_total >= 2;  // hub plus any rim element
  return greens_total == n_ - 1;  // the entire rim
}

std::vector<ElementSet> WheelSystem::enumerate_quorums() const {
  std::vector<ElementSet> quorums;
  for (Element i = 1; i < n_; ++i)
    quorums.push_back(ElementSet(n_, {kHub, i}));
  ElementSet rim = ElementSet::full(n_);
  rim.erase(kHub);
  quorums.push_back(rim);
  return quorums;
}

}  // namespace qps
