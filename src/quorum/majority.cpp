#include "quorum/majority.h"

#include "util/require.h"

namespace qps {

MajoritySystem::MajoritySystem(std::size_t universe_size)
    : n_(universe_size), threshold_((universe_size + 1) / 2) {
  QPS_REQUIRE(n_ >= 1, "universe must be nonempty");
  QPS_REQUIRE(n_ % 2 == 1, "Maj is defined for odd n");
}

std::string MajoritySystem::name() const {
  return "Maj(" + std::to_string(n_) + ")";
}

bool MajoritySystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == n_, "wrong universe");
  return greens.count() >= threshold_;
}

std::vector<ElementSet> MajoritySystem::enumerate_quorums() const {
  QPS_REQUIRE(n_ <= kEnumerationLimit, "universe too large to enumerate");
  std::vector<ElementSet> quorums;
  // Gosper's hack: iterate all n-bit masks with exactly `threshold_` bits.
  const std::uint64_t limit = 1ULL << n_;
  std::uint64_t mask = (1ULL << threshold_) - 1;
  while (mask < limit) {
    quorums.push_back(ElementSet::from_mask(n_, mask));
    const std::uint64_t c = mask & -mask;
    const std::uint64_t r = mask + c;
    mask = (((r ^ mask) >> 2) / c) | r;
  }
  return quorums;
}

}  // namespace qps
