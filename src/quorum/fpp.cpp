#include "quorum/fpp.h"

#include <algorithm>
#include <array>

#include "util/require.h"

namespace qps {

namespace {

bool is_prime(std::size_t q) {
  if (q < 2) return false;
  for (std::size_t d = 2; d * d <= q; ++d)
    if (q % d == 0) return false;
  return true;
}

}  // namespace

FppSystem::FppSystem(std::size_t order) : order_(order) {
  QPS_REQUIRE(is_prime(order), "FPP is implemented for prime orders");
  QPS_REQUIRE(order <= 31, "FPP order out of supported range");
  const std::size_t q = order;

  // Canonical representatives of the projective points: (1, a, b),
  // (0, 1, a), (0, 0, 1) -- q^2 + q + 1 in total.
  for (std::size_t a = 0; a < q; ++a)
    for (std::size_t b = 0; b < q; ++b) points_.push_back({1, a, b});
  for (std::size_t a = 0; a < q; ++a) points_.push_back({0, 1, a});
  points_.push_back({0, 0, 1});
  const std::size_t n = points_.size();
  QPS_CHECK(n == q * q + q + 1, "projective point count mismatch");

  // Lines are also indexed by projective triples L; point P lies on line L
  // iff <L, P> = 0 over GF(q).  Using the same canonical triples for lines
  // yields exactly n lines of q + 1 points each.
  const auto dot_is_zero = [q](const Triple& l, const Triple& p) {
    return (l[0] * p[0] + l[1] * p[1] + l[2] * p[2]) % q == 0;
  };
  for (const Triple& line : points_) {
    ElementSet members(n);
    for (std::size_t i = 0; i < n; ++i)
      if (dot_is_zero(line, points_[i])) members.insert(static_cast<Element>(i));
    QPS_CHECK(members.count() == q + 1, "every line must have q+1 points");
    lines_.push_back(std::move(members));
  }
}

std::string FppSystem::name() const {
  return "FPP(q=" + std::to_string(order_) + ",n=" +
         std::to_string(points_.size()) + ")";
}

bool FppSystem::contains_quorum(const ElementSet& greens) const {
  QPS_REQUIRE(greens.universe_size() == universe_size(), "wrong universe");
  return std::any_of(lines_.begin(), lines_.end(),
                     [&](const ElementSet& line) {
                       return line.is_subset_of(greens);
                     });
}

}  // namespace qps
