// Witnesses (Section 2.3): the output of a probe algorithm.  A green
// witness is a live quorum; a red witness is a transversal of failed
// elements, certifying that no live quorum exists.  For ND coteries
// (Lemma 2.1) the red witness is itself a (dead) quorum, so both cases are
// monochromatic quorums.
#pragma once

#include <string>

#include "core/coloring.h"
#include "quorum/quorum_system.h"
#include "util/element_set.h"

namespace qps {

struct Witness {
  Color color = Color::kRed;
  /// The monochromatic certificate set.
  ElementSet elements;

  std::string to_string() const;
};

/// Validates a witness against the ground-truth coloring:
///  * every witness element was probed (subset of `probed`),
///  * every witness element really has the witness color,
///  * green witnesses contain a quorum; red witnesses are transversals.
/// Returns an empty string when valid, else a description of the violation.
/// For universes of at most 64 elements the subset/color checks run on word
/// masks (no per-element walk); larger universes -- and any detected
/// violation, to keep messages exact -- take the legacy walk below.
std::string validate_witness(const QuorumSystem& system,
                             const Coloring& coloring, const Witness& witness,
                             const ElementSet& probed);

/// The per-element reference implementation of validate_witness, kept
/// callable for differential tests of the word-mask fast path (the n = 63 /
/// 64 / 65 boundary cases in tests/core/test_witness.cpp).  Same verdicts
/// and messages for every input.
std::string validate_witness_walk(const QuorumSystem& system,
                                  const Coloring& coloring,
                                  const Witness& witness,
                                  const ElementSet& probed);

}  // namespace qps
