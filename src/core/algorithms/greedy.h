// A generic candidate-counting probe heuristic, in the spirit of the
// strategies studied empirically by Guerni-Mahoui et al. [4] and
// Neilson [11]: probe the element that appears in the largest number of
// still-alive candidate quorums (ties broken by smallest id).  It operates
// on the enumerated quorum list, so it is restricted to systems whose
// quorums can be enumerated; it serves as the baseline the paper's
// structured algorithms are compared against in the benches.
#pragma once

#include "core/strategy.h"
#include "quorum/quorum_system.h"

namespace qps {

class GreedyCandidateProbe final : public ProbeStrategy {
 public:
  /// Enumerates the quorums of `system` up front.
  explicit GreedyCandidateProbe(const QuorumSystem& system);

  std::string name() const override { return "Greedy_Candidate"; }
  Witness run(ProbeSession& session, Rng& rng) const override;

 private:
  const QuorumSystem* system_;
  std::vector<ElementSet> quorums_;
};

}  // namespace qps
