// A generic candidate-counting probe heuristic, in the spirit of the
// strategies studied empirically by Guerni-Mahoui et al. [4] and
// Neilson [11]: probe the element that appears in the largest number of
// still-alive candidate quorums (ties broken by smallest id).  It operates
// on the enumerated quorum list, so it is restricted to systems whose
// quorums can be enumerated; it serves as the baseline the paper's
// structured algorithms are compared against in the benches.
//
// Candidate bookkeeping is bit-sliced: the constructor precomputes, per
// element, the word-mask of quorums containing it, and a run tracks the
// live / dead / not-yet-blocked candidate sets as word masks, so the
// density scoring is popcounts instead of per-quorum membership tests.
// On the hot path (run_with) the per-run masks live in the caller's
// TrialWorkspace, so steady-state trials allocate nothing and all scratch
// ownership is explicit; the legacy run() entry point allocates its
// scratch per call.
#pragma once

#include <cstdint>
#include <vector>

#include "core/strategy.h"
#include "quorum/quorum_system.h"

namespace qps {

class GreedyCandidateProbe final : public ProbeStrategy {
 public:
  /// Enumerates the quorums of `system` up front.
  explicit GreedyCandidateProbe(const QuorumSystem& system);

  std::string name() const override { return "Greedy_Candidate"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;

 private:
  Witness run_masks(ProbeSession& session, std::vector<std::uint64_t>& live,
                    std::vector<std::uint64_t>& dead,
                    std::vector<std::uint64_t>& unhit) const;

  const QuorumSystem* system_;
  std::vector<ElementSet> quorums_;
  /// member_[e * mask_words_ + w]: bit q of word w set iff element e is in
  /// quorum 64w + q.
  std::vector<std::uint64_t> member_;
  std::size_t mask_words_ = 0;
};

}  // namespace qps
