#include "core/algorithms/greedy.h"

#include <algorithm>

#include "util/require.h"

namespace qps {

GreedyCandidateProbe::GreedyCandidateProbe(const QuorumSystem& system)
    : system_(&system), quorums_(system.enumerate_quorums()) {
  QPS_REQUIRE(!quorums_.empty(), "system has no quorums");
}

Witness GreedyCandidateProbe::run(ProbeSession& session, Rng& /*rng*/) const {
  const std::size_t n = system_->universe_size();
  // A quorum is a live candidate while none of its elements probed red; it
  // is a dead candidate (candidate red quorum) while none probed green.
  std::vector<bool> live(quorums_.size(), true);
  std::vector<bool> dead(quorums_.size(), true);

  while (true) {
    // Green certificate: some quorum fully probed green.  Red certificate:
    // the probed reds form a transversal.
    for (std::size_t qi = 0; qi < quorums_.size(); ++qi) {
      if (live[qi] && quorums_[qi].is_subset_of(session.probed_greens()))
        return {Color::kGreen, quorums_[qi]};
    }
    if (std::all_of(quorums_.begin(), quorums_.end(),
                    [&](const ElementSet& q) {
                      return q.intersects(session.probed_reds());
                    }))
      return {Color::kRed, session.probed_reds()};

    // Probe the unprobed element covering the most still-possible
    // candidates (live + dead counts), a density heuristic.
    Element best = static_cast<Element>(n);
    std::size_t best_score = 0;
    for (Element e = 0; e < n; ++e) {
      if (session.was_probed(e)) continue;
      std::size_t score = 1;  // ensure any unprobed element is eligible
      for (std::size_t qi = 0; qi < quorums_.size(); ++qi)
        if ((live[qi] || dead[qi]) && quorums_[qi].contains(e)) ++score;
      if (score > best_score) {
        best_score = score;
        best = e;
      }
    }
    QPS_CHECK(best < n, "no certificate yet but all elements probed");

    const Color c = session.probe(best);
    for (std::size_t qi = 0; qi < quorums_.size(); ++qi) {
      if (!quorums_[qi].contains(best)) continue;
      if (c == Color::kGreen)
        dead[qi] = false;
      else
        live[qi] = false;
    }
  }
}

}  // namespace qps
