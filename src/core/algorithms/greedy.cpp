#include "core/algorithms/greedy.h"

#include <bit>

#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

GreedyCandidateProbe::GreedyCandidateProbe(const QuorumSystem& system)
    : system_(&system), quorums_(system.enumerate_quorums()) {
  QPS_REQUIRE(!quorums_.empty(), "system has no quorums");
  const std::size_t n = system.universe_size();
  mask_words_ = (quorums_.size() + 63) / 64;
  member_.assign(n * mask_words_, 0);
  for (std::size_t qi = 0; qi < quorums_.size(); ++qi)
    for (Element e : quorums_[qi].to_vector())
      member_[e * mask_words_ + qi / 64] |= 1ULL << (qi % 64);
}

Witness GreedyCandidateProbe::run(ProbeSession& session, Rng& /*rng*/) const {
  // Legacy self-contained entry point: per-call scratch, as the
  // ProbeStrategy contract allows.  The hot path goes through run_with,
  // whose scratch is owned by the caller's TrialWorkspace -- no hidden
  // per-thread state whose growth outlives the call.
  std::vector<std::uint64_t> live, dead, unhit;
  return run_masks(session, live, dead, unhit);
}

Witness GreedyCandidateProbe::run_with(TrialWorkspace& workspace,
                                       ProbeSession& session,
                                       Rng& /*rng*/) const {
  return run_masks(session, workspace.word_buffer(0), workspace.word_buffer(1),
                   workspace.word_buffer(2));
}

Witness GreedyCandidateProbe::run_masks(
    ProbeSession& session, std::vector<std::uint64_t>& live,
    std::vector<std::uint64_t>& dead,
    std::vector<std::uint64_t>& unhit) const {
  const std::size_t n = system_->universe_size();
  const std::size_t words = mask_words_;
  // A quorum is a live candidate while none of its elements probed red; a
  // dead candidate (candidate red quorum) while none probed green; unhit
  // while disjoint from the probed reds.  All-ones start, zero tail bits.
  const auto fill_all = [&](std::vector<std::uint64_t>& mask) {
    mask.assign(words, ~0ULL);
    const std::size_t tail = quorums_.size() % 64;
    if (tail != 0) mask.back() = (1ULL << tail) - 1;
  };
  fill_all(live);
  fill_all(dead);
  fill_all(unhit);

  // Honor probes already on the session (its contract allows re-entering a
  // partially probed session): fold them into the candidate masks exactly
  // as if this run had made them.  Empty sets on the trial hot path.
  const auto fold_probed = [&](const ElementSet& probed, Color c) {
    for (Element e = probed.first(); e < n; e = probed.next_after(e)) {
      const std::uint64_t* member = &member_[e * words];
      for (std::size_t w = 0; w < words; ++w) {
        if (c == Color::kGreen) {
          dead[w] &= ~member[w];
        } else {
          live[w] &= ~member[w];
          unhit[w] &= ~member[w];
        }
      }
    }
  };
  fold_probed(session.probed_greens(), Color::kGreen);
  fold_probed(session.probed_reds(), Color::kRed);

  while (true) {
    // Green certificate: some live quorum fully probed green.
    for (std::size_t w = 0; w < words; ++w) {
      std::uint64_t bits = live[w];
      while (bits != 0) {
        const std::size_t qi = w * 64 + std::countr_zero(bits);
        bits &= bits - 1;
        if (quorums_[qi].is_subset_of(session.probed_greens()))
          return {Color::kGreen, quorums_[qi]};
      }
    }
    // Red certificate: the probed reds hit every quorum (a transversal).
    bool transversal = true;
    for (std::size_t w = 0; w < words && transversal; ++w)
      transversal = unhit[w] == 0;
    if (transversal) return {Color::kRed, session.probed_reds()};

    // Probe the unprobed element covering the most still-possible
    // candidates (live + dead counts), a density heuristic.
    Element best = static_cast<Element>(n);
    std::size_t best_score = 0;
    for (Element e = 0; e < n; ++e) {
      if (session.was_probed(e)) continue;
      std::size_t score = 1;  // ensure any unprobed element is eligible
      const std::uint64_t* member = &member_[e * words];
      for (std::size_t w = 0; w < words; ++w)
        score += static_cast<std::size_t>(
            std::popcount((live[w] | dead[w]) & member[w]));
      if (score > best_score) {
        best_score = score;
        best = e;
      }
    }
    QPS_CHECK(best < n, "no certificate yet but all elements probed");

    const Color c = session.probe(best);
    const std::uint64_t* member = &member_[best * words];
    for (std::size_t w = 0; w < words; ++w) {
      if (c == Color::kGreen) {
        dead[w] &= ~member[w];
      } else {
        live[w] &= ~member[w];
        unhit[w] &= ~member[w];
      }
    }
  }
}

}  // namespace qps
