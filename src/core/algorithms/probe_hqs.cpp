#include "core/algorithms/probe_hqs.h"

#include <array>
#include <cstdint>
#include <vector>

#include "core/engine/batch_kernel.h"
#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

// Result of evaluating one gate: its boolean value and the supporting
// leaves (two agreeing child supports per gate).  Supports of sibling
// subtrees are disjoint, so unions are concatenations.
struct Eval {
  bool value = false;
  std::vector<Element> support;
};

Eval leaf_eval(Element leaf, ProbeSession& session) {
  return {session.probe(leaf) == Color::kGreen, {leaf}};
}

void append(Eval& into, const Eval& from) {
  into.support.insert(into.support.end(), from.support.begin(),
                      from.support.end());
}

/// Merges two agreeing child evaluations into the parent's evaluation.
Eval merge_pair(Eval a, const Eval& b) {
  QPS_CHECK(a.value == b.value, "merge_pair needs agreeing children");
  append(a, b);
  return a;
}

/// Given three child evaluations where the first two disagree, the gate
/// value is the third child's; support = third + the matching sibling.
Eval merge_tiebreak(const Eval& first, const Eval& second, Eval third) {
  QPS_CHECK(first.value != second.value, "tiebreak needs a disagreement");
  append(third, first.value == third.value ? first : second);
  return third;
}

Witness materialize(const Eval& eval, std::size_t n) {
  Witness w;
  w.color = eval.value ? Color::kGreen : Color::kRed;
  w.elements = ElementSet(n);
  for (Element e : eval.support) w.elements.insert(e);
  return w;
}

// ---------------------------------------------------------------- Probe_HQS

Eval probe_hqs_rec(std::size_t level, std::size_t index,
                   ProbeSession& session) {
  if (level == 0) return leaf_eval(static_cast<Element>(index), session);
  Eval first = probe_hqs_rec(level - 1, index * 3, session);
  Eval second = probe_hqs_rec(level - 1, index * 3 + 1, session);
  if (first.value == second.value)
    return merge_pair(std::move(first), second);
  Eval third = probe_hqs_rec(level - 1, index * 3 + 2, session);
  return merge_tiebreak(first, second, std::move(third));
}

// -------------------------------------------------------------- R_Probe_HQS

/// Gate index in the level-major enumeration (level height..1, index
/// ascending): the levels above `level` contribute (3^(height-level)-1)/2
/// gates.  Mirrors rhqs_gate in the batch kernels (simd_kernels.inc.h).
std::size_t hqs_gate(std::size_t height, std::size_t level,
                     std::size_t index) {
  std::size_t pow3 = 1;
  for (std::size_t j = level; j < height; ++j) pow3 *= 3;
  return (pow3 - 1) / 2 + index;
}

// R_Probe_HQS pre-draws one random child order per gate, in gate-id order,
// BEFORE the recursion starts: the draw sequence is then independent of the
// trial's control flow (which gates get visited), so the bit-sliced batch
// path can replicate it lane by lane and stay stream-identical to the
// scalar loop.  Unvisited gates' orders are simply never read.  Each
// gate's order is encoded as first*3 + second (relative child indices;
// third = 3 - first - second).
class HqsOrderBuffer {
 public:
  /// Fills one shuffled order per gate ((n-1)/2 gates) and returns the
  /// buffer.  Stack storage up to 512 gates -- height 6, n = 729 -- so the
  /// n <= 64 hot path stays allocation-free.
  const std::uint8_t* draw(const HQSystem& hqs, Rng& rng) {
    const std::size_t gates = (hqs.universe_size() - 1) / 2;
    std::uint8_t* orders = stack_.data();
    if (gates > stack_.size()) {
      heap_.resize(gates);
      orders = heap_.data();
    }
    for (std::size_t g = 0; g < gates; ++g) {
      std::array<std::uint8_t, 3> ord = {0, 1, 2};
      rng.shuffle_array(ord);
      orders[g] = static_cast<std::uint8_t>(ord[0] * 3 + ord[1]);
    }
    return orders;
  }

 private:
  std::array<std::uint8_t, 512> stack_;
  std::vector<std::uint8_t> heap_;
};

Eval r_probe_hqs_rec(std::size_t height, std::size_t level, std::size_t index,
                     ProbeSession& session, const std::uint8_t* orders) {
  if (level == 0) return leaf_eval(static_cast<Element>(index), session);
  const std::uint8_t code = orders[hqs_gate(height, level, index)];
  const std::size_t c0 = code / 3;
  const std::size_t c1 = code % 3;
  const std::size_t c2 = 3 - c0 - c1;
  Eval first = r_probe_hqs_rec(height, level - 1, index * 3 + c0, session,
                               orders);
  Eval second = r_probe_hqs_rec(height, level - 1, index * 3 + c1, session,
                                orders);
  if (first.value == second.value)
    return merge_pair(std::move(first), second);
  Eval third = r_probe_hqs_rec(height, level - 1, index * 3 + c2, session,
                               orders);
  return merge_tiebreak(first, second, std::move(third));
}

// ------------------------------------------------------------- IR_Probe_HQS

Eval ir_eval(std::size_t level, std::size_t index, ProbeSession& session,
             Rng& rng);

/// "Evaluate" a node per the paper: visit its children in a uniformly
/// random order until the 2-of-3 value is determined, recursing with
/// IR_Probe_HQS (so a height-(h-1) node issues calls at height h-2).
Eval eval_node(std::size_t level, std::size_t index, ProbeSession& session,
               Rng& rng) {
  if (level == 0) return leaf_eval(static_cast<Element>(index), session);
  std::array<std::size_t, 3> order = {index * 3, index * 3 + 1, index * 3 + 2};
  rng.shuffle_array(order);
  Eval first = ir_eval(level - 1, order[0], session, rng);
  Eval second = ir_eval(level - 1, order[1], session, rng);
  if (first.value == second.value)
    return merge_pair(std::move(first), second);
  Eval third = ir_eval(level - 1, order[2], session, rng);
  return merge_tiebreak(first, second, std::move(third));
}

/// Finishes evaluating a node whose first-visited child `first` is already
/// known; `rest` holds the other two children in their random visit order.
Eval complete_node(std::size_t child_level, std::array<std::size_t, 2> rest,
                   const Eval& first, ProbeSession& session, Rng& rng) {
  Eval second = ir_eval(child_level, rest[0], session, rng);
  if (first.value == second.value)
    return merge_pair(std::move(second), first);
  Eval third = ir_eval(child_level, rest[1], session, rng);
  return merge_tiebreak(first, second, std::move(third));
}

/// Fig. 8.  Heights 0/1 have no grandchildren and fall back to the plain
/// random evaluation.
Eval ir_eval(std::size_t level, std::size_t index, ProbeSession& session,
             Rng& rng) {
  if (level <= 1) return eval_node(level, index, session, rng);

  std::array<std::size_t, 3> children = {index * 3, index * 3 + 1,
                                         index * 3 + 2};
  rng.shuffle_array(children);
  const std::size_t r1 = children[0];
  const std::size_t r2 = children[1];
  const std::size_t r3 = children[2];

  // Step 2: fully evaluate the first child.
  const Eval v1 = eval_node(level - 1, r1, session, rng);

  // Step 4: peek at one random grandchild of the second child.
  std::array<std::size_t, 3> grandchildren = {r2 * 3, r2 * 3 + 1, r2 * 3 + 2};
  rng.shuffle_array(grandchildren);
  const Eval g1 = ir_eval(level - 2, grandchildren[0], session, rng);
  const std::array<std::size_t, 2> g_rest = {grandchildren[1],
                                             grandchildren[2]};

  if (g1.value == v1.value) {
    // Step 5: the peek supports r1's value; finish r2.
    const Eval v2 = complete_node(level - 2, g_rest, g1, session, rng);
    if (v2.value == v1.value) return merge_pair(v2, v1);
    const Eval v3 = eval_node(level - 1, r3, session, rng);
    return merge_tiebreak(v1, v2, v3);
  }
  // Step 6: the peek contradicts r1; try the third child before finishing r2.
  const Eval v3 = eval_node(level - 1, r3, session, rng);
  if (v3.value == v1.value) return merge_pair(v3, v1);
  const Eval v2 = complete_node(level - 2, g_rest, g1, session, rng);
  return merge_tiebreak(v1, v3, v2);
}

// ---- Word-level hot path (n <= 64) --------------------------------------
// The same three evaluations with (value, support bitmask) results: sibling
// supports are disjoint, so unions are single ORs and nothing is allocated.
// Gate visit order and Rng draws are identical to the vector recursions
// above, so both entry points agree probe-for-probe.

struct MaskEval {
  bool value = false;
  std::uint64_t support = 0;
};

MaskEval leaf_eval_mask(Element leaf, ProbeSession& session) {
  return {session.probe(leaf) == Color::kGreen, 1ULL << leaf};
}

MaskEval merge_pair_mask(MaskEval a, const MaskEval& b) {
  QPS_CHECK(a.value == b.value, "merge_pair needs agreeing children");
  a.support |= b.support;
  return a;
}

MaskEval merge_tiebreak_mask(const MaskEval& first, const MaskEval& second,
                             MaskEval third) {
  QPS_CHECK(first.value != second.value, "tiebreak needs a disagreement");
  third.support |= first.value == third.value ? first.support : second.support;
  return third;
}

Witness materialize_mask(const MaskEval& eval, std::size_t n) {
  Witness w;
  w.color = eval.value ? Color::kGreen : Color::kRed;
  w.elements = ElementSet::from_mask(n, eval.support);
  return w;
}

MaskEval probe_hqs_rec_mask(std::size_t level, std::size_t index,
                            ProbeSession& session) {
  if (level == 0) return leaf_eval_mask(static_cast<Element>(index), session);
  MaskEval first = probe_hqs_rec_mask(level - 1, index * 3, session);
  MaskEval second = probe_hqs_rec_mask(level - 1, index * 3 + 1, session);
  if (first.value == second.value) return merge_pair_mask(first, second);
  MaskEval third = probe_hqs_rec_mask(level - 1, index * 3 + 2, session);
  return merge_tiebreak_mask(first, second, third);
}

MaskEval r_probe_hqs_rec_mask(std::size_t height, std::size_t level,
                              std::size_t index, ProbeSession& session,
                              const std::uint8_t* orders) {
  if (level == 0) return leaf_eval_mask(static_cast<Element>(index), session);
  const std::uint8_t code = orders[hqs_gate(height, level, index)];
  const std::size_t c0 = code / 3;
  const std::size_t c1 = code % 3;
  const std::size_t c2 = 3 - c0 - c1;
  MaskEval first =
      r_probe_hqs_rec_mask(height, level - 1, index * 3 + c0, session, orders);
  MaskEval second =
      r_probe_hqs_rec_mask(height, level - 1, index * 3 + c1, session, orders);
  if (first.value == second.value) return merge_pair_mask(first, second);
  MaskEval third =
      r_probe_hqs_rec_mask(height, level - 1, index * 3 + c2, session, orders);
  return merge_tiebreak_mask(first, second, third);
}

MaskEval ir_eval_mask(std::size_t level, std::size_t index,
                      ProbeSession& session, Rng& rng);

MaskEval eval_node_mask(std::size_t level, std::size_t index,
                        ProbeSession& session, Rng& rng) {
  if (level == 0) return leaf_eval_mask(static_cast<Element>(index), session);
  std::array<std::size_t, 3> order = {index * 3, index * 3 + 1, index * 3 + 2};
  rng.shuffle_array(order);
  MaskEval first = ir_eval_mask(level - 1, order[0], session, rng);
  MaskEval second = ir_eval_mask(level - 1, order[1], session, rng);
  if (first.value == second.value) return merge_pair_mask(first, second);
  MaskEval third = ir_eval_mask(level - 1, order[2], session, rng);
  return merge_tiebreak_mask(first, second, third);
}

MaskEval complete_node_mask(std::size_t child_level,
                            std::array<std::size_t, 2> rest,
                            const MaskEval& first, ProbeSession& session,
                            Rng& rng) {
  MaskEval second = ir_eval_mask(child_level, rest[0], session, rng);
  if (first.value == second.value) return merge_pair_mask(second, first);
  MaskEval third = ir_eval_mask(child_level, rest[1], session, rng);
  return merge_tiebreak_mask(first, second, third);
}

MaskEval ir_eval_mask(std::size_t level, std::size_t index,
                      ProbeSession& session, Rng& rng) {
  if (level <= 1) return eval_node_mask(level, index, session, rng);

  std::array<std::size_t, 3> children = {index * 3, index * 3 + 1,
                                         index * 3 + 2};
  rng.shuffle_array(children);
  const std::size_t r1 = children[0];
  const std::size_t r2 = children[1];
  const std::size_t r3 = children[2];

  const MaskEval v1 = eval_node_mask(level - 1, r1, session, rng);

  std::array<std::size_t, 3> grandchildren = {r2 * 3, r2 * 3 + 1, r2 * 3 + 2};
  rng.shuffle_array(grandchildren);
  const MaskEval g1 = ir_eval_mask(level - 2, grandchildren[0], session, rng);
  const std::array<std::size_t, 2> g_rest = {grandchildren[1],
                                             grandchildren[2]};

  if (g1.value == v1.value) {
    const MaskEval v2 = complete_node_mask(level - 2, g_rest, g1, session, rng);
    if (v2.value == v1.value) return merge_pair_mask(v2, v1);
    const MaskEval v3 = eval_node_mask(level - 1, r3, session, rng);
    return merge_tiebreak_mask(v1, v2, v3);
  }
  const MaskEval v3 = eval_node_mask(level - 1, r3, session, rng);
  if (v3.value == v1.value) return merge_pair_mask(v3, v1);
  const MaskEval v2 = complete_node_mask(level - 2, g_rest, g1, session, rng);
  return merge_tiebreak_mask(v1, v3, v2);
}

}  // namespace

Witness ProbeHQS::run(ProbeSession& session, Rng& /*rng*/) const {
  return materialize(probe_hqs_rec(hqs_->height(), 0, session),
                     hqs_->universe_size());
}

Witness ProbeHQS::run_with(TrialWorkspace& /*workspace*/,
                           ProbeSession& session, Rng& rng) const {
  const std::size_t n = hqs_->universe_size();
  if (n > 64) return run(session, rng);
  return materialize_mask(probe_hqs_rec_mask(hqs_->height(), 0, session), n);
}

bool ProbeHQS::supports_batch(std::size_t universe_size) const {
  return universe_size == hqs_->universe_size();
}

void ProbeHQS::run_batch(BatchTrialBlock& block, Rng& /*rng*/) const {
  QPS_REQUIRE(block.universe_size() == hqs_->universe_size(),
              "batch block over the wrong universe");
  block.kernels().hqs_scan(block.view(), hqs_->height());
}

Witness RProbeHQS::run(ProbeSession& session, Rng& rng) const {
  const std::size_t h = hqs_->height();
  HqsOrderBuffer orders;
  return materialize(
      r_probe_hqs_rec(h, h, 0, session, orders.draw(*hqs_, rng)),
      hqs_->universe_size());
}

Witness RProbeHQS::run_with(TrialWorkspace& /*workspace*/,
                            ProbeSession& session, Rng& rng) const {
  const std::size_t n = hqs_->universe_size();
  const std::size_t h = hqs_->height();
  HqsOrderBuffer orders;
  const std::uint8_t* drawn = orders.draw(*hqs_, rng);
  if (n > 64)
    return materialize(r_probe_hqs_rec(h, h, 0, session, drawn), n);
  return materialize_mask(r_probe_hqs_rec_mask(h, h, 0, session, drawn), n);
}

bool RProbeHQS::supports_batch(std::size_t universe_size) const {
  return universe_size == hqs_->universe_size();
}

void RProbeHQS::run_batch(BatchTrialBlock& block, Rng& rng) const {
  const std::size_t n = hqs_->universe_size();
  QPS_REQUIRE(block.universe_size() == n,
              "batch block over the wrong universe");
  // Pre-draw every lane's gate orders, in trial order then gate order --
  // the exact draws the scalar entry points make per trial -- into 6
  // lane-mask words per gate: slot c = lanes that picked child c first,
  // slot 3+c = lanes that picked it second.
  const std::size_t gates = (n - 1) / 2;
  const std::size_t w = block.width();
  std::uint64_t* orders = block.plan_masks(gates * 6 * w);
  for (std::size_t t = 0; t < block.trial_count(); ++t) {
    const std::size_t kw = t / 64;
    const std::uint64_t bit = 1ULL << (t % 64);
    for (std::size_t g = 0; g < gates; ++g) {
      std::array<std::uint8_t, 3> ord = {0, 1, 2};
      rng.shuffle_array(ord);
      orders[(g * 6 + ord[0]) * w + kw] |= bit;
      orders[(g * 6 + 3 + ord[1]) * w + kw] |= bit;
    }
  }
  block.kernels().rhqs_scan(block.view(), hqs_->height(), orders);
}

Witness IRProbeHQS::run(ProbeSession& session, Rng& rng) const {
  return materialize(ir_eval(hqs_->height(), 0, session, rng),
                     hqs_->universe_size());
}

Witness IRProbeHQS::run_with(TrialWorkspace& /*workspace*/,
                             ProbeSession& session, Rng& rng) const {
  const std::size_t n = hqs_->universe_size();
  if (n > 64) return run(session, rng);
  return materialize_mask(ir_eval_mask(hqs_->height(), 0, session, rng), n);
}

}  // namespace qps
