#include "core/algorithms/random_order.h"

#include "core/engine/batch_kernel.h"
#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

Witness probe_in_random_order(const QuorumSystem& system,
                              const std::vector<std::uint32_t>& order,
                              ProbeSession& session) {
  const std::size_t n = system.universe_size();
  // not_red = greens + unprobed: the reds are a transversal exactly when
  // this set no longer contains a quorum.
  ElementSet not_red = ElementSet::full(n);
  for (Element e : order) {
    if (session.probe(e) == Color::kGreen) {
      if (system.contains_quorum(session.probed_greens()))
        return {Color::kGreen, session.probed_greens()};
    } else {
      not_red.erase(e);
      if (!system.contains_quorum(not_red))
        return {Color::kRed, session.probed_reds()};
    }
  }
  QPS_CHECK(false, "probing everything always certifies the state");
  return {};
}

}  // namespace

Witness RandomOrderProbe::run(ProbeSession& session, Rng& rng) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(session.universe_size() == n, "session over the wrong universe");
  const auto order = rng.permutation(static_cast<std::uint32_t>(n));
  return probe_in_random_order(*system_, order, session);
}

Witness RandomOrderProbe::run_with(TrialWorkspace& workspace,
                                   ProbeSession& session, Rng& rng) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(session.universe_size() == n, "session over the wrong universe");
  auto& order = workspace.order_buffer();
  rng.permutation_into(order, static_cast<std::uint32_t>(n));
  return probe_in_random_order(*system_, order, session);
}

bool RandomOrderProbe::supports_batch(std::size_t universe_size) const {
  return universe_size == system_->universe_size() &&
         system_->quorum_count_certificate() != 0;
}

void RandomOrderProbe::run_batch(BatchTrialBlock& block, Rng& rng) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(block.universe_size() == n,
              "batch block over the wrong universe");
  const std::size_t cert = system_->quorum_count_certificate();
  QPS_REQUIRE(cert != 0, "batch Random_Order needs a counting certificate");
  // Permute each lane's coloring by its random order (same trick as
  // R_Probe_Maj), then count: with contains_quorum(S) <=> |S| >= cert, a
  // lane certifies green at `cert` probed greens and red once not_red =
  // n - probed_reds drops below cert, i.e. at n - cert + 1 probed reds.
  auto& perm = block.order_buffer();
  const std::uint64_t* src = block.trial_masks();
  std::uint64_t* dst = block.scratch_masks();
  const std::size_t stride = block.mask_words();
  for (std::size_t t = 0; t < block.trial_count(); ++t) {
    rng.permutation_into(perm, static_cast<std::uint32_t>(n));
    permute_mask_words(src + t * stride, perm.data(), n, dst + t * stride);
  }
  block.use_scratch();
  block.kernels().count_scan(block.view(), cert, n - cert + 1);
}

}  // namespace qps
