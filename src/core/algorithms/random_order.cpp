#include "core/algorithms/random_order.h"

#include "util/require.h"

namespace qps {

Witness RandomOrderProbe::run(ProbeSession& session, Rng& rng) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(session.universe_size() == n, "session over the wrong universe");
  const auto order = rng.permutation(static_cast<std::uint32_t>(n));
  // not_red = greens + unprobed: the reds are a transversal exactly when
  // this set no longer contains a quorum.
  ElementSet not_red = ElementSet::full(n);
  for (Element e : order) {
    if (session.probe(e) == Color::kGreen) {
      if (system_->contains_quorum(session.probed_greens()))
        return {Color::kGreen, session.probed_greens()};
    } else {
      not_red.erase(e);
      if (!system_->contains_quorum(not_red))
        return {Color::kRed, session.probed_reds()};
    }
  }
  QPS_CHECK(false, "probing everything always certifies the state");
  return {};
}

}  // namespace qps
