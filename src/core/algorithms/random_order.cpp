#include "core/algorithms/random_order.h"

#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

Witness probe_in_random_order(const QuorumSystem& system,
                              const std::vector<std::uint32_t>& order,
                              ProbeSession& session) {
  const std::size_t n = system.universe_size();
  // not_red = greens + unprobed: the reds are a transversal exactly when
  // this set no longer contains a quorum.
  ElementSet not_red = ElementSet::full(n);
  for (Element e : order) {
    if (session.probe(e) == Color::kGreen) {
      if (system.contains_quorum(session.probed_greens()))
        return {Color::kGreen, session.probed_greens()};
    } else {
      not_red.erase(e);
      if (!system.contains_quorum(not_red))
        return {Color::kRed, session.probed_reds()};
    }
  }
  QPS_CHECK(false, "probing everything always certifies the state");
  return {};
}

}  // namespace

Witness RandomOrderProbe::run(ProbeSession& session, Rng& rng) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(session.universe_size() == n, "session over the wrong universe");
  const auto order = rng.permutation(static_cast<std::uint32_t>(n));
  return probe_in_random_order(*system_, order, session);
}

Witness RandomOrderProbe::run_with(TrialWorkspace& workspace,
                                   ProbeSession& session, Rng& rng) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(session.universe_size() == n, "session over the wrong universe");
  auto& order = workspace.order_buffer();
  rng.permutation_into(order, static_cast<std::uint32_t>(n));
  return probe_in_random_order(*system_, order, session);
}

}  // namespace qps
