#include "core/algorithms/probe_maj.h"

#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

/// Probes elements in the order `order(0), order(1), ...` until one color
/// reaches the majority threshold; the monochromatic majority is the
/// witness (a quorum if green, a transversal -- in fact a quorum, since Maj
/// is ND -- if red).  For n <= 64 the green/red tallies are single-word
/// sets, so the whole loop is allocation-free.
template <typename OrderFn>
Witness probe_in_order(const MajoritySystem& system, OrderFn&& order,
                       ProbeSession& session) {
  const std::size_t threshold = system.threshold();
  ElementSet greens(system.universe_size());
  ElementSet reds(system.universe_size());
  for (std::size_t i = 0; i < system.universe_size(); ++i) {
    const Element e = order(i);
    if (session.probe(e) == Color::kGreen) {
      greens.insert(e);
      if (greens.count() >= threshold) return {Color::kGreen, greens};
    } else {
      reds.insert(e);
      if (reds.count() >= threshold) return {Color::kRed, reds};
    }
  }
  QPS_CHECK(false, "one color must reach the majority threshold");
  return {};
}

}  // namespace

Witness ProbeMaj::run(ProbeSession& session, Rng& /*rng*/) const {
  return probe_in_order(
      *system_, [](std::size_t i) { return static_cast<Element>(i); },
      session);
}

Witness RProbeMaj::run(ProbeSession& session, Rng& rng) const {
  const auto perm = rng.permutation(
      static_cast<std::uint32_t>(system_->universe_size()));
  return probe_in_order(
      *system_, [&perm](std::size_t i) { return perm[i]; }, session);
}

Witness RProbeMaj::run_with(TrialWorkspace& workspace, ProbeSession& session,
                            Rng& rng) const {
  // Same draws as run(), but the permutation lands in the reusable buffer.
  auto& perm = workspace.order_buffer();
  rng.permutation_into(perm,
                       static_cast<std::uint32_t>(system_->universe_size()));
  return probe_in_order(
      *system_, [&perm](std::size_t i) { return perm[i]; }, session);
}

}  // namespace qps
