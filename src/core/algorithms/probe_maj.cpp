#include "core/algorithms/probe_maj.h"

#include "core/engine/batch_kernel.h"
#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

/// Probes elements in the order `order(0), order(1), ...` until one color
/// reaches the majority threshold; the monochromatic majority is the
/// witness (a quorum if green, a transversal -- in fact a quorum, since Maj
/// is ND -- if red).  For n <= 64 the green/red tallies are single-word
/// sets, so the whole loop is allocation-free.
template <typename OrderFn>
Witness probe_in_order(const MajoritySystem& system, OrderFn&& order,
                       ProbeSession& session) {
  const std::size_t threshold = system.threshold();
  ElementSet greens(system.universe_size());
  ElementSet reds(system.universe_size());
  for (std::size_t i = 0; i < system.universe_size(); ++i) {
    const Element e = order(i);
    if (session.probe(e) == Color::kGreen) {
      greens.insert(e);
      if (greens.count() >= threshold) return {Color::kGreen, greens};
    } else {
      reds.insert(e);
      if (reds.count() >= threshold) return {Color::kRed, reds};
    }
  }
  QPS_CHECK(false, "one color must reach the majority threshold");
  return {};
}

}  // namespace

Witness ProbeMaj::run(ProbeSession& session, Rng& /*rng*/) const {
  return probe_in_order(
      *system_, [](std::size_t i) { return static_cast<Element>(i); },
      session);
}

bool ProbeMaj::supports_batch(std::size_t universe_size) const {
  return universe_size == system_->universe_size() && universe_size <= 64;
}

void ProbeMaj::run_batch(BatchTrialBlock& block) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(block.universe_size() == n,
              "batch block over the wrong universe");
  const std::size_t threshold = system_->threshold();
  // Lock-step sequential scan: element i is probed by every lane that has
  // not yet seen a monochromatic majority.  Green tallies are bit-sliced;
  // the red tally needs no planes of its own, since after i+1 probes
  // reds == threshold iff greens == i+1 - threshold.
  LaneTally greens;
  std::uint64_t active = block.lanes();
  for (std::size_t i = 0; i < n && active != 0; ++i) {
    block.count_probe(active);
    greens.add(block.greens(static_cast<Element>(i)) & active);
    // No lane can reach either threshold before probing `threshold`
    // elements; skip the equality folds on the first threshold-1 steps.
    if (i + 1 >= threshold) {
      const std::uint64_t done =
          greens.equals(threshold) | greens.equals(i + 1 - threshold);
      active &= ~done;
    }
  }
  QPS_CHECK(active == 0, "one color must reach the majority threshold");
}

Witness RProbeMaj::run(ProbeSession& session, Rng& rng) const {
  const auto perm = rng.permutation(
      static_cast<std::uint32_t>(system_->universe_size()));
  return probe_in_order(
      *system_, [&perm](std::size_t i) { return perm[i]; }, session);
}

Witness RProbeMaj::run_with(TrialWorkspace& workspace, ProbeSession& session,
                            Rng& rng) const {
  // Same draws as run(), but the permutation lands in the reusable buffer.
  auto& perm = workspace.order_buffer();
  rng.permutation_into(perm,
                       static_cast<std::uint32_t>(system_->universe_size()));
  return probe_in_order(
      *system_, [&perm](std::size_t i) { return perm[i]; }, session);
}

}  // namespace qps
