#include "core/algorithms/probe_maj.h"

#include "util/require.h"

namespace qps {

namespace {

/// Probes elements in the given order until one color reaches the majority
/// threshold; the monochromatic majority is the witness (a quorum if green,
/// a transversal -- in fact a quorum, since Maj is ND -- if red).
Witness probe_in_order(const MajoritySystem& system,
                       const std::vector<Element>& order,
                       ProbeSession& session) {
  const std::size_t threshold = system.threshold();
  ElementSet greens(system.universe_size());
  ElementSet reds(system.universe_size());
  for (Element e : order) {
    if (session.probe(e) == Color::kGreen) {
      greens.insert(e);
      if (greens.count() >= threshold) return {Color::kGreen, greens};
    } else {
      reds.insert(e);
      if (reds.count() >= threshold) return {Color::kRed, reds};
    }
  }
  QPS_CHECK(false, "one color must reach the majority threshold");
  return {};
}

}  // namespace

Witness ProbeMaj::run(ProbeSession& session, Rng& /*rng*/) const {
  std::vector<Element> order(system_->universe_size());
  for (Element e = 0; e < order.size(); ++e) order[e] = e;
  return probe_in_order(*system_, order, session);
}

Witness RProbeMaj::run(ProbeSession& session, Rng& rng) const {
  const auto perm = rng.permutation(
      static_cast<std::uint32_t>(system_->universe_size()));
  return probe_in_order(*system_, perm, session);
}

}  // namespace qps
