#include "core/algorithms/probe_maj.h"

#include "core/engine/batch_kernel.h"
#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

/// Probes elements in the order `order(0), order(1), ...` until one color
/// reaches the majority threshold; the monochromatic majority is the
/// witness (a quorum if green, a transversal -- in fact a quorum, since Maj
/// is ND -- if red).  For n <= 64 the green/red tallies are single-word
/// sets, so the whole loop is allocation-free.
template <typename OrderFn>
Witness probe_in_order(const MajoritySystem& system, OrderFn&& order,
                       ProbeSession& session) {
  const std::size_t threshold = system.threshold();
  ElementSet greens(system.universe_size());
  ElementSet reds(system.universe_size());
  for (std::size_t i = 0; i < system.universe_size(); ++i) {
    const Element e = order(i);
    if (session.probe(e) == Color::kGreen) {
      greens.insert(e);
      if (greens.count() >= threshold) return {Color::kGreen, greens};
    } else {
      reds.insert(e);
      if (reds.count() >= threshold) return {Color::kRed, reds};
    }
  }
  QPS_CHECK(false, "one color must reach the majority threshold");
  return {};
}

}  // namespace

Witness ProbeMaj::run(ProbeSession& session, Rng& /*rng*/) const {
  return probe_in_order(
      *system_, [](std::size_t i) { return static_cast<Element>(i); },
      session);
}

bool ProbeMaj::supports_batch(std::size_t universe_size) const {
  return universe_size == system_->universe_size();
}

void ProbeMaj::run_batch(BatchTrialBlock& block, Rng& /*rng*/) const {
  QPS_REQUIRE(block.universe_size() == system_->universe_size(),
              "batch block over the wrong universe");
  // Lock-step sequential scan: element i is probed by every lane that has
  // not yet seen a monochromatic majority; both stop conditions are the
  // same threshold.
  const std::size_t threshold = system_->threshold();
  block.kernels().count_scan(block.view(), threshold, threshold);
}

Witness RProbeMaj::run(ProbeSession& session, Rng& rng) const {
  const auto perm = rng.permutation(
      static_cast<std::uint32_t>(system_->universe_size()));
  return probe_in_order(
      *system_, [&perm](std::size_t i) { return perm[i]; }, session);
}

Witness RProbeMaj::run_with(TrialWorkspace& workspace, ProbeSession& session,
                            Rng& rng) const {
  // Same draws as run(), but the permutation lands in the reusable buffer.
  auto& perm = workspace.order_buffer();
  rng.permutation_into(perm,
                       static_cast<std::uint32_t>(system_->universe_size()));
  return probe_in_order(
      *system_, [&perm](std::size_t i) { return perm[i]; }, session);
}

bool RProbeMaj::supports_batch(std::size_t universe_size) const {
  return universe_size == system_->universe_size();
}

void RProbeMaj::run_batch(BatchTrialBlock& block, Rng& rng) const {
  const std::size_t n = system_->universe_size();
  QPS_REQUIRE(block.universe_size() == n,
              "batch block over the wrong universe");
  // Probing random elements in canonical order is probing canonical
  // elements in the permuted coloring: bit j of the permuted mask = bit
  // perm[j] of the original.  One permutation per lane, drawn in trial
  // order -- the exact draws run_with() makes.
  auto& perm = block.order_buffer();
  const std::uint64_t* src = block.trial_masks();
  std::uint64_t* dst = block.scratch_masks();
  const std::size_t stride = block.mask_words();
  for (std::size_t t = 0; t < block.trial_count(); ++t) {
    rng.permutation_into(perm, static_cast<std::uint32_t>(n));
    permute_mask_words(src + t * stride, perm.data(), n, dst + t * stride);
  }
  block.use_scratch();
  const std::size_t threshold = system_->threshold();
  block.kernels().count_scan(block.view(), threshold, threshold);
}

}  // namespace qps
