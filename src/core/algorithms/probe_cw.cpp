#include "core/algorithms/probe_cw.h"

#include <algorithm>
#include <array>
#include <vector>

#include "core/engine/batch_kernel.h"
#include "util/require.h"

namespace qps {

Witness ProbeCW::run(ProbeSession& session, Rng& /*rng*/) const {
  const CrumblingWall& wall = *wall_;
  QPS_REQUIRE(wall.row_width(0) == 1, "Probe_CW expects a width-1 top row");
  const std::size_t n = wall.universe_size();

  // Probe the unique element of the first row; it seeds the witness W and
  // the mode (W's color).
  ElementSet witness(n);
  const Element top = wall.row_begin(0);
  Color mode = session.probe(top);
  witness.insert(top);

  for (std::size_t row = 1; row < wall.row_count(); ++row) {
    bool found = false;
    for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e) {
      if (session.probe(e) == mode) {
        witness.insert(e);
        found = true;
        break;
      }
    }
    if (!found) {
      // The whole row is monochromatic in the opposite color: it becomes
      // the new witness (a full row plus -- so far -- nothing below it).
      witness.clear();
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        witness.insert(e);
      mode = opposite(mode);
    }
  }
  return {mode, witness};
}

bool ProbeCW::supports_batch(std::size_t universe_size) const {
  return universe_size == wall_->universe_size() && universe_size <= 64 &&
         wall_->row_width(0) == 1;
}

void ProbeCW::run_batch(BatchTrialBlock& block) const {
  const CrumblingWall& wall = *wall_;
  QPS_REQUIRE(block.universe_size() == wall.universe_size(),
              "batch block over the wrong universe");
  QPS_REQUIRE(wall.row_width(0) == 1, "Probe_CW expects a width-1 top row");
  const std::uint64_t all = block.lanes();
  // Per-lane mode as a word: bit t set iff lane t's current witness color
  // is green.  The top element seeds it; every lane probes the whole scan.
  block.count_probe(all);
  std::uint64_t mode = block.greens(wall.row_begin(0));
  for (std::size_t row = 1; row < wall.row_count(); ++row) {
    // Lanes scan the row left to right and drop out at their first
    // mode-matching element; greens(e) ^ mode keeps exactly the
    // still-unmatched lanes.
    std::uint64_t scanning = all;
    for (Element e = wall.row_begin(row);
         e < wall.row_end(row) && scanning != 0; ++e) {
      block.count_probe(scanning);
      scanning &= block.greens(e) ^ mode;
    }
    // Lanes that matched nothing saw a monochromatic opposite row: flip.
    mode ^= scanning;
  }
}

namespace {

// Per-run scratch of R_Probe_CW: one same-colored representative per
// scanned row, per color (the witness tail below a monochromatic row), and
// a shuffle buffer for the current row.  Two flavors behind one interface:
// word masks plus stack arrays when rows and widths fit in 64 (every
// universe with n <= 64, so the hot path never touches the heap), heap
// vectors for wider walls.
struct StackCwScratch {
  std::array<Element, 64> green_rep;
  std::array<Element, 64> red_rep;
  std::uint64_t has_green = 0;
  std::uint64_t has_red = 0;
  std::array<Element, 64> row_elems;

  explicit StackCwScratch(const CrumblingWall&) {}
  bool green(std::size_t row) const { return (has_green >> row) & 1ULL; }
  bool red(std::size_t row) const { return (has_red >> row) & 1ULL; }
  void set_green(std::size_t row, Element e) {
    has_green |= 1ULL << row;
    green_rep[row] = e;
  }
  void set_red(std::size_t row, Element e) {
    has_red |= 1ULL << row;
    red_rep[row] = e;
  }
};

struct HeapCwScratch {
  std::vector<Element> green_rep;
  std::vector<Element> red_rep;
  std::vector<char> has_green;
  std::vector<char> has_red;
  std::vector<Element> row_elems;

  explicit HeapCwScratch(const CrumblingWall& wall)
      : green_rep(wall.row_count()),
        red_rep(wall.row_count()),
        has_green(wall.row_count(), 0),
        has_red(wall.row_count(), 0) {
    std::size_t widest = 0;
    for (std::size_t row = 0; row < wall.row_count(); ++row)
      widest = std::max(widest, wall.row_width(row));
    row_elems.resize(widest);
  }
  bool green(std::size_t row) const { return has_green[row] != 0; }
  bool red(std::size_t row) const { return has_red[row] != 0; }
  void set_green(std::size_t row, Element e) {
    has_green[row] = 1;
    green_rep[row] = e;
  }
  void set_red(std::size_t row, Element e) {
    has_red[row] = 1;
    red_rep[row] = e;
  }
};

template <typename Scratch>
Witness r_probe_cw_impl(const CrumblingWall& wall, ProbeSession& session,
                        Rng& rng, Scratch scratch) {
  const std::size_t n = wall.universe_size();
  const std::size_t k = wall.row_count();

  for (std::size_t row = k; row-- > 0;) {
    const std::size_t width = wall.row_width(row);
    for (std::size_t i = 0; i < width; ++i)
      scratch.row_elems[i] = wall.row_begin(row) + static_cast<Element>(i);
    rng.shuffle_span(scratch.row_elems.data(), width);

    for (std::size_t i = 0; i < width; ++i) {
      const Element e = scratch.row_elems[i];
      if (session.probe(e) == Color::kGreen)
        scratch.set_green(row, e);
      else
        scratch.set_red(row, e);
      if (scratch.green(row) && scratch.red(row)) break;
    }

    if (!(scratch.green(row) && scratch.red(row))) {
      // Monochromatic row: full row + one matching element per row below.
      const Color mode = scratch.green(row) ? Color::kGreen : Color::kRed;
      ElementSet witness(n);
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        witness.insert(e);
      for (std::size_t below = row + 1; below < k; ++below) {
        QPS_CHECK(mode == Color::kGreen ? scratch.green(below)
                                        : scratch.red(below),
                  "rows below a monochromatic row must have both colors");
        witness.insert(mode == Color::kGreen ? scratch.green_rep[below]
                                             : scratch.red_rep[below]);
      }
      return {mode, witness};
    }
  }
  QPS_CHECK(false, "the width-1 top row is always monochromatic");
  return {};
}

bool fits_stack_scratch(const CrumblingWall& wall) {
  if (wall.row_count() > 64) return false;
  for (std::size_t row = 0; row < wall.row_count(); ++row)
    if (wall.row_width(row) > 64) return false;
  return true;
}

}  // namespace

Witness RProbeCW::run(ProbeSession& session, Rng& rng) const {
  const CrumblingWall& wall = *wall_;
  if (fits_stack_scratch(wall))
    return r_probe_cw_impl(wall, session, rng, StackCwScratch(wall));
  return r_probe_cw_impl(wall, session, rng, HeapCwScratch(wall));
}

}  // namespace qps
