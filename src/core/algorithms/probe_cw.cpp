#include "core/algorithms/probe_cw.h"

#include "util/require.h"

namespace qps {

Witness ProbeCW::run(ProbeSession& session, Rng& /*rng*/) const {
  const CrumblingWall& wall = *wall_;
  QPS_REQUIRE(wall.row_width(0) == 1, "Probe_CW expects a width-1 top row");
  const std::size_t n = wall.universe_size();

  // Probe the unique element of the first row; it seeds the witness W and
  // the mode (W's color).
  ElementSet witness(n);
  const Element top = wall.row_begin(0);
  Color mode = session.probe(top);
  witness.insert(top);

  for (std::size_t row = 1; row < wall.row_count(); ++row) {
    bool found = false;
    for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e) {
      if (session.probe(e) == mode) {
        witness.insert(e);
        found = true;
        break;
      }
    }
    if (!found) {
      // The whole row is monochromatic in the opposite color: it becomes
      // the new witness (a full row plus -- so far -- nothing below it).
      witness.clear();
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        witness.insert(e);
      mode = opposite(mode);
    }
  }
  return {mode, witness};
}

Witness RProbeCW::run(ProbeSession& session, Rng& rng) const {
  const CrumblingWall& wall = *wall_;
  const std::size_t n = wall.universe_size();
  const std::size_t k = wall.row_count();

  // One same-colored representative per scanned row, per color; when a
  // monochromatic row is found these provide the witness tail below it.
  std::vector<Element> green_rep(k), red_rep(k);
  std::vector<bool> has_green(k, false), has_red(k, false);

  for (std::size_t row = k; row-- > 0;) {
    std::vector<Element> elements;
    elements.reserve(wall.row_width(row));
    for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
      elements.push_back(e);
    rng.shuffle(elements);

    for (Element e : elements) {
      if (session.probe(e) == Color::kGreen) {
        has_green[row] = true;
        green_rep[row] = e;
      } else {
        has_red[row] = true;
        red_rep[row] = e;
      }
      if (has_green[row] && has_red[row]) break;
    }

    if (!(has_green[row] && has_red[row])) {
      // Monochromatic row: full row + one matching element per row below.
      const Color mode = has_green[row] ? Color::kGreen : Color::kRed;
      ElementSet witness(n);
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        witness.insert(e);
      for (std::size_t below = row + 1; below < k; ++below) {
        QPS_CHECK(mode == Color::kGreen ? has_green[below] : has_red[below],
                  "rows below a monochromatic row must have both colors");
        witness.insert(mode == Color::kGreen ? green_rep[below]
                                             : red_rep[below]);
      }
      return {mode, witness};
    }
  }
  QPS_CHECK(false, "the width-1 top row is always monochromatic");
  return {};
}

}  // namespace qps
