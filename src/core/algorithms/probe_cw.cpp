#include "core/algorithms/probe_cw.h"

#include <algorithm>
#include <array>
#include <vector>

#include "core/engine/batch_kernel.h"
#include "util/require.h"

namespace qps {

Witness ProbeCW::run(ProbeSession& session, Rng& /*rng*/) const {
  const CrumblingWall& wall = *wall_;
  QPS_REQUIRE(wall.row_width(0) == 1, "Probe_CW expects a width-1 top row");
  const std::size_t n = wall.universe_size();

  // Probe the unique element of the first row; it seeds the witness W and
  // the mode (W's color).
  ElementSet witness(n);
  const Element top = wall.row_begin(0);
  Color mode = session.probe(top);
  witness.insert(top);

  for (std::size_t row = 1; row < wall.row_count(); ++row) {
    bool found = false;
    for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e) {
      if (session.probe(e) == mode) {
        witness.insert(e);
        found = true;
        break;
      }
    }
    if (!found) {
      // The whole row is monochromatic in the opposite color: it becomes
      // the new witness (a full row plus -- so far -- nothing below it).
      witness.clear();
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        witness.insert(e);
      mode = opposite(mode);
    }
  }
  return {mode, witness};
}

bool ProbeCW::supports_batch(std::size_t universe_size) const {
  return universe_size == wall_->universe_size() && wall_->row_width(0) == 1;
}

void ProbeCW::run_batch(BatchTrialBlock& block, Rng& /*rng*/) const {
  QPS_REQUIRE(block.universe_size() == wall_->universe_size(),
              "batch block over the wrong universe");
  QPS_REQUIRE(wall_->row_width(0) == 1, "Probe_CW expects a width-1 top row");
  block.kernels().cw_scan(block.view(), row_offsets_.data(),
                          wall_->row_count());
}

namespace {

// Per-run scratch of R_Probe_CW: one same-colored representative per
// scanned row, per color (the witness tail below a monochromatic row), and
// the pre-drawn row orders, concatenated by row (row r's shuffled elements
// occupy row_elems[row_begin(r) .. row_end(r)), since rows partition
// [0, n)).  Two flavors behind one interface: word masks plus stack arrays
// when the rows and the universe fit in 64 (so the hot path never touches
// the heap), heap vectors for wider walls.
struct StackCwScratch {
  std::array<Element, 64> green_rep;
  std::array<Element, 64> red_rep;
  std::uint64_t has_green = 0;
  std::uint64_t has_red = 0;
  std::array<Element, 64> row_elems;

  explicit StackCwScratch(const CrumblingWall&) {}
  bool green(std::size_t row) const { return (has_green >> row) & 1ULL; }
  bool red(std::size_t row) const { return (has_red >> row) & 1ULL; }
  void set_green(std::size_t row, Element e) {
    has_green |= 1ULL << row;
    green_rep[row] = e;
  }
  void set_red(std::size_t row, Element e) {
    has_red |= 1ULL << row;
    red_rep[row] = e;
  }
};

struct HeapCwScratch {
  std::vector<Element> green_rep;
  std::vector<Element> red_rep;
  std::vector<char> has_green;
  std::vector<char> has_red;
  std::vector<Element> row_elems;

  explicit HeapCwScratch(const CrumblingWall& wall)
      : green_rep(wall.row_count()),
        red_rep(wall.row_count()),
        has_green(wall.row_count(), 0),
        has_red(wall.row_count(), 0),
        row_elems(wall.universe_size()) {}
  bool green(std::size_t row) const { return has_green[row] != 0; }
  bool red(std::size_t row) const { return has_red[row] != 0; }
  void set_green(std::size_t row, Element e) {
    has_green[row] = 1;
    green_rep[row] = e;
  }
  void set_red(std::size_t row, Element e) {
    has_red[row] = 1;
    red_rep[row] = e;
  }
};

template <typename Scratch>
Witness r_probe_cw_impl(const CrumblingWall& wall, ProbeSession& session,
                        Rng& rng, Scratch scratch) {
  const std::size_t n = wall.universe_size();
  const std::size_t k = wall.row_count();

  // Pre-draw every row's random order BEFORE any probing, in the scan's
  // row order (bottom-up): the draw sequence is then independent of the
  // trial's control flow (which row ends the scan), so the bit-sliced
  // batch path can replicate it lane by lane and stay stream-identical to
  // the scalar loop.  Orders of unscanned rows are simply never read.
  for (std::size_t row = k; row-- > 0;) {
    const std::size_t width = wall.row_width(row);
    const Element base = wall.row_begin(row);
    for (std::size_t i = 0; i < width; ++i)
      scratch.row_elems[base + i] = base + static_cast<Element>(i);
    rng.shuffle_span(scratch.row_elems.data() + base, width);
  }

  for (std::size_t row = k; row-- > 0;) {
    const std::size_t width = wall.row_width(row);
    const Element base = wall.row_begin(row);

    for (std::size_t i = 0; i < width; ++i) {
      const Element e = scratch.row_elems[base + i];
      if (session.probe(e) == Color::kGreen)
        scratch.set_green(row, e);
      else
        scratch.set_red(row, e);
      if (scratch.green(row) && scratch.red(row)) break;
    }

    if (!(scratch.green(row) && scratch.red(row))) {
      // Monochromatic row: full row + one matching element per row below.
      const Color mode = scratch.green(row) ? Color::kGreen : Color::kRed;
      ElementSet witness(n);
      for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e)
        witness.insert(e);
      for (std::size_t below = row + 1; below < k; ++below) {
        QPS_CHECK(mode == Color::kGreen ? scratch.green(below)
                                        : scratch.red(below),
                  "rows below a monochromatic row must have both colors");
        witness.insert(mode == Color::kGreen ? scratch.green_rep[below]
                                             : scratch.red_rep[below]);
      }
      return {mode, witness};
    }
  }
  QPS_CHECK(false, "the width-1 top row is always monochromatic");
  return {};
}

bool fits_stack_scratch(const CrumblingWall& wall) {
  // The concatenated row orders hold all n elements, and the per-row
  // representative masks hold one bit per row (row_count <= n).
  return wall.universe_size() <= 64;
}

}  // namespace

Witness RProbeCW::run(ProbeSession& session, Rng& rng) const {
  const CrumblingWall& wall = *wall_;
  if (fits_stack_scratch(wall))
    return r_probe_cw_impl(wall, session, rng, StackCwScratch(wall));
  return r_probe_cw_impl(wall, session, rng, HeapCwScratch(wall));
}

bool RProbeCW::supports_batch(std::size_t universe_size) const {
  // The batch scan, like the scalar one, relies on the width-1 top row to
  // guarantee every lane meets a monochromatic row.
  return universe_size == wall_->universe_size() && wall_->row_width(0) == 1;
}

void RProbeCW::run_batch(BatchTrialBlock& block, Rng& rng) const {
  const CrumblingWall& wall = *wall_;
  const std::size_t n = wall.universe_size();
  QPS_REQUIRE(block.universe_size() == n,
              "batch block over the wrong universe");
  // Probing random row elements in stored order is probing stored elements
  // of the within-row permuted coloring.  One concatenated permutation per
  // lane, rows drawn bottom-up -- the exact draws run() makes per trial.
  auto& perm = block.order_buffer();
  perm.resize(n);
  const std::uint64_t* src = block.trial_masks();
  std::uint64_t* dst = block.scratch_masks();
  const std::size_t stride = block.mask_words();
  for (std::size_t t = 0; t < block.trial_count(); ++t) {
    for (std::size_t row = wall.row_count(); row-- > 0;) {
      const std::size_t width = wall.row_width(row);
      const Element base = wall.row_begin(row);
      for (std::size_t i = 0; i < width; ++i)
        perm[base + i] = base + static_cast<Element>(i);
      rng.shuffle_span(perm.data() + base, width);
    }
    permute_mask_words(src + t * stride, perm.data(), n, dst + t * stride);
  }
  block.use_scratch();
  block.kernels().rcw_scan(block.view(), row_offsets_.data(),
                           wall.row_count());
}

}  // namespace qps
