// Probing algorithms for Crumbling Walls.
//
// Probe_CW (Fig. 5, Thm 3.3) scans rows top-down keeping a monochromatic
// witness W for the wall scanned so far; in each row it looks for one
// element matching the current mode, and on failure the whole
// (monochromatic, opposite-colored) row replaces W.  Its expected cost in
// the probabilistic model is at most 2k - 1 for any p -- independent of n.
//
// R_Probe_CW (Section 4.2, Thm 4.4) scans rows bottom-up, probing random
// elements of each row until both colors are seen or the row is exhausted;
// a monochromatic row ends the scan.  Worst-case expected cost
// max_j { n_j + sum_{i>j} ((n_i+1)/2 + 1/n_i) }.
#pragma once

#include "core/strategy.h"
#include "quorum/crumbling_wall.h"

namespace qps {

/// Fig. 5's deterministic top-down algorithm.  Within a row, elements are
/// probed left to right (the order is irrelevant in the i.i.d. model).
class ProbeCW final : public ProbeStrategy {
 public:
  explicit ProbeCW(const CrumblingWall& wall) : wall_(&wall) {}
  std::string name() const override { return "Probe_CW"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Bit-sliced batch kernel: the top-down row scan with a per-lane mode
  /// word; lanes leave a row as soon as they match their mode.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block) const override;

 private:
  const CrumblingWall* wall_;
};

/// Section 4.2's randomized bottom-up algorithm.
class RProbeCW final : public ProbeStrategy {
 public:
  explicit RProbeCW(const CrumblingWall& wall) : wall_(&wall) {}
  std::string name() const override { return "R_Probe_CW"; }
  Witness run(ProbeSession& session, Rng& rng) const override;

 private:
  const CrumblingWall* wall_;
};

}  // namespace qps
