// Probing algorithms for Crumbling Walls.
//
// Probe_CW (Fig. 5, Thm 3.3) scans rows top-down keeping a monochromatic
// witness W for the wall scanned so far; in each row it looks for one
// element matching the current mode, and on failure the whole
// (monochromatic, opposite-colored) row replaces W.  Its expected cost in
// the probabilistic model is at most 2k - 1 for any p -- independent of n.
//
// R_Probe_CW (Section 4.2, Thm 4.4) scans rows bottom-up, probing random
// elements of each row until both colors are seen or the row is exhausted;
// a monochromatic row ends the scan.  Worst-case expected cost
// max_j { n_j + sum_{i>j} ((n_i+1)/2 + 1/n_i) }.
#pragma once

#include <cstdint>
#include <vector>

#include "core/strategy.h"
#include "quorum/crumbling_wall.h"

namespace qps {

namespace cw_detail {
/// The wall's rows as a row_begin offset array (row_count+1 entries, rows
/// partition [0, n) contiguously) -- the plain-array row layout the batch
/// kernels (core/engine/simd.h) take.
inline std::vector<std::uint32_t> row_offsets(const CrumblingWall& wall) {
  std::vector<std::uint32_t> offsets;
  offsets.reserve(wall.row_count() + 1);
  for (std::size_t row = 0; row < wall.row_count(); ++row)
    offsets.push_back(wall.row_begin(row));
  offsets.push_back(static_cast<std::uint32_t>(wall.universe_size()));
  return offsets;
}
}  // namespace cw_detail

/// Fig. 5's deterministic top-down algorithm.  Within a row, elements are
/// probed left to right (the order is irrelevant in the i.i.d. model).
class ProbeCW final : public ProbeStrategy {
 public:
  explicit ProbeCW(const CrumblingWall& wall)
      : wall_(&wall), row_offsets_(cw_detail::row_offsets(wall)) {}
  std::string name() const override { return "Probe_CW"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Bit-sliced batch kernel: the top-down row scan with a per-lane mode
  /// word; lanes leave a row as soon as they match their mode.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const CrumblingWall* wall_;
  std::vector<std::uint32_t> row_offsets_;
};

/// Section 4.2's randomized bottom-up algorithm.
class RProbeCW final : public ProbeStrategy {
 public:
  explicit RProbeCW(const CrumblingWall& wall)
      : wall_(&wall), row_offsets_(cw_detail::row_offsets(wall)) {}
  std::string name() const override { return "R_Probe_CW"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Bit-sliced batch kernel: each lane's coloring is permuted by that
  /// lane's pre-drawn within-row orders, then a bottom-up masked scan
  /// probes each row until both colors are seen.  Draw-compatible with the
  /// scalar entry point, which pre-draws all row orders up front too.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const CrumblingWall* wall_;
  std::vector<std::uint32_t> row_offsets_;
};

}  // namespace qps
