// RandomOrderProbe: the universal randomized baseline.
//
// Probes uniformly random unprobed elements until the observations certify
// the system state (probed greens contain a quorum, or probed reds form a
// transversal).  Works on ANY quorum system through the characteristic
// function alone -- it is the generalization of R_Probe_Maj (for Maj all
// orders are equivalent, so there it is optimal; on structured systems the
// specialized algorithms beat it, which bench_baselines quantifies).
#pragma once

#include "core/strategy.h"
#include "quorum/quorum_system.h"

namespace qps {

class RandomOrderProbe final : public ProbeStrategy {
 public:
  explicit RandomOrderProbe(const QuorumSystem& system) : system_(&system) {}
  std::string name() const override { return "Random_Order"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Zero-allocation variant: the random order lands in the workspace's
  /// reusable buffer.
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;
  /// Bit-sliced batch kernel, available when the system advertises a
  /// counting certificate c (quorum_count_certificate): each lane's
  /// coloring is permuted by its pre-drawn random order, then a counting
  /// scan stops a lane at c greens (probed greens contain a quorum) or
  /// n-c+1 reds (the unprobed + green set lost its last quorum).
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const QuorumSystem* system_;
};

}  // namespace qps
