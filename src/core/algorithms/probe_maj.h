// Probing algorithms for the Majority system.
//
// Probabilistic model (Prop. 3.2): probe elements in any fixed order until
// (n+1)/2 elements of one color are seen; all elements are symmetric, so
// the fixed order is optimal and E[probes] = n - theta(sqrt(n)) at p = 1/2
// and n/(2q) + o(1) for p < q.
//
// Randomized worst-case model (Thm 4.2): R_Probe_Maj probes uniformly at
// random without replacement; its worst-case expected cost is exactly
// n - (n-1)/(n+3).
#pragma once

#include "core/strategy.h"
#include "quorum/majority.h"

namespace qps {

/// Deterministic sequential prober (optimal in the probabilistic model).
class ProbeMaj final : public ProbeStrategy {
 public:
  explicit ProbeMaj(const MajoritySystem& system) : system_(&system) {}
  std::string name() const override { return "Probe_Maj"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Bit-sliced batch kernel: 64*W trials per block via the ISA table's
  /// count_scan -- bit-sliced green tallies, per-lane stop detection by
  /// plane equality against the threshold.  Any universe size.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const MajoritySystem* system_;
};

/// Uniformly random prober (Thm 4.2's optimal randomized algorithm).
class RProbeMaj final : public ProbeStrategy {
 public:
  explicit RProbeMaj(const MajoritySystem& system) : system_(&system) {}
  std::string name() const override { return "R_Probe_Maj"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Zero-allocation variant: the random order lands in the workspace's
  /// reusable buffer.
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;
  /// Bit-sliced batch kernel: each lane's coloring is permuted by that
  /// lane's pre-drawn random order (probing random elements in canonical
  /// order == probing canonical elements in random order), then the same
  /// count_scan as Probe_Maj runs on the permuted block.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const MajoritySystem* system_;
};

}  // namespace qps
