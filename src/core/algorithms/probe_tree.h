// Probing algorithms for the Tree system.
//
// Probe_Tree (Section 3.3, Prop. 3.6): probe the root, recursively find a
// witness for the right subtree, and descend into the left subtree only if
// the right witness's color differs from the root's.  Expected cost
// O(n^{log2(1+p)}) in the probabilistic model, O(n^0.585) at p = 1/2.
//
// R_Probe_Tree (Section 4.3, Thm 4.7): at every node pick uniformly one of
// three plans -- {root+right, then left}, {root+left, then right}, or
// {both subtrees, then root} -- giving worst-case expected cost
// <= 5n/6 + 1/6 against the deterministic lower bound PC(Tree) = n.
#pragma once

#include "core/strategy.h"
#include "quorum/tree_system.h"

namespace qps {

class ProbeTree final : public ProbeStrategy {
 public:
  explicit ProbeTree(const TreeSystem& tree) : tree_(&tree) {}
  std::string name() const override { return "Probe_Tree"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Allocation-free word-mask recursion for n <= 64.
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;
  /// Bit-sliced batch kernel: one masked recursion over the tree, lanes
  /// that disagree with their root color descending into the left subtree.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const TreeSystem* tree_;
};

class RProbeTree final : public ProbeStrategy {
 public:
  explicit RProbeTree(const TreeSystem& tree) : tree_(&tree) {}
  std::string name() const override { return "R_Probe_Tree"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Allocation-free word-mask recursion for n <= 64.
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;
  /// Bit-sliced batch kernel: every lane's plans are pre-drawn as per-node
  /// lane masks, then one masked recursion splits the lanes at each node by
  /// plan.  Draw-compatible with the scalar entry points, which pre-draw
  /// all plans in node order too.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const TreeSystem* tree_;
};

}  // namespace qps
