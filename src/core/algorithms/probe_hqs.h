// Probing algorithms for the Hierarchical Quorum System.
//
// The HQS characteristic function is a ternary tree of 2-of-3 majority
// gates over the leaves; finding a witness means evaluating the root and
// exhibiting, at every gate, two agreeing children (the minterm/maxterm
// support, which for this self-dual system is a monochromatic quorum).
//
// Probe_HQS (Section 3.4, Thms 3.8/3.9): deterministic left-to-right
// evaluation, skipping the third child when the first two agree.  Optimal
// in the probabilistic model at p = 1/2, costing exactly n^{log3(5/2)}.
//
// R_Probe_HQS (Prop. 4.9, due to Boppana): evaluate two children chosen at
// random, the third only on disagreement -- O(n^{log3(8/3)}) = O(n^0.893)
// worst-case expected probes.
//
// IR_Probe_HQS (Fig. 8, Thm 4.10): after fully evaluating one random child,
// peek at one random grandchild of the next child; if it contradicts the
// first child's value, jump to the third child first.  Improves the
// exponent to ~0.89 (see EXPERIMENTS.md for the constant).
#pragma once

#include "core/strategy.h"
#include "quorum/hqs.h"

namespace qps {

class ProbeHQS final : public ProbeStrategy {
 public:
  explicit ProbeHQS(const HQSystem& hqs) : hqs_(&hqs) {}
  std::string name() const override { return "Probe_HQS"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Allocation-free word-mask evaluation for n <= 64.
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;
  /// Bit-sliced batch kernel: one masked gate-tree walk, only the lanes
  /// whose first two children disagree visiting the third.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const HQSystem* hqs_;
};

class RProbeHQS final : public ProbeStrategy {
 public:
  explicit RProbeHQS(const HQSystem& hqs) : hqs_(&hqs) {}
  std::string name() const override { return "R_Probe_HQS"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Allocation-free word-mask evaluation for n <= 64.
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;
  /// Bit-sliced batch kernel: every lane's per-gate child orders are
  /// pre-drawn as lane masks, then a two-phase masked walk evaluates each
  /// lane's first two picks and, on disagreement, its third.
  /// Draw-compatible with the scalar entry points, which pre-draw all gate
  /// orders in gate order too.
  bool supports_batch(std::size_t universe_size) const override;
  void run_batch(BatchTrialBlock& block, Rng& rng) const override;

 private:
  const HQSystem* hqs_;
};

class IRProbeHQS final : public ProbeStrategy {
 public:
  explicit IRProbeHQS(const HQSystem& hqs) : hqs_(&hqs) {}
  std::string name() const override { return "IR_Probe_HQS"; }
  Witness run(ProbeSession& session, Rng& rng) const override;
  /// Allocation-free word-mask evaluation for n <= 64.
  Witness run_with(TrialWorkspace& workspace, ProbeSession& session,
                   Rng& rng) const override;

 private:
  const HQSystem* hqs_;
};

}  // namespace qps
