#include "core/algorithms/probe_tree.h"

#include <cstdint>
#include <vector>

#include "core/engine/batch_kernel.h"
#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

// Internal witnesses use plain element vectors: supports of disjoint
// subtrees never overlap, so concatenation is a disjoint union and the
// final ElementSet is materialized once per run.
struct TreeWitness {
  Color color = Color::kRed;
  std::vector<Element> elems;
};

Witness materialize(const TreeWitness& tw, std::size_t n) {
  Witness w;
  w.color = tw.color;
  w.elements = ElementSet(n);
  for (Element e : tw.elems) w.elements.insert(e);
  return w;
}

TreeWitness leaf_witness(Element v, Color c) {
  return {c, std::vector<Element>{v}};
}

void append(TreeWitness& into, const TreeWitness& from) {
  into.elems.insert(into.elems.end(), from.elems.begin(), from.elems.end());
}

/// Combines subtree witnesses with the probed root into a witness for the
/// whole subtree: {root} + matching subtree quorum, or both subtree quorums.
TreeWitness combine_with_root(Element root, Color root_color,
                              TreeWitness first, TreeWitness second) {
  if (first.color == root_color) {
    first.elems.push_back(root);
    return first;
  }
  if (second.color == root_color) {
    second.elems.push_back(root);
    return second;
  }
  QPS_CHECK(first.color == second.color,
            "subtree witnesses opposing the root must agree");
  append(first, second);
  return first;
}

TreeWitness probe_tree_rec(const TreeSystem& tree, Element v,
                           ProbeSession& session) {
  if (tree.is_leaf(v)) return leaf_witness(v, session.probe(v));
  const Color root_color = session.probe(v);
  TreeWitness right = probe_tree_rec(tree, TreeSystem::right_child(v), session);
  if (right.color == root_color) {
    right.elems.push_back(v);
    return right;
  }
  TreeWitness left = probe_tree_rec(tree, TreeSystem::left_child(v), session);
  return combine_with_root(v, root_color, std::move(right), std::move(left));
}

TreeWitness r_probe_tree_rec(const TreeSystem& tree, Element v,
                             ProbeSession& session, Rng& rng) {
  if (tree.is_leaf(v)) return leaf_witness(v, session.probe(v));
  const Element left = TreeSystem::left_child(v);
  const Element right = TreeSystem::right_child(v);
  const std::uint64_t plan = rng.below(3);
  if (plan == 0 || plan == 1) {
    // Root together with one subtree; the sibling only on a color mismatch.
    const Element primary = plan == 0 ? right : left;
    const Element sibling = plan == 0 ? left : right;
    const Color root_color = session.probe(v);
    TreeWitness first = r_probe_tree_rec(tree, primary, session, rng);
    if (first.color == root_color) {
      first.elems.push_back(v);
      return first;
    }
    TreeWitness second = r_probe_tree_rec(tree, sibling, session, rng);
    return combine_with_root(v, root_color, std::move(first),
                             std::move(second));
  }
  // Both subtrees first; the root only if their witnesses disagree.
  TreeWitness wl = r_probe_tree_rec(tree, left, session, rng);
  TreeWitness wr = r_probe_tree_rec(tree, right, session, rng);
  if (wl.color == wr.color) {
    append(wl, wr);
    return wl;
  }
  const Color root_color = session.probe(v);
  TreeWitness& match = wl.color == root_color ? wl : wr;
  match.elems.push_back(v);
  return std::move(match);
}

// ---- Word-level hot path (n <= 64) --------------------------------------
// Same recursions, but a witness is (color, support bitmask): disjoint
// unions are single ORs and nothing is allocated.  Probe order and Rng
// draws are identical to the vector recursions above, so both entry points
// return the same witness at the same cost for equal generator states.

struct MaskWitness {
  Color color = Color::kRed;
  std::uint64_t mask = 0;
};

MaskWitness combine_with_root_mask(Element root, Color root_color,
                                   MaskWitness first, MaskWitness second) {
  if (first.color == root_color) {
    first.mask |= 1ULL << root;
    return first;
  }
  if (second.color == root_color) {
    second.mask |= 1ULL << root;
    return second;
  }
  QPS_CHECK(first.color == second.color,
            "subtree witnesses opposing the root must agree");
  first.mask |= second.mask;
  return first;
}

MaskWitness probe_tree_rec_mask(const TreeSystem& tree, Element v,
                                ProbeSession& session) {
  if (tree.is_leaf(v)) return {session.probe(v), 1ULL << v};
  const Color root_color = session.probe(v);
  MaskWitness right =
      probe_tree_rec_mask(tree, TreeSystem::right_child(v), session);
  if (right.color == root_color) {
    right.mask |= 1ULL << v;
    return right;
  }
  MaskWitness left =
      probe_tree_rec_mask(tree, TreeSystem::left_child(v), session);
  return combine_with_root_mask(v, root_color, right, left);
}

MaskWitness r_probe_tree_rec_mask(const TreeSystem& tree, Element v,
                                  ProbeSession& session, Rng& rng) {
  if (tree.is_leaf(v)) return {session.probe(v), 1ULL << v};
  const Element left = TreeSystem::left_child(v);
  const Element right = TreeSystem::right_child(v);
  const std::uint64_t plan = rng.below(3);
  if (plan == 0 || plan == 1) {
    const Element primary = plan == 0 ? right : left;
    const Element sibling = plan == 0 ? left : right;
    const Color root_color = session.probe(v);
    MaskWitness first = r_probe_tree_rec_mask(tree, primary, session, rng);
    if (first.color == root_color) {
      first.mask |= 1ULL << v;
      return first;
    }
    MaskWitness second = r_probe_tree_rec_mask(tree, sibling, session, rng);
    return combine_with_root_mask(v, root_color, first, second);
  }
  MaskWitness wl = r_probe_tree_rec_mask(tree, left, session, rng);
  MaskWitness wr = r_probe_tree_rec_mask(tree, right, session, rng);
  if (wl.color == wr.color) {
    wl.mask |= wr.mask;
    return wl;
  }
  const Color root_color = session.probe(v);
  MaskWitness& match = wl.color == root_color ? wl : wr;
  match.mask |= 1ULL << v;
  return match;
}

// ---- Bit-sliced batch kernel (64 trials per word) ------------------------
// The Probe_Tree recursion with an active-lane mask instead of a single
// trial: every lane entering a node probes it, all active lanes evaluate
// the right subtree, and only the lanes whose right-witness color differs
// from their root color descend into the left subtree.  Returns the
// witness-color word for the subtree (valid on the active lanes).  The
// per-lane probed SET is exactly the scalar recursion's, so the bit-sliced
// probe counts match it lane for lane.
std::uint64_t batch_tree_rec(const TreeSystem& tree, Element v,
                             std::uint64_t active, BatchTrialBlock& block) {
  if (active == 0) return 0;
  block.count_probe(active);
  const std::uint64_t color = block.greens(v);
  if (tree.is_leaf(v)) return color;
  const std::uint64_t right =
      batch_tree_rec(tree, TreeSystem::right_child(v), active, block);
  const std::uint64_t agree = ~(right ^ color);
  const std::uint64_t left =
      batch_tree_rec(tree, TreeSystem::left_child(v), active & ~agree, block);
  // Right witness matching the root keeps the root's color; otherwise the
  // overall witness color is the left recursion's (it either matches the
  // root or joins the right witness in the opposite color).
  return (agree & color) | (~agree & left);
}

Witness materialize_mask(const MaskWitness& mw, std::size_t n) {
  Witness w;
  w.color = mw.color;
  w.elements = ElementSet::from_mask(n, mw.mask);
  return w;
}

}  // namespace

Witness ProbeTree::run(ProbeSession& session, Rng& /*rng*/) const {
  return materialize(probe_tree_rec(*tree_, TreeSystem::kRoot, session),
                     tree_->universe_size());
}

Witness ProbeTree::run_with(TrialWorkspace& workspace, ProbeSession& session,
                            Rng& rng) const {
  const std::size_t n = tree_->universe_size();
  if (n > 64) return run(session, rng);
  (void)workspace;
  return materialize_mask(probe_tree_rec_mask(*tree_, TreeSystem::kRoot,
                                              session),
                          n);
}

bool ProbeTree::supports_batch(std::size_t universe_size) const {
  return universe_size == tree_->universe_size() && universe_size <= 64;
}

void ProbeTree::run_batch(BatchTrialBlock& block) const {
  QPS_REQUIRE(block.universe_size() == tree_->universe_size(),
              "batch block over the wrong universe");
  (void)batch_tree_rec(*tree_, TreeSystem::kRoot, block.lanes(), block);
}

Witness RProbeTree::run(ProbeSession& session, Rng& rng) const {
  return materialize(r_probe_tree_rec(*tree_, TreeSystem::kRoot, session, rng),
                     tree_->universe_size());
}

Witness RProbeTree::run_with(TrialWorkspace& workspace, ProbeSession& session,
                             Rng& rng) const {
  const std::size_t n = tree_->universe_size();
  if (n > 64) return run(session, rng);
  (void)workspace;
  return materialize_mask(
      r_probe_tree_rec_mask(*tree_, TreeSystem::kRoot, session, rng), n);
}

}  // namespace qps
