#include "core/algorithms/probe_tree.h"

#include <array>
#include <cstdint>
#include <vector>

#include "core/engine/batch_kernel.h"
#include "core/engine/trial_workspace.h"
#include "util/require.h"

namespace qps {

namespace {

// Internal witnesses use plain element vectors: supports of disjoint
// subtrees never overlap, so concatenation is a disjoint union and the
// final ElementSet is materialized once per run.
struct TreeWitness {
  Color color = Color::kRed;
  std::vector<Element> elems;
};

Witness materialize(const TreeWitness& tw, std::size_t n) {
  Witness w;
  w.color = tw.color;
  w.elements = ElementSet(n);
  for (Element e : tw.elems) w.elements.insert(e);
  return w;
}

TreeWitness leaf_witness(Element v, Color c) {
  return {c, std::vector<Element>{v}};
}

void append(TreeWitness& into, const TreeWitness& from) {
  into.elems.insert(into.elems.end(), from.elems.begin(), from.elems.end());
}

/// Combines subtree witnesses with the probed root into a witness for the
/// whole subtree: {root} + matching subtree quorum, or both subtree quorums.
TreeWitness combine_with_root(Element root, Color root_color,
                              TreeWitness first, TreeWitness second) {
  if (first.color == root_color) {
    first.elems.push_back(root);
    return first;
  }
  if (second.color == root_color) {
    second.elems.push_back(root);
    return second;
  }
  QPS_CHECK(first.color == second.color,
            "subtree witnesses opposing the root must agree");
  append(first, second);
  return first;
}

TreeWitness probe_tree_rec(const TreeSystem& tree, Element v,
                           ProbeSession& session) {
  if (tree.is_leaf(v)) return leaf_witness(v, session.probe(v));
  const Color root_color = session.probe(v);
  TreeWitness right = probe_tree_rec(tree, TreeSystem::right_child(v), session);
  if (right.color == root_color) {
    right.elems.push_back(v);
    return right;
  }
  TreeWitness left = probe_tree_rec(tree, TreeSystem::left_child(v), session);
  return combine_with_root(v, root_color, std::move(right), std::move(left));
}

// R_Probe_Tree pre-draws one plan per internal node, in node-index order,
// BEFORE the recursion starts: the draw sequence is then independent of the
// trial's control flow (which subtrees get visited), so the bit-sliced
// batch path can replicate it lane by lane and stay stream-identical to
// the scalar loop.  Unvisited nodes' plans are simply never read.
class TreePlanBuffer {
 public:
  /// Fills plans[v] = Uniform{0,1,2} for every internal node v (nodes with
  /// children: v < n/2) and returns the buffer.  Stack storage up to 512
  /// internal nodes -- height 9, n = 1023 -- so the n <= 64 hot path stays
  /// allocation-free.
  const std::uint8_t* draw(const TreeSystem& tree, Rng& rng) {
    const std::size_t internal = tree.universe_size() / 2;
    std::uint8_t* plans = stack_.data();
    if (internal > stack_.size()) {
      heap_.resize(internal);
      plans = heap_.data();
    }
    for (std::size_t v = 0; v < internal; ++v)
      plans[v] = static_cast<std::uint8_t>(rng.below(3));
    return plans;
  }

 private:
  std::array<std::uint8_t, 512> stack_;
  std::vector<std::uint8_t> heap_;
};

TreeWitness r_probe_tree_rec(const TreeSystem& tree, Element v,
                             ProbeSession& session,
                             const std::uint8_t* plans) {
  if (tree.is_leaf(v)) return leaf_witness(v, session.probe(v));
  const Element left = TreeSystem::left_child(v);
  const Element right = TreeSystem::right_child(v);
  const std::uint8_t plan = plans[v];
  if (plan == 0 || plan == 1) {
    // Root together with one subtree; the sibling only on a color mismatch.
    const Element primary = plan == 0 ? right : left;
    const Element sibling = plan == 0 ? left : right;
    const Color root_color = session.probe(v);
    TreeWitness first = r_probe_tree_rec(tree, primary, session, plans);
    if (first.color == root_color) {
      first.elems.push_back(v);
      return first;
    }
    TreeWitness second = r_probe_tree_rec(tree, sibling, session, plans);
    return combine_with_root(v, root_color, std::move(first),
                             std::move(second));
  }
  // Both subtrees first; the root only if their witnesses disagree.
  TreeWitness wl = r_probe_tree_rec(tree, left, session, plans);
  TreeWitness wr = r_probe_tree_rec(tree, right, session, plans);
  if (wl.color == wr.color) {
    append(wl, wr);
    return wl;
  }
  const Color root_color = session.probe(v);
  TreeWitness& match = wl.color == root_color ? wl : wr;
  match.elems.push_back(v);
  return std::move(match);
}

// ---- Word-level hot path (n <= 64) --------------------------------------
// Same recursions, but a witness is (color, support bitmask): disjoint
// unions are single ORs and nothing is allocated.  Probe order and Rng
// draws are identical to the vector recursions above, so both entry points
// return the same witness at the same cost for equal generator states.

struct MaskWitness {
  Color color = Color::kRed;
  std::uint64_t mask = 0;
};

MaskWitness combine_with_root_mask(Element root, Color root_color,
                                   MaskWitness first, MaskWitness second) {
  if (first.color == root_color) {
    first.mask |= 1ULL << root;
    return first;
  }
  if (second.color == root_color) {
    second.mask |= 1ULL << root;
    return second;
  }
  QPS_CHECK(first.color == second.color,
            "subtree witnesses opposing the root must agree");
  first.mask |= second.mask;
  return first;
}

MaskWitness probe_tree_rec_mask(const TreeSystem& tree, Element v,
                                ProbeSession& session) {
  if (tree.is_leaf(v)) return {session.probe(v), 1ULL << v};
  const Color root_color = session.probe(v);
  MaskWitness right =
      probe_tree_rec_mask(tree, TreeSystem::right_child(v), session);
  if (right.color == root_color) {
    right.mask |= 1ULL << v;
    return right;
  }
  MaskWitness left =
      probe_tree_rec_mask(tree, TreeSystem::left_child(v), session);
  return combine_with_root_mask(v, root_color, right, left);
}

MaskWitness r_probe_tree_rec_mask(const TreeSystem& tree, Element v,
                                  ProbeSession& session,
                                  const std::uint8_t* plans) {
  if (tree.is_leaf(v)) return {session.probe(v), 1ULL << v};
  const Element left = TreeSystem::left_child(v);
  const Element right = TreeSystem::right_child(v);
  const std::uint8_t plan = plans[v];
  if (plan == 0 || plan == 1) {
    const Element primary = plan == 0 ? right : left;
    const Element sibling = plan == 0 ? left : right;
    const Color root_color = session.probe(v);
    MaskWitness first = r_probe_tree_rec_mask(tree, primary, session, plans);
    if (first.color == root_color) {
      first.mask |= 1ULL << v;
      return first;
    }
    MaskWitness second = r_probe_tree_rec_mask(tree, sibling, session, plans);
    return combine_with_root_mask(v, root_color, first, second);
  }
  MaskWitness wl = r_probe_tree_rec_mask(tree, left, session, plans);
  MaskWitness wr = r_probe_tree_rec_mask(tree, right, session, plans);
  if (wl.color == wr.color) {
    wl.mask |= wr.mask;
    return wl;
  }
  const Color root_color = session.probe(v);
  MaskWitness& match = wl.color == root_color ? wl : wr;
  match.mask |= 1ULL << v;
  return match;
}

Witness materialize_mask(const MaskWitness& mw, std::size_t n) {
  Witness w;
  w.color = mw.color;
  w.elements = ElementSet::from_mask(n, mw.mask);
  return w;
}

}  // namespace

Witness ProbeTree::run(ProbeSession& session, Rng& /*rng*/) const {
  return materialize(probe_tree_rec(*tree_, TreeSystem::kRoot, session),
                     tree_->universe_size());
}

Witness ProbeTree::run_with(TrialWorkspace& workspace, ProbeSession& session,
                            Rng& rng) const {
  const std::size_t n = tree_->universe_size();
  if (n > 64) return run(session, rng);
  (void)workspace;
  return materialize_mask(probe_tree_rec_mask(*tree_, TreeSystem::kRoot,
                                              session),
                          n);
}

bool ProbeTree::supports_batch(std::size_t universe_size) const {
  return universe_size == tree_->universe_size();
}

void ProbeTree::run_batch(BatchTrialBlock& block, Rng& /*rng*/) const {
  QPS_REQUIRE(block.universe_size() == tree_->universe_size(),
              "batch block over the wrong universe");
  block.kernels().tree_scan(block.view());
}

Witness RProbeTree::run(ProbeSession& session, Rng& rng) const {
  TreePlanBuffer plans;
  return materialize(r_probe_tree_rec(*tree_, TreeSystem::kRoot, session,
                                      plans.draw(*tree_, rng)),
                     tree_->universe_size());
}

Witness RProbeTree::run_with(TrialWorkspace& workspace, ProbeSession& session,
                             Rng& rng) const {
  const std::size_t n = tree_->universe_size();
  TreePlanBuffer plans;
  const std::uint8_t* drawn = plans.draw(*tree_, rng);
  if (n > 64)
    return materialize(r_probe_tree_rec(*tree_, TreeSystem::kRoot, session,
                                        drawn),
                       n);
  (void)workspace;
  return materialize_mask(
      r_probe_tree_rec_mask(*tree_, TreeSystem::kRoot, session, drawn), n);
}

bool RProbeTree::supports_batch(std::size_t universe_size) const {
  return universe_size == tree_->universe_size();
}

void RProbeTree::run_batch(BatchTrialBlock& block, Rng& rng) const {
  const std::size_t n = tree_->universe_size();
  QPS_REQUIRE(block.universe_size() == n,
              "batch block over the wrong universe");
  // Pre-draw every lane's plans, in trial order then node order -- the
  // exact draws the scalar entry points make per trial -- into per-node
  // lane-mask triples: bit t of plans[(v*3 + p)*W + t/64] says lane t
  // picked plan p at node v.
  const std::size_t internal = n / 2;
  const std::size_t w = block.width();
  std::uint64_t* plans = block.plan_masks(internal * 3 * w);
  for (std::size_t t = 0; t < block.trial_count(); ++t) {
    const std::size_t kw = t / 64;
    const std::uint64_t bit = 1ULL << (t % 64);
    for (std::size_t v = 0; v < internal; ++v)
      plans[(v * 3 + rng.below(3)) * w + kw] |= bit;
  }
  block.kernels().rtree_scan(block.view(), plans);
}

}  // namespace qps
