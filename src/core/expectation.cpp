#include "core/expectation.h"

#include <unordered_map>
#include <vector>

#include "core/formulas.h"
#include "util/require.h"

namespace qps {

double r_probe_maj_expectation(const MajoritySystem& system,
                               const Coloring& coloring) {
  return r_probe_maj_expected(system.universe_size(), coloring.red_count())
      .to_double();
}

double r_probe_cw_expectation(const CrumblingWall& wall,
                              const Coloring& coloring) {
  QPS_REQUIRE(coloring.universe_size() == wall.universe_size(),
              "coloring over the wrong universe");
  double total = 0.0;
  for (std::size_t row = wall.row_count(); row-- > 0;) {
    std::size_t greens = 0, reds = 0;
    for (Element e = wall.row_begin(row); e < wall.row_end(row); ++e) {
      if (coloring.color(e) == Color::kGreen)
        ++greens;
      else
        ++reds;
    }
    if (greens == 0 || reds == 0) {
      // Monochromatic row: the scan exhausts it and stops.
      total += static_cast<double>(greens + reds);
      return total;
    }
    // Lemma 2.9: expected draws until both colors are seen.
    const auto g = static_cast<double>(greens);
    const auto r = static_cast<double>(reds);
    total += 1.0 + r / (g + 1.0) + g / (r + 1.0);
  }
  QPS_CHECK(false, "the width-1 top row is always monochromatic");
  return total;
}

namespace {

// ------------------------------------------------------------ R_Probe_Tree

struct TreeEval {
  bool live = false;    // does the subtree contain a green quorum?
  double cost = 0.0;    // E[probes] of r_probe_tree on the subtree
};

TreeEval tree_eval(const TreeSystem& tree, Element v,
                   const Coloring& coloring) {
  const bool root_green = coloring.color(v) == Color::kGreen;
  if (tree.is_leaf(v)) return {root_green, 1.0};
  const TreeEval left = tree_eval(tree, TreeSystem::left_child(v), coloring);
  const TreeEval right = tree_eval(tree, TreeSystem::right_child(v), coloring);
  TreeEval out;
  out.live = (left.live && right.live) ||
             (root_green && (left.live || right.live));
  // Witness colors equal the subtree liveness; the root's probed color is
  // the element's own color.
  const bool cl = left.live, cr = right.live;
  const double plan_right =
      1.0 + right.cost + (cr == root_green ? 0.0 : left.cost);
  const double plan_left =
      1.0 + left.cost + (cl == root_green ? 0.0 : right.cost);
  const double plan_both =
      left.cost + right.cost + (cl == cr ? 0.0 : 1.0);
  out.cost = (plan_right + plan_left + plan_both) / 3.0;
  return out;
}

// ------------------------------------------------------- HQS gate values

struct HqsNode {
  std::size_t level;
  std::size_t index;
};

bool hqs_value(const HQSystem& hqs, const Coloring& coloring,
               std::size_t level, std::size_t index,
               std::vector<std::unordered_map<std::size_t, bool>>& memo) {
  if (level == 0)
    return coloring.color(static_cast<Element>(index)) == Color::kGreen;
  auto& level_memo = memo[level];
  const auto it = level_memo.find(index);
  if (it != level_memo.end()) return it->second;
  int ones = 0;
  for (std::size_t c = 0; c < 3; ++c)
    if (hqs_value(hqs, coloring, level - 1, index * 3 + c, memo)) ++ones;
  const bool value = ones >= 2;
  level_memo.emplace(index, value);
  return value;
}

// ------------------------------------------------------------ R_Probe_HQS

double r_hqs_cost(const HQSystem& hqs, const Coloring& coloring,
                  std::size_t level, std::size_t index,
                  std::vector<std::unordered_map<std::size_t, bool>>& values) {
  if (level == 0) return 1.0;
  bool b[3];
  double cost[3];
  for (std::size_t c = 0; c < 3; ++c) {
    b[c] = hqs_value(hqs, coloring, level - 1, index * 3 + c, values);
    cost[c] = r_hqs_cost(hqs, coloring, level - 1, index * 3 + c, values);
  }
  // The first two evaluated children form a uniform unordered pair.
  double total = 0.0;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = i + 1; j < 3; ++j) {
      const std::size_t k = 3 - i - j;
      total += cost[i] + cost[j] + (b[i] != b[j] ? cost[k] : 0.0);
    }
  return total / 3.0;
}

// ----------------------------------------------------------- IR_Probe_HQS

class IrEvaluator {
 public:
  IrEvaluator(const HQSystem& hqs, const Coloring& coloring)
      : hqs_(&hqs), coloring_(&coloring), values_(hqs.height() + 1) {}

  /// E[probes] of IR_Probe_HQS's recursive evaluation of a node.
  double ir_cost(std::size_t level, std::size_t index) {
    if (level <= 1) return full_eval_cost(level, index);
    const auto key = level * 1000003 + index;
    const auto it = ir_memo_.find(key);
    if (it != ir_memo_.end()) return it->second;

    double total = 0.0;
    const std::size_t child[3] = {index * 3, index * 3 + 1, index * 3 + 2};
    for (std::size_t a = 0; a < 3; ++a) {        // r1 choice, prob 1/3
      const bool v1 = value(level - 1, child[a]);
      const double c1 = full_eval_cost(level - 1, child[a]);
      for (std::size_t pick = 0; pick < 2; ++pick) {  // r2 choice, prob 1/2
        const std::size_t bidx = (a + 1 + pick) % 3;
        const std::size_t cidx = (a + 1 + (1 - pick)) % 3;
        const std::size_t r2 = child[bidx];
        const std::size_t r3 = child[cidx];
        const bool v3 = value(level - 1, r3);
        const double c3 = full_eval_cost(level - 1, r3);
        const std::size_t grand[3] = {r2 * 3, r2 * 3 + 1, r2 * 3 + 2};
        for (std::size_t g = 0; g < 3; ++g) {    // grandchild peek, prob 1/3
          const bool gv = value(level - 2, grand[g]);
          const double gc = ir_cost(level - 2, grand[g]);
          double branch = c1 + gc;
          const bool v2 = value(level - 1, r2);
          const double completion = completion_cost(level, grand, g);
          if (gv == v1) {
            branch += completion;                 // step 5: finish r2
            if (v2 != v1) branch += c3;           // tie broken by r3
          } else {
            branch += c3;                         // step 6: r3 first
            if (v3 != v1) branch += completion;   // then finish r2
          }
          total += branch / (3.0 * 2.0 * 3.0);
        }
      }
    }
    ir_memo_.emplace(key, total);
    return total;
  }

 private:
  bool value(std::size_t level, std::size_t index) {
    return hqs_value(*hqs_, *coloring_, level, index, values_);
  }

  /// E[probes] of "evaluate node": random child order, 2-of-3 shortcut,
  /// children evaluated with ir_cost.
  double full_eval_cost(std::size_t level, std::size_t index) {
    if (level == 0) return 1.0;
    const auto key = level * 1000003 + index;
    const auto it = full_memo_.find(key);
    if (it != full_memo_.end()) return it->second;
    bool b[3];
    double cost[3];
    for (std::size_t c = 0; c < 3; ++c) {
      b[c] = value(level - 1, index * 3 + c);
      cost[c] = ir_cost(level - 1, index * 3 + c);
    }
    double total = 0.0;
    for (std::size_t i = 0; i < 3; ++i)
      for (std::size_t j = i + 1; j < 3; ++j) {
        const std::size_t k = 3 - i - j;
        total += cost[i] + cost[j] + (b[i] != b[j] ? cost[k] : 0.0);
      }
    total /= 3.0;
    full_memo_.emplace(key, total);
    return total;
  }

  /// E[probes] to finish evaluating r2 after its grandchild `grand[g]` is
  /// known: visit the two remaining grandchildren in random order with the
  /// 2-of-3 shortcut.
  double completion_cost(std::size_t level, const std::size_t grand[3],
                         std::size_t g) {
    const std::size_t r0 = grand[(g + 1) % 3];
    const std::size_t r1 = grand[(g + 2) % 3];
    const bool gv = value(level - 2, grand[g]);
    const bool b0 = value(level - 2, r0);
    const bool b1 = value(level - 2, r1);
    const double c0 = ir_cost(level - 2, r0);
    const double c1 = ir_cost(level - 2, r1);
    const double order_a = c0 + (b0 == gv ? 0.0 : c1);
    const double order_b = c1 + (b1 == gv ? 0.0 : c0);
    return (order_a + order_b) / 2.0;
  }

  const HQSystem* hqs_;
  const Coloring* coloring_;
  std::vector<std::unordered_map<std::size_t, bool>> values_;
  std::unordered_map<std::size_t, double> ir_memo_;
  std::unordered_map<std::size_t, double> full_memo_;
};

}  // namespace

double r_probe_tree_expectation(const TreeSystem& tree,
                                const Coloring& coloring) {
  QPS_REQUIRE(coloring.universe_size() == tree.universe_size(),
              "coloring over the wrong universe");
  return tree_eval(tree, TreeSystem::kRoot, coloring).cost;
}

double r_probe_hqs_expectation(const HQSystem& hqs, const Coloring& coloring) {
  QPS_REQUIRE(coloring.universe_size() == hqs.universe_size(),
              "coloring over the wrong universe");
  std::vector<std::unordered_map<std::size_t, bool>> values(hqs.height() + 1);
  return r_hqs_cost(hqs, coloring, hqs.height(), 0, values);
}

double ir_probe_hqs_expectation(const HQSystem& hqs,
                                const Coloring& coloring) {
  QPS_REQUIRE(coloring.universe_size() == hqs.universe_size(),
              "coloring over the wrong universe");
  IrEvaluator evaluator(hqs, coloring);
  return evaluator.ir_cost(hqs.height(), 0);
}

}  // namespace qps
