#include "core/obs/metrics.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/fsio.h"
#include "util/json.h"

namespace qps::obs {

std::uint64_t monotonic_us() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::size_t counter_shard() noexcept {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t shard =
      next.fetch_add(1, std::memory_order_relaxed) % kCounterShards;
  return shard;
}

// Instruments live in deques (stable addresses) indexed by name maps; the
// mutex guards registration and snapshot iteration only -- instrument
// reads and writes are lock-free atomics.
struct MetricsRegistry::Impl {
  mutable std::mutex mutex;
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, Counter*> counter_by_name;
  std::map<std::string, Gauge*> gauge_by_name;
  std::map<std::string, Histogram*> histogram_by_name;

  bool name_taken(const std::string& name) const {
    return counter_by_name.count(name) != 0 ||
           gauge_by_name.count(name) != 0 ||
           histogram_by_name.count(name) != 0;
  }
};

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  // Intentionally leaked: instruments are first registered from arbitrary
  // points in the run, which can be after a client registered an atexit
  // snapshot writer -- a destroyed registry under that writer would be a
  // use-after-free.  The process exit reclaims the memory.
  static Impl* impl = new Impl;
  return *impl;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.counter_by_name.find(name);
  if (it != i.counter_by_name.end()) return *it->second;
  if (i.name_taken(name))
    throw std::logic_error("metric '" + name +
                           "' already registered as another kind");
  i.counters.emplace_back(name);
  return *(i.counter_by_name[name] = &i.counters.back());
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.gauge_by_name.find(name);
  if (it != i.gauge_by_name.end()) return *it->second;
  if (i.name_taken(name))
    throw std::logic_error("metric '" + name +
                           "' already registered as another kind");
  i.gauges.emplace_back(name);
  return *(i.gauge_by_name[name] = &i.gauges.back());
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  const auto it = i.histogram_by_name.find(name);
  if (it != i.histogram_by_name.end()) return *it->second;
  if (i.name_taken(name))
    throw std::logic_error("metric '" + name +
                           "' already registered as another kind");
  i.histograms.emplace_back(name);
  return *(i.histogram_by_name[name] = &i.histograms.back());
}

std::string MetricsRegistry::snapshot_json() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::ostringstream out;
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : i.counter_by_name) {
    out << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
        << counter->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : i.gauge_by_name) {
    out << (first ? "" : ",") << "\n    " << json_quote(name) << ": "
        << gauge->value();
    first = false;
  }
  out << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, histogram] : i.histogram_by_name) {
    out << (first ? "" : ",") << "\n    " << json_quote(name)
        << ": {\"count\": " << histogram->count()
        << ", \"sum\": " << histogram->sum() << ", \"buckets\": [";
    std::size_t last = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b)
      if (histogram->bucket_count(b) != 0) last = b;
    for (std::size_t b = 0; b <= last; ++b)
      out << (b ? "," : "") << histogram->bucket_count(b);
    out << "]}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "}\n}\n";
  return out.str();
}

bool MetricsRegistry::write_json(const std::string& path) const {
  // Atomic replace: a reader (the distributed-smoke watcher, an operator's
  // `watch cat`) polling the file mid-dump must never see a torn snapshot,
  // and a crash mid-write must leave the previous snapshot intact.
  return util::write_file_atomic(path, snapshot_json());
}

struct PeriodicMetricsDump::Impl {
  std::string path;
  double interval_seconds;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop = false;
  std::thread thread;
};

PeriodicMetricsDump::PeriodicMetricsDump(std::string path,
                                         double interval_seconds)
    : impl_(new Impl{std::move(path), interval_seconds, {}, {}, false, {}}) {
  MetricsRegistry::instance().write_json(impl_->path);
  impl_->thread = std::thread([impl = impl_] {
    std::unique_lock<std::mutex> lock(impl->mutex);
    const auto interval = std::chrono::duration<double>(
        impl->interval_seconds > 0 ? impl->interval_seconds : 5.0);
    while (!impl->cv.wait_for(lock, interval, [impl] { return impl->stop; }))
      MetricsRegistry::instance().write_json(impl->path);
  });
}

PeriodicMetricsDump::~PeriodicMetricsDump() {
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop = true;
  }
  impl_->cv.notify_one();
  impl_->thread.join();
  MetricsRegistry::instance().write_json(impl_->path);
  delete impl_;
}

}  // namespace qps::obs
