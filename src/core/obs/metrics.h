// Low-overhead metrics for the engine, sweep, and distributed fabric.
//
// MetricsRegistry is a process-global name -> instrument table holding
// three instrument kinds:
//
//  * Counter -- a monotonically increasing sum, sharded across
//    cache-line-padded atomics (one shard per writer thread, assigned on
//    first use) so the Monte-Carlo hot path increments without ever
//    bouncing a cache line between workers.  Reads merge the shards.
//  * Gauge -- a single signed last-written value (queue depths, frontier
//    bytes); writers overwrite, readers load.
//  * Histogram -- fixed log2 buckets over uint64 samples (bucket i holds
//    the values of bit width i, bucket 0 holds zero, the last bucket is
//    the overflow sink), plus a running count and sum.  Recording is two
//    relaxed fetch_adds: safe from any thread, never allocating.
//
// Instruments register on first use (normally from a function-local static
// reference, i.e. at first call or static init) and live forever; the
// returned references stay valid for the life of the process, so hot paths
// hold plain references and pay no lookup.  snapshot_json() renders every
// instrument through the util/json conventions for --metrics-json dumps.
//
// Kill switches: compiling with QPS_OBS_METRICS=0 turns every write into a
// no-op the optimizer deletes (the registry and accessors stay, so call
// sites need no #ifdefs); there is deliberately no runtime switch on the
// write path -- a branch per increment would cost more than the increment.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#ifndef QPS_OBS_METRICS
#define QPS_OBS_METRICS 1
#endif

namespace qps::obs {

/// True when metric writes are compiled in (QPS_OBS_METRICS != 0).
inline constexpr bool kMetricsCompiled = QPS_OBS_METRICS != 0;

/// Monotonic microseconds since an arbitrary process-local epoch; the
/// clock behind every duration instrument and the trace recorder.
std::uint64_t monotonic_us() noexcept;

/// Writer shard of the calling thread, assigned round-robin on first use;
/// shared by every Counter so each thread costs one TLS slot total.
std::size_t counter_shard() noexcept;

inline constexpr std::size_t kCounterShards = 16;
inline constexpr std::size_t kCacheLineBytes = 64;

struct alignas(kCacheLineBytes) PaddedCounterCell {
  std::atomic<std::uint64_t> value{0};
};

class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t delta) noexcept {
    if constexpr (kMetricsCompiled)
      shards_[counter_shard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
    else
      (void)delta;
  }
  void increment() noexcept { add(1); }

  /// The merged total over all writer shards.
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const PaddedCounterCell& shard : shards_)
      total += shard.value.load(std::memory_order_relaxed);
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  PaddedCounterCell shards_[kCounterShards];
};

class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(std::int64_t value) noexcept {
    if constexpr (kMetricsCompiled)
      value_.value.store(value, std::memory_order_relaxed);
    else
      (void)value;
  }
  void add(std::int64_t delta) noexcept {
    if constexpr (kMetricsCompiled)
      value_.value.fetch_add(delta, std::memory_order_relaxed);
    else
      (void)delta;
  }

  std::int64_t value() const noexcept {
    return value_.value.load(std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  struct alignas(kCacheLineBytes) Cell {
    std::atomic<std::int64_t> value{0};
  };
  std::string name_;
  Cell value_;
};

class Histogram {
 public:
  /// Bucket 0 holds the value 0, bucket i in [1, kBuckets-2] holds the
  /// values of bit width i (i.e. [2^(i-1), 2^i - 1]), and the last bucket
  /// is the overflow sink for everything of bit width >= kBuckets-1.
  static constexpr std::size_t kBuckets = 40;

  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  static std::size_t bucket_index(std::uint64_t value) noexcept {
    if (value == 0) return 0;
    std::size_t width = 0;
    while (value != 0) {
      ++width;
      value >>= 1;
    }
    return width < kBuckets - 1 ? width : kBuckets - 1;
  }
  /// Smallest value landing in bucket `i` (0 for the zero bucket).
  static std::uint64_t bucket_lower_bound(std::size_t i) noexcept {
    return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
  }

  void record(std::uint64_t value) noexcept {
    if constexpr (kMetricsCompiled) {
      buckets_[bucket_index(value)].fetch_add(1, std::memory_order_relaxed);
      sum_.fetch_add(value, std::memory_order_relaxed);
    } else {
      (void)value;
    }
  }

  std::uint64_t bucket_count(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const noexcept {
    std::uint64_t total = 0;
    for (const auto& bucket : buckets_)
      total += bucket.load(std::memory_order_relaxed);
    return total;
  }
  std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  double mean() const noexcept {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  /// The instrument registered under `name`, created on first use.  The
  /// returned reference is valid for the life of the process.  One name
  /// holds one instrument kind; asking for the same name as a different
  /// kind throws std::logic_error.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Every instrument's current value as one JSON object:
  ///   {"counters": {name: total},
  ///    "gauges": {name: value},
  ///    "histograms": {name: {"count": n, "sum": s, "buckets": [c0, ...]}}}
  /// Histogram bucket arrays are trimmed after the last non-empty bucket.
  std::string snapshot_json() const;

  /// snapshot_json() to `path`; false (with the file possibly truncated)
  /// on I/O failure.
  bool write_json(const std::string& path) const;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

/// Background thread dumping MetricsRegistry::snapshot_json() to `path`
/// every `interval_seconds` (and once on construction, so the file exists
/// even if the process is killed immediately).  Destruction stops the
/// thread and writes one final snapshot.
class PeriodicMetricsDump {
 public:
  PeriodicMetricsDump(std::string path, double interval_seconds);
  ~PeriodicMetricsDump();
  PeriodicMetricsDump(const PeriodicMetricsDump&) = delete;
  PeriodicMetricsDump& operator=(const PeriodicMetricsDump&) = delete;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace qps::obs
