#include "core/obs/trace.h"

#include <unistd.h>

#include <algorithm>
#include <memory>
#include <mutex>
#include <sstream>
#include <vector>

#include "core/obs/metrics.h"
#include "util/fsio.h"
#include "util/json.h"

namespace qps::obs {

namespace {

/// Sentinel duration marking an instant event ("ph":"i").
constexpr std::uint64_t kInstantDuration = ~std::uint64_t{0};

struct Event {
  const char* name;
  const char* category;
  std::uint64_t start_us;
  std::uint64_t duration_us;
};

/// One thread's buffer.  The owning thread appends under the ring mutex
/// (uncontended except against a concurrent to_json/clear); capacity is
/// reserved up front so appends never allocate.
struct Ring {
  explicit Ring(std::uint32_t tid_in) : tid(tid_in) {
    events.reserve(TraceRecorder::kRingCapacity);
  }
  std::mutex mutex;
  std::vector<Event> events;
  std::uint64_t dropped = 0;
  std::uint32_t tid;
};

}  // namespace

struct TraceRecorder::Impl {
  std::mutex mutex;                          // guards the ring list
  std::vector<std::unique_ptr<Ring>> rings;  // rings outlive their threads

  Ring& ring_for_this_thread() {
    thread_local Ring* ring = nullptr;
    if (ring == nullptr) {
      std::lock_guard<std::mutex> lock(mutex);
      rings.push_back(
          std::make_unique<Ring>(static_cast<std::uint32_t>(rings.size() + 1)));
      ring = rings.back().get();
    }
    return *ring;
  }

  void append(const Event& event) {
    Ring& ring = ring_for_this_thread();
    std::lock_guard<std::mutex> lock(ring.mutex);
    if (ring.events.size() >= TraceRecorder::kRingCapacity) {
      ++ring.dropped;
      return;
    }
    ring.events.push_back(event);
  }
};

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

TraceRecorder::Impl& TraceRecorder::impl() const {
  // Intentionally leaked: rings are first created by whichever thread
  // records first, which can be after a client registered an atexit trace
  // writer -- a destroyed ring list under that writer would be a
  // use-after-free.  The process exit reclaims the memory.
  static Impl* impl = new Impl;
  return *impl;
}

std::uint64_t TraceSpan::now_us() noexcept { return monotonic_us(); }

void TraceRecorder::record_span(const char* name, const char* category,
                                std::uint64_t start_us,
                                std::uint64_t duration_us) noexcept {
  if (!enabled()) return;
  if (duration_us == kInstantDuration) --duration_us;  // keep the sentinel
  impl().append({name, category, start_us, duration_us});
}

void TraceRecorder::record_instant(const char* name,
                                   const char* category) noexcept {
  if (!enabled()) return;
  impl().append({name, category, monotonic_us(), kInstantDuration});
}

std::string TraceRecorder::to_json() const {
  struct Tagged {
    Event event;
    std::uint32_t tid;
  };
  std::vector<Tagged> all;
  {
    Impl& i = impl();
    std::lock_guard<std::mutex> lock(i.mutex);
    for (const auto& ring : i.rings) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      for (const Event& event : ring->events)
        all.push_back({event, ring->tid});
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const Tagged& a, const Tagged& b) {
                     return a.event.start_us < b.event.start_us;
                   });

  const int pid = static_cast<int>(::getpid());
  std::ostringstream out;
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  for (std::size_t k = 0; k < all.size(); ++k) {
    const Event& e = all[k].event;
    out << (k ? ",\n" : "\n") << "{\"name\": " << json_quote(e.name)
        << ", \"cat\": " << json_quote(e.category) << ", \"ph\": ";
    if (e.duration_us == kInstantDuration)
      out << "\"i\", \"s\": \"t\"";
    else
      out << "\"X\", \"dur\": " << e.duration_us;
    out << ", \"ts\": " << e.start_us << ", \"pid\": " << pid
        << ", \"tid\": " << all[k].tid << "}";
  }
  out << (all.empty() ? "" : "\n") << "]}\n";
  return out.str();
}

bool TraceRecorder::write_json(const std::string& path) const {
  // Atomic replace so a crash mid-write cannot leave a truncated trace
  // that chrome://tracing rejects wholesale.
  return util::write_file_atomic(path, to_json());
}

void TraceRecorder::clear() {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  for (const auto& ring : i.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    ring->events.clear();
    ring->dropped = 0;
  }
}

std::uint64_t TraceRecorder::dropped() const noexcept {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::uint64_t total = 0;
  for (const auto& ring : i.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->dropped;
  }
  return total;
}

std::size_t TraceRecorder::event_count() const {
  Impl& i = impl();
  std::lock_guard<std::mutex> lock(i.mutex);
  std::size_t total = 0;
  for (const auto& ring : i.rings) {
    std::lock_guard<std::mutex> ring_lock(ring->mutex);
    total += ring->events.size();
  }
  return total;
}

}  // namespace qps::obs
