// Trace-span recording in Chrome/Perfetto trace_event JSON.
//
// TraceRecorder collects complete spans ("ph":"X") and instant events
// ("ph":"i") into fixed-capacity per-thread ring buffers; to_json()
// merges every thread's events, sorted by timestamp, into one
// {"traceEvents": [...]} document that chrome://tracing and
// https://ui.perfetto.dev open directly.
//
// The hot-path contract mirrors the metrics registry:
//
//  * Compile-time kill switch: with QPS_OBS_TRACE=0 the QPS_TRACE_SPAN
//    macro expands to nothing and enabled() is a constant false, so every
//    instrumented scope compiles to exactly the uninstrumented code.
//  * Runtime kill switch: recording is off until enable(); a disabled
//    span construction is one relaxed atomic load and no clock read.
//  * Bounded memory: each thread buffer holds kRingCapacity events; once
//    full, new events are dropped (and counted) rather than grown -- a
//    runaway span site can cost accuracy, never memory or latency.
//
// Spans never affect the traced computation (no RNG, no allocation on the
// recording path after a ring's first event, timestamps only), which is
// what lets CI demand byte-identical sweep output with tracing on and off.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#ifndef QPS_OBS_TRACE
#define QPS_OBS_TRACE 1
#endif

namespace qps::obs {

/// True when trace spans are compiled in (QPS_OBS_TRACE != 0).
inline constexpr bool kTraceCompiled = QPS_OBS_TRACE != 0;

class TraceRecorder {
 public:
  /// Events kept per thread before new ones are dropped.
  static constexpr std::size_t kRingCapacity = 1 << 16;

  static TraceRecorder& instance();

  void enable() noexcept {
    enabled_flag().store(true, std::memory_order_relaxed);
  }
  void disable() noexcept {
    enabled_flag().store(false, std::memory_order_relaxed);
  }
  /// The one check on the hot path: constant false when compiled out.
  static bool enabled() noexcept {
    if constexpr (kTraceCompiled)
      return enabled_flag().load(std::memory_order_relaxed);
    else
      return false;
  }

  /// Records one complete span.  `name` and `category` must be string
  /// literals (or otherwise outlive the recorder): only the pointers are
  /// stored.
  void record_span(const char* name, const char* category,
                   std::uint64_t start_us, std::uint64_t duration_us) noexcept;
  /// Records one instant event at the current time.
  void record_instant(const char* name, const char* category) noexcept;

  /// Every recorded event as one Chrome trace_event JSON document,
  /// sorted by timestamp.
  std::string to_json() const;
  /// to_json() to `path`; false on I/O failure.
  bool write_json(const std::string& path) const;

  /// Discards every recorded event (buffers stay registered).
  void clear();
  /// Events dropped across all threads because a ring was full.
  std::uint64_t dropped() const noexcept;
  /// Events currently held across all threads.
  std::size_t event_count() const;

 private:
  TraceRecorder() = default;
  static std::atomic<bool>& enabled_flag() noexcept {
    static std::atomic<bool> flag{false};
    return flag;
  }
  struct Impl;
  Impl& impl() const;
};

/// RAII span: stamps the start on construction (when recording is on) and
/// records the completed span on destruction.  Use through QPS_TRACE_SPAN.
class TraceSpan {
 public:
  TraceSpan(const char* name, const char* category) noexcept {
    if (TraceRecorder::enabled()) {
      name_ = name;
      category_ = category;
      start_us_ = now_us();
    }
  }
  ~TraceSpan() {
    if (name_ != nullptr)
      TraceRecorder::instance().record_span(name_, category_, start_us_,
                                            now_us() - start_us_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  static std::uint64_t now_us() noexcept;

  const char* name_ = nullptr;
  const char* category_ = nullptr;
  std::uint64_t start_us_ = 0;
};

}  // namespace qps::obs

#if QPS_OBS_TRACE
#define QPS_OBS_CONCAT_INNER(a, b) a##b
#define QPS_OBS_CONCAT(a, b) QPS_OBS_CONCAT_INNER(a, b)
/// Scoped span covering the rest of the enclosing block.
#define QPS_TRACE_SPAN(name, category) \
  ::qps::obs::TraceSpan QPS_OBS_CONCAT(qps_trace_span_, __COUNTER__)( \
      name, category)
#else
#define QPS_TRACE_SPAN(name, category) \
  do {                                 \
  } while (false)
#endif
