// Closed-form / recursive expressions from the paper for the expected probe
// counts of the specific algorithms, used to cross-validate the Monte-Carlo
// measurements and to print "paper" columns in the benches.
//
// All of these are exact (not asymptotic bounds) unless stated otherwise.
#pragma once

#include <cstddef>
#include <vector>

#include "math/rational.h"

namespace qps {

/// Exact E[probes] of Probe_Maj on odd n under i.i.d. failure probability p
/// (the grid-walk absorption time with N = (n+1)/2, Prop. 3.2).
double probe_maj_expected(std::size_t n, double p);

/// Exact E[probes] of Probe_CW on a (widths)-wall under i.i.d. p:
///   E = 1 + sum_{i>=2} [ F_{i-1} (1-q^{n_i})/p + (1-F_{i-1}) (1-p^{n_i})/q ]
/// where F_{i-1} is the failure probability of the wall above row i.
double probe_cw_expected(const std::vector<std::size_t>& widths, double p);

/// Thm 3.3's bound 2k - 1 on the same quantity.
double probe_cw_bound(std::size_t rows);

/// Exact E[probes] of Probe_Tree on a height-h tree under i.i.d. p:
///   T(h) = 1 + (1 + q F(h-1) + p (1 - F(h-1))) T(h-1),  T(0) = 1.
double probe_tree_expected(std::size_t height, double p);

/// Exact E[probes] of Probe_HQS on a height-h HQS under i.i.d. p:
///   T(h) = (2 + 2 F(h-1)(1 - F(h-1))) T(h-1),  T(0) = 1.
/// At p = 1/2 this is exactly (5/2)^h (Thm 3.8).
double probe_hqs_expected(std::size_t height, double p);

/// Thm 4.2: exact worst-case expected probes of R_Probe_Maj,
/// n - (n-1)/(n+3), attained on inputs with exactly (n+1)/2 reds.
Rational r_probe_maj_worst_case(std::size_t n);

/// Thm 4.2: exact expected probes of R_Probe_Maj on an input with `reds`
/// red elements (the urn formula (n+1)(k+1)/(max(r,g)+1) with k+1=(n+1)/2).
Rational r_probe_maj_expected(std::size_t n, std::size_t reds);

/// Thm 4.4's worst-case bound for R_Probe_CW:
///   max_j { n_j + sum_{i>j} ((n_i+1)/2 + 1/n_i) }.
double r_probe_cw_bound(const std::vector<std::size_t>& widths);

/// Thm 4.6's lower bound (n+k)/2 for any randomized algorithm on a wall.
double cw_randomized_lower_bound(const std::vector<std::size_t>& widths);

/// Thm 4.7's upper bound 5n/6 + 1/6 for R_Probe_Tree.
double r_probe_tree_bound(std::size_t n);

/// Thm 4.8's lower bound 2(n+1)/3 for any randomized algorithm on Tree.
double tree_randomized_lower_bound(std::size_t n);

/// Paper exponents for the Table 1 rows.
double hqs_ppc_exponent();            // log_3(5/2)  ~ 0.834
double hqs_ppc_low_p_exponent();      // log_3 2     ~ 0.631
double tree_ppc_exponent(double p);   // log_2(1+p)  (0.585 at p = 1/2)
double hqs_r_probe_exponent();        // log_3(8/3)  ~ 0.893
double hqs_ir_probe_exponent();       // log_9 of the measured 2-level
                                      // constant 191/27 (~0.890); see
                                      // EXPERIMENTS.md for the 189.5/27
                                      // discrepancy in the paper.

/// The exact two-level recursion constant of IR_Probe_HQS on the
/// worst-case family P, as implied by Fig. 8 semantics: 191/27.
/// (The paper's Fig. 9 prints 189.5/27; one branch's completion cost of
/// the partially evaluated child is deterministically 2, not 3/2.)
Rational ir_probe_hqs_level_constant();

}  // namespace qps
