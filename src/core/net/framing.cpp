#include "core/net/framing.h"

namespace qps::net {

bool LineReassembler::feed(std::string_view bytes,
                           std::vector<std::string>& lines) {
  if (failed_) return false;
  while (!bytes.empty()) {
    const std::size_t newline = bytes.find('\n');
    if (newline == std::string_view::npos) {
      buffer_.append(bytes);
      break;
    }
    if (buffer_.empty()) {
      lines.emplace_back(bytes.substr(0, newline));
    } else {
      buffer_.append(bytes.substr(0, newline));
      lines.push_back(std::move(buffer_));
      buffer_.clear();
    }
    bytes.remove_prefix(newline + 1);
  }
  if (buffer_.size() > max_line_bytes_) {
    buffer_.clear();
    failed_ = true;
    return false;
  }
  return true;
}

}  // namespace qps::net
