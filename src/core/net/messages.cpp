#include "core/net/messages.h"

#include <exception>

#include "core/sweep/wire.h"

namespace qps::net {

LineKind classify_line(const JsonValue& value) {
  if (value.kind() != JsonValue::Kind::kObject) return LineKind::kUnknown;
  // Order matters: a welcome also carries "qpsnet" (the coordinator's
  // version), so "ok" must be tested before "qpsnet".
  if (value.contains("ok")) return LineKind::kWelcome;
  if (value.contains("qpsnet")) return LineKind::kHello;
  if (value.contains("count")) return LineKind::kResult;
  if (value.contains("hb")) return LineKind::kHeartbeat;
  if (value.contains("bye")) return LineKind::kBye;
  if (value.contains("point")) return LineKind::kRequest;
  return LineKind::kUnknown;
}

std::string encode_hello(const Hello& hello) {
  std::string line = "{\"qpsnet\": " + std::to_string(hello.version) +
                     ", \"node\": " + json_quote(hello.node);
  if (hello.pinned()) {
    line += ", \"sweep\": " + json_quote(hello.sweep) + ", \"fp\": " +
            json_quote(sweep::encode_hex_u64(hello.fingerprint));
  } else {
    line += ", \"evaluators\": [";
    for (std::size_t i = 0; i < hello.evaluators.size(); ++i)
      line += (i ? ", " : "") + json_quote(hello.evaluators[i]);
    line += "]";
  }
  return line + "}\n";
}

std::optional<Hello> decode_hello(const JsonValue& value) {
  try {
    Hello hello;
    hello.version = static_cast<int>(value.at("qpsnet").as_uint64());
    hello.node = value.at("node").as_string();
    if (value.contains("sweep")) {
      hello.sweep = value.at("sweep").as_string();
      const auto fp = sweep::decode_hex_u64(value.at("fp").as_string());
      if (!fp) return std::nullopt;
      hello.fingerprint = *fp;
      if (hello.sweep.empty()) return std::nullopt;
    } else {
      for (const JsonValue& id : value.at("evaluators").as_array())
        hello.evaluators.push_back(id.as_string());
    }
    return hello;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string encode_welcome(const Welcome& welcome) {
  std::string line =
      std::string("{\"ok\": ") + (welcome.ok ? "true" : "false") +
      ", \"qpsnet\": " + std::to_string(welcome.version);
  if (!welcome.ok) {
    line += ", \"error\": " + json_quote(welcome.error) +
            ", \"retry\": " + (welcome.retry ? "true" : "false");
  } else {
    line += ", \"hb\": " + json_number(welcome.heartbeat_seconds) +
            ", \"sweep\": " + json_quote(welcome.sweep) + ", \"fp\": " +
            json_quote(sweep::encode_hex_u64(welcome.fingerprint));
    if (!welcome.evaluator.empty()) {
      // The spec travels as its serialized text re-embedded verbatim; it
      // was produced by spec_to_json and is itself a JSON object.
      line += ", \"evaluator\": " + json_quote(welcome.evaluator) +
              ", \"spec\": " + welcome.spec_text;
    }
  }
  return line + "}\n";
}

std::optional<Welcome> decode_welcome(const JsonValue& value) {
  try {
    Welcome welcome;
    welcome.ok = value.at("ok").as_bool();
    welcome.version = static_cast<int>(value.at("qpsnet").as_uint64());
    if (!welcome.ok) {
      welcome.error = value.at("error").as_string();
      welcome.retry = value.at("retry").as_bool();
      return welcome;
    }
    welcome.heartbeat_seconds = value.at("hb").as_double();
    welcome.sweep = value.at("sweep").as_string();
    const auto fp = sweep::decode_hex_u64(value.at("fp").as_string());
    if (!fp) return std::nullopt;
    welcome.fingerprint = *fp;
    if (value.contains("evaluator")) {
      welcome.evaluator = value.at("evaluator").as_string();
      welcome.spec = value.at("spec");
    }
    return welcome;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string encode_heartbeat() { return "{\"hb\": 1}\n"; }

std::string encode_bye() { return "{\"bye\": true}\n"; }

}  // namespace qps::net
