#include "core/net/messages.h"

#include <exception>

#include "core/sweep/wire.h"

namespace qps::net {

LineKind classify_line(const JsonValue& value) {
  if (value.kind() != JsonValue::Kind::kObject) return LineKind::kUnknown;
  // Order matters: a welcome also carries "qpsnet" (the coordinator's
  // version), so "ok" must be tested before "qpsnet".
  if (value.contains("ok")) return LineKind::kWelcome;
  if (value.contains("qpsnet")) return LineKind::kHello;
  // A notice also carries "point" (which index was quarantined), so it
  // must be tested before the request classification.
  if (value.contains("notice")) return LineKind::kNotice;
  if (value.contains("fence")) return LineKind::kFence;
  if (value.contains("count")) return LineKind::kResult;
  if (value.contains("hb")) return LineKind::kHeartbeat;
  if (value.contains("bye")) return LineKind::kBye;
  if (value.contains("point")) return LineKind::kRequest;
  return LineKind::kUnknown;
}

std::string encode_hello(const Hello& hello) {
  std::string line = "{\"qpsnet\": " + std::to_string(hello.version) +
                     ", \"node\": " + json_quote(hello.node);
  if (hello.pinned()) {
    line += ", \"sweep\": " + json_quote(hello.sweep) + ", \"fp\": " +
            json_quote(sweep::encode_hex_u64(hello.fingerprint));
    if (hello.epoch != 0)
      line += ", \"epoch\": " + std::to_string(hello.epoch);
  } else {
    line += ", \"evaluators\": [";
    for (std::size_t i = 0; i < hello.evaluators.size(); ++i)
      line += (i ? ", " : "") + json_quote(hello.evaluators[i]);
    line += "]";
  }
  return line + "}\n";
}

std::optional<Hello> decode_hello(const JsonValue& value) {
  try {
    Hello hello;
    hello.version = static_cast<int>(value.at("qpsnet").as_uint64());
    hello.node = value.at("node").as_string();
    if (value.contains("sweep")) {
      hello.sweep = value.at("sweep").as_string();
      const auto fp = sweep::decode_hex_u64(value.at("fp").as_string());
      if (!fp) return std::nullopt;
      hello.fingerprint = *fp;
      if (hello.sweep.empty()) return std::nullopt;
      if (value.contains("epoch")) hello.epoch = value.at("epoch").as_uint64();
    } else {
      for (const JsonValue& id : value.at("evaluators").as_array())
        hello.evaluators.push_back(id.as_string());
    }
    return hello;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string encode_welcome(const Welcome& welcome) {
  std::string line =
      std::string("{\"ok\": ") + (welcome.ok ? "true" : "false") +
      ", \"qpsnet\": " + std::to_string(welcome.version);
  if (!welcome.ok) {
    line += ", \"error\": " + json_quote(welcome.error) +
            ", \"retry\": " + (welcome.retry ? "true" : "false");
  } else {
    line += ", \"hb\": " + json_number(welcome.heartbeat_seconds) +
            ", \"sweep\": " + json_quote(welcome.sweep) + ", \"fp\": " +
            json_quote(sweep::encode_hex_u64(welcome.fingerprint));
    if (welcome.epoch != 0)
      line += ", \"epoch\": " + std::to_string(welcome.epoch);
    if (welcome.probation) line += ", \"probation\": true";
    if (!welcome.evaluator.empty()) {
      // The spec travels as its serialized text re-embedded verbatim; it
      // was produced by spec_to_json and is itself a JSON object.
      line += ", \"evaluator\": " + json_quote(welcome.evaluator) +
              ", \"spec\": " + welcome.spec_text;
    }
  }
  return line + "}\n";
}

std::optional<Welcome> decode_welcome(const JsonValue& value) {
  try {
    Welcome welcome;
    welcome.ok = value.at("ok").as_bool();
    welcome.version = static_cast<int>(value.at("qpsnet").as_uint64());
    if (!welcome.ok) {
      welcome.error = value.at("error").as_string();
      welcome.retry = value.at("retry").as_bool();
      return welcome;
    }
    welcome.heartbeat_seconds = value.at("hb").as_double();
    welcome.sweep = value.at("sweep").as_string();
    const auto fp = sweep::decode_hex_u64(value.at("fp").as_string());
    if (!fp) return std::nullopt;
    welcome.fingerprint = *fp;
    if (value.contains("epoch"))
      welcome.epoch = value.at("epoch").as_uint64();
    if (value.contains("probation"))
      welcome.probation = value.at("probation").as_bool();
    if (value.contains("evaluator")) {
      welcome.evaluator = value.at("evaluator").as_string();
      welcome.spec = value.at("spec");
    }
    return welcome;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string encode_notice(const Notice& notice) {
  return "{\"notice\": " + json_quote(notice.kind) +
         ", \"point\": " + std::to_string(notice.index) +
         ", \"id\": " + json_quote(notice.id) +
         ", \"attempts\": " + std::to_string(notice.attempts) + "}\n";
}

std::optional<Notice> decode_notice(const JsonValue& value) {
  try {
    Notice notice;
    notice.kind = value.at("notice").as_string();
    notice.index = static_cast<std::size_t>(value.at("point").as_uint64());
    notice.id = value.at("id").as_string();
    notice.attempts = value.at("attempts").as_uint64();
    return notice;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string encode_fence(const Fence& fence) {
  return "{\"fence\": " + std::to_string(fence.epoch) +
         ", \"sweep\": " + json_quote(fence.sweep) +
         ", \"fp\": " + json_quote(sweep::encode_hex_u64(fence.fingerprint)) +
         ", \"node\": " + json_quote(fence.node) + "}\n";
}

std::optional<Fence> decode_fence(const JsonValue& value) {
  try {
    Fence fence;
    fence.epoch = value.at("fence").as_uint64();
    fence.sweep = value.at("sweep").as_string();
    const auto fp = sweep::decode_hex_u64(value.at("fp").as_string());
    if (!fp) return std::nullopt;
    fence.fingerprint = *fp;
    fence.node = value.at("node").as_string();
    return fence;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string encode_heartbeat() { return "{\"hb\": 1}\n"; }

std::string encode_bye() { return "{\"bye\": true}\n"; }

}  // namespace qps::net
