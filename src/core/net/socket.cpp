#include "core/net/socket.h"

#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace qps::net {

TcpStream& TcpStream::operator=(TcpStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

TcpStream TcpStream::connect(const std::string& host, std::uint16_t port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0)
    return TcpStream();
  TcpStream stream;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      // Protocol frames are single small lines; latency beats throughput.
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      stream = TcpStream(fd);
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return stream;
}

bool TcpStream::send_all(std::string_view bytes) {
  const char* data = bytes.data();
  std::size_t size = bytes.size();
  while (size > 0) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

long TcpStream::read_some(char* data, std::size_t size) {
  for (;;) {
    const ssize_t n = ::recv(fd_, data, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

void TcpStream::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    port_ = other.port_;
    other.fd_ = -1;
    other.port_ = 0;
  }
  return *this;
}

TcpListener TcpListener::bind(std::uint16_t port, const std::string& host) {
  TcpListener listener;
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  addrinfo* result = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &result) != 0)
    return listener;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, ai->ai_addr, ai->ai_addrlen) == 0 &&
        ::listen(fd, SOMAXCONN) == 0) {
      sockaddr_storage bound{};
      socklen_t len = sizeof bound;
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        if (bound.ss_family == AF_INET)
          listener.port_ = ntohs(
              reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
        else if (bound.ss_family == AF_INET6)
          listener.port_ = ntohs(
              reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
      listener.fd_ = fd;
      break;
    }
    ::close(fd);
  }
  ::freeaddrinfo(result);
  return listener;
}

TcpStream TcpListener::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd < 0 && errno == EINTR) continue;
    if (fd < 0) return TcpStream();
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return TcpStream(fd);
  }
}

void TcpListener::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  port_ = 0;
}

}  // namespace qps::net
