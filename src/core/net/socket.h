// Thin RAII wrappers over POSIX TCP sockets.
//
// Just enough surface for the job-server driver and the socket worker:
// a listener that can bind port 0 and report the kernel-chosen port
// (parallel CI jobs never race for a fixed port), a stream with
// whole-buffer sends and EINTR-retried reads, and nothing else.  Errors
// are values, not exceptions: an invalid stream/listener or a false
// send_all is a peer to drop or a dial to retry, exactly like the engine
// layer treats malformed frames.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace qps::net {

class TcpStream {
 public:
  TcpStream() = default;
  /// Adopts an already-connected fd (e.g. from TcpListener::accept).
  explicit TcpStream(int fd) : fd_(fd) {}
  ~TcpStream() { close(); }
  TcpStream(TcpStream&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  TcpStream& operator=(TcpStream&& other) noexcept;
  TcpStream(const TcpStream&) = delete;
  TcpStream& operator=(const TcpStream&) = delete;

  /// Dials host:port (numeric or resolvable name); invalid() on failure.
  static TcpStream connect(const std::string& host, std::uint16_t port);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes the whole buffer (EINTR retried, SIGPIPE suppressed); false on
  /// any other error -- the peer is gone.
  bool send_all(std::string_view bytes);

  /// Reads up to `size` bytes; > 0 bytes read, 0 on orderly EOF, -1 on
  /// error (EINTR retried internally).
  long read_some(char* data, std::size_t size);

  void close();

 private:
  int fd_ = -1;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener() { close(); }
  TcpListener(TcpListener&& other) noexcept
      : fd_(other.fd_), port_(other.port_) {
    other.fd_ = -1;
    other.port_ = 0;
  }
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on `host` (default loopback); `port` 0 asks the
  /// kernel to choose -- read the result back from port().  Invalid() on
  /// failure.
  static TcpListener bind(std::uint16_t port,
                          const std::string& host = "127.0.0.1");

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// The actual bound port (kernel-chosen when bind was called with 0).
  std::uint16_t port() const { return port_; }

  /// Accepts one pending connection; invalid stream on failure.
  TcpStream accept();

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

}  // namespace qps::net
