// Line reassembly for the socket worker protocol.
//
// TCP hands the receiver arbitrary byte chunks: a protocol line may arrive
// in one read, split across dozens, or glued to its neighbours -- and the
// split can land anywhere, including inside a multi-byte UTF-8 sequence or
// halfway through a JSON \uXXXX escape.  LineReassembler accumulates
// chunks and emits complete '\n'-terminated lines (terminator stripped);
// by construction the reassembled line is byte-identical to what the
// sender wrote, whatever the segmentation, so the wire decoders never see
// a partial frame.
//
// A line that grows past `max_line_bytes` without a terminator is a
// protocol violation (a corrupt or hostile peer streaming garbage): feed()
// returns false and the reassembler latches into the failed state until
// reset(), so one oversized frame cannot be mistaken for the prefix of the
// next legitimate one.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace qps::net {

class LineReassembler {
 public:
  explicit LineReassembler(std::size_t max_line_bytes = 1 << 20)
      : max_line_bytes_(max_line_bytes) {}

  /// Appends `bytes`; every completed line (terminator stripped) is
  /// appended to `lines`.  Returns false once the unterminated tail
  /// exceeds max_line_bytes; the reassembler then stays failed (and eats
  /// all further input) until reset().
  bool feed(std::string_view bytes, std::vector<std::string>& lines);

  /// Unterminated bytes currently buffered (a truncated final frame after
  /// EOF shows up here).
  const std::string& partial() const { return buffer_; }

  bool failed() const { return failed_; }

  /// Clears the buffer and the failed latch.
  void reset() {
    buffer_.clear();
    failed_ = false;
  }

 private:
  std::size_t max_line_bytes_;
  std::string buffer_;
  bool failed_ = false;
};

}  // namespace qps::net
