// Control messages of the socket worker protocol.
//
// Every frame on a worker connection is one '\n'-terminated JSON line
// (core/net/framing.h reassembles them).  The request and result frames
// are exactly the pipe protocol's lines (core/sweep/wire.h) -- the socket
// layer adds only connection management:
//
//   worker -> coordinator   HELLO      first line after connect; carries
//                                      the protocol version and either a
//                                      (sweep, fingerprint) pin or the
//                                      worker's evaluator registry
//   coordinator -> worker   WELCOME    accept (heartbeat interval, and for
//                                      registry workers the evaluator id
//                                      plus the serialized spec) or a
//                                      decline with an error and a
//                                      retry/fatal classification
//   worker -> coordinator   HEARTBEAT  liveness while a long evaluation
//                                      keeps the data path silent
//   coordinator -> worker   BYE        sweep complete; the worker
//                                      disconnects cleanly
//   coordinator -> worker   NOTICE     advisory broadcast (currently: a
//                                      point was quarantined), so daemons
//                                      can surface structured events
//   worker -> coordinator   FENCE      the worker knows a newer epoch for
//                                      this sweep than the welcome carried;
//                                      tells a zombie coordinator it has
//                                      been superseded, then disconnects
//
// Epoch fencing: every welcome from a journal-backed coordinator carries
// the activation epoch the worker's results must be stamped with; a
// pinned hello echoes the highest epoch the worker has seen for that
// sweep, so a superseded coordinator learns of its replacement from the
// very first line of a re-dialing worker.
//
// The version field exists so a mixed-version pair fails fast with both
// versions named in the error instead of silently mis-parsing lines; the
// coordinator echoes its own version in every welcome so the check runs
// in both directions.
//
// Frames are classified structurally (classify_line): HELLO is the only
// frame with "qpsnet", WELCOME the only one with "ok", results the only
// ones with "count".  Every decoder returns nullopt on malformed input --
// a garbage or truncated frame is a peer to drop, not a reason to abort.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.h"

namespace qps::net {

/// Bumped on any incompatible wire change (2: epoch fencing, probation,
/// notice/fence frames).
constexpr int kProtocolVersion = 2;

enum class LineKind {
  kHello,
  kWelcome,
  kRequest,
  kResult,
  kHeartbeat,
  kBye,
  kNotice,
  kFence,
  kUnknown,
};

/// Structural classification of a parsed protocol line.
LineKind classify_line(const JsonValue& value);

struct Hello {
  int version = kProtocolVersion;
  std::string node;  ///< Diagnostic worker name (hostname:pid style).
  /// Pinned mode: the worker rebuilt this exact sweep from its own flags.
  /// Empty sweep means registry mode.
  std::string sweep;
  std::uint64_t fingerprint = 0;
  /// Registry mode: evaluator ids the worker can serve
  /// (core/sweep/evaluators.h).
  std::vector<std::string> evaluators;
  /// Pinned mode: highest coordinator epoch the worker has been admitted
  /// under for this sweep (0 = none).  A coordinator receiving a hello
  /// with an epoch above its own has been superseded by a failover and
  /// must stand down.
  std::uint64_t epoch = 0;

  bool pinned() const { return !sweep.empty(); }
};

std::string encode_hello(const Hello& hello);
std::optional<Hello> decode_hello(const JsonValue& value);

struct Welcome {
  bool ok = false;
  int version = kProtocolVersion;
  /// Decline diagnostics: human-readable reason, and whether the worker
  /// may usefully retry later (sweep not active yet) or must give up
  /// (version mismatch, unknown message).
  std::string error;
  bool retry = false;
  /// Accept payload.
  double heartbeat_seconds = 0.0;
  std::string sweep;
  std::uint64_t fingerprint = 0;
  /// Registry workers only: which evaluator to use and the serialized
  /// spec (core/sweep/spec_codec.h) to expand.  The encoder embeds
  /// `spec_text` (spec_to_json output) verbatim; the decoder surfaces the
  /// parsed object in `spec`.
  std::string evaluator;
  std::string spec_text;
  std::optional<JsonValue> spec;
  /// Coordinator activation epoch results must be stamped with (0 = the
  /// coordinator is not journal-backed and runs unfenced).
  std::uint64_t epoch = 0;
  /// The worker's node is on probation (health score below threshold):
  /// it still gets work, but one point at a time behind healthy workers.
  bool probation = false;
};

std::string encode_welcome(const Welcome& welcome);
std::optional<Welcome> decode_welcome(const JsonValue& value);

/// Advisory coordinator -> worker broadcast.
struct Notice {
  std::string kind;  ///< Currently only "quarantine".
  std::size_t index = 0;
  std::string id;
  std::uint64_t attempts = 0;
};

std::string encode_notice(const Notice& notice);
std::optional<Notice> decode_notice(const JsonValue& value);

/// Worker -> coordinator supersession report: the worker has already been
/// admitted under `epoch` for (sweep, fingerprint), which is newer than
/// what this coordinator offered.
struct Fence {
  std::uint64_t epoch = 0;
  std::string sweep;
  std::uint64_t fingerprint = 0;
  std::string node;
};

std::string encode_fence(const Fence& fence);
std::optional<Fence> decode_fence(const JsonValue& value);

std::string encode_heartbeat();
std::string encode_bye();

}  // namespace qps::net
