// TCP drivers for the sweep worker protocol.
//
// Both protocol state machines are transport-free (core/net/job_server.h,
// core/net/worker.h); this header binds them to real sockets:
//
//  * run_socket_sweep() is the coordinator's job-server loop: it polls the
//    listener and every worker connection, feeds the JobServerEngine
//    (reads strictly before timeout ticks, so a hello buffered during a
//    long local evaluation always beats the handshake axe), flushes its
//    outbox, and -- when no worker is serving and local fallback is
//    enabled -- evaluates pending points in-process so the sweep
//    terminates even if every daemon declines or dies.
//  * serve_connection() / serve_pinned_sweep() are the worker's blocking
//    side: hello, welcome, evaluate-request loop until bye, with a
//    background heartbeat thread keeping the coordinator's liveness timer
//    fed through long evaluations.
//  * make_socket_remote_runner() packages the coordinator loop as the
//    sweep::RemoteRunner hook SweepOptions accepts, which is how a bench
//    in --listen mode distributes its sweeps without the sweep layer
//    knowing sockets exist.
//
// Listeners bind port 0 by default and report the kernel-chosen port, so
// parallel CI jobs never race for a fixed port.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/net/job_server.h"
#include "core/net/socket.h"
#include "core/net/worker.h"
#include "core/sweep/sweep_runner.h"

namespace qps::net {

/// Thrown by run_socket_sweep when this coordinator learns it has been
/// superseded by a failover (a worker fence/hello named a newer epoch, or
/// the lease renewal thread saw a newer generation).  The driver must
/// stop coordinating immediately -- a zombie that keeps dispatching could
/// double-assign work the new coordinator already owns.
class CoordinatorSuperseded : public std::runtime_error {
 public:
  CoordinatorSuperseded(const std::string& what, std::uint64_t by_epoch)
      : std::runtime_error(what), by_epoch_(by_epoch) {}
  /// The newer epoch that fenced us out (0 when only the lease knew).
  std::uint64_t by_epoch() const { return by_epoch_; }

 private:
  std::uint64_t by_epoch_;
};

struct SocketCoordinatorOptions {
  JobServerOptions engine;
  /// "host:port" addresses of workers running in --listen mode; dialed
  /// once at startup (a dial failure is a warning, not an error -- workers
  /// in --connect mode arrive through the listener instead).
  std::vector<std::string> dial;
  /// Evaluate pending points in-process while no worker is serving.  Keeps
  /// every sweep live (registry daemons decline sweeps they cannot serve);
  /// tests disable it to prove workers computed everything.
  bool local_fallback = true;
  /// Polled every loop iteration; returning true means an external
  /// authority (the coordinator lease, core/sweep/lease.h) saw this
  /// process superseded.  The loop then drains reads briefly and throws
  /// CoordinatorSuperseded.
  std::function<bool()> superseded_check;
  /// How long to keep reading (counting in-flight fence frames) after
  /// supersession is detected before throwing; gives re-dialing workers a
  /// window to land the fence that proves the takeover in this process's
  /// metrics.
  double superseded_drain_seconds = 0.3;
};

/// Splits "host:port"; false on malformed input.
bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port);

/// Coordinator loop: drives the job-server engine over `listener` until
/// every pending index has a result or is quarantined, invoking `record`
/// exactly once per completed point.  A point that burns its retry budget
/// gets one local last-resort evaluation when options.local_fallback is
/// enabled; only if that throws too (or fallback is disabled) is
/// `quarantine` (when non-null) invoked for it.  `local_eval` is used only
/// for local fallback and the last resort, and only when
/// options.local_fallback.
void run_socket_sweep(TcpListener& listener,
                      const std::vector<sweep::SweepPoint>& points,
                      const std::string& sweep_name, std::uint64_t fingerprint,
                      std::deque<std::size_t> pending,
                      const sweep::PointEvaluator& local_eval,
                      const sweep::RemoteRecord& record,
                      const SocketCoordinatorOptions& options,
                      const sweep::RemoteQuarantine& quarantine = nullptr);

/// The coordinator loop as a sweep-layer hook.  `listener` must outlive
/// the returned runner; when options.engine.evaluator is set and spec_text
/// empty, the spec is serialized automatically per sweep.
sweep::RemoteRunner make_socket_remote_runner(TcpListener* listener,
                                              SocketCoordinatorOptions options);

/// Accepts and immediately declines (retry=true) every connection queued
/// on `listener`, without reading the hello.  A warm standby calls this
/// while waiting for the lease, so workers keep cycling against the
/// listener instead of timing out their dial budgets before takeover.
void decline_queued_connections(TcpListener& listener,
                                const std::string& reason);

enum class ServeOutcome {
  kServedBye,      ///< Clean completion: coordinator said bye.
  kDeclinedRetry,  ///< Declined, worth retrying (sweep not active yet).
  kDeclinedFatal,  ///< Declined for good (version mismatch, bad binder).
  kLost,           ///< Connection or protocol failure mid-serve.
  kConnectFailed,  ///< Dial retries exhausted.
  kFencedStale,    ///< Welcome carried a stale epoch; fence sent, done.
};

/// Worker-side integration hooks, all optional.
struct ServeHooks {
  /// Epoch fencing memory (must outlive the serve): pinned hellos echo the
  /// remembered epoch, accepted welcomes raise it, and a stale welcome is
  /// answered with a fence frame and kFencedStale.
  EpochMemory* epochs = nullptr;
  /// Invoked for every advisory NOTICE frame (quarantine broadcasts).
  std::function<void(const Notice&)> on_notice;
  /// Invoked when a stale-epoch welcome is fenced: the remembered epoch
  /// and the zombie's welcome.
  std::function<void(std::uint64_t known_epoch, const Welcome& welcome)>
      on_fence;
  /// Seconds of total coordinator silence after which the worker abandons
  /// the connection as kLost and (through its retry budget) re-dials.
  /// Essential for failover: a worker blocked in read(2) on a SIGSTOPped
  /// coordinator would otherwise never migrate to the standby.  0 = wait
  /// forever.
  double idle_timeout_seconds = 0.0;
};

struct WorkerServeOptions {
  /// Diagnostic worker name carried in the hello (hostname:pid style).
  std::string node = "worker";
  /// Dial retry budget (the coordinator may not be listening yet).
  int connect_retries = 25;
  double connect_retry_seconds = 0.2;
  /// Retryable-decline budget (a multi-sweep bench's coordinator serves
  /// sweeps in order; a worker ahead of it must wait its turn).
  int decline_retries = 150;
  double decline_retry_seconds = 0.2;
  /// Reconnect budget after a mid-serve connection loss.
  int lost_retries = 3;
  /// Worker-side hooks (epoch memory, notice/fence callbacks, idle
  /// timeout), passed through to every serve_connection.
  ServeHooks hooks;
};

/// Serves one established connection to completion (blocking).  On any
/// decline/loss, `error` (when non-null) receives the reason.
ServeOutcome serve_connection(TcpStream& stream, const Hello& hello,
                              const SweepBinder& binder,
                              std::string* error = nullptr,
                              const ServeHooks& hooks = {});

/// Pinned worker: dials host:port and serves `spec` with `eval`, retrying
/// dials, retryable declines, and lost connections per `options`.
ServeOutcome serve_pinned_sweep(const std::string& host, std::uint16_t port,
                                const sweep::SweepSpec& spec,
                                const sweep::PointEvaluator& eval,
                                const WorkerServeOptions& options);

}  // namespace qps::net
