// Coordinator-side protocol state machine for the socket job-server mode.
//
// JobServerEngine is deliberately transport-free: it consumes connection
// events (open / bytes / close / clock tick) tagged with an opaque
// SessionId and produces outgoing frames plus completed point results.
// The same machine therefore runs over real TCP sockets
// (core/net/socket_sweep.h) and over the in-process simulated network
// (sim/protocol_harness.h), which is how slow joiners, mid-sweep worker
// death, partitions, duplicate deliveries, and truncated frames get full
// ctest coverage without a real host pair.
//
// Scheduling is the pipe runner's dynamic stealing, generalized:
//
//  * Points are handed out one at a time; a worker gets its next point
//    the moment its previous result lands, so a slow point never stalls
//    the grid.
//  * Workers may join at any moment mid-sweep (slow joiners): a session
//    becomes eligible the instant its handshake completes.
//  * A session that dies, times out (no bytes for worker_timeout while
//    busy -- heartbeats count), violates the protocol, or feeds garbage
//    forfeits only its in-flight point, which is re-queued at the front
//    so index order among waiting points is preserved.
//  * A point forfeited more than max_point_retries times is quarantined:
//    marked done-without-result, surfaced through take_quarantined() and
//    the accounting counters, and never dispatched again -- a poison
//    point must not eat the fleet.  With point_deadline set, a worker
//    that heartbeats but holds one point past the deadline is killed and
//    the point forfeited the same way (liveness is not progress).
//  * Results are validated against (sweep name, fingerprint, point id)
//    and recorded at most once: a duplicate delivery -- retransmission
//    after a reconnect, or the original worker of a reassigned point
//    surfacing late -- is ignored, never double-aggregated.  Aggregation
//    is by point index and every evaluator is a pure function of the
//    point, so results are byte-identical no matter which worker (or how
//    many, or after how many retries) computed them.
//
//  * With a nonzero options.epoch the engine is *fenced*: its welcomes
//    carry the epoch, results must echo it, and a hello or fence frame
//    naming a larger epoch means a standby coordinator has taken over --
//    the engine declines everything, reports superseded(), and the driver
//    aborts, so a zombie can never double-assign or double-count.
//  * Every node accumulates a reliability score (EWMA of completions vs.
//    forfeits); a flapping node is demoted to probation -- dispatched to
//    only after healthy workers, with extra timeout slack, its welcomes
//    flagged -- and re-promoted after consecutive successes.
//
// The engine never blocks and never touches a clock or a socket: `now` is
// whatever monotonic seconds the driver supplies (wall time for TCP,
// simulated time under sim/).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/net/framing.h"
#include "core/net/messages.h"
#include "core/sweep/sweep_spec.h"
#include "util/stats.h"

namespace qps::net {

using SessionId = std::uint64_t;

struct JobServerOptions {
  /// Seconds a new connection gets to produce its hello.
  double handshake_timeout = 10.0;
  /// Seconds of silence (no result, no heartbeat) after which a busy
  /// worker is declared dead and its point forfeited.
  double worker_timeout = 30.0;
  /// Heartbeat cadence advertised to workers in the welcome.
  double heartbeat_interval = 5.0;
  /// Per-point retry budget: a point forfeited (worker death, timeout,
  /// protocol kill, deadline) more than this many times is quarantined --
  /// completed-as-failed, reported via take_quarantined() and the
  /// accounting counters -- instead of requeued forever.
  std::size_t max_point_retries = 3;
  /// Per-point deadline watchdog: a busy worker that has held one point
  /// longer than this (heartbeats notwithstanding -- liveness is not
  /// progress) is killed and the point forfeited.  0 disables.
  double point_deadline = 0.0;
  /// Registry evaluator id for this sweep (core/sweep/evaluators.h) and
  /// the serialized spec (core/sweep/spec_codec.h) shipped to registry
  /// workers; empty `evaluator` means only pinned workers are admitted.
  std::string evaluator;
  std::string spec_text;
  /// Coordinator activation epoch from the checkpoint journal
  /// (core/sweep/checkpoint.h).  Nonzero enables fencing: welcomes carry
  /// it, results must echo it, and any hello or fence frame naming a
  /// larger epoch proves this coordinator has been superseded by a
  /// failover and must stand down.  0 = unfenced (no journal).
  std::uint64_t epoch = 0;
  /// Health scoring (EWMA over per-node completions vs. forfeits): the
  /// smoothing factor, the score below which a node is demoted to
  /// probation, the consecutive completions that re-promote it, and the
  /// extra timeout slack a probation worker gets (it is dispatched to
  /// only after healthy workers, so extra patience is cheap).
  double health_alpha = 0.4;
  double probation_threshold = 0.5;
  int probation_promote_after = 3;
  double probation_timeout_factor = 2.0;
};

class JobServerEngine {
 public:
  /// `points` must outlive the engine; `pending` holds the indices still
  /// to be computed (everything else is treated as already done).
  JobServerEngine(const std::vector<sweep::SweepPoint>& points,
                  std::string sweep_name, std::uint64_t fingerprint,
                  std::deque<std::size_t> pending, JobServerOptions options);

  // -- events from the transport driver ----------------------------------
  void on_open(SessionId session, double now);
  void on_bytes(SessionId session, std::string_view bytes, double now);
  void on_close(SessionId session, double now);
  /// Deadline sweep: kills handshakes and busy workers past their
  /// timeouts.  Drivers call it after processing reads, so buffered bytes
  /// always count as liveness before the axe falls.
  void on_tick(double now);

  // -- outputs ------------------------------------------------------------
  /// One outgoing action: write `bytes` (may be empty) to the session,
  /// then close it when `close_after`.
  struct Send {
    SessionId session = 0;
    std::string bytes;
    bool close_after = false;
  };
  std::vector<Send> take_outbox();
  /// Validated, deduplicated results completed since the last call.
  std::vector<std::pair<std::size_t, RunningStats>> take_completed();
  /// Points quarantined since the last call, as (index, attempts) pairs.
  /// Quarantined points count as done for termination purposes but carry
  /// no result.
  std::vector<std::pair<std::size_t, std::size_t>> take_quarantined();

  // -- coordinator-local evaluation (fallback when no worker can serve) --
  /// Claims the next pending point for in-process evaluation; the engine
  /// stops offering it to workers.
  std::optional<std::size_t> take_local_point();
  void complete_local(std::size_t index, const RunningStats& stats);

  // -- progress and introspection ----------------------------------------
  bool done() const { return outstanding_ == 0; }
  /// Soonest timeout deadline, or +infinity with no armed timer; drivers
  /// derive their poll timeout from it.
  double next_deadline() const;
  /// Sessions past the handshake (busy or idle).
  std::size_t active_workers() const;
  std::size_t session_count() const { return sessions_.size(); }
  std::uint64_t protocol_errors() const { return protocol_errors_; }
  std::uint64_t duplicates_ignored() const { return duplicates_ignored_; }
  std::uint64_t workers_timed_out() const { return workers_timed_out_; }
  std::uint64_t results_from_workers() const { return results_from_workers_; }
  std::uint64_t points_quarantined() const { return points_quarantined_; }
  std::uint64_t deadline_forfeits() const { return deadline_forfeits_; }
  std::uint64_t stale_epoch_rejected() const { return stale_epoch_rejected_; }
  std::uint64_t probation_demotions() const { return probation_demotions_; }
  std::uint64_t probation_promotions() const { return probation_promotions_; }
  /// True once a hello or fence frame proved a newer coordinator epoch
  /// owns this sweep; the driver must abort instead of double-assigning.
  bool superseded() const { return superseded_; }
  std::uint64_t superseded_by() const { return superseded_by_; }
  /// Current reliability score of `node` (1.0 for an unseen node).
  double worker_score(const std::string& node) const;
  bool on_probation(const std::string& node) const;

 private:
  struct Session {
    enum class State { kAwaitHello, kActive };
    State state = State::kAwaitHello;
    LineReassembler lines;
    std::string node;
    bool busy = false;
    std::size_t in_flight = 0;
    double opened_at = 0.0;
    double last_activity = 0.0;
    /// Driver time the in-flight point was dispatched; feeds the
    /// point-deadline watchdog.
    double dispatched_at = 0.0;
    /// Driver time of the previous heartbeat; feeds the observed
    /// heartbeat-gap histogram (0 until the first heartbeat lands).
    double last_heartbeat = 0.0;
  };

  /// Per-node reliability state; keyed by the hello's node name so it
  /// survives the node's sessions (a flapping worker reconnects a lot).
  struct NodeHealth {
    double score = 1.0;
    bool probation = false;
    int consecutive_successes = 0;
  };

  void handle_line(SessionId session, const std::string& line, double now);
  void handle_hello(SessionId session, const JsonValue& value);
  void handle_result(SessionId session, const std::string& line);
  void handle_fence(SessionId session, const JsonValue& value);
  /// Marks this coordinator superseded by `epoch` (a fencing event).
  void fence_out(std::uint64_t epoch);
  /// EWMA update of `node`'s score on a completion (success) or a
  /// forfeit/timeout/death (failure); handles probation transitions.
  void note_outcome(const std::string& node, bool success);
  /// Seconds of silence `s` gets before being declared dead.
  double timeout_for(const Session& s) const;
  /// Drops the session, forfeiting (re-queueing) its in-flight point.
  void kill(SessionId session, const std::string& reason);
  /// Requeues a forfeited point, or quarantines it past its retry budget.
  void forfeit(std::size_t index);
  void decline(SessionId session, const std::string& error, bool retry);
  /// Hands pending points to idle active workers.
  void dispatch();
  void record(std::size_t index, const RunningStats& stats);
  /// On completion, waves every remaining session goodbye.
  void broadcast_bye();

  const std::vector<sweep::SweepPoint>& points_;
  std::string sweep_name_;
  std::uint64_t fingerprint_;
  JobServerOptions options_;

  std::deque<std::size_t> pending_;
  std::vector<char> done_;
  std::size_t outstanding_ = 0;
  /// Forfeit count per point index, feeding the quarantine budget.
  std::vector<std::size_t> attempts_;

  std::map<SessionId, Session> sessions_;
  std::map<std::string, NodeHealth> health_;
  std::vector<Send> outbox_;
  std::vector<std::pair<std::size_t, RunningStats>> completed_;
  std::vector<std::pair<std::size_t, std::size_t>> quarantined_;

  std::uint64_t protocol_errors_ = 0;
  std::uint64_t duplicates_ignored_ = 0;
  std::uint64_t workers_timed_out_ = 0;
  std::uint64_t results_from_workers_ = 0;
  std::uint64_t points_quarantined_ = 0;
  std::uint64_t deadline_forfeits_ = 0;
  std::uint64_t stale_epoch_rejected_ = 0;
  std::uint64_t probation_demotions_ = 0;
  std::uint64_t probation_promotions_ = 0;
  bool superseded_ = false;
  std::uint64_t superseded_by_ = 0;
};

}  // namespace qps::net
