#include "core/net/socket_sweep.h"

#include <poll.h>

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "core/fault/fault.h"
#include "core/net/framing.h"
#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/sweep/spec_codec.h"
#include "util/backoff.h"
#include "util/require.h"

namespace qps::net {

namespace {

double monotonic_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Background heartbeat: keeps the coordinator's liveness timer fed while
/// a long evaluation holds the data path silent.  Writes share
/// `write_mutex` with result sends so frames never interleave.
class HeartbeatThread {
 public:
  HeartbeatThread(TcpStream& stream, std::mutex& write_mutex,
                  double interval_seconds)
      : stream_(stream), write_mutex_(write_mutex) {
    if (interval_seconds <= 0) return;
    thread_ = std::thread([this, interval_seconds] {
      std::unique_lock<std::mutex> lock(mutex_);
      const auto interval = std::chrono::duration<double>(interval_seconds);
      while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
        try {
          // Injection site for heartbeat loss/delay: a delay action here
          // widens the coordinator's observed heartbeat gap, an error
          // action swallows the beat entirely.
          QPS_FAULT_POINT("net/worker_heartbeat");
        } catch (const fault::InjectedFault&) {
          continue;  // this heartbeat is lost; the next round retries
        }
        std::lock_guard<std::mutex> write_lock(write_mutex_);
        // A failed heartbeat means the peer is gone; the read loop will
        // notice on its own, so the failure needs no handling here.
        stream_.send_all(encode_heartbeat());
        static obs::Counter& heartbeats_sent =
            obs::MetricsRegistry::instance().counter("net/heartbeats_sent");
        heartbeats_sent.increment();
      }
    });
  }

  ~HeartbeatThread() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  TcpStream& stream_;
  std::mutex& write_mutex_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace

bool parse_host_port(const std::string& text, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == text.size())
    return false;
  unsigned long value = 0;
  for (std::size_t i = colon + 1; i < text.size(); ++i) {
    if (text[i] < '0' || text[i] > '9') return false;
    value = value * 10 + static_cast<unsigned long>(text[i] - '0');
    if (value > 65535) return false;
  }
  host = text.substr(0, colon);
  port = static_cast<std::uint16_t>(value);
  return true;
}

void run_socket_sweep(TcpListener& listener,
                      const std::vector<sweep::SweepPoint>& points,
                      const std::string& sweep_name, std::uint64_t fingerprint,
                      std::deque<std::size_t> pending,
                      const sweep::PointEvaluator& local_eval,
                      const sweep::RemoteRecord& record,
                      const SocketCoordinatorOptions& options,
                      const sweep::RemoteQuarantine& quarantine) {
  QPS_REQUIRE(listener.valid(), "job server needs a bound listener");
  QPS_REQUIRE(!options.local_fallback || static_cast<bool>(local_eval),
              "local fallback needs an evaluator");
  QPS_TRACE_SPAN("net/serve_sweep", "net");

  const std::size_t total = pending.size();
  JobServerEngine engine(points, sweep_name, fingerprint, std::move(pending),
                         options.engine);
  std::map<SessionId, TcpStream> streams;
  SessionId next_id = 1;
  std::size_t local_points = 0;
  util::Backoff accept_backoff(/*initial_seconds=*/0.01, /*max_seconds=*/1.0,
                               /*seed=*/fingerprint);

  const auto flush = [&] {
    // Draining can cascade: a failed send closes a session, which forfeits
    // its point, which dispatches to another worker.
    for (;;) {
      const auto outbox = engine.take_outbox();
      if (outbox.empty()) return;
      for (const JobServerEngine::Send& send : outbox) {
        const auto it = streams.find(send.session);
        if (it == streams.end()) continue;
        bool drop = send.close_after;
        if (!send.bytes.empty() && !it->second.send_all(send.bytes)) {
          engine.on_close(send.session, monotonic_seconds());
          drop = true;
        }
        if (drop) {
          it->second.close();
          streams.erase(send.session);
        }
      }
    }
  };
  std::size_t quarantined_count = 0;
  std::size_t rescued_count = 0;
  const auto deliver = [&] {
    for (const auto& [index, stats] : engine.take_completed())
      record(index, stats);
    for (const auto& [index, attempts] : engine.take_quarantined()) {
      // With local fallback enabled the coordinator is allowed one
      // last-resort evaluation before declaring the point poison -- the
      // same semantics as the pipe runner's in-process tail.  Without it
      // (tests proving workers computed everything) quarantine is final.
      if (options.local_fallback) {
        try {
          QPS_TRACE_SPAN("sweep/point", "sweep");
          QPS_FAULT_POINT2("net/local_eval", points[index].id);
          const RunningStats stats = local_eval(points[index]);
          record(index, stats);
          ++rescued_count;
          continue;
        } catch (const std::exception& e) {
          std::cerr << "sweep " << sweep_name << ": point "
                    << points[index].id
                    << " failed the local last resort too: " << e.what()
                    << "\n";
        }
      }
      ++quarantined_count;
      if (quarantine) quarantine(index, attempts);
    }
  };

  // Workers running in --listen mode are dialed once up front; they speak
  // first (hello) exactly like accepted connections.
  for (const std::string& address : options.dial) {
    std::string host;
    std::uint16_t port = 0;
    if (!parse_host_port(address, host, port)) {
      std::cerr << "sweep " << sweep_name << ": bad worker address '"
                << address << "' (want host:port)\n";
      continue;
    }
    TcpStream stream = TcpStream::connect(host, port);
    if (!stream.valid()) {
      std::cerr << "sweep " << sweep_name << ": cannot dial worker at "
                << address << "\n";
      continue;
    }
    const SessionId id = next_id++;
    streams.emplace(id, std::move(stream));
    engine.on_open(id, monotonic_seconds());
  }

  // Supersession: detection (a worker fence/hello named a newer epoch, or
  // the lease callback fired) starts a short drain window during which
  // reads are still processed -- so in-flight fence frames from re-dialing
  // workers land in this process's counters -- and local evaluation stops;
  // then the loop throws.  A zombie must stand down, not finish the sweep.
  double superseded_at = 0.0;
  const auto check_superseded = [&] {
    if (superseded_at == 0.0 &&
        (engine.superseded() ||
         (options.superseded_check && options.superseded_check())))
      superseded_at = monotonic_seconds();
    if (superseded_at != 0.0 &&
        monotonic_seconds() - superseded_at >= options.superseded_drain_seconds) {
      std::ostringstream why;
      why << "sweep " << sweep_name << ": coordinator epoch "
          << options.engine.epoch << " superseded";
      if (engine.superseded_by() != 0)
        why << " by epoch " << engine.superseded_by();
      why << "; standing down";
      throw CoordinatorSuperseded(why.str(), engine.superseded_by());
    }
  };

  while (!engine.done()) {
    flush();
    deliver();
    check_superseded();
    if (engine.done()) break;

    // Fallback waits for "no sessions at all", not just "no active
    // workers": a freshly dialed daemon whose hello is still in flight
    // must get a chance to serve before the coordinator eats the grid
    // itself.  A connection that never completes its handshake releases
    // the brake via the handshake timeout.
    const bool fallback_ready =
        options.local_fallback && engine.session_count() == 0;

    std::vector<pollfd> fds;
    std::vector<SessionId> ids;
    fds.push_back({listener.fd(), POLLIN, 0});
    for (const auto& [id, stream] : streams) {
      ids.push_back(id);
      fds.push_back({stream.fd(), POLLIN, 0});
    }
    int timeout_ms = 200;
    if (fallback_ready) {
      timeout_ms = 0;  // local work is waiting; just drain ready events
    } else {
      const double deadline = engine.next_deadline();
      if (std::isfinite(deadline)) {
        const double wait = (deadline - monotonic_seconds()) * 1000.0;
        timeout_ms = wait < 10.0 ? 10 : (wait > 500.0 ? 500 : static_cast<int>(wait));
      }
    }
    if (superseded_at != 0.0 && timeout_ms > 50)
      timeout_ms = 50;  // drain window: keep the deadline check responsive
    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      QPS_CHECK(false, "poll failed in job server loop");
    }

    if (fds[0].revents & POLLIN) {
      bool accepted = false;
      try {
        QPS_FAULT_POINT("net/coordinator_accept");
        TcpStream stream = listener.accept();
        if (stream.valid()) {
          const SessionId id = next_id++;
          streams.emplace(id, std::move(stream));
          engine.on_open(id, monotonic_seconds());
          accepted = true;
        }
      } catch (const fault::InjectedFault&) {
        // Injected accept failure: handled exactly like a real one below.
      }
      if (accepted) {
        accept_backoff.reset();
      } else {
        // A failing accept(2) with a readable listener would otherwise
        // spin the poll loop flat out; back off with jitter instead.
        std::this_thread::sleep_for(
            std::chrono::duration<double>(accept_backoff.next()));
      }
    }
    // Reads strictly before the timeout tick: bytes buffered while we were
    // busy (or blocked in a local evaluation) count as liveness.
    for (std::size_t k = 0; k < ids.size(); ++k) {
      if ((fds[k + 1].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const auto it = streams.find(ids[k]);
      if (it == streams.end()) continue;
      char chunk[4096];
      const long n = it->second.read_some(chunk, sizeof chunk);
      if (n > 0) {
        engine.on_bytes(ids[k], std::string_view(chunk,
                                                 static_cast<std::size_t>(n)),
                        monotonic_seconds());
      } else {
        engine.on_close(ids[k], monotonic_seconds());
        it->second.close();
        streams.erase(it);
      }
    }
    engine.on_tick(monotonic_seconds());
    flush();
    deliver();
    check_superseded();

    if (options.local_fallback && engine.session_count() == 0 &&
        superseded_at == 0.0 && !engine.done()) {
      if (const auto index = engine.take_local_point()) {
        {
          QPS_TRACE_SPAN("sweep/point", "sweep");
          // Coordinator-side injection site: a delay here holds the
          // coordinator mid-sweep (chaos scripts SIGSTOP/SIGKILL it there);
          // crash/error exercise the journal-replay takeover.
          QPS_FAULT_POINT2("net/local_eval", points[*index].id);
          engine.complete_local(*index, local_eval(points[*index]));
        }
        ++local_points;
        deliver();
      }
    }
  }

  flush();    // broadcast the final byes
  deliver();  // nothing left, but keep the contract obvious

  // One grep-able accounting line per sweep: CI asserts work really went
  // through the socket path (and how much was recovered from faults).
  // Every number comes from the engine's counters -- which increment at
  // the same single site as their net/* metric mirrors -- and the line
  // goes out as one buffer through one write(2), so it can neither
  // disagree with --metrics-json nor interleave with other writers.
  std::ostringstream line;
  line << "sweep " << sweep_name << ": job server done, " << total
       << " point(s): " << engine.results_from_workers() << " from workers, "
       << local_points << " local, " << rescued_count << " rescued, "
       << quarantined_count << " quarantined, " << engine.duplicates_ignored()
       << " duplicate(s) ignored, " << engine.workers_timed_out()
       << " worker timeout(s), " << engine.deadline_forfeits()
       << " deadline forfeit(s), " << engine.protocol_errors()
       << " protocol error(s), " << engine.stale_epoch_rejected()
       << " stale-epoch rejection(s), " << engine.probation_demotions()
       << " probation demotion(s)\n";
  const std::string text = line.str();
  const char* data = text.data();
  std::size_t left = text.size();
  while (left > 0) {
    const ssize_t n = ::write(STDERR_FILENO, data, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    data += static_cast<std::size_t>(n);
    left -= static_cast<std::size_t>(n);
  }
}

sweep::RemoteRunner make_socket_remote_runner(
    TcpListener* listener, SocketCoordinatorOptions options) {
  QPS_REQUIRE(listener != nullptr, "remote runner needs a listener");
  return [listener, options](const sweep::SweepSpec& spec,
                             const std::vector<sweep::SweepPoint>& points,
                             std::deque<std::size_t> pending,
                             std::uint64_t epoch,
                             const sweep::PointEvaluator& eval,
                             const sweep::RemoteRecord& record,
                             const sweep::RemoteQuarantine& quarantine) {
    SocketCoordinatorOptions opts = options;
    if (!opts.engine.evaluator.empty() && opts.engine.spec_text.empty())
      opts.engine.spec_text = sweep::spec_to_json(spec);
    if (epoch != 0) opts.engine.epoch = epoch;  // journal-backed: fenced
    run_socket_sweep(*listener, points, spec.name(), spec.fingerprint(),
                     std::move(pending), eval, record, opts, quarantine);
  };
}

void decline_queued_connections(TcpListener& listener,
                                const std::string& reason) {
  for (;;) {
    pollfd pfd{listener.fd(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 0);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) return;
    TcpStream stream = listener.accept();
    if (!stream.valid()) return;
    // No need to read the hello: the decline is the same either way, and
    // the worker's decline-retry budget turns it into a later re-dial.
    Welcome welcome;
    welcome.ok = false;
    welcome.retry = true;
    welcome.error = reason;
    stream.send_all(encode_welcome(welcome));
    stream.close();
  }
}

ServeOutcome serve_connection(TcpStream& stream, const Hello& hello,
                              const SweepBinder& binder, std::string* error,
                              const ServeHooks& hooks) {
  const auto fail = [error](ServeOutcome outcome, const std::string& why) {
    if (error) *error = why;
    return outcome;
  };

  WorkerEngine engine(hello, hooks.epochs);
  if (!stream.send_all(engine.hello_line()))
    return fail(ServeOutcome::kLost, "connection lost sending hello");

  std::vector<sweep::SweepPoint> points;
  sweep::PointEvaluator eval;
  std::mutex write_mutex;
  std::unique_ptr<HeartbeatThread> heartbeat;

  LineReassembler reassembler;
  char chunk[4096];
  for (;;) {
    if (hooks.idle_timeout_seconds > 0.0) {
      // A coordinator that goes completely silent (SIGSTOPped, wedged,
      // partitioned) would hold this worker in read(2) forever; bounded
      // patience turns that into a kLost and, through the caller's retry
      // budget, a re-dial -- which is how workers migrate to a standby.
      pollfd pfd{stream.fd(), POLLIN, 0};
      const int ready = ::poll(
          &pfd, 1,
          static_cast<int>(hooks.idle_timeout_seconds * 1000.0));
      if (ready == 0)
        return fail(ServeOutcome::kLost,
                    "coordinator silent past the idle timeout");
      if (ready < 0 && errno != EINTR)
        return fail(ServeOutcome::kLost, "poll failed waiting on coordinator");
      if (ready <= 0) continue;
    }
    const long n = stream.read_some(chunk, sizeof chunk);
    if (n <= 0)
      return fail(ServeOutcome::kLost, "connection lost mid-serve");
    std::vector<std::string> lines;
    if (!reassembler.feed(
            std::string_view(chunk, static_cast<std::size_t>(n)), lines))
      return fail(ServeOutcome::kLost, "oversized frame from coordinator");
    for (const std::string& line : lines) {
      const WorkerEngine::Event event = engine.on_line(line);
      switch (event.kind) {
        case WorkerEngine::Event::Kind::kNone:
          break;
        case WorkerEngine::Event::Kind::kAccepted: {
          std::string bind_error;
          if (!binder(event.welcome, points, eval, bind_error))
            return fail(ServeOutcome::kDeclinedFatal, bind_error);
          heartbeat = std::make_unique<HeartbeatThread>(
              stream, write_mutex, event.welcome.heartbeat_seconds);
          break;
        }
        case WorkerEngine::Event::Kind::kDeclined:
          return fail(event.welcome.retry ? ServeOutcome::kDeclinedRetry
                                          : ServeOutcome::kDeclinedFatal,
                      event.welcome.error);
        case WorkerEngine::Event::Kind::kEvaluate: {
          if (event.index >= points.size())
            return fail(ServeOutcome::kLost, "request index out of range");
          RunningStats stats;
          try {
            QPS_TRACE_SPAN("sweep/point", "sweep");
            QPS_FAULT_POINT2("net/worker_eval", points[event.index].id);
            stats = eval(points[event.index]);
          } catch (const std::exception& e) {
            // A throwing evaluator (injected fault, BudgetExceeded, ...)
            // must not tear the daemon down: drop the connection so the
            // coordinator forfeits the point to another worker or, past
            // its budget, quarantines it.
            return fail(ServeOutcome::kLost,
                        std::string("evaluator failed: ") + e.what());
          }
          const std::string reply =
              engine.result_line(points[event.index], stats);
          std::lock_guard<std::mutex> lock(write_mutex);
          if (!stream.send_all(reply))
            return fail(ServeOutcome::kLost, "connection lost sending result");
          break;
        }
        case WorkerEngine::Event::Kind::kBye:
          return ServeOutcome::kServedBye;
        case WorkerEngine::Event::Kind::kNotice:
          if (hooks.on_notice) hooks.on_notice(event.notice);
          break;
        case WorkerEngine::Event::Kind::kStaleEpoch: {
          // A zombie coordinator: answer with the fence frame naming the
          // newer epoch (so the rejection lands in its metrics and it
          // stands down), then refuse to serve it.
          std::lock_guard<std::mutex> lock(write_mutex);
          stream.send_all(engine.fence_line(event));
          if (hooks.on_fence)
            hooks.on_fence(event.known_epoch, event.welcome);
          return fail(ServeOutcome::kFencedStale, event.error);
        }
        case WorkerEngine::Event::Kind::kProtocolError:
          return fail(ServeOutcome::kLost, event.error);
      }
    }
  }
}

ServeOutcome serve_pinned_sweep(const std::string& host, std::uint16_t port,
                                const sweep::SweepSpec& spec,
                                const sweep::PointEvaluator& eval,
                                const WorkerServeOptions& options) {
  Hello hello;
  hello.node = options.node;
  hello.sweep = spec.name();
  hello.fingerprint = spec.fingerprint();
  const SweepBinder binder = pinned_binder(spec, eval);
  const ServeHooks& hooks = options.hooks;

  int connect_failures = 0;
  int declines = 0;
  int losses = 0;
  for (;;) {
    TcpStream stream = TcpStream::connect(host, port);
    if (!stream.valid()) {
      if (++connect_failures > options.connect_retries)
        return ServeOutcome::kConnectFailed;
      std::this_thread::sleep_for(
          std::chrono::duration<double>(options.connect_retry_seconds));
      continue;
    }
    connect_failures = 0;

    std::string error;
    const ServeOutcome outcome = serve_connection(stream, hello, binder,
                                                  &error, hooks);
    switch (outcome) {
      case ServeOutcome::kDeclinedRetry:
        // A multi-sweep coordinator serves its sweeps in order; ours is
        // simply not up yet (or already finished -- the bounded budget
        // covers that case too).
        if (++declines > options.decline_retries) {
          std::cerr << "worker " << options.node << ": giving up on sweep "
                    << spec.name() << ": " << error << "\n";
          return outcome;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.decline_retry_seconds));
        continue;
      case ServeOutcome::kLost:
        // The coordinator may just be restarting (checkpoint resume); a
        // fresh handshake is safe because duplicate results are ignored.
        if (++losses > options.lost_retries) {
          std::cerr << "worker " << options.node << ": lost sweep "
                    << spec.name() << ": " << error << "\n";
          return outcome;
        }
        std::this_thread::sleep_for(
            std::chrono::duration<double>(options.connect_retry_seconds));
        continue;
      case ServeOutcome::kDeclinedFatal:
        std::cerr << "worker " << options.node << ": declined for sweep "
                  << spec.name() << ": " << error << "\n";
        return outcome;
      case ServeOutcome::kFencedStale:
        // The peer at this address is a superseded zombie; serving it
        // would be wasted (and wrong).  The caller knows where the live
        // coordinator is -- or will re-invoke us when it does.
        std::cerr << "worker " << options.node << ": fenced stale "
                  << "coordinator for sweep " << spec.name() << ": " << error
                  << "\n";
        return outcome;
      default:
        return outcome;
    }
  }
}

}  // namespace qps::net
