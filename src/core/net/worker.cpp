#include "core/net/worker.h"

#include <exception>
#include <optional>

#include "core/sweep/evaluators.h"
#include "core/sweep/spec_codec.h"
#include "core/sweep/wire.h"
#include "util/json.h"

namespace qps::net {

WorkerEngine::Event WorkerEngine::on_line(const std::string& line) {
  Event event;
  JsonValue value;
  try {
    value = JsonValue::parse(line);
  } catch (const std::exception&) {
    event.kind = Event::Kind::kProtocolError;
    event.error = "malformed frame from coordinator";
    return event;
  }
  switch (classify_line(value)) {
    case LineKind::kWelcome: {
      if (accepted_) {
        event.kind = Event::Kind::kProtocolError;
        event.error = "duplicate welcome";
        return event;
      }
      const auto welcome = decode_welcome(value);
      if (!welcome) {
        event.kind = Event::Kind::kProtocolError;
        event.error = "malformed welcome";
        return event;
      }
      if (welcome->version != kProtocolVersion) {
        event.kind = Event::Kind::kProtocolError;
        event.error = "protocol version mismatch: worker speaks v" +
                      std::to_string(kProtocolVersion) +
                      ", coordinator speaks v" +
                      std::to_string(welcome->version);
        return event;
      }
      event.welcome = *welcome;
      if (!welcome->ok) {
        event.kind = Event::Kind::kDeclined;
        return event;
      }
      if (epochs_ != nullptr && welcome->epoch != 0) {
        const std::uint64_t known =
            epochs_->get(welcome->sweep, welcome->fingerprint);
        if (known > welcome->epoch) {
          // This worker has already been admitted by a newer activation:
          // the peer is a zombie coordinator that must not be served.
          event.kind = Event::Kind::kStaleEpoch;
          event.known_epoch = known;
          event.error = "coordinator offers stale epoch " +
                        std::to_string(welcome->epoch) + " for sweep '" +
                        welcome->sweep + "' (already served epoch " +
                        std::to_string(known) + ")";
          return event;
        }
        epochs_->raise(welcome->sweep, welcome->fingerprint, welcome->epoch);
      }
      accepted_ = true;
      sweep_name_ = welcome->sweep;
      fingerprint_ = welcome->fingerprint;
      epoch_ = welcome->epoch;
      event.kind = Event::Kind::kAccepted;
      return event;
    }
    case LineKind::kRequest: {
      if (!accepted_) {
        event.kind = Event::Kind::kProtocolError;
        event.error = "request before welcome";
        return event;
      }
      const auto index = sweep::decode_request(line);
      if (!index) {
        event.kind = Event::Kind::kProtocolError;
        event.error = "malformed request";
        return event;
      }
      event.kind = Event::Kind::kEvaluate;
      event.index = *index;
      return event;
    }
    case LineKind::kBye:
      event.kind = Event::Kind::kBye;
      return event;
    case LineKind::kNotice: {
      if (!accepted_) {
        event.kind = Event::Kind::kProtocolError;
        event.error = "notice before welcome";
        return event;
      }
      const auto notice = decode_notice(value);
      if (!notice) {
        event.kind = Event::Kind::kProtocolError;
        event.error = "malformed notice";
        return event;
      }
      event.kind = Event::Kind::kNotice;
      event.notice = *notice;
      return event;
    }
    default:
      event.kind = Event::Kind::kProtocolError;
      event.error = "unexpected frame from coordinator";
      return event;
  }
}

std::string WorkerEngine::result_line(const sweep::SweepPoint& point,
                                      const RunningStats& stats) const {
  return sweep::encode_result(sweep_name_, fingerprint_, point, stats, epoch_);
}

std::string WorkerEngine::fence_line(const Event& event) const {
  Fence fence;
  fence.epoch = event.known_epoch;
  fence.sweep = event.welcome.sweep;
  fence.fingerprint = event.welcome.fingerprint;
  fence.node = hello_.node;
  return encode_fence(fence);
}

SweepBinder pinned_binder(const sweep::SweepSpec& spec,
                          sweep::PointEvaluator eval) {
  const std::string name = spec.name();
  auto expanded = spec.expand();
  return [name, expanded = std::move(expanded), eval = std::move(eval)](
             const Welcome& welcome, std::vector<sweep::SweepPoint>& points,
             sweep::PointEvaluator& out_eval, std::string& error) {
    if (welcome.sweep != name) {
      // Cannot happen against a conforming coordinator (the pinned hello
      // named the sweep), but a confused peer must not make us compute
      // points of a grid we did not build.
      error = "coordinator accepted sweep '" + welcome.sweep +
              "' but this worker is pinned to '" + name + "'";
      return false;
    }
    points = expanded;
    out_eval = eval;
    return true;
  };
}

SweepBinder registry_binder(std::size_t dp_threads) {
  return [dp_threads](const Welcome& welcome,
                      std::vector<sweep::SweepPoint>& points,
                      sweep::PointEvaluator& out_eval, std::string& error) {
    if (!welcome.spec || welcome.evaluator.empty()) {
      error = "coordinator accepted a registry worker without shipping an "
              "evaluator and spec";
      return false;
    }
    std::optional<sweep::SweepSpec> spec;
    try {
      spec = sweep::spec_from_json(*welcome.spec);
    } catch (const std::exception& e) {
      error = std::string("undecodable spec in welcome: ") + e.what();
      return false;
    }
    // The re-derived fingerprint must agree with the coordinator's claim;
    // disagreement means codec or version skew and silently mismatched
    // grids, so refuse loudly instead.
    if (spec->fingerprint() != welcome.fingerprint) {
      error = "spec fingerprint mismatch after decode: coordinator claims " +
              sweep::encode_hex_u64(welcome.fingerprint) + ", decoded spec " +
              "has " + sweep::encode_hex_u64(spec->fingerprint());
      return false;
    }
    out_eval = sweep::find_standard_evaluator(welcome.evaluator, dp_threads);
    if (!out_eval) {
      error = "evaluator '" + welcome.evaluator +
              "' is not in this worker's registry";
      return false;
    }
    points = spec->expand();
    return true;
  };
}

}  // namespace qps::net
