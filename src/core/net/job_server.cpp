#include "core/net/job_server.h"

#include <algorithm>
#include <exception>
#include <limits>

#include "core/fault/fault.h"
#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/sweep/wire.h"
#include "util/require.h"

namespace qps::net {

namespace {

// Process-wide mirrors of the engine's per-instance counters.  Each event
// has exactly one increment site, shared with the per-instance bump, so
// the --metrics-json dump and the engine's own accounting (the per-sweep
// stderr line) can never disagree.
struct NetMetrics {
  obs::Counter& sessions_opened =
      obs::MetricsRegistry::instance().counter("net/sessions_opened");
  obs::Counter& sessions_closed =
      obs::MetricsRegistry::instance().counter("net/sessions_closed");
  obs::Counter& handshakes =
      obs::MetricsRegistry::instance().counter("net/handshakes");
  obs::Counter& dispatches =
      obs::MetricsRegistry::instance().counter("net/dispatches");
  obs::Counter& requeues =
      obs::MetricsRegistry::instance().counter("net/requeues");
  obs::Counter& duplicates_ignored =
      obs::MetricsRegistry::instance().counter("net/duplicates_ignored");
  obs::Counter& worker_timeouts =
      obs::MetricsRegistry::instance().counter("net/worker_timeouts");
  obs::Counter& protocol_errors =
      obs::MetricsRegistry::instance().counter("net/protocol_errors");
  obs::Counter& results_from_workers =
      obs::MetricsRegistry::instance().counter("net/results_from_workers");
  obs::Counter& points_quarantined =
      obs::MetricsRegistry::instance().counter("net/points_quarantined");
  obs::Counter& deadline_forfeits =
      obs::MetricsRegistry::instance().counter("net/deadline_forfeits");
  obs::Counter& stale_epoch_rejected =
      obs::MetricsRegistry::instance().counter("net/stale_epoch_rejected");
  obs::Counter& coordinator_superseded =
      obs::MetricsRegistry::instance().counter("net/coordinator_superseded");
  obs::Counter& probation_demotions =
      obs::MetricsRegistry::instance().counter("net/probation_demotions");
  obs::Counter& probation_promotions =
      obs::MetricsRegistry::instance().counter("net/probation_promotions");
  obs::Histogram& heartbeat_gap_us =
      obs::MetricsRegistry::instance().histogram("net/heartbeat_gap_us");

  static NetMetrics& get() {
    static NetMetrics metrics;
    return metrics;
  }
};

}  // namespace

JobServerEngine::JobServerEngine(const std::vector<sweep::SweepPoint>& points,
                                 std::string sweep_name,
                                 std::uint64_t fingerprint,
                                 std::deque<std::size_t> pending,
                                 JobServerOptions options)
    : points_(points),
      sweep_name_(std::move(sweep_name)),
      fingerprint_(fingerprint),
      options_(std::move(options)),
      pending_(std::move(pending)),
      done_(points.size(), 1),
      attempts_(points.size(), 0) {
  for (const std::size_t index : pending_) {
    QPS_REQUIRE(index < points_.size(), "pending index out of range");
    done_[index] = 0;
  }
  outstanding_ = pending_.size();
}

void JobServerEngine::on_open(SessionId session, double now) {
  Session& s = sessions_[session];
  s.opened_at = s.last_activity = now;
  NetMetrics::get().sessions_opened.increment();
  obs::TraceRecorder::instance().record_instant("net/session_open", "net");
}

void JobServerEngine::on_bytes(SessionId session, std::string_view bytes,
                               double now) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;  // already dropped: late bytes ignored
  it->second.last_activity = now;
  std::vector<std::string> lines;
  if (!it->second.lines.feed(bytes, lines)) {
    kill(session, "oversized frame");
    return;
  }
  for (const std::string& line : lines) {
    handle_line(session, line, now);
    // handle_line may have killed (erased) the session; later lines from
    // a dropped peer are noise.
    if (sessions_.find(session) == sessions_.end()) return;
  }
}

void JobServerEngine::on_close(SessionId session, double /*now*/) {
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  const bool busy = it->second.busy;
  const std::size_t in_flight = it->second.in_flight;
  // Dying while holding a point is a reliability strike; drifting away
  // idle is not.
  if (busy) note_outcome(it->second.node, /*success=*/false);
  sessions_.erase(it);
  NetMetrics::get().sessions_closed.increment();
  if (busy) forfeit(in_flight);
  dispatch();
}

double JobServerEngine::timeout_for(const Session& s) const {
  const auto it = health_.find(s.node);
  const bool probation = it != health_.end() && it->second.probation;
  return options_.worker_timeout *
         (probation ? options_.probation_timeout_factor : 1.0);
}

void JobServerEngine::on_tick(double now) {
  std::vector<SessionId> expired;
  std::vector<SessionId> overdue;
  for (const auto& [id, s] : sessions_) {
    if (s.state == Session::State::kAwaitHello &&
        now - s.opened_at > options_.handshake_timeout)
      expired.push_back(id);
    else if (s.state == Session::State::kActive && s.busy &&
             now - s.last_activity > timeout_for(s))
      expired.push_back(id);
    else if (s.state == Session::State::kActive && s.busy &&
             options_.point_deadline > 0.0 &&
             now - s.dispatched_at > options_.point_deadline)
      overdue.push_back(id);
  }
  for (const SessionId id : expired) {
    ++workers_timed_out_;
    NetMetrics::get().worker_timeouts.increment();
    kill(id, "timed out");
  }
  // The point-deadline watchdog: the worker is live (its heartbeats kept
  // it off the timeout list) but has sat on one point too long.  Dropping
  // the session -- not just the point -- keeps its eventual stale result
  // from racing the reassignment, and forfeit() below decides requeue vs
  // quarantine.
  for (const SessionId id : overdue) {
    ++deadline_forfeits_;
    NetMetrics::get().deadline_forfeits.increment();
    kill(id, "point deadline exceeded");
  }
}

void JobServerEngine::handle_line(SessionId session, const std::string& line,
                                  double now) {
  JsonValue value;
  try {
    value = JsonValue::parse(line);
  } catch (const std::exception&) {
    kill(session, "malformed frame");
    return;
  }
  Session& s = sessions_.at(session);
  switch (classify_line(value)) {
    case LineKind::kHello:
      if (s.state != Session::State::kAwaitHello) {
        kill(session, "duplicate hello");
        return;
      }
      handle_hello(session, value);
      return;
    case LineKind::kResult:
      if (s.state != Session::State::kActive) {
        kill(session, "result before handshake");
        return;
      }
      handle_result(session, line);
      return;
    case LineKind::kHeartbeat:
      if (s.state != Session::State::kActive) {
        kill(session, "heartbeat before handshake");
        return;
      }
      // Observed heartbeat cadence per session: the driver clock gap
      // between consecutive heartbeats, in microseconds.  A worker under
      // load (or a congested path) shows up as gaps well above the
      // advertised interval, long before the timeout fires.
      if (s.last_heartbeat > 0.0 && now > s.last_heartbeat)
        NetMetrics::get().heartbeat_gap_us.record(
            static_cast<std::uint64_t>((now - s.last_heartbeat) * 1e6));
      s.last_heartbeat = now;
      return;  // liveness already refreshed in on_bytes
    case LineKind::kFence:
      handle_fence(session, value);
      return;
    default:
      kill(session, "unexpected frame");
      return;
  }
}

void JobServerEngine::handle_fence(SessionId session, const JsonValue& value) {
  const auto fence = decode_fence(value);
  if (!fence || fence->sweep != sweep_name_ ||
      fence->fingerprint != fingerprint_) {
    kill(session, "malformed fence");
    return;
  }
  if (options_.epoch != 0 && fence->epoch > options_.epoch) {
    // The worker has already been admitted by a newer activation: this
    // coordinator is a zombie.  Count the fencing event and stand down.
    ++stale_epoch_rejected_;
    NetMetrics::get().stale_epoch_rejected.increment();
    fence_out(fence->epoch);
  }
  // Either way the worker is done with us; drop the session without
  // forfeiting (a fencing worker never held a point).
  const auto it = sessions_.find(session);
  if (it != sessions_.end()) {
    const bool busy = it->second.busy;
    const std::size_t in_flight = it->second.in_flight;
    sessions_.erase(it);
    NetMetrics::get().sessions_closed.increment();
    outbox_.push_back({session, std::string(), true});
    if (busy) forfeit(in_flight);
  }
}

void JobServerEngine::fence_out(std::uint64_t epoch) {
  superseded_by_ = std::max(superseded_by_, epoch);
  if (superseded_) return;
  superseded_ = true;
  NetMetrics::get().coordinator_superseded.increment();
  obs::TraceRecorder::instance().record_instant("net/superseded", "net");
}

void JobServerEngine::handle_hello(SessionId session, const JsonValue& value) {
  const auto hello = decode_hello(value);
  if (!hello) {
    kill(session, "malformed hello");
    return;
  }
  if (hello->version != kProtocolVersion) {
    decline(session,
            "protocol version mismatch: coordinator speaks v" +
                std::to_string(kProtocolVersion) + ", worker '" + hello->node +
                "' speaks v" + std::to_string(hello->version),
            /*retry=*/false);
    return;
  }
  if (options_.epoch != 0 && hello->epoch > options_.epoch) {
    // The worker was last admitted by a newer activation: a standby has
    // taken this sweep over and this coordinator is a zombie.
    ++stale_epoch_rejected_;
    NetMetrics::get().stale_epoch_rejected.increment();
    fence_out(hello->epoch);
    decline(session,
            "coordinator epoch " + std::to_string(options_.epoch) +
                " superseded by epoch " + std::to_string(hello->epoch) +
                "; standing down",
            /*retry=*/false);
    return;
  }

  Welcome welcome;
  welcome.ok = true;
  welcome.heartbeat_seconds = options_.heartbeat_interval;
  welcome.sweep = sweep_name_;
  welcome.fingerprint = fingerprint_;
  welcome.epoch = options_.epoch;
  welcome.probation = on_probation(hello->node);
  if (hello->pinned()) {
    if (hello->sweep != sweep_name_ || hello->fingerprint != fingerprint_) {
      decline(session,
              "sweep '" + hello->sweep + "' is not active (serving '" +
                  sweep_name_ + "')",
              /*retry=*/true);
      return;
    }
  } else {
    if (options_.evaluator.empty()) {
      decline(session,
              "sweep '" + sweep_name_ +
                  "' has no registered evaluator; only same-binary workers "
                  "can serve it",
              /*retry=*/true);
      return;
    }
    if (std::find(hello->evaluators.begin(), hello->evaluators.end(),
                  options_.evaluator) == hello->evaluators.end()) {
      decline(session,
              "worker '" + hello->node + "' does not support evaluator '" +
                  options_.evaluator + "'",
              /*retry=*/true);
      return;
    }
    welcome.evaluator = options_.evaluator;
    welcome.spec_text = options_.spec_text;
  }

  Session& s = sessions_.at(session);
  s.state = Session::State::kActive;
  s.node = hello->node;
  NetMetrics::get().handshakes.increment();
  obs::TraceRecorder::instance().record_instant("net/session_active", "net");
  outbox_.push_back({session, encode_welcome(welcome), false});
  // A worker that joins after the last point was handed out (or after the
  // sweep finished entirely) would otherwise idle forever.
  if (done()) {
    outbox_.push_back({session, encode_bye(), true});
    sessions_.erase(session);
    NetMetrics::get().sessions_closed.increment();
    return;
  }
  dispatch();
}

void JobServerEngine::handle_result(SessionId session,
                                    const std::string& line) {
  const auto result = sweep::decode_result(line);
  if (!result || result->sweep != sweep_name_ ||
      result->fingerprint != fingerprint_ ||
      result->index >= points_.size() ||
      result->id != points_[result->index].id) {
    kill(session, "mismatched result");
    return;
  }
  if (options_.epoch != 0 && result->epoch != options_.epoch) {
    // A result computed under some other activation's welcome.  The dedup
    // table would keep it from double-counting anyway, but accepting it
    // would launder a zombie assignment into this epoch's books; reject
    // and drop the confused worker (it will re-handshake and re-learn).
    ++stale_epoch_rejected_;
    NetMetrics::get().stale_epoch_rejected.increment();
    QPS_FAULT_POINT2("net/stale_epoch", points_[result->index].id);
    kill(session, "stale epoch result");
    return;
  }
  Session& s = sessions_.at(session);
  if (s.busy && s.in_flight == result->index) s.busy = false;
  note_outcome(s.node, /*success=*/true);
  if (done_[result->index]) {
    // Duplicate delivery: a retransmission after a reconnect, or the
    // original worker of a reassigned point finishing late.  Results are
    // pure functions of the point, so dropping the copy is lossless.
    ++duplicates_ignored_;
    NetMetrics::get().duplicates_ignored.increment();
  } else {
    ++results_from_workers_;
    NetMetrics::get().results_from_workers.increment();
    record(result->index, result->stats);
  }
  if (!done()) dispatch();
}

void JobServerEngine::record(std::size_t index, const RunningStats& stats) {
  done_[index] = 1;
  --outstanding_;
  completed_.emplace_back(index, stats);
  // The point may still sit in pending_ (forfeited by one worker, then
  // completed by an unsolicited duplicate from another): never re-issue it.
  const auto it = std::find(pending_.begin(), pending_.end(), index);
  if (it != pending_.end()) pending_.erase(it);
  if (done()) broadcast_bye();
}

void JobServerEngine::kill(SessionId session, const std::string& reason) {
  (void)reason;
  const auto it = sessions_.find(session);
  if (it == sessions_.end()) return;
  ++protocol_errors_;
  NetMetrics::get().protocol_errors.increment();
  const bool busy = it->second.busy;
  const std::size_t in_flight = it->second.in_flight;
  if (busy) note_outcome(it->second.node, /*success=*/false);
  sessions_.erase(it);
  NetMetrics::get().sessions_closed.increment();
  outbox_.push_back({session, std::string(), true});
  if (busy) forfeit(in_flight);
  dispatch();
}

void JobServerEngine::forfeit(std::size_t index) {
  if (done_[index]) return;  // completed by a duplicate in the meantime
  if (++attempts_[index] > options_.max_point_retries) {
    done_[index] = 1;
    --outstanding_;
    quarantined_.emplace_back(index, attempts_[index]);
    ++points_quarantined_;
    NetMetrics::get().points_quarantined.increment();
    // Tell the surviving workers (the quarantining forfeit always
    // coincides with a session death, so the event would otherwise be
    // invisible to every daemon).
    Notice notice;
    notice.kind = "quarantine";
    notice.index = index;
    notice.id = points_[index].id;
    notice.attempts = attempts_[index];
    const std::string frame = encode_notice(notice);
    for (const auto& [id, s] : sessions_)
      if (s.state == Session::State::kActive)
        outbox_.push_back({id, frame, false});
    if (done()) broadcast_bye();
  } else {
    pending_.push_front(index);
    NetMetrics::get().requeues.increment();
  }
}

void JobServerEngine::note_outcome(const std::string& node, bool success) {
  if (node.empty()) return;
  NodeHealth& h = health_[node];
  h.score = options_.health_alpha * (success ? 1.0 : 0.0) +
            (1.0 - options_.health_alpha) * h.score;
  if (success) {
    ++h.consecutive_successes;
    if (h.probation &&
        h.consecutive_successes >= options_.probation_promote_after) {
      h.probation = false;
      ++probation_promotions_;
      NetMetrics::get().probation_promotions.increment();
    }
  } else {
    h.consecutive_successes = 0;
    if (!h.probation && h.score < options_.probation_threshold) {
      h.probation = true;
      ++probation_demotions_;
      NetMetrics::get().probation_demotions.increment();
    }
  }
  obs::MetricsRegistry::instance()
      .gauge("net/worker_score/" + node)
      .set(static_cast<std::int64_t>(h.score * 1000.0));
}

double JobServerEngine::worker_score(const std::string& node) const {
  const auto it = health_.find(node);
  return it == health_.end() ? 1.0 : it->second.score;
}

bool JobServerEngine::on_probation(const std::string& node) const {
  const auto it = health_.find(node);
  return it != health_.end() && it->second.probation;
}

void JobServerEngine::decline(SessionId session, const std::string& error,
                              bool retry) {
  Welcome welcome;
  welcome.ok = false;
  welcome.error = error;
  welcome.retry = retry;
  sessions_.erase(session);
  NetMetrics::get().sessions_closed.increment();
  outbox_.push_back({session, encode_welcome(welcome), true});
}

void JobServerEngine::dispatch() {
  if (pending_.empty()) return;
  // Healthy workers drain the queue first; probation workers only get a
  // point when no healthy worker is free to take it.
  for (const bool probation_pass : {false, true}) {
    for (auto& [id, s] : sessions_) {
      if (s.state != Session::State::kActive || s.busy) continue;
      if (on_probation(s.node) != probation_pass) continue;
      s.busy = true;
      s.in_flight = pending_.front();
      s.dispatched_at = s.last_activity;
      pending_.pop_front();
      NetMetrics::get().dispatches.increment();
      outbox_.push_back({id, sweep::encode_request(s.in_flight), false});
      if (pending_.empty()) return;
    }
  }
}

void JobServerEngine::broadcast_bye() {
  for (const auto& [id, s] : sessions_) {
    outbox_.push_back({id, encode_bye(), true});
    NetMetrics::get().sessions_closed.increment();
  }
  sessions_.clear();
}

std::vector<JobServerEngine::Send> JobServerEngine::take_outbox() {
  return std::exchange(outbox_, {});
}

std::vector<std::pair<std::size_t, RunningStats>>
JobServerEngine::take_completed() {
  return std::exchange(completed_, {});
}

std::vector<std::pair<std::size_t, std::size_t>>
JobServerEngine::take_quarantined() {
  return std::exchange(quarantined_, {});
}

std::optional<std::size_t> JobServerEngine::take_local_point() {
  if (pending_.empty()) return std::nullopt;
  const std::size_t index = pending_.front();
  pending_.pop_front();
  return index;
}

void JobServerEngine::complete_local(std::size_t index,
                                     const RunningStats& stats) {
  if (done_[index]) return;  // a worker's duplicate beat us to it
  record(index, stats);
}

double JobServerEngine::next_deadline() const {
  double deadline = std::numeric_limits<double>::infinity();
  for (const auto& [id, s] : sessions_) {
    if (s.state == Session::State::kAwaitHello) {
      deadline =
          std::min(deadline, s.opened_at + options_.handshake_timeout);
    } else if (s.busy) {
      deadline = std::min(deadline, s.last_activity + timeout_for(s));
      if (options_.point_deadline > 0.0)
        deadline =
            std::min(deadline, s.dispatched_at + options_.point_deadline);
    }
  }
  return deadline;
}

std::size_t JobServerEngine::active_workers() const {
  std::size_t count = 0;
  for (const auto& [id, s] : sessions_)
    if (s.state == Session::State::kActive) ++count;
  return count;
}

}  // namespace qps::net
