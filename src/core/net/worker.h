// Worker-side protocol state machine and sweep binding.
//
// WorkerEngine mirrors JobServerEngine: a transport-free line-level state
// machine (send hello, await welcome, then serve request frames until
// bye).  The blocking TCP driver around it lives in
// core/net/socket_sweep.h; the simulated driver in
// sim/protocol_harness.h.
//
// What a worker actually evaluates is bound from the accepted welcome by
// a SweepBinder:
//
//  * pinned workers (a bench re-invoked with --connect) rebuilt the spec
//    from their own argv and bind their own evaluator, ignoring the
//    welcome payload;
//  * registry workers (tools/qps_workerd) decode the spec the welcome
//    carries (core/sweep/spec_codec.h), re-derive its fingerprint, refuse
//    to serve when it disagrees with the coordinator's claim, and look
//    the evaluator up in the standard registry.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/net/messages.h"
#include "core/sweep/sweep_runner.h"
#include "core/sweep/sweep_spec.h"

namespace qps::net {

/// Highest coordinator epoch this worker process has been admitted under,
/// per (sweep, fingerprint).  Shared across connections and threads, so a
/// worker that outlives a coordinator failover recognizes -- and fences
/// out -- the old coordinator if it ever comes back: a welcome carrying an
/// epoch below the remembered one is refused with a fence frame instead
/// of served.
class EpochMemory {
 public:
  std::uint64_t get(const std::string& sweep, std::uint64_t fingerprint) const {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = epochs_.find({sweep, fingerprint});
    return it == epochs_.end() ? 0 : it->second;
  }
  /// Raises the remembered epoch; never lowers it.
  void raise(const std::string& sweep, std::uint64_t fingerprint,
             std::uint64_t epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t& slot = epochs_[{sweep, fingerprint}];
    if (epoch > slot) slot = epoch;
  }

 private:
  mutable std::mutex mutex_;
  std::map<std::pair<std::string, std::uint64_t>, std::uint64_t> epochs_;
};

class WorkerEngine {
 public:
  /// `epochs` (optional, must outlive the engine) enables epoch fencing:
  /// a pinned hello echoes the remembered epoch, accepted welcomes raise
  /// it, and a welcome below it yields kStaleEpoch instead of kAccepted.
  explicit WorkerEngine(Hello hello, EpochMemory* epochs = nullptr)
      : hello_(std::move(hello)), epochs_(epochs) {
    if (epochs_ != nullptr && hello_.pinned())
      hello_.epoch = epochs_->get(hello_.sweep, hello_.fingerprint);
  }

  /// The first frame to transmit after connecting.
  std::string hello_line() const { return encode_hello(hello_); }

  struct Event {
    enum class Kind {
      kNone,           ///< Frame consumed (nothing for the driver to do).
      kAccepted,       ///< Welcome accepted; `welcome` holds the payload.
      kDeclined,       ///< Welcome declined; `welcome.retry` classifies.
      kEvaluate,       ///< Coordinator requests point `index`.
      kBye,            ///< Sweep complete; disconnect cleanly.
      kNotice,         ///< Advisory broadcast; `notice` holds the payload.
      kStaleEpoch,     ///< Welcome from a superseded coordinator: send
                       ///< fence_line() and disconnect.
      kProtocolError,  ///< Peer violated the protocol; `error` explains.
    };
    Kind kind = Kind::kNone;
    Welcome welcome;
    Notice notice;
    std::size_t index = 0;
    /// kStaleEpoch: the newer epoch this worker already served under.
    std::uint64_t known_epoch = 0;
    std::string error;
  };

  /// Consumes one reassembled line from the coordinator.
  Event on_line(const std::string& line);

  /// Result frame for a completed evaluation (pinned fields from the
  /// hello / accepted welcome, stamped with the welcome's epoch).
  std::string result_line(const sweep::SweepPoint& point,
                          const RunningStats& stats) const;

  /// Fence frame answering a kStaleEpoch welcome: names the newer epoch
  /// so the zombie coordinator can count the rejection and stand down.
  std::string fence_line(const Event& event) const;

  bool accepted() const { return accepted_; }
  std::uint64_t epoch() const { return epoch_; }

 private:
  Hello hello_;
  EpochMemory* epochs_ = nullptr;
  bool accepted_ = false;
  std::string sweep_name_;
  std::uint64_t fingerprint_ = 0;
  std::uint64_t epoch_ = 0;
};

/// Produces the points and evaluator to serve from an accepted welcome;
/// returns false (with `error` set) to abandon the connection.
using SweepBinder = std::function<bool(
    const Welcome& welcome, std::vector<sweep::SweepPoint>& points,
    sweep::PointEvaluator& eval, std::string& error)>;

/// Binder for a pinned worker: serve exactly this spec with this
/// evaluator.
SweepBinder pinned_binder(const sweep::SweepSpec& spec,
                          sweep::PointEvaluator eval);

/// Binder for a registry worker: decode the welcome's spec, verify its
/// fingerprint against the coordinator's claim, and look up the
/// advertised evaluator in the standard registry (dp_threads as in
/// core/sweep/evaluators.h).
SweepBinder registry_binder(std::size_t dp_threads);

}  // namespace qps::net
