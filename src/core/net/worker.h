// Worker-side protocol state machine and sweep binding.
//
// WorkerEngine mirrors JobServerEngine: a transport-free line-level state
// machine (send hello, await welcome, then serve request frames until
// bye).  The blocking TCP driver around it lives in
// core/net/socket_sweep.h; the simulated driver in
// sim/protocol_harness.h.
//
// What a worker actually evaluates is bound from the accepted welcome by
// a SweepBinder:
//
//  * pinned workers (a bench re-invoked with --connect) rebuilt the spec
//    from their own argv and bind their own evaluator, ignoring the
//    welcome payload;
//  * registry workers (tools/qps_workerd) decode the spec the welcome
//    carries (core/sweep/spec_codec.h), re-derive its fingerprint, refuse
//    to serve when it disagrees with the coordinator's claim, and look
//    the evaluator up in the standard registry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/net/messages.h"
#include "core/sweep/sweep_runner.h"
#include "core/sweep/sweep_spec.h"

namespace qps::net {

class WorkerEngine {
 public:
  explicit WorkerEngine(Hello hello) : hello_(std::move(hello)) {}

  /// The first frame to transmit after connecting.
  std::string hello_line() const { return encode_hello(hello_); }

  struct Event {
    enum class Kind {
      kNone,           ///< Frame consumed (nothing for the driver to do).
      kAccepted,       ///< Welcome accepted; `welcome` holds the payload.
      kDeclined,       ///< Welcome declined; `welcome.retry` classifies.
      kEvaluate,       ///< Coordinator requests point `index`.
      kBye,            ///< Sweep complete; disconnect cleanly.
      kProtocolError,  ///< Peer violated the protocol; `error` explains.
    };
    Kind kind = Kind::kNone;
    Welcome welcome;
    std::size_t index = 0;
    std::string error;
  };

  /// Consumes one reassembled line from the coordinator.
  Event on_line(const std::string& line);

  /// Result frame for a completed evaluation (pinned fields from the
  /// hello / accepted welcome).
  std::string result_line(const sweep::SweepPoint& point,
                          const RunningStats& stats) const;

  bool accepted() const { return accepted_; }

 private:
  Hello hello_;
  bool accepted_ = false;
  std::string sweep_name_;
  std::uint64_t fingerprint_ = 0;
};

/// Produces the points and evaluator to serve from an accepted welcome;
/// returns false (with `error` set) to abandon the connection.
using SweepBinder = std::function<bool(
    const Welcome& welcome, std::vector<sweep::SweepPoint>& points,
    sweep::PointEvaluator& eval, std::string& error)>;

/// Binder for a pinned worker: serve exactly this spec with this
/// evaluator.
SweepBinder pinned_binder(const sweep::SweepSpec& spec,
                          sweep::PointEvaluator eval);

/// Binder for a registry worker: decode the welcome's spec, verify its
/// fingerprint against the coordinator's claim, and look up the
/// advertised evaluator in the standard registry (dp_threads as in
/// core/sweep/evaluators.h).
SweepBinder registry_binder(std::size_t dp_threads);

}  // namespace qps::net
