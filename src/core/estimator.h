// Monte-Carlo measurement harness.
//
// Three measurement modes, matching the paper's three models:
//  * estimate_ppc: expected probes under i.i.d. element failures
//    (the probabilistic model of Section 3);
//  * expected_probes_on: expected probes of a (randomized) strategy on one
//    fixed coloring (the inner expectation of the randomized model);
//  * worst_case_search: hill-climbing adversary over colorings, maximizing
//    the estimated expected probes -- an empirical lower bound on the
//    worst-case expectation sup_c E[probes] of Section 4.
// Every run can optionally validate the returned witness against the
// ground truth coloring; validation failures throw.
//
// Two flavors of every estimate:
//  * the Rng& overloads run single-threaded on the caller's generator, one
//    stream, trial after trial (the original estimator semantics);
//  * the EngineOptions overloads shard trials across the ParallelEstimator
//    worker pool (core/engine/parallel_estimator.h) with deterministic
//    per-batch RNG streams and optional early stop.
#pragma once

#include <optional>

#include "core/coloring.h"
#include "core/engine/parallel_estimator.h"
#include "core/strategy.h"
#include "quorum/quorum_system.h"
#include "util/rng.h"
#include "util/stats.h"

namespace qps {

struct EstimatorOptions {
  std::size_t trials = 1000;
  bool validate_witnesses = false;
};

/// Expected probes of `strategy` when every element fails i.i.d. with
/// probability `p`.  Single-threaded, on the caller's generator.
RunningStats estimate_ppc(const QuorumSystem& system,
                          const ProbeStrategy& strategy, double p,
                          const EstimatorOptions& options, Rng& rng);

/// Engine-backed variant: trials sharded across `options.threads` workers,
/// reproducible from `options.seed` regardless of thread count.
RunningStats estimate_ppc(const QuorumSystem& system,
                          const ProbeStrategy& strategy, double p,
                          const EngineOptions& options);

/// Expected probes of `strategy` on the fixed `coloring` (expectation over
/// the strategy's internal randomness).  Single-threaded, on the caller's
/// generator.
RunningStats expected_probes_on(const QuorumSystem& system,
                                const ProbeStrategy& strategy,
                                const Coloring& coloring,
                                const EstimatorOptions& options, Rng& rng);

/// Engine-backed variant of expected_probes_on.
RunningStats expected_probes_on(const QuorumSystem& system,
                                const ProbeStrategy& strategy,
                                const Coloring& coloring,
                                const EngineOptions& options);

struct WorstCaseResult {
  Coloring coloring;
  double expected_probes = 0.0;
};

/// Hill-climbing search for a coloring maximizing the estimated expected
/// probes of `strategy`.  Starts from `seed_coloring` (or all-red when
/// absent), repeatedly accepting single-element flips that do not decrease
/// the estimate.  `trials_per_eval` controls the inner Monte-Carlo size.
WorstCaseResult worst_case_search(const QuorumSystem& system,
                                  const ProbeStrategy& strategy,
                                  std::optional<Coloring> seed_coloring,
                                  std::size_t rounds,
                                  std::size_t trials_per_eval, Rng& rng);

/// Engine-backed variant: flip proposals still come from `rng`, but every
/// inner expectation runs on the parallel engine with `engine_options`
/// (whose `trials` is the per-evaluation budget).
WorstCaseResult worst_case_search(const QuorumSystem& system,
                                  const ProbeStrategy& strategy,
                                  std::optional<Coloring> seed_coloring,
                                  std::size_t rounds, Rng& rng,
                                  const EngineOptions& engine_options);

}  // namespace qps
