#include "core/estimator.h"

#include <stdexcept>

#include "util/require.h"

namespace qps {

namespace {

double one_run(const QuorumSystem& system, const ProbeStrategy& strategy,
               const Coloring& coloring, bool validate, Rng& rng) {
  ProbeSession session(coloring);
  const Witness witness = strategy.run(session, rng);
  if (validate) {
    const std::string error =
        validate_witness(system, coloring, witness, session.probed());
    if (!error.empty())
      throw std::logic_error(strategy.name() + " returned a bad witness: " +
                             error);
  }
  return static_cast<double>(session.probe_count());
}

}  // namespace

RunningStats estimate_ppc(const QuorumSystem& system,
                          const ProbeStrategy& strategy, double p,
                          const EstimatorOptions& options, Rng& rng) {
  QPS_REQUIRE(options.trials > 0, "need at least one trial");
  RunningStats stats;
  for (std::size_t t = 0; t < options.trials; ++t) {
    const Coloring coloring =
        sample_iid_coloring(system.universe_size(), p, rng);
    stats.add(one_run(system, strategy, coloring,
                      options.validate_witnesses, rng));
  }
  return stats;
}

RunningStats expected_probes_on(const QuorumSystem& system,
                                const ProbeStrategy& strategy,
                                const Coloring& coloring,
                                const EstimatorOptions& options, Rng& rng) {
  QPS_REQUIRE(options.trials > 0, "need at least one trial");
  RunningStats stats;
  for (std::size_t t = 0; t < options.trials; ++t)
    stats.add(one_run(system, strategy, coloring,
                      options.validate_witnesses, rng));
  return stats;
}

WorstCaseResult worst_case_search(const QuorumSystem& system,
                                  const ProbeStrategy& strategy,
                                  std::optional<Coloring> seed_coloring,
                                  std::size_t rounds,
                                  std::size_t trials_per_eval, Rng& rng) {
  const std::size_t n = system.universe_size();
  Coloring current = seed_coloring.value_or(Coloring(n));
  EstimatorOptions options;
  options.trials = trials_per_eval;

  double current_score =
      expected_probes_on(system, strategy, current, options, rng).mean();
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto e = static_cast<Element>(rng.below(n));
    const Coloring flipped =
        current.with(e, opposite(current.color(e)));
    const double flipped_score =
        expected_probes_on(system, strategy, flipped, options, rng).mean();
    if (flipped_score >= current_score) {
      current = flipped;
      current_score = flipped_score;
    }
  }
  return {current, current_score};
}

}  // namespace qps
