#include "core/estimator.h"

#include "util/require.h"

namespace qps {

namespace {

// Bridges the legacy single-threaded options to an engine configured for
// the sequential compatibility path.
EngineOptions sequential_engine(const EstimatorOptions& options) {
  QPS_REQUIRE(options.trials > 0, "need at least one trial");
  EngineOptions engine;
  engine.trials = options.trials;
  engine.threads = 1;
  engine.validate_witnesses = options.validate_witnesses;
  return engine;
}

}  // namespace

RunningStats estimate_ppc(const QuorumSystem& system,
                          const ProbeStrategy& strategy, double p,
                          const EstimatorOptions& options, Rng& rng) {
  const ParallelEstimator engine(sequential_engine(options));
  const bool validate = options.validate_witnesses;
  return engine.run_sequential(
      [&](Rng& r) {
        const Coloring coloring =
            sample_iid_coloring(system.universe_size(), p, r);
        return run_probe_trial(system, strategy, coloring, validate, r);
      },
      rng);
}

RunningStats estimate_ppc(const QuorumSystem& system,
                          const ProbeStrategy& strategy, double p,
                          const EngineOptions& options) {
  return ParallelEstimator(options).estimate_ppc(system, strategy, p);
}

RunningStats expected_probes_on(const QuorumSystem& system,
                                const ProbeStrategy& strategy,
                                const Coloring& coloring,
                                const EstimatorOptions& options, Rng& rng) {
  const ParallelEstimator engine(sequential_engine(options));
  const bool validate = options.validate_witnesses;
  return engine.run_sequential(
      [&](Rng& r) {
        return run_probe_trial(system, strategy, coloring, validate, r);
      },
      rng);
}

RunningStats expected_probes_on(const QuorumSystem& system,
                                const ProbeStrategy& strategy,
                                const Coloring& coloring,
                                const EngineOptions& options) {
  return ParallelEstimator(options).expected_probes_on(system, strategy,
                                                       coloring);
}

namespace {

// Shared hill-climb skeleton: `evaluate` scores one coloring; flips are
// proposed from `rng` and accepted when not worse.
WorstCaseResult hill_climb(
    const QuorumSystem& system, std::optional<Coloring> seed_coloring,
    std::size_t rounds, Rng& rng,
    const std::function<double(const Coloring&)>& evaluate) {
  const std::size_t n = system.universe_size();
  Coloring current = seed_coloring.value_or(Coloring(n));
  double current_score = evaluate(current);
  for (std::size_t round = 0; round < rounds; ++round) {
    const auto e = static_cast<Element>(rng.below(n));
    const Coloring flipped = current.with(e, opposite(current.color(e)));
    const double flipped_score = evaluate(flipped);
    if (flipped_score >= current_score) {
      current = flipped;
      current_score = flipped_score;
    }
  }
  return {current, current_score};
}

}  // namespace

WorstCaseResult worst_case_search(const QuorumSystem& system,
                                  const ProbeStrategy& strategy,
                                  std::optional<Coloring> seed_coloring,
                                  std::size_t rounds,
                                  std::size_t trials_per_eval, Rng& rng) {
  EstimatorOptions options;
  options.trials = trials_per_eval;
  return hill_climb(system, std::move(seed_coloring), rounds, rng,
                    [&](const Coloring& c) {
                      return expected_probes_on(system, strategy, c, options,
                                                rng)
                          .mean();
                    });
}

WorstCaseResult worst_case_search(const QuorumSystem& system,
                                  const ProbeStrategy& strategy,
                                  std::optional<Coloring> seed_coloring,
                                  std::size_t rounds, Rng& rng,
                                  const EngineOptions& engine_options) {
  // Every evaluation reuses the same engine seed: common random numbers
  // across colorings, so a flip is judged on the coloring change rather
  // than on sampling noise.
  const ParallelEstimator engine(engine_options);
  return hill_climb(
      system, std::move(seed_coloring), rounds, rng, [&](const Coloring& c) {
        return engine.expected_probes_on(system, strategy, c).mean();
      });
}

}  // namespace qps
