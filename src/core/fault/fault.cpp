#include "core/fault/fault.h"

#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <new>
#include <sstream>
#include <thread>
#include <vector>

#include "core/obs/metrics.h"

namespace qps::fault {

namespace {

enum class Action { kCrash, kError, kDelay, kTorn, kAllocFail };

const char* action_name(Action action) {
  switch (action) {
    case Action::kCrash: return "crash";
    case Action::kError: return "error";
    case Action::kDelay: return "delay";
    case Action::kTorn: return "torn";
    case Action::kAllocFail: return "alloc";
  }
  return "?";
}

struct Rule {
  std::string point;
  Action action = Action::kError;
  std::uint64_t after = 1;   ///< First hit (1-based) the rule may fire on.
  std::uint64_t count = 0;   ///< Max firings; 0 means unlimited.
  double prob = -1.0;        ///< Firing probability; < 0 means always.
  std::uint64_t seed = 0;    ///< Seed for the prob decision hash.
  double ms = 10.0;          ///< Delay action: stall duration.
  double frac = 0.5;         ///< Torn action: payload fraction kept.
  std::string match;         ///< Detail-tag substring filter; empty: any.
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  obs::Counter* fired_counter = nullptr;
};

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

/// Deterministic per-hit firing decision: a pure function of (seed, point
/// name, 1-based hit index), independent of scheduling.
bool bernoulli(const Rule& rule, std::uint64_t hit_index) {
  if (rule.prob < 0.0) return true;
  const std::uint64_t h =
      splitmix64(rule.seed ^ splitmix64(fnv1a(rule.point) + hit_index));
  const double u =
      static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // [0,1)
  return u < rule.prob;
}

class Registry {
 public:
  static Registry& instance() {
    static Registry registry;
    return registry;
  }

  void configure(const std::string& spec) {
    std::vector<Rule> parsed = parse(spec);
    if (parsed.empty()) return;
    std::lock_guard<std::mutex> lock(mutex_);
    load_env_locked();
    for (Rule& rule : parsed) install_locked(std::move(rule));
  }

  void clear() {
    std::lock_guard<std::mutex> lock(mutex_);
    rules_.clear();
    env_loaded_ = true;  // an explicit clear() also discards QPS_FAULTS
    armed_.store(false, std::memory_order_relaxed);
  }

  std::string describe() {
    std::lock_guard<std::mutex> lock(mutex_);
    load_env_locked();
    std::ostringstream os;
    for (std::size_t i = 0; i < rules_.size(); ++i) {
      if (i) os << "; ";
      os << rules_[i].point << ':' << action_name(rules_[i].action);
    }
    return os.str();
  }

  bool armed() {
    std::lock_guard<std::mutex> lock(mutex_);
    load_env_locked();
    return !rules_.empty();
  }

  /// The disarmed fast path reads one relaxed atomic; QPS_FAULTS is
  /// loaded lazily on the first hit so library code needs no init call.
  bool maybe_armed() {
    if (armed_.load(std::memory_order_relaxed)) return true;
    if (env_loaded_.load(std::memory_order_acquire)) return false;
    std::lock_guard<std::mutex> lock(mutex_);
    load_env_locked();
    return armed_.load(std::memory_order_relaxed);
  }

  void hit(const char* point, std::string_view detail) {
    if (!maybe_armed()) return;
    Action action = Action::kError;
    std::string what;
    double ms = 0.0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      static obs::Counter& hits =
          obs::MetricsRegistry::instance().counter("fault/hits");
      hits.increment();
      Rule* firing = nullptr;
      for (Rule& rule : rules_) {
        if (rule.action == Action::kTorn) continue;  // consume_torn() only
        if (!matches(rule, point, detail)) continue;
        ++rule.hits;
        if (firing == nullptr && eligible(rule)) firing = &rule;
      }
      if (firing == nullptr) return;
      fired_locked(*firing);
      action = firing->action;
      ms = firing->ms;
      std::ostringstream os;
      os << "fault: " << action_name(action) << " at " << point << " (hit "
         << firing->hits << ")";
      what = os.str();
    }
    // Perform the action outside the lock: a stalled or throwing site must
    // not hold up other threads' fault evaluation.
    switch (action) {
      case Action::kCrash: {
        what += "\n";
        // Raw write(2): stdio buffers would be lost across _Exit.
        [[maybe_unused]] const ssize_t n =
            ::write(STDERR_FILENO, what.data(), what.size());
        std::_Exit(86);
      }
      case Action::kError:
        throw InjectedFault(what);
      case Action::kDelay:
        std::this_thread::sleep_for(std::chrono::duration<double>(ms / 1e3));
        return;
      case Action::kAllocFail:
        throw std::bad_alloc();
      case Action::kTorn:
        return;  // unreachable
    }
  }

  std::optional<double> consume_torn(const char* point,
                                     std::string_view detail) {
    if (!maybe_armed()) return std::nullopt;
    std::lock_guard<std::mutex> lock(mutex_);
    for (Rule& rule : rules_) {
      if (rule.action != Action::kTorn) continue;
      if (!matches(rule, point, detail)) continue;
      ++rule.hits;
      if (!eligible(rule)) continue;
      fired_locked(rule);
      return rule.frac;
    }
    return std::nullopt;
  }

 private:
  static bool matches(const Rule& rule, const char* point,
                      std::string_view detail) {
    if (rule.point != point) return false;
    return rule.match.empty() ||
           detail.find(rule.match) != std::string_view::npos;
  }

  static bool eligible(const Rule& rule) {
    if (rule.hits < rule.after) return false;
    if (rule.count != 0 && rule.fired >= rule.count) return false;
    return bernoulli(rule, rule.hits);
  }

  void fired_locked(Rule& rule) {
    ++rule.fired;
    static obs::Counter& fired =
        obs::MetricsRegistry::instance().counter("fault/fired");
    fired.increment();
    if (rule.fired_counter) rule.fired_counter->increment();
  }

  void install_locked(Rule rule) {
    rule.fired_counter =
        &obs::MetricsRegistry::instance().counter("fault/fired/" + rule.point);
    rules_.push_back(std::move(rule));
    armed_.store(true, std::memory_order_relaxed);
  }

  void load_env_locked() {
    if (env_loaded_.load(std::memory_order_relaxed)) return;
    const char* env = std::getenv("QPS_FAULTS");
    if (env != nullptr && *env != '\0')
      for (Rule& rule : parse(env)) install_locked(std::move(rule));
    env_loaded_.store(true, std::memory_order_release);
  }

  static std::vector<Rule> parse(const std::string& spec);

  std::mutex mutex_;
  std::vector<Rule> rules_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> env_loaded_{false};
};

[[noreturn]] void bad_spec(const std::string& rule, const std::string& why) {
  throw std::invalid_argument("bad fault rule '" + rule + "': " + why);
}

double parse_number(const std::string& rule, const std::string& text) {
  try {
    std::size_t used = 0;
    const double value = std::stod(text, &used);
    if (used != text.size()) bad_spec(rule, "trailing junk in '" + text + "'");
    return value;
  } catch (const std::invalid_argument&) {
    bad_spec(rule, "not a number: '" + text + "'");
  } catch (const std::out_of_range&) {
    bad_spec(rule, "out of range: '" + text + "'");
  }
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin])))
    ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])))
    --end;
  return text.substr(begin, end - begin);
}

std::vector<Rule> Registry::parse(const std::string& spec) {
  std::vector<Rule> rules;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t semi = spec.find(';', start);
    if (semi == std::string::npos) semi = spec.size();
    const std::string text = trim(spec.substr(start, semi - start));
    start = semi + 1;
    if (text.empty()) continue;

    std::vector<std::string> fields;
    std::size_t fstart = 0;
    while (fstart <= text.size()) {
      std::size_t colon = text.find(':', fstart);
      if (colon == std::string::npos) colon = text.size();
      fields.push_back(text.substr(fstart, colon - fstart));
      fstart = colon + 1;
    }
    if (fields.size() < 2) bad_spec(text, "want POINT:ACTION[:PARAM...]");

    Rule rule;
    rule.point = fields[0];
    if (rule.point.empty()) bad_spec(text, "empty point name");
    const std::string& action = fields[1];
    if (action == "crash") rule.action = Action::kCrash;
    else if (action == "error") rule.action = Action::kError;
    else if (action == "delay") rule.action = Action::kDelay;
    else if (action == "torn") rule.action = Action::kTorn;
    else if (action == "alloc") rule.action = Action::kAllocFail;
    else
      bad_spec(text, "unknown action '" + action +
                         "' (want crash|error|delay|torn|alloc)");

    for (std::size_t i = 2; i < fields.size(); ++i) {
      const std::size_t eq = fields[i].find('=');
      if (eq == std::string::npos)
        bad_spec(text, "parameter '" + fields[i] + "' is not KEY=VALUE");
      const std::string key = fields[i].substr(0, eq);
      const std::string value = fields[i].substr(eq + 1);
      if (key == "after") {
        const double v = parse_number(text, value);
        if (v < 1) bad_spec(text, "after must be >= 1");
        rule.after = static_cast<std::uint64_t>(v);
      } else if (key == "count") {
        rule.count = static_cast<std::uint64_t>(parse_number(text, value));
      } else if (key == "prob") {
        rule.prob = parse_number(text, value);
        if (rule.prob < 0.0 || rule.prob > 1.0)
          bad_spec(text, "prob must be in [0, 1]");
      } else if (key == "seed") {
        rule.seed = static_cast<std::uint64_t>(parse_number(text, value));
      } else if (key == "ms") {
        rule.ms = parse_number(text, value);
      } else if (key == "frac") {
        rule.frac = parse_number(text, value);
        if (rule.frac < 0.0 || rule.frac > 1.0)
          bad_spec(text, "frac must be in [0, 1]");
      } else if (key == "match") {
        rule.match = value;
      } else {
        bad_spec(text, "unknown parameter '" + key + "'");
      }
    }
    rules.push_back(std::move(rule));
  }
  return rules;
}

}  // namespace

void configure(const std::string& spec) { Registry::instance().configure(spec); }

void clear() { Registry::instance().clear(); }

std::string describe() { return Registry::instance().describe(); }

namespace detail {

void hit_impl(const char* point, std::string_view detail) {
  Registry::instance().hit(point, detail);
}

std::optional<double> consume_torn_impl(const char* point,
                                        std::string_view detail) {
  return Registry::instance().consume_torn(point, detail);
}

bool armed_impl() { return Registry::instance().armed(); }

}  // namespace detail

}  // namespace qps::fault
