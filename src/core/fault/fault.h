// Deterministic fault injection for the engine, sweep, and net fabric.
//
// Code under test declares named fault points:
//
//   QPS_FAULT_POINT("sweep/checkpoint_write");           // plain site
//   QPS_FAULT_POINT2("net/worker_eval", point.id);       // with a detail tag
//
// and a process-global FaultRegistry -- armed from `--fault SPEC` or the
// QPS_FAULTS environment variable -- decides per hit whether the site
// crashes, throws, stalls, or (for write helpers that opt in via
// consume_torn()) truncates its write.  Nothing fires unless a spec was
// installed, and the disarmed fast path is a single relaxed atomic load.
//
// Spec grammar (see README "Robustness"):
//
//   SPEC   := RULE (';' RULE)*
//   RULE   := POINT ':' ACTION (':' PARAM)*
//   ACTION := crash | error | delay | torn | alloc
//   PARAM  := after=N | count=K | prob=P | seed=S | ms=M | frac=F | match=SUB
//
// A rule fires on hits number `after`, after+1, ... (1-based, default 1),
// at most `count` times (default unlimited).  With `prob` set, each
// eligible hit instead fires with probability P, decided by a hash of
// (seed, point name, hit index) -- fully deterministic, independent of
// thread interleaving for a fixed per-point hit order.  `match` restricts
// a rule to hits whose detail tag contains SUB (e.g. one sweep point id).
// Actions:
//
//   crash  -- write one diagnostic line to stderr and _Exit(86).
//   error  -- throw fault::InjectedFault (a std::runtime_error).
//   delay  -- sleep `ms` milliseconds (default 10), then continue.
//   alloc  -- throw std::bad_alloc, exercising allocation-failure paths.
//   torn   -- only consulted by consume_torn(): the write helper keeps
//             the first `frac` (default 0.5) of the payload and drops the
//             rest, modelling a torn write / full disk without reporting
//             an error.  hit() ignores torn rules.
//
// Every evaluation bumps `fault/hits`; every firing bumps `fault/fired`
// and `fault/fired/<point>` in the MetricsRegistry.
//
// Compiling with QPS_FAULT=0 (-DQPS_FAULT=OFF at configure time) turns
// every site into nothing: the macros expand to a discarded void and the
// inline wrappers constant-fold away, so the disarmed cost is literally
// zero -- the same kill-switch contract as the obs layer.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

#ifndef QPS_FAULT
#define QPS_FAULT 1
#endif

namespace qps::fault {

/// True when fault points are compiled in (QPS_FAULT != 0).
inline constexpr bool kFaultCompiled = QPS_FAULT != 0;

/// Thrown by the `error` action; code that survives it must treat it like
/// any other operational failure (I/O error, lost connection, ...).
class InjectedFault : public std::runtime_error {
 public:
  explicit InjectedFault(const std::string& what) : std::runtime_error(what) {}
};

/// Installs (appends) fault rules from a spec string.  Throws
/// std::invalid_argument naming the offending rule on a malformed spec.
/// An empty spec is a no-op.
void configure(const std::string& spec);

/// Removes every installed rule and resets hit counters (tests).
void clear();

/// Human-readable summary of the installed rules; empty when disarmed.
std::string describe();

namespace detail {
void hit_impl(const char* point, std::string_view detail);
std::optional<double> consume_torn_impl(const char* point,
                                        std::string_view detail);
bool armed_impl();
}  // namespace detail

/// Evaluates the rules for `point`; may crash, throw, or stall per the
/// installed spec.  `detail` is matched against rules' `match=` filter.
inline void hit(const char* point, std::string_view detail = {}) {
  if constexpr (kFaultCompiled)
    detail::hit_impl(point, detail);
  else
    (void)point, (void)detail;
}

/// Torn-write hook for write helpers: when a `torn` rule for `point`
/// fires, returns the fraction of the payload to keep (in [0, 1]);
/// nullopt means write everything as usual.
inline std::optional<double> consume_torn(const char* point,
                                          std::string_view detail = {}) {
  if constexpr (kFaultCompiled) return detail::consume_torn_impl(point, detail);
  (void)point, (void)detail;
  return std::nullopt;
}

/// True when at least one rule is installed (diagnostics; the hot path
/// does its own check inside hit()).
inline bool armed() {
  if constexpr (kFaultCompiled) return detail::armed_impl();
  return false;
}

}  // namespace qps::fault

/// Named fault point; compiles to nothing under -DQPS_FAULT=OFF.
#define QPS_FAULT_POINT(point) ::qps::fault::hit(point)
/// Fault point with a detail tag for `match=` rules (e.g. a point id).
#define QPS_FAULT_POINT2(point, detail) ::qps::fault::hit(point, detail)
