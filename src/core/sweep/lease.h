// Coordinator lease for warm-standby failover.
//
// The lease answers exactly one question -- "does a live coordinator own
// this checkpoint journal right now?" -- and answers it with mtime
// freshness: the holder rewrites the lease file (atomic-rename,
// util/fsio.h) on a background thread every timeout/3, so a standby that
// finds the file missing or older than the timeout may take over.  The
// file carries a generation counter bumped by every acquisition; the
// holder's renewal thread re-reads before each rewrite and flags itself
// superseded() the moment someone else's generation appears, which is how
// a SIGSTOPped-and-resumed zombie coordinator discovers the takeover even
// if no worker ever tells it.
//
// The lease is deliberately NOT the fencing authority for results -- file
// mtimes and wall clocks are too weak for correctness.  Fencing rides on
// the checkpoint journal's monotonic epoch records
// (core/sweep/checkpoint.h) echoed through the net protocol
// (core/net/messages.h); the lease only decides *when* a standby starts,
// and gives a zombie a second, worker-independent way to learn it must
// stand down.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

namespace qps::sweep {

class CoordinatorLease {
 public:
  struct Holder {
    std::string node;
    std::int64_t pid = 0;
    std::uint64_t generation = 0;
  };

  /// `timeout_seconds` is both the staleness threshold and the base of
  /// the renewal cadence (timeout/3).  Nothing is written until acquire()
  /// or wait_and_acquire().
  CoordinatorLease(std::string lease_path, std::string node,
                   double timeout_seconds);
  ~CoordinatorLease();

  CoordinatorLease(const CoordinatorLease&) = delete;
  CoordinatorLease& operator=(const CoordinatorLease&) = delete;

  /// The conventional lease path for a checkpoint journal.
  static std::string path_for(const std::string& checkpoint_path) {
    return checkpoint_path + ".lease";
  }

  /// Decodes the lease file; nullopt when missing or unreadable.
  static std::optional<Holder> read(const std::string& lease_path);

  /// True when the lease file is missing or last renewed longer than the
  /// timeout ago (by mtime).
  bool stale() const;

  /// Takes the lease immediately (generation = current + 1) and starts
  /// the renewal thread.  Throws std::runtime_error when the lease file
  /// cannot be written -- an unwritable lease must not be silently held.
  void acquire();

  /// Standby entry: blocks until stale(), invoking `on_wait` (when set)
  /// between polls -- a socket standby declines queued connections there
  /// so workers keep cycling -- then hits the "sweep/standby_takeover"
  /// fault point and acquires.
  void wait_and_acquire(const std::function<void()>& on_wait = {});

  bool held() const { return held_; }
  /// Another process has bumped the generation: stop coordinating.
  bool superseded() const { return superseded_.load(); }
  std::uint64_t generation() const { return generation_; }
  const std::string& path() const { return path_; }

 private:
  void write_lease();
  void renew_loop();
  void stop_renewal();

  std::string path_;
  std::string node_;
  double timeout_;
  std::uint64_t generation_ = 0;
  bool held_ = false;
  std::atomic<bool> superseded_{false};

  std::thread renewer_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace qps::sweep
