#include "core/sweep/checkpoint.h"

#include <fstream>
#include <iostream>

#include "core/fault/fault.h"
#include "core/obs/metrics.h"
#include "core/sweep/wire.h"

namespace qps::sweep {

SweepCheckpoint::SweepCheckpoint(std::string path, std::string sweep_name,
                                 std::uint64_t fingerprint, bool resume)
    : path_(std::move(path)),
      sweep_name_(std::move(sweep_name)),
      fingerprint_(fingerprint) {
  if (path_.empty()) return;
  if (resume) {
    std::ifstream in(path_);
    recovery_.existed = in.good();
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      const auto result = decode_result(line);
      if (!result) {
        // Torn tail (killed mid-append) or damaged mid-file line: the
        // journal is an optimization, never an authority, so the point is
        // simply recomputed -- but the damage is counted and reported
        // below, never swallowed.
        ++recovery_.corrupt;
        continue;
      }
      if (result->sweep != sweep_name_ || result->fingerprint != fingerprint_) {
        ++recovery_.foreign;
        continue;
      }
      completed_[result->index] = result->stats;
      ++recovery_.recovered;
    }
    if (recovery_.existed && recovery_.corrupt > 0)
      std::cerr << "sweep " << sweep_name_ << ": checkpoint journal " << path_
                << ": skipped " << recovery_.corrupt
                << " unparseable line(s) (torn or corrupt); those points "
                   "will be recomputed\n";
    else if (recovery_.existed && recovery_.recovered == 0 &&
             recovery_.foreign == 0)
      std::cerr << "sweep " << sweep_name_ << ": checkpoint journal " << path_
                << " is empty; nothing to resume\n";
  }
  // Always append: a bench may journal several sweeps into one file, so
  // truncating a stale journal is the caller's one-time decision (see
  // bench_common.h), not something to redo per sweep.
  try {
    out_ = std::make_unique<util::AppendFile>(path_, "sweep/checkpoint_write");
  } catch (const util::IoError& e) {
    throw CheckpointError(std::string("cannot open checkpoint journal: ") +
                              e.what(),
                          path_);
  }
}

void SweepCheckpoint::record(const SweepPoint& point,
                             const RunningStats& stats) {
  if (!out_) return;
  const std::string line =
      encode_result(sweep_name_, fingerprint_, point, stats);
  try {
    out_->append_line(line);
  } catch (const util::IoError& e) {
    throw CheckpointError(
        std::string("failed writing checkpoint journal: ") + e.what(), path_);
  } catch (const fault::InjectedFault& e) {
    // The injected stand-in for a full disk: same structured failure as
    // the real thing.
    throw CheckpointError(
        std::string("failed writing checkpoint journal ") + path_ + ": " +
            e.what(),
        path_);
  }
  completed_[point.index] = stats;
  static obs::Counter& writes =
      obs::MetricsRegistry::instance().counter("sweep/checkpoint_writes");
  writes.increment();
}

}  // namespace qps::sweep
