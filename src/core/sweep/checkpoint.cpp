#include "core/sweep/checkpoint.h"

#include <algorithm>
#include <fstream>
#include <iostream>

#include "core/fault/fault.h"
#include "core/obs/metrics.h"
#include "core/sweep/wire.h"

namespace qps::sweep {

SweepCheckpoint::SweepCheckpoint(std::string path, std::string sweep_name,
                                 std::uint64_t fingerprint, bool resume)
    : path_(std::move(path)),
      sweep_name_(std::move(sweep_name)),
      fingerprint_(fingerprint) {
  if (path_.empty()) return;
  std::uint64_t max_epoch = 0;
  {
    // Scan even without --resume: the epoch records of earlier
    // activations must be seen for this activation's epoch to be larger
    // (results and poison markers are only loaded when resuming).
    std::ifstream in(path_);
    if (resume) recovery_.existed = in.good();
    std::string line;
    while (in && std::getline(in, line)) {
      if (line.empty()) continue;
      if (is_journal_control(line)) {
        const auto ctl = decode_journal_control(line);
        if (!ctl) {
          if (resume) ++recovery_.corrupt;
          continue;
        }
        if (ctl->sweep != sweep_name_ || ctl->fingerprint != fingerprint_) {
          if (resume) ++recovery_.foreign;
          continue;
        }
        if (resume) ++recovery_.control;
        switch (ctl->kind) {
          case JournalRecordKind::kEpoch:
            max_epoch = std::max(max_epoch, ctl->epoch);
            break;
          case JournalRecordKind::kQuarantine:
            if (resume) poisoned_[ctl->index] = ctl->attempts;
            break;
          case JournalRecordKind::kReadmit:
            poisoned_.erase(ctl->index);
            break;
          case JournalRecordKind::kResult:
            break;
        }
        continue;
      }
      if (!resume) continue;
      const auto result = decode_result(line);
      if (!result) {
        // Torn tail (killed mid-append) or damaged mid-file line: the
        // journal is an optimization, never an authority, so the point is
        // simply recomputed -- but the damage is counted and reported
        // below, never swallowed.
        ++recovery_.corrupt;
        continue;
      }
      if (result->sweep != sweep_name_ || result->fingerprint != fingerprint_) {
        ++recovery_.foreign;
        continue;
      }
      completed_[result->index] = result->stats;
      poisoned_.erase(result->index);
      ++recovery_.recovered;
    }
    if (recovery_.existed && recovery_.corrupt > 0)
      std::cerr << "sweep " << sweep_name_ << ": checkpoint journal " << path_
                << ": skipped " << recovery_.corrupt
                << " unparseable line(s) (torn or corrupt); those points "
                   "will be recomputed\n";
    else if (recovery_.existed && recovery_.recovered == 0 &&
             recovery_.foreign == 0 && recovery_.control == 0)
      std::cerr << "sweep " << sweep_name_ << ": checkpoint journal " << path_
                << " is empty; nothing to resume\n";
  }
  // Always append: a bench may journal several sweeps into one file, so
  // truncating a stale journal is the caller's one-time decision (see
  // bench_common.h), not something to redo per sweep.
  try {
    out_ = std::make_unique<util::AppendFile>(path_, "sweep/checkpoint_write");
  } catch (const util::IoError& e) {
    throw CheckpointError(std::string("cannot open checkpoint journal: ") +
                              e.what(),
                          path_);
  } catch (const fault::InjectedFault& e) {
    throw CheckpointError(std::string("cannot open checkpoint journal ") +
                              path_ + ": " + e.what(),
                          path_);
  }
  // Claim this activation's epoch: one past everything the journal has
  // seen for (sweep, fingerprint).  The record is durable before any
  // result is dispatched, so a standby that later replays the journal is
  // guaranteed a strictly larger epoch.
  epoch_ = max_epoch + 1;
  append_checked(encode_epoch_record(sweep_name_, fingerprint_, epoch_));
}

void SweepCheckpoint::append_checked(const std::string& line) {
  try {
    out_->append_line(line);
  } catch (const util::IoError& e) {
    throw CheckpointError(
        std::string("failed writing checkpoint journal: ") + e.what(), path_);
  } catch (const fault::InjectedFault& e) {
    // The injected stand-in for a full disk: same structured failure as
    // the real thing.
    throw CheckpointError(
        std::string("failed writing checkpoint journal ") + path_ + ": " +
            e.what(),
        path_);
  }
}

void SweepCheckpoint::record(const SweepPoint& point,
                             const RunningStats& stats) {
  if (!out_) return;
  append_checked(encode_result(sweep_name_, fingerprint_, point, stats));
  completed_[point.index] = stats;
  static obs::Counter& writes =
      obs::MetricsRegistry::instance().counter("sweep/checkpoint_writes");
  writes.increment();
}

void SweepCheckpoint::record_quarantine(const SweepPoint& point,
                                        std::uint64_t attempts) {
  if (!out_) return;
  append_checked(
      encode_quarantine_record(sweep_name_, fingerprint_, point, attempts));
  poisoned_[point.index] = attempts;
}

void SweepCheckpoint::record_readmit(const SweepPoint& point) {
  if (!out_) return;
  append_checked(encode_readmit_record(sweep_name_, fingerprint_, point));
  poisoned_.erase(point.index);
}

}  // namespace qps::sweep
