#include "core/sweep/checkpoint.h"

#include <fstream>
#include <stdexcept>

#include "core/obs/metrics.h"
#include "core/sweep/wire.h"

namespace qps::sweep {

SweepCheckpoint::SweepCheckpoint(std::string path, std::string sweep_name,
                                 std::uint64_t fingerprint, bool resume)
    : path_(std::move(path)),
      sweep_name_(std::move(sweep_name)),
      fingerprint_(fingerprint) {
  if (path_.empty()) return;
  if (resume) {
    std::ifstream in(path_);
    std::string line;
    while (in && std::getline(in, line)) {
      const auto result = decode_result(line);
      if (!result || result->sweep != sweep_name_ ||
          result->fingerprint != fingerprint_)
        continue;
      completed_[result->index] = result->stats;
    }
  }
  // Always append: a bench may journal several sweeps into one file, so
  // truncating a stale journal is the caller's one-time decision (see
  // bench_common.h), not something to redo per sweep.
  out_ = std::fopen(path_.c_str(), "ab");
  if (!out_)
    throw std::runtime_error("cannot open checkpoint file " + path_);
}

SweepCheckpoint::~SweepCheckpoint() {
  if (out_) std::fclose(out_);
}

void SweepCheckpoint::record(const SweepPoint& point,
                             const RunningStats& stats) {
  if (!out_) return;
  const std::string line =
      encode_result(sweep_name_, fingerprint_, point, stats);
  if (std::fwrite(line.data(), 1, line.size(), out_) != line.size() ||
      std::fflush(out_) != 0)
    throw std::runtime_error("failed writing checkpoint file " + path_);
  completed_[point.index] = stats;
  static obs::Counter& writes =
      obs::MetricsRegistry::instance().counter("sweep/checkpoint_writes");
  writes.increment();
}

}  // namespace qps::sweep
