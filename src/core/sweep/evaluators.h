// Standard sweep evaluators: the registry behind generic remote workers.
//
// A bench re-invoked as a worker (--worker over pipes, --connect over
// sockets) rebuilds its evaluator from its own argv; a generic worker
// daemon (tools/qps_workerd) cannot, so it serves only sweeps whose
// evaluator is registered here by id.  The coordinator advertises the id
// in the handshake welcome alongside the serialized spec, and both sides
// must compute bit-identical results for the same point -- which they do
// because every registered evaluator is a pure function of the point (and
// of nothing machine-local; thread counts may differ because the exact DP
// kernel is bit-identical across thread counts by contract).
//
// standard_system() is the shared (family, size) -> QuorumSystem factory
// those evaluators and the bench harnesses both use, so a daemon-computed
// point and a coordinator-computed point agree on what "family=cw/size=1"
// means.  The crumbling-wall table is part of that contract.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/sweep/sweep_runner.h"
#include "quorum/quorum_system.h"

namespace qps::sweep {

/// The crumbling walls addressable as family "cw" (size indexes this
/// table).
const std::vector<std::vector<std::size_t>>& standard_crumbling_walls();

/// Builds the quorum system a sweep point's (family, size) coordinates
/// name: "maj", "tree", "hqs", "cw", or "wheel".  Throws
/// std::invalid_argument on an unknown family.
std::unique_ptr<QuorumSystem> standard_system(const std::string& family,
                                              std::size_t size);

/// Evaluator ids a generic worker daemon can serve, in stable order.
const std::vector<std::string>& standard_evaluator_ids();

/// Looks up a registered evaluator; an empty function when `id` is
/// unknown.  `dp_threads` configures the exact kernel's thread count
/// (0 = hardware concurrency); it does not affect results.
///
/// Registered ids:
///   "exact_ppc" -- one exact Bellman PPC_p solve of
///                  standard_system(family, size) at the point's p.
PointEvaluator find_standard_evaluator(const std::string& id,
                                       std::size_t dp_threads);

}  // namespace qps::sweep
