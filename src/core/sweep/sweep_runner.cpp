#include "core/sweep/sweep_runner.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <deque>
#include <iostream>
#include <sstream>

#include "core/fault/fault.h"
#include "core/obs/metrics.h"
#include "core/obs/trace.h"
#include "core/sweep/checkpoint.h"
#include "core/sweep/wire.h"
#include "util/require.h"

namespace qps::sweep {

namespace {

struct SweepMetrics {
  obs::Counter& points_done =
      obs::MetricsRegistry::instance().counter("sweep/points_done");
  obs::Counter& points_requeued =
      obs::MetricsRegistry::instance().counter("sweep/points_requeued");
  obs::Counter& points_quarantined =
      obs::MetricsRegistry::instance().counter("sweep/points_quarantined");
  obs::Counter& workers_respawned =
      obs::MetricsRegistry::instance().counter("sweep/workers_respawned");
  obs::Counter& worker_dispatches =
      obs::MetricsRegistry::instance().counter("sweep/worker_dispatches");
  obs::Gauge& queue_depth =
      obs::MetricsRegistry::instance().gauge("sweep/queue_depth");
  obs::Gauge& workers_busy =
      obs::MetricsRegistry::instance().gauge("sweep/workers_busy");

  static SweepMetrics& get() {
    static SweepMetrics metrics;
    return metrics;
  }
};

/// Writes the whole buffer, retrying on EINTR; false on any other error
/// (e.g. EPIPE from a dead worker).
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    data += static_cast<std::size_t>(n);
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

/// One spawned worker subprocess and its two pipe ends.
struct WorkerProc {
  pid_t pid = -1;
  int request_fd = -1;  ///< Parent writes request lines here (worker stdin).
  int result_fd = -1;   ///< Parent reads result lines here (worker fd 3).
  std::string buffer;   ///< Partial result line accumulator.
  bool busy = false;
  std::size_t in_flight = 0;
};

void close_worker_fds(WorkerProc& worker) {
  if (worker.request_fd >= 0) ::close(worker.request_fd);
  if (worker.result_fd >= 0) ::close(worker.result_fd);
  worker.request_fd = worker.result_fd = -1;
}

void reap_worker(WorkerProc& worker) {
  close_worker_fds(worker);
  if (worker.pid > 0) {
    int status = 0;
    ::waitpid(worker.pid, &status, 0);
    worker.pid = -1;
  }
}

/// fork/execs `command` with stdin and fd 3 wired to fresh pipes and
/// stdout discarded; returns the worker handle or pid -1 on failure.
WorkerProc spawn_worker(const std::vector<std::string>& command) {
  WorkerProc worker;
  int request_pipe[2] = {-1, -1};
  int result_pipe[2] = {-1, -1};
  if (::pipe(request_pipe) != 0) return worker;
  if (::pipe(result_pipe) != 0) {
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    return worker;
  }
  // The parent-side ends must not leak into later workers' exec images:
  // a sibling holding a copy of this worker's request pipe would keep it
  // from ever seeing EOF at shutdown.
  ::fcntl(request_pipe[1], F_SETFD, FD_CLOEXEC);
  ::fcntl(result_pipe[0], F_SETFD, FD_CLOEXEC);

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(request_pipe[0]);
    ::close(request_pipe[1]);
    ::close(result_pipe[0]);
    ::close(result_pipe[1]);
    return worker;
  }

  if (pid == 0) {
    // Child: requests on stdin, results on fd 3, stdout to /dev/null so
    // harness printing cannot corrupt the protocol.  pipe() fds are >= 3,
    // so the dup2 targets never collide with a source before its dup2.
    ::dup2(request_pipe[0], STDIN_FILENO);
    ::dup2(result_pipe[1], 3);
    const int devnull = ::open("/dev/null", O_WRONLY);
    if (devnull >= 0) {
      ::dup2(devnull, STDOUT_FILENO);
      if (devnull != STDOUT_FILENO) ::close(devnull);
    }
    for (const int fd : {request_pipe[0], request_pipe[1], result_pipe[0],
                         result_pipe[1]})
      if (fd != STDIN_FILENO && fd != 3) ::close(fd);

    std::vector<char*> argv;
    argv.reserve(command.size() + 1);
    for (const std::string& arg : command)
      argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execvp(argv[0], argv.data());
    ::_exit(127);
  }

  ::close(request_pipe[0]);
  ::close(result_pipe[1]);
  worker.pid = pid;
  worker.request_fd = request_pipe[1];
  worker.result_fd = result_pipe[0];
  return worker;
}

/// Restores the previous SIGPIPE disposition on scope exit; a worker dying
/// between poll() and our write must surface as EPIPE, not kill the run.
class ScopedSigpipeIgnore {
 public:
  ScopedSigpipeIgnore() { previous_ = ::signal(SIGPIPE, SIG_IGN); }
  ~ScopedSigpipeIgnore() { ::signal(SIGPIPE, previous_); }

 private:
  void (*previous_)(int);
};

}  // namespace

/// Throttled stderr progress line (--progress): points done/total, rolling
/// trials/sec sourced from the engine/trials counter, and an ETA from the
/// points-per-second since the meter started.  Each update is one buffer
/// and one write(2), so lines from concurrent processes never interleave
/// mid-line, and nothing here touches stdout.
class ProgressMeter {
 public:
  ProgressMeter(bool enabled, std::string sweep_name, std::size_t total,
                std::size_t already_done)
      : enabled_(enabled),
        name_(std::move(sweep_name)),
        total_(total),
        done_(already_done),
        initial_done_(already_done) {
    if (!enabled_) return;
    start_us_ = obs::monotonic_us();
    last_emit_us_ = start_us_;
    last_trials_ = engine_trials();
  }

  /// One point finished (any execution path).  Emits at most once per
  /// second.
  void point_done() {
    ++done_;
    if (enabled_) emit(false);
  }

  /// Final line, emitted unconditionally so the 100% state is always seen.
  void finish() {
    if (enabled_ && done_ > initial_done_) emit(true);
  }

 private:
  static std::uint64_t engine_trials() {
    return obs::MetricsRegistry::instance().counter("engine/trials").value();
  }

  void emit(bool force) {
    const std::uint64_t now = obs::monotonic_us();
    if (!force && now - last_emit_us_ < kMinIntervalUs) return;

    const std::uint64_t trials = engine_trials();
    const double window_s =
        static_cast<double>(now - last_emit_us_) / 1e6;
    const double rate =
        window_s > 0.0
            ? static_cast<double>(trials - last_trials_) / window_s
            : 0.0;
    last_emit_us_ = now;
    last_trials_ = trials;

    // ETA from the points completed by this run (checkpointed points were
    // free and would bias the estimate).
    const double elapsed_s = static_cast<double>(now - start_us_) / 1e6;
    const std::size_t computed = done_ - initial_done_;
    double eta_s = -1.0;
    if (computed > 0 && done_ < total_)
      eta_s = elapsed_s / static_cast<double>(computed) *
              static_cast<double>(total_ - done_);

    char line[256];
    int len;
    if (eta_s >= 0.0)
      len = std::snprintf(line, sizeof line,
                          "sweep %s: %zu/%zu points, %.3g trials/s, eta %.0fs\n",
                          name_.c_str(), done_, total_, rate, eta_s);
    else
      len = std::snprintf(line, sizeof line,
                          "sweep %s: %zu/%zu points, %.3g trials/s\n",
                          name_.c_str(), done_, total_, rate);
    if (len > 0)
      write_all(STDERR_FILENO, line,
                std::min(static_cast<std::size_t>(len), sizeof line - 1));
  }

  static constexpr std::uint64_t kMinIntervalUs = 1000000;

  bool enabled_;
  std::string name_;
  std::size_t total_;
  std::size_t done_;
  std::size_t initial_done_;
  std::uint64_t start_us_ = 0;
  std::uint64_t last_emit_us_ = 0;
  std::uint64_t last_trials_ = 0;
};

bool SweepOptions::selects(const SweepPoint& point) const {
  if (!point_filter.empty() && point.id != point_filter) return false;
  if (!family_filter.empty() && point.family != family_filter) return false;
  if (size_filter.has_value() && point.size != *size_filter) return false;
  return true;
}

SweepRunner::SweepRunner(SweepSpec spec, SweepOptions options)
    : spec_(std::move(spec)), options_(std::move(options)) {
  QPS_REQUIRE(options_.workers == 0 || !options_.worker_command.empty(),
              "sharded execution needs a worker command");
  QPS_REQUIRE(options_.workers == 0 || !options_.remote_runner,
              "worker subprocesses and a remote runner are mutually "
              "exclusive");
  QPS_REQUIRE(!options_.readmit || options_.resume,
              "--readmit needs --resume: re-admission clears poison markers "
              "recovered from an existing journal");
}

std::vector<PointResult> SweepRunner::run(const PointEvaluator& eval) const {
  QPS_REQUIRE(static_cast<bool>(eval), "run() needs a point evaluator");
  const std::vector<SweepPoint> points = spec_.expand();
  SweepCheckpoint checkpoint(options_.checkpoint_path, spec_.name(),
                             spec_.fingerprint(), options_.resume);

  std::vector<PointResult> results(points.size());
  std::vector<char> have(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    results[i].point = points[i];
    const auto it = checkpoint.completed().find(i);
    if (it != checkpoint.completed().end()) {
      results[i].stats = it->second;
      results[i].from_checkpoint = true;
      have[i] = 1;
    }
  }

  // Sticky quarantine: a poison marker recovered from the journal keeps
  // its point quarantined across --resume -- it failed deterministically,
  // so re-running it without a fix would just burn another retry budget.
  // --readmit (optionally naming specific point ids) clears markers with a
  // journaled readmit record and leaves the point pending again under a
  // fresh budget, so re-admission itself survives a later --resume.
  if (!checkpoint.poisoned().empty() || options_.readmit) {
    const auto poisoned = checkpoint.poisoned();  // copy: readmit mutates
    if (options_.readmit && !options_.readmit_points.empty()) {
      for (const std::string& id : options_.readmit_points) {
        // Only enforce ids that name a point of THIS sweep: a harness
        // running several sweeps passes the same list to each runner, and
        // ids no sweep recognizes at all are the harness's loud at-exit
        // check, not ours.
        bool in_spec = false;
        for (const SweepPoint& point : points)
          in_spec = in_spec || point.id == id;
        if (!in_spec) continue;
        bool found = false;
        for (const auto& [index, attempts] : poisoned)
          found = found || points[index].id == id;
        QPS_REQUIRE(found, "--readmit names point '" + id +
                               "', but that point is not quarantined in the "
                               "journal for sweep " +
                               spec_.name());
      }
    }
    for (const auto& [index, attempts] : poisoned) {
      QPS_REQUIRE(index < points.size(),
                  "journal poison marker index out of range");
      if (have[index]) continue;
      const bool readmitted =
          options_.readmit &&
          (options_.readmit_points.empty() ||
           std::find(options_.readmit_points.begin(),
                     options_.readmit_points.end(),
                     points[index].id) != options_.readmit_points.end());
      if (readmitted) {
        checkpoint.record_readmit(points[index]);
        std::cerr << "sweep " << spec_.name() << ": point "
                  << points[index].id << " re-admitted after quarantine ("
                  << attempts << " prior failed attempt(s))\n";
        continue;  // have[] stays 0: the point runs with a fresh budget
      }
      results[index].quarantined = true;
      have[index] = 1;
    }
  }

  // Subsetting filters (--point / --family / --size): everything they
  // exclude is marked skipped up front, so neither the worker pool nor the
  // in-process fallback touches it (journaled results are still surfaced).
  if (options_.has_filters()) {
    bool matched = false;
    for (const SweepPoint& point : points)
      matched = matched || options_.selects(point);
    QPS_REQUIRE(matched, "point/family/size filters match no point of sweep " +
                             spec_.name());
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (options_.selects(points[i]) || have[i]) continue;
      results[i].skipped = true;
      have[i] = 1;
    }
  }

  std::size_t already_done = 0;
  for (const char h : have) already_done += static_cast<std::size_t>(h);
  ProgressMeter progress(options_.progress, spec_.name(), points.size(),
                         already_done);
  SweepMetrics& metrics = SweepMetrics::get();

  // Worker-pool forfeit counts: nonzero marks a point the pool already
  // failed on, which makes the in-process loop below its *last resort*
  // (failure there quarantines instead of propagating).
  std::vector<std::size_t> attempts(points.size(), 0);

  if (options_.workers > 0)
    run_sharded(points, have, results, attempts, checkpoint, progress);

  // Distributed path: hand the still-missing indices to the injected hook.
  // The record sink is dedup-guarded (a badly-behaved hook reporting an
  // index twice must not double-journal) and journals exactly like the
  // other paths, so interrupt/resume composes with remote execution.
  if (options_.remote_runner) {
    std::deque<std::size_t> pending;
    for (std::size_t i = 0; i < points.size(); ++i)
      if (!have[i]) pending.push_back(i);
    if (!pending.empty()) {
      const RemoteRecord record = [&](std::size_t index,
                                      const RunningStats& stats) {
        QPS_REQUIRE(index < points.size(), "remote result index out of range");
        if (have[index]) return;
        results[index].stats = stats;
        results[index].from_checkpoint = false;
        have[index] = 1;
        checkpoint.record(points[index], stats);
        metrics.points_done.increment();
        progress.point_done();
      };
      const RemoteQuarantine quarantine = [&](std::size_t index,
                                              std::size_t attempts) {
        QPS_REQUIRE(index < points.size(),
                    "remote quarantine index out of range");
        if (have[index]) return;
        results[index].quarantined = true;
        have[index] = 1;  // the in-process fallback must not touch it
        checkpoint.record_quarantine(points[index], attempts);
        metrics.points_quarantined.increment();
        std::cerr << "sweep " << spec_.name() << ": point "
                  << points[index].id << " quarantined after " << attempts
                  << " failed attempt(s)\n";
        progress.point_done();
      };
      options_.remote_runner(spec_, points, std::move(pending),
                             checkpoint.epoch(), eval, record, quarantine);
    }
  }

  // In-process path, doubling as the fallback when every worker died and
  // as the last resort for points that burned the pool's retry budget:
  // evaluate whatever is still missing, in index order.  A last-resort
  // point (attempts > 0) that throws here too is quarantined; a
  // first-touch failure propagates, exactly as it always has.
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (have[i]) continue;
    try {
      QPS_TRACE_SPAN("sweep/point", "sweep");
      results[i].stats = eval(points[i]);
    } catch (const std::exception& e) {
      if (attempts[i] == 0) throw;
      results[i].quarantined = true;
      have[i] = 1;
      checkpoint.record_quarantine(points[i], attempts[i]);
      metrics.points_quarantined.increment();
      std::cerr << "sweep " << spec_.name() << ": point " << points[i].id
                << " quarantined after " << attempts[i]
                << " worker attempt(s) and an in-process failure: "
                << e.what() << "\n";
      progress.point_done();
      continue;
    }
    have[i] = 1;
    checkpoint.record(points[i], results[i].stats);
    metrics.points_done.increment();
    progress.point_done();
  }
  progress.finish();
  return results;
}

void SweepRunner::run_sharded(const std::vector<SweepPoint>& points,
                              std::vector<char>& have,
                              std::vector<PointResult>& results,
                              std::vector<std::size_t>& attempts,
                              SweepCheckpoint& checkpoint,
                              ProgressMeter& progress) const {
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < points.size(); ++i)
    if (!have[i]) pending.push_back(i);
  if (pending.empty()) return;

  ScopedSigpipeIgnore sigpipe_guard;
  SweepMetrics& metrics = SweepMetrics::get();
  const std::uint64_t fingerprint = spec_.fingerprint();

  std::vector<WorkerProc> workers;
  const std::size_t worker_count =
      options_.workers < pending.size() ? options_.workers : pending.size();
  for (std::size_t i = 0; i < worker_count; ++i) {
    WorkerProc worker = spawn_worker(options_.worker_command);
    if (worker.pid > 0) workers.push_back(worker);
  }

  // Dead workers are replaced while work remains, so one poison point
  // cannot grind the pool down to the in-process fallback.  The budget
  // bounds the total forks: every respawn is caused by a forfeit, and
  // each point forfeits at most max_point_retries + 1 times before
  // quarantine ends its career.
  std::size_t outstanding = pending.size();
  std::size_t respawn_budget =
      worker_count * (options_.max_point_retries + 1);
  std::vector<std::size_t> withheld;

  // A worker failure forfeits only its in-flight point: push it back to the
  // head of the queue (preserving index order among the waiting points) --
  // or, past the point's retry budget, withhold it from the pool for the
  // in-process last resort -- and drop the worker.
  const auto fail_worker = [&](WorkerProc& worker) {
    if (worker.busy) {
      const std::size_t index = worker.in_flight;
      worker.busy = false;
      if (++attempts[index] > options_.max_point_retries) {
        --outstanding;  // have[] stays 0: run() takes the last resort
        withheld.push_back(index);
      } else {
        pending.push_front(index);
        metrics.points_requeued.increment();
      }
    }
    if (worker.pid > 0) ::kill(worker.pid, SIGKILL);
    reap_worker(worker);
  };

  const auto update_gauges = [&] {
    metrics.queue_depth.set(static_cast<std::int64_t>(pending.size()));
    std::int64_t busy = 0;
    for (const WorkerProc& worker : workers) busy += worker.busy ? 1 : 0;
    metrics.workers_busy.set(busy);
  };

  while (outstanding > 0) {
    // Replace dead workers while undispatched work remains; a failed
    // fork ends replacement for this run (the fallback still finishes the
    // sweep).
    while (!pending.empty() && workers.size() < worker_count &&
           respawn_budget > 0) {
      --respawn_budget;
      WorkerProc worker = spawn_worker(options_.worker_command);
      if (worker.pid <= 0) {
        respawn_budget = 0;
        break;
      }
      workers.push_back(worker);
      metrics.workers_respawned.increment();
    }
    if (workers.empty()) break;

    // Dispatch: hand every idle worker its next point.
    for (std::size_t w = 0; w < workers.size();) {
      WorkerProc& worker = workers[w];
      if (worker.busy || pending.empty()) {
        ++w;
        continue;
      }
      const std::size_t index = pending.front();
      pending.pop_front();
      const std::string request = encode_request(index);
      if (!write_all(worker.request_fd, request.data(), request.size())) {
        // The worker died before taking the request; charge the forfeit
        // to this point so a pipeline that keeps dying cannot loop the
        // respawn path forever.
        worker.busy = true;
        worker.in_flight = index;
        fail_worker(worker);
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(w));
        continue;
      }
      worker.busy = true;
      worker.in_flight = index;
      metrics.worker_dispatches.increment();
      ++w;
    }
    if (workers.empty()) break;
    update_gauges();

    std::vector<pollfd> fds;
    fds.reserve(workers.size());
    for (const WorkerProc& worker : workers)
      fds.push_back({worker.result_fd, POLLIN, 0});
    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: fall back to in-process
    }

    for (std::size_t w = 0; w < workers.size();) {
      WorkerProc& worker = workers[w];
      if ((fds[w].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        ++w;
        continue;
      }
      char chunk[4096];
      const ssize_t n = ::read(worker.result_fd, chunk, sizeof chunk);
      bool failed = n <= 0 && !(n < 0 && errno == EINTR);
      if (n > 0) {
        worker.buffer.append(chunk, static_cast<std::size_t>(n));
        std::size_t newline;
        while (!failed &&
               (newline = worker.buffer.find('\n')) != std::string::npos) {
          const std::string line = worker.buffer.substr(0, newline);
          worker.buffer.erase(0, newline + 1);
          const auto result = decode_result(line);
          if (!result || result->sweep != spec_.name() ||
              result->fingerprint != fingerprint || !worker.busy ||
              result->index != worker.in_flight ||
              result->id != points[result->index].id) {
            // Protocol violation: the worker is not running our spec (or
            // is corrupt).  Treat like a crash.
            failed = true;
            break;
          }
          results[result->index].stats = result->stats;
          results[result->index].from_checkpoint = false;
          have[result->index] = 1;
          checkpoint.record(points[result->index], result->stats);
          worker.busy = false;
          --outstanding;
          metrics.points_done.increment();
          progress.point_done();
        }
      }
      if (failed) {
        fail_worker(worker);
        // Resize the poll mirror too so indices keep lining up.
        fds.erase(fds.begin() + static_cast<std::ptrdiff_t>(w));
        workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(w));
        continue;
      }
      ++w;
    }
  }

  if (outstanding > 0 && workers.empty())
    std::cerr << "sweep " << spec_.name()
              << ": worker pool exhausted (respawn budget spent); running "
              << outstanding << " remaining point(s) in-process\n";
  if (!withheld.empty()) {
    // One grep-able accounting line: which points burned the pool's retry
    // budget and go to the in-process last resort.
    std::ostringstream os;
    os << "sweep " << spec_.name() << ": " << withheld.size()
       << " point(s) burned the worker retry budget ("
       << options_.max_point_retries + 1
       << " attempts); retrying in-process:";
    for (const std::size_t index : withheld) os << ' ' << points[index].id;
    os << '\n';
    std::cerr << os.str();
  }

  // Clean shutdown: closing the request pipe EOFs each worker's serve()
  // loop, which exits 0.
  for (WorkerProc& worker : workers) reap_worker(worker);
  update_gauges();
}

int SweepRunner::serve(const SweepSpec& spec, const PointEvaluator& eval,
                       int in_fd, int out_fd) {
  QPS_REQUIRE(static_cast<bool>(eval), "serve() needs a point evaluator");
  const std::vector<SweepPoint> points = spec.expand();
  const std::uint64_t fingerprint = spec.fingerprint();

  std::string buffer;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(in_fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return 1;
    }
    if (n == 0) return 0;  // runner closed the pipe: we are done
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      const auto index = decode_request(line);
      if (!index || *index >= points.size()) return 1;
      RunningStats stats;
      {
        QPS_TRACE_SPAN("sweep/point", "sweep");
        // Worker-side injection site: crash/error/delay here exercises the
        // runner's forfeit -> respawn -> quarantine machinery.
        QPS_FAULT_POINT2("sweep/point_eval", points[*index].id);
        stats = eval(points[*index]);
      }
      const std::string reply =
          encode_result(spec.name(), fingerprint, points[*index], stats);
      if (!write_all(out_fd, reply.data(), reply.size())) return 1;
    }
  }
}

}  // namespace qps::sweep
