// Declarative sweep grids.
//
// Every result in the paper is a sweep: E(p) curves and probe-complexity
// tables over (system family, size, strategy, p) grids.  A SweepSpec names
// the grid once; expand() turns it into the flat, ordered list of
// SweepPoints the runner executes.  Three properties make the expansion the
// contract of the whole subsystem:
//
//  * Stable ids.  A point's id is a pure function of its coordinates
//    ("family=tree/size=4/strategy=R/p=0.5"), never of its position, so
//    checkpoint journals and worker protocol lines stay valid when blocks
//    are appended to a spec.
//  * Derived seeds with common-random-numbers semantics.  Each point's
//    engine seed mixes the spec's base seed with the point's (family, size,
//    strategy) coordinates -- but NOT p.  Points along the p axis therefore
//    share their RNG streams (the same element-failure uniforms are reused
//    at every p, so E(p) curves are smooth and comparisons along the curve
//    are variance-reduced), while distinct systems and strategies get
//    decorrelated streams.
//  * Deterministic order.  Expansion order is blocks, then sizes, then
//    strategies, then ps; aggregated sweep output is emitted in this order
//    regardless of which worker computed which point.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace qps::sweep {

/// One cell of an expanded sweep grid.
struct SweepPoint {
  std::size_t index = 0;     ///< Position in expansion order.
  std::string family;        ///< Quorum family tag, e.g. "tree".
  std::size_t size = 0;      ///< Family size parameter (n or height).
  std::string strategy;      ///< Strategy tag, e.g. "R"; may be empty.
  bool has_p = false;        ///< Whether the sweep has a p axis.
  double p = 0.0;            ///< Failure probability when has_p.
  std::string id;            ///< Stable coordinate-derived identifier.
  std::uint64_t seed = 0;    ///< Derived engine seed (see header comment).
};

class SweepSpec {
 public:
  /// One (family x sizes x strategies) block as passed to add_block()
  /// (strategies normalized to {""} when the block has no strategy axis).
  /// Exposed so the spec codec (core/sweep/spec_codec.h) can serialize a
  /// spec for shipment to remote worker daemons.
  struct Block {
    std::string family;
    std::vector<std::size_t> sizes;
    std::vector<std::string> strategies;
  };

  /// `name` identifies the sweep in checkpoint journals and worker
  /// dispatch; a bench running several sweeps must give each a distinct
  /// name.
  SweepSpec(std::string name, std::uint64_t base_seed);

  /// Adds one (family x sizes x strategies) block to the grid.  Pass an
  /// empty strategy list for sweeps with no strategy axis (e.g. exact
  /// evaluations); the block then expands with strategy = "".
  SweepSpec& add_block(std::string family, std::vector<std::size_t> sizes,
                       std::vector<std::string> strategies = {});

  /// Sets the shared p axis.  Without one the grid has a single
  /// (has_p = false) slot per (family, size, strategy).
  SweepSpec& set_ps(std::vector<double> ps);

  /// Free-form execution-context tag (trial budget, SEM target, ...) mixed
  /// into fingerprint(); checkpoints taken under a different context are
  /// rejected on resume.
  SweepSpec& set_config_tag(std::string tag);

  const std::string& name() const { return name_; }
  std::uint64_t base_seed() const { return base_seed_; }
  const std::string& config_tag() const { return config_tag_; }
  const std::vector<Block>& blocks() const { return blocks_; }
  const std::vector<double>& ps() const { return ps_; }

  /// Cartesian expansion in deterministic order; ids, seeds and indices
  /// filled in.
  std::vector<SweepPoint> expand() const;

  /// Number of points expand() will produce.
  std::size_t point_count() const;

  /// Hash of the sweep identity: name, base seed, config tag and every
  /// point id.  Two processes agree on point indices iff their
  /// fingerprints agree; the checkpoint layer and the worker protocol both
  /// verify it.
  std::uint64_t fingerprint() const;

  /// The stable id for a point with the given coordinates.
  static std::string point_id(const std::string& family, std::size_t size,
                              const std::string& strategy, bool has_p,
                              double p);

  /// The derived engine seed: base_seed mixed with (family, size,
  /// strategy).  p is deliberately excluded -- see the header comment on
  /// common random numbers.
  static std::uint64_t derive_seed(std::uint64_t base_seed,
                                   const std::string& family,
                                   std::size_t size,
                                   const std::string& strategy);

 private:
  std::string name_;
  std::uint64_t base_seed_;
  std::string config_tag_;
  std::vector<Block> blocks_;
  std::vector<double> ps_;
};

}  // namespace qps::sweep
