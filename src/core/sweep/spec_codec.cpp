#include "core/sweep/spec_codec.h"

#include <stdexcept>

#include "core/sweep/wire.h"

namespace qps::sweep {

std::string spec_to_json(const SweepSpec& spec) {
  std::string out = "{\"name\": " + json_quote(spec.name()) +
                    ", \"seed\": " +
                    json_quote(encode_hex_u64(spec.base_seed())) +
                    ", \"config\": " + json_quote(spec.config_tag()) +
                    ", \"blocks\": [";
  bool first_block = true;
  for (const SweepSpec::Block& block : spec.blocks()) {
    if (!first_block) out += ", ";
    first_block = false;
    out += "{\"family\": " + json_quote(block.family) + ", \"sizes\": [";
    for (std::size_t i = 0; i < block.sizes.size(); ++i)
      out += (i ? ", " : "") + std::to_string(block.sizes[i]);
    out += "], \"strategies\": [";
    for (std::size_t i = 0; i < block.strategies.size(); ++i)
      out += (i ? ", " : "") + json_quote(block.strategies[i]);
    out += "]}";
  }
  out += "], \"ps\": [";
  for (std::size_t i = 0; i < spec.ps().size(); ++i)
    out += (i ? ", " : "") + json_number(spec.ps()[i]);
  out += "]}";
  return out;
}

SweepSpec spec_from_json(const JsonValue& value) {
  const auto seed = decode_hex_u64(value.at("seed").as_string());
  if (!seed)
    throw std::invalid_argument("sweep spec: malformed seed encoding");
  SweepSpec spec(value.at("name").as_string(), *seed);
  spec.set_config_tag(value.at("config").as_string());
  for (const JsonValue& block : value.at("blocks").as_array()) {
    std::vector<std::size_t> sizes;
    for (const JsonValue& size : block.at("sizes").as_array())
      sizes.push_back(static_cast<std::size_t>(size.as_uint64()));
    std::vector<std::string> strategies;
    for (const JsonValue& strategy : block.at("strategies").as_array())
      strategies.push_back(strategy.as_string());
    spec.add_block(block.at("family").as_string(), std::move(sizes),
                   std::move(strategies));
  }
  const auto& ps = value.at("ps").as_array();
  if (!ps.empty()) {
    std::vector<double> grid;
    for (const JsonValue& p : ps) grid.push_back(p.as_double());
    spec.set_ps(std::move(grid));
  }
  return spec;
}

}  // namespace qps::sweep
