#include "core/sweep/sweep_report.h"

#include <ostream>

#include "util/json.h"
#include "util/table.h"

namespace qps::sweep {

SweepReport::SweepReport(std::string sweep_name,
                         std::vector<PointResult> results)
    : sweep_name_(std::move(sweep_name)), results_(std::move(results)) {}

const PointResult* SweepReport::find(const std::string& id) const {
  for (const PointResult& result : results_)
    if (result.point.id == id) return &result;
  return nullptr;
}

void SweepReport::print(std::ostream& os, int precision) const {
  Table table({"point", "trials", "mean", "sem", "min", "max"});
  for (const PointResult& result : results_) {
    table.add_row(
        {result.point.id,
         Table::num(static_cast<long long>(result.stats.count())),
         Table::num(result.stats.mean(), precision),
         Table::num(result.stats.sem(), precision),
         Table::num(result.stats.min(), precision),
         Table::num(result.stats.max(), precision)});
  }
  table.print(os);
}

void SweepReport::write_json(std::ostream& os) const {
  os << "{\n  \"sweep\": " << json_quote(sweep_name_)
     << ",\n  \"points\": [";
  for (std::size_t i = 0; i < results_.size(); ++i) {
    const PointResult& result = results_[i];
    os << (i ? "," : "") << "\n    {\"id\": " << json_quote(result.point.id)
       << ", \"family\": " << json_quote(result.point.family)
       << ", \"size\": " << result.point.size;
    if (!result.point.strategy.empty())
      os << ", \"strategy\": " << json_quote(result.point.strategy);
    if (result.point.has_p) os << ", \"p\": " << json_number(result.point.p);
    os << ", \"count\": " << result.stats.count()
       << ", \"mean\": " << json_number(result.stats.mean())
       << ", \"sem\": " << json_number(result.stats.sem())
       << ", \"min\": " << json_number(result.stats.min())
       << ", \"max\": " << json_number(result.stats.max()) << "}";
  }
  os << (results_.empty() ? "" : "\n  ") << "]\n}\n";
}

std::size_t SweepReport::checkpointed_count() const {
  std::size_t count = 0;
  for (const PointResult& result : results_)
    if (result.from_checkpoint) ++count;
  return count;
}

}  // namespace qps::sweep
