// SweepSpec serialization for the socket worker protocol.
//
// A generic remote worker daemon (tools/qps_workerd) has no bench argv to
// rebuild the sweep grid from, so the coordinator ships the declarative
// spec itself inside the handshake welcome.  The codec round-trips every
// input of expand() -- name, base seed, config tag, blocks, p grid -- so
// the deserialized spec produces bit-identical point ids, seeds, and
// fingerprint on the worker side; the worker re-derives the fingerprint
// and refuses to serve when it disagrees with the coordinator's claim,
// turning any codec or version skew into a loud handshake failure instead
// of silently mismatched grids.
//
// The base seed and p values must survive exactly: the seed travels as the
// fixed-width hex encoding (a JSON number is a double and cannot carry 64
// bits), and each p as json_number (max_digits10, so text -> strtod
// recovers the exact bits that entered the point ids and CRN seeds).
#pragma once

#include <string>

#include "core/sweep/sweep_spec.h"
#include "util/json.h"

namespace qps::sweep {

/// `spec` as a single-line JSON object (no trailing newline).
std::string spec_to_json(const SweepSpec& spec);

/// Rebuilds a spec from a value produced by spec_to_json (parsed or
/// embedded in a larger message).  Throws std::invalid_argument on any
/// missing or malformed field.
SweepSpec spec_from_json(const JsonValue& value);

}  // namespace qps::sweep
