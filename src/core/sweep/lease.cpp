#include "core/sweep/lease.h"

#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <exception>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "core/fault/fault.h"
#include "util/fsio.h"
#include "util/json.h"

namespace qps::sweep {

namespace {

double now_wall_seconds() {
  struct timespec ts;
  ::clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace

CoordinatorLease::CoordinatorLease(std::string lease_path, std::string node,
                                   double timeout_seconds)
    : path_(std::move(lease_path)),
      node_(std::move(node)),
      timeout_(timeout_seconds > 0.0 ? timeout_seconds : 5.0) {}

CoordinatorLease::~CoordinatorLease() {
  stop_renewal();
  // A graceful exit releases the lease so a standby need not wait out the
  // timeout; a superseded holder must not touch the new holder's file.
  if (held_ && !superseded_.load()) ::unlink(path_.c_str());
}

std::optional<CoordinatorLease::Holder> CoordinatorLease::read(
    const std::string& lease_path) {
  std::ifstream in(lease_path);
  if (!in.good()) return std::nullopt;
  std::ostringstream text;
  text << in.rdbuf();
  try {
    const JsonValue v = JsonValue::parse(text.str());
    Holder holder;
    holder.node = v.at("node").as_string();
    holder.pid = static_cast<std::int64_t>(v.at("pid").as_uint64());
    holder.generation = v.at("generation").as_uint64();
    return holder;
  } catch (const std::exception&) {
    // A torn lease (crash mid-rename cannot happen, but a foreign file
    // can): treat as absent, the generation restarts from its mtime.
    return std::nullopt;
  }
}

bool CoordinatorLease::stale() const {
  struct stat st;
  if (::stat(path_.c_str(), &st) != 0) return true;
  const double mtime = static_cast<double>(st.st_mtim.tv_sec) +
                       static_cast<double>(st.st_mtim.tv_nsec) * 1e-9;
  return now_wall_seconds() - mtime > timeout_;
}

void CoordinatorLease::write_lease() {
  const std::string content =
      "{\"node\": " + json_quote(node_) +
      ", \"pid\": " + std::to_string(static_cast<long>(::getpid())) +
      ", \"generation\": " + std::to_string(generation_) + "}\n";
  std::string error;
  if (!util::write_file_atomic(path_, content, &error))
    throw std::runtime_error("cannot write coordinator lease: " + error);
}

void CoordinatorLease::acquire() {
  const auto current = read(path_);
  generation_ = (current ? current->generation : 0) + 1;
  write_lease();
  held_ = true;
  superseded_.store(false);
  stop_ = false;
  renewer_ = std::thread([this] { renew_loop(); });
}

void CoordinatorLease::wait_and_acquire(
    const std::function<void()>& on_wait) {
  while (!stale()) {
    if (on_wait) on_wait();
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait_for(lock, std::chrono::milliseconds(100), [this] { return stop_; });
    if (stop_) return;
  }
  QPS_FAULT_POINT("sweep/standby_takeover");
  acquire();
}

void CoordinatorLease::renew_loop() {
  const auto interval = std::chrono::duration<double>(timeout_ / 3.0);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock, interval, [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    // Read-before-write: renewing over a newer generation would make two
    // coordinators look alive on one lease.
    const auto current = read(path_);
    if (current && current->generation > generation_) {
      superseded_.store(true);
      return;
    }
    try {
      write_lease();
    } catch (const std::exception&) {
      // A transiently unwritable lease dir just delays renewal; the next
      // round retries.  Persistent failure makes the lease go stale and a
      // standby take over -- which is the correct failure mode.
    }
    lock.lock();
  }
}

void CoordinatorLease::stop_renewal() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (renewer_.joinable()) renewer_.join();
}

}  // namespace qps::sweep
