#include "core/sweep/sweep_spec.h"

#include <cstdio>

#include "util/require.h"
#include "util/rng.h"

namespace qps::sweep {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv1a(std::uint64_t h, std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// Formats p with enough digits to distinguish grid values while keeping
/// ids readable ("0.5", not "0.50000000000000000").
std::string format_p(double p) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.12g", p);
  return buf;
}

}  // namespace

SweepSpec::SweepSpec(std::string name, std::uint64_t base_seed)
    : name_(std::move(name)), base_seed_(base_seed) {
  QPS_REQUIRE(!name_.empty(), "a sweep needs a name");
}

SweepSpec& SweepSpec::add_block(std::string family,
                                std::vector<std::size_t> sizes,
                                std::vector<std::string> strategies) {
  QPS_REQUIRE(!family.empty(), "a sweep block needs a family tag");
  QPS_REQUIRE(!sizes.empty(), "a sweep block needs at least one size");
  if (strategies.empty()) strategies.push_back("");
  blocks_.push_back(
      {std::move(family), std::move(sizes), std::move(strategies)});
  return *this;
}

SweepSpec& SweepSpec::set_ps(std::vector<double> ps) {
  QPS_REQUIRE(!ps.empty(), "set_ps() needs at least one value");
  ps_ = std::move(ps);
  return *this;
}

SweepSpec& SweepSpec::set_config_tag(std::string tag) {
  config_tag_ = std::move(tag);
  return *this;
}

std::string SweepSpec::point_id(const std::string& family, std::size_t size,
                                const std::string& strategy, bool has_p,
                                double p) {
  std::string id = "family=" + family + "/size=" + std::to_string(size);
  if (!strategy.empty()) id += "/strategy=" + strategy;
  if (has_p) id += "/p=" + format_p(p);
  return id;
}

std::uint64_t SweepSpec::derive_seed(std::uint64_t base_seed,
                                     const std::string& family,
                                     std::size_t size,
                                     const std::string& strategy) {
  // Hash the CRN-relevant coordinates (p excluded), then mix with the base
  // seed through one splitmix64 step so nearby hashes land far apart in
  // seed space.
  std::uint64_t h = fnv1a(kFnvOffset, family);
  h = fnv1a(h, "/");
  h = fnv1a(h, std::to_string(size));
  h = fnv1a(h, "/");
  h = fnv1a(h, strategy);
  std::uint64_t state = base_seed ^ h;
  return splitmix64(state);
}

std::vector<SweepPoint> SweepSpec::expand() const {
  std::vector<SweepPoint> points;
  points.reserve(point_count());
  for (const Block& block : blocks_) {
    for (const std::size_t size : block.sizes) {
      for (const std::string& strategy : block.strategies) {
        const std::uint64_t seed =
            derive_seed(base_seed_, block.family, size, strategy);
        if (ps_.empty()) {
          SweepPoint pt;
          pt.index = points.size();
          pt.family = block.family;
          pt.size = size;
          pt.strategy = strategy;
          pt.id = point_id(block.family, size, strategy, false, 0.0);
          pt.seed = seed;
          points.push_back(std::move(pt));
        } else {
          for (const double p : ps_) {
            SweepPoint pt;
            pt.index = points.size();
            pt.family = block.family;
            pt.size = size;
            pt.strategy = strategy;
            pt.has_p = true;
            pt.p = p;
            pt.id = point_id(block.family, size, strategy, true, p);
            pt.seed = seed;  // shared across the p axis: common random numbers
            points.push_back(std::move(pt));
          }
        }
      }
    }
  }
  return points;
}

std::size_t SweepSpec::point_count() const {
  std::size_t count = 0;
  const std::size_t p_count = ps_.empty() ? 1 : ps_.size();
  for (const Block& block : blocks_)
    count += block.sizes.size() * block.strategies.size() * p_count;
  return count;
}

std::uint64_t SweepSpec::fingerprint() const {
  std::uint64_t h = fnv1a(kFnvOffset, name_);
  h = fnv1a(h, "#");
  h = fnv1a(h, std::to_string(base_seed_));
  h = fnv1a(h, "#");
  h = fnv1a(h, config_tag_);
  for (const SweepPoint& pt : expand()) {
    h = fnv1a(h, "#");
    h = fnv1a(h, pt.id);
  }
  return h;
}

}  // namespace qps::sweep
