#include "core/sweep/evaluators.h"

#include <stdexcept>

#include "core/exact/ppc_exact.h"
#include "quorum/crumbling_wall.h"
#include "quorum/hqs.h"
#include "quorum/majority.h"
#include "quorum/tree_system.h"
#include "quorum/wheel.h"

namespace qps::sweep {

const std::vector<std::vector<std::size_t>>& standard_crumbling_walls() {
  static const std::vector<std::vector<std::size_t>> walls = {
      {1, 2}, {1, 2, 3}, {1, 2, 3, 4}};
  return walls;
}

std::unique_ptr<QuorumSystem> standard_system(const std::string& family,
                                              std::size_t size) {
  if (family == "maj") return std::make_unique<MajoritySystem>(size);
  if (family == "tree") return std::make_unique<TreeSystem>(size);
  if (family == "hqs") return std::make_unique<HQSystem>(size);
  if (family == "cw")
    return std::make_unique<CrumblingWall>(standard_crumbling_walls().at(size));
  if (family == "wheel") return std::make_unique<WheelSystem>(size);
  throw std::invalid_argument("unknown sweep family " + family);
}

const std::vector<std::string>& standard_evaluator_ids() {
  static const std::vector<std::string> ids = {"exact_ppc"};
  return ids;
}

PointEvaluator find_standard_evaluator(const std::string& id,
                                       std::size_t dp_threads) {
  if (id == "exact_ppc") {
    return [dp_threads](const SweepPoint& point) {
      exact::DpOptions options;
      options.threads = dp_threads;
      const auto system = standard_system(point.family, point.size);
      RunningStats stats;
      stats.add(ppc_exact(*system, point.p, options));
      return stats;
    };
  }
  return PointEvaluator{};
}

}  // namespace qps::sweep
