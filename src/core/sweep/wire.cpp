#include "core/sweep/wire.h"

#include <cinttypes>
#include <cstdio>
#include <exception>

#include "util/json.h"

namespace qps::sweep {

std::string encode_hex_u64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, v);
  return buf;
}

std::optional<std::uint64_t> decode_hex_u64(const std::string& s) {
  if (s.empty() || s.size() > 16) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9')
      v |= static_cast<std::uint64_t>(c - '0');
    else if (c >= 'a' && c <= 'f')
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    else
      return std::nullopt;
  }
  return v;
}

std::string encode_request(std::size_t index) {
  return "{\"point\": " + std::to_string(index) + "}\n";
}

std::optional<std::size_t> decode_request(std::string_view line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    return static_cast<std::size_t>(v.at("point").as_uint64());
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

std::string encode_result(const std::string& sweep_name,
                          std::uint64_t fingerprint, const SweepPoint& point,
                          const RunningStats& stats, std::uint64_t epoch) {
  const double m2 = stats.sum_squared_deviations();
  std::string line = "{\"sweep\": " + json_quote(sweep_name) +
                     ", \"fp\": " + json_quote(encode_hex_u64(fingerprint)) +
                     ", \"point\": " + std::to_string(point.index) +
                     ", \"id\": " + json_quote(point.id);
  if (epoch != 0) line += ", \"epoch\": " + std::to_string(epoch);
  line += ", \"count\": " + std::to_string(stats.count()) +
          ", \"mean\": " + json_number(stats.mean()) +
          ", \"m2\": " + json_number(m2) +
          ", \"min\": " + json_number(stats.min()) +
          ", \"max\": " + json_number(stats.max()) + "}\n";
  return line;
}

std::optional<WireResult> decode_result(std::string_view line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    WireResult result;
    result.sweep = v.at("sweep").as_string();
    const auto fp = decode_hex_u64(v.at("fp").as_string());
    if (!fp) return std::nullopt;
    result.fingerprint = *fp;
    result.index = static_cast<std::size_t>(v.at("point").as_uint64());
    result.id = v.at("id").as_string();
    if (v.contains("epoch")) result.epoch = v.at("epoch").as_uint64();
    result.stats = RunningStats::from_moments(
        static_cast<std::size_t>(v.at("count").as_uint64()),
        v.at("mean").as_double(), v.at("m2").as_double(),
        v.at("min").as_double(), v.at("max").as_double());
    return result;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

bool is_journal_control(std::string_view line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    return v.contains("ctl");
  } catch (const std::exception&) {
    return false;
  }
}

namespace {

std::string control_prefix(const char* kind, const std::string& sweep_name,
                           std::uint64_t fingerprint) {
  return std::string("{\"ctl\": \"") + kind +
         "\", \"sweep\": " + json_quote(sweep_name) +
         ", \"fp\": " + json_quote(encode_hex_u64(fingerprint));
}

}  // namespace

std::string encode_epoch_record(const std::string& sweep_name,
                                std::uint64_t fingerprint,
                                std::uint64_t epoch) {
  return control_prefix("epoch", sweep_name, fingerprint) +
         ", \"epoch\": " + std::to_string(epoch) + "}\n";
}

std::string encode_quarantine_record(const std::string& sweep_name,
                                     std::uint64_t fingerprint,
                                     const SweepPoint& point,
                                     std::uint64_t attempts) {
  return control_prefix("quarantine", sweep_name, fingerprint) +
         ", \"point\": " + std::to_string(point.index) +
         ", \"id\": " + json_quote(point.id) +
         ", \"attempts\": " + std::to_string(attempts) + "}\n";
}

std::string encode_readmit_record(const std::string& sweep_name,
                                  std::uint64_t fingerprint,
                                  const SweepPoint& point) {
  return control_prefix("readmit", sweep_name, fingerprint) +
         ", \"point\": " + std::to_string(point.index) +
         ", \"id\": " + json_quote(point.id) + "}\n";
}

std::optional<JournalControl> decode_journal_control(std::string_view line) {
  try {
    const JsonValue v = JsonValue::parse(line);
    JournalControl record;
    const std::string& kind = v.at("ctl").as_string();
    record.sweep = v.at("sweep").as_string();
    const auto fp = decode_hex_u64(v.at("fp").as_string());
    if (!fp) return std::nullopt;
    record.fingerprint = *fp;
    if (kind == "epoch") {
      record.kind = JournalRecordKind::kEpoch;
      record.epoch = v.at("epoch").as_uint64();
    } else if (kind == "quarantine") {
      record.kind = JournalRecordKind::kQuarantine;
      record.index = static_cast<std::size_t>(v.at("point").as_uint64());
      record.id = v.at("id").as_string();
      record.attempts = v.at("attempts").as_uint64();
    } else if (kind == "readmit") {
      record.kind = JournalRecordKind::kReadmit;
      record.index = static_cast<std::size_t>(v.at("point").as_uint64());
      record.id = v.at("id").as_string();
    } else {
      return std::nullopt;
    }
    return record;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace qps::sweep
