// Sweep execution: in-process, or sharded across worker subprocesses.
//
// A SweepRunner executes every point of a SweepSpec through a caller-
// supplied PointEvaluator and returns the results in point-index order.
// Three execution paths, one output contract:
//
//  * workers == 0: each point is evaluated in the calling process, in
//    index order.
//  * workers >= 1: the runner fork/execs `worker_command` (normally the
//    same binary re-invoked in --worker mode) once per worker.  Points are
//    handed out dynamically -- a worker gets its next point the moment it
//    finishes the previous one, so a slow high-n point never stalls the
//    rest of the grid (work stealing by construction).  Requests travel to
//    a worker's stdin and results come back on worker fd 3 as
//    line-delimited JSON (core/sweep/wire.h); worker stdout is discarded
//    so harness chatter cannot corrupt the protocol.
//  * Failure containment: a worker that crashes (or emits a malformed or
//    mismatched line) forfeits only its in-flight point, which is re-queued
//    for the surviving workers, and a replacement worker is spawned while
//    work remains (bounded by the retry budgets, so a crash loop cannot
//    fork forever).  A point forfeited more than max_point_retries times
//    is withheld from the pool and handed to the in-process fallback for
//    one last-resort evaluation; only a point that fails there too is
//    quarantined -- reported, with no result, never silently dropped.  If
//    the pool cannot be kept alive, the remaining points run in-process in
//    the parent.
//
// Because every point's result is a pure function of the spec (derived
// seeds) and the evaluator, and aggregation is by point index, the
// returned results -- and anything rendered from them -- are byte-identical
// for any worker count, and for any interrupt/resume split when a
// checkpoint journal is in use.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/sweep/sweep_spec.h"
#include "util/stats.h"

namespace qps::sweep {

/// Evaluates one sweep point.  Must be a pure function of the point (use
/// point.seed for all randomness) so that every process computes identical
/// results; exact evaluations return a single-sample accumulator.
using PointEvaluator = std::function<RunningStats(const SweepPoint&)>;

/// Sink a RemoteRunner reports each completed point through, exactly once
/// per index.
using RemoteRecord =
    std::function<void(std::size_t index, const RunningStats& stats)>;

/// Sink a RemoteRunner reports quarantined points through: `index` burned
/// its retry budget (it killed or timed out `attempts` workers) and will
/// not be evaluated.  A quarantined point is final for the sweep: the hook
/// is expected to have already spent whatever local last resort it is
/// configured for (run_socket_sweep tries `eval` once when local fallback
/// is enabled), so the runner must not evaluate it again.
using RemoteQuarantine =
    std::function<void(std::size_t index, std::size_t attempts)>;

/// Injected distributed-execution hook.  Called with the spec, its
/// expanded points, and the indices still to be computed; must evaluate
/// every pending point (remotely, or locally via `eval` as a fallback) and
/// report each completion through `record` -- or, for a point that
/// exhausts its retry budget, through `quarantine`.  `epoch` is the
/// checkpoint journal's coordinator epoch for this activation (0 when no
/// journal is in use); the hook stamps it into the protocol so results
/// from a superseded coordinator can be fenced.  core/net/socket_sweep.h
/// supplies the socket job-server implementation -- the hook is a
/// std::function so the sweep layer stays free of any net dependency.
using RemoteRunner = std::function<void(
    const SweepSpec& spec, const std::vector<SweepPoint>& points,
    std::deque<std::size_t> pending, std::uint64_t epoch,
    const PointEvaluator& eval, const RemoteRecord& record,
    const RemoteQuarantine& quarantine)>;

struct SweepOptions {
  /// Worker subprocesses; 0 runs every point in-process.
  std::size_t workers = 0;
  /// argv for worker subprocesses (argv[0] is the executable); required
  /// when workers >= 1.  The command must re-enter serve() for this spec.
  std::vector<std::string> worker_command;
  /// Distributed execution: when set, pending points are handed to this
  /// hook instead of worker subprocesses (mutually exclusive with
  /// workers >= 1).  Checkpointing, filters, and result aggregation are
  /// unchanged -- the hook only replaces who computes the points, so the
  /// output stays byte-identical.
  RemoteRunner remote_runner;
  /// Checkpoint journal path; empty disables journaling.
  std::string checkpoint_path;
  /// Per-point retry budget for the worker-pool path: a point forfeited
  /// (its worker crashed or misbehaved) more than this many times is
  /// withheld from the pool -- a point that deterministically kills
  /// workers must not eat the fleet -- and falls through to one in-process
  /// last-resort evaluation.  If that throws too, the point is
  /// *quarantined*: marked PointResult::quarantined, reported, and never
  /// evaluated again this run.
  std::size_t max_point_retries = 3;
  /// Emit a throttled progress line to stderr after each completed point:
  /// points done/total, rolling trials/sec (from the engine/trials metric),
  /// and an ETA.  Progress goes to stderr only, so stdout reports stay
  /// byte-identical with it on or off.
  bool progress = false;
  /// Load journaled results for this spec and skip those points.
  bool resume = false;
  /// When non-empty, only the point with exactly this id is evaluated and
  /// every other point comes back with `skipped` set -- the debugging path
  /// for re-running a single exact point in isolation.  Throws when no
  /// point of the spec has this id.
  std::string point_filter;
  /// Coarser slices than point_filter: keep only points of this family
  /// (when non-empty) and/or this size (when set).  Filters conjoin --
  /// a point must match every filter that is present -- and excluded
  /// points come back `skipped`.  Throws when the conjunction matches no
  /// point of the spec.
  std::string family_filter;
  std::optional<std::size_t> size_filter;
  /// Quarantine re-admission (--readmit): clear the journal's sticky
  /// poison markers and re-run the formerly quarantined points under a
  /// fresh retry budget.  With `readmit_points` empty every poisoned point
  /// is re-admitted; otherwise only the named point ids are (the rest stay
  /// quarantined).  Each re-admission is recorded in the journal, so the
  /// decision survives a later --resume.  Requires `resume` (there is
  /// nothing to re-admit in a fresh journal).
  bool readmit = false;
  std::vector<std::string> readmit_points;

  /// True when any subsetting filter is configured.
  bool has_filters() const {
    return !point_filter.empty() || !family_filter.empty() ||
           size_filter.has_value();
  }
  /// Whether `point` survives the configured filters.
  bool selects(const SweepPoint& point) const;
};

struct PointResult {
  SweepPoint point;
  RunningStats stats;
  /// True when the result was recovered from the journal, not computed.
  bool from_checkpoint = false;
  /// True when the point was excluded by SweepOptions::point_filter; the
  /// stats carry no samples.
  bool skipped = false;
  /// True when the point exhausted SweepOptions::max_point_retries (it
  /// repeatedly killed or stalled workers) and every permitted last resort
  /// failed too; the stats carry no samples.
  bool quarantined = false;
};

class SweepRunner {
 public:
  SweepRunner(SweepSpec spec, SweepOptions options);

  /// Executes the sweep and returns one result per point, in index order.
  std::vector<PointResult> run(const PointEvaluator& eval) const;

  /// Worker-mode loop: reads request lines from `in_fd`, evaluates the
  /// requested points of `spec`, writes result lines to `out_fd`; returns
  /// the process exit code (0 on clean EOF).  The conventional fds when
  /// spawned by run() are in_fd = 0 and out_fd = 3.
  static int serve(const SweepSpec& spec, const PointEvaluator& eval,
                   int in_fd, int out_fd);

  const SweepSpec& spec() const { return spec_; }

 private:
  /// Runs the worker-pool path, depositing whatever the workers complete
  /// into `results`/`have` and the per-point forfeit counts into
  /// `attempts`; points still missing afterwards fall back to the
  /// in-process path in run(), which quarantines any point with a nonzero
  /// attempt count whose last-resort evaluation throws.
  void run_sharded(const std::vector<SweepPoint>& points,
                   std::vector<char>& have, std::vector<PointResult>& results,
                   std::vector<std::size_t>& attempts,
                   class SweepCheckpoint& checkpoint,
                   class ProgressMeter& progress) const;

  SweepSpec spec_;
  SweepOptions options_;
};

}  // namespace qps::sweep
