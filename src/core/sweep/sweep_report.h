// Rendering of aggregated sweep results.
//
// A SweepReport holds the in-order PointResults of one sweep and renders
// the two output shapes the harnesses already use: the aligned ASCII table
// (util/table.h) and a machine-readable JSON array.  Both are emitted in
// point-index order from round-trip-exact values, so the bytes are
// identical for any worker count and for fresh-vs-resumed runs (the
// from_checkpoint provenance bit is deliberately excluded from both
// renderings for that reason).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/sweep/sweep_runner.h"

namespace qps::sweep {

class SweepReport {
 public:
  SweepReport(std::string sweep_name, std::vector<PointResult> results);

  const std::vector<PointResult>& results() const { return results_; }

  /// The result for a point id; nullptr when absent.
  const PointResult* find(const std::string& id) const;

  /// Aligned table: id | trials | mean | sem | min | max.  `precision`
  /// controls the digits of the three value columns.
  void print(std::ostream& os, int precision = 4) const;

  /// JSON array of per-point objects with coordinates and moments; doubles
  /// written round-trip-exact (util/json.h).
  void write_json(std::ostream& os) const;

  /// How many results were recovered from a checkpoint journal rather
  /// than computed (diagnostic only; not part of any rendering).
  std::size_t checkpointed_count() const;

 private:
  std::string sweep_name_;
  std::vector<PointResult> results_;
};

}  // namespace qps::sweep
