// Checkpoint/resume journal for sweeps.
//
// The runner appends one wire-format result line per completed point and
// flushes after each, so a killed run loses at most its in-flight points.
// On resume the journal is scanned and every line whose (sweep name,
// fingerprint) matches the current spec seeds the result table; those
// points are never re-evaluated.  Lines from other sweeps (a bench may
// journal several into one file), from a spec run under different options
// (fingerprint mismatch), or truncated by a kill are skipped silently --
// the journal is an optimization, never an authority.
#pragma once

#include <cstdio>
#include <map>
#include <string>

#include "core/sweep/sweep_spec.h"
#include "util/stats.h"

namespace qps::sweep {

class SweepCheckpoint {
 public:
  /// An empty `path` disables journaling entirely.  With `resume` the
  /// existing file (if any) is scanned for entries matching (sweep_name,
  /// fingerprint) and then opened for append; without it the file is
  /// opened for append without scanning, so a fresh run extends the
  /// journal and a later --resume still sees every sweep's entries.
  SweepCheckpoint(std::string path, std::string sweep_name,
                  std::uint64_t fingerprint, bool resume);
  ~SweepCheckpoint();

  SweepCheckpoint(const SweepCheckpoint&) = delete;
  SweepCheckpoint& operator=(const SweepCheckpoint&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Journaled results recovered on construction, keyed by point index.
  const std::map<std::size_t, RunningStats>& completed() const {
    return completed_;
  }

  /// Appends one completed point and flushes.  I/O errors throw
  /// std::runtime_error: a silently lost journal would turn --resume into
  /// silent recomputation.
  void record(const SweepPoint& point, const RunningStats& stats);

 private:
  std::string path_;
  std::string sweep_name_;
  std::uint64_t fingerprint_;
  std::map<std::size_t, RunningStats> completed_;
  std::FILE* out_ = nullptr;
};

}  // namespace qps::sweep
