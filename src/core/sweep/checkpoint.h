// Checkpoint/resume journal for sweeps.
//
// The runner appends one wire-format result line per completed point; each
// append is a single write(2) on an O_APPEND descriptor followed by
// fdatasync (util/fsio.h), so a committed point survives SIGKILL and a
// crash can tear at most the in-flight line.  On resume the journal is
// scanned and every line whose (sweep name, fingerprint) matches the
// current spec seeds the result table; those points are never
// re-evaluated.  Lines from other sweeps (a bench may journal several into
// one file) or from a spec run under different options (fingerprint
// mismatch) are skipped silently -- they are someone else's data.  Corrupt
// or torn lines are skipped too, but *diagnosed*: the resume scan reports
// how many lines it could not parse (those points are recomputed), so a
// damaged journal never silently shrinks a resume.  Write failures throw
// CheckpointError naming the journal -- a silently lost journal would turn
// --resume into silent recomputation.
//
// Every append consults the "sweep/checkpoint_write" fault point
// (core/fault/fault.h): `error` models a full disk, `torn` produces
// exactly the mid-file corruption the resume scanner must survive, and
// `crash` dies mid-transaction.
//
// Besides results the journal carries control records (core/sweep/wire.h):
// an epoch record appended at every open (max seen + 1 becomes this
// activation's epoch -- the monotonic fencing token for coordinator
// failover), quarantine poison markers, and readmit records that clear
// them.  Poison markers make quarantine sticky across --resume: a point
// that burned its retry budget failed deterministically, so only an
// explicit --readmit (after a code fix) re-runs it.
#pragma once

#include <map>
#include <memory>
#include <stdexcept>
#include <string>

#include "core/sweep/sweep_spec.h"
#include "util/fsio.h"
#include "util/stats.h"

namespace qps::sweep {

/// Thrown when the journal cannot be opened or a point cannot be durably
/// appended; what() names the journal path and the OS error.
class CheckpointError : public std::runtime_error {
 public:
  CheckpointError(const std::string& what, std::string path)
      : std::runtime_error(what), path_(std::move(path)) {}
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

class SweepCheckpoint {
 public:
  /// What the resume scan found; surfaced for tests and diagnostics.
  struct RecoveryReport {
    bool existed = false;        ///< The journal file was present.
    std::size_t recovered = 0;   ///< Lines matching (sweep, fingerprint).
    std::size_t foreign = 0;     ///< Valid lines of other sweeps/options.
    std::size_t corrupt = 0;     ///< Unparseable (torn/damaged) lines.
    std::size_t control = 0;     ///< Epoch/quarantine/readmit records.
  };

  /// An empty `path` disables journaling entirely.  With `resume` the
  /// existing file (if any) is scanned for entries matching (sweep_name,
  /// fingerprint) and then opened for append; without it the file is
  /// opened for append without scanning, so a fresh run extends the
  /// journal and a later --resume still sees every sweep's entries.
  /// Throws CheckpointError when the journal cannot be opened.
  SweepCheckpoint(std::string path, std::string sweep_name,
                  std::uint64_t fingerprint, bool resume);

  SweepCheckpoint(const SweepCheckpoint&) = delete;
  SweepCheckpoint& operator=(const SweepCheckpoint&) = delete;

  bool enabled() const { return !path_.empty(); }

  /// Journaled results recovered on construction, keyed by point index.
  const std::map<std::size_t, RunningStats>& completed() const {
    return completed_;
  }

  /// Resume-scan accounting (all zeros when not resuming).
  const RecoveryReport& recovery() const { return recovery_; }

  /// This activation's epoch: one past the highest epoch record for
  /// (sweep, fingerprint) found in the journal, or 0 when journaling is
  /// disabled (no journal, no fencing authority).
  std::uint64_t epoch() const { return epoch_; }

  /// Points with an uncleared quarantine poison marker (index -> attempts
  /// recorded when poisoned); populated by the resume scan.
  const std::map<std::size_t, std::uint64_t>& poisoned() const {
    return poisoned_;
  }

  /// Appends one completed point durably; throws CheckpointError on any
  /// write or sync failure.
  void record(const SweepPoint& point, const RunningStats& stats);

  /// Appends a quarantine poison marker for `point`.
  void record_quarantine(const SweepPoint& point, std::uint64_t attempts);

  /// Appends a readmit record for `point` and clears its poison marker.
  void record_readmit(const SweepPoint& point);

 private:
  void append_checked(const std::string& line);

  std::string path_;
  std::string sweep_name_;
  std::uint64_t fingerprint_;
  std::uint64_t epoch_ = 0;
  std::map<std::size_t, RunningStats> completed_;
  std::map<std::size_t, std::uint64_t> poisoned_;
  RecoveryReport recovery_;
  std::unique_ptr<util::AppendFile> out_;
};

}  // namespace qps::sweep
